#include "consentdb/relational/database.h"

#include "consentdb/util/check.h"

namespace consentdb::relational {

Status Database::CreateRelation(const std::string& name, Schema schema) {
  if (relations_.contains(name)) {
    return Status::AlreadyExists("relation already exists: " + name);
  }
  relations_.emplace(name, Relation(std::move(schema)));
  return Status::OK();
}

Status Database::AddRelation(const std::string& name, Relation relation) {
  if (relations_.contains(name)) {
    return Status::AlreadyExists("relation already exists: " + name);
  }
  relations_.emplace(name, std::move(relation));
  return Status::OK();
}

bool Database::HasRelation(const std::string& name) const {
  return relations_.contains(name);
}

Result<const Relation*> Database::GetRelation(const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("no such relation: " + name);
  }
  return &it->second;
}

Result<Relation*> Database::GetMutableRelation(const std::string& name) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("no such relation: " + name);
  }
  return &it->second;
}

const Relation& Database::RelationOrDie(const std::string& name) const {
  Result<const Relation*> r = GetRelation(name);
  CONSENTDB_CHECK(r.ok(), r.status().ToString());
  return **r;
}

Relation& Database::MutableRelationOrDie(const std::string& name) {
  Result<Relation*> r = GetMutableRelation(name);
  CONSENTDB_CHECK(r.ok(), r.status().ToString());
  return **r;
}

Result<bool> Database::Insert(const std::string& relation, Tuple t) {
  CONSENTDB_ASSIGN_OR_RETURN(Relation * rel, GetMutableRelation(relation));
  return rel->Insert(std::move(t));
}

std::vector<std::string> Database::RelationNames() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, _] : relations_) names.push_back(name);
  return names;
}

size_t Database::TotalTuples() const {
  size_t n = 0;
  for (const auto& [_, rel] : relations_) n += rel.size();
  return n;
}

}  // namespace consentdb::relational
