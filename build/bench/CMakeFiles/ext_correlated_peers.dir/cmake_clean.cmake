file(REMOVE_RECURSE
  "CMakeFiles/ext_correlated_peers.dir/ext_correlated_peers.cc.o"
  "CMakeFiles/ext_correlated_peers.dir/ext_correlated_peers.cc.o.d"
  "ext_correlated_peers"
  "ext_correlated_peers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_correlated_peers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
