# CMake generated Testfile for 
# Source directory: /root/repo/src/consentdb/datasets
# Build directory: /root/repo/build/src/consentdb/datasets
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
