file(REMOVE_RECURSE
  "CMakeFiles/evaluation_state_test.dir/evaluation_state_test.cc.o"
  "CMakeFiles/evaluation_state_test.dir/evaluation_state_test.cc.o.d"
  "evaluation_state_test"
  "evaluation_state_test.pdb"
  "evaluation_state_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evaluation_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
