#include "consentdb/datasets/psi.h"

#include "consentdb/util/check.h"

namespace consentdb::datasets {

using provenance::BoolExpr;
using provenance::BoolExprPtr;
using provenance::Truth;
using provenance::VarSet;

provenance::BoolExprPtr PsiFormula::ToExpr() const {
  if (level == 0) {
    return BoolExpr::OrN({
        BoolExpr::And(BoolExpr::Var(w), BoolExpr::Var(x)),
        BoolExpr::And(BoolExpr::Var(x), BoolExpr::Var(y)),
        BoolExpr::And(BoolExpr::Var(y), BoolExpr::Var(z)),
    });
  }
  return BoolExpr::OrN({
      BoolExpr::And(BoolExpr::Var(u), left->ToExpr()),
      BoolExpr::And(BoolExpr::Var(u), BoolExpr::Var(v)),
      BoolExpr::And(BoolExpr::Var(v), right->ToExpr()),
  });
}

size_t PsiFormula::NumVars() const {
  return 6 * (static_cast<size_t>(1) << level) - 2;
}

size_t PsiFormula::NumDnfTerms() const {
  return (static_cast<size_t>(1) << (level + 2)) - 1;
}

PsiFormula BuildPsi(int level, consent::VariablePool& pool,
                    double probability) {
  CONSENTDB_CHECK(level >= 0, "negative psi level");
  PsiFormula psi;
  psi.level = level;
  if (level == 0) {
    psi.w = pool.Allocate("", "", probability);
    psi.x = pool.Allocate("", "", probability);
    psi.y = pool.Allocate("", "", probability);
    psi.z = pool.Allocate("", "", probability);
    return psi;
  }
  psi.left =
      std::make_unique<PsiFormula>(BuildPsi(level - 1, pool, probability));
  psi.right =
      std::make_unique<PsiFormula>(BuildPsi(level - 1, pool, probability));
  psi.u = pool.Allocate("", "", probability);
  psi.v = pool.Allocate("", "", probability);
  return psi;
}

namespace {

void ExpandTerms(const PsiFormula& psi, std::vector<VarSet>* out) {
  if (psi.level == 0) {
    out->push_back(VarSet{psi.w, psi.x});
    out->push_back(VarSet{psi.x, psi.y});
    out->push_back(VarSet{psi.y, psi.z});
    return;
  }
  std::vector<VarSet> left_terms;
  std::vector<VarSet> right_terms;
  ExpandTerms(*psi.left, &left_terms);
  ExpandTerms(*psi.right, &right_terms);
  for (const VarSet& t : left_terms) out->push_back(t.Union(VarSet{psi.u}));
  out->push_back(VarSet{psi.u, psi.v});
  for (const VarSet& t : right_terms) out->push_back(t.Union(VarSet{psi.v}));
}

}  // namespace

Dnf PsiDnf(const PsiFormula& psi) {
  std::vector<VarSet> terms;
  terms.reserve(psi.NumDnfTerms());
  ExpandTerms(psi, &terms);
  // The expansion is already an antichain; skip the quadratic absorption.
  return Dnf(std::move(terms), /*absorb=*/false);
}

VarId PsiOptimalStrategy::ChooseNext(strategy::EvaluationState& state) {
  const PsiFormula* node = root_;
  while (node->level >= 1) {
    Truth tu = state.var_value(node->u);
    Truth tv = state.var_value(node->v);
    if (tu == Truth::kUnknown) return node->u;
    if (tv == Truth::kUnknown) return node->v;
    CONSENTDB_CHECK(tu != tv,
                    "psi node decided but session still running");
    node = tu == Truth::kTrue ? node->left.get() : node->right.get();
  }
  Truth tx = state.var_value(node->x);
  Truth ty = state.var_value(node->y);
  if (tx == Truth::kUnknown) return node->x;
  if (ty == Truth::kUnknown) return node->y;
  if (tx == Truth::kTrue && ty == Truth::kFalse) return node->w;
  if (tx == Truth::kFalse && ty == Truth::kTrue) return node->z;
  CONSENTDB_CHECK(false, "psi base decided but session still running");
  return provenance::kInvalidVar;
}

strategy::StrategyFactory MakePsiOptimalFactory(const PsiFormula& psi) {
  const PsiFormula* root = &psi;
  return [root]() { return std::make_unique<PsiOptimalStrategy>(*root); };
}

}  // namespace consentdb::datasets
