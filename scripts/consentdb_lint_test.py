#!/usr/bin/env python3
"""Unit tests for every consentdb_lint.py rule, including the allowlist.

Each test materializes a miniature repo in a temp directory and asserts on
the (rule, line) pairs the linter reports. Run directly or via ctest:

    python3 scripts/consentdb_lint_test.py
"""

import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import consentdb_lint as lint  # noqa: E402


class LintHarness(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.root = Path(self._tmp.name)

    def tearDown(self):
        self._tmp.cleanup()

    def write(self, rel: str, content: str) -> None:
        path = self.root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content)

    def findings(self):
        return [(f.rule, str(f.path), f.line) for f in lint.run(self.root)]

    def rules(self):
        return [r for r, _, _ in self.findings()]


class NakedNewTest(LintHarness):
    def test_flags_raw_new(self):
        self.write("src/consentdb/a.cc", "void f() {\n  int* p = new int(3);\n}\n")
        self.assertEqual(self.rules(), ["naked-new"])
        self.assertEqual(self.findings()[0][2], 2)

    def test_flags_manual_delete(self):
        self.write("src/consentdb/a.cc", "void f(int* p) {\n  delete p;\n}\n")
        self.assertEqual(self.rules(), ["naked-new"])

    def test_deleted_function_is_not_delete(self):
        self.write("src/consentdb/a.h",
                   "class A {\n  A(const A&) = delete;\n};\n")
        self.assertEqual(self.rules(), [])

    def test_same_line_smart_wrap_ok(self):
        self.write("src/consentdb/a.cc",
                   "PlanPtr f() {\n  return PlanPtr(new Plan(kScan));\n}\n")
        self.assertEqual(self.rules(), [])

    def test_declaration_wrap_ok(self):
        self.write("src/consentdb/a.cc",
                   "void f() {\n  std::unique_ptr<Plan> p(new Plan(kScan));\n}\n")
        self.assertEqual(self.rules(), [])

    def test_previous_line_wrap_ok(self):
        self.write("src/consentdb/a.cc",
                   "void f() {\n  static const BoolExprPtr instance(\n"
                   "      new BoolExpr(kFalse));\n}\n")
        self.assertEqual(self.rules(), [])

    def test_new_in_comment_or_string_ignored(self):
        self.write("src/consentdb/a.cc",
                   '// a new idea\nconst char* s = "new Plan";\n')
        self.assertEqual(self.rules(), [])

    def test_allowlist_suppresses(self):
        self.write("src/consentdb/a.cc",
                   "void f() {\n  int* p = new int(3);  // lint:allow naked-new\n}\n")
        self.assertEqual(self.rules(), [])


class MutexGuardTest(LintHarness):
    def test_flags_unguarded_mutex(self):
        self.write("src/consentdb/a.h",
                   "class A {\n  mutable std::mutex mu_;\n  int x_ = 0;\n};\n")
        self.assertEqual(self.rules(), ["mutex-guard"])

    def test_guarded_field_satisfies(self):
        self.write("src/consentdb/a.h",
                   "class A {\n  mutable Mutex mu_;\n"
                   "  int x_ GUARDED_BY(mu_) = 0;\n};\n")
        self.assertEqual(self.rules(), [])

    def test_wrapper_mutex_class_allowlisted(self):
        self.write("src/consentdb/a.h",
                   "class M {\n  std::mutex mu_;  // lint:allow mutex-guard\n};\n")
        self.assertEqual(self.rules(), [])

    def test_preceding_comment_allowlist(self):
        self.write("src/consentdb/a.h",
                   "class M {\n  // lint:allow mutex-guard\n"
                   "  std::mutex mu_;\n};\n")
        self.assertEqual(self.rules(), [])


class IncludeCcTest(LintHarness):
    def test_flags_cc_include(self):
        self.write("tests/a.cc", '#include "consentdb/query/plan.cc"\n')
        self.assertEqual(self.rules(), ["include-cc"])

    def test_header_include_ok(self):
        self.write("tests/a.cc", '#include "consentdb/query/plan.h"\n')
        self.assertEqual(self.rules(), [])


class UsingNamespaceHeaderTest(LintHarness):
    def test_flags_in_header(self):
        self.write("src/consentdb/a.h", "using namespace std;\n")
        self.assertEqual(self.rules(), ["using-namespace-header"])

    def test_ok_in_cc(self):
        self.write("src/consentdb/a.cc", "using namespace std::chrono;\n")
        self.assertEqual(self.rules(), [])

    def test_using_declaration_ok(self):
        self.write("src/consentdb/a.h", "using std::vector;\n")
        self.assertEqual(self.rules(), [])


class RawCoutTest(LintHarness):
    def test_flags_cout_in_library(self):
        self.write("src/consentdb/a.cc",
                   'void f() {\n  std::cout << "hi";\n}\n')
        self.assertEqual(self.rules(), ["raw-cout"])

    def test_cerr_also_flagged(self):
        self.write("src/consentdb/a.cc",
                   'void f() {\n  std::cerr << "hi";\n}\n')
        self.assertEqual(self.rules(), ["raw-cout"])

    def test_ok_outside_library(self):
        # bench/tests/examples own their terminal; only src/consentdb is
        # held to the no-stdout rule.
        self.write("bench/a.cc", 'void f() {\n  std::cout << "hi";\n}\n')
        self.assertEqual(self.rules(), [])

    def test_cout_in_string_ignored(self):
        self.write("src/consentdb/a.cc", 'const char* s = "std::cout";\n')
        self.assertEqual(self.rules(), [])


class SleepOutsideClockTest(LintHarness):
    def test_flags_sleep_for(self):
        self.write("src/consentdb/strategy/a.cc",
                   "void f() {\n"
                   "  std::this_thread::sleep_for(std::chrono::seconds(1));\n"
                   "}\n")
        self.assertEqual(self.rules(), ["sleep-outside-clock"])

    def test_flags_sleep_until(self):
        self.write("tests/a.cc",
                   "void f() {\n  std::this_thread::sleep_until(t);\n}\n")
        self.assertEqual(self.rules(), ["sleep-outside-clock"])

    def test_clock_implementation_is_exempt(self):
        # util/clock.cc owns the single real sleep behind RealClock().
        self.write("src/consentdb/util/clock.cc",
                   "void SystemClock::SleepFor(int64_t n) {\n"
                   "  std::this_thread::sleep_for(std::chrono::nanoseconds(n));\n"
                   "}\n")
        self.assertEqual(self.rules(), [])

    def test_injected_clock_sleepfor_ok(self):
        # Clock::SleepFor is the virtual-time API, not a real sleep.
        self.write("src/consentdb/core/a.cc",
                   "void f(Clock* c) {\n  c->SleepFor(1000);\n}\n")
        self.assertEqual(self.rules(), [])

    def test_sleep_in_comment_or_string_ignored(self):
        self.write("src/consentdb/a.cc",
                   "// calls sleep_for(1s) eventually\n"
                   'const char* s = "sleep_for(1)";\n')
        self.assertEqual(self.rules(), [])

    def test_allowlist_suppresses(self):
        self.write("tests/a.cc",
                   "void f() {\n"
                   "  // lint:allow sleep-outside-clock\n"
                   "  std::this_thread::sleep_for(std::chrono::seconds(1));\n"
                   "}\n")
        self.assertEqual(self.rules(), [])


class RawFileIoTest(LintHarness):
    def test_flags_ofstream(self):
        self.write("src/consentdb/consent/a.cc",
                   "void f() {\n  std::ofstream out(path);\n}\n")
        self.assertEqual(self.rules(), ["raw-file-io"])

    def test_flags_ifstream_and_plain_fstream(self):
        self.write("tests/a.cc",
                   "void f() {\n"
                   "  std::ifstream in(path);\n"
                   "  std::fstream both(path);\n"
                   "}\n")
        self.assertEqual(self.rules(), ["raw-file-io", "raw-file-io"])

    def test_flags_fopen(self):
        self.write("bench/a.cc",
                   'void f() {\n  FILE* fp = std::fopen("x", "w");\n}\n')
        self.assertEqual(self.rules(), ["raw-file-io"])

    def test_env_implementation_is_exempt(self):
        # util/io.cc owns the single real file-I/O site behind Env::Default().
        self.write("src/consentdb/util/io.cc",
                   'void f() {\n  FILE* fp = std::fopen("x", "w");\n}\n')
        self.assertEqual(self.rules(), [])

    def test_fopen_in_comment_or_string_ignored(self):
        self.write("src/consentdb/a.cc",
                   "// fopen(path) would be wrong here\n"
                   'const char* s = "std::ofstream";\n')
        self.assertEqual(self.rules(), [])

    def test_env_usage_ok(self):
        self.write("src/consentdb/consent/a.cc",
                   "void f(Env* env) {\n"
                   "  auto file = env->NewWritableFile(path, false);\n"
                   "}\n")
        self.assertEqual(self.rules(), [])

    def test_allowlist_suppresses(self):
        self.write("tests/a.cc",
                   "void f() {\n"
                   "  // lint:allow raw-file-io\n"
                   "  std::ofstream out(path);\n"
                   "}\n")
        self.assertEqual(self.rules(), [])


class RawSocketTest(LintHarness):
    def test_flags_socket_and_connect(self):
        self.write("src/consentdb/core/a.cc",
                   "void f() {\n"
                   "  int fd = socket(AF_INET, SOCK_STREAM, 0);\n"
                   "  connect(fd, addr, len);\n"
                   "}\n")
        self.assertEqual(self.rules(), ["raw-socket", "raw-socket"])

    def test_flags_send_recv_in_tests(self):
        self.write("tests/a.cc",
                   "void f(int fd) {\n"
                   "  send(fd, buf, n, 0);\n"
                   "  recv(fd, buf, n, 0);\n"
                   "}\n")
        self.assertEqual(self.rules(), ["raw-socket", "raw-socket"])

    def test_net_module_is_exempt(self):
        # net/ owns the PosixTransport, the one real-socket site.
        self.write("src/consentdb/net/posix_transport.cc",
                   "void f() {\n"
                   "  int fd = socket(AF_INET, SOCK_STREAM, 0);\n"
                   "  bind(fd, addr, len);\n"
                   "  listen(fd, 128);\n"
                   "}\n")
        self.assertEqual(self.rules(), [])

    def test_transport_seam_methods_ok(self):
        # Transport::Connect / Listener::Accept / Reconnect are the sanctioned
        # spellings; method calls and longer identifiers must not fire.
        self.write("src/consentdb/core/a.cc",
                   "void f(Transport& t, ProbeClient& c) {\n"
                   "  auto conn = t.Connect(addr);\n"
                   "  auto l = t->Listen(addr);\n"
                   "  c.Reconnect(open, &attempt);\n"
                   "  Disconnect(conn);\n"
                   "}\n")
        self.assertEqual(self.rules(), [])

    def test_socket_in_comment_or_string_ignored(self):
        self.write("src/consentdb/core/a.cc",
                   "// connect(fd, ...) would bypass the Transport seam\n"
                   'const char* s = "socket(AF_INET)";\n')
        self.assertEqual(self.rules(), [])

    def test_allowlist_suppresses(self):
        self.write("tests/a.cc",
                   "void f(int fd) {\n"
                   "  // lint:allow raw-socket\n"
                   "  send(fd, buf, n, 0);\n"
                   "}\n")
        self.assertEqual(self.rules(), [])


class ObsNameLiteralTest(LintHarness):
    def test_flags_uppercase_counter_name(self):
        self.write("src/consentdb/core/a.cc",
                   'void f(obs::MetricsRegistry* m) {\n'
                   '  m->GetCounter("Cache.PlanHit")->Increment();\n'
                   '}\n')
        self.assertEqual(self.rules(), ["obs-name-literal"])

    def test_flags_space_in_span_name(self):
        self.write("src/consentdb/core/a.cc",
                   'void f(obs::SpanCollector* c) {\n'
                   '  obs::Span span(c, "session run");\n'
                   '}\n')
        self.assertEqual(self.rules(), ["obs-name-literal"])

    def test_flags_record_event_literal(self):
        self.write("src/consentdb/core/a.cc",
                   'void f(obs::FlightRecorder* fr) {\n'
                   '  fr->RecordEvent("CrashInjected!");\n'
                   '}\n')
        self.assertEqual(self.rules(), ["obs-name-literal"])

    def test_valid_dotted_names_ok(self):
        self.write("src/consentdb/core/a.cc",
                   'void f(obs::MetricsRegistry* m, obs::SpanCollector* c) {\n'
                   '  m->GetCounter("cache.plan.hit")->Increment();\n'
                   '  obs::Increment(m, "engine.sessions");\n'
                   '  obs::Span span(c, "wal.append_2");\n'
                   '}\n')
        self.assertEqual(self.rules(), [])

    def test_names_registry_is_exempt(self):
        self.write("src/consentdb/obs/names.h",
                   'inline constexpr char kOdd[] = "Not A Name";\n')
        self.assertEqual(self.rules(), [])

    def test_non_obs_calls_ignored(self):
        # String args to unrelated calls are none of this rule's business.
        self.write("src/consentdb/core/a.cc",
                   'void f(std::string s) {\n'
                   '  auto i = s.find("Upper Case Stuff");\n'
                   '  SpanRecord rec("Whatever");\n'
                   '}\n')
        self.assertEqual(self.rules(), [])

    def test_name_in_comment_ignored(self):
        self.write("src/consentdb/core/a.cc",
                   '// e.g. GetCounter("Bad Name") would be rejected\n'
                   'int f();\n')
        self.assertEqual(self.rules(), [])

    def test_allowlist_suppresses(self):
        self.write("tests/a.cc",
                   'void f(obs::MetricsRegistry* m) {\n'
                   '  // lint:allow obs-name-literal\n'
                   '  m->GetCounter("query.class.SP")->value();\n'
                   '}\n')
        self.assertEqual(self.rules(), [])


class NestedVectorStrategyTest(LintHarness):
    def test_flags_member_in_strategy_layer(self):
        self.write("src/consentdb/strategy/a.h",
                   "class A {\n"
                   "  std::vector<std::vector<size_t>> var_to_terms_;\n"
                   "};\n")
        self.assertEqual(self.rules(), ["nested-vector-strategy"])
        self.assertEqual(self.findings()[0][2], 2)

    def test_tolerates_whitespace_between_tokens(self):
        self.write("src/consentdb/strategy/a.h",
                   "class A {\n"
                   "  std::vector< std::vector<double> > rows_;\n"
                   "};\n")
        self.assertEqual(self.rules(), ["nested-vector-strategy"])

    def test_flat_vector_ok(self):
        self.write("src/consentdb/strategy/a.h",
                   "class A {\n"
                   "  std::vector<uint32_t> vt_off_;\n"
                   "  std::vector<uint32_t> vt_tid_;\n"
                   "};\n")
        self.assertEqual(self.rules(), [])

    def test_other_layers_unaffected(self):
        # Only the strategy hot path is columnar by decree; e.g. the
        # relational layer may still nest.
        self.write("src/consentdb/relational/a.h",
                   "struct Rows {\n"
                   "  std::vector<std::vector<Value>> cells;\n"
                   "};\n")
        self.write("tests/legacy_a.h",
                   "class L {\n"
                   "  std::vector<std::vector<size_t>> var_to_terms_;\n"
                   "};\n")
        self.assertEqual(self.rules(), [])

    def test_mention_in_comment_ignored(self):
        self.write("src/consentdb/strategy/a.h",
                   "// replaced std::vector<std::vector<size_t>> with CSR\n"
                   "class A {};\n")
        self.assertEqual(self.rules(), [])

    def test_allowlist_suppresses(self):
        self.write("src/consentdb/strategy/a.h",
                   "class A {\n"
                   "  // lint:allow nested-vector-strategy\n"
                   "  std::vector<std::vector<size_t>> scratch_;\n"
                   "};\n")
        self.assertEqual(self.rules(), [])


class AllowlistScopingTest(LintHarness):
    def test_allow_is_per_rule(self):
        # An allow for one rule must not silence a different rule on the
        # same line.
        self.write("src/consentdb/a.cc",
                   'void f() {\n'
                   '  std::cout << (new int(1));  // lint:allow raw-cout\n'
                   '}\n')
        self.assertEqual(self.rules(), ["naked-new"])

    def test_comma_separated_allows(self):
        self.write("src/consentdb/a.cc",
                   'void f() {\n'
                   '  std::cout << (new int(1));  // lint:allow raw-cout,naked-new\n'
                   '}\n')
        self.assertEqual(self.rules(), [])


class CliTest(LintHarness):
    def test_exit_codes(self):
        self.write("src/consentdb/clean.cc", "int f() { return 1; }\n")
        self.assertEqual(lint.main(["lint", str(self.root)]), 0)
        self.write("src/consentdb/bad.cc", "int* f() { return new int; }\n")
        self.assertEqual(lint.main(["lint", str(self.root)]), 1)
        self.assertEqual(lint.main(["lint", str(self.root / "missing")]), 2)

    def test_list_rules(self):
        self.assertEqual(lint.main(["lint", "--list-rules"]), 0)

    def test_json_format(self):
        import contextlib
        import io
        import json
        self.write("src/consentdb/bad.cc", "int* f() { return new int; }\n")
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            rc = lint.main(["lint", str(self.root), "--format=json"])
        self.assertEqual(rc, 1)
        [finding] = json.loads(out.getvalue())
        self.assertEqual(sorted(finding), ["line", "message", "path", "rule"])
        self.assertEqual(finding["rule"], "naked-new")
        self.assertEqual(finding["line"], 1)

    def test_unknown_format_is_usage_error(self):
        self.assertEqual(lint.main(["lint", "--format=xml"]), 2)


if __name__ == "__main__":
    unittest.main()
