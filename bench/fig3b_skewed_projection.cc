// Figure 3b: skewed dataset, probes vs projection limit (the number of DNF
// terms per output tuple, Sec. IV-C). For small limits the brute-force CNF
// is feasible and Q-value applies; beyond the budget Q-value reports "n/a"
// and the remaining algorithms are compared — exactly the regime change the
// paper describes. Includes the Hybrid variant discussed with this figure.
//
// Expected shape: the advantage of the informed algorithms over Freq and
// Random widens as the limit grows (larger expressions leave more room for
// optimisation).

#include "skewed_runner.h"

using namespace consentdb;

int main() {
  const size_t reps = bench::RepsFromEnv(5);
  std::cout << "=== Fig. 3b: skewed dataset, probes vs projection limit "
            << "(rows=" << bench::Scaled(1000)
            << ", joins=4, rep=2.6, pi=0.7, reps=" << reps << ") ===\n\n";

  provenance::NormalFormLimits cnf_limits;
  cnf_limits.max_sets = 20000;

  std::vector<bench::NamedStrategy> strategies =
      bench::PaperStrategies(/*seed=*/302);
  strategies.push_back(bench::NamedStrategy{
      "Hybrid", strategy::MakeHybridFactory(cnf_limits), false, 1});

  std::vector<std::string> columns = {"limit"};
  for (const auto& s : strategies) columns.push_back(s.name);
  bench::Table table(columns);
  table.PrintHeader();

  for (size_t limit : {2u, 4u, 8u, 16u, 32u, 64u}) {
    datasets::SkewedParams params;
    params.num_rows = bench::Scaled(1000);
    params.num_joins = 4;
    params.projection_limit = limit;
    params.avg_repetitions = 2.6;
    params.probability = 0.7;
    std::vector<bench::SkewedCell> cells = bench::RunSkewedPoint(
        params, strategies, reps, /*seed=*/3200 + limit, cnf_limits);
    std::vector<std::string> rendered;
    for (const auto& c : cells) rendered.push_back(c.ToString());
    table.PrintRow(std::to_string(limit), rendered);
  }
  std::cout << "\nexpected shape: Q-value drops out ('n/a') once the CNF "
               "budget trips;\nthe informed algorithms' advantage over "
               "Freq/Random grows with the limit.\n";
  return 0;
}
