// Write-ahead log for the ConsentLedger: every successful probe answer is
// journaled before the session moves on, so a crash never forfeits consent
// that a peer already granted (re-asking peers is exactly the cost the
// ledger exists to avoid).
//
// File format (binary, little-endian):
//
//   consentdb-wal 1\n                              (16-byte magic)
//   [ u32 payload_len | u32 crc32(payload) | payload ]*
//
// with payload = { u8 record_type = 1 | u8 answer | u64 var_id }. Records
// are length-prefixed and CRC-checksummed, so a truncated or torn final
// record (the only damage a crashed append can cause) is detected and
// dropped while the clean prefix replays in full.
//
// Durability is tunable via a group-commit window on the injectable Clock:
// window 0 fsyncs every record (an answer is durable before AppendAnswer
// returns); window W batches fsyncs — at most the answers recorded in the
// last W nanoseconds can be lost to a power cut (a process kill loses
// nothing: the page cache survives).
//
// The WAL pairs with a compacted snapshot sidecar (`<wal>.snap`, written
// through consent/snapshot's ledger format): Compact() atomically persists
// the full answer set and resets the log. Recovery (RecoverLedger) replays
// snapshot + WAL tail; replay is idempotent, so a crash between the two
// compaction renames is harmless.

#ifndef CONSENTDB_CONSENT_WAL_H_
#define CONSENTDB_CONSENT_WAL_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "consentdb/consent/variable_pool.h"
#include "consentdb/obs/metrics.h"
#include "consentdb/obs/span.h"
#include "consentdb/util/clock.h"
#include "consentdb/util/io.h"
#include "consentdb/util/result.h"
#include "consentdb/util/thread_annotations.h"

namespace consentdb::consent {

class ConsentLedger;

// Identity of one WAL inside a sharded ledger's log set (see
// sharded_ledger.h). Stamped into the file as the first record after the
// magic — payload { u8 record_type = 2 | u8 reserved = 0 | u32 shard_id |
// u32 num_shards | u64 generation } — and preserved across tail healing and
// compaction, so a log can never silently migrate between shard sets:
// recovery rejects a set whose members disagree on (num_shards, generation)
// or sit at the wrong shard index. Files without the record are plain
// single-ledger logs (the pre-sharding format, still fully supported).
struct WalShardInfo {
  uint32_t shard_id = 0;
  uint32_t num_shards = 1;
  // Shard-set epoch: bumped when a new leader set is cut over (replica
  // promotion), so logs of the demoted generation can never be mixed into
  // the new set's recovery.
  uint64_t generation = 0;

  friend bool operator==(const WalShardInfo& a, const WalShardInfo& b) {
    return a.shard_id == b.shard_id && a.num_shards == b.num_shards &&
           a.generation == b.generation;
  }
  friend bool operator!=(const WalShardInfo& a, const WalShardInfo& b) {
    return !(a == b);
  }
};

struct WalOptions {
  // Nanoseconds between fsyncs: 0 syncs every append; > 0 batches appends
  // and syncs once the window since the last fsync has elapsed.
  int64_t group_commit_window_nanos = 0;
  // Clock for the group-commit window; nullptr = RealClock().
  Clock* clock = nullptr;
  // Optional wal.* instruments (appends, syncs, bytes, batch sizes).
  obs::MetricsRegistry* metrics = nullptr;
  // Optional span sink: wal.append / wal.fsync / wal.compact spans nest
  // under whatever session span is current on the calling thread, putting
  // WAL I/O on the same causal timeline as the probes that caused it.
  obs::SpanCollector* spans = nullptr;
  // When set, this WAL belongs to a sharded log set: a fresh file is
  // stamped with the shard header and an existing file must carry exactly
  // this header (Open fails otherwise — a foreign or stale-generation log
  // must never be appended to). Unset = plain single-ledger WAL; opening a
  // shard-stamped file without declaring the shard fails symmetrically.
  std::optional<WalShardInfo> shard;
};

// The snapshot sidecar of a WAL.
std::string WalSnapshotPath(const std::string& wal_path);

// The WAL file of shard `shard_id` in a sharded log set rooted at
// `base_path`: `<base_path>.shard<k>`.
std::string ShardWalPath(const std::string& base_path, size_t shard_id);

// Append side. Thread-safe; ConsentLedger calls AppendAnswer under its own
// mutex, but the writer also protects itself so shells/tests can share one.
class WalWriter {
 public:
  // Opens (or creates) the WAL at `path` for appending. An existing file is
  // validated first: a torn or corrupt tail — the residue of a crashed
  // append — is healed by rewriting the clean prefix before new records go
  // in, so damage can never sit in the middle of a log.
  [[nodiscard]] static Result<std::unique_ptr<WalWriter>> Open(
      Env* env, std::string path, WalOptions options = {});

  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  // Journals one answer; durable on return iff the group-commit window
  // decided to fsync (always, for window 0).
  [[nodiscard]] Status AppendAnswer(VarId x, bool answer) EXCLUDES(mu_);

  // Forces an fsync of everything appended so far.
  [[nodiscard]] Status Sync() EXCLUDES(mu_);

  // Atomically replaces the log with a compacted snapshot: writes `answers`
  // to the snapshot sidecar (tmp + fsync + rename), then resets the WAL to
  // an empty, synced log. Crash-safe at every step — recovery replays
  // old-snapshot+old-wal, new-snapshot+old-wal or new-snapshot+empty-wal,
  // all of which reproduce the same answer set (replay is idempotent).
  [[nodiscard]] Status CompactTo(
      const std::vector<std::pair<VarId, bool>>& answers) EXCLUDES(mu_);

  // Syncs and closes the file; further appends fail.
  [[nodiscard]] Status Close() EXCLUDES(mu_);

  const std::string& path() const { return path_; }
  uint64_t records_appended() const EXCLUDES(mu_);
  // Records appended but not yet fsynced (0 right after a sync).
  uint64_t pending_records() const EXCLUDES(mu_);
  uint64_t syncs() const EXCLUDES(mu_);
  uint64_t compactions() const EXCLUDES(mu_);

 private:
  WalWriter(Env* env, std::string path, WalOptions options);

  [[nodiscard]] Status SyncLocked() REQUIRES(mu_);

  Env* const env_;
  const std::string path_;
  const WalOptions options_;
  Clock* const clock_;

  mutable Mutex mu_;
  std::unique_ptr<WritableFile> file_ GUARDED_BY(mu_);
  uint64_t records_ GUARDED_BY(mu_) = 0;
  uint64_t pending_ GUARDED_BY(mu_) = 0;
  uint64_t syncs_ GUARDED_BY(mu_) = 0;
  uint64_t compactions_ GUARDED_BY(mu_) = 0;
  int64_t last_sync_nanos_ GUARDED_BY(mu_) = 0;
};

// Read side: the parsed content of a WAL file.
struct WalReplay {
  // Journaled answers in append order (may repeat a variable across
  // compaction boundaries; duplicates always agree or the log is corrupt).
  std::vector<std::pair<VarId, bool>> answers;
  uint64_t records = 0;
  // The final record was cut mid-bytes (crashed append / power cut).
  bool torn_tail = false;
  // A checksum or framing violation stopped the replay (bit rot); the clean
  // prefix before it is still returned.
  bool corrupt_record = false;
  // Tail bytes dropped by either condition.
  uint64_t bytes_dropped = 0;
  // The shard header, when the log belongs to a sharded set.
  std::optional<WalShardInfo> shard;
};

// Parses the WAL at `path`. A missing file is NotFound; a file that is not
// a prefix-of-magic-or-valid-WAL is InvalidArgument. Damaged tails are not
// errors — they come back as torn_tail/corrupt_record with the recovered
// prefix in `answers`.
[[nodiscard]] Result<WalReplay> ReadWal(Env* env, const std::string& path);

// ReadWal over bytes already in hand (magic included): for followers that
// read the log themselves and need the parse to line up with the exact
// bytes they fetched. `path` is for error messages only.
[[nodiscard]] Result<WalReplay> ParseWalContent(std::string_view content,
                                                const std::string& path);

// Parses a bare record stream (no magic): the incremental-tail path of a
// follower (replica.h) parsing only the bytes appended since its last
// poll. Damage never makes this fail — torn or corrupt tails come back in
// the replay flags with the clean prefix, exactly as in ReadWal.
[[nodiscard]] WalReplay ParseWalRecords(std::string_view bytes);

// What RecoverLedger replayed; mirrored into the recovery.* metrics.
struct RecoveryStats {
  uint64_t snapshot_answers = 0;  // answers restored from the snapshot sidecar
  uint64_t wal_records = 0;       // WAL records replayed on top
  uint64_t recovered_answers = 0;  // distinct answers in the ledger afterwards
  bool torn_tail = false;
  bool corrupt_record = false;
  uint64_t bytes_dropped = 0;
  int64_t replay_nanos = 0;
  // The replayed WAL's shard header, if it carried one.
  std::optional<WalShardInfo> shard;
};

// Replays `<wal>.snap` + the WAL tail into `ledger` via RestoreAnswer.
// Missing files are fine (fresh deployment = empty recovery). The replay is
// observationally silent: no oracle is touched, no probe/retry/tracer
// signal fires; only the dedicated recovery.* counters and the
// recovery.replay_ns histogram on `metrics` record that it happened.
// Conflicting answers for one variable fail with Internal — the journal is
// corrupt beyond what checksums can explain away.
[[nodiscard]] Result<RecoveryStats> RecoverLedger(
    Env* env, const std::string& wal_path, ConsentLedger* ledger,
    obs::MetricsRegistry* metrics = nullptr, Clock* clock = nullptr);

// One WAL per ledger shard, opened as a set (see sharded_ledger.h).
struct ShardWalSet {
  std::vector<std::unique_ptr<WalWriter>> wals;
  // The generation every member's header agrees on.
  uint64_t generation = 0;

  // Borrowed pointers in shard-id order, for AttachShardJournals /
  // EngineOptions::shard_wals. The set must outlive every borrower.
  std::vector<WalWriter*> pointers() const;
};

// Opens — creating if absent — the `num_shards` WAL files of the sharded
// log set rooted at `base_path` (ShardWalPath(base_path, k) for shard k).
// Fresh files are stamped with `generation`; when any member already
// carries a header, the existing generation wins and every member must
// agree on it (and on num_shards), otherwise the open fails — resizing a
// shard set or mixing logs from two generations is never silent. `options`
// applies to every member (options.shard is filled in per shard).
[[nodiscard]] Result<ShardWalSet> OpenShardWalSet(Env* env,
                                                  const std::string& base_path,
                                                  size_t num_shards,
                                                  uint64_t generation = 0,
                                                  WalOptions options = {});

}  // namespace consentdb::consent

#endif  // CONSENTDB_CONSENT_WAL_H_
