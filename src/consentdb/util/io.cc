#include "consentdb/util/io.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include <sys/stat.h>
#include <unistd.h>

namespace consentdb {

namespace {

Status ErrnoStatus(const std::string& op, const std::string& path) {
  const std::string message = op + " " + path + ": " + std::strerror(errno);
  if (errno == ENOENT) return Status::NotFound(message);
  return Status::Internal(message);
}

// The one place in the tree that touches the real filesystem; everything
// else goes through Env so tests can swap in CrashingEnv.
class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(std::FILE* file, std::string path)
      : file_(file), path_(std::move(path)) {}

  ~PosixWritableFile() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  Status Append(std::string_view data) override {
    if (file_ == nullptr) {
      return Status::FailedPrecondition("append to closed file: " + path_);
    }
    if (std::fwrite(data.data(), 1, data.size(), file_) != data.size()) {
      return ErrnoStatus("write", path_);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (file_ == nullptr) {
      return Status::FailedPrecondition("sync of closed file: " + path_);
    }
    if (std::fflush(file_) != 0) return ErrnoStatus("flush", path_);
    if (::fsync(::fileno(file_)) != 0) return ErrnoStatus("fsync", path_);
    return Status::OK();
  }

  Status Close() override {
    if (file_ == nullptr) return Status::OK();
    std::FILE* file = file_;
    file_ = nullptr;
    if (std::fclose(file) != 0) return ErrnoStatus("close", path_);
    return Status::OK();
  }

 private:
  std::FILE* file_;
  std::string path_;
};

class PosixEnv : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool append) override {
    std::FILE* file = std::fopen(path.c_str(), append ? "ab" : "wb");
    if (file == nullptr) return ErrnoStatus("open", path);
    return std::unique_ptr<WritableFile>(new PosixWritableFile(file, path));
  }

  Result<std::string> ReadFileToString(const std::string& path) override {
    std::FILE* file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) return ErrnoStatus("open", path);
    std::string out;
    char buffer[1 << 16];
    size_t n;
    while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
      out.append(buffer, n);
    }
    const bool failed = std::ferror(file) != 0;
    std::fclose(file);
    if (failed) return Status::Internal("read " + path + " failed");
    return out;
  }

  bool FileExists(const std::string& path) override {
    struct ::stat st;
    return ::stat(path.c_str(), &st) == 0;
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (std::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus("rename", from);
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (std::remove(path.c_str()) != 0) return ErrnoStatus("remove", path);
    return Status::OK();
  }
};

}  // namespace

Status Env::WriteStringToFile(const std::string& path, std::string_view data,
                              bool sync) {
  CONSENTDB_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                             NewWritableFile(path, /*append=*/false));
  CONSENTDB_RETURN_IF_ERROR(file->Append(data));
  if (sync) CONSENTDB_RETURN_IF_ERROR(file->Sync());
  return file->Close();
}

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv;  // lint:allow naked-new
  return env;
}

// --- CrashingEnv -----------------------------------------------------------

namespace {

// Handle into a CrashingEnv file; all state lives in the env so Restart()
// can apply crash semantics uniformly.
class CrashingWritableFile : public WritableFile {
 public:
  CrashingWritableFile(CrashingEnv* env, std::string path, uint64_t generation)
      : env_(env), path_(std::move(path)), generation_(generation) {}

  Status Append(std::string_view data) override {
    return env_->DoAppend(path_, generation_, data);
  }
  Status Sync() override { return env_->DoSync(path_, generation_); }
  Status Close() override { return Status::OK(); }

 private:
  CrashingEnv* env_;
  std::string path_;
  uint64_t generation_;
};

}  // namespace

void CrashingEnv::set_plan(CrashPlan plan) {
  MutexLock lock(mu_);
  plan_ = plan;
  appends_ = 0;
  syncs_ = 0;
}

void CrashingEnv::Restart() {
  MutexLock lock(mu_);
  for (auto& [path, state] : files_) {
    if (crashed_ && crash_was_power_loss_) {
      // Power loss: unsynced data is gone, except the torn tail the platter
      // happened to absorb for the file being written.
      auto it = surviving_pending_.find(path);
      const uint64_t keep = it == surviving_pending_.end() ? 0 : it->second;
      state.durable +=
          state.pending.substr(0, std::min<uint64_t>(keep, state.pending.size()));
    } else {
      // Clean exit or process kill: the page cache reaches the disk.
      state.durable += state.pending;
    }
    state.pending.clear();
  }
  surviving_pending_.clear();
  crashed_ = false;
  crash_was_power_loss_ = false;
  ++generation_;  // pre-crash handles are dead
}

bool CrashingEnv::crashed() const {
  MutexLock lock(mu_);
  return crashed_;
}

uint64_t CrashingEnv::num_appends() const {
  MutexLock lock(mu_);
  return appends_;
}

uint64_t CrashingEnv::num_syncs() const {
  MutexLock lock(mu_);
  return syncs_;
}

void CrashingEnv::CrashLocked(const std::string& what) {
  crashed_ = true;
  crash_was_power_loss_ = plan_.power_loss;
  throw CrashInjected("injected crash: " + what);
}

void CrashingEnv::ThrowIfCrashedLocked() const {
  if (crashed_) {
    throw CrashInjected("I/O after crash (missing Restart()?)");
  }
}

Result<std::unique_ptr<WritableFile>> CrashingEnv::NewWritableFile(
    const std::string& path, bool append) {
  MutexLock lock(mu_);
  ThrowIfCrashedLocked();
  FileState& state = files_[path];
  if (!append) {
    state.durable.clear();
    state.pending.clear();
  }
  return std::unique_ptr<WritableFile>(
      new CrashingWritableFile(this, path, generation_));
}

Result<std::string> CrashingEnv::ReadFileToString(const std::string& path) {
  MutexLock lock(mu_);
  ThrowIfCrashedLocked();
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  return it->second.durable + it->second.pending;
}

bool CrashingEnv::FileExists(const std::string& path) {
  MutexLock lock(mu_);
  ThrowIfCrashedLocked();
  return files_.find(path) != files_.end();
}

Status CrashingEnv::RenameFile(const std::string& from, const std::string& to) {
  MutexLock lock(mu_);
  ThrowIfCrashedLocked();
  auto it = files_.find(from);
  if (it == files_.end()) return Status::NotFound("no such file: " + from);
  FileState state = std::move(it->second);
  files_.erase(it);
  files_[to] = std::move(state);
  return Status::OK();
}

Status CrashingEnv::RemoveFile(const std::string& path) {
  MutexLock lock(mu_);
  ThrowIfCrashedLocked();
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  files_.erase(it);
  return Status::OK();
}

Status CrashingEnv::DoAppend(const std::string& path, uint64_t generation,
                             std::string_view data) {
  MutexLock lock(mu_);
  ThrowIfCrashedLocked();
  if (generation != generation_) {
    return Status::FailedPrecondition("stale file handle (pre-restart): " +
                                      path);
  }
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound("file removed under handle: " + path);
  }
  ++appends_;
  if (plan_.crash_at_append != 0 && appends_ == plan_.crash_at_append) {
    if (plan_.power_loss) {
      // The whole write reaches the page cache; Restart() decides how much
      // of the unsynced tail the platter absorbed (plan_.torn_bytes).
      it->second.pending.append(data);
      surviving_pending_[path] = plan_.torn_bytes;
    } else {
      // Process kill mid-write(): only a torn prefix enters the page cache.
      it->second.pending.append(data.substr(
          0, std::min<uint64_t>(plan_.torn_bytes, data.size())));
    }
    CrashLocked("append #" + std::to_string(appends_) + " to " + path);
  }
  it->second.pending.append(data);
  return Status::OK();
}

Status CrashingEnv::DoSync(const std::string& path, uint64_t generation) {
  MutexLock lock(mu_);
  ThrowIfCrashedLocked();
  if (generation != generation_) {
    return Status::FailedPrecondition("stale file handle (pre-restart): " +
                                      path);
  }
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound("file removed under handle: " + path);
  }
  ++syncs_;
  if (plan_.crash_at_sync != 0 && syncs_ == plan_.crash_at_sync) {
    // The fsync is dropped: pending stays unsynced. Under power loss the
    // platter may still have absorbed a prefix of it.
    if (plan_.power_loss) surviving_pending_[path] = plan_.torn_bytes;
    CrashLocked("sync #" + std::to_string(syncs_) + " of " + path);
  }
  it->second.durable += it->second.pending;
  it->second.pending.clear();
  return Status::OK();
}

}  // namespace consentdb
