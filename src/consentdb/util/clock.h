// Injected time: every component that waits (retry backoff, fault-injected
// peer latency, deadlines) reads and sleeps through a Clock*, never through
// std::chrono directly. Tests and benchmarks inject a VirtualClock, whose
// SleepFor advances a counter instead of blocking, so the whole resilience
// suite runs in milliseconds of real time with zero real sleeps — the
// project lint (sleep-outside-clock) rejects any other sleep_for call site.

#ifndef CONSENTDB_UTIL_CLOCK_H_
#define CONSENTDB_UTIL_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace consentdb {

// A monotonic nanosecond time source that can also wait.
class Clock {
 public:
  virtual ~Clock() = default;

  // Nanoseconds since an arbitrary fixed origin; never decreases.
  virtual int64_t NowNanos() = 0;

  // Waits for `nanos` (no-op when <= 0). Virtual implementations advance
  // their own notion of now instead of blocking the thread.
  virtual void SleepFor(int64_t nanos) = 0;
};

// Deterministic, thread-safe virtual time. SleepFor returns immediately
// after advancing the clock, so time-driven logic (backoff schedules,
// deadlines, injected peer latency) runs at full speed while still
// observing the configured durations.
class VirtualClock : public Clock {
 public:
  explicit VirtualClock(int64_t start_nanos = 0) : now_(start_nanos) {}

  int64_t NowNanos() override { return now_.load(std::memory_order_relaxed); }

  void SleepFor(int64_t nanos) override {
    if (nanos > 0) now_.fetch_add(nanos, std::memory_order_relaxed);
  }

  // Test hook: moves time forward without a sleeper.
  void Advance(int64_t nanos) { SleepFor(nanos); }

 private:
  std::atomic<int64_t> now_;
};

// The process-wide real clock (steady_clock + a blocking sleep). Its
// implementation owns the single sleep_for call the lint rule allows.
Clock* RealClock();

}  // namespace consentdb

#endif  // CONSENTDB_UTIL_CLOCK_H_
