file(REMOVE_RECURSE
  "CMakeFiles/table1_query_classes.dir/table1_query_classes.cc.o"
  "CMakeFiles/table1_query_classes.dir/table1_query_classes.cc.o.d"
  "table1_query_classes"
  "table1_query_classes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_query_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
