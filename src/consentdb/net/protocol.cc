#include "consentdb/net/protocol.h"

namespace consentdb::net {
namespace {

Status Truncated(const char* what) {
  return Status::InvalidArgument(std::string("truncated ") + what +
                                 " message body");
}

Status Overlong(const char* what) {
  return Status::InvalidArgument(std::string("trailing bytes after ") + what +
                                 " message body");
}

// Rejects bodies with trailing garbage so every byte on the wire is
// accounted for.
Status CheckEnd(std::string_view body, size_t pos, const char* what) {
  if (pos != body.size()) return Overlong(what);
  return Status::OK();
}

}  // namespace

std::string EncodeMessage(const Message& msg) {
  std::string body;
  uint8_t type = 0;
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, OpenSession>) {
          type = static_cast<uint8_t>(MsgType::kOpenSession);
          PutU64(&body, m.session_id);
          PutString(&body, m.tenant);
          PutString(&body, m.sql);
          PutU8(&body, m.has_single);
          PutString(&body, m.single_csv);
          PutU64(&body, static_cast<uint64_t>(m.deadline_nanos));
        } else if constexpr (std::is_same_v<T, ProbeRequest>) {
          type = static_cast<uint8_t>(MsgType::kProbeRequest);
          PutU64(&body, m.session_id);
          PutU64(&body, m.variable);
          PutString(&body, m.variable_name);
          PutString(&body, m.owner);
        } else if constexpr (std::is_same_v<T, ProbeAnswer>) {
          type = static_cast<uint8_t>(MsgType::kProbeAnswer);
          PutU64(&body, m.session_id);
          PutU64(&body, m.variable);
          PutU8(&body, m.answer);
        } else if constexpr (std::is_same_v<T, ProbeFaultMsg>) {
          type = static_cast<uint8_t>(MsgType::kProbeFault);
          PutU64(&body, m.session_id);
          PutU64(&body, m.variable);
          PutU8(&body, m.fault);
        } else if constexpr (std::is_same_v<T, SessionReportMsg>) {
          type = static_cast<uint8_t>(MsgType::kSessionReport);
          PutU64(&body, m.session_id);
          PutString(&body, m.report_json);
        } else if constexpr (std::is_same_v<T, ErrorMsg>) {
          type = static_cast<uint8_t>(MsgType::kError);
          PutU64(&body, m.session_id);
          PutU8(&body, m.code);
          PutString(&body, m.message);
          PutU64(&body, static_cast<uint64_t>(m.retry_after_nanos));
        } else if constexpr (std::is_same_v<T, AckMsg>) {
          type = static_cast<uint8_t>(MsgType::kAck);
          PutU64(&body, m.session_id);
        } else if constexpr (std::is_same_v<T, PingMsg>) {
          type = static_cast<uint8_t>(MsgType::kPing);
          PutU64(&body, m.nonce);
        } else if constexpr (std::is_same_v<T, PongMsg>) {
          type = static_cast<uint8_t>(MsgType::kPong);
          PutU64(&body, m.nonce);
        }
      },
      msg);
  return EncodeFrame(type, body);
}

Result<Message> DecodeMessage(uint8_t type, std::string_view body) {
  size_t pos = 0;
  switch (static_cast<MsgType>(type)) {
    case MsgType::kOpenSession: {
      OpenSession m;
      uint64_t deadline = 0;
      if (!GetU64(body, &pos, &m.session_id) ||
          !GetString(body, &pos, &m.tenant) || !GetString(body, &pos, &m.sql) ||
          !GetU8(body, &pos, &m.has_single) ||
          !GetString(body, &pos, &m.single_csv) ||
          !GetU64(body, &pos, &deadline)) {
        return Truncated("OpenSession");
      }
      m.deadline_nanos = static_cast<int64_t>(deadline);
      CONSENTDB_RETURN_IF_ERROR(CheckEnd(body, pos, "OpenSession"));
      return Message(m);
    }
    case MsgType::kProbeRequest: {
      ProbeRequest m;
      if (!GetU64(body, &pos, &m.session_id) ||
          !GetU64(body, &pos, &m.variable) ||
          !GetString(body, &pos, &m.variable_name) ||
          !GetString(body, &pos, &m.owner)) {
        return Truncated("ProbeRequest");
      }
      CONSENTDB_RETURN_IF_ERROR(CheckEnd(body, pos, "ProbeRequest"));
      return Message(m);
    }
    case MsgType::kProbeAnswer: {
      ProbeAnswer m;
      if (!GetU64(body, &pos, &m.session_id) ||
          !GetU64(body, &pos, &m.variable) || !GetU8(body, &pos, &m.answer)) {
        return Truncated("ProbeAnswer");
      }
      CONSENTDB_RETURN_IF_ERROR(CheckEnd(body, pos, "ProbeAnswer"));
      return Message(m);
    }
    case MsgType::kProbeFault: {
      ProbeFaultMsg m;
      if (!GetU64(body, &pos, &m.session_id) ||
          !GetU64(body, &pos, &m.variable) || !GetU8(body, &pos, &m.fault)) {
        return Truncated("ProbeFault");
      }
      CONSENTDB_RETURN_IF_ERROR(CheckEnd(body, pos, "ProbeFault"));
      return Message(m);
    }
    case MsgType::kSessionReport: {
      SessionReportMsg m;
      if (!GetU64(body, &pos, &m.session_id) ||
          !GetString(body, &pos, &m.report_json)) {
        return Truncated("SessionReport");
      }
      CONSENTDB_RETURN_IF_ERROR(CheckEnd(body, pos, "SessionReport"));
      return Message(m);
    }
    case MsgType::kError: {
      ErrorMsg m;
      uint64_t retry_after = 0;
      if (!GetU64(body, &pos, &m.session_id) || !GetU8(body, &pos, &m.code) ||
          !GetString(body, &pos, &m.message) ||
          !GetU64(body, &pos, &retry_after)) {
        return Truncated("Error");
      }
      m.retry_after_nanos = static_cast<int64_t>(retry_after);
      CONSENTDB_RETURN_IF_ERROR(CheckEnd(body, pos, "Error"));
      return Message(m);
    }
    case MsgType::kAck: {
      AckMsg m;
      if (!GetU64(body, &pos, &m.session_id)) return Truncated("Ack");
      CONSENTDB_RETURN_IF_ERROR(CheckEnd(body, pos, "Ack"));
      return Message(m);
    }
    case MsgType::kPing: {
      PingMsg m;
      if (!GetU64(body, &pos, &m.nonce)) return Truncated("Ping");
      CONSENTDB_RETURN_IF_ERROR(CheckEnd(body, pos, "Ping"));
      return Message(m);
    }
    case MsgType::kPong: {
      PongMsg m;
      if (!GetU64(body, &pos, &m.nonce)) return Truncated("Pong");
      CONSENTDB_RETURN_IF_ERROR(CheckEnd(body, pos, "Pong"));
      return Message(m);
    }
  }
  return Status::InvalidArgument("unknown message type " +
                                 std::to_string(static_cast<int>(type)));
}

uint8_t WireStatusCode(StatusCode code) { return static_cast<uint8_t>(code); }

Status StatusFromWire(uint8_t code, std::string message) {
  switch (static_cast<StatusCode>(code)) {
    case StatusCode::kOk:
      return Status::OK();
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(message));
    case StatusCode::kNotFound:
      return Status::NotFound(std::move(message));
    case StatusCode::kAlreadyExists:
      return Status::AlreadyExists(std::move(message));
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(std::move(message));
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(std::move(message));
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(std::move(message));
    case StatusCode::kUnimplemented:
      return Status::Unimplemented(std::move(message));
    case StatusCode::kInternal:
      return Status::Internal(std::move(message));
    case StatusCode::kUnavailable:
      return Status::Unavailable(std::move(message));
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(std::move(message));
  }
  return Status::Internal(std::move(message));
}

}  // namespace consentdb::net
