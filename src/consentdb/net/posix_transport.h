// PosixTransport: the Transport seam over real TCP sockets.
//
// Addresses are "host:port" (IPv4 dotted quad) or a bare "port", which
// binds/connects on 127.0.0.1. Listening on port 0 picks a free port; the
// Listener's address() reports the one actually bound, so tests can listen
// on "0" and hand the resolved address to the client.
//
// All sockets are non-blocking, matching the Transport contract: Accept()
// returns OK-null when nothing is pending, Read() drains what the kernel
// has, Write() may accept only part of the buffer when the send queue is
// full. This file is the only place in the tree allowed to touch the
// socket API directly (consentdb-lint `raw-socket`).

#ifndef CONSENTDB_NET_POSIX_TRANSPORT_H_
#define CONSENTDB_NET_POSIX_TRANSPORT_H_

#include <memory>
#include <string>

#include "consentdb/util/transport.h"

namespace consentdb::net {

class PosixTransport : public Transport {
 public:
  Result<std::unique_ptr<Listener>> Listen(const std::string& address) override;
  Result<std::unique_ptr<Connection>> Connect(
      const std::string& address) override;
};

}  // namespace consentdb::net

#endif  // CONSENTDB_NET_POSIX_TRANSPORT_H_
