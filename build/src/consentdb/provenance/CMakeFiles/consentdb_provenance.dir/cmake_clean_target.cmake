file(REMOVE_RECURSE
  "libconsentdb_provenance.a"
)
