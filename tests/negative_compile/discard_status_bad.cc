// MUST NOT COMPILE: a Status-returning call whose result is dropped.
// Paired with discard_status_good.cc; see run_negative_compile.cmake.

#include "consentdb/util/status.h"

using consentdb::Status;

Status MightFail() { return Status::Internal("boom"); }

int main() {
  MightFail();  // dropped error — rejected by [[nodiscard]] + -Werror=unused-result
  return 0;
}
