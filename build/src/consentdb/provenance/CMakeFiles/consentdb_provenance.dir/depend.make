# Empty dependencies file for consentdb_provenance.
# This may be replaced when dependencies are built.
