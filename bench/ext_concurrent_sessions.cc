// Extension experiment: concurrent consent sessions through the
// SessionEngine. A server-shaped workload sends many sessions asking a
// small set of repeated join queries; the engine amortises parsing,
// optimization and provenance-annotated evaluation across sessions via its
// plan and provenance caches, while a thread pool overlaps the probing
// phases. The sequential baseline is ConsentManager::DecideAll per session
// (parse + optimize + evaluate + probe every time).
//
// The table reports wall time and throughput for both modes; the speedup
// column is the acceptance metric (target: >= 3x with warm caches on a
// repeated-query workload). Probe totals are printed as a cross-check that
// both modes ran identical sessions.

#include <chrono>
#include <memory>
#include <thread>

#include "bench_common.h"
#include "consentdb/consent/oracle.h"
#include "consentdb/core/consent_manager.h"
#include "consentdb/core/session_engine.h"
#include "consentdb/util/rng.h"

using namespace consentdb;

namespace {

// R(a, b) x S(b, c) with a small shared-b domain: the join fans out, the
// DISTINCT projection folds it back, and every output row carries a
// multi-term DNF. Evaluation dominates probing, which is the regime the
// provenance cache targets.
consent::SharedDatabase BuildDatabase(size_t rows) {
  using relational::Column;
  using relational::Schema;
  using relational::Tuple;
  using relational::Value;
  using relational::ValueType;

  consent::SharedDatabase sdb;
  auto check = [](const Status& s) { CONSENTDB_CHECK(s.ok(), s.ToString()); };
  check(sdb.CreateRelation("R", Schema({Column{"a", ValueType::kInt64},
                                        Column{"b", ValueType::kInt64}})));
  check(sdb.CreateRelation("S", Schema({Column{"b", ValueType::kInt64},
                                        Column{"c", ValueType::kInt64}})));
  const int64_t b_domain = 12;
  const int64_t a_domain = 40;
  for (size_t i = 0; i < rows; ++i) {
    auto r = sdb.InsertTuple(
        "R", Tuple{Value(static_cast<int64_t>(i) % a_domain),
                   Value(static_cast<int64_t>(i) % b_domain)},
        "owner" + std::to_string(i % 7), 0.5);
    CONSENTDB_CHECK(r.ok(), r.status().ToString());
    auto s = sdb.InsertTuple(
        "S", Tuple{Value(static_cast<int64_t>(i * 5 + 3) % b_domain),
                   Value(static_cast<int64_t>(i) % 4)},
        "owner" + std::to_string(i % 7), 0.5);
    CONSENTDB_CHECK(s.ok(), s.status().ToString());
  }
  return sdb;
}

double Seconds(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

}  // namespace

int main() {
  bench::BenchReport report("ext_concurrent_sessions");
  const size_t rows = bench::Scaled(120);
  const size_t sessions = bench::Scaled(200);
  size_t threads = std::thread::hardware_concurrency();
  if (threads < 4) threads = 4;

  // The repeated-query workload: four selection variants, round-robin.
  std::vector<std::string> sqls;
  for (int k = 0; k < 4; ++k) {
    sqls.push_back(
        "SELECT DISTINCT r.a FROM R r, S s WHERE r.b = s.b AND s.c = " +
        std::to_string(k));
  }

  consent::SharedDatabase sdb = BuildDatabase(rows);
  std::cout << "=== Extension: concurrent sessions (rows=" << rows
            << " per relation, sessions=" << sessions
            << ", distinct queries=" << sqls.size() << ", threads=" << threads
            << ") ===\n\n";

  // One hidden valuation per session, fixed up front so both modes answer
  // identically.
  std::vector<provenance::PartialValuation> hidden;
  hidden.reserve(sessions);
  for (size_t i = 0; i < sessions; ++i) {
    Rng rng(9000 + 127 * i);
    hidden.push_back(sdb.pool().SampleValuation(rng));
  }

  // --- Sequential baseline: full pipeline per session --------------------
  core::ConsentManager manager(sdb);
  size_t seq_probes = 0;
  auto t0 = std::chrono::steady_clock::now();
  for (size_t i = 0; i < sessions; ++i) {
    consent::ValuationOracle oracle(hidden[i]);
    Result<core::SessionReport> r =
        manager.DecideAll(sqls[i % sqls.size()], oracle);
    CONSENTDB_CHECK(r.ok(), r.status().ToString());
    seq_probes += r.value().num_probes;
  }
  const double seq_s = Seconds(std::chrono::steady_clock::now() - t0);

  // --- Engine: warm caches, then the same workload concurrently ----------
  core::EngineOptions options;
  options.num_threads = threads;
  // Valuations differ per session, so each keeps its own un-shared oracle.
  options.share_consent_ledger = false;
  core::SessionEngine engine(sdb, options);
  {  // warm-up: one session per distinct query populates both caches
    std::vector<std::unique_ptr<consent::ValuationOracle>> oracles;
    std::vector<core::SessionRequest> warm;
    for (size_t q = 0; q < sqls.size(); ++q) {
      oracles.push_back(
          std::make_unique<consent::ValuationOracle>(hidden[q]));
      core::SessionRequest request;
      request.sql = sqls[q];
      request.oracle = oracles.back().get();
      warm.push_back(std::move(request));
    }
    for (auto& r : engine.RunAll(std::move(warm))) {
      CONSENTDB_CHECK(r.ok(), r.status().ToString());
    }
  }

  std::vector<std::unique_ptr<consent::ValuationOracle>> oracles;
  std::vector<core::SessionRequest> requests;
  for (size_t i = 0; i < sessions; ++i) {
    oracles.push_back(std::make_unique<consent::ValuationOracle>(hidden[i]));
    core::SessionRequest request;
    request.sql = sqls[i % sqls.size()];
    request.oracle = oracles.back().get();
    requests.push_back(std::move(request));
  }
  size_t engine_probes = 0;
  t0 = std::chrono::steady_clock::now();
  std::vector<Result<core::SessionReport>> results =
      engine.RunAll(std::move(requests));
  const double eng_s = Seconds(std::chrono::steady_clock::now() - t0);
  for (auto& r : results) {
    CONSENTDB_CHECK(r.ok(), r.status().ToString());
    engine_probes += r.value().num_probes;
  }

  bench::Table table({"mode", "wall s", "sess/s", "probes", "speedup"});
  table.PrintHeader();
  table.PrintRow("sequential",
                 {bench::FormatMean(seq_s),
                  bench::FormatMean(static_cast<double>(sessions) / seq_s),
                  std::to_string(seq_probes), bench::FormatMean(1.0)});
  table.PrintRow("engine (warm)",
                 {bench::FormatMean(eng_s),
                  bench::FormatMean(static_cast<double>(sessions) / eng_s),
                  std::to_string(engine_probes),
                  bench::FormatMean(seq_s / eng_s)});

  core::SessionEngine::CacheStats stats = engine.cache_stats();
  std::cout << "\nplan cache: " << stats.plan_hits << " hits / "
            << stats.plan_misses << " misses; provenance cache: "
            << stats.provenance_hits << " hits / " << stats.provenance_misses
            << " misses\n";

  report.AddResult("sequential/wall", seq_s, "seconds");
  report.AddResult("engine_warm/wall", eng_s, "seconds");
  report.AddResult("sequential/probes", static_cast<double>(seq_probes),
                   "probes");
  report.AddResult("engine_warm/probes", static_cast<double>(engine_probes),
                   "probes");
  report.AddResult("engine_warm/speedup", seq_s / eng_s, "x");
  const uint64_t plan_total = stats.plan_hits + stats.plan_misses;
  const uint64_t prov_total = stats.provenance_hits + stats.provenance_misses;
  if (plan_total > 0) {
    report.AddResult("cache.plan/hit_rate",
                     static_cast<double>(stats.plan_hits) /
                         static_cast<double>(plan_total),
                     "ratio");
  }
  if (prov_total > 0) {
    report.AddResult("cache.prov/hit_rate",
                     static_cast<double>(stats.provenance_hits) /
                         static_cast<double>(prov_total),
                     "ratio");
  }
  report.Emit();
  std::cout << "\nexpected shape: identical probe totals; with warm caches "
               "the engine skips\nparse/optimize/evaluate per session, so "
               "throughput rises well past the 3x target\neven before "
               "thread-level overlap of the probing phases.\n";
  return 0;
}
