// End-to-end integration tests: random shared databases and SPJU queries
// run through the full pipeline (parser -> annotated evaluation -> strategy
// selection -> probing session), with every verdict cross-checked against
// the possible-worlds definition (Def. II.6) evaluated directly.

#include <gtest/gtest.h>

#include "consentdb/core/consent_manager.h"
#include "consentdb/strategy/expected_cost.h"
#include "consentdb/util/rng.h"
#include "test_fixtures.h"

namespace consentdb {
namespace {

using consent::SharedDatabase;
using consent::ValuationOracle;
using core::Algorithm;
using core::ConsentManager;
using core::SessionOptions;
using core::SessionReport;
using core::TupleConsent;
using provenance::PartialValuation;
using provenance::VarId;
using query::ParseQuery;
using query::PlanPtr;
using relational::Column;
using relational::Relation;
using relational::Schema;
using relational::Tuple;
using relational::Value;
using relational::ValueType;

SharedDatabase RandomDb(Rng& rng, size_t rows) {
  SharedDatabase sdb;
  EXPECT_TRUE(sdb.CreateRelation("R", Schema({Column{"a", ValueType::kInt64},
                                              Column{"b", ValueType::kInt64}}))
                  .ok());
  EXPECT_TRUE(sdb.CreateRelation("S", Schema({Column{"b", ValueType::kInt64},
                                              Column{"c", ValueType::kInt64}}))
                  .ok());
  EXPECT_TRUE(sdb.CreateRelation("T", Schema({Column{"c", ValueType::kInt64},
                                              Column{"d", ValueType::kInt64}}))
                  .ok());
  const char* peers[] = {"alice", "bob", "carol"};
  for (size_t i = 0; i < rows; ++i) {
    double prior = 0.2 + 0.6 * rng.UniformReal();
    (void)*sdb.InsertTuple("R",
                           Tuple{Value(rng.UniformInt(0, 4)),
                                 Value(rng.UniformInt(0, 3))},
                           peers[rng.UniformIndex(3)], prior);
    (void)*sdb.InsertTuple("S",
                           Tuple{Value(rng.UniformInt(0, 3)),
                                 Value(rng.UniformInt(0, 3))},
                           peers[rng.UniformIndex(3)], prior);
    (void)*sdb.InsertTuple("T",
                           Tuple{Value(rng.UniformInt(0, 3)),
                                 Value(rng.UniformInt(0, 4))},
                           peers[rng.UniformIndex(3)], prior);
  }
  return sdb;
}

const char* kQueries[] = {
    // One query per Table I class.
    "SELECT * FROM R WHERE a >= 2",
    "SELECT a FROM R WHERE b > 0",
    "SELECT * FROM S UNION SELECT * FROM T",
    "SELECT b FROM R UNION SELECT b FROM S",
    "SELECT * FROM R, S WHERE R.b = S.b",
    "SELECT * FROM R, S WHERE R.b = S.b UNION SELECT * FROM R r2, T "
    "WHERE r2.a = T.c",
    "SELECT S.c FROM R, S WHERE R.b = S.b",
    "SELECT S.c FROM R, S WHERE R.b = S.b UNION SELECT T.c FROM T WHERE "
    "d > 1",
    // Deeper pipelines.
    "SELECT R.a FROM R, S, T WHERE R.b = S.b AND S.c = T.c AND T.d > 0",
    "SELECT x.a FROM R x, R y WHERE x.b = y.b AND x.a != y.a",
};

class EndToEndTest : public ::testing::TestWithParam<int> {};

TEST_P(EndToEndTest, SessionVerdictsMatchDefinitionII6) {
  Rng rng(21000 + GetParam());
  SharedDatabase sdb = RandomDb(rng, 5);
  ConsentManager manager(sdb);
  for (const char* sql : kQueries) {
    PlanPtr plan = *ParseQuery(sql);
    PartialValuation hidden = sdb.pool().SampleValuation(rng);
    ValuationOracle oracle(hidden);
    Result<SessionReport> report = manager.DecideAll(plan, oracle);
    ASSERT_TRUE(report.ok()) << sql << ": " << report.status().ToString();
    Relation expected = *eval::EvaluateOverConsentedFragment(plan, sdb, hidden);
    size_t expected_shareable = expected.size();
    size_t got_shareable = 0;
    for (const TupleConsent& tc : report->tuples) {
      EXPECT_EQ(tc.shareable, expected.Contains(tc.tuple))
          << sql << " tuple " << tc.tuple.ToString();
      got_shareable += tc.shareable ? 1 : 0;
    }
    EXPECT_EQ(got_shareable, expected_shareable) << sql;
    // Probes never exceed the relevant variables.
    EXPECT_LE(report->num_probes, sdb.pool().size());
  }
}

TEST_P(EndToEndTest, SingleTupleSessionsAgreeWithFullSessions) {
  Rng rng(22000 + GetParam());
  SharedDatabase sdb = RandomDb(rng, 4);
  ConsentManager manager(sdb);
  for (const char* sql : {"SELECT b FROM R UNION SELECT b FROM S",
                          "SELECT S.c FROM R, S WHERE R.b = S.b"}) {
    PlanPtr plan = *ParseQuery(sql);
    PartialValuation hidden = sdb.pool().SampleValuation(rng);
    ValuationOracle full_oracle(hidden);
    Result<SessionReport> full = manager.DecideAll(plan, full_oracle);
    ASSERT_TRUE(full.ok());
    for (const TupleConsent& tc : full->tuples) {
      ValuationOracle single_oracle(hidden);
      Result<SessionReport> single =
          manager.DecideSingle(plan, tc.tuple, single_oracle);
      ASSERT_TRUE(single.ok());
      EXPECT_EQ(single->tuples[0].shareable, tc.shareable)
          << sql << " tuple " << tc.tuple.ToString();
      // The single-tuple session cannot need more probes than a full one
      // plus slack; it must never touch variables outside the tuple's
      // provenance.
      EXPECT_LE(single->num_probes, full->num_probes + sdb.pool().size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, EndToEndTest, ::testing::Range(0, 8));

// --- Determinism -----------------------------------------------------------------

TEST(IntegrationTest, SessionsAreDeterministicGivenOracle) {
  SharedDatabase sdb = testing::RecruitmentDatabase();
  ConsentManager manager(sdb);
  PartialValuation hidden(sdb.pool().size());
  Rng rng(5);
  for (VarId x = 0; x < sdb.pool().size(); ++x) {
    hidden.Set(x, rng.Bernoulli(0.5));
  }
  ValuationOracle o1(hidden);
  ValuationOracle o2(hidden);
  SessionReport r1 = *manager.DecideAll(testing::RecruitmentQuerySql(), o1);
  SessionReport r2 = *manager.DecideAll(testing::RecruitmentQuerySql(), o2);
  ASSERT_EQ(r1.num_probes, r2.num_probes);
  for (size_t i = 0; i < r1.trace.size(); ++i) {
    EXPECT_EQ(r1.trace[i].variable, r2.trace[i].variable);
    EXPECT_EQ(r1.trace[i].answer, r2.trace[i].answer);
  }
}

// --- Probes only touch relevant variables -----------------------------------------

TEST(IntegrationTest, ProbesStayWithinQueryProvenance) {
  SharedDatabase sdb = testing::RecruitmentDatabase();
  ConsentManager manager(sdb);
  // Query touching only the Companies relation.
  PlanPtr plan = *ParseQuery("SELECT name FROM Companies");
  PartialValuation all_true(sdb.pool().size());
  for (VarId x = 0; x < sdb.pool().size(); ++x) all_true.Set(x, true);
  ValuationOracle oracle(all_true);
  SessionReport report = *manager.DecideAll(plan, oracle);
  const std::vector<VarId>& company_vars = **sdb.Annotations("Companies");
  for (const auto& rec : report.trace) {
    EXPECT_NE(std::find(company_vars.begin(), company_vars.end(),
                        rec.variable),
              company_vars.end())
        << "probed a variable outside the query provenance: "
        << rec.variable_name;
  }
}

// --- Precomputed CNF reuse ----------------------------------------------------------

TEST(IntegrationTest, PrecomputedCnfsMatchOnTheFlyConversion) {
  using provenance::Cnf;
  using provenance::Dnf;
  using provenance::VarSet;
  std::vector<Dnf> dnfs = {Dnf({VarSet{0, 1}, VarSet{1, 2}}),
                           Dnf({VarSet{2, 3}, VarSet{0, 3}})};
  std::vector<double> pi(4, 0.5);
  std::vector<Cnf> cnfs;
  for (const Dnf& d : dnfs) cnfs.push_back(*provenance::DnfToCnf(d));

  strategy::EstimateOptions with_precomputed;
  with_precomputed.reps = 50;
  with_precomputed.seed = 9;
  with_precomputed.precomputed_cnfs = &cnfs;
  strategy::EstimateOptions on_the_fly;
  on_the_fly.reps = 50;
  on_the_fly.seed = 9;
  on_the_fly.attach_cnfs = true;

  double a = strategy::EstimateExpectedCost(
                 dnfs, pi, strategy::MakeQValueFactory(), with_precomputed)
                 .mean;
  double b = strategy::EstimateExpectedCost(
                 dnfs, pi, strategy::MakeQValueFactory(), on_the_fly)
                 .mean;
  EXPECT_DOUBLE_EQ(a, b);
}

// --- Peer-level accounting -----------------------------------------------------------

TEST(IntegrationTest, TraceSupportsPerPeerAccounting) {
  SharedDatabase sdb = testing::RecruitmentDatabase();
  ConsentManager manager(sdb);
  PartialValuation all_true(sdb.pool().size());
  for (VarId x = 0; x < sdb.pool().size(); ++x) all_true.Set(x, true);
  ValuationOracle oracle(all_true);
  SessionReport report =
      *manager.DecideAll(testing::RecruitmentQuerySql(), oracle);
  std::map<std::string, size_t> per_peer;
  for (const auto& rec : report.trace) ++per_peer[rec.owner];
  size_t total = 0;
  for (const auto& [peer, n] : per_peer) total += n;
  EXPECT_EQ(total, report.num_probes);
  EXPECT_FALSE(per_peer.empty());
}

}  // namespace
}  // namespace consentdb
