// ConsentManager: the end-to-end public API of the library.
//
// Implements OPT-PEER-PROBE and OPT-PEER-PROBE-SINGLE (Def. II.8): given a
// shared database and an SPJU query, it evaluates the query with provenance
// tracking, picks a probing algorithm (by the query class and the runtime
// provenance-structure checks of Sec. IV-D), and probes the peers through an
// oracle until the shareability of the requested output tuples is decided.

#ifndef CONSENTDB_CORE_CONSENT_MANAGER_H_
#define CONSENTDB_CORE_CONSENT_MANAGER_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "consentdb/consent/oracle.h"
#include "consentdb/consent/shared_database.h"
#include "consentdb/eval/evaluate.h"
#include "consentdb/eval/provenance_profile.h"
#include "consentdb/obs/metrics.h"
#include "consentdb/obs/span.h"
#include "consentdb/obs/tracer.h"
#include "consentdb/query/classify.h"
#include "consentdb/query/parser.h"
#include "consentdb/strategy/runner.h"
#include "consentdb/util/clock.h"
#include "consentdb/util/result.h"

namespace consentdb::core {

enum class Algorithm {
  kAuto,  // select by query class + runtime provenance checks (default)
  kRandom,
  kFreq,
  kRo,
  kQValue,
  kGeneral,
  kHybrid,
  kOptimal,  // exponential; small provenance only
};

const char* AlgorithmToString(Algorithm a);

// Retry discipline for fallible oracles (Sec. "fault tolerance"). A probe
// that returns a transient fault is retried with exponential backoff until
// it answers, attempts run out, or a deadline expires; a probe that returns
// kUnavailable (peer permanently gone) is never retried. Exhausted probes
// degrade gracefully: the variable is declared unreachable and affected
// tuples resolve to Verdict::kUnresolved instead of aborting the session.
struct RetryPolicy {
  // Maximum oracle attempts per probe, including the first. 0 = unlimited
  // (bound the session with a deadline instead).
  size_t max_attempts = 3;
  // Backoff before retry k (1-based) is
  //   min(initial * multiplier^(k-1), max) * jitter_factor.
  int64_t initial_backoff_nanos = 1'000'000;  // 1ms
  double backoff_multiplier = 2.0;
  int64_t max_backoff_nanos = 1'000'000'000;  // 1s
  // jitter_factor is drawn deterministically from (jitter_seed, variable,
  // attempt) in [1 - jitter, 1 + jitter]; 0 disables jitter entirely.
  double jitter = 0.0;
  uint64_t jitter_seed = 0;
  // Give up on a probe when its next backoff would land past this budget
  // (measured from the probe's first attempt). 0 = no per-probe deadline.
  int64_t probe_deadline_nanos = 0;
  // Stop the whole session (remaining tuples unresolved) once this much
  // time elapsed since the probe loop started. 0 = no session deadline.
  int64_t session_deadline_nanos = 0;

  // The delay before retry `attempt` (1-based) of variable `x`.
  int64_t BackoffNanos(size_t attempt, provenance::VarId x) const;
};

struct SessionOptions {
  Algorithm algorithm = Algorithm::kAuto;
  // Rewrite the plan (selection pushdown) before evaluation. Provenance is
  // plan-invariant, so this only affects evaluation time, never probing.
  bool optimize_plan = true;
  // Budgets for flattening provenance to DNF and for CNF computation.
  provenance::NormalFormLimits dnf_limits = {};
  provenance::NormalFormLimits cnf_limits = {};
  // Auto selection attempts Q-value only when no tuple has more DNF terms
  // than this (brute-force CNF feasibility, Sec. IV-C).
  size_t qvalue_max_terms = 64;
  uint64_t random_seed = 42;       // for Algorithm::kRandom
  size_t optimal_max_vars = 20;    // for Algorithm::kOptimal

  // Opt-in telemetry. With `metrics` attached the whole pipeline records
  // phase timings and counters (session.*, eval.*, query.*, strategy.*);
  // with `tracer` attached the session logs one structured event per probe
  // (cleared at session start, enriched with peer names/owners at the end).
  // Both default to null — the null sink — which skips every clock read and
  // must not change which probes are issued.
  obs::MetricsRegistry* metrics = nullptr;
  obs::SessionTracer* tracer = nullptr;
  // With `spans` attached the session records a causal timeline of nested
  // spans (session.run > session.select / session.probe > retry.wait, plus
  // wal.* underneath when the ledger journals through a WAL), exportable as
  // Chrome trace-event JSON. Null — the default — skips even the clock
  // read, like the other two sinks.
  obs::SpanCollector* spans = nullptr;

  // Opt-in resilience. Unset (the default) preserves the exact legacy
  // behaviour: probes go through ProbeOracle::Probe, faults are fatal, and
  // reports are byte-identical to pre-resilience builds. Set, the session
  // probes through TryProbe with this retry policy and degrades to
  // kUnresolved verdicts when probes are exhausted.
  std::optional<RetryPolicy> retry;
  // Time source for backoff sleeps and deadlines; null = the real clock.
  // Tests inject a VirtualClock so no wall-clock time ever passes.
  Clock* clock = nullptr;

  // Opt-in durability/resume: when set, every probe of the session routes
  // through this ledger (first touch forwards to the oracle, repeats answer
  // from the ledger; see ConsentLedger). A ledger recovered from its WAL
  // answers every previously journaled variable without peer traffic —
  // that is how a resumed session avoids duplicate probes — while ledger
  // hits still count as session probes (the paper's cost model), so the
  // resumed report is byte-identical to the uninterrupted one. Leave null
  // inside SessionEngine: the engine wires its own shared ledger.
  consent::ConsentLedger* ledger = nullptr;
};

// Shareability verdict for one output tuple.
struct TupleConsent {
  // Three-valued outcome: kUnresolved appears only in resilient sessions
  // whose probes were exhausted by faults (the consent state is genuinely
  // unknown — under possible-world semantics the tuple may or may not be
  // shareable).
  enum class Verdict : uint8_t { kNotShareable, kShareable, kUnresolved };

  relational::Tuple tuple;
  // Conservative boolean view: an unresolved tuple is NOT shareable
  // (consent defaults to deny). shareable == (verdict == kShareable).
  bool shareable = false;
  Verdict verdict = Verdict::kNotShareable;
};

const char* VerdictToString(TupleConsent::Verdict v);

// Why probes failed, by terminal cause (resilient sessions only).
struct FailureBreakdown {
  size_t transient = 0;         // transient faults observed (pre-retry)
  size_t unavailable = 0;       // probes lost to permanently-dead peers
  size_t retries_exhausted = 0; // probes lost to max_attempts
  size_t probe_deadline = 0;    // probes lost to the per-probe deadline
  size_t session_deadline = 0;  // 1 when the session deadline fired

  size_t lost_probes() const {
    return unavailable + retries_exhausted + probe_deadline;
  }
};

struct SessionReport {
  std::vector<TupleConsent> tuples;
  size_t num_probes = 0;
  // Probe sequence: variable, owning peer, answer.
  struct ProbeRecord {
    provenance::VarId variable;
    std::string variable_name;
    std::string owner;
    bool answer;
  };
  std::vector<ProbeRecord> trace;
  std::string algorithm_used;
  std::string selection_rationale;
  // True when the strategy attempted a mid-run residual-CNF attachment that
  // failed its budget (Hybrid wanted Q-value but retreated to General).
  // Distinguishes "Hybrid ran Q-value" from "Hybrid never could" in
  // reports; emitted in ToJson only when set so legacy reports stay
  // byte-identical.
  bool cnf_attach_failed = false;
  // Classification of the plan the session actually evaluated and selected
  // its strategy from (the optimized plan when optimization is on) — the
  // class whose Table I guarantees the session relied on.
  query::QueryProfile query_profile;
  // Classification of the plan as submitted, before optimization. Usually
  // identical; selection pushdown cannot change the fragment letters, but
  // the two are reported separately so they can never silently disagree.
  query::QueryProfile query_profile_submitted;
  // Summary of the provenance structure the session ran on.
  size_t provenance_tuples = 0;
  size_t provenance_max_terms = 0;
  size_t provenance_max_term_size = 0;
  bool provenance_overall_read_once = false;
  bool provenance_per_tuple_read_once = false;

  // --- Resilience (populated only when SessionOptions::retry is set) -------
  // When false, the fields below stay zero and are omitted from ToJson /
  // ToString, keeping legacy reports byte-identical.
  bool resilient = false;
  size_t num_retries = 0;     // repeat oracle attempts beyond the first
  size_t num_unresolved = 0;  // tuples with Verdict::kUnresolved
  FailureBreakdown failures;

  std::string ToString() const;
  // Machine-readable export: algorithm, probes, per-tuple verdicts, trace.
  std::string ToJson() const;
};

// Static analysis bundle (used by examples and the Table I bench).
struct QueryAnalysis {
  query::QueryProfile profile;
  query::Guarantees guarantees;
  eval::ProvenanceProfile provenance;
};

// The oracle-independent prefix of a consent session: the resolved plan
// with its provenance-annotated evaluation over one database state.
// Immutable once built, so concurrent sessions may share one instance —
// this is the unit the session engine's provenance cache stores, keyed by
// (plan fingerprint, database version).
struct PreparedSession {
  query::PlanPtr plan;       // as submitted
  query::PlanPtr effective;  // after optional optimization
  query::QueryProfile profile;            // classification of `effective`
  query::QueryProfile submitted_profile;  // classification of `plan`
  std::vector<relational::Tuple> tuples;  // output tuples (or the target)
  eval::ProvenanceProfile provenance;     // per-tuple DNFs + structure
  bool single = false;  // built by targeted (single-tuple) evaluation
};

class ConsentManager {
 public:
  explicit ConsentManager(const consent::SharedDatabase& sdb) : sdb_(sdb) {}

  // OPT-PEER-PROBE: decides shareability of every output tuple.
  [[nodiscard]] Result<SessionReport> DecideAll(const query::PlanPtr& plan,
                                  consent::ProbeOracle& oracle,
                                  const SessionOptions& options = {}) const;
  [[nodiscard]] Result<SessionReport> DecideAll(std::string_view sql,
                                  consent::ProbeOracle& oracle,
                                  const SessionOptions& options = {}) const;

  // OPT-PEER-PROBE-SINGLE: decides shareability of one output tuple (which
  // must belong to the query result).
  [[nodiscard]] Result<SessionReport> DecideSingle(const query::PlanPtr& plan,
                                     const relational::Tuple& tuple,
                                     consent::ProbeOracle& oracle,
                                     const SessionOptions& options = {}) const;
  [[nodiscard]] Result<SessionReport> DecideSingle(std::string_view sql,
                                     const relational::Tuple& tuple,
                                     consent::ProbeOracle& oracle,
                                     const SessionOptions& options = {}) const;

  // Evaluates and profiles a query without probing.
  [[nodiscard]] Result<QueryAnalysis> Analyze(const query::PlanPtr& plan,
                                const SessionOptions& options = {}) const;

  // --- Split pipeline (used by the session engine's caches) -----------------

  // The oracle-independent phase: optimizes (per options), evaluates with
  // provenance tracking, flattens to DNF and classifies. The result depends
  // only on the plan and the current database content, never on an oracle.
  [[nodiscard]] Result<PreparedSession> Prepare(const query::PlanPtr& plan,
                                  std::optional<relational::Tuple> single,
                                  const SessionOptions& options = {}) const;
  // Same, with the optimized plan supplied by the caller (the engine's plan
  // cache); options.optimize_plan is ignored.
  [[nodiscard]] Result<PreparedSession> PrepareResolved(
      const query::PlanPtr& plan, const query::PlanPtr& effective,
      std::optional<relational::Tuple> single,
      const SessionOptions& options = {}) const;

  // The probing phase: strategy selection and the probe loop over an
  // already-prepared session. Safe to call concurrently from multiple
  // threads on one shared `prepared` (each call builds its own
  // EvaluationState) as long as the database and its variable pool are not
  // mutated meanwhile and each concurrent call uses its own tracer.
  [[nodiscard]] Result<SessionReport> RunPrepared(const PreparedSession& prepared,
                                    consent::ProbeOracle& oracle,
                                    const SessionOptions& options = {}) const;

  const consent::SharedDatabase& shared_database() const { return sdb_; }

 private:
  [[nodiscard]] Result<SessionReport> RunSession(const query::PlanPtr& plan,
                                   std::optional<relational::Tuple> single,
                                   consent::ProbeOracle& oracle,
                                   const SessionOptions& options) const;
  [[nodiscard]] Result<SessionReport> FinishSession(const PreparedSession& prepared,
                                      consent::ProbeOracle& oracle,
                                      const SessionOptions& options,
                                      int64_t session_start) const;

  const consent::SharedDatabase& sdb_;
};

// --- Session internals shared with the async (network-serving) path ---------
//
// AsyncConsentSession reproduces FinishSession's pipeline with the probe
// loop inverted; these helpers are the pieces both paths must share so their
// reports stay byte-identical. Not part of the public API surface.
namespace internal {

// A chosen probing strategy plus the explanation reports carry.
struct StrategySelection {
  std::unique_ptr<strategy::ProbeStrategy> strategy;
  std::string rationale;
};

// Strategy selection (Sec. IV-D runtime checks over Table I guarantees).
// May attach CNFs to `state` as a side effect (Q-value paths).
[[nodiscard]] Result<StrategySelection> SelectSessionStrategy(
    Algorithm algorithm, const eval::ProvenanceProfile& profile,
    bool single_tuple, const SessionOptions& options,
    const std::vector<double>& pi, strategy::EvaluationState* state);

// What the probe loop produced, independent of how it was driven.
struct ProbePhase {
  size_t num_probes = 0;
  std::vector<provenance::Truth> outcomes;
  std::vector<std::pair<provenance::VarId, bool>> trace;
  bool resilient = false;
  size_t num_retries = 0;
  FailureBreakdown failures;
};

// Builds the SessionReport from a finished probe phase: verdicts, trace
// enrichment with peer names/owners, and the session.* report metrics.
SessionReport AssembleReport(const consent::SharedDatabase& sdb,
                             const PreparedSession& prepared,
                             const StrategySelection& sel, ProbePhase phase,
                             const SessionOptions& options);

}  // namespace internal

}  // namespace consentdb::core

#endif  // CONSENTDB_CORE_CONSENT_MANAGER_H_
