// Extensions of the probing loop from Sec. VII ("Different models for
// probes and answers" / "Different problem variants"):
//
//  * Batched probing — send up to `batch_size` probes per round without
//    waiting for answers, trading extra probes for fewer latency rounds.
//    Later probes of a round are chosen by simulating the strategy under
//    the most likely answers to the earlier ones.
//  * Budgeted probing — stop after a fixed number of probes and report
//    which formulas were decided (the "optimize the number of evaluated
//    expressions for a fixed number of probes" variant).

#ifndef CONSENTDB_STRATEGY_BATCH_RUNNER_H_
#define CONSENTDB_STRATEGY_BATCH_RUNNER_H_

#include "consentdb/strategy/runner.h"

namespace consentdb::strategy {

struct BatchProbeRun {
  // Total probes sent (>= the sequential optimum: some probes in a batch
  // can be made redundant by the answers to earlier ones).
  size_t num_probes = 0;
  // Latency rounds: batches sent.
  size_t num_rounds = 0;
  // Probes planned but not sent (skip_answered accounting only).
  size_t num_skipped = 0;
  std::vector<Truth> outcomes;
};

// Runs `factory`-built strategies in rounds of up to `batch_size` probes.
// Within a round, the strategy's subsequent picks are derived on a scratch
// copy of the state under the most-likely-answer assumption (x assumed True
// iff pi(x) >= 0.5). batch_size == 1 degenerates to sequential probing.
// With instrumentation attached, per-round planning time goes to the
// "batch.plan_ns" histogram and every sent probe becomes a tracer event.
//
// `skip_answered` selects the round's send-time accounting:
//   * false (default, the paper's model): the whole planned batch is sent —
//     every sent probe counts, even those made redundant (their variable
//     answered or their formulas decided) by earlier answers of the same
//     round.
//   * true: before sending each planned probe, the variable is re-checked
//     against the REAL state; probes whose variable is already answered or
//     no longer useful are dropped (not sent to the oracle, not counted,
//     tallied in num_skipped). This is the accounting the session engine's
//     shared consent ledger needs: a variable answered by a concurrent
//     session must not be re-sent to its peer.
BatchProbeRun RunToCompletionBatched(EvaluationState& state,
                                     const StrategyFactory& factory,
                                     const ProbeFn& probe, size_t batch_size,
                                     const RunInstrumentation& instr = {},
                                     bool skip_answered = false);

struct BudgetedProbeRun {
  size_t num_probes = 0;
  // Per-formula value; Unknown for formulas the budget did not resolve.
  std::vector<Truth> outcomes;
  size_t num_decided = 0;
};

// Probes sequentially with `strategy` but stops after `max_probes` (or when
// everything is decided, whichever comes first).
BudgetedProbeRun RunWithBudget(EvaluationState& state, ProbeStrategy& strategy,
                               const ProbeFn& probe, size_t max_probes,
                               const RunInstrumentation& instr = {});

}  // namespace consentdb::strategy

#endif  // CONSENTDB_STRATEGY_BATCH_RUNNER_H_
