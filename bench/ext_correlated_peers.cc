// Extension experiment (Sec. VII, "Beyond independent probabilities"):
// what happens when the independence assumption behind the expected-cost
// optimisation is violated.
//
// Hidden valuations are drawn with per-peer coherence: at coherence c a
// peer answers all probes with one coin flip with probability c (and
// independently otherwise). The strategies still plan under the
// independent priors. The table reports expected probes per strategy as
// coherence grows from 0 (the paper's model) to 1 (every peer is a block).

#include "bench_common.h"
#include "consentdb/consent/correlated.h"
#include "consentdb/datasets/skewed.h"
#include "consentdb/strategy/runner.h"

using namespace consentdb;

int main() {
  const size_t reps = bench::RepsFromEnv(5);
  const size_t rows = bench::Scaled(200);
  std::cout << "=== Extension: correlated peers (skewed rows=" << rows
            << ", joins=4, limit=8, rep=2.6, pi=0.7,\n    4 peers, reps="
            << reps << ") ===\n\n";

  std::vector<bench::NamedStrategy> strategies =
      bench::PaperStrategies(/*seed=*/305);
  std::vector<std::string> columns = {"coherence"};
  for (const auto& s : strategies) columns.push_back(s.name);
  bench::Table table(columns);
  table.PrintHeader();

  provenance::NormalFormLimits cnf_limits;
  cnf_limits.max_sets = 50000;
  const char* kPeers[] = {"alice", "bob", "carol", "dan"};

  for (double coherence : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    std::vector<double> sums(strategies.size(), 0.0);
    std::vector<size_t> counts(strategies.size(), 0);
    std::vector<bool> applicable(strategies.size(), true);
    size_t max_mult = 1;
    for (const auto& s : strategies) {
      max_mult = std::max(max_mult, s.reps_multiplier);
    }
    for (size_t rep = 0; rep < reps * max_mult; ++rep) {
      Rng rng(4800 + rep * 7919);
      datasets::SkewedParams params;
      params.num_rows = rows;
      datasets::SkewedDataset ds = datasets::GenerateSkewed(params, rng);
      // Assign every variable to one of four peers so coherence bites.
      for (provenance::VarId x = 0; x < ds.pool.size(); ++x) {
        ds.pool.SetOwner(x, kPeers[x % 4]);
      }
      provenance::PartialValuation hidden =
          consent::SampleCorrelatedValuation(ds.pool, coherence, rng);
      std::vector<double> pi = ds.pool.Probabilities();
      for (size_t i = 0; i < strategies.size(); ++i) {
        const bench::NamedStrategy& s = strategies[i];
        if (rep >= reps * s.reps_multiplier || !applicable[i]) continue;
        strategy::EvaluationState state(ds.dnfs, pi);
        if (s.needs_cnfs && !state.TryAttachResidualCnfs(cnf_limits)) {
          applicable[i] = false;
          continue;
        }
        std::unique_ptr<strategy::ProbeStrategy> strat = s.factory();
        strategy::ProbeRun run = strategy::RunToCompletion(
            state, *strat, [&hidden](provenance::VarId x) {
              return hidden.Get(x) == provenance::Truth::kTrue;
            });
        sums[i] += static_cast<double>(run.num_probes);
        counts[i] += 1;
      }
    }
    std::vector<std::string> cells;
    for (size_t i = 0; i < strategies.size(); ++i) {
      cells.push_back(applicable[i] && counts[i] > 0
                          ? bench::FormatMean(sums[i] /
                                              static_cast<double>(counts[i]))
                          : std::string("n/a"));
    }
    table.PrintRow(bench::FormatMean(coherence), cells);
  }
  std::cout << "\nexpected shape: all strategies benefit from coherence (one "
               "answer decides\nmany tuples), and the informed algorithms "
               "keep their lead even though they\nplan under the (violated) "
               "independence assumption.\n";
  return 0;
}
