// ShardedConsentLedger: the ConsentLedger interface over N hash-partitioned
// shards, each an ordinary ConsentLedger with its own mutex and — via the
// existing AttachJournal seam — its own WAL with independent group-commit
// and compaction. Consent answers are independent per-variable facts
// (Sec. II), so partitioning them is semantically invisible: a session
// probing through a sharded ledger reports byte-identically to one probing
// through a single ledger (the `ctest -L sharding` differential suite holds
// this across shard counts 1/2/4/7).
//
// What sharding buys: the single ledger serializes every probe, map insert
// and journal fsync under one mutex. Here, probes of variables on different
// shards contend only on their own shard's mutex and fsync stream; the one
// remaining global point is the backing oracle, which stays serialized
// under probe_mu_ (the ProbeOracle contract does not require thread
// safety). The expensive part of a recorded answer — the WAL append +
// group-commit fsync — happens under the shard mutex only, after probe_mu_
// is released, so journal I/O scales with the shard count.
//
// Lock order (kept acyclic, see consentdb-analyze's lock-order graph):
//   shard ConsentLedger::mu_  ->  ShardedConsentLedger::probe_mu_
//   shard ConsentLedger::mu_  ->  WalWriter::mu_
// probe_mu_ never wraps a shard mutex or a WAL mutex.

#ifndef CONSENTDB_CONSENT_SHARDED_LEDGER_H_
#define CONSENTDB_CONSENT_SHARDED_LEDGER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "consentdb/consent/oracle.h"
#include "consentdb/util/thread_annotations.h"

namespace consentdb::consent {

class WalWriter;

class ShardedConsentLedger : public ConsentLedger {
 public:
  explicit ShardedConsentLedger(size_t num_shards);

  // The shard owning variable `x`: a fixed SplitMix64 mix of the id, mod
  // the shard count. Deliberately *not* std::hash — the routing is baked
  // into every persisted shard WAL, so it must be identical across
  // processes, platforms and library versions.
  static size_t ShardOf(VarId x, size_t num_shards);

  size_t num_shards() const { return shards_.size(); }
  ConsentLedger& shard(size_t i) { return *shards_[i]; }
  const ConsentLedger& shard(size_t i) const { return *shards_[i]; }

  // Journals shard k's answers to wals[k]; exactly one writer per shard
  // (use OpenShardWalSet to open a stamped set). Replaces AttachJournal,
  // which is a single-log seam and CHECK-fails on a sharded ledger.
  void AttachShardJournals(const std::vector<WalWriter*>& wals,
                           uint64_t compact_every_records = 0);

  // --- ConsentLedger interface, routed to the owning shard ---------------

  bool ProbeVia(ProbeOracle& oracle, VarId x,
                bool* answered_from_ledger = nullptr) override;
  ProbeAttempt TryProbeVia(ProbeOracle& oracle, VarId x,
                           bool* answered_from_ledger = nullptr) override;
  std::optional<bool> Lookup(VarId x) const override;
  void AttachJournal(WalWriter* wal,
                     uint64_t compact_every_records = 0) override;
  [[nodiscard]] Status journal_error() const override;
  [[nodiscard]] Status RestoreAnswer(VarId x, bool answer) override;
  std::vector<std::pair<VarId, bool>> Answers() const override;
  void Clear() override;

  // Engine-wide tallies, aggregated across shards so `\stats` and the
  // engine.* metrics read the same totals at any shard count. Each count is
  // a sum of relaxed per-shard atomics: exact once probing quiesces,
  // monotone but possibly mid-probe-skewed while shards are hot — the same
  // contract a single ledger's relaxed tallies already have.
  size_t size() const override;
  uint64_t hits() const override;
  uint64_t oracle_probes() const override;
  uint64_t faulted_probes() const override;
  uint64_t restored_answers() const override;

 private:
  // Serializes backing-oracle calls across shards: the shard mutex only
  // protects its own partition, but the ProbeOracle contract still promises
  // implementations they are never called concurrently, and that no
  // variable reaches a peer twice (per-shard maps keep that second half per
  // partition; the partitions are disjoint).
  class SerializedOracle;

  std::vector<std::unique_ptr<ConsentLedger>> shards_;
  // Guards the backing oracle *call*, not data: SerializedOracle holds it
  // across Probe/TryProbe so oracles are never entered concurrently (the
  // same contract ConsentLedger::mu_ provides in the single-ledger case).
  mutable Mutex probe_mu_;  // lint:allow mutex-guard
};

}  // namespace consentdb::consent

#endif  // CONSENTDB_CONSENT_SHARDED_LEDGER_H_
