file(REMOVE_RECURSE
  "CMakeFiles/fig3b_skewed_projection.dir/fig3b_skewed_projection.cc.o"
  "CMakeFiles/fig3b_skewed_projection.dir/fig3b_skewed_projection.cc.o.d"
  "fig3b_skewed_projection"
  "fig3b_skewed_projection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3b_skewed_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
