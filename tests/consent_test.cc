#include <gtest/gtest.h>

#include "consentdb/consent/oracle.h"
#include "consentdb/consent/shared_database.h"
#include "consentdb/consent/variable_pool.h"
#include "test_fixtures.h"

namespace consentdb::consent {
namespace {

using provenance::PartialValuation;
using provenance::Truth;
using provenance::VarId;
using relational::Column;
using relational::Schema;
using relational::Tuple;
using relational::Value;
using relational::ValueType;

// --- VariablePool -----------------------------------------------------------------

TEST(VariablePoolTest, AllocatesDenseIds) {
  VariablePool pool;
  EXPECT_EQ(pool.Allocate(), 0u);
  EXPECT_EQ(pool.Allocate(), 1u);
  EXPECT_EQ(pool.Allocate(), 2u);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(VariablePoolTest, DefaultNamesAndMetadata) {
  VariablePool pool;
  VarId a = pool.Allocate();
  VarId b = pool.Allocate("row-7", "Alice", 0.9);
  EXPECT_EQ(pool.name(a), "x0");
  EXPECT_EQ(pool.name(b), "row-7");
  EXPECT_EQ(pool.owner(b), "Alice");
  EXPECT_DOUBLE_EQ(pool.probability(b), 0.9);
  EXPECT_DOUBLE_EQ(pool.probability(a), 0.5);
}

TEST(VariablePoolTest, SetProbabilities) {
  VariablePool pool;
  pool.AllocateN(3);
  pool.SetProbability(1, 0.25);
  EXPECT_EQ(pool.Probabilities(), (std::vector<double>{0.5, 0.25, 0.5}));
  pool.SetAllProbabilities(0.7);
  EXPECT_EQ(pool.Probabilities(), (std::vector<double>{0.7, 0.7, 0.7}));
}

TEST(VariablePoolTest, SampleValuationRespectsExtremes) {
  VariablePool pool;
  VarId always = pool.Allocate("", "", 1.0);
  VarId never = pool.Allocate("", "", 0.0);
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    PartialValuation val = pool.SampleValuation(rng);
    EXPECT_EQ(val.Get(always), Truth::kTrue);
    EXPECT_EQ(val.Get(never), Truth::kFalse);
  }
}

TEST(VariablePoolTest, SampleValuationCoversAllVars) {
  VariablePool pool;
  pool.AllocateN(10, 0.5);
  Rng rng(4);
  PartialValuation val = pool.SampleValuation(rng);
  EXPECT_EQ(val.CountKnown(), 10u);
}

// --- SharedDatabase -----------------------------------------------------------------

TEST(SharedDatabaseTest, InsertAllocatesUniqueAnnotations) {
  SharedDatabase sdb;
  ASSERT_TRUE(
      sdb.CreateRelation("T", Schema({Column{"x", ValueType::kInt64}})).ok());
  VarId a = *sdb.InsertTuple("T", Tuple{Value(1)}, "Alice", 0.8);
  VarId b = *sdb.InsertTuple("T", Tuple{Value(2)}, "Bob", 0.3);
  EXPECT_NE(a, b);
  EXPECT_EQ(sdb.pool().owner(a), "Alice");
  EXPECT_EQ(sdb.pool().name(a), "T#0");
  EXPECT_DOUBLE_EQ(sdb.pool().probability(b), 0.3);
}

TEST(SharedDatabaseTest, ReinsertKeepsAnnotation) {
  SharedDatabase sdb;
  ASSERT_TRUE(
      sdb.CreateRelation("T", Schema({Column{"x", ValueType::kInt64}})).ok());
  VarId a = *sdb.InsertTuple("T", Tuple{Value(1)});
  VarId again = *sdb.InsertTuple("T", Tuple{Value(1)});
  EXPECT_EQ(a, again);
  EXPECT_EQ(sdb.pool().size(), 1u);
}

TEST(SharedDatabaseTest, AnnotationLookups) {
  SharedDatabase sdb;
  ASSERT_TRUE(
      sdb.CreateRelation("T", Schema({Column{"x", ValueType::kInt64}})).ok());
  VarId a = *sdb.InsertTuple("T", Tuple{Value(5)});
  EXPECT_EQ(*sdb.AnnotationOf("T", size_t{0}), a);
  EXPECT_EQ(*sdb.AnnotationOf("T", Tuple{Value(5)}), a);
  EXPECT_FALSE(sdb.AnnotationOf("T", size_t{9}).ok());
  EXPECT_FALSE(sdb.AnnotationOf("T", Tuple{Value(6)}).ok());
  EXPECT_FALSE(sdb.AnnotationOf("U", size_t{0}).ok());
}

TEST(SharedDatabaseTest, ConsentedFragmentFiltersByValuation) {
  SharedDatabase sdb;
  ASSERT_TRUE(
      sdb.CreateRelation("T", Schema({Column{"x", ValueType::kInt64}})).ok());
  VarId a = *sdb.InsertTuple("T", Tuple{Value(1)});
  VarId b = *sdb.InsertTuple("T", Tuple{Value(2)});
  PartialValuation val;
  val.Set(a, true);
  val.Set(b, false);
  relational::Database frag = sdb.ConsentedFragment(val);
  EXPECT_TRUE(frag.RelationOrDie("T").Contains(Tuple{Value(1)}));
  EXPECT_FALSE(frag.RelationOrDie("T").Contains(Tuple{Value(2)}));
}

TEST(SharedDatabaseTest, ConsentedFragmentTreatsUnknownAsExcluded) {
  SharedDatabase sdb;
  ASSERT_TRUE(
      sdb.CreateRelation("T", Schema({Column{"x", ValueType::kInt64}})).ok());
  (void)*sdb.InsertTuple("T", Tuple{Value(1)});
  relational::Database frag = sdb.ConsentedFragment(PartialValuation());
  EXPECT_TRUE(frag.RelationOrDie("T").empty());
}

TEST(SharedDatabaseTest, RecruitmentFixtureShape) {
  SharedDatabase sdb = testing::RecruitmentDatabase();
  EXPECT_EQ(sdb.TotalTuples(), 12u);  // Table II
  EXPECT_EQ(sdb.pool().size(), 12u);
  EXPECT_EQ(sdb.pool().owner(*sdb.AnnotationOf("JobSeekers", size_t{2})),
            "Alice");
}

// --- Oracles ---------------------------------------------------------------------------

TEST(ValuationOracleTest, AnswersFromHiddenValuation) {
  PartialValuation hidden;
  hidden.Set(0, true);
  hidden.Set(1, false);
  ValuationOracle oracle(hidden);
  EXPECT_TRUE(oracle.Probe(0));
  EXPECT_FALSE(oracle.Probe(1));
  EXPECT_EQ(oracle.probe_count(), 2u);
}

TEST(ValuationOracleTest, RepeatedProbesCountOnce) {
  PartialValuation hidden;
  hidden.Set(0, true);
  ValuationOracle oracle(hidden);
  EXPECT_TRUE(oracle.Probe(0));
  EXPECT_TRUE(oracle.Probe(0));
  EXPECT_EQ(oracle.probe_count(), 1u);
  EXPECT_EQ(oracle.trace().size(), 1u);
}

TEST(ValuationOracleTest, TraceRecordsOrder) {
  PartialValuation hidden;
  hidden.Set(3, true);
  hidden.Set(1, false);
  ValuationOracle oracle(hidden);
  oracle.Probe(3);
  oracle.Probe(1);
  ASSERT_EQ(oracle.trace().size(), 2u);
  EXPECT_EQ(oracle.trace()[0], (std::pair<VarId, bool>{3, true}));
  EXPECT_EQ(oracle.trace()[1], (std::pair<VarId, bool>{1, false}));
}

TEST(CallbackOracleTest, MemoisesAnswers) {
  int calls = 0;
  CallbackOracle oracle([&calls](VarId x) {
    ++calls;
    return x % 2 == 0;
  });
  EXPECT_TRUE(oracle.Probe(2));
  EXPECT_TRUE(oracle.Probe(2));
  EXPECT_FALSE(oracle.Probe(3));
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(oracle.probe_count(), 2u);
}

}  // namespace
}  // namespace consentdb::consent
