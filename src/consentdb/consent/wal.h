// Write-ahead log for the ConsentLedger: every successful probe answer is
// journaled before the session moves on, so a crash never forfeits consent
// that a peer already granted (re-asking peers is exactly the cost the
// ledger exists to avoid).
//
// File format (binary, little-endian):
//
//   consentdb-wal 1\n                              (16-byte magic)
//   [ u32 payload_len | u32 crc32(payload) | payload ]*
//
// with payload = { u8 record_type = 1 | u8 answer | u64 var_id }. Records
// are length-prefixed and CRC-checksummed, so a truncated or torn final
// record (the only damage a crashed append can cause) is detected and
// dropped while the clean prefix replays in full.
//
// Durability is tunable via a group-commit window on the injectable Clock:
// window 0 fsyncs every record (an answer is durable before AppendAnswer
// returns); window W batches fsyncs — at most the answers recorded in the
// last W nanoseconds can be lost to a power cut (a process kill loses
// nothing: the page cache survives).
//
// The WAL pairs with a compacted snapshot sidecar (`<wal>.snap`, written
// through consent/snapshot's ledger format): Compact() atomically persists
// the full answer set and resets the log. Recovery (RecoverLedger) replays
// snapshot + WAL tail; replay is idempotent, so a crash between the two
// compaction renames is harmless.

#ifndef CONSENTDB_CONSENT_WAL_H_
#define CONSENTDB_CONSENT_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "consentdb/consent/variable_pool.h"
#include "consentdb/obs/metrics.h"
#include "consentdb/obs/span.h"
#include "consentdb/util/clock.h"
#include "consentdb/util/io.h"
#include "consentdb/util/result.h"
#include "consentdb/util/thread_annotations.h"

namespace consentdb::consent {

class ConsentLedger;

struct WalOptions {
  // Nanoseconds between fsyncs: 0 syncs every append; > 0 batches appends
  // and syncs once the window since the last fsync has elapsed.
  int64_t group_commit_window_nanos = 0;
  // Clock for the group-commit window; nullptr = RealClock().
  Clock* clock = nullptr;
  // Optional wal.* instruments (appends, syncs, bytes, batch sizes).
  obs::MetricsRegistry* metrics = nullptr;
  // Optional span sink: wal.append / wal.fsync / wal.compact spans nest
  // under whatever session span is current on the calling thread, putting
  // WAL I/O on the same causal timeline as the probes that caused it.
  obs::SpanCollector* spans = nullptr;
};

// The snapshot sidecar of a WAL.
std::string WalSnapshotPath(const std::string& wal_path);

// Append side. Thread-safe; ConsentLedger calls AppendAnswer under its own
// mutex, but the writer also protects itself so shells/tests can share one.
class WalWriter {
 public:
  // Opens (or creates) the WAL at `path` for appending. An existing file is
  // validated first: a torn or corrupt tail — the residue of a crashed
  // append — is healed by rewriting the clean prefix before new records go
  // in, so damage can never sit in the middle of a log.
  [[nodiscard]] static Result<std::unique_ptr<WalWriter>> Open(
      Env* env, std::string path, WalOptions options = {});

  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  // Journals one answer; durable on return iff the group-commit window
  // decided to fsync (always, for window 0).
  [[nodiscard]] Status AppendAnswer(VarId x, bool answer) EXCLUDES(mu_);

  // Forces an fsync of everything appended so far.
  [[nodiscard]] Status Sync() EXCLUDES(mu_);

  // Atomically replaces the log with a compacted snapshot: writes `answers`
  // to the snapshot sidecar (tmp + fsync + rename), then resets the WAL to
  // an empty, synced log. Crash-safe at every step — recovery replays
  // old-snapshot+old-wal, new-snapshot+old-wal or new-snapshot+empty-wal,
  // all of which reproduce the same answer set (replay is idempotent).
  [[nodiscard]] Status CompactTo(
      const std::vector<std::pair<VarId, bool>>& answers) EXCLUDES(mu_);

  // Syncs and closes the file; further appends fail.
  [[nodiscard]] Status Close() EXCLUDES(mu_);

  const std::string& path() const { return path_; }
  uint64_t records_appended() const EXCLUDES(mu_);
  // Records appended but not yet fsynced (0 right after a sync).
  uint64_t pending_records() const EXCLUDES(mu_);
  uint64_t syncs() const EXCLUDES(mu_);
  uint64_t compactions() const EXCLUDES(mu_);

 private:
  WalWriter(Env* env, std::string path, WalOptions options);

  [[nodiscard]] Status SyncLocked() REQUIRES(mu_);

  Env* const env_;
  const std::string path_;
  const WalOptions options_;
  Clock* const clock_;

  mutable Mutex mu_;
  std::unique_ptr<WritableFile> file_ GUARDED_BY(mu_);
  uint64_t records_ GUARDED_BY(mu_) = 0;
  uint64_t pending_ GUARDED_BY(mu_) = 0;
  uint64_t syncs_ GUARDED_BY(mu_) = 0;
  uint64_t compactions_ GUARDED_BY(mu_) = 0;
  int64_t last_sync_nanos_ GUARDED_BY(mu_) = 0;
};

// Read side: the parsed content of a WAL file.
struct WalReplay {
  // Journaled answers in append order (may repeat a variable across
  // compaction boundaries; duplicates always agree or the log is corrupt).
  std::vector<std::pair<VarId, bool>> answers;
  uint64_t records = 0;
  // The final record was cut mid-bytes (crashed append / power cut).
  bool torn_tail = false;
  // A checksum or framing violation stopped the replay (bit rot); the clean
  // prefix before it is still returned.
  bool corrupt_record = false;
  // Tail bytes dropped by either condition.
  uint64_t bytes_dropped = 0;
};

// Parses the WAL at `path`. A missing file is NotFound; a file that is not
// a prefix-of-magic-or-valid-WAL is InvalidArgument. Damaged tails are not
// errors — they come back as torn_tail/corrupt_record with the recovered
// prefix in `answers`.
[[nodiscard]] Result<WalReplay> ReadWal(Env* env, const std::string& path);

// What RecoverLedger replayed; mirrored into the recovery.* metrics.
struct RecoveryStats {
  uint64_t snapshot_answers = 0;  // answers restored from the snapshot sidecar
  uint64_t wal_records = 0;       // WAL records replayed on top
  uint64_t recovered_answers = 0;  // distinct answers in the ledger afterwards
  bool torn_tail = false;
  bool corrupt_record = false;
  uint64_t bytes_dropped = 0;
  int64_t replay_nanos = 0;
};

// Replays `<wal>.snap` + the WAL tail into `ledger` via RestoreAnswer.
// Missing files are fine (fresh deployment = empty recovery). The replay is
// observationally silent: no oracle is touched, no probe/retry/tracer
// signal fires; only the dedicated recovery.* counters and the
// recovery.replay_ns histogram on `metrics` record that it happened.
// Conflicting answers for one variable fail with Internal — the journal is
// corrupt beyond what checksums can explain away.
[[nodiscard]] Result<RecoveryStats> RecoverLedger(
    Env* env, const std::string& wal_path, ConsentLedger* ledger,
    obs::MetricsRegistry* metrics = nullptr, Clock* clock = nullptr);

}  // namespace consentdb::consent

#endif  // CONSENTDB_CONSENT_WAL_H_
