file(REMOVE_RECURSE
  "CMakeFiles/ext_batch_probing.dir/ext_batch_probing.cc.o"
  "CMakeFiles/ext_batch_probing.dir/ext_batch_probing.cc.o.d"
  "ext_batch_probing"
  "ext_batch_probing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_batch_probing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
