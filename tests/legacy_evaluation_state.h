// LegacyEvaluationState: a frozen copy of the pre-columnar EvaluationState
// (vector-of-structs terms, vector-of-vectors adjacency), kept verbatim as
// the reference implementation for the differential suite. The strategy
// templates instantiate against it so legacy-order sessions can be replayed
// against the rewritten columnar state and compared probe-for-probe.
//
// Holds a system of monotone DNF formulas (one per query output tuple, from
// the provenance), optional CNFs (for Q-value), the probability map pi, and
// a partial consent valuation. After every probe answer the state performs
// the "maximal simplification" required of all algorithms in Sec. V-A:
//   * terms with a False variable are falsified;
//   * True variables are removed from terms; an emptied term satisfies its
//     formula;
//   * terms subsumed by a smaller residual term are retired (absorption), so
//     no strategy ever probes a useless variable;
//   * clauses are updated dually; a formula is decided the moment its value
//     is determined, retiring all of its terms and clauses.
//
// All bookkeeping is incremental: Assign(x, b) costs O(deg(x)) plus an
// absorption pass over the formulas containing x, and Q-value candidate
// scoring costs O(deg(x)) per candidate — this is what makes the paper's
// 1000-row experiments tractable.

#ifndef CONSENTDB_TESTS_LEGACY_EVALUATION_STATE_H_
#define CONSENTDB_TESTS_LEGACY_EVALUATION_STATE_H_

// NOLINTBEGIN: frozen pre-columnar reference implementation, kept
// byte-for-byte as the differential baseline — style fixes here would
// defeat its purpose.

#include <functional>
#include <string>
#include <vector>

#include "consentdb/provenance/normal_form.h"
#include "consentdb/provenance/truth.h"
#include "consentdb/util/result.h"

namespace consentdb::strategy {

using provenance::Cnf;
using provenance::Dnf;
using provenance::PartialValuation;
using provenance::Truth;
using provenance::VarId;
using provenance::VarSet;

class LegacyEvaluationState {
 public:
  // `pi[x]` is the probability that variable x is True; it must cover every
  // variable occurring in `dnfs`.
  LegacyEvaluationState(std::vector<Dnf> dnfs, std::vector<double> pi);

  // --- CNF attachment (required by Q-value scoring) -----------------------

  // Computes the CNF of every formula from its original DNF. Fails with
  // ResourceExhausted if a CNF exceeds `limits` (Q-value "not applicable").
  [[nodiscard]] Status AttachCnfs(provenance::NormalFormLimits limits = {});

  // Attaches precomputed CNFs (one per formula, same order as the DNFs;
  // entries for constant formulas are ignored). Avoids re-running the
  // conversion when many sessions share one formula system. Must be called
  // before any probe.
  void AttachPrecomputedCnfs(const std::vector<Cnf>& cnfs);

  // Computes CNFs of the *residual* formulas (Hybrid's late attachment);
  // returns true on success. No-op (true) when already attached.
  bool TryAttachResidualCnfs(provenance::NormalFormLimits limits = {});

  bool cnfs_attached() const { return cnfs_attached_; }

  // --- Formulas ------------------------------------------------------------

  size_t num_formulas() const { return formulas_.size(); }
  size_t num_undecided() const { return num_undecided_; }
  bool AllDecided() const { return num_undecided_ == 0; }
  Truth formula_value(size_t j) const;
  std::vector<Truth> FormulaValues() const;

  // --- Variables -----------------------------------------------------------

  const std::vector<double>& pi() const { return pi_; }
  double probability(VarId x) const;

  // Optional non-uniform probe costs (Sec. VII, "the cost could differ
  // across peers"). Defaults to 1 for every variable; must be set before
  // any probe. Cost-aware strategies divide their scores by the cost.
  void SetCosts(std::vector<double> costs);
  bool has_costs() const { return !costs_.empty(); }
  double cost(VarId x) const {
    return x < costs_.size() ? costs_[x] : 1.0;
  }
  Truth var_value(VarId x) const { return val_.Get(x); }
  const PartialValuation& valuation() const { return val_; }

  // Every variable occurring in the original formulas, ascending.
  const std::vector<VarId>& AllVars() const { return all_vars_; }

  // A variable is useful iff it is unprobed, reachable, and occurs in a
  // live (residual, non-absorbed) term of an undecided formula; probing any
  // other variable can never affect the outcome (or is impossible).
  bool IsUseful(VarId x) const;
  std::vector<VarId> UsefulVars() const;

  // --- Unreachable variables (resilience: permanently-dead peers) ----------

  // Declares that `x` can never be answered (its peer is gone, or retries
  // were exhausted). The variable stays Unknown — a term containing it can
  // still be falsified through its other variables, and its formula can
  // still be satisfied through other terms, but x itself is no longer
  // useful and will not be chosen by any strategy. Irreversible.
  void MarkUnreachable(VarId x);
  bool IsUnreachable(VarId x) const;
  size_t num_unreachable() const { return num_unreachable_; }

  // True while some useful variable remains. When this turns false with
  // formulas still undecided, those formulas are permanently unresolvable
  // (three-valued kUnresolved outcome): every path to deciding them runs
  // through an unreachable variable.
  bool HasUsefulVar() const;
  // Number of live terms containing x (the Freq criterion).
  size_t LiveTermCount(VarId x) const;

  // Records a probe answer and simplifies. `x` must be unprobed.
  void Assign(VarId x, bool value);

  // Ablation switch: disables the residual-absorption pass (subsumed terms
  // then stay live, so strategies may issue useless probes). Intended for
  // the ablation benchmarks only; must be set before any probe.
  void SetAbsorptionEnabled(bool enabled);

  // --- Terms (for RO / General / Freq) --------------------------------------

  size_t num_terms() const { return terms_.size(); }
  // Ids of all terms whose original conjunction contains x (any state).
  const std::vector<size_t>& TermsContaining(VarId x) const;
  bool TermLive(size_t tid) const;
  size_t TermFormula(size_t tid) const;
  // Unknown variables of a live term, ascending.
  std::vector<VarId> TermResidualVars(size_t tid) const;
  // Shim matching the columnar state's allocation-free iteration so the
  // templated strategies instantiate against both types identically.
  template <typename Fn>
  void ForEachTermResidualVar(size_t tid, Fn&& fn) const {
    for (VarId v : terms_[tid].vars) {
      if (val_.Get(v) == Truth::kUnknown) fn(v);
    }
  }
  size_t TermResidualSize(size_t tid) const;
  // Product of pi over the term's unknown variables.
  double TermResidualProbability(size_t tid) const;
  // Calls fn(tid) for every live term of every undecided formula.
  void ForEachLiveTerm(const std::function<void(size_t)>& fn) const;

  // --- Q-value scoring (Algs. 2-3); requires attached CNFs ------------------

  // The greedy Q-value of probing x: pi(x)*DeltaTrue + (1-pi(x))*DeltaFalse,
  // where Delta_b is the increase of the DHK goal utility
  // sum_j terms[j]*clauses[j] - t_j*c_j under the hypothetical answer b.
  double QValueScore(VarId x) const;
  // argmax of QValueScore over useful variables (ties: smallest id).
  VarId QValueArgMax() const;

  // --- Residual-structure checks (Hybrid / diagnostics) ---------------------

  // No unknown variable occurs in two live terms (across all undecided
  // formulas) — RO is provably optimal from this point on.
  bool ResidualOverallReadOnce() const;
  size_t MaxLiveTermsPerFormula() const;
  // Live (unknown-ish) term/clause counters per formula, for tests.
  size_t live_terms(size_t j) const;
  size_t qv_unknown_terms(size_t j) const;
  size_t live_clauses(size_t j) const;

  std::string ToString() const;

 private:
  enum class TermState : uint8_t {
    kLive,       // value Unknown, not subsumed
    kAbsorbed,   // value Unknown but subsumed by a smaller live term
    kFalsified,  // contains a False variable
    kSatisfied,  // all variables True (formula decided True)
    kDefunct,    // its formula was decided by other means
  };
  enum class ClauseState : uint8_t { kLive, kSatisfied, kFalsified, kDefunct };

  struct TermInfo {
    size_t formula;
    VarSet vars;
    uint32_t unknown_count;
    TermState state = TermState::kLive;
  };
  struct ClauseInfo {
    size_t formula;
    VarSet vars;
    uint32_t unknown_count;
    ClauseState state = ClauseState::kLive;
  };
  struct FormulaInfo {
    Truth value = Truth::kUnknown;
    std::vector<size_t> term_ids;
    std::vector<size_t> clause_ids;
    size_t live_terms = 0;        // TermState::kLive only
    size_t qv_unknown_terms = 0;  // kLive + kAbsorbed (DHK's t_j)
    size_t live_clauses = 0;      // DHK's c_j
    // Frozen totals for the DHK utility (set at CNF attachment).
    double qv_total_terms = 0;
    double qv_total_clauses = 0;
  };

  void DecideFormula(size_t j, Truth value);
  // Retires live terms of formula j that are subsumed by a smaller residual
  // term (run after a True assignment touched the formula).
  void AbsorbWithin(size_t j);
  void RegisterClauses(size_t j, const Cnf& cnf);

  std::vector<FormulaInfo> formulas_;
  std::vector<TermInfo> terms_;
  std::vector<ClauseInfo> clauses_;
  std::vector<std::vector<size_t>> var_to_terms_;
  std::vector<std::vector<size_t>> var_to_clauses_;
  // Live-term occurrence count per variable.
  std::vector<size_t> var_live_terms_;
  std::vector<VarId> all_vars_;
  std::vector<double> pi_;
  std::vector<double> costs_;  // empty = unit costs
  PartialValuation val_;
  // Permanently unanswerable variables (resilience); grows monotonically.
  std::vector<bool> unreachable_;
  size_t num_unreachable_ = 0;
  size_t num_undecided_ = 0;
  bool cnfs_attached_ = false;
  bool absorption_enabled_ = true;

  // Scratch for QValueScore (epoch-stamped per-formula accumulators).
  mutable std::vector<uint64_t> scratch_epoch_;
  mutable std::vector<size_t> scratch_formulas_;
  mutable uint64_t epoch_ = 0;
  struct Scratch {
    size_t terms_with_x = 0;
    size_t clauses_with_x = 0;
    bool sat_trigger = false;    // some term with x has unknown_count == 1
    bool false_trigger = false;  // some clause with x has unknown_count == 1
  };
  mutable std::vector<Scratch> scratch_;

  // Cache for ResidualOverallReadOnce.
  mutable bool ro_cache_valid_ = false;
  mutable bool ro_cache_value_ = false;

  // Q-value score cache: a variable's score only changes when a formula it
  // occurs in is touched by an assignment, so QValueArgMax re-scores only
  // the dirty candidates (the difference between O(#vars * deg) and
  // O(#dirty * deg) per probe dominates large skewed workloads).
  void MarkQValueDirty(size_t formula);
  mutable std::vector<double> qv_score_cache_;
  mutable std::vector<bool> qv_dirty_;
};

}  // namespace consentdb::strategy

// NOLINTEND

#endif  // CONSENTDB_TESTS_LEGACY_EVALUATION_STATE_H_
