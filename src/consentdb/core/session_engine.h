// SessionEngine: a server-shaped, multi-threaded front end for consent
// sessions. Many sessions run concurrently against one SharedDatabase,
// sharing three pieces of state that are expensive or wasteful to rebuild
// per session:
//
//   * a plan cache   — SQL text -> parsed + optimized PlanPtr, so repeated
//     queries skip the parser and the rewrite pass;
//   * a provenance cache — (plan fingerprint, database version) ->
//     PreparedSession (annotated output tuples + DNF provenance profile).
//     Provenance-annotated evaluation is the dominant per-session cost and
//     is immutable until the database changes (cf. provenance
//     materialization à la ProvSQL), so thousands of sessions asking the
//     same query over one snapshot pay for it once. Any database mutation
//     bumps SharedDatabase::version() and thereby invalidates every entry;
//   * a consent ledger — a variable probed by any in-flight session is
//     answered from the ledger for all others, so the engine never asks a
//     peer the same question twice (consent answers are per-variable facts,
//     not per-session ones).
//
// Caching never changes what a session reports: a cached PreparedSession is
// byte-for-byte the one ConsentManager would rebuild (tested), probing
// state is always per-session, and the ledger returns exactly the answers
// the oracle would (oracles must answer consistently). Running N sessions
// through the engine therefore yields reports identical to running them
// sequentially through ConsentManager.
//
// Thread-safety contract: the SharedDatabase (content and variable pool)
// must not be mutated while sessions are in flight. Mutate between
// RunAll/Submit waves; the version bump then retires stale cache entries
// automatically.

#ifndef CONSENTDB_CORE_SESSION_ENGINE_H_
#define CONSENTDB_CORE_SESSION_ENGINE_H_

#include <atomic>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "consentdb/consent/oracle.h"
#include "consentdb/consent/wal.h"
#include "consentdb/core/checkpoint.h"
#include "consentdb/core/consent_manager.h"
#include "consentdb/obs/flight_recorder.h"
#include "consentdb/util/io.h"
#include "consentdb/util/lru_cache.h"
#include "consentdb/util/thread_annotations.h"
#include "consentdb/util/thread_pool.h"

namespace consentdb::core {

struct EngineOptions {
  // Worker threads; 0 = hardware concurrency (at least 1).
  size_t num_threads = 0;
  size_t plan_cache_capacity = 256;
  size_t provenance_cache_capacity = 128;
  // Share one consent ledger across all sessions of this engine. Turn off
  // to give every request raw, unmemoized access to its own oracle.
  bool share_consent_ledger = true;
  // Shards of the shared consent ledger, hash-partitioned by variable id
  // (see consent/sharded_ledger.h). 1 — the default — is the classic
  // single-ledger engine, byte-identical to every prior release; > 1
  // spreads probe recording and journal fsyncs across that many
  // independently locked shards and requires share_consent_ledger. Session
  // reports are byte-identical at any shard count (the `ctest -L sharding`
  // differential suite holds this).
  size_t ledger_shards = 1;
  // Durability: journal every answer the shared ledger records to this WAL
  // (see consent/wal.h). Requires share_consent_ledger — an unshared probe
  // path never reaches the ledger, so nothing would be journaled — and
  // ledger_shards == 1 (a sharded ledger journals per shard; use
  // shard_wals). The WAL must outlive the engine.
  consent::WalWriter* wal = nullptr;
  // Per-shard journals for a sharded ledger: empty, or exactly
  // ledger_shards writers in shard-id order (OpenShardWalSet::pointers()).
  // Mutually exclusive with `wal`; the writers must outlive the engine.
  std::vector<consent::WalWriter*> shard_wals;
  // With a WAL (or shard WAL set) attached: compact the journal into its
  // snapshot sidecar every this-many journaled answers (0 = never
  // auto-compact; sharded ledgers count per shard).
  uint64_t wal_compact_every_records = 0;
  // Flight-recorder ring size (0 disables). The engine keeps the last this-
  // many spans/events for post-mortem: the ring is dumped to
  // `<path>.flight.json` by SaveCheckpoint and captured in
  // last_flight_dump() when a session dies to an injected crash. When
  // `session.spans` is attached the engine mirrors every finished span into
  // the ring; without a span collector only engine lifecycle events
  // (checkpoint, crash) are recorded. Recording costs a handful of relaxed
  // atomic stores and happens only on those events — the null-sink default
  // paths stay untouched.
  size_t flight_recorder_capacity = 1024;
  // Base options for every session. `tracer` must stay null here — a
  // tracer is per-session state; attach per-request tracers through
  // SessionRequest instead (`ledger` likewise: the engine wires its own
  // shared ledger). `metrics` may be set: the registry is thread-safe and
  // additionally receives the engine.* instruments below.
  SessionOptions session;
};

struct SessionRequest {
  // The query: SQL (resolved through the plan cache) or a prebuilt plan
  // (takes precedence; bypasses the plan cache, not the provenance cache).
  std::string sql;
  query::PlanPtr plan;
  // OPT-PEER-PROBE-SINGLE target. Targeted provenance depends on the tuple,
  // so single-tuple sessions bypass the provenance cache.
  std::optional<relational::Tuple> single;
  // Required. With the shared ledger enabled one oracle may serve many
  // concurrent requests (ledger access is serialized); with it disabled,
  // concurrent requests need distinct or thread-safe oracles.
  consent::ProbeOracle* oracle = nullptr;
  // Optional per-request probe tracer.
  obs::SessionTracer* tracer = nullptr;
};

// Metrics recorded into EngineOptions::session.metrics (when attached), on
// top of the per-session session.*/eval.*/strategy.* instruments:
//   engine.sessions            counter  sessions executed
//   cache.plan.hit/.miss       counters (stale-version hits count as miss)
//   cache.prov.hit/.miss       counters
//   engine.ledger.hit          counter  probes answered without an oracle
//   engine.queue_depth         gauge    tasks waiting for a worker
//   engine.sessions_in_flight  gauge    sessions currently executing
// The registry derives cache.plan.hit_rate / cache.prov.hit_rate lines in
// its exports from the hit/miss pairs.
class SessionEngine {
 public:
  explicit SessionEngine(const consent::SharedDatabase& sdb,
                         EngineOptions options = {});

  // Detaches the flight recorder from the caller-owned span collector (the
  // collector outlives the engine and must not keep a dangling pointer),
  // then joins the workers after draining every submitted session.
  ~SessionEngine();

  // Enqueues one session; the future carries its report (or error).
  [[nodiscard]] std::future<Result<SessionReport>> Submit(
      SessionRequest request);

  // Submits every request and waits; results are in request order.
  std::vector<Result<SessionReport>> RunAll(
      std::vector<SessionRequest> requests);

  struct CacheStats {
    uint64_t plan_hits = 0;
    uint64_t plan_misses = 0;
    uint64_t provenance_hits = 0;
    uint64_t provenance_misses = 0;
    size_t plan_entries = 0;
    size_t provenance_entries = 0;
  };
  CacheStats cache_stats() const;

  // --- Durability / crash recovery -----------------------------------------

  // Writes a checkpoint from which a fresh engine can resume: the database
  // snapshot, every ledger answer, and the spec of every in-flight
  // SQL-submitted session (plan-only requests are not resumable and are
  // skipped). Call from outside the worker pool; sessions may keep running
  // meanwhile — the checkpoint is simply a consistent cut of the ledger.
  [[nodiscard]] Status SaveCheckpoint(Env* env, const std::string& path);

  // Seeds the shared ledger with answers recovered from a checkpoint or a
  // WAL replay (ids must already be remapped to this database's pool; see
  // ReadCheckpoint). Observationally silent: no metrics, no oracle calls.
  [[nodiscard]] Status RestoreLedger(
      const std::vector<std::pair<provenance::VarId, bool>>& answers);

  // Specs of the in-flight resumable sessions, registration order.
  std::vector<CheckpointedSession> pending_sessions() const EXCLUDES(chk_mu_);

  // The engine's flight recorder (null when disabled via
  // EngineOptions::flight_recorder_capacity = 0). Safe to dump at any time.
  obs::FlightRecorder* flight_recorder() const { return flight_.get(); }

  // The flight-recorder JSON captured when a session last died to an
  // injected crash (empty if that never happened). The crashing env rejects
  // all I/O post-crash, so the dump is stashed here instead of on disk.
  std::string last_flight_dump() const EXCLUDES(flight_mu_);

  const consent::ConsentLedger& ledger() const { return *ledger_; }

  size_t num_threads() const { return pool_.num_threads(); }
  size_t queue_depth() const { return pool_.queue_depth(); }
  size_t sessions_in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }

  // --- Network serving hooks (used by net::ProbeServer) --------------------

  // Resolves a request through the plan and provenance caches without
  // running a probe loop: the prepared session the server's async path
  // drives event by event. `request.oracle` may stay null — no probing
  // happens here.
  [[nodiscard]] Result<std::shared_ptr<const PreparedSession>> PrepareForServe(
      const SessionRequest& request);

  // The shared consent ledger, mutable: async server sessions record
  // network answers through it (journaling included) and resumed sessions
  // replay from it. Null when share_consent_ledger is off.
  consent::ConsentLedger* shared_ledger() {
    return options_.share_consent_ledger ? ledger_.get() : nullptr;
  }

  // The base options every engine session runs with (metrics, limits,
  // clock); the server derives its async-session options from these.
  const SessionOptions& base_session_options() const {
    return options_.session;
  }

  // Registers a parked network session so SaveCheckpoint captures it like
  // any in-flight Submit; returns the id for ReleasePendingSession once the
  // session's report exists (or it is abandoned).
  uint64_t RegisterPendingSession(CheckpointedSession spec) EXCLUDES(chk_mu_);
  void ReleasePendingSession(uint64_t id) EXCLUDES(chk_mu_);

  // Graceful drain: every later Submit fails fast with kUnavailable while
  // sessions already queued run to completion (the destructor still joins
  // them). Irreversible.
  void BeginDrain() { draining_.store(true, std::memory_order_relaxed); }
  bool draining() const { return draining_.load(std::memory_order_relaxed); }

  // Drops every cached plan and prepared session. Only needed by tests and
  // memory-pressure handling: database mutations invalidate automatically
  // through the version in the cache keys.
  void InvalidateCaches();

  const ConsentManager& manager() const { return manager_; }

 private:
  struct PlanEntry {
    query::PlanPtr plan;
    query::PlanPtr effective;
    uint64_t version = 0;
  };
  struct ProvKey {
    uint64_t fingerprint = 0;
    uint64_t version = 0;
    bool operator==(const ProvKey& other) const {
      return fingerprint == other.fingerprint && version == other.version;
    }
  };
  struct ProvKeyHash {
    size_t operator()(const ProvKey& k) const {
      return static_cast<size_t>(
          (k.fingerprint ^ (k.version * 0x9e3779b97f4a7c15ull)));
    }
  };

  [[nodiscard]] Result<SessionReport> RunOne(const SessionRequest& request);
  [[nodiscard]] Result<PlanEntry> ResolvePlan(const SessionRequest& request,
                                const SessionOptions& options,
                                uint64_t version);
  [[nodiscard]] Result<std::shared_ptr<const PreparedSession>> ResolvePrepared(
      const SessionRequest& request, const PlanEntry& entry,
      const SessionOptions& options, uint64_t version);

  const consent::SharedDatabase& sdb_;
  ConsentManager manager_;
  EngineOptions options_;
  LruCache<std::string, std::shared_ptr<const PlanEntry>> plan_cache_;
  LruCache<ProvKey, std::shared_ptr<const PreparedSession>, ProvKeyHash>
      prov_cache_;
  // Plain ConsentLedger (ledger_shards == 1) or ShardedConsentLedger,
  // chosen once at construction; never null.
  std::unique_ptr<consent::ConsentLedger> ledger_;
  // In-flight resumable sessions, keyed by a registration id: entered at
  // Submit, erased when the session's RunOne returns (even on error). What
  // a checkpoint captures mid-crash is exactly the sessions whose futures
  // never resolved.
  mutable Mutex chk_mu_;
  std::map<uint64_t, CheckpointedSession> pending_ GUARDED_BY(chk_mu_);
  uint64_t next_pending_id_ GUARDED_BY(chk_mu_) = 0;
  std::unique_ptr<obs::FlightRecorder> flight_;
  mutable Mutex flight_mu_;
  std::string last_flight_dump_ GUARDED_BY(flight_mu_);
  std::atomic<uint64_t> plan_hits_{0};
  std::atomic<uint64_t> plan_misses_{0};
  std::atomic<uint64_t> prov_hits_{0};
  std::atomic<uint64_t> prov_misses_{0};
  std::atomic<size_t> in_flight_{0};
  std::atomic<bool> draining_{false};
  // Declared last: destroyed first, so the workers drain and join while
  // the caches, ledger and manager above are still alive.
  ThreadPool pool_;
};

}  // namespace consentdb::core

#endif  // CONSENTDB_CORE_SESSION_ENGINE_H_
