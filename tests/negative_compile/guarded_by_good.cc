// Control snippet: the same guarded structure accessed correctly through
// MutexLock scopes. Must compile clean under clang -Wthread-safety -Werror.

#include "consentdb/util/thread_annotations.h"

class Account {
 public:
  void Deposit(int amount) EXCLUDES(mu_) {
    consentdb::MutexLock lock(mu_);
    balance_ += amount;
  }
  int balance() const EXCLUDES(mu_) {
    consentdb::MutexLock lock(mu_);
    return balance_;
  }

 private:
  mutable consentdb::Mutex mu_;
  int balance_ GUARDED_BY(mu_) = 0;
};

int main() {
  Account a;
  a.Deposit(1);
  return a.balance();
}
