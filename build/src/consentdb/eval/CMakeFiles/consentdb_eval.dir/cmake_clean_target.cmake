file(REMOVE_RECURSE
  "libconsentdb_eval.a"
)
