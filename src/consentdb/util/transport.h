// Byte-stream transport abstraction for every networking path in ConsentDB.
//
// All code that moves bytes between processes opens connections through a
// Transport rather than touching sockets directly — the `raw-socket` lint
// rule enforces this, exactly as Env (util/io.h) owns file I/O. Two
// implementations exist, both in net/:
//
//   * PosixTransport — real TCP sockets, used by the shell's `serve` command
//     and by production deployments.
//   * ChaosTransport — an in-memory transport whose deliveries follow a
//     deterministic, SplitMix64-scheduled fault plan (drops, torn writes,
//     duplicate delivery, delays on the VirtualClock). The network chaos
//     harness runs entirely on it.
//
// The Connection contract is a non-blocking byte stream: Write may accept
// fewer bytes than offered (backpressure — buffer and retry), Read drains
// whatever is available right now (possibly nothing), and a dropped or
// closed connection surfaces as kUnavailable from either call. Message
// boundaries are a higher layer's job (net/frame.h).

#ifndef CONSENTDB_UTIL_TRANSPORT_H_
#define CONSENTDB_UTIL_TRANSPORT_H_

#include <memory>
#include <string>
#include <string_view>

#include "consentdb/util/result.h"

namespace consentdb {

// One end of an established byte stream. Not thread-safe; each endpoint is
// owned and driven by a single caller (the server reactor or a client).
class Connection {
 public:
  virtual ~Connection() = default;

  // Queues up to data.size() bytes onto the stream and returns how many were
  // accepted (possibly fewer under backpressure, possibly 0 — retry later).
  // kUnavailable once the connection is closed or dropped; bytes accepted by
  // earlier calls may or may not have reached the peer.
  [[nodiscard]] virtual Result<size_t> Write(std::string_view data) = 0;

  // Returns every byte available right now, in stream order; an empty
  // string means nothing is readable yet. kUnavailable once the connection
  // is closed or dropped and all delivered bytes have been drained.
  [[nodiscard]] virtual Result<std::string> Read() = 0;

  // Closes this end; the peer's next Read/Write observes kUnavailable
  // (after draining). Idempotent.
  virtual void Close() = 0;
};

// A bound listening endpoint.
class Listener {
 public:
  virtual ~Listener() = default;

  // The next pending connection, or an OK null pointer when none is waiting
  // (non-blocking accept). kUnavailable once the listener is closed.
  [[nodiscard]] virtual Result<std::unique_ptr<Connection>> Accept() = 0;

  // The resolved address peers should Connect() to (e.g. the actual port
  // when the caller bound port 0).
  virtual std::string address() const = 0;

  virtual void Close() = 0;
};

// The transport interface. Implementations are thread-safe; the endpoints
// they hand out are not.
class Transport {
 public:
  virtual ~Transport() = default;

  [[nodiscard]] virtual Result<std::unique_ptr<Listener>> Listen(
      const std::string& address) = 0;

  [[nodiscard]] virtual Result<std::unique_ptr<Connection>> Connect(
      const std::string& address) = 0;
};

}  // namespace consentdb

#endif  // CONSENTDB_UTIL_TRANSPORT_H_
