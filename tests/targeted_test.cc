#include <gtest/gtest.h>

#include "consentdb/eval/evaluate.h"
#include "consentdb/eval/targeted.h"
#include "consentdb/provenance/normal_form.h"
#include "consentdb/query/parser.h"
#include "consentdb/util/rng.h"
#include "test_fixtures.h"

namespace consentdb::eval {
namespace {

using consent::SharedDatabase;
using provenance::BoolExprPtr;
using query::ParseQuery;
using query::PlanPtr;
using relational::Column;
using relational::Schema;
using relational::Tuple;
using relational::Value;
using relational::ValueType;

SharedDatabase SmallDb(Rng& rng, size_t rows) {
  SharedDatabase sdb;
  EXPECT_TRUE(sdb.CreateRelation("R", Schema({Column{"a", ValueType::kInt64},
                                              Column{"b", ValueType::kInt64}}))
                  .ok());
  EXPECT_TRUE(sdb.CreateRelation("S", Schema({Column{"b", ValueType::kInt64},
                                              Column{"c", ValueType::kInt64}}))
                  .ok());
  for (size_t i = 0; i < rows; ++i) {
    EXPECT_TRUE(sdb.InsertTuple("R", Tuple{Value(rng.UniformInt(0, 3)),
                                           Value(rng.UniformInt(0, 2))})
                    .ok());
    EXPECT_TRUE(sdb.InsertTuple("S", Tuple{Value(rng.UniformInt(0, 2)),
                                           Value(rng.UniformInt(0, 3))})
                    .ok());
  }
  return sdb;
}

const char* kQueries[] = {
    "SELECT * FROM R WHERE a > 0",
    "SELECT a FROM R",
    "SELECT b FROM R UNION SELECT b FROM S",
    "SELECT * FROM R, S WHERE R.b = S.b",
    "SELECT S.c FROM R, S WHERE R.b = S.b",
    "SELECT x.a FROM R x, R y WHERE x.b = y.b",
    "SELECT a FROM R WHERE b = 1 UNION SELECT c FROM S WHERE b = 0",
};

// --- AnnotationForTuple agrees with full evaluation -------------------------------

class TargetedEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(TargetedEquivalenceTest, MatchesFullEvaluationForEveryResultTuple) {
  Rng rng(31000 + GetParam());
  SharedDatabase sdb = SmallDb(rng, 5);
  for (const char* sql : kQueries) {
    PlanPtr plan = *ParseQuery(sql);
    AnnotatedRelation full = *EvaluateAnnotated(plan, sdb);
    for (size_t i = 0; i < full.size(); ++i) {
      Result<BoolExprPtr> targeted =
          AnnotationForTuple(plan, sdb, full.tuple(i));
      ASSERT_TRUE(targeted.ok())
          << sql << " tuple " << full.tuple(i).ToString() << ": "
          << targeted.status().ToString();
      EXPECT_TRUE(provenance::EquivalentByEnumeration(full.annotation(i),
                                                      *targeted))
          << sql << " tuple " << full.tuple(i).ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, TargetedEquivalenceTest,
                         ::testing::Range(0, 8));

// --- Constrained evaluation is the filtered full evaluation ------------------------

TEST(ConstrainedEvalTest, PartialConstraintsFilterTheResult) {
  Rng rng(5);
  SharedDatabase sdb = SmallDb(rng, 6);
  PlanPtr plan = *ParseQuery("SELECT * FROM R, S WHERE R.b = S.b");
  AnnotatedRelation full = *EvaluateAnnotated(plan, sdb);
  // Constrain only the first column (R.a).
  ColumnConstraints constraints(4);
  constraints[0] = Value(1);
  AnnotatedRelation filtered =
      *EvaluateAnnotatedConstrained(plan, sdb, constraints);
  size_t expected = 0;
  for (size_t i = 0; i < full.size(); ++i) {
    if (!(full.tuple(i).at(0) == Value(1))) continue;
    ++expected;
    std::optional<size_t> j = filtered.IndexOf(full.tuple(i));
    ASSERT_TRUE(j.has_value());
    EXPECT_TRUE(provenance::EquivalentByEnumeration(full.annotation(i),
                                                    filtered.annotation(*j)));
  }
  EXPECT_EQ(filtered.size(), expected);
}

TEST(ConstrainedEvalTest, UnconstrainedMatchesFullEvaluation) {
  Rng rng(6);
  SharedDatabase sdb = SmallDb(rng, 4);
  PlanPtr plan = *ParseQuery("SELECT b FROM R UNION SELECT b FROM S");
  AnnotatedRelation full = *EvaluateAnnotated(plan, sdb);
  AnnotatedRelation open =
      *EvaluateAnnotatedConstrained(plan, sdb, ColumnConstraints(1));
  EXPECT_EQ(full.size(), open.size());
}

TEST(ConstrainedEvalTest, RejectsWrongArity) {
  Rng rng(7);
  SharedDatabase sdb = SmallDb(rng, 2);
  PlanPtr plan = *ParseQuery("SELECT a FROM R");
  EXPECT_FALSE(
      EvaluateAnnotatedConstrained(plan, sdb, ColumnConstraints(3)).ok());
}

// --- Error cases ----------------------------------------------------------------------

TEST(TargetedTest, MissingTupleIsNotFound) {
  Rng rng(8);
  SharedDatabase sdb = SmallDb(rng, 3);
  PlanPtr plan = *ParseQuery("SELECT a FROM R");
  Result<BoolExprPtr> r = AnnotationForTuple(plan, sdb, Tuple{Value(999)});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(TargetedTest, WrongArityIsInvalid) {
  Rng rng(9);
  SharedDatabase sdb = SmallDb(rng, 3);
  PlanPtr plan = *ParseQuery("SELECT a FROM R");
  Result<BoolExprPtr> r =
      AnnotationForTuple(plan, sdb, Tuple{Value(1), Value(2)});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(TargetedTest, RunningExampleTargeted) {
  SharedDatabase sdb = testing::RecruitmentDatabase();
  PlanPtr plan = *ParseQuery(testing::RecruitmentQuerySql());
  BoolExprPtr ann = *AnnotationForTuple(
      plan, sdb, Tuple{Value("PennSolarExperts Ltd.")});
  provenance::Dnf dnf = *provenance::Dnf::FromExpr(ann);
  EXPECT_EQ(dnf.num_terms(), 3u);  // David, Ellen, Georgia hires
  EXPECT_EQ(dnf.MaxTermSize(), 4u);
}

}  // namespace
}  // namespace consentdb::eval
