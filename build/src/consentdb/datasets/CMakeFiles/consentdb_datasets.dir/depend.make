# Empty dependencies file for consentdb_datasets.
# This may be replaced when dependencies are built.
