// Targeted provenance: the annotation of ONE output tuple, computed without
// materialising the full query result.
//
// The paper notes (proof of Prop. IV.11) that "for OPT-PEER-PROBE-SINGLE we
// can compute the provenance of the specific output tuple t we are
// interested in, without evaluating the whole query". This module does so
// by pushing the target tuple's values down the plan as equality
// constraints on output columns: scans only surface matching rows, products
// split the constraints between their sides, projections translate them to
// input columns, unions forward them positionally.

#ifndef CONSENTDB_EVAL_TARGETED_H_
#define CONSENTDB_EVAL_TARGETED_H_

#include "consentdb/consent/shared_database.h"
#include "consentdb/eval/annotated_relation.h"
#include "consentdb/query/plan.h"
#include "consentdb/util/result.h"

namespace consentdb::eval {

// Per-output-column equality constraints (nullopt = unconstrained).
using ColumnConstraints = std::vector<std::optional<relational::Value>>;

// Evaluates `plan` with provenance tracking, restricted to output tuples
// satisfying `constraints` (sized like the plan's output schema).
[[nodiscard]] Result<AnnotatedRelation> EvaluateAnnotatedConstrained(
    const query::PlanPtr& plan, const consent::SharedDatabase& sdb,
    const ColumnConstraints& constraints);

// The Boolean provenance of `tuple` in the result of `plan`, or NotFound if
// the tuple is not in Q(D). (For SPJU under set semantics, membership in
// Q(D) is equivalent to the annotation not being constant-False.)
[[nodiscard]] Result<provenance::BoolExprPtr> AnnotationForTuple(
    const query::PlanPtr& plan, const consent::SharedDatabase& sdb,
    const relational::Tuple& tuple);

}  // namespace consentdb::eval

#endif  // CONSENTDB_EVAL_TARGETED_H_
