// Exact optimal probing by exponential dynamic programming — the yardstick
// against which the polynomial strategies are validated on small instances
// (computing it in general is NP-hard, Thms. IV.9/IV.10/IV.15).

#ifndef CONSENTDB_STRATEGY_OPTIMAL_H_
#define CONSENTDB_STRATEGY_OPTIMAL_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "consentdb/strategy/strategies.h"

namespace consentdb::strategy {

// The optimisation target: the paper's expected number of probes, or the
// worst-case number of probes (the Sec. VII "other optimization metrics"
// variant, which ignores the probabilities).
enum class Objective {
  kExpectedCost,
  kWorstCase,
};

// Memoised DP over residual formula systems. The value of a state is
//   0                                       if all formulas are decided,
//   min_x 1 + pi(x)*V(state|x=T) + (1-pi(x))*V(state|x=F)   otherwise
// (or min_x 1 + max(V(T), V(F)) under Objective::kWorstCase), minimised
// over the useful variables x. States are canonicalised by the simplified
// formulas (decided formulas dropped, order-insensitive).
class OptimalDp {
 public:
  explicit OptimalDp(std::vector<double> pi,
                     Objective objective = Objective::kExpectedCost);

  struct Decision {
    double cost = 0.0;
    VarId best = provenance::kInvalidVar;  // invalid when all decided
  };

  // Expected optimal cost and best first probe for the residual system.
  // CHECK-fails if the system has more than `max_vars` distinct variables.
  Decision Solve(const std::vector<Dnf>& residual);

  size_t max_vars() const { return max_vars_; }
  void set_max_vars(size_t n) { max_vars_ = n; }

 private:
  Decision SolveImpl(const std::vector<Dnf>& residual);

  std::vector<double> pi_;
  Objective objective_;
  size_t max_vars_ = 20;
  std::unordered_map<std::string, Decision> memo_;
};

// One-shot helper: optimal expected cost for deciding every formula.
double OptimalExpectedCost(const std::vector<Dnf>& dnfs,
                           const std::vector<double>& pi,
                           size_t max_vars = 20);

// One-shot helper: the best achievable worst-case number of probes (the
// minimum over strategies of the maximum over valuations).
double OptimalWorstCaseProbes(const std::vector<Dnf>& dnfs,
                              size_t max_vars = 20);

// Worst-case probes of a concrete strategy, by exhausting all valuations of
// the occurring variables (<= 20 checked). Deterministic strategies only.
size_t WorstCaseProbes(const std::vector<Dnf>& dnfs,
                       const std::vector<double>& pi,
                       const StrategyFactory& factory,
                       bool attach_cnfs = false);

// The optimal DP packaged as a ProbeStrategy (exponential — small formulas
// only). Maintains its own residual copy of the system.
class OptimalStrategy : public ProbeStrategy {
 public:
  OptimalStrategy(std::vector<Dnf> dnfs, std::vector<double> pi,
                  size_t max_vars = 20);

  std::string name() const override { return "Optimal"; }
  VarId ChooseNext(EvaluationState& state) override;
  void OnAnswer(const EvaluationState& state, VarId x, bool value) override;

 private:
  std::vector<Dnf> residual_;
  PartialValuation val_;
  OptimalDp dp_;
};

}  // namespace consentdb::strategy

#endif  // CONSENTDB_STRATEGY_OPTIMAL_H_
