# Empty compiler generated dependencies file for calendar_sharing.
# This may be replaced when dependencies are built.
