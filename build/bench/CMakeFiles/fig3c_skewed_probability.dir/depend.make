# Empty dependencies file for fig3c_skewed_probability.
# This may be replaced when dependencies are built.
