# Empty dependencies file for prior_estimator_test.
# This may be replaced when dependencies are built.
