#include "consentdb/query/predicate.h"

#include <memory>

#include "consentdb/util/check.h"
#include "consentdb/util/string_util.h"

namespace consentdb::query {

using relational::Schema;
using relational::Tuple;
using relational::Value;

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

Status Operand::Bind(const Schema& schema) {
  if (!is_column_) return Status::OK();
  // Exact match first.
  if (std::optional<size_t> idx = schema.IndexOf(column_name_)) {
    column_index_ = *idx;
    return Status::OK();
  }
  // Bare name: match the suffix after '.' of qualified columns, uniquely.
  std::optional<size_t> found;
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    const std::string& name = schema.column(i).name;
    size_t dot = name.rfind('.');
    if (dot != std::string::npos && name.substr(dot + 1) == column_name_) {
      if (found.has_value()) {
        return Status::InvalidArgument("ambiguous column reference: " +
                                       column_name_);
      }
      found = i;
    }
  }
  if (!found.has_value()) {
    return Status::NotFound("unknown column: " + column_name_ + " in " +
                            schema.ToString());
  }
  column_index_ = *found;
  return Status::OK();
}

const Value& Operand::Resolve(const Tuple& t) const {
  if (!is_column_) return literal_;
  CONSENTDB_CHECK(column_index_ != static_cast<size_t>(-1),
                  "operand not bound: " + column_name_);
  return t.at(column_index_);
}

std::string Operand::ToString() const {
  return is_column_ ? column_name_ : literal_.ToString();
}

PredicatePtr Predicate::True() {
  return PredicatePtr(new Predicate(Kind::kTrue));
}

PredicatePtr Predicate::Comparison(Operand lhs, CompareOp op, Operand rhs) {
  std::unique_ptr<Predicate> p(new Predicate(Kind::kComparison));
  p->lhs_ = std::move(lhs);
  p->rhs_ = std::move(rhs);
  p->op_ = op;
  return PredicatePtr(std::move(p));
}

PredicatePtr Predicate::ColumnsEqual(std::string lhs, std::string rhs) {
  return Comparison(Operand::Column(std::move(lhs)), CompareOp::kEq,
                    Operand::Column(std::move(rhs)));
}

PredicatePtr Predicate::ColumnCompare(std::string column, CompareOp op,
                                      Value v) {
  return Comparison(Operand::Column(std::move(column)), op,
                    Operand::Literal(std::move(v)));
}

PredicatePtr Predicate::And(std::vector<PredicatePtr> children) {
  if (children.empty()) return True();
  if (children.size() == 1) return children[0];
  std::unique_ptr<Predicate> p(new Predicate(Kind::kAnd));
  p->children_ = std::move(children);
  return PredicatePtr(std::move(p));
}

PredicatePtr Predicate::Or(std::vector<PredicatePtr> children) {
  CONSENTDB_CHECK(!children.empty(), "empty OR predicate");
  if (children.size() == 1) return children[0];
  std::unique_ptr<Predicate> p(new Predicate(Kind::kOr));
  p->children_ = std::move(children);
  return PredicatePtr(std::move(p));
}

Result<PredicatePtr> Predicate::Bind(const Schema& schema) const {
  switch (kind_) {
    case Kind::kTrue:
      return True();
    case Kind::kComparison: {
      Operand lhs = lhs_;
      Operand rhs = rhs_;
      CONSENTDB_RETURN_IF_ERROR(lhs.Bind(schema));
      CONSENTDB_RETURN_IF_ERROR(rhs.Bind(schema));
      return Comparison(std::move(lhs), op_, std::move(rhs));
    }
    case Kind::kAnd:
    case Kind::kOr: {
      std::vector<PredicatePtr> bound;
      bound.reserve(children_.size());
      for (const PredicatePtr& c : children_) {
        CONSENTDB_ASSIGN_OR_RETURN(PredicatePtr b, c->Bind(schema));
        bound.push_back(std::move(b));
      }
      return kind_ == Kind::kAnd ? And(std::move(bound)) : Or(std::move(bound));
    }
  }
  return Status::Internal("unreachable predicate kind");
}

bool Predicate::Evaluate(const Tuple& t) const {
  switch (kind_) {
    case Kind::kTrue:
      return true;
    case Kind::kComparison: {
      const Value& a = lhs_.Resolve(t);
      const Value& b = rhs_.Resolve(t);
      switch (op_) {
        case CompareOp::kEq:
          return a == b;
        case CompareOp::kNe:
          return a != b;
        case CompareOp::kLt:
          return a < b;
        case CompareOp::kLe:
          return a <= b;
        case CompareOp::kGt:
          return a > b;
        case CompareOp::kGe:
          return a >= b;
      }
      return false;
    }
    case Kind::kAnd: {
      for (const PredicatePtr& c : children_) {
        if (!c->Evaluate(t)) return false;
      }
      return true;
    }
    case Kind::kOr: {
      for (const PredicatePtr& c : children_) {
        if (c->Evaluate(t)) return true;
      }
      return false;
    }
  }
  return false;
}

std::string Predicate::ToString() const {
  switch (kind_) {
    case Kind::kTrue:
      return "TRUE";
    case Kind::kComparison:
      return lhs_.ToString() + " " + CompareOpToString(op_) + " " +
             rhs_.ToString();
    case Kind::kAnd:
    case Kind::kOr: {
      std::vector<std::string> parts;
      parts.reserve(children_.size());
      for (const PredicatePtr& c : children_) parts.push_back(c->ToString());
      return "(" + Join(parts, kind_ == Kind::kAnd ? " AND " : " OR ") + ")";
    }
  }
  return "?";
}

}  // namespace consentdb::query
