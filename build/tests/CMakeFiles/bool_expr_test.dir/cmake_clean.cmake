file(REMOVE_RECURSE
  "CMakeFiles/bool_expr_test.dir/bool_expr_test.cc.o"
  "CMakeFiles/bool_expr_test.dir/bool_expr_test.cc.o.d"
  "bool_expr_test"
  "bool_expr_test.pdb"
  "bool_expr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bool_expr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
