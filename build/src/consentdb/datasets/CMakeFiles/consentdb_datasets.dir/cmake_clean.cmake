file(REMOVE_RECURSE
  "CMakeFiles/consentdb_datasets.dir/psi.cc.o"
  "CMakeFiles/consentdb_datasets.dir/psi.cc.o.d"
  "CMakeFiles/consentdb_datasets.dir/reductions.cc.o"
  "CMakeFiles/consentdb_datasets.dir/reductions.cc.o.d"
  "CMakeFiles/consentdb_datasets.dir/skewed.cc.o"
  "CMakeFiles/consentdb_datasets.dir/skewed.cc.o.d"
  "libconsentdb_datasets.a"
  "libconsentdb_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consentdb_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
