#include "consentdb/core/session_engine.h"

#include <thread>

#include "consentdb/consent/sharded_ledger.h"
#include "consentdb/consent/snapshot.h"
#include "consentdb/obs/names.h"
#include "consentdb/query/optimize.h"
#include "consentdb/util/check.h"

namespace consentdb::core {

using consent::ProbeOracle;
using provenance::VarId;
using query::PlanPtr;

namespace {

size_t ResolveThreads(size_t requested) {
  if (requested > 0) return requested;
  size_t hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace

SessionEngine::SessionEngine(const consent::SharedDatabase& sdb,
                             EngineOptions options)
    : sdb_(sdb),
      manager_(sdb),
      options_(std::move(options)),
      plan_cache_(options_.plan_cache_capacity),
      prov_cache_(options_.provenance_cache_capacity),
      pool_(ResolveThreads(options_.num_threads)) {
  CONSENTDB_CHECK(options_.session.tracer == nullptr,
                  "EngineOptions::session.tracer must be null; use "
                  "SessionRequest::tracer for per-session tracing");
  CONSENTDB_CHECK(options_.session.ledger == nullptr,
                  "EngineOptions::session.ledger must be null; the engine "
                  "wires its own shared ledger");
  CONSENTDB_CHECK(options_.ledger_shards > 0,
                  "EngineOptions::ledger_shards must be at least 1");
  if (options_.wal != nullptr || !options_.shard_wals.empty()) {
    CONSENTDB_CHECK(options_.share_consent_ledger,
                    "journaling requires share_consent_ledger: an unshared "
                    "probe path never reaches the ledger, so nothing would "
                    "be journaled");
  }
  if (options_.ledger_shards > 1) {
    CONSENTDB_CHECK(options_.share_consent_ledger,
                    "EngineOptions::ledger_shards > 1 requires "
                    "share_consent_ledger: sharding partitions the shared "
                    "ledger, which an unshared probe path never touches");
    CONSENTDB_CHECK(options_.wal == nullptr,
                    "a sharded ledger journals per shard: use "
                    "EngineOptions::shard_wals, not wal");
    auto sharded = std::make_unique<consent::ShardedConsentLedger>(
        options_.ledger_shards);
    if (!options_.shard_wals.empty()) {
      CONSENTDB_CHECK(options_.shard_wals.size() == options_.ledger_shards,
                      "EngineOptions::shard_wals must carry exactly one wal "
                      "per ledger shard");
      sharded->AttachShardJournals(options_.shard_wals,
                                   options_.wal_compact_every_records);
    }
    ledger_ = std::move(sharded);
  } else {
    // ledger_shards == 1: the classic single-ledger path. A one-member
    // shard wal set is accepted so callers can drive every shard count
    // through OpenShardWalSet uniformly.
    CONSENTDB_CHECK(options_.shard_wals.empty() ||
                        options_.shard_wals.size() == 1,
                    "EngineOptions::shard_wals must carry exactly one wal "
                    "per ledger shard");
    CONSENTDB_CHECK(options_.wal == nullptr || options_.shard_wals.empty(),
                    "EngineOptions::wal and shard_wals are mutually "
                    "exclusive");
    ledger_ = std::make_unique<consent::ConsentLedger>();
    consent::WalWriter* wal =
        options_.shard_wals.empty() ? options_.wal : options_.shard_wals[0];
    if (wal != nullptr) {
      ledger_->AttachJournal(wal, options_.wal_compact_every_records);
    }
  }
  if (options_.flight_recorder_capacity > 0) {
    flight_ = std::make_unique<obs::FlightRecorder>(
        options_.flight_recorder_capacity);
    if (options_.session.spans != nullptr) {
      // Mirror every finished span into the ring so a post-mortem dump
      // shows the run-up, not just the lifecycle events.
      options_.session.spans->set_flight_recorder(flight_.get());
    }
  }
}

SessionEngine::~SessionEngine() {
  // The collector is caller-owned and outlives the engine; detach our ring
  // before it is destroyed so later spans don't hit freed memory. When two
  // engines shared one collector, last attach won — only the engine whose
  // recorder is still attached clears it. The worker pool (destroyed first,
  // see member order) is still draining here, so in-flight sessions simply
  // stop mirroring; threads recording on the collector after the engine is
  // gone see a null recorder.
  if (flight_ != nullptr && options_.session.spans != nullptr &&
      options_.session.spans->flight_recorder() == flight_.get()) {
    options_.session.spans->set_flight_recorder(nullptr);
  }
}

Result<SessionEngine::PlanEntry> SessionEngine::ResolvePlan(
    const SessionRequest& request, const SessionOptions& options,
    uint64_t version) {
  obs::MetricsRegistry* metrics = options.metrics;
  obs::Span span(options.spans, obs::names::kSpanEnginePlan);
  PlanEntry entry;
  entry.version = version;
  const bool cacheable = request.plan == nullptr;
  if (request.plan != nullptr) {
    entry.plan = request.plan;
  } else {
    if (request.sql.empty()) {
      return Status::InvalidArgument("SessionRequest carries neither sql "
                                     "nor a plan");
    }
    std::optional<std::shared_ptr<const PlanEntry>> cached =
        plan_cache_.Get(request.sql);
    if (cached.has_value() && (*cached)->version == version) {
      plan_hits_.fetch_add(1, std::memory_order_relaxed);
      obs::Increment(metrics, "cache.plan.hit");
      return **cached;
    }
    plan_misses_.fetch_add(1, std::memory_order_relaxed);
    obs::Increment(metrics, "cache.plan.miss");
    CONSENTDB_ASSIGN_OR_RETURN(entry.plan, query::ParseQuery(request.sql));
  }
  if (options.optimize_plan) {
    obs::ScopedTimer timer(obs::MaybeHistogram(metrics, "query.optimize_ns"));
    CONSENTDB_ASSIGN_OR_RETURN(entry.effective,
                               query::Optimize(entry.plan, sdb_.database()));
  } else {
    entry.effective = entry.plan;
  }
  if (cacheable) {
    plan_cache_.Put(request.sql, std::make_shared<const PlanEntry>(entry));
  }
  return entry;
}

Result<std::shared_ptr<const PreparedSession>> SessionEngine::ResolvePrepared(
    const SessionRequest& request, const PlanEntry& entry,
    const SessionOptions& options, uint64_t version) {
  obs::MetricsRegistry* metrics = options.metrics;
  obs::Span span(options.spans, obs::names::kSpanEnginePrepare);
  if (request.single.has_value()) {
    // Targeted provenance depends on the requested tuple; not cached.
    CONSENTDB_ASSIGN_OR_RETURN(
        PreparedSession prepared,
        manager_.PrepareResolved(entry.plan, entry.effective, request.single,
                                 options));
    return std::make_shared<const PreparedSession>(std::move(prepared));
  }
  const ProvKey key{entry.plan->Fingerprint(), version};
  std::optional<std::shared_ptr<const PreparedSession>> cached =
      prov_cache_.Get(key);
  if (cached.has_value()) {
    prov_hits_.fetch_add(1, std::memory_order_relaxed);
    obs::Increment(metrics, "cache.prov.hit");
    return *cached;
  }
  prov_misses_.fetch_add(1, std::memory_order_relaxed);
  obs::Increment(metrics, "cache.prov.miss");
  CONSENTDB_ASSIGN_OR_RETURN(
      PreparedSession prepared,
      manager_.PrepareResolved(entry.plan, entry.effective, std::nullopt,
                               options));
  auto shared = std::make_shared<const PreparedSession>(std::move(prepared));
  prov_cache_.Put(key, shared);
  return shared;
}

Result<SessionReport> SessionEngine::RunOne(const SessionRequest& request) {
  if (request.oracle == nullptr) {
    return Status::InvalidArgument("SessionRequest carries no oracle");
  }
  SessionOptions options = options_.session;
  options.tracer = request.tracer;
  obs::MetricsRegistry* metrics = options.metrics;
  obs::Increment(metrics, "engine.sessions");
  obs::Span span(options.spans, obs::names::kSpanEngineSession);

  // One consistent database version per session; a mutation between the
  // reads would be a contract violation (see the header), not a race the
  // engine needs to survive.
  const uint64_t version = sdb_.version();
  CONSENTDB_ASSIGN_OR_RETURN(PlanEntry entry,
                             ResolvePlan(request, options, version));
  CONSENTDB_ASSIGN_OR_RETURN(
      std::shared_ptr<const PreparedSession> prepared,
      ResolvePrepared(request, entry, options, version));

  if (options_.share_consent_ledger) {
    consent::LedgerOracle oracle(*ledger_, *request.oracle);
    Result<SessionReport> report =
        manager_.RunPrepared(*prepared, oracle, options);
    obs::Increment(metrics, "engine.ledger.hit", oracle.ledger_hits());
    return report;
  }
  return manager_.RunPrepared(*prepared, *request.oracle, options);
}

std::future<Result<SessionReport>> SessionEngine::Submit(
    SessionRequest request) {
  obs::MetricsRegistry* metrics = options_.session.metrics;
  auto promise = std::make_shared<std::promise<Result<SessionReport>>>();
  std::future<Result<SessionReport>> future = promise->get_future();
  if (draining()) {
    // Drain refuses new admissions up front — nothing is registered, so the
    // refused session can never appear in a checkpoint.
    promise->set_value(Status::Unavailable("engine is draining"));
    return future;
  }
  // Register resumable (SQL-submitted) sessions before they can start: a
  // checkpoint taken at any instant lists every session whose report has
  // not been produced yet. Plan-only requests have no serializable spec.
  uint64_t pending_id = 0;
  bool registered = false;
  if (!request.sql.empty() && request.plan == nullptr) {
    CheckpointedSession spec;
    spec.sql = request.sql;
    if (request.single.has_value()) {
      spec.single_csv = consent::FormatSnapshotRow(*request.single);
    }
    MutexLock lock(chk_mu_);
    pending_id = next_pending_id_++;
    pending_.emplace(pending_id, std::move(spec));
    registered = true;
  }
  // Audited for -Wthread-safety: the queue-depth and in-flight gauges are
  // sampled outside any engine lock on purpose. in_flight_ is an atomic,
  // pool_.queue_depth() locks internally, and Gauge::Set is last-write-wins
  // — concurrent writers can interleave stale samples, which is benign for
  // an instantaneous telemetry gauge (never read back by the engine).
  pool_.Submit([this, promise, request = std::move(request), metrics,
                pending_id, registered] {
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    obs::SetGauge(metrics, "engine.sessions_in_flight",
                  static_cast<double>(sessions_in_flight()));
    obs::SetGauge(metrics, "engine.queue_depth",
                  static_cast<double>(pool_.queue_depth()));
    Result<SessionReport> result = Status::Internal("session never ran");
    try {
      result = RunOne(request);
    } catch (const CrashInjected&) {
      // The simulated process died mid-session (journaling WAL on a
      // CrashingEnv). Deregistration is deliberately skipped — the session
      // stays in the checkpoint, exactly as a real kill would leave it —
      // and the flight ring is snapshotted for post-mortem now, because the
      // crashed env rejects all further I/O. The exception reaches the
      // caller through the future instead of unwinding the worker thread.
      if (flight_ != nullptr) {
        flight_->RecordEvent(obs::names::kEventCrashInjected);
        MutexLock lock(flight_mu_);
        last_flight_dump_ = flight_->DumpJson();
      }
      in_flight_.fetch_sub(1, std::memory_order_relaxed);
      obs::SetGauge(metrics, "engine.sessions_in_flight",
                    static_cast<double>(sessions_in_flight()));
      promise->set_exception(std::current_exception());
      return;
    }
    // Deregister once the report exists (even an error report): the session
    // no longer needs resuming. A crash anywhere before this line leaves it
    // in the checkpoint.
    if (registered) {
      MutexLock lock(chk_mu_);
      pending_.erase(pending_id);
    }
    // The in-flight count drops before the future is fulfilled, so a
    // caller returning from get() never sees its own session in flight.
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    obs::SetGauge(metrics, "engine.sessions_in_flight",
                  static_cast<double>(sessions_in_flight()));
    promise->set_value(std::move(result));
  });
  obs::SetGauge(metrics, "engine.queue_depth",
                static_cast<double>(pool_.queue_depth()));
  return future;
}

std::vector<Result<SessionReport>> SessionEngine::RunAll(
    std::vector<SessionRequest> requests) {
  std::vector<std::future<Result<SessionReport>>> futures;
  futures.reserve(requests.size());
  for (SessionRequest& request : requests) {
    futures.push_back(Submit(std::move(request)));
  }
  std::vector<Result<SessionReport>> results;
  results.reserve(futures.size());
  for (std::future<Result<SessionReport>>& f : futures) {
    results.push_back(f.get());
  }
  return results;
}

SessionEngine::CacheStats SessionEngine::cache_stats() const {
  CacheStats stats;
  stats.plan_hits = plan_hits_.load(std::memory_order_relaxed);
  stats.plan_misses = plan_misses_.load(std::memory_order_relaxed);
  stats.provenance_hits = prov_hits_.load(std::memory_order_relaxed);
  stats.provenance_misses = prov_misses_.load(std::memory_order_relaxed);
  stats.plan_entries = plan_cache_.size();
  stats.provenance_entries = prov_cache_.size();
  return stats;
}

Status SessionEngine::SaveCheckpoint(Env* env, const std::string& path) {
  CONSENTDB_RETURN_IF_ERROR(WriteCheckpoint(env, path, sdb_,
                                            ledger_->Answers(),
                                            pending_sessions()));
  if (flight_ != nullptr) {
    // Pair every checkpoint with a flight dump: the ring at checkpoint time
    // is the run-up a post-mortem wants next to the recovered state. The
    // sidecar is diagnostic, not durability — no fsync.
    flight_->RecordEvent(obs::names::kEventCheckpoint);
    CONSENTDB_RETURN_IF_ERROR(env->WriteStringToFile(
        path + ".flight.json", flight_->DumpJson(), /*sync=*/false));
  }
  return Status::OK();
}

std::string SessionEngine::last_flight_dump() const {
  MutexLock lock(flight_mu_);
  return last_flight_dump_;
}

Status SessionEngine::RestoreLedger(
    const std::vector<std::pair<VarId, bool>>& answers) {
  for (const auto& [x, answer] : answers) {
    CONSENTDB_RETURN_IF_ERROR(ledger_->RestoreAnswer(x, answer));
  }
  return Status::OK();
}

std::vector<CheckpointedSession> SessionEngine::pending_sessions() const {
  MutexLock lock(chk_mu_);
  std::vector<CheckpointedSession> specs;
  specs.reserve(pending_.size());
  for (const auto& [id, spec] : pending_) {
    specs.push_back(spec);
  }
  return specs;
}

Result<std::shared_ptr<const PreparedSession>> SessionEngine::PrepareForServe(
    const SessionRequest& request) {
  const SessionOptions& options = options_.session;
  const uint64_t version = sdb_.version();
  CONSENTDB_ASSIGN_OR_RETURN(PlanEntry entry,
                             ResolvePlan(request, options, version));
  return ResolvePrepared(request, entry, options, version);
}

uint64_t SessionEngine::RegisterPendingSession(CheckpointedSession spec) {
  MutexLock lock(chk_mu_);
  const uint64_t id = next_pending_id_++;
  pending_.emplace(id, std::move(spec));
  return id;
}

void SessionEngine::ReleasePendingSession(uint64_t id) {
  MutexLock lock(chk_mu_);
  pending_.erase(id);
}

void SessionEngine::InvalidateCaches() {
  plan_cache_.Clear();
  prov_cache_.Clear();
}

}  // namespace consentdb::core
