// ConsentManager: the end-to-end public API of the library.
//
// Implements OPT-PEER-PROBE and OPT-PEER-PROBE-SINGLE (Def. II.8): given a
// shared database and an SPJU query, it evaluates the query with provenance
// tracking, picks a probing algorithm (by the query class and the runtime
// provenance-structure checks of Sec. IV-D), and probes the peers through an
// oracle until the shareability of the requested output tuples is decided.

#ifndef CONSENTDB_CORE_CONSENT_MANAGER_H_
#define CONSENTDB_CORE_CONSENT_MANAGER_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "consentdb/consent/oracle.h"
#include "consentdb/consent/shared_database.h"
#include "consentdb/eval/evaluate.h"
#include "consentdb/eval/provenance_profile.h"
#include "consentdb/obs/metrics.h"
#include "consentdb/obs/tracer.h"
#include "consentdb/query/classify.h"
#include "consentdb/query/parser.h"
#include "consentdb/strategy/runner.h"
#include "consentdb/util/result.h"

namespace consentdb::core {

enum class Algorithm {
  kAuto,  // select by query class + runtime provenance checks (default)
  kRandom,
  kFreq,
  kRo,
  kQValue,
  kGeneral,
  kHybrid,
  kOptimal,  // exponential; small provenance only
};

const char* AlgorithmToString(Algorithm a);

struct SessionOptions {
  Algorithm algorithm = Algorithm::kAuto;
  // Rewrite the plan (selection pushdown) before evaluation. Provenance is
  // plan-invariant, so this only affects evaluation time, never probing.
  bool optimize_plan = true;
  // Budgets for flattening provenance to DNF and for CNF computation.
  provenance::NormalFormLimits dnf_limits = {};
  provenance::NormalFormLimits cnf_limits = {};
  // Auto selection attempts Q-value only when no tuple has more DNF terms
  // than this (brute-force CNF feasibility, Sec. IV-C).
  size_t qvalue_max_terms = 64;
  uint64_t random_seed = 42;       // for Algorithm::kRandom
  size_t optimal_max_vars = 20;    // for Algorithm::kOptimal

  // Opt-in telemetry. With `metrics` attached the whole pipeline records
  // phase timings and counters (session.*, eval.*, query.*, strategy.*);
  // with `tracer` attached the session logs one structured event per probe
  // (cleared at session start, enriched with peer names/owners at the end).
  // Both default to null — the null sink — which skips every clock read and
  // must not change which probes are issued.
  obs::MetricsRegistry* metrics = nullptr;
  obs::SessionTracer* tracer = nullptr;
};

// Shareability verdict for one output tuple.
struct TupleConsent {
  relational::Tuple tuple;
  bool shareable = false;
};

struct SessionReport {
  std::vector<TupleConsent> tuples;
  size_t num_probes = 0;
  // Probe sequence: variable, owning peer, answer.
  struct ProbeRecord {
    provenance::VarId variable;
    std::string variable_name;
    std::string owner;
    bool answer;
  };
  std::vector<ProbeRecord> trace;
  std::string algorithm_used;
  std::string selection_rationale;
  // Classification of the plan the session actually evaluated and selected
  // its strategy from (the optimized plan when optimization is on) — the
  // class whose Table I guarantees the session relied on.
  query::QueryProfile query_profile;
  // Classification of the plan as submitted, before optimization. Usually
  // identical; selection pushdown cannot change the fragment letters, but
  // the two are reported separately so they can never silently disagree.
  query::QueryProfile query_profile_submitted;
  // Summary of the provenance structure the session ran on.
  size_t provenance_tuples = 0;
  size_t provenance_max_terms = 0;
  size_t provenance_max_term_size = 0;
  bool provenance_overall_read_once = false;
  bool provenance_per_tuple_read_once = false;

  std::string ToString() const;
  // Machine-readable export: algorithm, probes, per-tuple verdicts, trace.
  std::string ToJson() const;
};

// Static analysis bundle (used by examples and the Table I bench).
struct QueryAnalysis {
  query::QueryProfile profile;
  query::Guarantees guarantees;
  eval::ProvenanceProfile provenance;
};

// The oracle-independent prefix of a consent session: the resolved plan
// with its provenance-annotated evaluation over one database state.
// Immutable once built, so concurrent sessions may share one instance —
// this is the unit the session engine's provenance cache stores, keyed by
// (plan fingerprint, database version).
struct PreparedSession {
  query::PlanPtr plan;       // as submitted
  query::PlanPtr effective;  // after optional optimization
  query::QueryProfile profile;            // classification of `effective`
  query::QueryProfile submitted_profile;  // classification of `plan`
  std::vector<relational::Tuple> tuples;  // output tuples (or the target)
  eval::ProvenanceProfile provenance;     // per-tuple DNFs + structure
  bool single = false;  // built by targeted (single-tuple) evaluation
};

class ConsentManager {
 public:
  explicit ConsentManager(const consent::SharedDatabase& sdb) : sdb_(sdb) {}

  // OPT-PEER-PROBE: decides shareability of every output tuple.
  [[nodiscard]] Result<SessionReport> DecideAll(const query::PlanPtr& plan,
                                  consent::ProbeOracle& oracle,
                                  const SessionOptions& options = {}) const;
  [[nodiscard]] Result<SessionReport> DecideAll(std::string_view sql,
                                  consent::ProbeOracle& oracle,
                                  const SessionOptions& options = {}) const;

  // OPT-PEER-PROBE-SINGLE: decides shareability of one output tuple (which
  // must belong to the query result).
  [[nodiscard]] Result<SessionReport> DecideSingle(const query::PlanPtr& plan,
                                     const relational::Tuple& tuple,
                                     consent::ProbeOracle& oracle,
                                     const SessionOptions& options = {}) const;
  [[nodiscard]] Result<SessionReport> DecideSingle(std::string_view sql,
                                     const relational::Tuple& tuple,
                                     consent::ProbeOracle& oracle,
                                     const SessionOptions& options = {}) const;

  // Evaluates and profiles a query without probing.
  [[nodiscard]] Result<QueryAnalysis> Analyze(const query::PlanPtr& plan,
                                const SessionOptions& options = {}) const;

  // --- Split pipeline (used by the session engine's caches) -----------------

  // The oracle-independent phase: optimizes (per options), evaluates with
  // provenance tracking, flattens to DNF and classifies. The result depends
  // only on the plan and the current database content, never on an oracle.
  [[nodiscard]] Result<PreparedSession> Prepare(const query::PlanPtr& plan,
                                  std::optional<relational::Tuple> single,
                                  const SessionOptions& options = {}) const;
  // Same, with the optimized plan supplied by the caller (the engine's plan
  // cache); options.optimize_plan is ignored.
  [[nodiscard]] Result<PreparedSession> PrepareResolved(
      const query::PlanPtr& plan, const query::PlanPtr& effective,
      std::optional<relational::Tuple> single,
      const SessionOptions& options = {}) const;

  // The probing phase: strategy selection and the probe loop over an
  // already-prepared session. Safe to call concurrently from multiple
  // threads on one shared `prepared` (each call builds its own
  // EvaluationState) as long as the database and its variable pool are not
  // mutated meanwhile and each concurrent call uses its own tracer.
  [[nodiscard]] Result<SessionReport> RunPrepared(const PreparedSession& prepared,
                                    consent::ProbeOracle& oracle,
                                    const SessionOptions& options = {}) const;

  const consent::SharedDatabase& shared_database() const { return sdb_; }

 private:
  [[nodiscard]] Result<SessionReport> RunSession(const query::PlanPtr& plan,
                                   std::optional<relational::Tuple> single,
                                   consent::ProbeOracle& oracle,
                                   const SessionOptions& options) const;
  [[nodiscard]] Result<SessionReport> FinishSession(const PreparedSession& prepared,
                                      consent::ProbeOracle& oracle,
                                      const SessionOptions& options,
                                      int64_t session_start) const;

  const consent::SharedDatabase& sdb_;
};

}  // namespace consentdb::core

#endif  // CONSENTDB_CORE_CONSENT_MANAGER_H_
