// consent_shell: an interactive REPL over the ConsentDB public API.
//
// Build a shared database from the command line or CSV files, run SPJU
// queries, and hold live consent-probing sessions where *you* answer the
// probes — the closest thing to the paper's peer-probing loop without a
// network.
//
//   $ ./build/examples/consent_shell
//   consentdb> create Photos pid:int owner:string caption:string
//   consentdb> insert Photos ana 0.9 1 'ana' 'summit'
//   consentdb> load Albums albums.csv platform 0.95
//   consentdb> query SELECT caption FROM Photos
//   consentdb> analyze SELECT p.caption FROM Photos p, Albums a WHERE ...
//   consentdb> decide SELECT caption FROM Photos        (answers y/n live)
//   consentdb> simulate SELECT caption FROM Photos      (simulated peers)
//
// Also usable non-interactively: pipe a script into stdin.

#include <unistd.h>

#include <chrono>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>

#include "consentdb/consent/faulty_oracle.h"
#include "consentdb/consent/snapshot.h"
#include "consentdb/net/posix_transport.h"
#include "consentdb/net/probe_client.h"
#include "consentdb/net/probe_server.h"
#include "consentdb/core/checkpoint.h"
#include "consentdb/core/consent_manager.h"
#include "consentdb/core/session_engine.h"
#include "consentdb/util/io.h"
#include "consentdb/obs/flight_recorder.h"
#include "consentdb/obs/metrics.h"
#include "consentdb/obs/span.h"
#include "consentdb/obs/tracer.h"
#include "consentdb/query/optimize.h"
#include "consentdb/relational/csv.h"
#include "consentdb/util/rng.h"
#include "consentdb/util/string_util.h"

using namespace consentdb;
using relational::Column;
using relational::Schema;
using relational::Tuple;
using relational::Value;
using relational::ValueType;

namespace {

class Shell {
 public:
  Shell() : rng_(20260705) { spans_.set_flight_recorder(&flight_); }

  int Run(std::istream& in, bool interactive) {
    std::string line;
    while (true) {
      if (interactive) std::cout << "consentdb> " << std::flush;
      if (!std::getline(in, line)) break;
      std::string_view trimmed = StripWhitespace(line);
      if (trimmed.empty() || trimmed[0] == '#') continue;
      if (EqualsIgnoreCase(trimmed, "exit") || EqualsIgnoreCase(trimmed, "quit")) {
        break;
      }
      Status status = Dispatch(std::string(trimmed), interactive);
      if (!status.ok()) std::cout << "error: " << status.ToString() << "\n";
    }
    return 0;
  }

 private:
  Status Dispatch(const std::string& line, bool interactive) {
    std::istringstream words(line);
    std::string command;
    words >> command;
    std::string rest;
    std::getline(words, rest);
    rest = std::string(StripWhitespace(rest));

    if (EqualsIgnoreCase(command, "help")) return Help();
    if (EqualsIgnoreCase(command, "create")) return Create(rest);
    if (EqualsIgnoreCase(command, "insert")) return Insert(rest);
    if (EqualsIgnoreCase(command, "load")) return Load(rest);
    if (EqualsIgnoreCase(command, "tables")) return Tables();
    if (EqualsIgnoreCase(command, "show")) return Show(rest);
    if (EqualsIgnoreCase(command, "query")) return Query(rest);
    if (EqualsIgnoreCase(command, "analyze")) return Analyze(rest);
    if (EqualsIgnoreCase(command, "decide")) return Decide(rest, interactive);
    if (EqualsIgnoreCase(command, "simulate")) return Simulate(rest);
    if (EqualsIgnoreCase(command, "faults")) return Faults(rest);
    if (EqualsIgnoreCase(command, "stress")) return Stress(rest);
    if (EqualsIgnoreCase(command, "save")) return Save(rest);
    if (EqualsIgnoreCase(command, "resume")) return Resume(rest, interactive);
    if (EqualsIgnoreCase(command, "serve")) return Serve(rest);
    if (EqualsIgnoreCase(command, "connect")) return Connect(rest, interactive);
    if (command == "\\conns" || EqualsIgnoreCase(command, "conns")) {
      return Conns();
    }
    if (command == "\\stats" || EqualsIgnoreCase(command, "stats")) {
      return Stats(rest);
    }
    if (command == "\\flight" || EqualsIgnoreCase(command, "flight")) {
      return Flight(rest);
    }
    if (command == "\\trace" || EqualsIgnoreCase(command, "trace")) {
      return Trace(rest);
    }
    return Status::InvalidArgument("unknown command '" + command +
                                   "' (try: help)");
  }

  Status Help() {
    std::cout <<
        "commands:\n"
        "  create <table> <col:type> ...      types: int, double, string, bool\n"
        "  insert <table> <owner> <prob> <v> ...   'quoted' strings, NULL\n"
        "  load <table> <file.csv> <owner> <prob>  (table must exist)\n"
        "  tables                             list relations\n"
        "  show <table>                       print a relation with owners\n"
        "  query <sql>                        evaluate (no consent check)\n"
        "  analyze <sql>                      class, guarantees, provenance\n"
        "  decide <sql>                       probe consent interactively\n"
        "  simulate <sql>                     probe against simulated peers\n"
        "  faults [sub]                       fault injection for simulate:\n"
        "      faults                         show the current fault plan\n"
        "      faults off                     disable fault injection\n"
        "      faults seed <n>                fault-schedule seed\n"
        "      faults all <p> [latency_ms]    default transient-failure prob\n"
        "      faults peer <owner> <p> [latency_ms]  per-peer override\n"
        "      faults kill <owner>            peer permanently unavailable\n"
        "      faults crash <owner> <k>       peer crashes after k answers\n"
        "      faults retry <attempts> [initial_ms] [multiplier]  retry policy\n"
        "  stress <n> <threads> <sql>         n simulated sessions through the\n"
        "                                     concurrent engine (plan/provenance\n"
        "                                     caches); prints throughput\n"
        "  save <path>                        checkpoint the database and every\n"
        "                                     consent answer given so far\n"
        "  resume <path>                      restore a checkpoint; re-runs any\n"
        "                                     in-flight sessions it recorded —\n"
        "                                     already-answered variables replay\n"
        "                                     from the ledger, never re-asked\n"
        "  serve <port>                       serve consent sessions over TCP\n"
        "                                     (port 0 picks a free port);\n"
        "                                     serve stop shuts down gracefully\n"
        "  connect <addr> <sql>               run <sql> as a consent session on\n"
        "                                     the server at <addr> (host:port or\n"
        "                                     port) — you answer its probes\n"
        "  \\conns                             probe-server stats (connections,\n"
        "                                     in-flight/shed/completed sessions)\n"
        "  \\stats [json|reset]                session telemetry (metrics with\n"
        "                                     p50/p95/p99 + last probe trace)\n"
        "  \\flight [json]                     the flight recorder: the most\n"
        "                                     recent spans/events, newest-last\n"
        "  \\trace <file.json>                 export every recorded span as a\n"
        "                                     Chrome trace (load in Perfetto or\n"
        "                                     chrome://tracing)\n"
        "  exit\n";
    return Status::OK();
  }

  Status Create(const std::string& args) {
    std::istringstream in(args);
    std::string table;
    in >> table;
    if (table.empty()) return Status::InvalidArgument("usage: create <table> <col:type>...");
    std::vector<Column> columns;
    std::string spec;
    while (in >> spec) {
      std::vector<std::string> parts = Split(spec, ':');
      if (parts.size() != 2) {
        return Status::InvalidArgument("bad column spec: " + spec);
      }
      ValueType type;
      if (EqualsIgnoreCase(parts[1], "int")) {
        type = ValueType::kInt64;
      } else if (EqualsIgnoreCase(parts[1], "double")) {
        type = ValueType::kDouble;
      } else if (EqualsIgnoreCase(parts[1], "string")) {
        type = ValueType::kString;
      } else if (EqualsIgnoreCase(parts[1], "bool")) {
        type = ValueType::kBool;
      } else {
        return Status::InvalidArgument("unknown type: " + parts[1]);
      }
      columns.push_back(Column{parts[0], type});
    }
    if (columns.empty()) return Status::InvalidArgument("no columns given");
    CONSENTDB_ASSIGN_OR_RETURN(Schema schema, Schema::Create(columns));
    CONSENTDB_RETURN_IF_ERROR(sdb_.CreateRelation(table, schema));
    std::cout << "created " << table << " " << schema.ToString() << "\n";
    return Status::OK();
  }

  // Parses one literal: 123, 4.5, true/false, NULL, 'quoted string', word.
  Result<Value> ParseLiteral(std::istream& in, ValueType type) {
    in >> std::ws;
    if (in.peek() == '\'') {
      in.get();
      std::string s;
      char c;
      while (in.get(c)) {
        if (c == '\'') break;
        s += c;
      }
      return Value(s);
    }
    std::string word;
    if (!(in >> word)) return Status::InvalidArgument("missing value");
    if (EqualsIgnoreCase(word, "null")) return Value::Null();
    switch (type) {
      case ValueType::kInt64:
        try {
          return Value(static_cast<int64_t>(std::stoll(word)));
        } catch (const std::exception&) {
          return Status::InvalidArgument("not an integer: " + word);
        }
      case ValueType::kDouble:
        try {
          return Value(std::stod(word));
        } catch (const std::exception&) {
          return Status::InvalidArgument("not a number: " + word);
        }
      case ValueType::kBool:
        if (EqualsIgnoreCase(word, "true")) return Value(true);
        if (EqualsIgnoreCase(word, "false")) return Value(false);
        return Status::InvalidArgument("not a boolean: " + word);
      default:
        return Value(word);
    }
  }

  Status Insert(const std::string& args) {
    std::istringstream in(args);
    std::string table;
    std::string owner;
    double prob = 0.5;
    in >> table >> owner >> prob;
    if (table.empty() || owner.empty()) {
      return Status::InvalidArgument(
          "usage: insert <table> <owner> <prob> <values...>");
    }
    CONSENTDB_ASSIGN_OR_RETURN(const relational::Relation* rel,
                               sdb_.database().GetRelation(table));
    std::vector<Value> values;
    for (size_t i = 0; i < rel->schema().num_columns(); ++i) {
      CONSENTDB_ASSIGN_OR_RETURN(
          Value v, ParseLiteral(in, rel->schema().column(i).type));
      values.push_back(std::move(v));
    }
    CONSENTDB_ASSIGN_OR_RETURN(
        provenance::VarId var,
        sdb_.InsertTuple(table, Tuple(std::move(values)), owner, prob));
    std::cout << "inserted; consent variable " << sdb_.pool().name(var)
              << " owned by " << owner << " (prior " << prob << ")\n";
    return Status::OK();
  }

  Status Load(const std::string& args) {
    std::istringstream in(args);
    std::string table;
    std::string file;
    std::string owner;
    double prob = 0.5;
    in >> table >> file >> owner >> prob;
    if (owner.empty()) {
      return Status::InvalidArgument(
          "usage: load <table> <file.csv> <owner> <prob>");
    }
    CONSENTDB_ASSIGN_OR_RETURN(const relational::Relation* rel,
                               sdb_.database().GetRelation(table));
    std::ifstream stream(file);
    if (!stream) return Status::NotFound("cannot open " + file);
    CONSENTDB_ASSIGN_OR_RETURN(relational::Relation loaded,
                               relational::ReadRelationCsv(stream, rel->schema()));
    size_t added = 0;
    for (const Tuple& t : loaded.tuples()) {
      CONSENTDB_RETURN_IF_ERROR(
          sdb_.InsertTuple(table, t, owner, prob).status());
      ++added;
    }
    std::cout << "loaded " << added << " rows into " << table << " for "
              << owner << "\n";
    return Status::OK();
  }

  Status Tables() {
    for (const std::string& name : sdb_.database().RelationNames()) {
      const relational::Relation& rel = sdb_.database().RelationOrDie(name);
      std::cout << "  " << name << " " << rel.schema().ToString() << "  ("
                << rel.size() << " rows)\n";
    }
    return Status::OK();
  }

  Status Show(const std::string& table) {
    CONSENTDB_ASSIGN_OR_RETURN(const relational::Relation* rel,
                               sdb_.database().GetRelation(table));
    for (size_t i = 0; i < rel->size(); ++i) {
      CONSENTDB_ASSIGN_OR_RETURN(provenance::VarId var,
                                 sdb_.AnnotationOf(table, i));
      std::cout << "  " << rel->tuple(i).ToString() << "  @ "
                << sdb_.pool().name(var) << " (owner "
                << sdb_.pool().owner(var) << ")\n";
    }
    return Status::OK();
  }

  Status Query(const std::string& sql) {
    CONSENTDB_ASSIGN_OR_RETURN(query::PlanPtr plan, query::ParseQuery(sql));
    CONSENTDB_ASSIGN_OR_RETURN(query::PlanPtr optimized,
                               query::Optimize(plan, sdb_.database()));
    CONSENTDB_ASSIGN_OR_RETURN(relational::Relation result,
                               eval::Evaluate(optimized, sdb_.database()));
    std::cout << result.ToString();
    return Status::OK();
  }

  Status Analyze(const std::string& sql) {
    CONSENTDB_ASSIGN_OR_RETURN(query::PlanPtr plan, query::ParseQuery(sql));
    core::ConsentManager manager(sdb_);
    core::SessionOptions options;
    options.metrics = &metrics_;
    CONSENTDB_ASSIGN_OR_RETURN(core::QueryAnalysis analysis,
                               manager.Analyze(plan, options));
    std::cout << "class: " << analysis.profile.ToString() << "\n";
    std::cout << "provenance: " << analysis.provenance.ToString() << "\n";
    const query::Guarantees& g = analysis.guarantees;
    std::cout << "full result: "
              << (g.exact_all_tuples ? "exact PTIME (RO)"
                                     : "NP-hard, approximate")
              << "; single tuple: "
              << (g.exact_single_tuple ? "exact PTIME (RO)"
                  : g.np_hard_single_tuple ? "NP-hard, approximate"
                                           : "approximate")
              << "\n";
    return Status::OK();
  }

  // The interactive peers of `decide`. Probes route through the shell's
  // consent ledger: a variable answered once — in an earlier decide or in a
  // resumed checkpoint — is never asked again.
  consent::CallbackOracle InteractiveOracle(bool interactive) {
    return consent::CallbackOracle([this, interactive](provenance::VarId x) {
      std::cout << "  [probe] " << sdb_.pool().owner(x)
                << ", do you consent to sharing " << sdb_.pool().name(x)
                << "? (y/n) " << std::flush;
      std::string answer;
      if (!std::getline(std::cin, answer)) answer = "n";
      if (!interactive) std::cout << answer << "\n";
      return !answer.empty() && (answer[0] == 'y' || answer[0] == 'Y');
    });
  }

  Status Decide(const std::string& sql, bool interactive) {
    core::ConsentManager manager(sdb_);
    consent::CallbackOracle oracle = InteractiveOracle(interactive);
    consent::LedgerOracle via_ledger(ledger_, oracle);
    return Session(sql, manager, via_ledger);
  }

  Status Save(const std::string& path) {
    if (path.empty()) return Status::InvalidArgument("usage: save <path>");
    CONSENTDB_RETURN_IF_ERROR(core::WriteCheckpoint(
        Env::Default(), path, sdb_, ledger_.Answers(), /*sessions=*/{}));
    std::cout << "checkpoint written to " << path << " ("
              << ledger_.Answers().size() << " consent answer(s))\n";
    return Status::OK();
  }

  Status Resume(const std::string& path, bool interactive) {
    if (path.empty()) return Status::InvalidArgument("usage: resume <path>");
    CONSENTDB_ASSIGN_OR_RETURN(core::RestoredCheckpoint restored,
                               core::ReadCheckpoint(Env::Default(), path));
    sdb_ = std::move(restored.sdb);
    ledger_.Clear();
    for (const auto& [x, answer] : restored.ledger_answers) {
      CONSENTDB_RETURN_IF_ERROR(ledger_.RestoreAnswer(x, answer));
    }
    std::cout << "restored " << sdb_.database().RelationNames().size()
              << " relation(s) and " << restored.ledger_answers.size()
              << " consent answer(s) from " << path << "\n";
    // Re-run the sessions the checkpoint recorded as in flight. Journaled
    // variables answer from the restored ledger; only genuinely new probes
    // reach the interactive peers.
    for (const core::CheckpointedSession& s : restored.sessions) {
      std::cout << "resuming session: " << s.sql << "\n";
      core::ConsentManager manager(sdb_);
      consent::CallbackOracle oracle = InteractiveOracle(interactive);
      consent::LedgerOracle via_ledger(ledger_, oracle);
      if (s.single_csv.has_value()) {
        CONSENTDB_ASSIGN_OR_RETURN(query::PlanPtr plan,
                                   query::ParseQuery(s.sql));
        CONSENTDB_ASSIGN_OR_RETURN(relational::Schema schema,
                                   plan->OutputSchema(sdb_.database()));
        CONSENTDB_ASSIGN_OR_RETURN(
            Tuple target, consent::ParseSnapshotRow(*s.single_csv, schema));
        core::SessionOptions options;
        options.metrics = &metrics_;
        options.tracer = &tracer_;
        CONSENTDB_ASSIGN_OR_RETURN(
            core::SessionReport report,
            manager.DecideSingle(s.sql, target, via_ledger, options));
        std::cout << report.ToString();
        continue;
      }
      CONSENTDB_RETURN_IF_ERROR(Session(s.sql, manager, via_ledger));
    }
    return Status::OK();
  }

  Status Simulate(const std::string& sql) {
    core::ConsentManager manager(sdb_);
    consent::ValuationOracle oracle(sdb_.pool().SampleValuation(rng_));
    std::cout << "(simulated peers drawn from the consent priors)\n";
    if (fault_plan_.empty()) return Session(sql, manager, oracle);

    // Fault injection active: wrap the simulated peers in the fault plan and
    // run a resilient session on virtual time (no real sleeps).
    VirtualClock clock;
    consent::FaultyOracle faulty(oracle, sdb_.pool(), fault_plan_, &clock);
    std::cout << "(fault plan active — resilient session, virtual time)\n";
    Status status = Session(sql, manager, faulty, &clock);
    consent::FaultyOracle::Stats stats = faulty.stats();
    std::cout << "faults: " << stats.attempts << " attempt(s), "
              << stats.successes << " answered, " << stats.transient_faults
              << " transient, " << stats.unavailable_faults
              << " unavailable, " << stats.crashed_peers
              << " crashed peer(s); virtual time "
              << clock.NowNanos() / 1'000'000 << " ms\n";
    return status;
  }

  Status Faults(const std::string& args) {
    std::istringstream in(args);
    std::string sub;
    in >> sub;
    if (sub.empty()) {
      if (fault_plan_.empty()) {
        std::cout << "fault injection off\n";
        return Status::OK();
      }
      std::cout << "seed " << fault_plan_.seed << "; defaults: p="
                << fault_plan_.defaults.transient_failure_prob << " latency="
                << fault_plan_.defaults.latency_nanos / 1'000'000 << "ms\n";
      for (const auto& [owner, pf] : fault_plan_.per_peer) {
        std::cout << "  " << owner << ": p=" << pf.transient_failure_prob
                  << " latency=" << pf.latency_nanos / 1'000'000 << "ms"
                  << (pf.permanently_unavailable ? " DEAD" : "");
        if (pf.crash_after_answers > 0) {
          std::cout << " crash_after=" << pf.crash_after_answers;
        }
        std::cout << "\n";
      }
      std::cout << "retry: max_attempts=" << retry_policy_.max_attempts
                << " initial="
                << retry_policy_.initial_backoff_nanos / 1'000'000
                << "ms multiplier=" << retry_policy_.backoff_multiplier
                << "\n";
      return Status::OK();
    }
    if (EqualsIgnoreCase(sub, "off")) {
      fault_plan_ = consent::FaultPlan{};
      std::cout << "fault injection off\n";
      return Status::OK();
    }
    if (EqualsIgnoreCase(sub, "seed")) {
      uint64_t seed = 0;
      if (!(in >> seed)) return Status::InvalidArgument("usage: faults seed <n>");
      fault_plan_.seed = seed;
      return Status::OK();
    }
    if (EqualsIgnoreCase(sub, "all")) {
      double p = 0;
      double latency_ms = 0;
      if (!(in >> p) || p < 0 || p >= 1) {
        return Status::InvalidArgument("usage: faults all <p in [0,1)> [latency_ms]");
      }
      in >> latency_ms;
      fault_plan_.defaults.transient_failure_prob = p;
      fault_plan_.defaults.latency_nanos =
          static_cast<int64_t>(latency_ms * 1e6);
      return Status::OK();
    }
    if (EqualsIgnoreCase(sub, "peer")) {
      std::string owner;
      double p = 0;
      double latency_ms = 0;
      if (!(in >> owner >> p) || p < 0 || p >= 1) {
        return Status::InvalidArgument(
            "usage: faults peer <owner> <p in [0,1)> [latency_ms]");
      }
      in >> latency_ms;
      consent::PeerFaults& pf = fault_plan_.per_peer[owner];
      pf.transient_failure_prob = p;
      pf.latency_nanos = static_cast<int64_t>(latency_ms * 1e6);
      return Status::OK();
    }
    if (EqualsIgnoreCase(sub, "kill")) {
      std::string owner;
      if (!(in >> owner)) return Status::InvalidArgument("usage: faults kill <owner>");
      fault_plan_.per_peer[owner].permanently_unavailable = true;
      return Status::OK();
    }
    if (EqualsIgnoreCase(sub, "crash")) {
      std::string owner;
      size_t k = 0;
      if (!(in >> owner >> k) || k == 0) {
        return Status::InvalidArgument("usage: faults crash <owner> <k> (k >= 1)");
      }
      fault_plan_.per_peer[owner].crash_after_answers = k;
      return Status::OK();
    }
    if (EqualsIgnoreCase(sub, "retry")) {
      size_t attempts = 0;
      double initial_ms = 1.0;
      double multiplier = 2.0;
      if (!(in >> attempts)) {
        return Status::InvalidArgument(
            "usage: faults retry <attempts> [initial_ms] [multiplier]");
      }
      in >> initial_ms >> multiplier;
      retry_policy_.max_attempts = attempts;
      retry_policy_.initial_backoff_nanos =
          static_cast<int64_t>(initial_ms * 1e6);
      retry_policy_.backoff_multiplier = multiplier;
      return Status::OK();
    }
    return Status::InvalidArgument("unknown faults subcommand '" + sub + "'");
  }

  Status Stress(const std::string& args) {
    std::istringstream in(args);
    size_t sessions = 0;
    size_t threads = 0;
    in >> sessions >> threads;
    std::string sql;
    std::getline(in, sql);
    sql = std::string(StripWhitespace(sql));
    if (sessions == 0 || threads == 0 || sql.empty()) {
      return Status::InvalidArgument("usage: stress <n> <threads> <sql>");
    }

    core::EngineOptions options;
    options.num_threads = threads;
    // Each simulated session draws its own peers from the priors, so
    // answers may differ across sessions; keep oracles un-shared.
    options.share_consent_ledger = false;
    options.session.metrics = &metrics_;
    options.session.spans = &spans_;
    core::SessionEngine engine(sdb_, options);

    std::vector<std::unique_ptr<consent::ValuationOracle>> oracles;
    std::vector<core::SessionRequest> requests;
    for (size_t i = 0; i < sessions; ++i) {
      oracles.push_back(std::make_unique<consent::ValuationOracle>(
          sdb_.pool().SampleValuation(rng_)));
      core::SessionRequest request;
      request.sql = sql;
      request.oracle = oracles.back().get();
      requests.push_back(std::move(request));
    }

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<Result<core::SessionReport>> results =
        engine.RunAll(std::move(requests));
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    size_t probes = 0;
    size_t shareable = 0;
    for (Result<core::SessionReport>& r : results) {
      CONSENTDB_RETURN_IF_ERROR(r.status());
      probes += r.value().num_probes;
      for (const core::TupleConsent& tc : r.value().tuples) {
        shareable += tc.shareable ? 1 : 0;
      }
    }
    core::SessionEngine::CacheStats stats = engine.cache_stats();
    std::cout << sessions << " session(s) on " << engine.num_threads()
              << " thread(s) in " << std::fixed << std::setprecision(3)
              << seconds << " s ("
              << static_cast<double>(sessions) / (seconds > 0 ? seconds : 1e-9)
              << " sessions/s)\n"
              << std::defaultfloat << std::setprecision(6) << "  " << probes
              << " probe(s) total, " << shareable
              << " shareable verdict(s)\n"
              << "  plan cache " << stats.plan_hits << " hit(s) / "
              << stats.plan_misses << " miss(es); provenance cache "
              << stats.provenance_hits << " hit(s) / "
              << stats.provenance_misses << " miss(es)\n";
    return Status::OK();
  }

  Status Session(const std::string& sql, core::ConsentManager& manager,
                 consent::ProbeOracle& oracle, VirtualClock* clock = nullptr) {
    core::SessionOptions options;
    options.metrics = &metrics_;
    options.tracer = &tracer_;
    options.spans = &spans_;
    if (clock != nullptr) {
      options.retry = retry_policy_;
      options.clock = clock;
    }
    CONSENTDB_ASSIGN_OR_RETURN(core::SessionReport report,
                               manager.DecideAll(sql, oracle, options));
    std::cout << "algorithm: " << report.algorithm_used << " ("
              << report.selection_rationale << ")\n";
    for (const auto& probe : report.trace) {
      std::cout << "  probed " << probe.owner << " about "
                << probe.variable_name << " -> "
                << (probe.answer ? "yes" : "no") << "\n";
    }
    std::cout << report.num_probes << " probe(s); verdicts:\n";
    for (const core::TupleConsent& tc : report.tuples) {
      std::cout << "  " << tc.tuple.ToString() << "  "
                << (tc.verdict == core::TupleConsent::Verdict::kUnresolved
                        ? "UNRESOLVED (consent defaults to deny)"
                    : tc.shareable ? "SHAREABLE"
                                   : "not shareable")
                << "\n";
    }
    if (report.resilient) {
      std::cout << report.num_retries << " retry(ies), "
                << report.num_unresolved << " unresolved tuple(s); losses: "
                << report.failures.unavailable << " unavailable, "
                << report.failures.retries_exhausted << " exhausted, "
                << report.failures.probe_deadline << " probe-deadline, "
                << report.failures.session_deadline << " session-deadline\n";
    }
    return Status::OK();
  }

  // --- Networked probe service (net::ProbeServer / net::ProbeClient) --------

  Status Serve(const std::string& args) {
    if (EqualsIgnoreCase(args, "stop")) {
      if (server_ == nullptr) {
        return Status::FailedPrecondition("not serving");
      }
      server_->Shutdown(/*drain_deadline_nanos=*/1'000'000'000);
      net::ServerStats stats = server_->stats();
      server_.reset();
      serve_engine_.reset();
      std::cout << "server stopped: " << stats.completed_sessions
                << " completed, " << stats.shed_sessions << " shed, "
                << stats.inflight_sessions << " still parked\n";
      return Status::OK();
    }
    if (args.empty()) {
      return Status::InvalidArgument("usage: serve <port> | serve stop");
    }
    if (server_ != nullptr) {
      return Status::FailedPrecondition(
          "already serving on " + server_->address() + " (serve stop first)");
    }
    core::EngineOptions eopts;
    eopts.num_threads = 1;  // sessions are served event-driven, not pooled
    eopts.session.metrics = &metrics_;
    serve_engine_ = std::make_unique<core::SessionEngine>(sdb_, eopts);
    server_ = std::make_unique<net::ProbeServer>(*serve_engine_, posix_);
    Status listening = server_->Listen(args);
    if (!listening.ok()) {
      server_.reset();
      serve_engine_.reset();
      return listening;
    }
    server_->Start();
    std::cout << "serving consent probes on " << server_->address()
              << " (don't mutate tables while sessions are in flight)\n";
    return Status::OK();
  }

  Status Connect(const std::string& args, bool interactive) {
    std::istringstream in(args);
    std::string addr;
    in >> addr;
    std::string sql;
    std::getline(in, sql);
    sql = std::string(StripWhitespace(sql));
    if (addr.empty() || sql.empty()) {
      return Status::InvalidArgument("usage: connect <addr> <sql>");
    }
    // The server names the variable in each ProbeRequest, so the prompt
    // works against any server — not just one sharing this shell's tables.
    net::ProbeRequest pending;
    net::ProbeClientOptions copts;
    copts.tenant = "shell";
    copts.client_id =
        (static_cast<uint32_t>(getpid()) << 8) ^ next_client_id_++;
    copts.on_probe = [&pending](const net::ProbeRequest& r) { pending = r; };
    consent::CallbackOracle oracle(
        [&pending, interactive](provenance::VarId) {
          std::cout << "  [probe] " << pending.owner
                    << ", do you consent to sharing " << pending.variable_name
                    << "? (y/n) " << std::flush;
          std::string answer;
          if (!std::getline(std::cin, answer)) answer = "n";
          if (!interactive) std::cout << answer << "\n";
          return !answer.empty() && (answer[0] == 'y' || answer[0] == 'Y');
        });
    net::ProbeClient client(posix_, addr, &oracle, copts);
    CONSENTDB_ASSIGN_OR_RETURN(std::string report_json, client.Decide(sql));
    const net::ProbeClient::ClientStats& cs = client.stats();
    std::cout << report_json << "\n"
              << cs.oracle_probes << " probe(s) answered";
    if (cs.reconnects > 0) std::cout << ", " << cs.reconnects << " reconnect(s)";
    std::cout << "\n";
    return Status::OK();
  }

  Status Conns() {
    if (server_ == nullptr) {
      std::cout << "not serving — start with: serve <port>\n";
      return Status::OK();
    }
    net::ServerStats s = server_->stats();
    std::cout << "server " << server_->address()
              << (s.draining ? " (draining)" : "") << "\n"
              << "  connections: " << s.connections << " open, "
              << s.accepted_connections << " accepted\n"
              << "  sessions:    " << s.inflight_sessions << " in flight, "
              << s.opened_sessions << " opened, " << s.completed_sessions
              << " completed, " << s.resumed_sessions << " resumed\n"
              << "  backpressure: " << s.shed_sessions << " shed, "
              << s.expired_sessions << " expired, " << s.corrupt_frames
              << " corrupt frame(s)\n";
    return Status::OK();
  }

  Status Stats(const std::string& args) {
    if (EqualsIgnoreCase(args, "json")) {
      std::cout << obs::ExportObservabilityJson(&metrics_, &tracer_) << "\n";
      return Status::OK();
    }
    if (EqualsIgnoreCase(args, "reset")) {
      metrics_.Reset();
      tracer_.Clear();
      spans_.Clear();
      std::cout << "telemetry reset\n";
      return Status::OK();
    }
    if (!args.empty()) {
      return Status::InvalidArgument("usage: \\stats [json|reset]");
    }
    if (metrics_.num_metrics() == 0) {
      std::cout << "no telemetry yet — run decide/simulate/analyze first\n";
      return Status::OK();
    }
    std::cout << "--- metrics (cumulative) ---\n" << metrics_.ExportText();
    if (!tracer_.events().empty()) {
      std::cout << "--- last session (" << tracer_.algorithm() << ", "
                << tracer_.num_probes() << " probes, "
                << tracer_.session_nanos() / 1000 << " us) ---\n";
      for (const obs::ProbeEvent& ev : tracer_.events()) {
        std::cout << "  #" << ev.probe_index << " " << ev.variable_name
                  << " (" << ev.owner << ") -> "
                  << (ev.answer ? "yes" : "no") << "  decided "
                  << ev.formulas_decided << "/"
                  << (ev.formulas_decided + ev.formulas_remaining)
                  << ", residual terms " << ev.residual_terms << ", chose in "
                  << ev.decision_nanos / 1000 << " us\n";
      }
    }
    return Status::OK();
  }

  Status Flight(const std::string& args) {
    if (EqualsIgnoreCase(args, "json")) {
      std::cout << flight_.DumpJson() << "\n";
      return Status::OK();
    }
    if (!args.empty()) {
      return Status::InvalidArgument("usage: \\flight [json]");
    }
    if (flight_.num_recorded() == 0) {
      std::cout << "flight recorder empty — run decide/simulate/stress "
                   "first\n";
      return Status::OK();
    }
    std::cout << "--- flight recorder (last " << flight_.capacity()
              << " spans/events, oldest first) ---\n"
              << flight_.DumpText();
    return Status::OK();
  }

  Status Trace(const std::string& args) {
    if (args.empty()) {
      return Status::InvalidArgument("usage: \\trace <file.json>");
    }
    if (spans_.num_spans() == 0) {
      std::cout << "no spans recorded yet — run decide/simulate/stress "
                   "first\n";
      return Status::OK();
    }
    CONSENTDB_RETURN_IF_ERROR(Env::Default()->WriteStringToFile(
        args, spans_.ExportChromeTrace() + "\n", /*sync=*/false));
    std::cout << "wrote " << spans_.num_spans() << " span(s) to " << args
              << " — open in Perfetto (ui.perfetto.dev) or "
                 "chrome://tracing\n";
    return Status::OK();
  }

  consent::SharedDatabase sdb_;
  consent::ConsentLedger ledger_;
  Rng rng_;
  obs::MetricsRegistry metrics_;
  obs::SessionTracer tracer_;
  // Every session span also mirrors into the flight ring (see constructor).
  obs::SpanCollector spans_;
  obs::FlightRecorder flight_;
  consent::FaultPlan fault_plan_;
  core::RetryPolicy retry_policy_;
  // Probe service state. Declaration order doubles as teardown order: the
  // server (destroyed first) must go before the engine and transport it
  // borrows.
  net::PosixTransport posix_;
  std::unique_ptr<core::SessionEngine> serve_engine_;
  std::unique_ptr<net::ProbeServer> server_;
  uint32_t next_client_id_ = 1;
};

}  // namespace

int main() {
  bool interactive = isatty(fileno(stdin)) != 0;
  if (interactive) {
    std::cout << "ConsentDB shell — type 'help' for commands.\n";
  }
  Shell shell;
  return shell.Run(std::cin, interactive);
}
