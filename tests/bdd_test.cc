#include <gtest/gtest.h>

#include "consentdb/datasets/psi.h"
#include "consentdb/strategy/bdd.h"
#include "consentdb/strategy/expected_cost.h"
#include "consentdb/strategy/optimal.h"

namespace consentdb::strategy {
namespace {

using provenance::PartialValuation;
using provenance::VarSet;

std::vector<double> UniformPi(size_t n, double p = 0.5) {
  return std::vector<double>(n, p);
}

// --- Structure -------------------------------------------------------------------

TEST(BddTest, SingleVariableHasThreeNodes) {
  Bdd bdd = Bdd::Materialize({Dnf({VarSet{0}})}, UniformPi(1),
                             MakeRoFactory());
  // Two leaves (True/False) plus one inner node.
  EXPECT_EQ(bdd.num_nodes(), 3u);
  EXPECT_EQ(bdd.MaxDepth(), 1u);
  EXPECT_DOUBLE_EQ(bdd.ExpectedCost(UniformPi(1)), 1.0);
}

TEST(BddTest, HashConsingSharesIsomorphicSubtrees) {
  // n independent singleton formulas probed in a fixed order: the decision
  // tree has 2^n leaves-paths but outcome-distinct leaves... use a
  // disjunction instead: x0 ∨ x1 ∨ x2 probed left to right by Freq shares
  // the terminal "True" leaf across branches.
  Bdd bdd = Bdd::Materialize({Dnf({VarSet{0}, VarSet{1}, VarSet{2}})},
                             UniformPi(3), MakeFreqFactory());
  // Path count is 4 (stop at first True, or all False) => leaves 2
  // (True/False) + 3 inner nodes = 5 total with sharing.
  EXPECT_EQ(bdd.num_nodes(), 5u);
  EXPECT_EQ(bdd.MaxDepth(), 3u);
}

TEST(BddTest, ExpectedCostMatchesDefinitionIII4) {
  // x0 ∨ x1 with p = 0.5 and left-to-right probing: 1 + 0.5 = 1.5.
  Bdd bdd = Bdd::Materialize({Dnf({VarSet{0}, VarSet{1}})}, UniformPi(2),
                             MakeFreqFactory());
  EXPECT_DOUBLE_EQ(bdd.ExpectedCost(UniformPi(2)), 1.5);
}

// --- Equivalence with the execution harness -----------------------------------------

class BddAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(BddAgreementTest, BddCostEqualsExactHarnessCost) {
  Rng rng(51000 + GetParam());
  size_t num_vars = 4 + rng.UniformIndex(3);
  std::vector<VarSet> terms;
  size_t num_terms = 1 + rng.UniformIndex(4);
  for (size_t t = 0; t < num_terms; ++t) {
    std::vector<VarId> term;
    size_t size = 1 + rng.UniformIndex(3);
    for (size_t s = 0; s < size; ++s) {
      term.push_back(static_cast<VarId>(rng.UniformIndex(num_vars)));
    }
    terms.emplace_back(std::move(term));
  }
  std::vector<Dnf> dnfs = {Dnf(std::move(terms))};
  std::vector<double> pi;
  for (size_t i = 0; i < num_vars; ++i) {
    pi.push_back(0.2 + 0.6 * rng.UniformReal());
  }
  for (auto& [name, factory, cnfs] :
       std::vector<std::tuple<std::string, StrategyFactory, bool>>{
           {"RO", MakeRoFactory(), false},
           {"Freq", MakeFreqFactory(), false},
           {"Q-value", MakeQValueFactory(), true},
           {"General", MakeGeneralFactory(), false}}) {
    Bdd bdd = Bdd::Materialize(dnfs, pi, factory, cnfs);
    double via_bdd = bdd.ExpectedCost(pi);
    double via_harness = ExactExpectedCost(dnfs, pi, factory, cnfs);
    EXPECT_NEAR(via_bdd, via_harness, 1e-9) << name;
    // The BDD decides every valuation correctly.
    for (size_t mask = 0; mask < (1u << num_vars); ++mask) {
      PartialValuation val(num_vars);
      for (size_t i = 0; i < num_vars; ++i) {
        val.Set(static_cast<VarId>(i), ((mask >> i) & 1) != 0);
      }
      EXPECT_TRUE(bdd.ConsistentWith(dnfs, val)) << name << " mask " << mask;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, BddAgreementTest, ::testing::Range(0, 8));

// --- Theorem III.5, concretely ---------------------------------------------------------

TEST(BddTest, PsiHasCheapAndExpensiveBdds) {
  // psi_1 (10 vars): the constructive strategy's BDD has depth 2*1+3 = 5
  // and low expected cost; Freq's BDD on the same formula is measurably
  // more expensive in expectation — two BDDs for one formula with very
  // different costs, which is the point of Thm. III.5.
  consent::VariablePool pool;
  datasets::PsiFormula psi = datasets::BuildPsi(1, pool, 0.5);
  std::vector<Dnf> dnfs = {datasets::PsiDnf(psi)};
  std::vector<double> pi = pool.Probabilities();

  Bdd optimal = Bdd::Materialize(dnfs, pi, datasets::MakePsiOptimalFactory(psi));
  EXPECT_LE(optimal.MaxDepth(), 5u);
  double optimal_cost = optimal.ExpectedCost(pi);
  EXPECT_NEAR(optimal_cost, OptimalExpectedCost(dnfs, pi), 1e-9);

  Bdd freq = Bdd::Materialize(dnfs, pi, MakeFreqFactory());
  EXPECT_GE(freq.ExpectedCost(pi), optimal_cost - 1e-9);
}

TEST(BddTest, DotOutputIsWellFormed) {
  Bdd bdd = Bdd::Materialize({Dnf({VarSet{0, 1}})}, UniformPi(2),
                             MakeRoFactory());
  std::string dot = bdd.ToDot();
  EXPECT_NE(dot.find("digraph bdd"), std::string::npos);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'), 1);
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '}'), 1);
}

TEST(BddTest, NamerIsUsedInDot) {
  Bdd bdd = Bdd::Materialize({Dnf({VarSet{0}})}, UniformPi(1),
                             MakeRoFactory());
  std::string dot =
      bdd.ToDot([](VarId x) { return "consent_" + std::to_string(x); });
  EXPECT_NE(dot.find("consent_0"), std::string::npos);
}

}  // namespace
}  // namespace consentdb::strategy
