#include "consentdb/datasets/reductions.h"

#include <algorithm>
#include <set>

#include "consentdb/util/check.h"

namespace consentdb::datasets {

using provenance::Dnf;
using provenance::VarId;
using provenance::VarSet;
using query::CompareOp;
using query::Plan;
using query::PlanPtr;
using query::Predicate;
using query::PredicatePtr;
using relational::Column;
using relational::Schema;
using relational::Tuple;
using relational::Value;
using relational::ValueType;

Graph RandomGraph(size_t num_vertices, size_t num_edges, Rng& rng) {
  CONSENTDB_CHECK(num_vertices >= 3, "need at least 3 vertices");
  CONSENTDB_CHECK(num_edges >= num_vertices,
                  "need at least as many edges as vertices (ring backbone)");
  Graph g;
  g.num_vertices = num_vertices;
  std::set<std::pair<size_t, size_t>> seen;
  std::vector<size_t> degree(num_vertices, 0);
  auto add_edge = [&](size_t a, size_t b) {
    if (a == b) return false;
    auto key = std::minmax(a, b);
    if (!seen.insert(key).second) return false;
    if (degree[a] >= 3 || degree[b] >= 3) {
      seen.erase(key);
      return false;
    }
    g.edges.emplace_back(key.first, key.second);
    ++degree[a];
    ++degree[b];
    return true;
  };
  // Ring backbone: every vertex has degree >= 2.
  for (size_t v = 0; v < num_vertices; ++v) {
    add_edge(v, (v + 1) % num_vertices);
  }
  // Random chords up to the requested count (degree capped at 3 so the
  // graph stays cubic-ish, as in the Thm. IV.10 reduction).
  size_t attempts = 0;
  while (g.edges.size() < num_edges && attempts < num_edges * 64) {
    ++attempts;
    add_edge(rng.UniformIndex(num_vertices), rng.UniformIndex(num_vertices));
  }
  return g;
}

Result<SpjInstance> BuildSpjFromDnf(const Dnf& dnf,
                                    double variable_probability) {
  if (dnf.IsConstantTrue() || dnf.IsConstantFalse()) {
    return Status::InvalidArgument("constant DNF has no SPJ encoding");
  }
  const size_t k = dnf.MaxTermSize();
  SpjInstance inst;

  // Vars(v): one row per DNF variable, annotated with its consent variable.
  CONSENTDB_RETURN_IF_ERROR(inst.sdb.CreateRelation(
      "Vars", Schema({Column{"v", ValueType::kString}})));
  VarSet vars = dnf.Vars();
  VarId max_input = vars.empty() ? 0 : vars.vars().back();
  inst.var_map.assign(max_input + 1, provenance::kInvalidVar);
  for (VarId x : vars) {
    std::string name = "x" + std::to_string(x);
    CONSENTDB_ASSIGN_OR_RETURN(
        VarId annotation,
        inst.sdb.InsertTuple("Vars", Tuple{Value(name)}, "peer-of-" + name,
                             variable_probability));
    inst.var_map[x] = annotation;
  }

  // Clauses(c1..ck): one row per term (short terms pad by repetition),
  // annotated with a fresh probability-1 variable.
  std::vector<Column> clause_cols;
  for (size_t i = 0; i < k; ++i) {
    clause_cols.push_back(Column{"c" + std::to_string(i + 1),
                                 ValueType::kString});
  }
  CONSENTDB_RETURN_IF_ERROR(
      inst.sdb.CreateRelation("Clauses", Schema(clause_cols)));
  for (const VarSet& term : dnf.terms()) {
    std::vector<Value> row;
    for (size_t i = 0; i < k; ++i) {
      VarId x = term[std::min(i, term.size() - 1)];  // pad by repeating
      row.emplace_back("x" + std::to_string(x));
    }
    CONSENTDB_ASSIGN_OR_RETURN(
        VarId annotation,
        inst.sdb.InsertTuple("Clauses", Tuple(std::move(row)), "system",
                             /*probability=*/1.0));
    inst.clause_vars.push_back(annotation);
  }

  // Ans('yes'), probability 1 — projecting onto it realises the Boolean
  // query with a single output tuple.
  CONSENTDB_RETURN_IF_ERROR(inst.sdb.CreateRelation(
      "Ans", Schema({Column{"a", ValueType::kString}})));
  CONSENTDB_RETURN_IF_ERROR(
      inst.sdb.InsertTuple("Ans", Tuple{Value("yes")}, "system", 1.0)
          .status());

  // ans(a) :- Ans(a), Clauses(z1..zk), Vars(z1), ..., Vars(zk).
  PlanPtr plan = Plan::Scan("Clauses", "c");
  std::vector<PredicatePtr> conds;
  for (size_t i = 0; i < k; ++i) {
    std::string alias = "v" + std::to_string(i + 1);
    plan = Plan::Product(std::move(plan), Plan::Scan("Vars", alias));
    conds.push_back(Predicate::ColumnsEqual("c.c" + std::to_string(i + 1),
                                            alias + ".v"));
  }
  plan = Plan::Product(std::move(plan), Plan::Scan("Ans", "ans"));
  plan = Plan::Select(Predicate::And(std::move(conds)), std::move(plan));
  inst.plan = Plan::Project({"ans.a"}, std::move(plan));
  return inst;
}

Result<SjInstance> BuildSjFromGraph(const Graph& graph, double probability) {
  SjInstance inst;
  CONSENTDB_RETURN_IF_ERROR(inst.sdb.CreateRelation(
      "Vars", Schema({Column{"v", ValueType::kInt64}})));
  CONSENTDB_RETURN_IF_ERROR(inst.sdb.CreateRelation(
      "Clauses", Schema({Column{"v1", ValueType::kInt64},
                         Column{"v2", ValueType::kInt64}})));
  inst.vertex_vars.reserve(graph.num_vertices);
  for (size_t v = 0; v < graph.num_vertices; ++v) {
    CONSENTDB_ASSIGN_OR_RETURN(
        VarId annotation,
        inst.sdb.InsertTuple("Vars",
                             Tuple{Value(static_cast<int64_t>(v))},
                             "peer-" + std::to_string(v), probability));
    inst.vertex_vars.push_back(annotation);
  }
  for (const auto& [a, b] : graph.edges) {
    CONSENTDB_RETURN_IF_ERROR(
        inst.sdb
            .InsertTuple("Clauses",
                         Tuple{Value(static_cast<int64_t>(a)),
                               Value(static_cast<int64_t>(b))},
                         "system", probability)
            .status());
  }
  // SELECT * FROM Vars a, Vars b, Clauses c WHERE a.v = c.v1 AND b.v = c.v2
  PlanPtr product = Plan::Product(
      Plan::Product(Plan::Scan("Vars", "a"), Plan::Scan("Vars", "b")),
      Plan::Scan("Clauses", "c"));
  inst.plan = Plan::Select(
      Predicate::And({Predicate::ColumnsEqual("a.v", "c.v1"),
                      Predicate::ColumnsEqual("b.v", "c.v2")}),
      std::move(product));
  return inst;
}

Result<SpuInstance> BuildSpuFromGraph(const Graph& graph, double probability) {
  // Incident edge ids per vertex.
  std::vector<std::vector<int64_t>> incident(graph.num_vertices);
  for (size_t e = 0; e < graph.edges.size(); ++e) {
    incident[graph.edges[e].first].push_back(static_cast<int64_t>(e));
    incident[graph.edges[e].second].push_back(static_cast<int64_t>(e));
  }
  SpuInstance inst;
  CONSENTDB_RETURN_IF_ERROR(inst.sdb.CreateRelation(
      "R", Schema({Column{"v", ValueType::kInt64},
                   Column{"e1", ValueType::kInt64},
                   Column{"e2", ValueType::kInt64},
                   Column{"e3", ValueType::kInt64}})));
  inst.vertex_vars.reserve(graph.num_vertices);
  for (size_t v = 0; v < graph.num_vertices; ++v) {
    if (incident[v].empty()) {
      return Status::InvalidArgument("vertex " + std::to_string(v) +
                                     " has no incident edge");
    }
    // Vertices of degree < 3 repeat an incident edge (as in the reduction).
    int64_t e1 = incident[v][0];
    int64_t e2 = incident[v][std::min<size_t>(1, incident[v].size() - 1)];
    int64_t e3 = incident[v][std::min<size_t>(2, incident[v].size() - 1)];
    CONSENTDB_ASSIGN_OR_RETURN(
        VarId annotation,
        inst.sdb.InsertTuple(
            "R",
            Tuple{Value(static_cast<int64_t>(v)), Value(e1), Value(e2),
                  Value(e3)},
            "peer-" + std::to_string(v), probability));
    inst.vertex_vars.push_back(annotation);
  }
  // pi_e1(R) UNION pi_e2(R) UNION pi_e3(R), all projecting to column "e".
  inst.plan = Plan::Union({
      Plan::Project({"R.e1"}, Plan::Scan("R"), {"e"}),
      Plan::Project({"R.e2"}, Plan::Scan("R"), {"e"}),
      Plan::Project({"R.e3"}, Plan::Scan("R"), {"e"}),
  });
  return inst;
}

}  // namespace consentdb::datasets
