// Sharded-ledger differential suite (`ctest -L sharding`): the same
// sessions, run against engines whose shared consent ledger is split into
// 1, 2, 4 and 7 shards, must produce byte-identical SessionReports and
// probe traces — sharding is a pure performance structure, invisible to
// every observable artifact. The suite also pins the pieces that make that
// hold: the stable shard routing, the cross-shard stats aggregation, the
// shard-WAL round trip through OpenShardWalSet + RecoverShardedLedger, and
// the replica/cutover path of consent/replica.h.
//
// Suite names deliberately start with ShardedLedger/Replica: the CI TSAN
// row selects them by that prefix and runs the multithreaded cases under
// the race detector.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "consentdb/consent/oracle.h"
#include "consentdb/consent/replica.h"
#include "consentdb/consent/sharded_ledger.h"
#include "consentdb/consent/wal.h"
#include "consentdb/core/checkpoint.h"
#include "consentdb/core/consent_manager.h"
#include "consentdb/core/session_engine.h"
#include "consentdb/obs/tracer.h"
#include "consentdb/util/io.h"
#include "consentdb/util/rng.h"
#include "test_fixtures.h"

namespace consentdb {
namespace {

using consent::ConsentLedger;
using consent::LedgerReplica;
using consent::OpenShardWalSet;
using consent::ProbeAttempt;
using consent::ProbeFault;
using consent::ShardedConsentLedger;
using consent::ShardWalPath;
using consent::ShardWalSet;
using consent::ValuationOracle;
using consent::WalFollower;
using consent::WalOptions;
using consent::WalShardInfo;
using consent::WalWriter;
using provenance::VarId;

using AnswerVec = std::vector<std::pair<VarId, bool>>;

// The shard counts the differential property quantifies over: the legacy
// single ledger, powers of two, and a prime that exercises uneven routing.
const size_t kShardCounts[] = {1, 2, 4, 7};

AnswerVec CanonicalAnswers(size_t n = 96) {
  AnswerVec answers;
  for (VarId x = 0; x < n; ++x) answers.push_back({x, x % 3 == 0});
  return answers;
}

void FillLedger(ConsentLedger& ledger, const AnswerVec& answers) {
  for (const auto& [x, a] : answers) {
    Status st = ledger.RestoreAnswer(x, a);
    CONSENTDB_CHECK(st.ok(), st.ToString());
  }
}

// A deterministic full valuation over the fixture pool.
provenance::PartialValuation HiddenValuation(
    const consent::SharedDatabase& sdb) {
  provenance::PartialValuation hidden;
  for (VarId x = 0; x < sdb.pool().size(); ++x) hidden.Set(x, x % 3 != 1);
  return hidden;
}

// An oracle with a fixed answer function and injected transient faults,
// for exercising every tally (hits / oracle probes / faulted probes)
// identically against differently sharded ledgers.
class FixedOracle : public consent::ProbeOracle {
 public:
  explicit FixedOracle(bool fault_every_fifth = false)
      : fault_every_fifth_(fault_every_fifth) {}

  bool Probe(VarId x) override {
    ++probes_;
    return x % 3 == 0;
  }
  ProbeAttempt TryProbe(VarId x) override {
    if (fault_every_fifth_ && x % 5 == 0 && !faulted_[x]) {
      faulted_[x] = true;
      return ProbeAttempt::Faulted(ProbeFault::kTransient);
    }
    return ProbeAttempt::Answered(Probe(x));
  }
  size_t probe_count() const override { return probes_; }

 private:
  const bool fault_every_fifth_;
  size_t probes_ = 0;
  std::unordered_map<VarId, bool> faulted_;
};

TEST(ShardedLedgerTest, ShardOfPartitionsEveryVariable) {
  for (size_t n : kShardCounts) {
    std::vector<size_t> population(n, 0);
    for (VarId x = 0; x < 1024; ++x) {
      const size_t shard = ShardedConsentLedger::ShardOf(x, n);
      ASSERT_LT(shard, n) << "x=" << x << " n=" << n;
      // Routing is a pure function: the same variable always lands on the
      // same shard (the WAL set on disk depends on it).
      EXPECT_EQ(shard, ShardedConsentLedger::ShardOf(x, n));
      ++population[shard];
    }
    for (size_t k = 0; k < n; ++k) {
      // The mix must actually spread ids: with 1024 sequential variables
      // every shard sees a healthy share (exact balance is not required).
      EXPECT_GT(population[k], 1024 / n / 4)
          << "shard " << k << " of " << n << " starved";
    }
  }
  for (VarId x = 0; x < 64; ++x) {
    EXPECT_EQ(ShardedConsentLedger::ShardOf(x, 1), 0u);
  }
}

TEST(ShardedLedgerTest, AnswersMatchPlainLedgerAtEveryShardCount) {
  const AnswerVec canonical = CanonicalAnswers();
  ConsentLedger plain;
  FillLedger(plain, canonical);

  for (size_t n : kShardCounts) {
    SCOPED_TRACE("shards=" + std::to_string(n));
    ShardedConsentLedger sharded(n);
    AnswerVec shuffled = canonical;
    Rng(17).Shuffle(shuffled);
    FillLedger(sharded, shuffled);

    EXPECT_EQ(sharded.Answers(), plain.Answers());
    EXPECT_EQ(sharded.size(), plain.size());
    EXPECT_EQ(sharded.restored_answers(), plain.restored_answers());
    for (const auto& [x, answer] : canonical) {
      EXPECT_EQ(sharded.Lookup(x), std::optional<bool>(answer));
    }

    // Every shard holds exactly its partition, and the partitions tile the
    // whole answer set.
    size_t total = 0;
    for (size_t k = 0; k < n; ++k) {
      for (const auto& [x, answer] : sharded.shard(k).Answers()) {
        EXPECT_EQ(ShardedConsentLedger::ShardOf(x, n), k)
            << "x=" << x << " landed on the wrong shard";
      }
      total += sharded.shard(k).size();
    }
    EXPECT_EQ(total, canonical.size());
  }
}

// Satellite regression: the aggregated tallies of a 4-shard ledger equal a
// single ledger's after an identical probe workload — `\stats` and the
// engine.* metrics must read the same at any shard count.
TEST(ShardedLedgerTest, StatsAggregateToSingleLedgerTotals) {
  auto drive = [](ConsentLedger& ledger) {
    FixedOracle oracle(/*fault_every_fifth=*/true);
    // Fallible pass: every fifth variable faults once, retries succeed.
    for (VarId x = 0; x < 40; ++x) {
      ProbeAttempt attempt = ledger.TryProbeVia(oracle, x);
      if (!attempt.ok()) attempt = ledger.TryProbeVia(oracle, x);
      CONSENTDB_CHECK(attempt.ok(), "retry must answer");
    }
    // Second pass: all hits.
    for (VarId x = 0; x < 40; ++x) ledger.ProbeVia(oracle, x);
    // Recovery-style restores on top.
    for (VarId x = 100; x < 110; ++x) {
      Status st = ledger.RestoreAnswer(x, true);
      CONSENTDB_CHECK(st.ok(), st.ToString());
    }
  };

  ConsentLedger plain;
  ShardedConsentLedger sharded(4);
  drive(plain);
  drive(sharded);

  EXPECT_EQ(sharded.size(), plain.size());
  EXPECT_EQ(sharded.hits(), plain.hits());
  EXPECT_EQ(sharded.oracle_probes(), plain.oracle_probes());
  EXPECT_EQ(sharded.faulted_probes(), plain.faulted_probes());
  EXPECT_EQ(sharded.restored_answers(), plain.restored_answers());
  EXPECT_EQ(sharded.Answers(), plain.Answers());
  EXPECT_EQ(sharded.faulted_probes(), 8u);  // 40 vars, every fifth faults
}

// One engine run: every report and (wall-clock-zeroed) probe trace, plus
// the ledger totals, captured for byte comparison across shard counts.
struct EngineArtifacts {
  std::vector<std::string> reports;
  std::vector<std::string> traces;
  size_t ledger_size = 0;
  uint64_t ledger_hits = 0;
  uint64_t ledger_oracle_probes = 0;
};

std::vector<std::string> DiffSqls() {
  return {
      testing::RecruitmentQuerySql(),
      "SELECT name FROM Companies",
      testing::RecruitmentQuerySql(),  // repeat: served via caches + ledger
      "SELECT sid FROM JobSeekers WHERE agency = 'Bob'",
      "SELECT vid FROM Vacancies WHERE amount = 3",
  };
}

EngineArtifacts RunEngine(size_t shards) {
  consent::SharedDatabase sdb = testing::RecruitmentDatabase();
  core::EngineOptions options;
  options.num_threads = 1;  // sequential: traces are fully deterministic
  options.ledger_shards = shards;
  core::SessionEngine engine(sdb, options);
  ValuationOracle oracle(HiddenValuation(sdb));

  EngineArtifacts artifacts;
  for (const std::string& sql : DiffSqls()) {
    obs::SessionTracer tracer;
    core::SessionRequest request;
    request.sql = sql;
    request.oracle = &oracle;
    request.tracer = &tracer;
    Result<core::SessionReport> report =
        engine.Submit(std::move(request)).get();
    CONSENTDB_CHECK(report.ok(), report.status().ToString());
    for (obs::ProbeEvent& event : tracer.mutable_events()) {
      event.decision_nanos = 0;
    }
    tracer.set_session_nanos(0);
    artifacts.reports.push_back(report.value().ToJson());
    artifacts.traces.push_back(tracer.ToJson());
  }
  artifacts.ledger_size = engine.ledger().size();
  artifacts.ledger_hits = engine.ledger().hits();
  artifacts.ledger_oracle_probes = engine.ledger().oracle_probes();
  return artifacts;
}

// The tentpole property: reports and probe traces are byte-identical at
// shard counts 1/2/4/7, and so are the engine-wide ledger totals.
TEST(ShardedLedgerDiff, ReportsAndTracesByteIdenticalAcrossShardCounts) {
  const EngineArtifacts baseline = RunEngine(1);
  ASSERT_EQ(baseline.reports.size(), DiffSqls().size());
  ASSERT_GT(baseline.ledger_size, 0u);

  for (size_t shards : {size_t{2}, size_t{4}, size_t{7}}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    const EngineArtifacts run = RunEngine(shards);
    EXPECT_EQ(run.reports, baseline.reports);
    EXPECT_EQ(run.traces, baseline.traces);
    EXPECT_EQ(run.ledger_size, baseline.ledger_size);
    EXPECT_EQ(run.ledger_hits, baseline.ledger_hits);
    EXPECT_EQ(run.ledger_oracle_probes, baseline.ledger_oracle_probes);
  }
}

// Concurrency differential (the TSAN target): many sessions race through a
// 4-shard ledger on a worker pool; every report must equal the sequential
// single-shard baseline for its query, and the ledger must end with exactly
// the distinct-variable answer set.
TEST(ShardedLedgerDiff, MultithreadedReportsMatchSequentialBaseline) {
  const EngineArtifacts baseline = RunEngine(1);
  const std::vector<std::string> sqls = DiffSqls();

  consent::SharedDatabase sdb = testing::RecruitmentDatabase();
  core::EngineOptions options;
  options.num_threads = 4;
  options.ledger_shards = 4;
  core::SessionEngine engine(sdb, options);
  ValuationOracle oracle(HiddenValuation(sdb));

  std::vector<core::SessionRequest> requests;
  std::vector<size_t> request_sql;
  for (int wave = 0; wave < 6; ++wave) {
    for (size_t i = 0; i < sqls.size(); ++i) {
      core::SessionRequest request;
      request.sql = sqls[i];
      request.oracle = &oracle;
      requests.push_back(std::move(request));
      request_sql.push_back(i);
    }
  }
  std::vector<Result<core::SessionReport>> results =
      engine.RunAll(std::move(requests));

  ASSERT_EQ(results.size(), request_sql.size());
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << results[i].status().ToString();
    EXPECT_EQ(results[i].value().ToJson(), baseline.reports[request_sql[i]])
        << "request " << i;
  }
  // Concurrency may only change who pays the oracle call, never the merged
  // answer set.
  EXPECT_EQ(engine.ledger().size(), baseline.ledger_size);
  EXPECT_EQ(engine.ledger().oracle_probes(), baseline.ledger_oracle_probes);
}

// Round trip through the shard WAL set: journaled answers recover into a
// plain ledger AND into a differently sharded ledger with the identical
// merged view, the resumed session never re-probes, and the generation
// stamp survives reopen.
TEST(ShardedLedgerDiff, WalSetRoundTripRecoversIdenticalLedger) {
  CrashingEnv env;
  consent::SharedDatabase sdb = testing::RecruitmentDatabase();
  core::ConsentManager manager(sdb);
  provenance::PartialValuation hidden = HiddenValuation(sdb);

  AnswerVec journaled;
  {
    Result<ShardWalSet> set =
        OpenShardWalSet(&env, "ledger", 4, /*generation=*/3);
    ASSERT_TRUE(set.ok()) << set.status().ToString();
    EXPECT_EQ(set.value().generation, 3u);

    core::EngineOptions options;
    options.num_threads = 2;
    options.ledger_shards = 4;
    options.shard_wals = set.value().pointers();
    options.wal_compact_every_records = 2;  // exercise per-shard compaction
    core::SessionEngine engine(sdb, options);
    ValuationOracle oracle(hidden);
    for (const std::string& sql : DiffSqls()) {
      core::SessionRequest request;
      request.sql = sql;
      request.oracle = &oracle;
      Result<core::SessionReport> report =
          engine.Submit(std::move(request)).get();
      ASSERT_TRUE(report.ok()) << report.status().ToString();
    }
    ASSERT_TRUE(engine.ledger().journal_error().ok());
    journaled = engine.ledger().Answers();
    for (WalWriter* wal : set.value().pointers()) {
      ASSERT_TRUE(wal->Sync().ok());
    }
  }
  ASSERT_FALSE(journaled.empty());

  // Plain-target recovery: N shards merge down to one view.
  ConsentLedger merged;
  Result<core::ShardRecoveryStats> stats =
      core::RecoverShardedLedger(&env, "ledger", 4, &merged);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().generation, 3u);
  EXPECT_EQ(stats.value().shards.size(), 4u);
  EXPECT_EQ(stats.value().recovered_answers, journaled.size());
  EXPECT_EQ(merged.Answers(), journaled);

  // Re-partitioned-target recovery: same set into a 2-shard ledger.
  ShardedConsentLedger repartitioned(2);
  Result<core::ShardRecoveryStats> stats2 =
      core::RecoverShardedLedger(&env, "ledger", 4, &repartitioned);
  ASSERT_TRUE(stats2.ok()) << stats2.status().ToString();
  EXPECT_EQ(repartitioned.Answers(), journaled);

  // A session resumed on the recovered ledger replays entirely from it.
  ValuationOracle resumed_backing(hidden);
  core::SessionOptions resume_options;
  resume_options.ledger = &merged;
  Result<core::SessionReport> resumed = manager.DecideAll(
      testing::RecruitmentQuerySql(), resumed_backing, resume_options);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed_backing.probe_count(), 0u);

  // Reopening the set with a different requested generation keeps the
  // stamped one — the on-disk epoch wins.
  Result<ShardWalSet> reopened =
      OpenShardWalSet(&env, "ledger", 4, /*generation=*/0);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value().generation, 3u);

  // Resizing the set is never silent.
  Result<ShardWalSet> resized = OpenShardWalSet(&env, "ledger", 2);
  EXPECT_EQ(resized.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ReplicaTest, FollowerTailsIncrementallyWithoutResync) {
  CrashingEnv env;
  Result<ShardWalSet> set =
      OpenShardWalSet(&env, "led", 1, /*generation=*/1);
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  ShardedConsentLedger leader(1);
  leader.AttachShardJournals(set.value().pointers());

  WalFollower follower(&env, ShardWalPath("led", 0));
  FixedOracle oracle;
  size_t expected = 0;
  for (VarId batch = 0; batch < 3; ++batch) {
    for (VarId i = 0; i < 8; ++i) leader.ProbeVia(oracle, batch * 8 + i);
    expected += 8;
    ASSERT_TRUE(set.value().wals[0]->Sync().ok());
    ASSERT_TRUE(follower.Poll().ok());
    EXPECT_EQ(follower.size(), expected);
  }
  EXPECT_EQ(follower.Answers(), leader.Answers());
  for (VarId x = 0; x < 24; ++x) {
    EXPECT_EQ(follower.Lookup(x), leader.Lookup(x));
  }
  EXPECT_EQ(follower.polls(), 3u);
  // After the first catch-up every poll was an incremental tail read.
  EXPECT_EQ(follower.resyncs(), 0u);
  ASSERT_TRUE(follower.shard().has_value());
  EXPECT_EQ(follower.shard()->generation, 1u);
}

TEST(ReplicaTest, FollowerResyncsThroughCompaction) {
  CrashingEnv env;
  Result<ShardWalSet> set = OpenShardWalSet(&env, "led", 1);
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  ShardedConsentLedger leader(1);
  // Aggressive compaction: the log is rewritten under the follower's feet.
  leader.AttachShardJournals(set.value().pointers(),
                             /*compact_every_records=*/1);

  WalFollower follower(&env, ShardWalPath("led", 0));
  FixedOracle oracle;
  for (VarId x = 0; x < 12; ++x) {
    leader.ProbeVia(oracle, x);
    ASSERT_TRUE(follower.Poll().ok());
  }
  EXPECT_EQ(follower.Answers(), leader.Answers());
  // The rewrites forced at least one genuine resync, and the view is still
  // exact — resync and incremental tailing agree.
  EXPECT_GT(follower.resyncs(), 0u);
}

TEST(ReplicaTest, ReplicaMergesShardsAndCutsOver) {
  CrashingEnv env;
  Result<ShardWalSet> set =
      OpenShardWalSet(&env, "led", 4, /*generation=*/7);
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  ShardedConsentLedger leader(4);
  leader.AttachShardJournals(set.value().pointers());

  FixedOracle oracle;
  for (VarId x = 0; x < 64; ++x) leader.ProbeVia(oracle, x);
  for (WalWriter* wal : set.value().pointers()) {
    ASSERT_TRUE(wal->Sync().ok());
  }

  LedgerReplica replica(&env, "led", 4);
  ASSERT_TRUE(replica.Poll().ok());
  EXPECT_EQ(replica.size(), leader.size());
  Result<AnswerVec> merged = replica.Answers();
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(merged.value(), leader.Answers());
  for (VarId x = 0; x < 64; ++x) {
    EXPECT_EQ(replica.Lookup(x), leader.Lookup(x));
  }

  Result<LedgerReplica::Cutover> cutover = replica.CutOver();
  ASSERT_TRUE(cutover.ok()) << cutover.status().ToString();
  EXPECT_EQ(cutover.value().next_generation, 8u);
  EXPECT_EQ(cutover.value().answers, leader.Answers());

  // The promoted leader starts a fresh set stamped with the next
  // generation and seeded with the merged answers.
  Result<ShardWalSet> promoted =
      OpenShardWalSet(&env, "led2", 2, cutover.value().next_generation);
  ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();
  EXPECT_EQ(promoted.value().generation, 8u);
  ShardedConsentLedger new_leader(2);
  new_leader.AttachShardJournals(promoted.value().pointers());
  FillLedger(new_leader, cutover.value().answers);
  EXPECT_EQ(new_leader.Answers(), leader.Answers());
}

TEST(ReplicaTest, CutOverRejectsMixedGenerationSets) {
  CrashingEnv env;
  // Hand-assemble a set whose members carry different generations — the
  // residue of mixing logs from a demoted and a promoted leader.
  for (uint32_t k = 0; k < 2; ++k) {
    WalOptions options;
    options.shard = WalShardInfo{k, 2, /*generation=*/1 + k};
    Result<std::unique_ptr<WalWriter>> wal =
        WalWriter::Open(&env, ShardWalPath("bad", k), options);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    ASSERT_TRUE(wal.value()->AppendAnswer(k, true).ok());
    ASSERT_TRUE(wal.value()->Sync().ok());
  }

  LedgerReplica replica(&env, "bad", 2);
  ASSERT_TRUE(replica.Poll().ok());  // each member is individually healthy
  Result<LedgerReplica::Cutover> cutover = replica.CutOver();
  EXPECT_EQ(cutover.status().code(), StatusCode::kFailedPrecondition);

  // Cross-shard recovery rejects the same set the same way.
  ConsentLedger merged;
  Result<core::ShardRecoveryStats> stats =
      core::RecoverShardedLedger(&env, "bad", 2, &merged);
  EXPECT_EQ(stats.status().code(), StatusCode::kFailedPrecondition);

  // And so does opening it for appending.
  Result<ShardWalSet> reopened = OpenShardWalSet(&env, "bad", 2);
  EXPECT_EQ(reopened.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace consentdb
