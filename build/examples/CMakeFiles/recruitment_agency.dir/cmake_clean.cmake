file(REMOVE_RECURSE
  "CMakeFiles/recruitment_agency.dir/recruitment_agency.cpp.o"
  "CMakeFiles/recruitment_agency.dir/recruitment_agency.cpp.o.d"
  "recruitment_agency"
  "recruitment_agency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recruitment_agency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
