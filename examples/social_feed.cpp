// Re-sharing derived content in a social network (the motivation of
// Secs. I/VI): a digest that unions two derived views — trending posts and
// posts by verified authors — where the same post can be derived two ways.
//
// The query is a non-partitioned SPJU (the Posts relation occurs in both
// union branches, cf. Def. IV.6 / Example IV.7), so no exact PTIME
// algorithm is known; the session demonstrates the single-tuple variant
// OPT-PEER-PROBE-SINGLE as well: checking one specific digest entry probes
// far fewer peers than clearing the whole digest.
//
// Build & run:  ./build/examples/social_feed

#include <iostream>

#include "consentdb/core/consent_manager.h"
#include "consentdb/util/rng.h"

using namespace consentdb;
using relational::Column;
using relational::Schema;
using relational::Tuple;
using relational::Value;
using relational::ValueType;

int main() {
  Rng rng(99);
  consent::SharedDatabase sdb;
  auto check = [](const Status& s) { CONSENTDB_CHECK(s.ok(), s.ToString()); };
  check(sdb.CreateRelation("Posts",
                           Schema({Column{"pid", ValueType::kInt64},
                                   Column{"author", ValueType::kString},
                                   Column{"text", ValueType::kString},
                                   Column{"likes", ValueType::kInt64}})));
  check(sdb.CreateRelation("Authors",
                           Schema({Column{"author", ValueType::kString},
                                   Column{"verified", ValueType::kBool}})));

  struct Row {
    int pid;
    const char* author;
    const char* text;
    int likes;
  };
  const Row posts[] = {
      {1, "noa", "sunrise over the bay", 512},
      {2, "omer", "my sourdough journey", 48},
      {3, "noa", "bay area fog timelapse", 301},
      {4, "paz", "quantum homework help", 730},
      {5, "omer", "second loaf, better crumb", 95},
      {6, "rivka", "marathon training week 9", 122},
      // paz's quieter posts reach the digest only through the verified-
      // author branch, so they share paz's verification tuple: the digest
      // provenance is genuinely not read-once.
      {7, "paz", "office hours moved to 3pm", 80},
      {8, "paz", "lab tour photos", 64},
  };
  for (const Row& row : posts) {
    Result<provenance::VarId> r = sdb.InsertTuple(
        "Posts",
        Tuple{Value(row.pid), Value(row.author), Value(row.text),
              Value(row.likes)},
        row.author, 0.6);
    CONSENTDB_CHECK(r.ok(), r.status().ToString());
  }
  const std::pair<const char*, bool> authors[] = {
      {"noa", true}, {"omer", false}, {"paz", true}, {"rivka", true}};
  for (const auto& [name, verified] : authors) {
    // The verification record is platform data, rarely restricted.
    Result<provenance::VarId> r = sdb.InsertTuple(
        "Authors", Tuple{Value(name), Value(verified)}, "platform", 0.95);
    CONSENTDB_CHECK(r.ok(), r.status().ToString());
  }

  // The digest: trending posts (>100 likes) UNION posts by verified authors.
  // "Posts" occurs in both branches -> non-partitioned SPJU.
  const char* digest_sql =
      "SELECT text FROM Posts WHERE likes > 100 "
      "UNION "
      "SELECT p.text FROM Posts p, Authors a "
      "WHERE p.author = a.author AND a.verified = TRUE";

  core::ConsentManager manager(sdb);
  Result<query::PlanPtr> plan = query::ParseQuery(digest_sql);
  CONSENTDB_CHECK(plan.ok(), plan.status().ToString());
  Result<core::QueryAnalysis> analysis = manager.Analyze(*plan);
  CONSENTDB_CHECK(analysis.ok(), analysis.status().ToString());
  std::cout << "digest query class: " << analysis->profile.ToString() << "\n";
  std::cout << "provenance: " << analysis->provenance.ToString() << "\n\n";

  provenance::PartialValuation hidden = sdb.pool().SampleValuation(rng);

  // Whole-digest session (OPT-PEER-PROBE).
  {
    consent::ValuationOracle oracle(hidden);
    Result<core::SessionReport> report = manager.DecideAll(*plan, oracle);
    CONSENTDB_CHECK(report.ok(), report.status().ToString());
    std::cout << "=== clearing the whole digest (" << report->algorithm_used
              << ", " << report->num_probes << " probes) ===\n";
    for (const core::TupleConsent& tc : report->tuples) {
      std::cout << "  " << (tc.shareable ? "[ok]  " : "[no]  ")
                << tc.tuple.at(0).AsString() << "\n";
    }
  }

  // Single-entry session (OPT-PEER-PROBE-SINGLE) on the same hidden truth.
  {
    consent::ValuationOracle oracle(hidden);
    Tuple entry{Value("sunrise over the bay")};
    Result<core::SessionReport> report =
        manager.DecideSingle(*plan, entry, oracle);
    CONSENTDB_CHECK(report.ok(), report.status().ToString());
    std::cout << "\n=== clearing one entry only ===\n";
    std::cout << "  \"sunrise over the bay\": "
              << (report->tuples[0].shareable ? "shareable" : "not shareable")
              << " after " << report->num_probes << " probe(s)\n";
    for (const auto& probe : report->trace) {
      std::cout << "    asked " << probe.owner << " about "
                << probe.variable_name << " -> "
                << (probe.answer ? "yes" : "no") << "\n";
    }
  }
  return 0;
}
