#include "consentdb/strategy/bdd.h"

#include <set>

#include "consentdb/obs/metrics.h"
#include "consentdb/util/check.h"

namespace consentdb::strategy {

namespace {

// Replays `path` on a fresh state+strategy, checking determinism.
struct Replayed {
  EvaluationState state;
  std::unique_ptr<ProbeStrategy> strategy;
};

Replayed Replay(const std::vector<Dnf>& dnfs, const std::vector<double>& pi,
                const StrategyFactory& factory, bool attach_cnfs,
                const std::vector<std::pair<VarId, bool>>& path) {
  Replayed r{EvaluationState(dnfs, pi), factory()};
  if (attach_cnfs) {
    Status st = r.state.AttachCnfs();
    CONSENTDB_CHECK(st.ok(), st.ToString());
  }
  for (const auto& [x, b] : path) {
    VarId chosen = r.strategy->ChooseNext(r.state);
    CONSENTDB_CHECK(chosen == x,
                    "strategy is not deterministic: BDD materialisation "
                    "requires replayable choices");
    r.state.Assign(x, b);
    r.strategy->OnAnswer(r.state, x, b);
  }
  return r;
}

}  // namespace

Bdd::NodeId Bdd::InternLeaf(std::vector<Truth> outcomes) {
  std::string key = "L:";
  for (Truth t : outcomes) key += static_cast<char>('0' + static_cast<int>(t));
  auto it = intern_.find(key);
  if (it != intern_.end()) {
    obs::Increment(metrics_, "bdd.intern_hit");
    return it->second;
  }
  obs::Increment(metrics_, "bdd.intern_miss");
  NodeId id = static_cast<NodeId>(nodes_.size());
  Node node;
  node.outcomes = std::move(outcomes);
  nodes_.push_back(std::move(node));
  intern_.emplace(std::move(key), id);
  return id;
}

Bdd::NodeId Bdd::InternInner(VarId variable, NodeId when_false,
                             NodeId when_true) {
  std::string key = "N:" + std::to_string(variable) + "," +
                    std::to_string(when_false) + "," +
                    std::to_string(when_true);
  auto it = intern_.find(key);
  if (it != intern_.end()) {
    obs::Increment(metrics_, "bdd.intern_hit");
    return it->second;
  }
  obs::Increment(metrics_, "bdd.intern_miss");
  NodeId id = static_cast<NodeId>(nodes_.size());
  Node node;
  node.variable = variable;
  node.when_false = when_false;
  node.when_true = when_true;
  nodes_.push_back(node);
  intern_.emplace(std::move(key), id);
  return id;
}

Bdd Bdd::Materialize(const std::vector<Dnf>& dnfs,
                     const std::vector<double>& pi,
                     const StrategyFactory& factory, bool attach_cnfs,
                     size_t max_vars, obs::MetricsRegistry* metrics) {
  std::set<VarId> vars;
  for (const Dnf& dnf : dnfs) {
    VarSet v = dnf.Vars();
    vars.insert(v.begin(), v.end());
  }
  CONSENTDB_CHECK(vars.size() <= max_vars,
                  "BDD materialisation is exponential: " +
                      std::to_string(vars.size()) + " variables exceed " +
                      std::to_string(max_vars));
  Bdd bdd;
  bdd.metrics_ = metrics;
  obs::ScopedTimer build_timer(obs::MaybeHistogram(metrics, "bdd.build_ns"));
  // Depth-first over answer paths (recursive lambda).
  std::vector<std::pair<VarId, bool>> path;
  auto build = [&](auto&& self) -> NodeId {
    obs::Increment(metrics, "bdd.replays");
    Replayed r = Replay(dnfs, pi, factory, attach_cnfs, path);
    if (r.state.AllDecided()) {
      return bdd.InternLeaf(r.state.FormulaValues());
    }
    VarId x = r.strategy->ChooseNext(r.state);
    path.emplace_back(x, false);
    NodeId lo = self(self);
    path.back().second = true;
    NodeId hi = self(self);
    path.pop_back();
    return bdd.InternInner(x, lo, hi);
  };
  bdd.root_ = build(build);
  bdd.metrics_ = nullptr;
  if (metrics != nullptr) {
    obs::SetGauge(metrics, "bdd.nodes",
                  static_cast<double>(bdd.num_nodes()));
    obs::SetGauge(metrics, "bdd.max_depth",
                  static_cast<double>(bdd.MaxDepth()));
  }
  return bdd;
}

const Bdd::Node& Bdd::node(NodeId id) const {
  CONSENTDB_CHECK(id < nodes_.size(), "BDD node id out of range");
  return nodes_[id];
}

double Bdd::ExpectedCost(const std::vector<double>& pi) const {
  // Children are interned before their parents, so ids are in dependency
  // order and one ascending pass suffices.
  std::vector<double> cost(nodes_.size(), 0.0);
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    if (n.is_leaf()) continue;
    CONSENTDB_CHECK(n.variable < pi.size(), "probability missing for BDD var");
    double p = pi[n.variable];
    cost[id] = 1.0 + (1.0 - p) * cost[n.when_false] + p * cost[n.when_true];
  }
  return cost[root_];
}

size_t Bdd::MaxDepth() const {
  std::vector<size_t> depth(nodes_.size(), 0);
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    if (n.is_leaf()) continue;
    depth[id] = 1 + std::max(depth[n.when_false], depth[n.when_true]);
  }
  return depth[root_];
}

bool Bdd::ConsistentWith(const std::vector<Dnf>& dnfs,
                         const PartialValuation& val) const {
  NodeId id = root_;
  while (!nodes_[id].is_leaf()) {
    const Node& n = nodes_[id];
    Truth t = val.Get(n.variable);
    CONSENTDB_CHECK(t != Truth::kUnknown,
                    "valuation does not cover BDD variable");
    id = t == Truth::kTrue ? n.when_true : n.when_false;
  }
  const std::vector<Truth>& outcomes = nodes_[id].outcomes;
  if (outcomes.size() != dnfs.size()) return false;
  for (size_t j = 0; j < dnfs.size(); ++j) {
    if (outcomes[j] != dnfs[j].Evaluate(val)) return false;
  }
  return true;
}

std::string Bdd::ToDot(const provenance::VarNamer& namer) const {
  std::string out = "digraph bdd {\n  rankdir=TB;\n";
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    if (n.is_leaf()) {
      std::string label;
      for (Truth t : n.outcomes) {
        label += t == Truth::kTrue ? 'T' : (t == Truth::kFalse ? 'F' : '?');
      }
      out += "  n" + std::to_string(id) + " [shape=box,label=\"" + label +
             "\"];\n";
    } else {
      std::string name = namer ? namer(n.variable)
                               : "x" + std::to_string(n.variable);
      out += "  n" + std::to_string(id) + " [shape=circle,label=\"" + name +
             "\"];\n";
      out += "  n" + std::to_string(id) + " -> n" +
             std::to_string(n.when_false) + " [style=dashed,label=\"0\"];\n";
      out += "  n" + std::to_string(id) + " -> n" +
             std::to_string(n.when_true) + " [label=\"1\"];\n";
    }
  }
  out += "  root -> n" + std::to_string(root_) + ";\n";
  out += "  root [shape=none,label=\"\"];\n}\n";
  return out;
}

}  // namespace consentdb::strategy
