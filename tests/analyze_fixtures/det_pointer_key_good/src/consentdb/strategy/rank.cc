// GOOD: peers are ranked by their stable numeric id, so iteration order is
// identical on every run.

#include <cstdint>
#include <map>
#include <string>

namespace consentdb::strategy {

struct Peer {
  uint64_t id = 0;
  std::string name;
};

class PeerRank {
 public:
  void Bump(const Peer& peer) { ++rank_[peer.id]; }

 private:
  std::map<uint64_t, int> rank_;
};

}  // namespace consentdb::strategy
