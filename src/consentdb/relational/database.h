// Database: a named catalog of relations.

#ifndef CONSENTDB_RELATIONAL_DATABASE_H_
#define CONSENTDB_RELATIONAL_DATABASE_H_

#include <map>
#include <string>
#include <vector>

#include "consentdb/relational/relation.h"
#include "consentdb/util/result.h"

namespace consentdb::relational {

class Database {
 public:
  Database() = default;

  // Creates an empty relation named `name`. Fails if the name is taken.
  [[nodiscard]] Status CreateRelation(const std::string& name, Schema schema);

  // Adds a fully-built relation under `name`.
  [[nodiscard]] Status AddRelation(const std::string& name, Relation relation);

  bool HasRelation(const std::string& name) const;

  [[nodiscard]] Result<const Relation*> GetRelation(const std::string& name) const;
  [[nodiscard]] Result<Relation*> GetMutableRelation(const std::string& name);

  // Convenience for statically-known names (programmer error if absent).
  const Relation& RelationOrDie(const std::string& name) const;
  Relation& MutableRelationOrDie(const std::string& name);

  // Inserts a tuple into the named relation (set semantics; returns whether
  // it was new).
  [[nodiscard]] Result<bool> Insert(const std::string& relation, Tuple t);

  // Relation names in deterministic (lexicographic) order.
  std::vector<std::string> RelationNames() const;

  // Total number of tuples across all relations.
  size_t TotalTuples() const;

 private:
  std::map<std::string, Relation> relations_;
};

}  // namespace consentdb::relational

#endif  // CONSENTDB_RELATIONAL_DATABASE_H_
