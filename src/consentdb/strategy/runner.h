// The probing session loop: repeatedly ask the strategy for a variable,
// probe it, and apply the answer until every formula is decided.

#ifndef CONSENTDB_STRATEGY_RUNNER_H_
#define CONSENTDB_STRATEGY_RUNNER_H_

#include <functional>
#include <utility>
#include <vector>

#include "consentdb/obs/metrics.h"
#include "consentdb/obs/tracer.h"
#include "consentdb/strategy/strategies.h"

namespace consentdb::strategy {

// Answers a probe for variable x; must be consistent across calls.
using ProbeFn = std::function<bool(VarId)>;

// Opt-in telemetry sinks for a probing session. Both default to null, in
// which case the loop records no timings and reads no clocks; attaching
// either one must not change which probes are issued (verified by tests).
struct RunInstrumentation {
  obs::MetricsRegistry* metrics = nullptr;
  obs::SessionTracer* tracer = nullptr;

  bool enabled() const { return metrics != nullptr || tracer != nullptr; }
};

struct ProbeRun {
  // Total probes issued — the cost the paper optimises.
  size_t num_probes = 0;
  // Sum of per-variable probe costs (== num_probes under unit costs).
  double total_cost = 0.0;
  // Final truth value of every formula (none Unknown).
  std::vector<Truth> outcomes;
  // The probe sequence with answers, in order. Derived from the session's
  // tracer events (runner.cc records each probe exactly once), so this view
  // and SessionTracer::events() cannot diverge.
  std::vector<std::pair<VarId, bool>> trace;
};

// Runs `strategy` on `state` until all formulas are decided. Checks the
// invariants every strategy must satisfy: each chosen variable is useful and
// never probed twice. With instrumentation attached, records one ProbeEvent
// per probe (decision wall-time, residual-formula shape) and bumps
// probe/decision metrics.
ProbeRun RunToCompletion(EvaluationState& state, ProbeStrategy& strategy,
                         const ProbeFn& probe,
                         const RunInstrumentation& instr = {});

// Convenience overload reading answers from a fixed hidden valuation (must
// cover every variable of the formulas).
ProbeRun RunToCompletion(EvaluationState& state, ProbeStrategy& strategy,
                         const PartialValuation& hidden,
                         const RunInstrumentation& instr = {});

}  // namespace consentdb::strategy

#endif  // CONSENTDB_STRATEGY_RUNNER_H_
