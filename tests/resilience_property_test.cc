// Property harness for the resilience layer: 200 seeded random instances of
// (formulas, probabilities, hidden world, fault plan) checked against the
// fault-free run. The invariants are the possible-worlds guarantees of the
// three-valued session semantics:
//
//   1. Every run terminates (dead peers included) — enforced by the harness
//      finishing at all.
//   2. Every *resolved* formula agrees with the fault-free outcome: faults
//      may withhold information, never corrupt it.
//   3. With transient-only faults and enough retry attempts, the resilient
//      run is byte-identical to the fault-free run: same probe trace, same
//      outcomes, nothing unresolved.
//
// All backoff waiting runs on a VirtualClock; the suite performs no real
// sleeps regardless of how much virtual time the retries burn.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "consentdb/consent/faulty_oracle.h"
#include "consentdb/consent/oracle.h"
#include "consentdb/consent/variable_pool.h"
#include "consentdb/core/consent_manager.h"
#include "consentdb/strategy/evaluation_state.h"
#include "consentdb/strategy/runner.h"
#include "consentdb/strategy/strategies.h"
#include "consentdb/util/clock.h"
#include "consentdb/util/rng.h"
#include "test_fixtures.h"

namespace consentdb {
namespace {

using consent::FaultPlan;
using consent::FaultyOracle;
using consent::ProbeAttempt;
using consent::ProbeFault;
using consent::ValuationOracle;
using consent::VariablePool;
using core::RetryPolicy;
using provenance::Dnf;
using provenance::PartialValuation;
using provenance::Truth;
using provenance::VarId;
using provenance::VarSet;
using strategy::EvaluationState;
using strategy::FallibleProbe;
using strategy::ProbeOutcome;

struct Instance {
  VariablePool pool;
  std::vector<Dnf> dnfs;
  std::vector<double> pi;
  PartialValuation hidden;
  FaultPlan plan;
  bool transient_only = true;
};

// A random instance: 4-15 variables over 1-4 peers, 1-3 formulas of 1-4
// terms with 1-4 variables each, a sampled hidden world, and a fault plan
// with up to 60% transient failures (30% of instances also kill one peer).
Instance MakeInstance(uint64_t seed) {
  Instance inst;
  Rng rng(1000 + seed);
  const size_t num_vars = 4 + rng.UniformIndex(12);
  const size_t num_peers = 1 + rng.UniformIndex(4);
  for (size_t i = 0; i < num_vars; ++i) {
    inst.pool.Allocate("x" + std::to_string(i),
                       "peer" + std::to_string(i % num_peers),
                       0.05 + 0.9 * rng.UniformReal());
  }
  inst.pi = inst.pool.Probabilities();

  const size_t num_formulas = 1 + rng.UniformIndex(3);
  for (size_t f = 0; f < num_formulas; ++f) {
    std::vector<VarSet> terms;
    const size_t num_terms = 1 + rng.UniformIndex(4);
    for (size_t t = 0; t < num_terms; ++t) {
      std::vector<VarId> ids;
      const size_t width = 1 + rng.UniformIndex(4);
      for (size_t k = 0; k < width; ++k) {
        ids.push_back(static_cast<VarId>(rng.UniformIndex(num_vars)));
      }
      terms.push_back(VarSet(std::move(ids)));
    }
    inst.dnfs.push_back(Dnf(terms));
  }

  inst.hidden = inst.pool.SampleValuation(rng);

  inst.plan.seed = 77'000 + seed;
  inst.plan.defaults.transient_failure_prob = 0.6 * rng.UniformReal();
  inst.plan.defaults.latency_nanos = rng.UniformInt(0, 2'000'000);
  if (rng.Bernoulli(0.3)) {
    inst.plan.per_peer["peer" + std::to_string(rng.UniformIndex(num_peers))]
        .permanently_unavailable = true;
    inst.transient_only = false;
  }
  return inst;
}

// The session-grade retry loop at formula level: transient faults retry with
// backoff on the virtual clock, dead peers lose the variable. 64 attempts at
// p <= 0.6 leave a miss probability of 0.6^64 ~ 5e-15 per variable, so
// transient-only instances must behave exactly like fault-free ones.
strategy::FallibleProbeFn RetryProbe(FaultyOracle& oracle,
                                     const RetryPolicy& policy, Clock& clock) {
  return [&oracle, &policy, &clock](VarId x) {
    size_t attempts = 0;
    while (true) {
      ProbeAttempt a = oracle.TryProbe(x);
      ++attempts;
      if (a.ok()) return FallibleProbe{ProbeOutcome::kAnswered, a.answer};
      if (a.fault == ProbeFault::kUnavailable ||
          (policy.max_attempts > 0 && attempts >= policy.max_attempts)) {
        return FallibleProbe{ProbeOutcome::kVariableLost, false};
      }
      clock.SleepFor(policy.BackoffNanos(attempts, x));
    }
  };
}

TEST(ResilienceProperty, ResolvedOutcomesAgreeWithTheFaultFreeRun) {
  size_t transient_only_instances = 0;
  size_t degraded_instances = 0;
  for (uint64_t seed = 0; seed < 200; ++seed) {
    SCOPED_TRACE("instance seed " + std::to_string(seed));
    Instance inst = MakeInstance(seed);

    // Fault-free ground truth.
    EvaluationState baseline_state(inst.dnfs, inst.pi);
    strategy::FreqStrategy baseline_strategy;
    strategy::ProbeRun baseline = strategy::RunToCompletion(
        baseline_state, baseline_strategy, inst.hidden);

    // The same hidden world behind the fault plan.
    VirtualClock clock;
    ValuationOracle backing(inst.hidden);
    FaultyOracle faulty(backing, inst.pool, inst.plan, &clock);
    RetryPolicy policy;
    policy.max_attempts = 64;
    policy.jitter = 0.25;
    policy.jitter_seed = seed;
    EvaluationState state(inst.dnfs, inst.pi);
    strategy::FreqStrategy freq;
    strategy::ResilientProbeRun run = strategy::RunToCompletionResilient(
        state, freq, RetryProbe(faulty, policy, clock));

    // Invariant 2: resolved formulas agree; faults only withhold.
    ASSERT_EQ(run.outcomes.size(), baseline.outcomes.size());
    size_t unresolved = 0;
    for (size_t i = 0; i < run.outcomes.size(); ++i) {
      if (run.outcomes[i] == Truth::kUnknown) {
        ++unresolved;
        continue;
      }
      EXPECT_EQ(run.outcomes[i], baseline.outcomes[i])
          << "formula " << i << " resolved to the wrong truth value";
    }

    // Invariant 3: transient-only instances are byte-identical.
    if (inst.transient_only) {
      ++transient_only_instances;
      EXPECT_EQ(unresolved, 0u);
      EXPECT_EQ(run.num_lost, 0u);
      EXPECT_EQ(run.num_probes, baseline.num_probes);
      EXPECT_EQ(run.trace, baseline.trace);
      EXPECT_EQ(run.outcomes, baseline.outcomes);
    } else if (unresolved > 0) {
      ++degraded_instances;
    }
  }
  // The generator must actually exercise both regimes.
  EXPECT_GT(transient_only_instances, 50u);
  EXPECT_GT(degraded_instances, 0u);
}

// The same property through the full session stack: ConsentManager::DecideAll
// with a RetryPolicy over the recruitment database. Fewer instances — each
// session parses, plans and evaluates SQL — but end to end.
TEST(ResilienceProperty, SessionVerdictsAgreeWithTheFaultFreeSession) {
  consent::SharedDatabase sdb = testing::RecruitmentDatabase();
  core::ConsentManager manager(sdb);
  size_t transient_only_sessions = 0;
  for (uint64_t seed = 0; seed < 40; ++seed) {
    SCOPED_TRACE("session seed " + std::to_string(seed));
    Rng rng(9000 + seed);
    PartialValuation hidden = sdb.pool().SampleValuation(rng);

    ValuationOracle plain(hidden);
    Result<core::SessionReport> fault_free =
        manager.DecideAll(testing::RecruitmentQuerySql(), plain);
    ASSERT_TRUE(fault_free.ok());

    FaultPlan plan;
    plan.seed = 31'000 + seed;
    plan.defaults.transient_failure_prob = 0.5 * rng.UniformReal();
    const bool kill_peer = rng.Bernoulli(0.25);
    if (kill_peer) plan.per_peer["Alice"].permanently_unavailable = true;

    VirtualClock clock;
    ValuationOracle backing(hidden);
    FaultyOracle faulty(backing, sdb.pool(), plan, &clock);
    core::SessionOptions options;
    options.retry = RetryPolicy{};
    options.retry->max_attempts = 48;
    options.clock = &clock;
    Result<core::SessionReport> resilient =
        manager.DecideAll(testing::RecruitmentQuerySql(), faulty, options);
    ASSERT_TRUE(resilient.ok());

    ASSERT_EQ(resilient.value().tuples.size(),
              fault_free.value().tuples.size());
    size_t unresolved = 0;
    for (size_t i = 0; i < resilient.value().tuples.size(); ++i) {
      const core::TupleConsent& tc = resilient.value().tuples[i];
      if (tc.verdict == core::TupleConsent::Verdict::kUnresolved) {
        ++unresolved;
        EXPECT_FALSE(tc.shareable);  // unresolved consent defaults to deny
        continue;
      }
      EXPECT_EQ(tc.shareable, fault_free.value().tuples[i].shareable);
    }
    EXPECT_EQ(unresolved, resilient.value().num_unresolved);

    if (!kill_peer) {
      ++transient_only_sessions;
      EXPECT_EQ(resilient.value().num_unresolved, 0u);
      EXPECT_EQ(resilient.value().num_probes, fault_free.value().num_probes);
    }
  }
  EXPECT_GT(transient_only_sessions, 10u);
}

}  // namespace
}  // namespace consentdb
