// GOOD: core (layer 7) may depend on util (layer 0) — includes only ever
// point down the module DAG.

#ifndef CONSENTDB_CORE_USES_UTIL_H_
#define CONSENTDB_CORE_USES_UTIL_H_

#include "consentdb/util/status.h"

#endif  // CONSENTDB_CORE_USES_UTIL_H_
