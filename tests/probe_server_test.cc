// ProbeServer semantics under a deterministic, fault-free in-memory
// transport: end-to-end reports byte-identical to the in-process pipeline,
// admission control and per-tenant quotas, deadline expiry (resilient and
// not), detach/resume with zero duplicate peer probes, completed-report
// re-delivery until the Ack, graceful drain, and the posix loopback path.
//
// The chaos grid (network_chaos_test.cc) layers randomized transport
// faults on top of the same harness; this file pins down the intended
// behaviour when the network itself is blameless.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "consentdb/consent/oracle.h"
#include "consentdb/core/consent_manager.h"
#include "consentdb/core/session_engine.h"
#include "consentdb/net/chaos_transport.h"
#include "consentdb/net/frame.h"
#include "consentdb/net/posix_transport.h"
#include "consentdb/net/probe_client.h"
#include "consentdb/net/probe_server.h"
#include "consentdb/net/protocol.h"
#include "consentdb/obs/metrics.h"
#include "consentdb/util/clock.h"
#include "gtest/gtest.h"
#include "test_fixtures.h"

namespace consentdb::net {
namespace {

using consent::ProbeOracle;
using consent::ValuationOracle;
using core::ConsentManager;
using core::EngineOptions;
using core::RetryPolicy;
using core::SessionEngine;
using core::SessionOptions;
using provenance::PartialValuation;
using provenance::VarId;

PartialValuation FullValuation(const consent::SharedDatabase& sdb,
                               bool value) {
  return PartialValuation::FromBools(
      std::vector<bool>(sdb.pool().size(), value));
}

// The report the blocking in-process pipeline produces for `sql` — a fresh
// manager, a fresh ledger, the same oracle answers. Client-observed reports
// must match this byte for byte.
std::string BaselineJson(const consent::SharedDatabase& sdb,
                         const std::string& sql, ProbeOracle& oracle,
                         std::optional<RetryPolicy> retry = std::nullopt) {
  ConsentManager manager(sdb);
  consent::ConsentLedger ledger;
  SessionOptions options;
  options.ledger = &ledger;
  options.retry = retry;
  Result<core::SessionReport> report = manager.DecideAll(sql, oracle, options);
  CONSENTDB_CHECK(report.ok(), report.status().ToString());
  return report->ToJson();
}

// A hand-driven client connection: sends protocol messages and decodes
// whatever the server has flushed so far. Lets tests observe individual
// ProbeRequests, withhold answers, and drop connections at exact points —
// things ProbeClient deliberately hides.
class RawConn {
 public:
  RawConn(Transport& transport, const std::string& address) {
    Result<std::unique_ptr<Connection>> conn = transport.Connect(address);
    CONSENTDB_CHECK(conn.ok(), conn.status().ToString());
    conn_ = std::move(*conn);
  }

  void Send(const Message& msg) {
    std::string out = EncodeMessage(msg);
    while (!out.empty()) {
      Result<size_t> n = conn_->Write(out);
      CONSENTDB_CHECK(n.ok(), n.status().ToString());
      CONSENTDB_CHECK(*n > 0, "fault-free transport refused bytes");
      out.erase(0, *n);
    }
  }

  void SendBytes(const std::string& bytes) {
    Result<size_t> n = conn_->Write(bytes);
    CONSENTDB_CHECK(n.ok(), n.status().ToString());
  }

  // Everything decodable that has arrived (may be empty).
  std::vector<Message> Drain() {
    std::vector<Message> out;
    while (true) {
      Result<std::string> data = conn_->Read();
      if (!data.ok() || data->empty()) break;
      parser_.Feed(*data);
    }
    Frame f;
    while (parser_.Next(&f) == FrameParser::Event::kFrame) {
      Result<Message> msg = DecodeMessage(f.type, f.body);
      CONSENTDB_CHECK(msg.ok(), msg.status().ToString());
      out.push_back(std::move(*msg));
    }
    return out;
  }

  void Close() { conn_->Close(); }

 private:
  std::unique_ptr<Connection> conn_;
  FrameParser parser_;
};

// Cooperative test harness: one engine, one fault-free in-memory transport,
// one server, all on a virtual clock.
struct Harness {
  explicit Harness(EngineOptions eopts = {}, ServerOptions sopts = {},
                   double probability = 0.5)
      : sdb(testing::RecruitmentDatabase(probability)),
        clock(1'000'000'000),
        transport(ChaosPlan{}, &clock) {
    eopts.num_threads = 1;
    engine = std::make_unique<SessionEngine>(sdb, eopts);
    sopts.clock = &clock;
    server = std::make_unique<ProbeServer>(*engine, transport, sopts);
    Status s = server->Listen("srv");
    CONSENTDB_CHECK(s.ok(), s.ToString());
  }

  // Polls until `pred` holds, advancing virtual time each sweep.
  template <typename Pred>
  bool PumpUntil(Pred pred, int max_sweeps = 200) {
    for (int i = 0; i < max_sweeps; ++i) {
      server->Poll();
      clock.Advance(100'000);  // 100us per sweep
      if (pred()) return true;
    }
    return false;
  }

  // Runs a raw-conn session to its terminal message, answering every
  // ProbeRequest from `oracle` and recording which variables were
  // requested. Returns the SessionReportMsg json or the ErrorMsg status.
  Result<std::string> DriveToCompletion(RawConn& conn, uint64_t sid,
                                        ProbeOracle& oracle,
                                        std::vector<VarId>* requested) {
    Result<std::string> outcome = Status::Unavailable("no terminal message");
    bool done = false;
    PumpUntil([&] {
      for (Message& msg : conn.Drain()) {
        if (const auto* probe = std::get_if<ProbeRequest>(&msg)) {
          if (requested != nullptr) {
            requested->push_back(static_cast<VarId>(probe->variable));
          }
          conn.Send(ProbeAnswer{
              sid, probe->variable,
              oracle.Probe(static_cast<VarId>(probe->variable)) ? uint8_t{1}
                                                                : uint8_t{0}});
        } else if (const auto* report = std::get_if<SessionReportMsg>(&msg)) {
          outcome = report->report_json;
          done = true;
        } else if (const auto* error = std::get_if<ErrorMsg>(&msg)) {
          outcome = StatusFromWire(error->code, error->message);
          done = true;
        }
      }
      return done;
    });
    CONSENTDB_CHECK(done, "session reached no terminal message");
    return outcome;
  }

  consent::SharedDatabase sdb;
  VirtualClock clock;
  ChaosTransport transport;
  std::unique_ptr<SessionEngine> engine;
  std::unique_ptr<ProbeServer> server;
};

OpenSession MakeOpen(uint64_t sid, const std::string& tenant,
                     const std::string& sql, int64_t deadline_nanos = 0) {
  OpenSession open;
  open.session_id = sid;
  open.tenant = tenant;
  open.sql = sql;
  open.deadline_nanos = deadline_nanos;
  return open;
}

TEST(ProbeServer, EndToEndReportMatchesInProcessBaseline) {
  Harness h;
  ValuationOracle server_side(FullValuation(h.sdb, true));

  RawConn conn(h.transport, "srv");
  conn.Send(MakeOpen(7, "acme", testing::RecruitmentQuerySql()));
  Result<std::string> json = h.DriveToCompletion(conn, 7, server_side, nullptr);
  ASSERT_TRUE(json.ok()) << json.status().ToString();

  ValuationOracle baseline_oracle(FullValuation(h.sdb, true));
  EXPECT_EQ(*json, BaselineJson(h.sdb, testing::RecruitmentQuerySql(),
                                baseline_oracle));

  ServerStats stats = h.server->stats();
  EXPECT_EQ(stats.opened_sessions, 1u);
  EXPECT_EQ(stats.completed_sessions, 1u);
  EXPECT_EQ(stats.inflight_sessions, 0u);
  EXPECT_EQ(stats.shed_sessions, 0u);
}

TEST(ProbeServer, ProbeClientDecidesAgainstServer) {
  Harness h;
  ValuationOracle oracle(FullValuation(h.sdb, false));

  ProbeClientOptions copts;
  copts.clock = &h.clock;
  copts.idle = [&h] {
    h.server->Poll();
    h.clock.Advance(100'000);
  };
  ProbeClient client(h.transport, "srv", &oracle, copts);
  Result<std::string> json = client.Decide(testing::RecruitmentQuerySql());
  ASSERT_TRUE(json.ok()) << json.status().ToString();

  ValuationOracle baseline_oracle(FullValuation(h.sdb, false));
  EXPECT_EQ(*json, BaselineJson(h.sdb, testing::RecruitmentQuerySql(),
                                baseline_oracle));
  EXPECT_EQ(client.stats().sessions, 1u);
  EXPECT_EQ(client.stats().reconnects, 0u);

  // The Ack released the completed session server-side.
  h.PumpUntil([] { return false; }, 3);
  EXPECT_EQ(h.server->stats().completed_sessions, 1u);
}

TEST(ProbeServer, AdmissionControlShedsBeyondInflightCap) {
  ServerOptions sopts;
  sopts.max_inflight_sessions = 1;
  sopts.retry_after_nanos = 250'000'000;
  Harness h({}, sopts);

  // Session 1 parks on its first ProbeRequest and pins the only slot.
  RawConn first(h.transport, "srv");
  first.Send(MakeOpen(1, "acme", testing::RecruitmentQuerySql()));
  ASSERT_TRUE(h.PumpUntil([&h] { return h.server->stats().inflight_sessions == 1; }));

  RawConn second(h.transport, "srv");
  second.Send(MakeOpen(2, "acme", testing::RecruitmentQuerySql()));
  std::optional<ErrorMsg> shed;
  ASSERT_TRUE(h.PumpUntil([&] {
    for (Message& msg : second.Drain()) {
      if (auto* error = std::get_if<ErrorMsg>(&msg)) shed = *error;
    }
    return shed.has_value();
  }));
  EXPECT_EQ(shed->session_id, 2u);
  EXPECT_EQ(shed->code, WireStatusCode(StatusCode::kUnavailable));
  EXPECT_EQ(shed->retry_after_nanos, 250'000'000);

  ServerStats stats = h.server->stats();
  EXPECT_EQ(stats.shed_sessions, 1u);
  EXPECT_EQ(stats.inflight_sessions, 1u);
  EXPECT_EQ(stats.opened_sessions, 1u);  // the shed open never counted
}

TEST(ProbeServer, TenantQuotaShedsWithResourceExhausted) {
  ServerOptions sopts;
  sopts.max_inflight_sessions = 8;
  sopts.max_sessions_per_tenant = 1;
  Harness h({}, sopts);

  RawConn first(h.transport, "srv");
  first.Send(MakeOpen(1, "greedy", testing::RecruitmentQuerySql()));
  ASSERT_TRUE(h.PumpUntil([&h] { return h.server->stats().inflight_sessions == 1; }));

  // Same tenant: over quota. Another tenant: admitted.
  RawConn second(h.transport, "srv");
  second.Send(MakeOpen(2, "greedy", testing::RecruitmentQuerySql()));
  RawConn third(h.transport, "srv");
  third.Send(MakeOpen(3, "modest", testing::RecruitmentQuerySql()));

  std::optional<ErrorMsg> quota;
  ASSERT_TRUE(h.PumpUntil([&] {
    for (Message& msg : second.Drain()) {
      if (auto* error = std::get_if<ErrorMsg>(&msg)) quota = *error;
    }
    return quota.has_value() && h.server->stats().inflight_sessions == 2;
  }));
  EXPECT_EQ(quota->code, WireStatusCode(StatusCode::kResourceExhausted));
  EXPECT_EQ(h.server->stats().shed_sessions, 1u);
}

TEST(ProbeServer, NonResilientSessionFailsAtDeadline) {
  Harness h;  // engine without a retry policy: sessions are non-resilient
  RawConn conn(h.transport, "srv");
  conn.Send(MakeOpen(5, "acme", testing::RecruitmentQuerySql(),
                     /*deadline_nanos=*/5'000'000));

  // Let the first ProbeRequest arrive, then never answer it.
  std::optional<ErrorMsg> error;
  ASSERT_TRUE(h.PumpUntil([&] {
    for (Message& msg : conn.Drain()) {
      if (auto* e = std::get_if<ErrorMsg>(&msg)) error = *e;
    }
    return error.has_value();
  }));
  EXPECT_EQ(error->code, WireStatusCode(StatusCode::kDeadlineExceeded));
  ServerStats stats = h.server->stats();
  EXPECT_EQ(stats.expired_sessions, 1u);
  EXPECT_EQ(stats.inflight_sessions, 0u);
  // A failed session is not a completed one.
  EXPECT_EQ(stats.completed_sessions, 0u);
}

TEST(ProbeServer, ResilientSessionExpiresToUnresolvedReport) {
  EngineOptions eopts;
  eopts.session.retry = RetryPolicy{};  // resilient sessions
  Harness h(eopts);
  RawConn conn(h.transport, "srv");
  conn.Send(MakeOpen(6, "acme", testing::RecruitmentQuerySql(),
                     /*deadline_nanos=*/5'000'000));

  std::optional<std::string> json;
  ASSERT_TRUE(h.PumpUntil([&] {
    for (Message& msg : conn.Drain()) {
      if (auto* report = std::get_if<SessionReportMsg>(&msg)) {
        json = report->report_json;
      }
    }
    return json.has_value();
  }));
  // The session expired rather than failed: verdicts degrade to unresolved.
  EXPECT_NE(json->find("num_unresolved"), std::string::npos) << *json;
  EXPECT_NE(json->find("\"unresolved\""), std::string::npos) << *json;
  EXPECT_EQ(h.server->stats().expired_sessions, 1u);
  EXPECT_EQ(h.server->stats().completed_sessions, 1u);
}

TEST(ProbeServer, ResumeAfterDropReprobesNothing) {
  Harness h;
  ValuationOracle oracle(FullValuation(h.sdb, true));
  const uint64_t sid = 9;

  // Answer exactly one probe on the first connection, then drop it.
  RawConn first(h.transport, "srv");
  first.Send(MakeOpen(sid, "acme", testing::RecruitmentQuerySql()));
  std::optional<VarId> answered_var;
  ASSERT_TRUE(h.PumpUntil([&] {
    for (Message& msg : first.Drain()) {
      if (auto* probe = std::get_if<ProbeRequest>(&msg)) {
        if (!answered_var.has_value()) {
          answered_var = static_cast<VarId>(probe->variable);
          first.Send(ProbeAnswer{sid, probe->variable,
                                 oracle.Probe(*answered_var) ? uint8_t{1}
                                                             : uint8_t{0}});
        }
      }
    }
    // Wait until the *second* ProbeRequest is outstanding, so the drop
    // leaves a parked session with an unanswered probe in flight.
    ServerStats s = h.server->stats();
    return answered_var.has_value() && s.inflight_sessions == 1;
  }));
  first.Close();
  ASSERT_TRUE(h.PumpUntil([&h] { return h.server->stats().connections == 0; }));
  // The session survived the drop, detached.
  EXPECT_EQ(h.server->stats().inflight_sessions, 1u);

  // Resume from a new connection: same id, same spec.
  RawConn second(h.transport, "srv");
  second.Send(MakeOpen(sid, "acme", testing::RecruitmentQuerySql()));
  std::vector<VarId> requested;
  Result<std::string> json =
      h.DriveToCompletion(second, sid, oracle, &requested);
  ASSERT_TRUE(json.ok()) << json.status().ToString();

  // The variable answered before the drop was never re-requested: the
  // ledger replayed it. Nothing was requested twice at all.
  std::set<VarId> unique(requested.begin(), requested.end());
  EXPECT_EQ(unique.size(), requested.size());
  EXPECT_EQ(unique.count(*answered_var), 0u);
  EXPECT_EQ(h.server->stats().resumed_sessions, 1u);

  // And the client-observed report is still byte-identical to in-process.
  ValuationOracle baseline_oracle(FullValuation(h.sdb, true));
  EXPECT_EQ(*json, BaselineJson(h.sdb, testing::RecruitmentQuerySql(),
                                baseline_oracle));
}

TEST(ProbeServer, MismatchedResumeRejected) {
  Harness h;
  RawConn first(h.transport, "srv");
  first.Send(MakeOpen(4, "acme", testing::RecruitmentQuerySql()));
  ASSERT_TRUE(h.PumpUntil([&h] { return h.server->stats().inflight_sessions == 1; }));

  RawConn second(h.transport, "srv");
  second.Send(MakeOpen(4, "acme", "SELECT name FROM Companies"));
  std::optional<ErrorMsg> error;
  ASSERT_TRUE(h.PumpUntil([&] {
    for (Message& msg : second.Drain()) {
      if (auto* e = std::get_if<ErrorMsg>(&msg)) error = *e;
    }
    return error.has_value();
  }));
  EXPECT_EQ(error->code, WireStatusCode(StatusCode::kFailedPrecondition));
  // The original session is untouched.
  EXPECT_EQ(h.server->stats().inflight_sessions, 1u);
}

TEST(ProbeServer, CompletedReportRedeliveredUntilAck) {
  Harness h;
  ValuationOracle oracle(FullValuation(h.sdb, true));
  const uint64_t sid = 11;

  RawConn first(h.transport, "srv");
  first.Send(MakeOpen(sid, "acme", testing::RecruitmentQuerySql()));
  Result<std::string> json1 = h.DriveToCompletion(first, sid, oracle, nullptr);
  ASSERT_TRUE(json1.ok());
  first.Close();  // no Ack: the server must retain the report
  ASSERT_TRUE(h.PumpUntil([&h] { return h.server->stats().connections == 0; }));

  // Re-open re-delivers the stored report verbatim, without re-running.
  RawConn second(h.transport, "srv");
  second.Send(MakeOpen(sid, "acme", testing::RecruitmentQuerySql()));
  std::optional<std::string> json2;
  ASSERT_TRUE(h.PumpUntil([&] {
    for (Message& msg : second.Drain()) {
      if (auto* report = std::get_if<SessionReportMsg>(&msg)) {
        json2 = report->report_json;
      }
    }
    return json2.has_value();
  }));
  EXPECT_EQ(*json1, *json2);
  EXPECT_EQ(h.server->stats().opened_sessions, 1u);  // never re-ran

  // After the Ack the session is gone: the same id now opens fresh.
  second.Send(AckMsg{sid});
  ASSERT_TRUE(h.PumpUntil(
      [&h] { return h.server->stats().opened_sessions == 1; }, 5));
  second.Send(MakeOpen(sid, "acme", testing::RecruitmentQuerySql()));
  ASSERT_TRUE(
      h.PumpUntil([&h] { return h.server->stats().opened_sessions == 2; }));
}

TEST(ProbeServer, GracefulDrainFinishesInflightAndShedsNew) {
  Harness h;
  ValuationOracle oracle(FullValuation(h.sdb, true));
  const uint64_t sid = 21;

  RawConn conn(h.transport, "srv");
  conn.Send(MakeOpen(sid, "acme", testing::RecruitmentQuerySql()));
  ASSERT_TRUE(h.PumpUntil([&h] { return h.server->stats().inflight_sessions == 1; }));
  // The parked session is checkpointable while it runs.
  ASSERT_EQ(h.engine->pending_sessions().size(), 1u);
  EXPECT_EQ(h.engine->pending_sessions()[0].sql,
            testing::RecruitmentQuerySql());

  h.server->BeginDrain();
  EXPECT_TRUE(h.server->stats().draining);

  // New sessions are refused...
  RawConn late(h.transport, "srv");
  late.Send(MakeOpen(22, "acme", testing::RecruitmentQuerySql()));
  std::optional<ErrorMsg> shed;
  ASSERT_TRUE(h.PumpUntil([&] {
    for (Message& msg : late.Drain()) {
      if (auto* e = std::get_if<ErrorMsg>(&msg)) shed = *e;
    }
    return shed.has_value();
  }));
  EXPECT_EQ(shed->code, WireStatusCode(StatusCode::kUnavailable));

  // ...while the in-flight one runs to completion and delivers its report.
  Result<std::string> json = h.DriveToCompletion(conn, sid, oracle, nullptr);
  ASSERT_TRUE(json.ok()) << json.status().ToString();

  // No leaked checkpoint spec, and every network answer reached the
  // journal-backed ledger.
  EXPECT_TRUE(h.engine->pending_sessions().empty());
  EXPECT_GT(h.engine->ledger().size(), 0u);
  EXPECT_EQ(h.engine->ledger().size(), oracle.probe_count());
}

TEST(ProbeServer, ShutdownParksUnfinishedSessionsForCheckpoint) {
  Harness h;
  RawConn conn(h.transport, "srv");
  conn.Send(MakeOpen(31, "acme", testing::RecruitmentQuerySql()));
  ASSERT_TRUE(h.PumpUntil([&h] { return h.server->stats().inflight_sessions == 1; }));

  h.server->Shutdown(/*drain_deadline_nanos=*/2'000'000);

  // The unanswered session stays registered with the engine: a checkpoint
  // taken after shutdown captures its spec for resume.
  std::vector<core::CheckpointedSession> pending = h.engine->pending_sessions();
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending[0].sql, testing::RecruitmentQuerySql());
  EXPECT_FALSE(pending[0].single_csv.has_value());
  EXPECT_EQ(h.server->stats().connections, 0u);
}

TEST(ProbeServer, OverloadStatsAndMetricsReconcile) {
  obs::MetricsRegistry metrics;
  EngineOptions eopts;
  eopts.session.metrics = &metrics;
  ServerOptions sopts;
  sopts.max_inflight_sessions = 2;
  Harness h(eopts, sopts);

  std::vector<std::unique_ptr<RawConn>> conns;
  for (uint64_t sid = 1; sid <= 5; ++sid) {
    conns.push_back(std::make_unique<RawConn>(h.transport, "srv"));
    conns.back()->Send(MakeOpen(sid, "acme", testing::RecruitmentQuerySql()));
    h.PumpUntil([] { return true; }, 2);
  }
  ASSERT_TRUE(h.PumpUntil([&] {
    for (auto& conn : conns) conn->Drain();
    return h.server->stats().shed_sessions == 3;
  }));

  ServerStats stats = h.server->stats();
  EXPECT_EQ(stats.inflight_sessions, 2u);
  EXPECT_EQ(stats.opened_sessions, 2u);
  EXPECT_EQ(stats.shed_sessions, 3u);
  // The obs registry tells the same story as the struct.
  EXPECT_EQ(metrics.GetCounter("server.sessions")->value(), 2u);
  EXPECT_EQ(metrics.GetCounter("server.shed")->value(), 3u);
  EXPECT_EQ(metrics.GetGauge("server.inflight")->value(), 2);
  EXPECT_EQ(metrics.GetGauge("server.connections")->value(), 5);
}

TEST(ProbeServer, CorruptBytesDropTheConnection) {
  Harness h;
  RawConn conn(h.transport, "srv");
  conn.SendBytes("garbage that is certainly not a frame");
  ASSERT_TRUE(h.PumpUntil([&h] {
    return h.server->stats().corrupt_frames == 1 &&
           h.server->stats().connections == 0;
  }));
}

TEST(ProbeServer, ClientExhaustsReconnectsWhenServerUnreachable) {
  VirtualClock clock(0);
  ChaosPlan plan;
  plan.connect_fail_prob = 1.0;
  ChaosTransport transport(plan, &clock);

  consent::SharedDatabase sdb = testing::RecruitmentDatabase();
  ValuationOracle oracle(FullValuation(sdb, true));
  ProbeClientOptions copts;
  copts.clock = &clock;
  copts.reconnect.max_attempts = 4;
  ProbeClient client(transport, "nowhere", &oracle, copts);

  Result<std::string> json = client.Decide(testing::RecruitmentQuerySql());
  ASSERT_FALSE(json.ok());
  EXPECT_TRUE(json.status().IsUnavailable()) << json.status().ToString();
  EXPECT_EQ(client.stats().reconnects, 3u);  // backoffs between 4 attempts
  EXPECT_EQ(oracle.probe_count(), 0u);
}

TEST(ProbeServer, PosixLoopbackEndToEnd) {
  consent::SharedDatabase sdb = testing::RecruitmentDatabase();
  EngineOptions eopts;
  eopts.num_threads = 1;
  SessionEngine engine(sdb, eopts);
  PosixTransport posix;
  ProbeServer server(engine, posix);
  ASSERT_TRUE(server.Listen("0").ok());
  server.Start();

  ValuationOracle oracle(FullValuation(sdb, true));
  ProbeClient client(posix, server.address(), &oracle);
  Result<std::string> json = client.Decide(testing::RecruitmentQuerySql());
  ASSERT_TRUE(json.ok()) << json.status().ToString();

  ValuationOracle baseline_oracle(FullValuation(sdb, true));
  EXPECT_EQ(*json, BaselineJson(sdb, testing::RecruitmentQuerySql(),
                                baseline_oracle));
  server.Shutdown(/*drain_deadline_nanos=*/1'000'000'000);
}

}  // namespace
}  // namespace consentdb::net
