// Flight recorder: a fixed-size lock-free ring of the most recent spans and
// instant events, kept per engine so the last moments before a crash (or
// the run-up to a checkpoint) can be dumped for post-mortem analysis.
//
// Writers never block and never allocate: a slot is claimed with one atomic
// fetch_add on the head ticket and filled through per-slot atomic words
// guarded by a seqlock-style sequence number (odd while writing, published
// with a release store). Readers validate the sequence before and after
// copying a slot and skip slots that were overwritten mid-read, so a dump
// taken while probes are still flying yields only intact records —
// TSAN-clean because every shared word is a std::atomic.
//
// Names are stored as raw `const char*` (static-duration strings only, see
// obs/names.h) — the ring holds eight words per slot and copies nothing.
//
// If the ring wraps during one write (capacity writers claim the same slot
// concurrently), a reader may attribute one writer's fields to another's
// ticket; with the default capacity of 1024 this needs ~1024 simultaneous
// in-flight writes and is acceptable for a diagnostic ring.

#ifndef CONSENTDB_OBS_FLIGHT_RECORDER_H_
#define CONSENTDB_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "consentdb/obs/span.h"

namespace consentdb {
class JsonWriter;
}  // namespace consentdb

namespace consentdb::obs {

class FlightRecorder {
 public:
  // `capacity` is rounded up to a power of two (minimum 8).
  explicit FlightRecorder(size_t capacity = 1024);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Retains the last `capacity()` of these; older entries are overwritten.
  void RecordSpan(const SpanRecord& rec);
  // An instant event (zero duration) stamped with the current time.
  // `name` must be a static-duration string.
  void RecordEvent(const char* name);
  void RecordEvent(const char* name, const char* arg_name, uint64_t arg_value);

  size_t capacity() const { return capacity_; }
  // Total records ever started (including any still being written;
  // >= capacity() once the ring has wrapped).
  uint64_t num_recorded() const {
    return head_.load(std::memory_order_acquire);
  }

  // The intact records currently in the ring, oldest first.
  std::vector<SpanRecord> Snapshot() const;

  // {"flight":{"capacity":...,"recorded":...,"events":[{name,start_ns,
  //  end_ns,id,parent,tid,...},...]}} — oldest first.
  void WriteJson(JsonWriter& w) const;
  std::string DumpJson() const;
  // One aligned line per record for the shell's \flight command.
  std::string DumpText() const;

 private:
  // Seqlock slot: seq is 2*ticket+1 while writing, 2*ticket+2 when stable
  // (0 = never written). All fields are atomic words so concurrent
  // write/read is a race-free torn read, detected by the seq check.
  struct Slot {
    std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> name{0};      // const char* bits
    std::atomic<uint64_t> id{0};
    std::atomic<uint64_t> parent{0};
    std::atomic<int64_t> start{0};
    std::atomic<int64_t> end{0};
    std::atomic<uint64_t> tid{0};
    std::atomic<uint64_t> arg_name{0};  // const char* bits, 0 = none
    std::atomic<uint64_t> arg{0};
  };

  void Write(const SpanRecord& rec);

  size_t capacity_;  // power of two
  size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> head_{0};  // next ticket
};

}  // namespace consentdb::obs

#endif  // CONSENTDB_OBS_FLIGHT_RECORDER_H_
