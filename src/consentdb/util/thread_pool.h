// A fixed-size worker pool over a FIFO task queue — the execution substrate
// of the concurrent session engine (core/session_engine.h).
//
// Semantics kept deliberately small:
//   * Submit() enqueues a task and never blocks (the queue is unbounded;
//     callers that need backpressure read queue_depth()).
//   * Tasks run in submission order, up to `num_threads` at a time.
//   * The destructor drains the queue: every task submitted before
//     destruction runs to completion before the workers join.
//   * Tasks must not throw (the library is exception-free; errors travel
//     through Status/Result inside the task's closure).
//
// Lock discipline is annotated for -Wthread-safety (thread_annotations.h):
// mu_ guards the queue and the stop flag; the wait loop holds mu_ across
// its guarded reads and releases it around task execution.

#ifndef CONSENTDB_UTIL_THREAD_POOL_H_
#define CONSENTDB_UTIL_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "consentdb/util/check.h"
#include "consentdb/util/thread_annotations.h"

namespace consentdb {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads) {
    CONSENTDB_CHECK(num_threads >= 1, "thread pool needs at least one thread");
    workers_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      MutexLock lock(mu_);
      stopping_ = true;
    }
    cv_.NotifyAll();
    for (std::thread& w : workers_) w.join();
  }

  void Submit(std::function<void()> task) EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      CONSENTDB_CHECK(!stopping_, "Submit on a stopping thread pool");
      queue_.push_back(std::move(task));
    }
    cv_.NotifyOne();
  }

  size_t num_threads() const { return workers_.size(); }

  // Tasks submitted but not yet picked up by a worker.
  size_t queue_depth() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return queue_.size();
  }

 private:
  void WorkerLoop() EXCLUDES(mu_) {
    while (true) {
      std::function<void()> task;
      {
        MutexLock lock(mu_);
        while (!stopping_ && queue_.empty()) cv_.Wait(mu_);
        if (queue_.empty()) return;  // stopping_ and drained
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
    }
  }

  mutable Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  bool stopping_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace consentdb

#endif  // CONSENTDB_UTIL_THREAD_POOL_H_
