// Control snippet: the sanctioned ways to consume (or deliberately drop) a
// Status/Result. Must compile under the exact flags that reject the _bad
// variants.

#include "consentdb/util/check.h"
#include "consentdb/util/result.h"
#include "consentdb/util/status.h"

using consentdb::Result;
using consentdb::Status;

Status MightFail() { return Status::Internal("boom"); }
Result<int> MightCompute() { return Status::Internal("boom"); }

int main() {
  Status s = MightFail();                    // consumed
  CONSENTDB_IGNORE_STATUS(MightFail());      // deliberately dropped
  CONSENTDB_IGNORE_STATUS(MightCompute());
  Result<int> r = MightCompute();
  return s.ok() && r.ok() ? 0 : 1;
}
