#include "consentdb/net/posix_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace consentdb::net {
namespace {

Status Errno(const std::string& what) {
  return Status::Unavailable(what + ": " + std::strerror(errno));
}

// "host:port" or bare "port" (-> 127.0.0.1). Returns false on parse error.
bool ParseAddress(const std::string& address, sockaddr_in* out) {
  std::string host = "127.0.0.1";
  std::string port = address;
  const size_t colon = address.rfind(':');
  if (colon != std::string::npos) {
    host = address.substr(0, colon);
    port = address.substr(colon + 1);
  }
  if (port.empty() || port.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  const unsigned long p = std::stoul(port);
  if (p > 65535) return false;
  std::memset(out, 0, sizeof(*out));
  out->sin_family = AF_INET;
  out->sin_port = htons(static_cast<uint16_t>(p));
  if (inet_pton(AF_INET, host.c_str(), &out->sin_addr) == 1) return true;
  // Not a numeric IPv4 address — resolve it ("localhost", a DNS name).
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* found = nullptr;
  if (getaddrinfo(host.c_str(), nullptr, &hints, &found) != 0 ||
      found == nullptr) {
    return false;
  }
  out->sin_addr = reinterpret_cast<sockaddr_in*>(found->ai_addr)->sin_addr;
  freeaddrinfo(found);
  return true;
}

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

class PosixConnection : public Connection {
 public:
  explicit PosixConnection(int fd) : fd_(fd) {}
  ~PosixConnection() override { Close(); }

  Result<size_t> Write(std::string_view data) override {
    if (fd_ < 0) return Status::Unavailable("connection closed");
    const ssize_t n = send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EAGAIN || errno == EWOULDBLOCK) return size_t{0};
    return Errno("send");
  }

  Result<std::string> Read() override {
    if (fd_ < 0) return Status::Unavailable("connection closed");
    std::string out;
    char buf[65536];
    while (true) {
      const ssize_t n = recv(fd_, buf, sizeof(buf), 0);
      if (n > 0) {
        out.append(buf, static_cast<size_t>(n));
        continue;
      }
      if (n == 0) {  // orderly shutdown by the peer
        eof_ = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return Errno("recv");
    }
    if (out.empty() && eof_) {
      return Status::Unavailable("connection closed by peer");
    }
    return out;
  }

  void Close() override {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_;
  bool eof_ = false;
};

class PosixListener : public Listener {
 public:
  PosixListener(int fd, std::string address)
      : fd_(fd), address_(std::move(address)) {}
  ~PosixListener() override { Close(); }

  Result<std::unique_ptr<Connection>> Accept() override {
    if (fd_ < 0) return Status::Unavailable("listener closed");
    const int conn = accept(fd_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return std::unique_ptr<Connection>();
      }
      return Errno("accept");
    }
    if (!SetNonBlocking(conn)) {
      ::close(conn);
      return Errno("fcntl");
    }
    const int one = 1;
    setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return std::unique_ptr<Connection>(std::make_unique<PosixConnection>(conn));
  }

  std::string address() const override { return address_; }

  void Close() override {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_;
  const std::string address_;
};

}  // namespace

Result<std::unique_ptr<Listener>> PosixTransport::Listen(
    const std::string& address) {
  sockaddr_in addr;
  if (!ParseAddress(address, &addr)) {
    return Status::InvalidArgument("bad address: " + address);
  }
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status st = Errno("bind");
    ::close(fd);
    return st;
  }
  if (listen(fd, 128) != 0 || !SetNonBlocking(fd)) {
    const Status st = Errno("listen");
    ::close(fd);
    return st;
  }
  // Report the port actually bound (meaningful when the caller asked for 0).
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const Status st = Errno("getsockname");
    ::close(fd);
    return st;
  }
  char host[INET_ADDRSTRLEN] = {0};
  inet_ntop(AF_INET, &addr.sin_addr, host, sizeof(host));
  const std::string bound =
      std::string(host) + ":" + std::to_string(ntohs(addr.sin_port));
  return std::unique_ptr<Listener>(std::make_unique<PosixListener>(fd, bound));
}

Result<std::unique_ptr<Connection>> PosixTransport::Connect(
    const std::string& address) {
  sockaddr_in addr;
  if (!ParseAddress(address, &addr)) {
    return Status::InvalidArgument("bad address: " + address);
  }
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  // Blocking connect (loopback handshakes are instantaneous), non-blocking
  // I/O afterwards per the Transport contract.
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status st = Errno("connect");
    ::close(fd);
    return st;
  }
  if (!SetNonBlocking(fd)) {
    const Status st = Errno("fcntl");
    ::close(fd);
    return st;
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<Connection>(std::make_unique<PosixConnection>(fd));
}

}  // namespace consentdb::net
