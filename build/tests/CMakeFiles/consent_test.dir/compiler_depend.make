# Empty compiler generated dependencies file for consent_test.
# This may be replaced when dependencies are built.
