// util/io: the POSIX Env, the CRC32 implementation, and — most importantly —
// the CrashingEnv, whose durability semantics (page cache vs platter, torn
// writes, dead-process handles) the whole crash-recovery harness stands on.

#include "consentdb/util/io.h"

#include <memory>
#include <string>
#include <utility>

#include "consentdb/util/crc32.h"
#include "gtest/gtest.h"

namespace consentdb {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "consentdb_io_" + name;
}

TEST(Crc32Test, CheckValue) {
  // The CRC-32/ISO-HDLC check value: crc32("123456789").
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
}

TEST(Crc32Test, EmptyAndIncremental) {
  EXPECT_EQ(Crc32(""), 0u);
  // Extending in pieces equals hashing the concatenation.
  uint32_t piecewise = ExtendCrc32(ExtendCrc32(0, "1234"), "56789");
  EXPECT_EQ(piecewise, Crc32("123456789"));
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::string data = "consent answer payload";
  uint32_t clean = Crc32(data);
  for (size_t i = 0; i < data.size() * 8; ++i) {
    std::string mutated = data;
    mutated[i / 8] = static_cast<char>(mutated[i / 8] ^ (1 << (i % 8)));
    EXPECT_NE(Crc32(mutated), clean) << "bit " << i;
  }
}

TEST(PosixEnvTest, WriteReadRoundtrip) {
  Env* env = Env::Default();
  const std::string path = TempPath("roundtrip");
  ASSERT_TRUE(env->WriteStringToFile(path, "hello", true).ok());
  Result<std::string> read = env->ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), "hello");
  ASSERT_TRUE(env->WriteStringToFile(path, std::string("a\0b", 3), false).ok());
  read = env->ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), std::string("a\0b", 3));  // binary-safe
  EXPECT_TRUE(env->FileExists(path));
  ASSERT_TRUE(env->RemoveFile(path).ok());
  EXPECT_FALSE(env->FileExists(path));
}

TEST(PosixEnvTest, MissingFileIsNotFound) {
  Env* env = Env::Default();
  const std::string path = TempPath("never_created");
  EXPECT_EQ(env->ReadFileToString(path).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(env->RemoveFile(path).code(), StatusCode::kNotFound);
}

TEST(PosixEnvTest, AppendModeAndRename) {
  Env* env = Env::Default();
  const std::string a = TempPath("rename_a");
  const std::string b = TempPath("rename_b");
  ASSERT_TRUE(env->WriteStringToFile(a, "one", false).ok());
  {
    Result<std::unique_ptr<WritableFile>> file = env->NewWritableFile(a, true);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file.value()->Append("+two").ok());
    ASSERT_TRUE(file.value()->Sync().ok());
    ASSERT_TRUE(file.value()->Close().ok());
  }
  ASSERT_TRUE(env->RenameFile(a, b).ok());
  EXPECT_FALSE(env->FileExists(a));
  Result<std::string> read = env->ReadFileToString(b);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), "one+two");
  ASSERT_TRUE(env->RemoveFile(b).ok());
}

// --- CrashingEnv ------------------------------------------------------------

TEST(CrashingEnvTest, ActsLikeAFilesystemWithoutAPlan) {
  CrashingEnv env;
  ASSERT_TRUE(env.WriteStringToFile("f", "abc", false).ok());
  EXPECT_TRUE(env.FileExists("f"));
  Result<std::string> read = env.ReadFileToString("f");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), "abc");
  ASSERT_TRUE(env.RenameFile("f", "g").ok());
  EXPECT_FALSE(env.FileExists("f"));
  EXPECT_EQ(env.ReadFileToString("missing").status().code(),
            StatusCode::kNotFound);
}

TEST(CrashingEnvTest, KillAtAppendKeepsPageCache) {
  CrashingEnv env;
  Result<std::unique_ptr<WritableFile>> file = env.NewWritableFile("f", false);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file.value()->Append("one").ok());  // unsynced, in page cache

  CrashPlan plan;
  plan.crash_at_append = 1;  // counts restart at set_plan
  env.set_plan(plan);
  EXPECT_THROW((void)file.value()->Append("two"), CrashInjected);
  EXPECT_TRUE(env.crashed());
  // Dead process: every further op throws until Restart.
  EXPECT_THROW((void)env.ReadFileToString("f"), CrashInjected);
  EXPECT_THROW((void)env.FileExists("f"), CrashInjected);

  env.Restart();
  // A kill keeps the page cache: "one" survives, none of "two" does.
  Result<std::string> read = env.ReadFileToString("f");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), "one");
}

TEST(CrashingEnvTest, TornBytesOfFatalAppendSurviveAKill) {
  CrashingEnv env;
  CrashPlan plan;
  plan.crash_at_append = 2;
  plan.torn_bytes = 2;
  env.set_plan(plan);
  Result<std::unique_ptr<WritableFile>> file = env.NewWritableFile("f", false);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file.value()->Append("head,").ok());
  EXPECT_THROW((void)file.value()->Append("tail").ok(), CrashInjected);
  env.Restart();
  Result<std::string> read = env.ReadFileToString("f");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), "head,ta");  // prefix + 2 torn bytes
}

TEST(CrashingEnvTest, PowerLossDropsUnsyncedData) {
  CrashingEnv env;
  Result<std::unique_ptr<WritableFile>> file = env.NewWritableFile("f", false);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file.value()->Append("durable").ok());
  ASSERT_TRUE(file.value()->Sync().ok());
  ASSERT_TRUE(file.value()->Append("-volatile").ok());

  CrashPlan plan;
  plan.crash_at_append = 1;
  plan.power_loss = true;
  env.set_plan(plan);
  EXPECT_THROW((void)file.value()->Append("x"), CrashInjected);
  env.Restart();
  // Power cut: only the fsynced prefix reaches the platter.
  Result<std::string> read = env.ReadFileToString("f");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), "durable");
}

TEST(CrashingEnvTest, PowerLossTornBytesReachThePlatter) {
  CrashingEnv env;
  Result<std::unique_ptr<WritableFile>> file = env.NewWritableFile("f", false);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file.value()->Append("durable").ok());
  ASSERT_TRUE(file.value()->Sync().ok());
  ASSERT_TRUE(file.value()->Append("XYZ").ok());

  CrashPlan plan;
  plan.crash_at_sync = 1;
  plan.power_loss = true;
  plan.torn_bytes = 1;
  env.set_plan(plan);
  EXPECT_THROW((void)file.value()->Sync(), CrashInjected);
  env.Restart();
  Result<std::string> read = env.ReadFileToString("f");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), "durableX");  // synced prefix + 1 torn byte
}

TEST(CrashingEnvTest, CrashAtSyncDropsTheSync) {
  CrashingEnv env;
  CrashPlan plan;
  plan.crash_at_sync = 1;
  plan.power_loss = true;
  env.set_plan(plan);
  Result<std::unique_ptr<WritableFile>> file = env.NewWritableFile("f", false);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file.value()->Append("data").ok());
  EXPECT_THROW((void)file.value()->Sync(), CrashInjected);
  env.Restart();
  // The fatal sync must NOT have made "data" durable.
  Result<std::string> read = env.ReadFileToString("f");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), "");
}

TEST(CrashingEnvTest, StaleHandlesFailAfterRestart) {
  CrashingEnv env;
  Result<std::unique_ptr<WritableFile>> file = env.NewWritableFile("f", false);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file.value()->Append("a").ok());
  env.Restart();  // clean restart, no crash
  // The pre-restart handle belongs to the dead process image.
  EXPECT_FALSE(file.value()->Append("b").ok());
  Result<std::string> read = env.ReadFileToString("f");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), "a");
}

TEST(CrashingEnvTest, CountersAndRearm) {
  CrashingEnv env;
  Result<std::unique_ptr<WritableFile>> file = env.NewWritableFile("f", false);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file.value()->Append("a").ok());
  ASSERT_TRUE(file.value()->Append("b").ok());
  ASSERT_TRUE(file.value()->Sync().ok());
  EXPECT_EQ(env.num_appends(), 2u);
  EXPECT_EQ(env.num_syncs(), 1u);
  CrashPlan plan;
  plan.crash_at_append = 1;
  env.set_plan(plan);  // counters reset; next append is the fatal one
  EXPECT_EQ(env.num_appends(), 0u);
  EXPECT_THROW((void)file.value()->Append("c"), CrashInjected);
}

}  // namespace
}  // namespace consentdb
