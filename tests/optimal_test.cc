#include <gtest/gtest.h>

#include "consentdb/strategy/expected_cost.h"
#include "consentdb/strategy/optimal.h"
#include "consentdb/util/rng.h"

namespace consentdb::strategy {
namespace {

using provenance::PartialValuation;
using provenance::VarSet;

std::vector<double> UniformPi(size_t n, double p = 0.5) {
  return std::vector<double>(n, p);
}

StrategyFactory MakeOptimalFactory(std::vector<Dnf> dnfs,
                                   std::vector<double> pi) {
  return [dnfs = std::move(dnfs), pi = std::move(pi)]() {
    return std::make_unique<OptimalStrategy>(dnfs, pi);
  };
}

// --- OptimalDp on hand-checkable instances -----------------------------------------

TEST(OptimalDpTest, SingleVariable) {
  EXPECT_DOUBLE_EQ(OptimalExpectedCost({Dnf({VarSet{0}})}, {0.5}), 1.0);
}

TEST(OptimalDpTest, ConjunctionEqualProbabilities) {
  // x0 ∧ x1, p = 0.5: probe either; 1 + 0.5 = 1.5.
  EXPECT_DOUBLE_EQ(OptimalExpectedCost({Dnf({VarSet{0, 1}})}, UniformPi(2)),
                   1.5);
}

TEST(OptimalDpTest, ConjunctionSkewedProbabilities) {
  // x0 ∧ x1 with p0 = 0.9, p1 = 0.1: probing x1 first costs 1 + 0.1;
  // probing x0 first costs 1 + 0.9. Optimal = 1.1.
  EXPECT_DOUBLE_EQ(OptimalExpectedCost({Dnf({VarSet{0, 1}})}, {0.9, 0.1}),
                   1.1);
}

TEST(OptimalDpTest, DisjunctionSkewedProbabilities) {
  // x0 ∨ x1 with p0 = 0.9, p1 = 0.1: probe x0 first: 1 + 0.1*1 = 1.1.
  EXPECT_DOUBLE_EQ(
      OptimalExpectedCost({Dnf({VarSet{0}, VarSet{1}})}, {0.9, 0.1}), 1.1);
}

TEST(OptimalDpTest, SharedVariableHelps) {
  // (x0∧x1) ∨ (x0∧x2): probing x0 first may decide everything (x0=False).
  double cost = OptimalExpectedCost({Dnf({VarSet{0, 1}, VarSet{0, 2}})},
                                    UniformPi(3));
  // x0=False (p .5): done in 1. Otherwise: x1 ∨ x2 remains: cost 1.5.
  EXPECT_DOUBLE_EQ(cost, 1.0 + 0.5 * 1.5);
}

TEST(OptimalDpTest, MultipleFormulas) {
  // Two independent single-variable formulas: always 2 probes.
  EXPECT_DOUBLE_EQ(
      OptimalExpectedCost({Dnf({VarSet{0}}), Dnf({VarSet{1}})}, UniformPi(2)),
      2.0);
}

TEST(OptimalDpTest, DecidedFormulasCostNothing) {
  EXPECT_DOUBLE_EQ(
      OptimalExpectedCost({Dnf::ConstantTrue(), Dnf::ConstantFalse()}, {}),
      0.0);
}

// --- OptimalStrategy as a runnable strategy ------------------------------------------

TEST(OptimalStrategyTest, ExactCostMatchesDp) {
  std::vector<Dnf> dnfs = {Dnf({VarSet{0, 1}, VarSet{2}}),
                           Dnf({VarSet{1, 3}})};
  std::vector<double> pi = {0.3, 0.6, 0.5, 0.8};
  double dp_cost = OptimalExpectedCost(dnfs, pi);
  double run_cost = ExactExpectedCost(dnfs, pi, MakeOptimalFactory(dnfs, pi));
  EXPECT_NEAR(run_cost, dp_cost, 1e-9);
}

TEST(OptimalStrategyTest, NoOtherStrategyBeatsIt) {
  Rng rng(501);
  for (int trial = 0; trial < 10; ++trial) {
    // Random small system.
    size_t num_vars = 4 + rng.UniformIndex(3);
    std::vector<VarSet> terms;
    size_t num_terms = 1 + rng.UniformIndex(3);
    for (size_t t = 0; t < num_terms; ++t) {
      std::vector<VarId> term;
      size_t size = 1 + rng.UniformIndex(3);
      for (size_t s = 0; s < size; ++s) {
        term.push_back(static_cast<VarId>(rng.UniformIndex(num_vars)));
      }
      terms.emplace_back(std::move(term));
    }
    std::vector<Dnf> dnfs = {Dnf(std::move(terms))};
    std::vector<double> pi;
    for (size_t i = 0; i < num_vars; ++i) {
      pi.push_back(0.2 + 0.6 * rng.UniformReal());
    }
    double optimal = OptimalExpectedCost(dnfs, pi);
    for (auto& [name, factory] :
         std::vector<std::pair<std::string, StrategyFactory>>{
             {"RO", MakeRoFactory()},
             {"Freq", MakeFreqFactory()},
             {"Q-value", MakeQValueFactory()},
             {"General", MakeGeneralFactory()}}) {
      double cost = ExactExpectedCost(dnfs, pi, factory, /*attach_cnfs=*/true);
      EXPECT_GE(cost + 1e-9, optimal)
          << name << " beat the optimal DP on " << dnfs[0].ToString();
    }
  }
}

// --- RO optimality on read-once formulas (Props. IV.4/IV.5/IV.8) -----------------------

class RoOptimalityTest : public ::testing::TestWithParam<int> {};

TEST_P(RoOptimalityTest, RoMatchesOptimalOnReadOnceDnf) {
  Rng rng(13000 + GetParam());
  // Random read-once DNF: disjoint terms.
  size_t num_terms = 1 + rng.UniformIndex(3);
  std::vector<VarSet> terms;
  VarId next = 0;
  for (size_t t = 0; t < num_terms; ++t) {
    size_t size = 1 + rng.UniformIndex(3);
    std::vector<VarId> term;
    for (size_t s = 0; s < size; ++s) term.push_back(next++);
    terms.emplace_back(std::move(term));
  }
  std::vector<Dnf> dnfs = {Dnf(std::move(terms))};
  // The paper's experiments use one probability for all variables; RO's
  // term/variable ordering rule is exact in that regime.
  double p = 0.2 + 0.6 * rng.UniformReal();
  std::vector<double> pi = UniformPi(next, p);
  double optimal = OptimalExpectedCost(dnfs, pi);
  double ro = ExactExpectedCost(dnfs, pi, MakeRoFactory());
  EXPECT_NEAR(ro, optimal, 1e-9) << dnfs[0].ToString() << " p=" << p;
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, RoOptimalityTest,
                         ::testing::Range(0, 20));

// --- Q-value near-optimality on small instances -------------------------------------------

class QValueQualityTest : public ::testing::TestWithParam<int> {};

TEST_P(QValueQualityTest, WithinApproximationOfOptimal) {
  Rng rng(14000 + GetParam());
  size_t num_vars = 5;
  std::vector<VarSet> terms;
  size_t num_terms = 2 + rng.UniformIndex(3);
  for (size_t t = 0; t < num_terms; ++t) {
    std::vector<VarId> term;
    size_t size = 1 + rng.UniformIndex(2);
    for (size_t s = 0; s < size; ++s) {
      term.push_back(static_cast<VarId>(rng.UniformIndex(num_vars)));
    }
    terms.emplace_back(std::move(term));
  }
  std::vector<Dnf> dnfs = {Dnf(std::move(terms))};
  std::vector<double> pi = UniformPi(num_vars, 0.5);
  double optimal = OptimalExpectedCost(dnfs, pi);
  double qvalue =
      ExactExpectedCost(dnfs, pi, MakeQValueFactory(), /*attach_cnfs=*/true);
  // The experimental observation of Sec. V-B ("matched the optimal ... in
  // all our experiments") holds loosely here: allow a 2x slack to keep the
  // test robust, while catching gross regressions.
  EXPECT_LE(qvalue, 2.0 * optimal + 1e-9) << dnfs[0].ToString();
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, QValueQualityTest,
                         ::testing::Range(0, 20));

// --- Worst-case objective (Sec. VII variant) ---------------------------------------

TEST(WorstCaseTest, HandCheckedInstances) {
  // Single variable: worst case 1.
  EXPECT_DOUBLE_EQ(OptimalWorstCaseProbes({Dnf({VarSet{0}})}), 1.0);
  // x0 ∧ x1: the worst path (True) probes both.
  EXPECT_DOUBLE_EQ(OptimalWorstCaseProbes({Dnf({VarSet{0, 1}})}), 2.0);
  // (x0∧x1) ∨ (x0∧x2): probing x0 first gives worst case 1 + 2 = 3.
  EXPECT_DOUBLE_EQ(
      OptimalWorstCaseProbes({Dnf({VarSet{0, 1}, VarSet{0, 2}})}), 3.0);
  // Two independent variables must both be probed in every case.
  EXPECT_DOUBLE_EQ(
      OptimalWorstCaseProbes({Dnf({VarSet{0}}), Dnf({VarSet{1}})}), 2.0);
}

TEST(WorstCaseTest, WorstCaseProbesOfConcreteStrategies) {
  std::vector<Dnf> dnfs = {Dnf({VarSet{0}, VarSet{1}, VarSet{2}})};
  std::vector<double> pi = UniformPi(3, 0.5);
  // Any strategy's worst case on a 3-var disjunction is 3 (all False).
  EXPECT_EQ(WorstCaseProbes(dnfs, pi, MakeRoFactory()), 3u);
  EXPECT_EQ(WorstCaseProbes(dnfs, pi, MakeFreqFactory()), 3u);
}

TEST(WorstCaseTest, NoStrategyBeatsTheWorstCaseOptimum) {
  Rng rng(901);
  for (int trial = 0; trial < 10; ++trial) {
    size_t num_vars = 4 + rng.UniformIndex(3);
    std::vector<VarSet> terms;
    size_t num_terms = 1 + rng.UniformIndex(3);
    for (size_t t = 0; t < num_terms; ++t) {
      std::vector<VarId> term;
      size_t size = 1 + rng.UniformIndex(3);
      for (size_t s = 0; s < size; ++s) {
        term.push_back(static_cast<VarId>(rng.UniformIndex(num_vars)));
      }
      terms.emplace_back(std::move(term));
    }
    std::vector<Dnf> dnfs = {Dnf(std::move(terms))};
    std::vector<double> pi = UniformPi(num_vars, 0.5);
    double optimum = OptimalWorstCaseProbes(dnfs);
    for (auto& factory : {MakeRoFactory(), MakeFreqFactory(),
                          MakeGeneralFactory()}) {
      EXPECT_GE(static_cast<double>(WorstCaseProbes(dnfs, pi, factory)) + 1e-9,
                optimum)
          << dnfs[0].ToString();
    }
  }
}

TEST(WorstCaseTest, PsiWorstCaseIsLinearInLevel) {
  // Thm. III.5's BDD probes at most 2*level + 3 variables; the worst-case
  // optimum can be no larger.
  std::vector<VarSet> psi0_terms = {VarSet{0, 1}, VarSet{1, 2}, VarSet{2, 3}};
  // psi_1 = (u ∧ psi_0) ∨ (u ∧ v) ∨ (v ∧ psi_0') with u=8, v=9.
  std::vector<VarSet> terms;
  for (const VarSet& t : psi0_terms) terms.push_back(t.Union(VarSet{8}));
  terms.push_back(VarSet{8, 9});
  for (const VarSet& t : psi0_terms) {
    std::vector<VarId> shifted;
    for (VarId v : t) shifted.push_back(v + 4);
    terms.push_back(VarSet(shifted).Union(VarSet{9}));
  }
  std::vector<Dnf> dnfs = {Dnf(std::move(terms))};
  EXPECT_LE(OptimalWorstCaseProbes(dnfs), 2.0 * 1 + 3.0);
}

TEST(WorstCaseTest, ExpectedAndWorstCaseObjectivesCanDisagree) {
  // With skewed probabilities the expected-cost optimum may accept a worse
  // worst case; both DPs must still be internally consistent:
  // expected-optimal cost <= worst-case-optimal strategy's expected cost,
  // and worst-case optimum <= ceiling of any strategy.
  std::vector<Dnf> dnfs = {Dnf({VarSet{0, 1}, VarSet{2}})};
  std::vector<double> pi = {0.9, 0.9, 0.05};
  double expected_opt = OptimalExpectedCost(dnfs, pi);
  double worst_opt = OptimalWorstCaseProbes(dnfs);
  EXPECT_LE(expected_opt, 3.0);
  EXPECT_LE(worst_opt, 3.0);
  EXPECT_GE(worst_opt, expected_opt - 1e-9);
}

}  // namespace
}  // namespace consentdb::strategy
