#include "consentdb/consent/shared_database.h"

#include "consentdb/util/check.h"

namespace consentdb::consent {

using relational::Database;
using relational::Relation;
using relational::Schema;
using relational::Tuple;

Status SharedDatabase::CreateRelation(const std::string& name, Schema schema) {
  CONSENTDB_RETURN_IF_ERROR(db_.CreateRelation(name, std::move(schema)));
  annotations_[name] = {};
  ++version_;
  return Status::OK();
}

Result<VarId> SharedDatabase::InsertTuple(const std::string& relation,
                                          Tuple t, std::string owner,
                                          double probability) {
  CONSENTDB_ASSIGN_OR_RETURN(Relation * rel,
                             db_.GetMutableRelation(relation));
  Tuple copy = t;  // keep a copy to locate the tuple if it already exists
  CONSENTDB_ASSIGN_OR_RETURN(bool inserted, rel->Insert(std::move(t)));
  std::vector<VarId>& vars = annotations_[relation];
  if (!inserted) {
    size_t index = *rel->IndexOf(copy);
    return vars[index];
  }
  std::string name = relation + "#" + std::to_string(rel->size() - 1);
  VarId id = pool_.Allocate(std::move(name), std::move(owner), probability);
  vars.push_back(id);
  ++version_;
  return id;
}

Status SharedDatabase::InsertTupleInBlock(const std::string& relation,
                                          Tuple t, VarId block_variable) {
  if (block_variable >= pool_.size()) {
    return Status::InvalidArgument("unknown consent variable: x" +
                                   std::to_string(block_variable));
  }
  CONSENTDB_ASSIGN_OR_RETURN(Relation * rel,
                             db_.GetMutableRelation(relation));
  CONSENTDB_ASSIGN_OR_RETURN(bool inserted, rel->Insert(std::move(t)));
  if (inserted) {
    annotations_[relation].push_back(block_variable);
    ++version_;
  }
  return Status::OK();
}

Result<VarId> SharedDatabase::AnnotationOf(const std::string& relation,
                                           size_t index) const {
  auto it = annotations_.find(relation);
  if (it == annotations_.end()) {
    return Status::NotFound("no such relation: " + relation);
  }
  if (index >= it->second.size()) {
    return Status::OutOfRange("tuple index " + std::to_string(index) +
                              " out of range for relation " + relation);
  }
  return it->second[index];
}

Result<VarId> SharedDatabase::AnnotationOf(const std::string& relation,
                                           const relational::Tuple& t) const {
  CONSENTDB_ASSIGN_OR_RETURN(const Relation* rel, db_.GetRelation(relation));
  std::optional<size_t> index = rel->IndexOf(t);
  if (!index.has_value()) {
    return Status::NotFound("tuple " + t.ToString() + " not in relation " +
                            relation);
  }
  return AnnotationOf(relation, *index);
}

Result<const std::vector<VarId>*> SharedDatabase::Annotations(
    const std::string& relation) const {
  auto it = annotations_.find(relation);
  if (it == annotations_.end()) {
    return Status::NotFound("no such relation: " + relation);
  }
  return &it->second;
}

Database SharedDatabase::ConsentedFragment(
    const provenance::PartialValuation& val) const {
  Database out;
  for (const std::string& name : db_.RelationNames()) {
    const Relation& rel = db_.RelationOrDie(name);
    Relation fragment(rel.schema());
    const std::vector<VarId>& vars = annotations_.at(name);
    for (size_t i = 0; i < rel.size(); ++i) {
      if (val.Get(vars[i]) == provenance::Truth::kTrue) {
        fragment.InsertOrDie(rel.tuple(i));
      }
    }
    Status st = out.AddRelation(name, std::move(fragment));
    CONSENTDB_CHECK(st.ok(), st.ToString());
  }
  return out;
}

}  // namespace consentdb::consent
