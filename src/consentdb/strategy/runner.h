// The probing session loop: repeatedly ask the strategy for a variable,
// probe it, and apply the answer until every formula is decided.

#ifndef CONSENTDB_STRATEGY_RUNNER_H_
#define CONSENTDB_STRATEGY_RUNNER_H_

#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "consentdb/obs/metrics.h"
#include "consentdb/obs/span.h"
#include "consentdb/obs/tracer.h"
#include "consentdb/strategy/strategies.h"

namespace consentdb::strategy {

// Answers a probe for variable x; must be consistent across calls.
using ProbeFn = std::function<bool(VarId)>;

// Opt-in telemetry sinks for a probing session. All default to null, in
// which case the loop records no timings and reads no clocks; attaching
// any of them must not change which probes are issued (verified by tests).
struct RunInstrumentation {
  obs::MetricsRegistry* metrics = nullptr;
  obs::SessionTracer* tracer = nullptr;
  // One session.probe span per probe iteration (deliberation + oracle
  // round-trip, with retry.wait spans nested inside on the resilient path).
  obs::SpanCollector* spans = nullptr;

  // Whether the per-probe deliberation clock must run. A span-only session
  // counts too: the session.probe spans embed the probe events' decision
  // timings and residual-term counts, which would otherwise read as zero.
  bool enabled() const {
    return metrics != nullptr || tracer != nullptr || spans != nullptr;
  }
};

struct ProbeRun {
  // Total probes issued — the cost the paper optimises.
  size_t num_probes = 0;
  // Sum of per-variable probe costs (== num_probes under unit costs).
  double total_cost = 0.0;
  // Final truth value of every formula (none Unknown).
  std::vector<Truth> outcomes;
  // The probe sequence with answers, in order. Derived from the session's
  // tracer events (runner.cc records each probe exactly once), so this view
  // and SessionTracer::events() cannot diverge.
  std::vector<std::pair<VarId, bool>> trace;
};

// Runs `strategy` on `state` until all formulas are decided. Checks the
// invariants every strategy must satisfy: each chosen variable is useful and
// never probed twice. With instrumentation attached, records one ProbeEvent
// per probe (decision wall-time, residual-formula shape) and bumps
// probe/decision metrics.
ProbeRun RunToCompletion(EvaluationState& state, ProbeStrategy& strategy,
                         const ProbeFn& probe,
                         const RunInstrumentation& instr = {});

// Convenience overload reading answers from a fixed hidden valuation (must
// cover every variable of the formulas).
ProbeRun RunToCompletion(EvaluationState& state, ProbeStrategy& strategy,
                         const PartialValuation& hidden,
                         const RunInstrumentation& instr = {});

// --- Resilient session loop (fault-tolerant probing) ------------------------

// What became of one probe request after the caller's retry policy ran its
// course.
enum class ProbeOutcome : uint8_t {
  kAnswered,        // the peer answered; `answer` is valid
  kVariableLost,    // retries/deadline exhausted or peer gone — give up on x
  kSessionExpired,  // the whole session hit its deadline — stop probing
};

struct FallibleProbe {
  ProbeOutcome outcome = ProbeOutcome::kAnswered;
  bool answer = false;
};

// A probe that may fail permanently. Implementations own retrying: by the
// time they return kVariableLost the variable is unrecoverable for this
// session.
using FallibleProbeFn = std::function<FallibleProbe(VarId)>;

struct ResilientProbeRun {
  // Successfully answered probes only; lost attempts are not counted.
  size_t num_probes = 0;
  // Sum of per-variable costs over *answered* probes.
  double total_cost = 0.0;
  // Final truth value of every formula; kUnknown marks formulas that could
  // not be decided because every path to them ran through a lost variable.
  std::vector<Truth> outcomes;
  // Answered probes with answers, in order (lost probes leave no trace —
  // they produced no information).
  std::vector<std::pair<VarId, bool>> trace;
  // Variables given up on (MarkUnreachable was applied for each).
  size_t num_lost = 0;
  // True when the loop stopped on kSessionExpired rather than convergence.
  bool session_expired = false;
};

// Fault-tolerant variant of RunToCompletion: probes until every formula is
// decided OR no useful variable remains (lost variables cut all remaining
// paths) OR the probe fn reports session expiry. With a fault-free probe fn
// this issues the byte-identical probe sequence of RunToCompletion.
ResilientProbeRun RunToCompletionResilient(EvaluationState& state,
                                           ProbeStrategy& strategy,
                                           const FallibleProbeFn& probe,
                                           const RunInstrumentation& instr = {});

// --- Inverted-control session loop (network serving) -------------------------

// RunToCompletionResilient with the control flow turned inside out: instead
// of calling a probe function and blocking, the stepper *emits* the variable
// it wants probed and parks until the caller reports what happened. This is
// what lets ProbeServer keep hundreds of sessions in flight on one thread —
// each session advances only when its client's answer arrives.
//
//   while (auto x = stepper.Next()) {        // nullopt == finished
//     ... ship ProbeRequest(*x), await the client ...
//     stepper.OnAnswer(answer);              // or OnVariableLost()
//   }
//   ResilientProbeRun run = stepper.Take();
//
// Next() is idempotent: until the pending variable is resolved by OnAnswer /
// OnVariableLost it returns the same id again (safe to call after a resume).
// Driven with the same strategy, state, and answers, the stepper issues the
// byte-identical probe sequence — and the identical ResilientProbeRun — as
// RunToCompletionResilient (a differential test holds this).
//
// `instr.spans` must be null: a span is an RAII scope and cannot survive
// parking between Next() and OnAnswer. Metrics and tracer work as in the
// blocking loops.
class SessionStepper {
 public:
  SessionStepper(EvaluationState& state, ProbeStrategy& strategy,
                 const RunInstrumentation& instr = {});

  // The variable to probe next, or nullopt once the session has finished
  // (all formulas decided, no useful variable left, or expired).
  std::optional<VarId> Next();

  // Resolves the pending probe with the owner's answer.
  void OnAnswer(bool answer);

  // Resolves the pending probe as permanently lost (retries exhausted).
  void OnVariableLost();

  // Aborts the session: the next Next() finishes with session_expired set.
  // May be called with or without a pending probe.
  void OnSessionExpired();

  bool finished() const { return finished_; }

  // The completed run; call only after Next() returned nullopt.
  ResilientProbeRun Take();

 private:
  void Finish();

  EvaluationState& state_;
  ProbeStrategy& strategy_;
  RunInstrumentation instr_;
  obs::SessionTracer local_tracer_;
  obs::SessionTracer* tracer_;
  size_t first_event_;
  bool instrumented_;

  obs::Counter* probe_count_ = nullptr;
  obs::Counter* answer_true_ = nullptr;
  obs::Counter* answer_false_ = nullptr;
  obs::Counter* lost_vars_ = nullptr;
  obs::Histogram* decision_ns_ = nullptr;

  std::optional<VarId> pending_;
  int64_t pending_deliberation_ = 0;
  bool expired_ = false;
  bool finished_ = false;
  ResilientProbeRun run_;
};

}  // namespace consentdb::strategy

#endif  // CONSENTDB_STRATEGY_RUNNER_H_
