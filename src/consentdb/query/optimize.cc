#include "consentdb/query/optimize.h"

#include <functional>

#include "consentdb/util/check.h"

namespace consentdb::query {

using relational::Database;
using relational::Schema;

namespace {

// Rewrites every column reference of `predicate` through `mapper`; returns
// nullptr when some reference has no mapping (the caller then keeps the
// predicate where it is).
PredicatePtr MapColumns(
    const PredicatePtr& predicate,
    const std::function<std::optional<std::string>(const std::string&)>&
        mapper) {
  switch (predicate->kind()) {
    case Predicate::Kind::kTrue:
      return predicate;
    case Predicate::Kind::kComparison: {
      auto map_operand = [&mapper](const Operand& op) -> std::optional<Operand> {
        if (!op.is_column()) return op;
        std::optional<std::string> name = mapper(op.column_name());
        if (!name.has_value()) return std::nullopt;
        return Operand::Column(*name);
      };
      std::optional<Operand> lhs = map_operand(predicate->lhs());
      std::optional<Operand> rhs = map_operand(predicate->rhs());
      if (!lhs.has_value() || !rhs.has_value()) return nullptr;
      return Predicate::Comparison(std::move(*lhs), predicate->op(),
                                   std::move(*rhs));
    }
    case Predicate::Kind::kAnd:
    case Predicate::Kind::kOr: {
      std::vector<PredicatePtr> mapped;
      mapped.reserve(predicate->children().size());
      for (const PredicatePtr& c : predicate->children()) {
        PredicatePtr m = MapColumns(c, mapper);
        if (m == nullptr) return nullptr;
        mapped.push_back(std::move(m));
      }
      return predicate->kind() == Predicate::Kind::kAnd
                 ? Predicate::And(std::move(mapped))
                 : Predicate::Or(std::move(mapped));
    }
  }
  return nullptr;
}

// Resolves a (possibly bare) column reference in `schema`; nullopt when it
// does not bind or is ambiguous.
std::optional<size_t> ResolveColumn(const std::string& name,
                                    const Schema& schema) {
  Operand op = Operand::Column(name);
  if (!op.Bind(schema).ok()) return std::nullopt;
  return op.column_index();
}

Result<PlanPtr> PushSelect(std::vector<PredicatePtr> conjuncts, PlanPtr child,
                           const Database& db);

Result<PlanPtr> OptimizeImpl(const PlanPtr& plan, const Database& db) {
  switch (plan->kind()) {
    case PlanKind::kScan:
      return plan;
    case PlanKind::kSelect: {
      CONSENTDB_ASSIGN_OR_RETURN(PlanPtr child,
                                 OptimizeImpl(plan->child(0), db));
      return PushSelect(SplitConjuncts(plan->predicate()), std::move(child),
                        db);
    }
    case PlanKind::kProject: {
      CONSENTDB_ASSIGN_OR_RETURN(PlanPtr child,
                                 OptimizeImpl(plan->child(0), db));
      return Plan::Project(plan->columns(), std::move(child),
                           plan->output_names());
    }
    case PlanKind::kProduct: {
      CONSENTDB_ASSIGN_OR_RETURN(PlanPtr left,
                                 OptimizeImpl(plan->child(0), db));
      CONSENTDB_ASSIGN_OR_RETURN(PlanPtr right,
                                 OptimizeImpl(plan->child(1), db));
      return Plan::Product(std::move(left), std::move(right));
    }
    case PlanKind::kUnion: {
      std::vector<PlanPtr> children;
      children.reserve(plan->children().size());
      for (const PlanPtr& c : plan->children()) {
        CONSENTDB_ASSIGN_OR_RETURN(PlanPtr opt, OptimizeImpl(c, db));
        children.push_back(std::move(opt));
      }
      return Plan::Union(std::move(children));
    }
  }
  return Status::Internal("unreachable plan kind");
}

// Wraps `child` in a Select over the conjuncts (no-op when empty).
PlanPtr WrapSelect(std::vector<PredicatePtr> conjuncts, PlanPtr child) {
  if (conjuncts.empty()) return child;
  return Plan::Select(Predicate::And(std::move(conjuncts)), std::move(child));
}

Result<PlanPtr> PushSelect(std::vector<PredicatePtr> conjuncts, PlanPtr child,
                           const Database& db) {
  if (conjuncts.empty()) return child;
  switch (child->kind()) {
    case PlanKind::kSelect: {
      // Merge with the child selection and keep pushing as one batch.
      std::vector<PredicatePtr> merged = SplitConjuncts(child->predicate());
      merged.insert(merged.end(), conjuncts.begin(), conjuncts.end());
      return PushSelect(std::move(merged), child->child(0), db);
    }
    case PlanKind::kProduct: {
      CONSENTDB_ASSIGN_OR_RETURN(Schema left_schema,
                                 child->child(0)->OutputSchema(db));
      CONSENTDB_ASSIGN_OR_RETURN(Schema right_schema,
                                 child->child(1)->OutputSchema(db));
      std::vector<PredicatePtr> to_left;
      std::vector<PredicatePtr> to_right;
      std::vector<PredicatePtr> keep;
      for (PredicatePtr& atom : conjuncts) {
        if (BindsAgainst(atom, left_schema)) {
          to_left.push_back(std::move(atom));
        } else if (BindsAgainst(atom, right_schema)) {
          to_right.push_back(std::move(atom));
        } else {
          keep.push_back(std::move(atom));
        }
      }
      CONSENTDB_ASSIGN_OR_RETURN(
          PlanPtr left, PushSelect(std::move(to_left), child->child(0), db));
      CONSENTDB_ASSIGN_OR_RETURN(
          PlanPtr right, PushSelect(std::move(to_right), child->child(1), db));
      return WrapSelect(std::move(keep),
                        Plan::Product(std::move(left), std::move(right)));
    }
    case PlanKind::kUnion: {
      // Distribute over the branches, renaming columns positionally (branch
      // schemas agree on types, not necessarily on names). Atoms that fail
      // to rename for some branch stay above the union.
      CONSENTDB_ASSIGN_OR_RETURN(Schema union_schema, child->OutputSchema(db));
      std::vector<Schema> branch_schemas;
      for (const PlanPtr& branch : child->children()) {
        CONSENTDB_ASSIGN_OR_RETURN(Schema s, branch->OutputSchema(db));
        branch_schemas.push_back(std::move(s));
      }
      std::vector<PredicatePtr> pushed;
      std::vector<PredicatePtr> keep;
      for (PredicatePtr& atom : conjuncts) {
        if (BindsAgainst(atom, union_schema)) {
          pushed.push_back(std::move(atom));
        } else {
          keep.push_back(std::move(atom));
        }
      }
      std::vector<PlanPtr> branches;
      branches.reserve(child->children().size());
      for (size_t b = 0; b < child->children().size(); ++b) {
        std::vector<PredicatePtr> renamed;
        bool ok = true;
        for (const PredicatePtr& atom : pushed) {
          PredicatePtr mapped = MapColumns(
              atom, [&](const std::string& name) -> std::optional<std::string> {
                std::optional<size_t> idx = ResolveColumn(name, union_schema);
                if (!idx.has_value()) return std::nullopt;
                return branch_schemas[b].column(*idx).name;
              });
          if (mapped == nullptr) {
            ok = false;
            break;
          }
          renamed.push_back(std::move(mapped));
        }
        if (!ok) {
          // Renaming failed; fall back to keeping everything above.
          keep.insert(keep.end(), pushed.begin(), pushed.end());
          pushed.clear();
          branches.clear();
          for (const PlanPtr& branch : child->children()) {
            branches.push_back(branch);
          }
          break;
        }
        CONSENTDB_ASSIGN_OR_RETURN(
            PlanPtr pushed_branch,
            PushSelect(std::move(renamed), child->children()[b], db));
        branches.push_back(std::move(pushed_branch));
      }
      return WrapSelect(std::move(keep), Plan::Union(std::move(branches)));
    }
    case PlanKind::kProject: {
      CONSENTDB_ASSIGN_OR_RETURN(Schema out_schema, child->OutputSchema(db));
      // Output name -> input column name.
      auto input_name =
          [&](const std::string& ref) -> std::optional<std::string> {
        std::optional<size_t> idx = ResolveColumn(ref, out_schema);
        if (!idx.has_value()) return std::nullopt;
        return child->columns()[*idx];
      };
      std::vector<PredicatePtr> below;
      std::vector<PredicatePtr> keep;
      for (PredicatePtr& atom : conjuncts) {
        PredicatePtr mapped = MapColumns(atom, input_name);
        if (mapped != nullptr) {
          below.push_back(std::move(mapped));
        } else {
          keep.push_back(std::move(atom));
        }
      }
      CONSENTDB_ASSIGN_OR_RETURN(
          PlanPtr inner, PushSelect(std::move(below), child->child(0), db));
      return WrapSelect(
          std::move(keep),
          Plan::Project(child->columns(), std::move(inner),
                        child->output_names()));
    }
    case PlanKind::kScan:
      return WrapSelect(std::move(conjuncts), std::move(child));
  }
  return Status::Internal("unreachable plan kind");
}

}  // namespace

std::vector<PredicatePtr> SplitConjuncts(const PredicatePtr& predicate) {
  std::vector<PredicatePtr> out;
  switch (predicate->kind()) {
    case Predicate::Kind::kTrue:
      return out;
    case Predicate::Kind::kAnd:
      for (const PredicatePtr& c : predicate->children()) {
        std::vector<PredicatePtr> sub = SplitConjuncts(c);
        out.insert(out.end(), sub.begin(), sub.end());
      }
      return out;
    default:
      out.push_back(predicate);
      return out;
  }
}

bool BindsAgainst(const PredicatePtr& predicate, const Schema& schema) {
  return predicate->Bind(schema).ok();
}

Result<PlanPtr> Optimize(const PlanPtr& plan, const Database& db) {
  CONSENTDB_CHECK(plan != nullptr, "null plan");
  // Validate up front so rewrites can assume well-formed references.
  CONSENTDB_RETURN_IF_ERROR(plan->OutputSchema(db).status());
  return OptimizeImpl(plan, db);
}

}  // namespace consentdb::query
