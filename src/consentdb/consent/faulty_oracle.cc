#include "consentdb/consent/faulty_oracle.h"

#include "consentdb/util/check.h"
#include "consentdb/util/hash_mix.h"

namespace consentdb::consent {

bool FaultPlan::empty() const {
  if (!defaults.faultless()) return false;
  for (const auto& [owner, faults] : per_peer) {
    if (!faults.faultless()) return false;
  }
  return true;
}

const PeerFaults& FaultPlan::For(const std::string& owner) const {
  auto it = per_peer.find(owner);
  return it != per_peer.end() ? it->second : defaults;
}

FaultyOracle::FaultyOracle(ProbeOracle& backing, const VariablePool& pool,
                           FaultPlan plan, Clock* clock)
    : backing_(backing), pool_(pool), plan_(std::move(plan)), clock_(clock) {}

ProbeAttempt FaultyOracle::TryProbe(VarId x) {
  MutexLock lock(mu_);
  ++stats_.attempts;
  const PeerFaults& faults = plan_.For(pool_.owner(x));
  if (clock_ != nullptr && faults.latency_nanos > 0) {
    clock_->SleepFor(faults.latency_nanos);
  }
  if (faults.permanently_unavailable ||
      crashed_.count(pool_.owner(x)) > 0) {
    ++stats_.unavailable_faults;
    return ProbeAttempt::Faulted(ProbeFault::kUnavailable);
  }
  // The fault-schedule index: how many attempts this variable has seen.
  // The decision hashes (seed, variable, index), so it does not depend on
  // when other variables were probed or which thread got here first.
  const size_t attempt = attempts_[x]++;
  if (faults.transient_failure_prob > 0.0 &&
      UnitUniformHash(plan_.seed, x, attempt) < faults.transient_failure_prob) {
    ++stats_.transient_faults;
    return ProbeAttempt::Faulted(ProbeFault::kTransient);
  }
  bool answer = backing_.Probe(x);
  ++stats_.successes;
  if (faults.crash_after_answers > 0) {
    size_t& answered = peer_answers_[pool_.owner(x)];
    if (++answered >= faults.crash_after_answers) {
      crashed_.insert(pool_.owner(x));
      stats_.crashed_peers = crashed_.size();
    }
  }
  return ProbeAttempt::Answered(answer);
}

bool FaultyOracle::Probe(VarId x) {
  ProbeAttempt attempt = TryProbe(x);
  CONSENTDB_CHECK(attempt.ok(),
                  "fault injected on the infallible probe path (peer '" +
                      pool_.owner(x) + "', x" + std::to_string(x) +
                      "): route resilient sessions through TryProbe");
  return attempt.answer;
}

size_t FaultyOracle::probe_count() const {
  MutexLock lock(mu_);
  return static_cast<size_t>(stats_.successes);
}

FaultyOracle::Stats FaultyOracle::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

size_t FaultyOracle::attempts_for(VarId x) const {
  MutexLock lock(mu_);
  auto it = attempts_.find(x);
  return it != attempts_.end() ? it->second : 0;
}

}  // namespace consentdb::consent
