// Shared support for the experiment-reproduction benches: environment-based
// scaling, the strategy roster, and table-formatted output matching the
// paper's figures (one row per x-value, one column per algorithm; the
// reported quantity is the expected number of probes, estimated over
// repetitions exactly as in Sec. V-A).
//
// Environment knobs:
//   CONSENTDB_BENCH_REPS     repetitions per data point (default per bench;
//                            the paper uses >= 10, >= 50 for Random)
//   CONSENTDB_BENCH_SCALE    multiplies dataset sizes (default 1.0)
//   CONSENTDB_EMIT_METRICS   when set (non-"0"), instrumented benches record
//                            probe/decision telemetry and write a
//                            <bench>_metrics.json sidecar next to their
//                            stdout tables — the perf trajectory baseline
//                            for future optimisation PRs

#ifndef CONSENTDB_BENCH_BENCH_COMMON_H_
#define CONSENTDB_BENCH_BENCH_COMMON_H_

#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "consentdb/obs/metrics.h"
#include "consentdb/obs/tracer.h"
#include "consentdb/strategy/expected_cost.h"
#include "consentdb/strategy/strategies.h"
#include "consentdb/util/io.h"

namespace consentdb::bench {

inline size_t RepsFromEnv(size_t fallback) {
  const char* env = std::getenv("CONSENTDB_BENCH_REPS");
  if (env == nullptr) return fallback;
  long v = std::atol(env);
  return v > 0 ? static_cast<size_t>(v) : fallback;
}

inline double ScaleFromEnv() {
  const char* env = std::getenv("CONSENTDB_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  double v = std::atof(env);
  return v > 0 ? v : 1.0;
}

inline size_t Scaled(size_t base) {
  return static_cast<size_t>(static_cast<double>(base) * ScaleFromEnv());
}

// --- Metrics sidecars (CONSENTDB_EMIT_METRICS) -------------------------------

inline bool EmitMetricsEnabled() {
  const char* env = std::getenv("CONSENTDB_EMIT_METRICS");
  return env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0;
}

// The bench-wide registry: null (no instrumentation, no clock reads) unless
// CONSENTDB_EMIT_METRICS is set.
inline obs::MetricsRegistry* MetricsSink() {
  static obs::MetricsRegistry registry;
  return EmitMetricsEnabled() ? &registry : nullptr;
}

// Writes the accumulated registry as `<bench_name>_metrics.json` in the
// working directory (next to any result output). No-op when the toggle is
// off.
inline void EmitMetricsSidecar(const std::string& bench_name) {
  obs::MetricsRegistry* metrics = MetricsSink();
  if (metrics == nullptr) return;
  const std::string path = bench_name + "_metrics.json";
  Status status = Env::Default()->WriteStringToFile(
      path, obs::ExportObservabilityJson(metrics, nullptr) + "\n",
      /*sync=*/false);
  if (!status.ok()) {
    std::cerr << "cannot write metrics sidecar " << path << ": "
              << status.ToString() << "\n";
    return;
  }
  std::cerr << "wrote metrics sidecar " << path << "\n";
}

struct NamedStrategy {
  std::string name;
  strategy::StrategyFactory factory;
  bool needs_cnfs = false;
  // Random gets more repetitions (Sec. V-A: ">= 50 times for Random").
  size_t reps_multiplier = 1;
};

// The roster of Sec. V-A, in the paper's order.
inline std::vector<NamedStrategy> PaperStrategies(uint64_t seed) {
  return {
      {"Random", strategy::MakeRandomFactory(seed), false, 5},
      {"Freq", strategy::MakeFreqFactory(), false, 1},
      {"RO", strategy::MakeRoFactory(), false, 1},
      {"Q-value", strategy::MakeQValueFactory(), true, 1},
      {"General", strategy::MakeGeneralFactory(), false, 1},
  };
}

// Fixed-width table writer.
class Table {
 public:
  explicit Table(std::vector<std::string> columns)
      : columns_(std::move(columns)) {
    std::ostringstream os;
    for (size_t i = 0; i < columns_.size(); ++i) {
      os << std::left << std::setw(i == 0 ? 18 : 12) << columns_[i];
    }
    header_ = os.str();
  }

  void PrintHeader() const {
    std::cout << header_ << "\n"
              << std::string(header_.size(), '-') << "\n";
  }

  void PrintRow(const std::string& label,
                const std::vector<std::string>& cells) const {
    std::cout << std::left << std::setw(18) << label;
    for (const std::string& cell : cells) {
      std::cout << std::left << std::setw(12) << cell;
    }
    std::cout << "\n" << std::flush;
  }

 private:
  std::vector<std::string> columns_;
  std::string header_;
};

inline std::string FormatMean(double mean) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1) << mean;
  return os.str();
}

}  // namespace consentdb::bench

#endif  // CONSENTDB_BENCH_BENCH_COMMON_H_
