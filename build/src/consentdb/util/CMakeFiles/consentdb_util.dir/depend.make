# Empty dependencies file for consentdb_util.
# This may be replaced when dependencies are built.
