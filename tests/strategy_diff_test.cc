// Differential suite for the columnar EvaluationState rewrite.
//
// Every probing strategy is a template over the state type, so the *same*
// strategy code can drive the rewritten columnar state and the preserved
// pre-rewrite implementation (tests/legacy_evaluation_state.*). For hundreds
// of randomized formula systems — mixed probe costs, unreachable variables,
// absorption on and off, CNFs attached up-front or mid-run — the two states
// must produce byte-identical probe traces and final verdicts. Any
// divergence in simplification order, tie-breaking, usefulness accounting,
// or Q-value arithmetic shows up as a trace mismatch with the offending
// seed in the failure message.
//
// Labelled `strategy_diff` (ctest -L strategy_diff); CI additionally runs it
// under TSAN and ASAN.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "consentdb/strategy/strategies.h"
#include "consentdb/util/rng.h"
#include "legacy_evaluation_state.h"

namespace consentdb::strategy {
namespace {

using provenance::Dnf;
using provenance::kInvalidVar;
using provenance::NormalFormLimits;
using provenance::VarSet;

// --- Randomized formula systems ---------------------------------------------

struct System {
  std::vector<Dnf> dnfs;
  std::vector<double> pi;
  std::vector<double> costs;  // empty = unit costs
  std::vector<bool> hidden;   // the oracle's fixed valuation
  std::vector<VarId> lost_upfront;  // unreachable before the first probe
  VarId lost_midrun = kInvalidVar;  // goes unreachable mid-session...
  size_t lost_midrun_step = 0;      // ...before this probe index
  bool absorption = true;
};

System MakeSystem(Rng& rng) {
  System s;
  const size_t num_vars = 4 + rng.UniformIndex(20);
  s.pi.resize(num_vars);
  for (double& p : s.pi) p = 0.05 + 0.9 * rng.UniformReal();

  const size_t num_formulas = 1 + rng.UniformIndex(4);
  for (size_t j = 0; j < num_formulas; ++j) {
    if (rng.Bernoulli(0.05)) {  // occasional constant formula
      s.dnfs.push_back(rng.Bernoulli(0.5) ? Dnf::ConstantTrue()
                                          : Dnf::ConstantFalse());
      continue;
    }
    const size_t num_terms = 1 + rng.UniformIndex(6);
    std::vector<VarSet> terms;
    for (size_t t = 0; t < num_terms; ++t) {
      const size_t width = 1 + rng.UniformIndex(5);
      std::vector<VarId> vars;
      for (size_t k = 0; k < width; ++k) {
        vars.push_back(static_cast<VarId>(rng.UniformIndex(num_vars)));
      }
      terms.emplace_back(std::move(vars));  // VarSet sorts + dedups
    }
    s.dnfs.push_back(Dnf(std::move(terms)));
  }

  s.hidden.resize(num_vars);
  for (size_t x = 0; x < num_vars; ++x) s.hidden[x] = rng.Bernoulli(s.pi[x]);

  if (rng.Bernoulli(0.5)) {
    s.costs.resize(num_vars);
    for (double& c : s.costs) c = 0.5 + 3.5 * rng.UniformReal();
  }
  s.absorption = !rng.Bernoulli(0.25);

  if (rng.Bernoulli(0.3)) {
    const size_t n = 1 + rng.UniformIndex(3);
    for (size_t i = 0; i < n; ++i) {
      s.lost_upfront.push_back(static_cast<VarId>(rng.UniformIndex(num_vars)));
    }
  }
  if (rng.Bernoulli(0.3)) {
    s.lost_midrun = static_cast<VarId>(rng.UniformIndex(num_vars));
    s.lost_midrun_step = 1 + rng.UniformIndex(8);
  }
  return s;
}

std::string Describe(const System& s) {
  std::ostringstream os;
  os << s.dnfs.size() << " formulas over " << s.pi.size() << " vars, "
     << (s.costs.empty() ? "unit" : "mixed") << " costs, absorption "
     << (s.absorption ? "on" : "off") << ", " << s.lost_upfront.size()
     << " vars lost up-front";
  if (s.lost_midrun != kInvalidVar) {
    os << ", x" << s.lost_midrun << " lost before probe "
       << s.lost_midrun_step;
  }
  return os.str();
}

// --- One session, templated over the state type -----------------------------

enum class Kind {
  kRandom,
  kFreq,
  kRo,
  kQValue,        // CNFs attached up-front
  kGeneral,
  kHybrid,        // late (residual) CNF attachment
  kHybridTinyCnf, // limits force the attachment to fail mid-run
};

constexpr Kind kAllKinds[] = {Kind::kRandom, Kind::kFreq,   Kind::kRo,
                              Kind::kQValue, Kind::kGeneral, Kind::kHybrid,
                              Kind::kHybridTinyCnf};

const char* KindName(Kind k) {
  switch (k) {
    case Kind::kRandom: return "Random";
    case Kind::kFreq: return "Freq";
    case Kind::kRo: return "RO";
    case Kind::kQValue: return "Q-value";
    case Kind::kGeneral: return "General";
    case Kind::kHybrid: return "Hybrid";
    case Kind::kHybridTinyCnf: return "Hybrid(tiny-cnf)";
  }
  return "?";
}

template <typename State>
std::unique_ptr<ProbeStrategyT<State>> MakeStrategy(Kind kind, uint64_t seed) {
  switch (kind) {
    case Kind::kRandom:
      return std::make_unique<RandomStrategyT<State>>(seed);
    case Kind::kFreq:
      return std::make_unique<FreqStrategyT<State>>();
    case Kind::kRo:
      return std::make_unique<RoStrategyT<State>>();
    case Kind::kQValue:
      return std::make_unique<QValueStrategyT<State>>();
    case Kind::kGeneral:
      return std::make_unique<GeneralStrategyT<State>>();
    case Kind::kHybrid:
      return std::make_unique<HybridStrategyT<State>>();
    case Kind::kHybridTinyCnf: {
      NormalFormLimits tiny;
      tiny.max_sets = 1;  // any multi-clause residual CNF fails to attach
      return std::make_unique<HybridStrategyT<State>>(tiny,
                                                      /*attach_max_terms=*/64);
    }
  }
  return nullptr;
}

struct SessionResult {
  bool skipped = false;  // Q-value inapplicable (CNF conversion blew up)
  std::vector<std::pair<VarId, bool>> trace;
  std::vector<Truth> outcomes;
  bool attach_failed = false;

  bool operator==(const SessionResult& o) const {
    return skipped == o.skipped && trace == o.trace &&
           outcomes == o.outcomes && attach_failed == o.attach_failed;
  }
};

std::string Describe(const SessionResult& r) {
  std::ostringstream os;
  if (r.skipped) return "(skipped)";
  os << "trace [";
  for (const auto& [x, b] : r.trace) os << " x" << x << "=" << (b ? 1 : 0);
  os << " ] outcomes [";
  for (Truth t : r.outcomes) os << " " << provenance::TruthToString(t);
  os << " ] attach_failed=" << r.attach_failed;
  return os.str();
}

template <typename State>
SessionResult RunSession(const System& sys, Kind kind, uint64_t seed) {
  State state(sys.dnfs, sys.pi);
  if (!sys.costs.empty()) state.SetCosts(sys.costs);
  if (!sys.absorption) state.SetAbsorptionEnabled(false);
  SessionResult out;
  if (kind == Kind::kQValue) {
    if (!state.AttachCnfs().ok()) {
      out.skipped = true;
      return out;
    }
  }
  for (VarId x : sys.lost_upfront) {
    if (!state.IsUnreachable(x)) state.MarkUnreachable(x);
  }
  auto strategy = MakeStrategy<State>(kind, seed);
  while (!state.AllDecided() && state.HasUsefulVar()) {
    if (sys.lost_midrun != kInvalidVar &&
        out.trace.size() == sys.lost_midrun_step &&
        state.var_value(sys.lost_midrun) == Truth::kUnknown &&
        !state.IsUnreachable(sys.lost_midrun)) {
      state.MarkUnreachable(sys.lost_midrun);
      if (state.AllDecided() || !state.HasUsefulVar()) break;
    }
    VarId x = strategy->ChooseNext(state);
    EXPECT_TRUE(state.IsUseful(x));
    const bool answer = sys.hidden[x];
    state.Assign(x, answer);
    strategy->OnAnswer(state, x, answer);
    out.trace.emplace_back(x, answer);
  }
  out.outcomes = state.FormulaValues();
  out.attach_failed = strategy->cnf_attach_failed();
  return out;
}

// --- The differential fuzzer ------------------------------------------------

class StrategyDiffTest : public ::testing::TestWithParam<int> {};

TEST_P(StrategyDiffTest, ColumnarMatchesLegacyByteForByte) {
  Rng rng(90000 + GetParam());
  // 8 shards x 30 systems x 7 strategies = 1680 session pairs.
  for (int trial = 0; trial < 30; ++trial) {
    const System sys = MakeSystem(rng);
    const uint64_t seed = rng.Fork();
    for (Kind kind : kAllKinds) {
      SessionResult legacy =
          RunSession<LegacyEvaluationState>(sys, kind, seed);
      SessionResult columnar = RunSession<EvaluationState>(sys, kind, seed);
      EXPECT_TRUE(legacy == columnar)
          << KindName(kind) << " diverged on shard " << GetParam()
          << " trial " << trial << ": " << Describe(sys)
          << "\n  legacy:   " << Describe(legacy)
          << "\n  columnar: " << Describe(columnar);
      if (!(legacy == columnar)) return;  // one counterexample is enough
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrategyDiffTest, ::testing::Range(0, 8));

// --- Deterministic spot checks ----------------------------------------------

// The legacy state must agree with the columnar one on a formula system with
// heavy absorption churn: nested terms falsify/absorb in cascades.
TEST(StrategyDiffSpotTest, AbsorptionCascade) {
  std::vector<Dnf> dnfs;
  dnfs.push_back(Dnf({VarSet{0, 1, 2, 3}, VarSet{0, 1, 2}, VarSet{4, 5},
                      VarSet{2, 4}}));
  dnfs.push_back(Dnf({VarSet{1, 5}, VarSet{0, 3, 5}}));
  System sys;
  sys.dnfs = dnfs;
  sys.pi = {0.9, 0.8, 0.7, 0.6, 0.5, 0.4};
  sys.hidden = {true, true, false, true, true, false};
  for (Kind kind : kAllKinds) {
    SessionResult legacy = RunSession<LegacyEvaluationState>(sys, kind, 7);
    SessionResult columnar = RunSession<EvaluationState>(sys, kind, 7);
    EXPECT_TRUE(legacy == columnar)
        << KindName(kind) << ":\n  legacy:   " << Describe(legacy)
        << "\n  columnar: " << Describe(columnar);
  }
}

// Forced mid-run CNF-attachment failure: both states must report it through
// the strategy and fall back to General identically.
TEST(StrategyDiffSpotTest, HybridAttachFailureMatches) {
  // (0^1) v (0^2) v (3^4) is not read-once (0 repeats), so Hybrid attempts
  // the attachment, and its CNF needs a 2x2 clause merge > max_sets = 1.
  System sys;
  sys.dnfs.push_back(Dnf({VarSet{0, 1}, VarSet{0, 2}, VarSet{3, 4}}));
  sys.pi = {0.5, 0.5, 0.5, 0.5, 0.5};
  sys.hidden = {true, false, true, false, true};
  SessionResult legacy =
      RunSession<LegacyEvaluationState>(sys, Kind::kHybridTinyCnf, 1);
  SessionResult columnar =
      RunSession<EvaluationState>(sys, Kind::kHybridTinyCnf, 1);
  EXPECT_TRUE(legacy == columnar)
      << "legacy:   " << Describe(legacy)
      << "\ncolumnar: " << Describe(columnar);
  EXPECT_TRUE(columnar.attach_failed);
}

}  // namespace
}  // namespace consentdb::strategy
