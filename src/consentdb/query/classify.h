// Query classification (Table I): which SPJU fragment a plan belongs to,
// whether it is partitioned (Def. IV.6), and its join/union counts — the
// inputs to the algorithm-selection logic and to the theoretical guarantees.

#ifndef CONSENTDB_QUERY_CLASSIFY_H_
#define CONSENTDB_QUERY_CLASSIFY_H_

#include <string>

#include "consentdb/obs/metrics.h"
#include "consentdb/query/plan.h"

namespace consentdb::query {

// The eight fragments of Table I. "S" (selection) is always present; the
// other letters flag the use of Projection, Join and Union anywhere in the
// plan.
enum class QueryClass {
  kS,
  kSP,
  kSU,
  kSPU,
  kSJ,
  kSJU,
  kSPJ,
  kSPJU,
};

const char* QueryClassToString(QueryClass c);

struct QueryProfile {
  QueryClass query_class = QueryClass::kS;
  bool has_projection = false;
  bool has_join = false;
  bool has_union = false;

  // Number of Product nodes — the paper's j; the maximal conjunction size
  // in the provenance is joins_per_branch + 1 (the k of Prop. IV.2).
  size_t num_joins = 0;
  // Number of binary unions (a Union node with c children counts c-1) — the
  // paper's u.
  size_t num_unions = 0;
  // Max number of Product nodes within a single SPJ branch of the union.
  size_t max_joins_per_branch = 0;

  // Def. IV.6: every base relation is scanned by at most one SPJ branch of
  // the top-level union (self-joins within a branch are fine).
  bool partitioned = true;

  std::string ToString() const;
};

// Statically analyses a plan. (The database is not consulted; data-dependent
// properties such as the projection limit are computed by the eval module
// on the annotated result.) With `metrics` attached, records classification
// time (query.classify_ns) and a per-fragment counter (query.class.<name>).
QueryProfile Classify(const Plan& plan, obs::MetricsRegistry* metrics = nullptr);

// Theoretical guarantees from Table I for a profile.
struct Guarantees {
  // OPT-PEER-PROBE (whole result) admits an exact PTIME solution (RO).
  bool exact_all_tuples = false;
  // OPT-PEER-PROBE-SINGLE admits an exact PTIME solution (RO).
  bool exact_single_tuple = false;
  // Provenance is overall read-once for every database.
  bool overall_read_once = false;
  // Provenance is per-tuple read-once for every database.
  bool per_tuple_read_once = false;
  // NP-hard for OPT-PEER-PROBE / -SINGLE (Thms. IV.9, IV.10, IV.15).
  bool np_hard_all_tuples = false;
  bool np_hard_single_tuple = false;
};

Guarantees GuaranteesFor(const QueryProfile& profile);

}  // namespace consentdb::query

#endif  // CONSENTDB_QUERY_CLASSIFY_H_
