// ProbeServer: SessionEngine behind a long-running, multi-tenant network
// service.
//
// The server is a single-threaded reactor over the Transport seam: Poll()
// accepts connections, decodes frames, advances sessions, and enforces
// timers; Start() runs that loop on a background thread for real-socket
// serving, while tests (and the chaos harness) call Poll() from their own
// cooperative driver.
//
// Sessions are resumable server-side objects addressed by a client-chosen
// id, not by their connection. A probing session parks while it waits for
// the client's ProbeAnswer (AsyncConsentSession) — nothing blocks, so one
// thread serves every tenant. When a connection dies the session detaches
// and waits; a later OpenSession with the same id from a new connection
// reattaches it, the outstanding ProbeRequest is re-sent, and the shared
// ConsentLedger guarantees no peer is ever probed twice across the resume.
//
// Admission control and backpressure are explicit:
//   * at most max_inflight_sessions sessions probe concurrently; excess
//     OpenSessions are shed fast with kUnavailable + a retry-after hint;
//   * per-tenant quotas bound any one tenant's share (kResourceExhausted);
//   * at most max_connections are accepted — beyond that, connections wait
//     in the transport's backlog;
//   * outbound bytes the transport won't take are buffered and retried,
//     never dropped.
//
// Client deadlines propagate into the engine's RetryPolicy (resilient
// sessions expire to kUnresolved verdicts; non-resilient ones fail with
// kDeadlineExceeded). BeginDrain() refuses new sessions while in-flight
// ones finish; whatever is still parked at Shutdown stays registered with
// the engine, so a checkpoint taken afterwards captures it for resume.

#ifndef CONSENTDB_NET_PROBE_SERVER_H_
#define CONSENTDB_NET_PROBE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>

#include "consentdb/core/async_session.h"
#include "consentdb/core/session_engine.h"
#include "consentdb/net/frame.h"
#include "consentdb/net/protocol.h"
#include "consentdb/obs/metrics.h"
#include "consentdb/util/clock.h"
#include "consentdb/util/thread_annotations.h"
#include "consentdb/util/transport.h"

namespace consentdb::net {

struct ServerOptions {
  // Admission control: sessions probing concurrently (completed sessions
  // awaiting their Ack do not count). Excess OpenSessions are shed.
  size_t max_inflight_sessions = 64;
  // Per-tenant slice of the in-flight budget.
  size_t max_sessions_per_tenant = 16;
  // Connections accepted at once; beyond this the transport backlog waits.
  size_t max_connections = 256;
  // Deadline for sessions whose OpenSession carries none (0 = unbounded).
  int64_t default_session_deadline_nanos = 0;
  // Upper clamp on client-requested deadlines (0 = no clamp).
  int64_t max_session_deadline_nanos = 0;
  // The retry-after hint shed sessions carry.
  int64_t retry_after_nanos = 1'000'000'000;  // 1s
  // Completed sessions retained for report re-delivery until their Ack;
  // the oldest are evicted beyond this.
  size_t max_completed_retained = 1024;
  // Timer clock; null uses the engine's session clock, else the real one.
  Clock* clock = nullptr;
};

struct ServerStats {
  uint64_t accepted_connections = 0;
  uint64_t opened_sessions = 0;
  uint64_t completed_sessions = 0;
  uint64_t shed_sessions = 0;
  uint64_t expired_sessions = 0;
  uint64_t resumed_sessions = 0;
  uint64_t corrupt_frames = 0;
  size_t inflight_sessions = 0;  // probing now (excludes completed)
  size_t connections = 0;
  bool draining = false;
};

class ProbeServer {
 public:
  // `engine` and `transport` must outlive the server. The engine's shared
  // ledger (share_consent_ledger) is what makes resume probe-free; the
  // server works without it but then a resumed session re-probes.
  ProbeServer(core::SessionEngine& engine, Transport& transport,
              ServerOptions options = {});
  ~ProbeServer();

  // Binds the listener. Call once, before Poll()/Start().
  [[nodiscard]] Status Listen(const std::string& address);

  // The bound address (resolved port for posix "0" listens).
  std::string address() const;

  // One reactor sweep: accept, read, decode, advance sessions, fire timers,
  // flush. Returns the number of work items handled (0 = idle sweep).
  // Thread-safe, but intended for one driver at a time.
  size_t Poll();

  // Runs Poll() on a background thread until Shutdown(). For real-socket
  // serving; cooperative tests drive Poll() directly instead.
  void Start();

  // Refuses new sessions from now on (shed with kUnavailable); in-flight
  // sessions keep running. Irreversible.
  void BeginDrain();

  // BeginDrain, give in-flight sessions until `drain_deadline_nanos` of
  // polling to finish (0 = flush once), then stop the background thread,
  // close everything, and return. Parked sessions that did not finish stay
  // registered with the engine for checkpoint/resume.
  void Shutdown(int64_t drain_deadline_nanos = 0);

  ServerStats stats() const;

 private:
  struct ConnState {
    std::unique_ptr<Connection> conn;
    FrameParser parser;
    std::string out;  // accepted by the server, not yet by the transport
  };

  struct ServerSession {
    uint64_t id = 0;
    std::string tenant;
    std::string sql;
    uint8_t has_single = 0;
    std::string single_csv;
    std::unique_ptr<core::AsyncConsentSession> run;
    uint64_t conn = 0;  // owning connection; 0 = detached (parked)
    int64_t deadline_abs = 0;  // 0 = none
    uint64_t engine_reg = 0;
    bool engine_registered = false;
    // The ProbeRequest currently outstanding on `conn`, to avoid re-sending
    // it every poll. Reset on reattach so the new connection gets it again.
    std::optional<provenance::VarId> sent_probe;
    bool completed = false;
    // Terminal outcome, re-sent verbatim on resume until the Ack.
    std::string report_json;          // when the session succeeded
    bool failed = false;              // when it did not
    uint8_t error_code = 0;
    std::string error_message;
  };

  size_t PollLocked() REQUIRES(mu_);
  size_t AcceptLocked() REQUIRES(mu_);
  size_t ReadConnLocked(uint64_t cid) REQUIRES(mu_);
  size_t TimersLocked() REQUIRES(mu_);
  void HandleMessage(uint64_t cid, Message msg) REQUIRES(mu_);
  void HandleOpen(uint64_t cid, const OpenSession& m) REQUIRES(mu_);
  void PumpSession(ServerSession& s) REQUIRES(mu_);
  void SendOnConn(uint64_t cid, const Message& msg) REQUIRES(mu_);
  void SendToSession(ServerSession& s, const Message& msg) REQUIRES(mu_);
  void TryFlush(uint64_t cid) REQUIRES(mu_);
  void DropConn(uint64_t cid) REQUIRES(mu_);
  void CompleteSession(ServerSession& s) REQUIRES(mu_);
  void FailSession(ServerSession& s, const Status& error) REQUIRES(mu_);
  void EvictCompletedLocked() REQUIRES(mu_);
  size_t InflightLocked() const REQUIRES(mu_);
  void UpdateGauges() REQUIRES(mu_);

  core::SessionEngine& engine_;
  Transport& transport_;
  const ServerOptions options_;
  Clock* clock_;
  obs::MetricsRegistry* metrics_;

  mutable Mutex mu_;
  std::unique_ptr<Listener> listener_ GUARDED_BY(mu_);
  std::string address_ GUARDED_BY(mu_);
  uint64_t next_conn_id_ GUARDED_BY(mu_) = 1;
  std::map<uint64_t, ConnState> conns_ GUARDED_BY(mu_);
  std::map<uint64_t, ServerSession> sessions_ GUARDED_BY(mu_);
  // Completed-session ids in completion order, for bounded retention.
  std::deque<uint64_t> completed_order_ GUARDED_BY(mu_);
  ServerStats stats_ GUARDED_BY(mu_);
  bool draining_ GUARDED_BY(mu_) = false;

  std::atomic<bool> stop_{false};
  std::thread pump_;  // Start()'s background loop
};

}  // namespace consentdb::net

#endif  // CONSENTDB_NET_PROBE_SERVER_H_
