// The paper's running example (Examples II.2-IV.7): recruitment agencies
// sharing derived data about job seekers.
//
// Alice wants to share with Carol the names of companies where environmental
// studies graduates were hired (query Q_ex of Fig. 1 over the database of
// Table II). The result derives from tuples owned by Alice, Bob and the
// platform, so ConsentDB probes exactly the owners whose tuples matter —
// and stops as soon as one derivation is fully consented (or all are dead).
//
// Build & run:  ./build/examples/recruitment_agency

#include <iostream>
#include <map>

#include "consentdb/core/consent_manager.h"

using namespace consentdb;
using relational::Column;
using relational::Schema;
using relational::Tuple;
using relational::Value;
using relational::ValueType;

namespace {

consent::SharedDatabase BuildTableII() {
  consent::SharedDatabase sdb;
  auto check = [](const Status& s) { CONSENTDB_CHECK(s.ok(), s.ToString()); };
  auto insert = [&sdb](const std::string& rel, Tuple t, std::string owner) {
    // Platform rows rarely get refused; agency rows are 50/50.
    double prior = owner == "platform" ? 0.95 : 0.5;
    Result<provenance::VarId> r =
        sdb.InsertTuple(rel, std::move(t), std::move(owner), prior);
    CONSENTDB_CHECK(r.ok(), r.status().ToString());
  };

  check(sdb.CreateRelation("Companies",
                           Schema({Column{"cid", ValueType::kInt64},
                                   Column{"name", ValueType::kString}})));
  insert("Companies", Tuple{Value(11), Value("PennSolarExperts Ltd.")},
         "platform");

  check(sdb.CreateRelation("Vacancies",
                           Schema({Column{"vid", ValueType::kInt64},
                                   Column{"cid", ValueType::kInt64},
                                   Column{"position", ValueType::kString},
                                   Column{"amount", ValueType::kInt64}})));
  insert("Vacancies", Tuple{Value(111), Value(11), Value("analyst"), Value(3)},
         "platform");
  insert("Vacancies",
         Tuple{Value(112), Value(11), Value("supervisor"), Value(1)},
         "platform");

  check(sdb.CreateRelation("JobSeekers",
                           Schema({Column{"sid", ValueType::kInt64},
                                   Column{"name", ValueType::kString},
                                   Column{"education", ValueType::kString},
                                   Column{"agency", ValueType::kString}})));
  insert("JobSeekers",
         Tuple{Value(1), Value("David"), Value("Env. studies"), Value("Bob")},
         "Bob");
  insert("JobSeekers",
         Tuple{Value(2), Value("Ellen"), Value("Env. studies"), Value("Bob")},
         "Bob");
  insert("JobSeekers",
         Tuple{Value(3), Value("Frank"), Value("Env. studies"), Value("Alice")},
         "Alice");
  insert("JobSeekers",
         Tuple{Value(4), Value("Georgia"), Value("Env. studies"), Value("Bob")},
         "Bob");

  check(sdb.CreateRelation("Assignment",
                           Schema({Column{"sid", ValueType::kInt64},
                                   Column{"vid", ValueType::kInt64},
                                   Column{"status", ValueType::kString},
                                   Column{"agency", ValueType::kString}})));
  insert("Assignment",
         Tuple{Value(1), Value(111), Value("hired"), Value("Bob")}, "Bob");
  insert("Assignment",
         Tuple{Value(2), Value(112), Value("rejected"), Value("Alice")},
         "Alice");
  insert("Assignment",
         Tuple{Value(2), Value(111), Value("hired"), Value("Bob")}, "Bob");
  insert("Assignment",
         Tuple{Value(3), Value(111), Value("rejected"), Value("Alice")},
         "Alice");
  insert("Assignment",
         Tuple{Value(4), Value(112), Value("hired"), Value("Alice")}, "Alice");
  return sdb;
}

// Example II.4/II.7's world: Bob declines to share his seekers' rows with
// Carol, except Ellen's hire record; everything else is consented.
provenance::PartialValuation ScenarioValuation(
    const consent::SharedDatabase& sdb) {
  provenance::PartialValuation val(sdb.pool().size());
  for (provenance::VarId x = 0; x < sdb.pool().size(); ++x) val.Set(x, true);
  const std::vector<provenance::VarId>& seekers =
      **sdb.Annotations("JobSeekers");
  val.Set(seekers[0], false);  // David
  val.Set(seekers[3], false);  // Georgia
  return val;
}

}  // namespace

int main() {
  consent::SharedDatabase sdb = BuildTableII();
  core::ConsentManager manager(sdb);

  const char* q_ex =
      "SELECT DISTINCT c.name "
      "FROM Companies c, JobSeekers s, Vacancies v, Assignment a "
      "WHERE c.cid = v.cid AND v.vid = a.vid AND a.status = 'hired' "
      "AND a.sid = s.sid AND s.education = 'Env. studies'";

  // Static analysis first: query class, guarantees, provenance shape.
  Result<query::PlanPtr> plan = query::ParseQuery(q_ex);
  CONSENTDB_CHECK(plan.ok(), plan.status().ToString());
  Result<core::QueryAnalysis> analysis = manager.Analyze(*plan);
  CONSENTDB_CHECK(analysis.ok(), analysis.status().ToString());
  std::cout << "=== Query Q_ex (Fig. 1) ===\n" << q_ex << "\n\n";
  std::cout << "class: " << analysis->profile.ToString() << "\n";
  std::cout << "OPT-PEER-PROBE is NP-hard for this class: "
            << (analysis->guarantees.np_hard_all_tuples ? "yes (Thm. IV.15)"
                                                        : "no")
            << "\n";
  std::cout << "provenance: " << analysis->provenance.ToString() << "\n\n";

  // Probe under the scenario of Examples II.4/II.7.
  consent::ValuationOracle oracle(ScenarioValuation(sdb));
  Result<core::SessionReport> report = manager.DecideAll(*plan, oracle);
  CONSENTDB_CHECK(report.ok(), report.status().ToString());

  std::cout << "=== Probing session ===\n";
  std::cout << "algorithm: " << report->algorithm_used << "\n  ("
            << report->selection_rationale << ")\n";
  std::map<std::string, int> per_peer;
  for (const auto& probe : report->trace) {
    std::cout << "  " << probe.owner << ", may Carol see "
              << probe.variable_name << "? -> "
              << (probe.answer ? "yes" : "no") << "\n";
    ++per_peer[probe.owner];
  }
  std::cout << "total probes: " << report->num_probes << " (of "
            << sdb.pool().size() << " tuples in the database)\n";
  for (const auto& [peer, n] : per_peer) {
    std::cout << "  " << peer << " was asked " << n << " question(s)\n";
  }

  std::cout << "\n=== Verdict ===\n";
  for (const core::TupleConsent& tc : report->tuples) {
    std::cout << "  " << tc.tuple.ToString() << " : "
              << (tc.shareable ? "Alice may share this with Carol"
                               : "insufficient consent")
              << "\n";
  }
  return 0;
}
