// Extension experiment (Sec. VII, "other optimization metrics"): the
// worst-case number of probes as the objective instead of the expectation.
//
// On small random provenance systems (exhaustively analysable), the table
// compares, per strategy: the exact expected probes and the exact
// worst-case probes, against the two optima (expected-cost DP and
// worst-case DP). The two objectives genuinely disagree: the expected-cost
// optimum usually accepts a worse ceiling and vice versa.

#include <map>

#include "bench_common.h"
#include "consentdb/strategy/optimal.h"

using namespace consentdb;
using strategy::Dnf;
using strategy::VarSet;

int main() {
  const size_t instances = bench::RepsFromEnv(8);
  std::cout << "=== Extension: worst-case objective (random 10-var two-formula systems, "
            << instances << " instances, pi=0.5) ===\n\n";

  bench::Table table({"strategy", "E[probes]", "worst case"});
  table.PrintHeader();

  struct Accum {
    double expected = 0;
    double worst = 0;
  };
  std::map<std::string, Accum> accum;

  Rng rng(4700);
  for (size_t inst = 0; inst < instances; ++inst) {
    const size_t num_vars = 10;
    std::vector<Dnf> dnfs;
    for (int formula = 0; formula < 2; ++formula) {
      std::vector<VarSet> terms;
      size_t num_terms = 3 + rng.UniformIndex(4);
      for (size_t t = 0; t < num_terms; ++t) {
        std::vector<provenance::VarId> term;
        size_t size = 2 + rng.UniformIndex(3);
        for (size_t s = 0; s < size; ++s) {
          term.push_back(static_cast<provenance::VarId>(
              rng.UniformIndex(num_vars)));
        }
        terms.emplace_back(std::move(term));
      }
      dnfs.emplace_back(std::move(terms));
    }
    std::vector<double> pi(num_vars, 0.5);

    accum["Optimal(E)"].expected += strategy::OptimalExpectedCost(dnfs, pi);
    accum["Optimal(E)"].worst += 0;  // filled via strategy run below
    accum["Optimal(wc)"].worst += strategy::OptimalWorstCaseProbes(dnfs);

    // Expected-optimal as a runnable strategy: measure its ceiling too.
    strategy::StrategyFactory opt_factory = [dnfs, pi]() {
      return std::make_unique<strategy::OptimalStrategy>(dnfs, pi);
    };
    accum["Optimal(E)"].worst += static_cast<double>(
        strategy::WorstCaseProbes(dnfs, pi, opt_factory));
    // Worst-case DP has no expected-cost guarantee; approximate its
    // expectation by running it as a greedy... (kept blank: the DP is a
    // value function, not a strategy object here).
    accum["Optimal(wc)"].expected += 0;

    for (auto& [name, factory, cnfs] :
         std::vector<std::tuple<std::string, strategy::StrategyFactory, bool>>{
             {"RO", strategy::MakeRoFactory(), false},
             {"Freq", strategy::MakeFreqFactory(), false},
             {"Q-value", strategy::MakeQValueFactory(), true},
             {"General", strategy::MakeGeneralFactory(), false}}) {
      accum[name].expected +=
          strategy::ExactExpectedCost(dnfs, pi, factory, cnfs);
      accum[name].worst += static_cast<double>(
          strategy::WorstCaseProbes(dnfs, pi, factory, cnfs));
    }
  }

  auto row = [&](const std::string& name, bool has_expected) {
    const Accum& a = accum[name];
    table.PrintRow(
        name,
        {has_expected
             ? bench::FormatMean(a.expected / static_cast<double>(instances))
             : std::string("-"),
         bench::FormatMean(a.worst / static_cast<double>(instances))});
  };
  row("Optimal(E)", true);
  row("Optimal(wc)", false);
  for (const char* name : {"RO", "Freq", "Q-value", "General"}) {
    row(name, true);
  }
  std::cout << "\ninterpretation: Optimal(E) minimises the expectation and "
               "Optimal(wc) the\nceiling; no strategy's worst case beats "
               "Optimal(wc), and no strategy's\nexpectation beats "
               "Optimal(E) — the practical algorithms sit between the two.\n";
  return 0;
}
