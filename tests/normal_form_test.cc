#include <gtest/gtest.h>

#include "consentdb/provenance/normal_form.h"
#include "consentdb/util/rng.h"

namespace consentdb::provenance {
namespace {

PartialValuation Val(std::initializer_list<std::pair<VarId, Truth>> entries) {
  PartialValuation v;
  for (const auto& [x, t] : entries) v.Set(x, t);
  return v;
}

// --- VarSet --------------------------------------------------------------------

TEST(VarSetTest, SortsAndDeduplicates) {
  VarSet s{3, 1, 3, 2};
  EXPECT_EQ(s.vars(), (std::vector<VarId>{1, 2, 3}));
}

TEST(VarSetTest, SubsetAndContains) {
  VarSet small{1, 3};
  VarSet big{1, 2, 3};
  EXPECT_TRUE(small.SubsetOf(big));
  EXPECT_FALSE(big.SubsetOf(small));
  EXPECT_TRUE(small.SubsetOf(small));
  EXPECT_TRUE(big.Contains(2));
  EXPECT_FALSE(big.Contains(4));
  EXPECT_TRUE(VarSet{}.SubsetOf(small));
}

TEST(VarSetTest, UnionDifferenceIntersects) {
  VarSet a{1, 2};
  VarSet b{2, 3};
  EXPECT_EQ(a.Union(b), (VarSet{1, 2, 3}));
  EXPECT_EQ(a.Difference(b), (VarSet{1}));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(VarSet{4, 5}));
}

// --- Dnf constants & absorption ---------------------------------------------------

TEST(DnfTest, Constants) {
  EXPECT_TRUE(Dnf::ConstantFalse().IsConstantFalse());
  EXPECT_TRUE(Dnf::ConstantTrue().IsConstantTrue());
  EXPECT_EQ(Dnf::ConstantFalse().Evaluate(PartialValuation()), Truth::kFalse);
  EXPECT_EQ(Dnf::ConstantTrue().Evaluate(PartialValuation()), Truth::kTrue);
}

TEST(DnfTest, AbsorptionRemovesSupersets) {
  Dnf dnf({VarSet{0}, VarSet{0, 1}, VarSet{1, 2}});
  // {0,1} ⊇ {0} is absorbed.
  EXPECT_EQ(dnf.num_terms(), 2u);
  EXPECT_EQ(dnf.terms()[0], (VarSet{0}));
  EXPECT_EQ(dnf.terms()[1], (VarSet{1, 2}));
}

TEST(DnfTest, DuplicateTermsCollapse) {
  Dnf dnf({VarSet{0, 1}, VarSet{1, 0}});
  EXPECT_EQ(dnf.num_terms(), 1u);
}

TEST(DnfTest, EmptyTermMakesConstantTrue) {
  Dnf dnf({VarSet{0, 1}, VarSet{}});
  EXPECT_TRUE(dnf.IsConstantTrue());
}

TEST(DnfTest, SizeMetrics) {
  Dnf dnf({VarSet{0, 1, 2}, VarSet{3}});
  EXPECT_EQ(dnf.TotalLiterals(), 4u);
  EXPECT_EQ(dnf.MaxTermSize(), 3u);
  EXPECT_EQ(dnf.Vars(), (VarSet{0, 1, 2, 3}));
}

// --- Dnf evaluation & simplification ------------------------------------------------

TEST(DnfTest, KleeneEvaluation) {
  Dnf dnf({VarSet{0, 1}, VarSet{2}});
  EXPECT_EQ(dnf.Evaluate(Val({{2, Truth::kTrue}})), Truth::kTrue);
  EXPECT_EQ(dnf.Evaluate(Val({{0, Truth::kFalse}, {2, Truth::kFalse}})),
            Truth::kFalse);
  EXPECT_EQ(dnf.Evaluate(Val({{0, Truth::kTrue}, {2, Truth::kFalse}})),
            Truth::kUnknown);
}

TEST(DnfTest, SimplifyDropsFalsifiedTerms) {
  Dnf dnf({VarSet{0, 1}, VarSet{2, 3}});
  Dnf s = dnf.Simplify(Val({{0, Truth::kFalse}}));
  EXPECT_EQ(s.num_terms(), 1u);
  EXPECT_EQ(s.terms()[0], (VarSet{2, 3}));
}

TEST(DnfTest, SimplifyRemovesTrueVars) {
  Dnf dnf({VarSet{0, 1}});
  Dnf s = dnf.Simplify(Val({{0, Truth::kTrue}}));
  EXPECT_EQ(s.terms()[0], (VarSet{1}));
}

TEST(DnfTest, SimplifyDetectsConstants) {
  Dnf dnf({VarSet{0, 1}, VarSet{2}});
  EXPECT_TRUE(dnf.Simplify(Val({{2, Truth::kTrue}})).IsConstantTrue());
  EXPECT_TRUE(dnf.Simplify(Val({{0, Truth::kFalse}, {2, Truth::kFalse}}))
                  .IsConstantFalse());
}

TEST(DnfTest, SimplifyAppliesAbsorption) {
  // After x2=True, {1,2} becomes {1} which absorbs {0,1}... no: {1} ⊆ {0,1},
  // so {0,1} is absorbed.
  Dnf dnf({VarSet{0, 1}, VarSet{1, 2}});
  Dnf s = dnf.Simplify(Val({{2, Truth::kTrue}}));
  EXPECT_EQ(s.num_terms(), 1u);
  EXPECT_EQ(s.terms()[0], (VarSet{1}));
}

// --- Read-once & probability ----------------------------------------------------------

TEST(DnfTest, ReadOnceDetection) {
  EXPECT_TRUE(Dnf({VarSet{0, 1}, VarSet{2, 3}}).IsReadOnce());
  EXPECT_FALSE(Dnf({VarSet{0, 1}, VarSet{1, 2}}).IsReadOnce());
}

TEST(DnfTest, TrueProbabilityReadOnce) {
  // (x0 ∧ x1) ∨ x2, p = (0.5, 0.5, 0.5): 1 - (1-0.25)(1-0.5) = 0.625.
  Dnf dnf({VarSet{0, 1}, VarSet{2}});
  EXPECT_NEAR(dnf.TrueProbability({0.5, 0.5, 0.5}), 0.625, 1e-12);
}

TEST(DnfTest, TrueProbabilityInclusionExclusion) {
  // (x0 ∧ x1) ∨ (x1 ∧ x2): p01 + p12 - p012.
  Dnf dnf({VarSet{0, 1}, VarSet{1, 2}});
  double expected = 0.5 * 0.5 + 0.5 * 0.5 - 0.5 * 0.5 * 0.5;
  EXPECT_NEAR(dnf.TrueProbability({0.5, 0.5, 0.5}), expected, 1e-12);
}

// --- Cnf ------------------------------------------------------------------------------

TEST(CnfTest, Constants) {
  EXPECT_TRUE(Cnf::ConstantTrue().IsConstantTrue());
  EXPECT_TRUE(Cnf::ConstantFalse().IsConstantFalse());
  EXPECT_EQ(Cnf::ConstantTrue().Evaluate(PartialValuation()), Truth::kTrue);
  EXPECT_EQ(Cnf::ConstantFalse().Evaluate(PartialValuation()), Truth::kFalse);
}

TEST(CnfTest, KleeneEvaluation) {
  Cnf cnf({VarSet{0, 1}, VarSet{2}});
  EXPECT_EQ(cnf.Evaluate(Val({{2, Truth::kFalse}})), Truth::kFalse);
  EXPECT_EQ(cnf.Evaluate(Val({{0, Truth::kTrue}, {2, Truth::kTrue}})),
            Truth::kTrue);
  EXPECT_EQ(cnf.Evaluate(Val({{2, Truth::kTrue}})), Truth::kUnknown);
}

TEST(CnfTest, AbsorptionRemovesSupersetClauses) {
  Cnf cnf({VarSet{0}, VarSet{0, 1}});
  EXPECT_EQ(cnf.num_clauses(), 1u);
}

// --- Conversions -----------------------------------------------------------------------

TEST(ConversionTest, DnfToCnfSimple) {
  // (x0 ∧ x1) ∨ x2  ==  (x0 ∨ x2) ∧ (x1 ∨ x2).
  Dnf dnf({VarSet{0, 1}, VarSet{2}});
  Cnf cnf = *DnfToCnf(dnf);
  EXPECT_EQ(cnf.num_clauses(), 2u);
  EXPECT_EQ(cnf.clauses()[0], (VarSet{0, 2}));
  EXPECT_EQ(cnf.clauses()[1], (VarSet{1, 2}));
}

TEST(ConversionTest, ConstantsRoundTrip) {
  EXPECT_TRUE(DnfToCnf(Dnf::ConstantTrue())->IsConstantTrue());
  EXPECT_TRUE(DnfToCnf(Dnf::ConstantFalse())->IsConstantFalse());
  EXPECT_TRUE(CnfToDnf(Cnf::ConstantTrue())->IsConstantTrue());
  EXPECT_TRUE(CnfToDnf(Cnf::ConstantFalse())->IsConstantFalse());
}

TEST(ConversionTest, BudgetIsEnforced) {
  // n disjoint 2-terms -> CNF has 2^n clauses.
  std::vector<VarSet> terms;
  for (VarId i = 0; i < 16; ++i) {
    terms.push_back(VarSet{2 * i, 2 * i + 1});
  }
  Dnf dnf(std::move(terms));
  NormalFormLimits limits;
  limits.max_sets = 1000;
  Result<Cnf> r = DnfToCnf(dnf, limits);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(ConversionTest, FromExprMatchesSemantics) {
  // (x0 ∨ x1) ∧ (x2 ∨ x3): DNF has 4 terms, CNF has the 2 clauses.
  BoolExprPtr e = BoolExpr::And(BoolExpr::Or(BoolExpr::Var(0), BoolExpr::Var(1)),
                                BoolExpr::Or(BoolExpr::Var(2), BoolExpr::Var(3)));
  Dnf dnf = *Dnf::FromExpr(e);
  Cnf cnf = *Cnf::FromExpr(e);
  EXPECT_EQ(dnf.num_terms(), 4u);
  EXPECT_EQ(cnf.num_clauses(), 2u);
  EXPECT_TRUE(EquivalentByEnumeration(dnf.ToExpr(), e));
  EXPECT_TRUE(EquivalentByEnumeration(cnf.ToExpr(), e));
}

TEST(ConversionTest, FromExprConstants) {
  EXPECT_TRUE(Dnf::FromExpr(BoolExpr::True())->IsConstantTrue());
  EXPECT_TRUE(Dnf::FromExpr(BoolExpr::False())->IsConstantFalse());
  EXPECT_TRUE(Cnf::FromExpr(BoolExpr::True())->IsConstantTrue());
  EXPECT_TRUE(Cnf::FromExpr(BoolExpr::False())->IsConstantFalse());
}

// --- Property tests: random expressions --------------------------------------------------

// Builds a random positive Boolean expression over `num_vars` variables.
BoolExprPtr RandomExpr(Rng& rng, int depth, VarId num_vars) {
  if (depth == 0 || rng.UniformReal() < 0.35) {
    return BoolExpr::Var(static_cast<VarId>(rng.UniformIndex(num_vars)));
  }
  size_t arity = 2 + rng.UniformIndex(2);
  std::vector<BoolExprPtr> children;
  for (size_t i = 0; i < arity; ++i) {
    children.push_back(RandomExpr(rng, depth - 1, num_vars));
  }
  return rng.Bernoulli(0.5) ? BoolExpr::AndN(std::move(children))
                            : BoolExpr::OrN(std::move(children));
}

class NormalFormPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(NormalFormPropertyTest, DnfEquivalentToExpr) {
  Rng rng(1000 + GetParam());
  BoolExprPtr e = RandomExpr(rng, 3, 8);
  Dnf dnf = *Dnf::FromExpr(e);
  EXPECT_TRUE(EquivalentByEnumeration(dnf.ToExpr(), e))
      << "expr: " << e->ToString() << "\ndnf: " << dnf.ToString();
}

TEST_P(NormalFormPropertyTest, CnfEquivalentToExpr) {
  Rng rng(2000 + GetParam());
  BoolExprPtr e = RandomExpr(rng, 3, 8);
  Cnf cnf = *Cnf::FromExpr(e);
  EXPECT_TRUE(EquivalentByEnumeration(cnf.ToExpr(), e))
      << "expr: " << e->ToString() << "\ncnf: " << cnf.ToString();
}

TEST_P(NormalFormPropertyTest, DnfCnfRoundTrip) {
  Rng rng(3000 + GetParam());
  BoolExprPtr e = RandomExpr(rng, 3, 8);
  Dnf dnf = *Dnf::FromExpr(e);
  Cnf cnf = *DnfToCnf(dnf);
  Dnf back = *CnfToDnf(cnf);
  // Both minimal monotone DNFs of the same function must be identical.
  EXPECT_EQ(dnf, back) << "expr: " << e->ToString();
}

TEST_P(NormalFormPropertyTest, EvaluationAgreesUnderPartialValuations) {
  Rng rng(4000 + GetParam());
  BoolExprPtr e = RandomExpr(rng, 3, 8);
  Dnf dnf = *Dnf::FromExpr(e);
  Cnf cnf = *Cnf::FromExpr(e);
  // Random partial valuations: Dnf and Cnf Kleene evaluation must agree
  // whenever the value is determined.
  for (int trial = 0; trial < 30; ++trial) {
    PartialValuation val;
    for (VarId x = 0; x < 8; ++x) {
      double roll = rng.UniformReal();
      if (roll < 0.33) {
        val.Set(x, Truth::kTrue);
      } else if (roll < 0.66) {
        val.Set(x, Truth::kFalse);
      }
    }
    Truth td = dnf.Evaluate(val);
    Truth tc = cnf.Evaluate(val);
    Truth te = e->Evaluate(val);
    // DNF/CNF evaluation may be MORE informative than Kleene on the raw tree
    // (normal forms resolve some unknowns), but never contradictory.
    if (te != Truth::kUnknown) {
      EXPECT_EQ(td, te);
    }
    if (td != Truth::kUnknown && tc != Truth::kUnknown) {
      EXPECT_EQ(td, tc);
    }
  }
}

TEST_P(NormalFormPropertyTest, SimplifyMatchesSemantics) {
  Rng rng(5000 + GetParam());
  BoolExprPtr e = RandomExpr(rng, 3, 8);
  Dnf dnf = *Dnf::FromExpr(e);
  PartialValuation val;
  for (VarId x = 0; x < 8; ++x) {
    double roll = rng.UniformReal();
    if (roll < 0.3) {
      val.Set(x, Truth::kTrue);
    } else if (roll < 0.6) {
      val.Set(x, Truth::kFalse);
    }
  }
  Dnf simplified = dnf.Simplify(val);
  // The simplified formula, with the valuation substituted into the
  // original, must be logically equivalent on the remaining variables.
  for (int trial = 0; trial < 50; ++trial) {
    PartialValuation full = val;
    for (VarId x = 0; x < 8; ++x) {
      if (full.Get(x) == Truth::kUnknown) {
        full.Set(x, rng.Bernoulli(0.5));
      }
    }
    EXPECT_EQ(dnf.Evaluate(full), simplified.Evaluate(full));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, NormalFormPropertyTest,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace consentdb::provenance
