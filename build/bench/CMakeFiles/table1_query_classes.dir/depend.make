# Empty dependencies file for table1_query_classes.
# This may be replaced when dependencies are built.
