#include "consentdb/relational/value.h"

#include <sstream>

#include "consentdb/util/check.h"

namespace consentdb::relational {

const char* ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return "INT64";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
    case ValueType::kBool:
      return "BOOL";
  }
  return "UNKNOWN";
}

ValueType Value::type() const {
  switch (data_.index()) {
    case 0:
      return ValueType::kNull;
    case 1:
      return ValueType::kInt64;
    case 2:
      return ValueType::kDouble;
    case 3:
      return ValueType::kString;
    case 4:
      return ValueType::kBool;
  }
  return ValueType::kNull;
}

int64_t Value::AsInt64() const {
  CONSENTDB_CHECK(std::holds_alternative<int64_t>(data_),
                  "Value is not INT64: " + ToString());
  return std::get<int64_t>(data_);
}

double Value::AsDouble() const {
  CONSENTDB_CHECK(std::holds_alternative<double>(data_),
                  "Value is not DOUBLE: " + ToString());
  return std::get<double>(data_);
}

const std::string& Value::AsString() const {
  CONSENTDB_CHECK(std::holds_alternative<std::string>(data_),
                  "Value is not STRING: " + ToString());
  return std::get<std::string>(data_);
}

bool Value::AsBool() const {
  CONSENTDB_CHECK(std::holds_alternative<bool>(data_),
                  "Value is not BOOL: " + ToString());
  return std::get<bool>(data_);
}

double Value::AsNumeric() const {
  if (std::holds_alternative<int64_t>(data_)) {
    return static_cast<double>(std::get<int64_t>(data_));
  }
  CONSENTDB_CHECK(std::holds_alternative<double>(data_),
                  "Value is not numeric: " + ToString());
  return std::get<double>(data_);
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return std::to_string(std::get<int64_t>(data_));
    case ValueType::kDouble: {
      std::ostringstream os;
      os << std::get<double>(data_);
      return os.str();
    }
    case ValueType::kString:
      return "'" + std::get<std::string>(data_) + "'";
    case ValueType::kBool:
      return std::get<bool>(data_) ? "true" : "false";
  }
  return "NULL";
}

size_t Value::Hash() const {
  size_t type_tag = data_.index();
  size_t payload = 0;
  switch (type()) {
    case ValueType::kNull:
      payload = 0;
      break;
    case ValueType::kInt64:
      payload = std::hash<int64_t>{}(std::get<int64_t>(data_));
      break;
    case ValueType::kDouble:
      payload = std::hash<double>{}(std::get<double>(data_));
      break;
    case ValueType::kString:
      payload = std::hash<std::string>{}(std::get<std::string>(data_));
      break;
    case ValueType::kBool:
      payload = std::hash<bool>{}(std::get<bool>(data_));
      break;
  }
  // Mix the type tag so equal payloads of different types do not collide.
  return payload ^ (type_tag * 0x9e3779b97f4a7c15ULL);
}

bool operator==(const Value& a, const Value& b) { return a.data_ == b.data_; }

bool operator<(const Value& a, const Value& b) {
  if (a.data_.index() != b.data_.index()) {
    return a.data_.index() < b.data_.index();
  }
  return a.data_ < b.data_;
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

}  // namespace consentdb::relational
