#!/usr/bin/env python3
"""Shared finding schema and suppression machinery for the consentdb static
tooling (consentdb_lint.py and consentdb_analyze.py).

Both tools report findings in one shape — `{path, line, rule, message}` —
so the CI lint/analyze jobs can render GitHub annotations from a single code
path, and both honour the same suppression comments:

  // lint:allow <rule>[,<rule>...] [-- <reason>]
      Suppresses the named rules on the same line, or on the next line when
      the comment stands alone. The `-- <reason>` tail is optional for the
      lint rules and *required* for the analyzer rules (callers ask via
      `require_reason`): an analyzer finding is only silenced by a
      justification a reviewer can read.

  // det:order-insensitive <why>
      The dedicated suppression for the determinism audit's
      det-unordered-iter rule: iterating an unordered container is fine when
      the loop provably cannot leak its order (e.g. the values are sorted
      immediately after, or folded through an order-independent reduction).
      The <why> is mandatory — an empty justification does not suppress.

Exit-code convention shared by both CLIs: 0 clean, 1 findings, 2 usage/IO.
"""

from __future__ import annotations

import json
import re
import sys
from pathlib import Path
from typing import Optional, TextIO, Union

ALLOW_RE = re.compile(r"//\s*lint:allow\s+([\w,-]+)(?:\s+--\s*(.*))?")
DET_SUPPRESS_RE = re.compile(r"//\s*det:order-insensitive\b[ \t]*(.*)")


class Finding:
    """One diagnostic: a (path, line, rule) anchor plus a human message."""

    def __init__(self, path: Union[Path, str], line: int, rule: str,
                 message: str):
        self.path = Path(path)
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def to_dict(self) -> dict:
        return {
            "path": str(self.path),
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
        }


def emit(findings: list[Finding], fmt: str = "text",
         out: Optional[TextIO] = None) -> None:
    """Prints findings as lines (text) or as one JSON array (json)."""
    if out is None:
        out = sys.stdout  # resolved at call time so stdout redirection works
    if fmt == "json":
        json.dump([f.to_dict() for f in findings], out, indent=2)
        out.write("\n")
    else:
        for f in findings:
            print(f, file=out)


def allowed_rules(lines: list[str], idx: int,
                  require_reason: bool = False) -> set[str]:
    """Rules suppressed on line index `idx` (0-based): an inline
    `lint:allow`, or a preceding comment-only line carrying one. With
    `require_reason`, only suppressions carrying a non-empty `-- <reason>`
    tail count."""
    allowed: set[str] = set()
    for text, standalone_only in ((lines[idx], False),
                                  (lines[idx - 1].strip() if idx > 0 else "",
                                   True)):
        m = ALLOW_RE.search(text)
        if not m:
            continue
        if standalone_only and not text.startswith("//"):
            continue
        if require_reason and not (m.group(2) or "").strip():
            continue
        allowed.update(m.group(1).split(","))
    return allowed


def det_justification(lines: list[str], idx: int) -> Optional[str]:
    """The `det:order-insensitive` justification covering line `idx`, taken
    from an inline comment or a standalone comment on the previous line.
    Returns None when absent; returns "" (falsy — caller must NOT suppress)
    when the marker is present but carries no written why."""
    m = DET_SUPPRESS_RE.search(lines[idx])
    if m is None and idx > 0:
        prev = lines[idx - 1].strip()
        if prev.startswith("//"):
            m = DET_SUPPRESS_RE.search(prev)
    if m is None:
        return None
    return m.group(1).strip()
