// Logical plan rewrites. Probing cost (the paper's metric) is unaffected by
// the plan shape — provenance is plan-invariant for SPJU under set
// semantics — but evaluation cost is not: the naive Product-then-Select
// plans produced by the parser enumerate full cross products. Selection
// pushdown keeps the annotated-evaluation step (Prop. III.3) practical on
// larger databases.
//
// Rewrites performed by Optimize():
//   * Select-merge:      Select(p, Select(q, X))      -> Select(p AND q, X)
//   * Pushdown/Product:  conjuncts binding entirely on one side of a
//                         Product move below it
//   * Pushdown/Union:    selections distribute over every branch
//   * Pushdown/Project:  conjuncts whose columns are all projection outputs
//                         are rewritten to the input columns and pushed
//
// All rewrites preserve the query result AND the tuple annotations (tested
// by property tests against the unoptimised plan).

#ifndef CONSENTDB_QUERY_OPTIMIZE_H_
#define CONSENTDB_QUERY_OPTIMIZE_H_

#include "consentdb/query/plan.h"
#include "consentdb/util/result.h"

namespace consentdb::query {

// Rewrites `plan` over `db` (schemas are needed to decide where conjuncts
// bind). Returns a semantically equivalent plan.
[[nodiscard]] Result<PlanPtr> Optimize(const PlanPtr& plan, const relational::Database& db);

// Splits a predicate into its top-level conjuncts (AND flattened; OR and
// comparisons are atomic units).
std::vector<PredicatePtr> SplitConjuncts(const PredicatePtr& predicate);

// True when every column the predicate references resolves in `schema`.
bool BindsAgainst(const PredicatePtr& predicate,
                  const relational::Schema& schema);

}  // namespace consentdb::query

#endif  // CONSENTDB_QUERY_OPTIMIZE_H_
