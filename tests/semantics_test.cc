// Documented-semantics tests: NULL handling and set semantics in SPJU
// evaluation. ConsentDB deliberately deviates from SQL's three-valued NULL
// comparisons (NULL = NULL is TRUE here) because consent bookkeeping needs
// set semantics over tuple identity — these tests pin that choice.

#include <gtest/gtest.h>

#include "consentdb/eval/evaluate.h"
#include "consentdb/provenance/normal_form.h"
#include "consentdb/query/parser.h"

namespace consentdb {
namespace {

using consent::SharedDatabase;
using eval::AnnotatedRelation;
using query::ParseQuery;
using query::PlanPtr;
using relational::Column;
using relational::Relation;
using relational::Schema;
using relational::Tuple;
using relational::Value;
using relational::ValueType;

SharedDatabase DbWithNulls() {
  SharedDatabase sdb;
  EXPECT_TRUE(sdb.CreateRelation("T", Schema({Column{"id", ValueType::kInt64},
                                              Column{"tag", ValueType::kString}}))
                  .ok());
  (void)*sdb.InsertTuple("T", Tuple{Value(1), Value("a")});
  (void)*sdb.InsertTuple("T", Tuple{Value(2), Value::Null()});
  (void)*sdb.InsertTuple("T", Tuple{Value(3), Value("a")});
  (void)*sdb.InsertTuple("T", Tuple{Value::Null(), Value("b")});
  return sdb;
}

TEST(NullSemanticsTest, EqualityWithNullLiteral) {
  SharedDatabase sdb = DbWithNulls();
  Relation r = *eval::Evaluate(*ParseQuery("SELECT id FROM T WHERE tag = NULL"),
                               sdb.database());
  // Exactly the row whose tag is NULL (NULL = NULL is TRUE here, unlike SQL).
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r.tuple(0), Tuple{Value(2)});
}

TEST(NullSemanticsTest, NullNeverEqualsValues) {
  SharedDatabase sdb = DbWithNulls();
  Relation r = *eval::Evaluate(*ParseQuery("SELECT id FROM T WHERE tag = 'b'"),
                               sdb.database());
  ASSERT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.tuple(0).at(0).is_null());
}

TEST(NullSemanticsTest, NullsJoinWithNulls) {
  SharedDatabase sdb = DbWithNulls();
  // Self-join on tag: NULL tags pair with each other only.
  Relation r = *eval::Evaluate(
      *ParseQuery("SELECT x.id, y.id FROM T x, T y WHERE x.tag = y.tag"),
      sdb.database());
  // tags: a(1), NULL(2), a(3), b(NULL-id): pairs on 'a' (4), on NULL (1),
  // on 'b' (1) = 6.
  EXPECT_EQ(r.size(), 6u);
}

TEST(NullSemanticsTest, ProjectionMergesNullGroups) {
  SharedDatabase sdb = DbWithNulls();
  AnnotatedRelation out =
      *eval::EvaluateAnnotated(*ParseQuery("SELECT tag FROM T"), sdb);
  // Distinct tags: 'a', NULL, 'b'.
  EXPECT_EQ(out.size(), 3u);
  // The 'a' group merges two derivations.
  std::optional<size_t> idx = out.IndexOf(Tuple{Value("a")});
  ASSERT_TRUE(idx.has_value());
  provenance::Dnf dnf = *provenance::Dnf::FromExpr(out.annotation(*idx));
  EXPECT_EQ(dnf.num_terms(), 2u);
}

TEST(SetSemanticsTest, UnionDeduplicatesAcrossBranches) {
  SharedDatabase sdb = DbWithNulls();
  Relation r = *eval::Evaluate(
      *ParseQuery("SELECT tag FROM T UNION SELECT tag FROM T"),
      sdb.database());
  EXPECT_EQ(r.size(), 3u);  // same three distinct tags, not six
}

TEST(SetSemanticsTest, ProductOfSetsHasNoDuplicates) {
  SharedDatabase sdb = DbWithNulls();
  Relation r = *eval::Evaluate(*ParseQuery("SELECT * FROM T x, T y"),
                               sdb.database());
  EXPECT_EQ(r.size(), 16u);  // 4 x 4 distinct concatenations
}

TEST(SetSemanticsTest, OrderInsensitiveComparisons) {
  SharedDatabase sdb = DbWithNulls();
  Relation a = *eval::Evaluate(
      *ParseQuery("SELECT tag FROM T UNION SELECT tag FROM T WHERE id > 1"),
      sdb.database());
  Relation b = *eval::Evaluate(
      *ParseQuery("SELECT tag FROM T WHERE id > 1 UNION SELECT tag FROM T"),
      sdb.database());
  EXPECT_EQ(a, b);
}

TEST(NullSemanticsTest, OrderingComparisonsAgainstNull) {
  SharedDatabase sdb = DbWithNulls();
  // NULL sorts below every integer (type-tag ordering), so id > 0 excludes
  // the NULL id; combined with its complement it partitions the table.
  Relation gt = *eval::Evaluate(*ParseQuery("SELECT tag FROM T WHERE id > 0"),
                                sdb.database());
  Relation le = *eval::Evaluate(*ParseQuery("SELECT tag FROM T WHERE id <= 0"),
                                sdb.database());
  EXPECT_EQ(gt.size(), 2u);  // tags 'a', NULL (from ids 1,2,3; distinct)
  EXPECT_EQ(le.size(), 1u);  // the NULL id row ('b')
}

}  // namespace
}  // namespace consentdb
