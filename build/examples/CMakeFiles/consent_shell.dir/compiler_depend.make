# Empty compiler generated dependencies file for consent_shell.
# This may be replaced when dependencies are built.
