// SPJU logical plans: the query representation evaluated by the eval module.
//
// Five operators, exactly the algebra of Sec. III-A:
//   Scan(relation [AS alias])      — output columns qualified "alias.col"
//   Select(predicate, child)
//   Project(columns, child)        — set semantics (DISTINCT)
//   Product(left, right)           — cartesian product; equi-joins are
//                                    Select over Product (the Join helper)
//   Union(children)                — set union of type-compatible inputs

#ifndef CONSENTDB_QUERY_PLAN_H_
#define CONSENTDB_QUERY_PLAN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "consentdb/query/predicate.h"
#include "consentdb/relational/database.h"

namespace consentdb::query {

class Plan;
using PlanPtr = std::shared_ptr<const Plan>;

enum class PlanKind { kScan, kSelect, kProject, kProduct, kUnion };

class Plan {
 public:
  // `alias` defaults to the relation name.
  static PlanPtr Scan(std::string relation, std::string alias = "");
  static PlanPtr Select(PredicatePtr predicate, PlanPtr child);
  // `columns` are input column names (qualified or unique bare names);
  // `output_names` optionally renames them (same length), else the bare
  // suffix of each input name is used.
  static PlanPtr Project(std::vector<std::string> columns, PlanPtr child,
                         std::vector<std::string> output_names = {});
  static PlanPtr Product(PlanPtr left, PlanPtr right);
  static PlanPtr Union(std::vector<PlanPtr> children);
  // Sugar: Select(predicate, Product(left, right)).
  static PlanPtr Join(PlanPtr left, PlanPtr right, PredicatePtr predicate);

  PlanKind kind() const { return kind_; }
  const std::string& relation() const { return relation_; }
  const std::string& alias() const { return alias_; }
  const PredicatePtr& predicate() const { return predicate_; }
  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<std::string>& output_names() const {
    return output_names_;
  }
  const std::vector<PlanPtr>& children() const { return children_; }
  const PlanPtr& child(size_t i = 0) const;

  // The schema this plan produces over `db`; validates relation/column
  // references and union type compatibility along the way.
  [[nodiscard]] Result<relational::Schema> OutputSchema(
      const relational::Database& db) const;

  // Names of base relations scanned anywhere below this node (with
  // duplicates when a relation is scanned twice — self-joins).
  std::vector<std::string> ScannedRelations() const;

  std::string ToString() const;  // multi-line indented tree

  // Stable 64-bit structural fingerprint (FNV-1a over a canonical
  // serialization that, unlike ToString, includes projection output names).
  // Structurally identical plans always collide; the converse holds up to
  // 64-bit hash collisions, which is the contract the session engine's
  // provenance cache keys rely on.
  uint64_t Fingerprint() const;

 private:
  explicit Plan(PlanKind kind) : kind_(kind) {}
  void AppendTo(std::string* out, int indent) const;
  void FingerprintInto(std::string* out) const;

  PlanKind kind_;
  std::string relation_;
  std::string alias_;
  PredicatePtr predicate_;
  std::vector<std::string> columns_;
  std::vector<std::string> output_names_;
  std::vector<PlanPtr> children_;
};

}  // namespace consentdb::query

#endif  // CONSENTDB_QUERY_PLAN_H_
