#include "consentdb/util/json_writer.h"

#include <cmath>
#include <cstdio>

#include "consentdb/util/check.h"

namespace consentdb {

std::string JsonWriter::Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (stack_.empty()) {
    CONSENTDB_CHECK(out_.empty(), "multiple top-level JSON values");
    return;
  }
  if (stack_.back() == Scope::kObject) {
    CONSENTDB_CHECK(key_pending_, "object value without a key");
    key_pending_ = false;
    return;
  }
  if (has_value_.back()) out_ += ',';
  has_value_.back() = true;
}

void JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  stack_.push_back(Scope::kObject);
  has_value_.push_back(false);
}

void JsonWriter::EndObject() {
  CONSENTDB_CHECK(!stack_.empty() && stack_.back() == Scope::kObject,
                  "EndObject outside an object");
  CONSENTDB_CHECK(!key_pending_, "dangling key at EndObject");
  out_ += '}';
  stack_.pop_back();
  has_value_.pop_back();
}

void JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  stack_.push_back(Scope::kArray);
  has_value_.push_back(false);
}

void JsonWriter::EndArray() {
  CONSENTDB_CHECK(!stack_.empty() && stack_.back() == Scope::kArray,
                  "EndArray outside an array");
  out_ += ']';
  stack_.pop_back();
  has_value_.pop_back();
}

void JsonWriter::Key(const std::string& key) {
  CONSENTDB_CHECK(!stack_.empty() && stack_.back() == Scope::kObject,
                  "Key outside an object");
  CONSENTDB_CHECK(!key_pending_, "two keys in a row");
  if (has_value_.back()) out_ += ',';
  has_value_.back() = true;
  out_ += '"';
  out_ += Escape(key);
  out_ += "\":";
  key_pending_ = true;
}

void JsonWriter::String(const std::string& value) {
  BeforeValue();
  out_ += '"';
  out_ += Escape(value);
  out_ += '"';
}

void JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
}

void JsonWriter::Uint(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
}

void JsonWriter::Double(double value) {
  BeforeValue();
  if (std::isfinite(value)) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.12g", value);
    out_ += buf;
  } else {
    out_ += "null";  // JSON has no NaN/Inf
  }
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
}

void JsonWriter::Raw(const std::string& json) {
  BeforeValue();
  out_ += json;
}

std::string JsonWriter::TakeString() {
  CONSENTDB_CHECK(stack_.empty(), "unterminated JSON structure");
  return std::move(out_);
}

}  // namespace consentdb
