#include <gtest/gtest.h>

#include "consentdb/core/consent_manager.h"
#include "consentdb/util/json_writer.h"
#include "test_fixtures.h"

namespace consentdb {
namespace {

TEST(JsonWriterTest, EmptyObjectAndArray) {
  {
    JsonWriter w;
    w.BeginObject();
    w.EndObject();
    EXPECT_EQ(w.TakeString(), "{}");
  }
  {
    JsonWriter w;
    w.BeginArray();
    w.EndArray();
    EXPECT_EQ(w.TakeString(), "[]");
  }
}

TEST(JsonWriterTest, ScalarsAndCommas) {
  JsonWriter w;
  w.BeginObject();
  w.Key("i");
  w.Int(-3);
  w.Key("u");
  w.Uint(7);
  w.Key("d");
  w.Double(1.5);
  w.Key("b");
  w.Bool(true);
  w.Key("n");
  w.Null();
  w.EndObject();
  EXPECT_EQ(w.TakeString(),
            R"({"i":-3,"u":7,"d":1.5,"b":true,"n":null})");
}

TEST(JsonWriterTest, NestedStructures) {
  JsonWriter w;
  w.BeginObject();
  w.Key("list");
  w.BeginArray();
  w.Int(1);
  w.Int(2);
  w.BeginObject();
  w.Key("x");
  w.String("y");
  w.EndObject();
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(w.TakeString(), R"({"list":[1,2,{"x":"y"}]})");
}

TEST(JsonWriterTest, EscapesStrings) {
  JsonWriter w;
  w.BeginArray();
  w.String("quote\" backslash\\ newline\n tab\t");
  w.String(std::string("ctrl") + '\x01');
  w.EndArray();
  EXPECT_EQ(w.TakeString(),
            "[\"quote\\\" backslash\\\\ newline\\n tab\\t\",\"ctrl\\u0001\"]");
}

TEST(JsonWriterTest, DoubleNonFiniteBecomesNull) {
  JsonWriter w;
  w.BeginArray();
  w.Double(std::numeric_limits<double>::infinity());
  w.Double(std::nan(""));
  w.EndArray();
  EXPECT_EQ(w.TakeString(), "[null,null]");
}

TEST(JsonWriterTest, TopLevelScalar) {
  JsonWriter w;
  w.String("alone");
  EXPECT_EQ(w.TakeString(), "\"alone\"");
}

// --- SessionReport::ToJson ---------------------------------------------------------

TEST(SessionReportJsonTest, ExportsVerdictsAndTrace) {
  consent::SharedDatabase sdb = testing::RecruitmentDatabase();
  core::ConsentManager manager(sdb);
  provenance::PartialValuation all_true(sdb.pool().size());
  for (provenance::VarId x = 0; x < sdb.pool().size(); ++x) {
    all_true.Set(x, true);
  }
  consent::ValuationOracle oracle(all_true);
  core::SessionReport report =
      *manager.DecideAll(testing::RecruitmentQuerySql(), oracle);
  std::string json = report.ToJson();
  EXPECT_NE(json.find("\"algorithm\":"), std::string::npos);
  EXPECT_NE(json.find("\"num_probes\":" + std::to_string(report.num_probes)),
            std::string::npos);
  EXPECT_NE(json.find("PennSolarExperts"), std::string::npos);
  EXPECT_NE(json.find("\"shareable\":true"), std::string::npos);
  EXPECT_NE(json.find("\"trace\":["), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

}  // namespace
}  // namespace consentdb
