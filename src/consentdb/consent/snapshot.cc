#include "consentdb/consent/snapshot.h"

#include <cstdlib>
#include <map>
#include <sstream>

#include "consentdb/relational/csv.h"
#include "consentdb/util/check.h"
#include "consentdb/util/string_util.h"

namespace consentdb::consent {

using relational::Column;
using relational::Relation;
using relational::Schema;
using relational::Tuple;
using relational::Value;
using relational::ValueType;

namespace {

constexpr char kMagic[] = "consentdb-snapshot 1";
constexpr char kLedgerMagic[] = "consentdb-ledger 1";

std::string CsvField(const std::string& s) {
  if (s.find_first_of(",\"\n\r") == std::string::npos && !s.empty()) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  return out + "\"";
}

Result<ValueType> ParseType(const std::string& name) {
  if (name == "INT64") return ValueType::kInt64;
  if (name == "DOUBLE") return ValueType::kDouble;
  if (name == "STRING") return ValueType::kString;
  if (name == "BOOL") return ValueType::kBool;
  return Status::InvalidArgument("unknown column type: " + name);
}

// Formats one tuple as a CSV record using the same conventions as the CSV
// module (empty unquoted field = NULL, strings quoted when needed).
std::string FormatRow(const Tuple& t) {
  std::string out;
  for (size_t i = 0; i < t.size(); ++i) {
    if (i > 0) out += ',';
    const Value& v = t.at(i);
    switch (v.type()) {
      case ValueType::kNull:
        break;  // empty field
      case ValueType::kString:
        out += CsvField(v.AsString());
        break;
      case ValueType::kInt64:
        out += std::to_string(v.AsInt64());
        break;
      case ValueType::kDouble: {
        std::ostringstream os;
        os << v.AsDouble();
        out += os.str();
        break;
      }
      case ValueType::kBool:
        out += v.AsBool() ? "true" : "false";
        break;
    }
  }
  return out;
}

Result<Value> ParseValue(const std::string& field, bool quoted,
                         ValueType type) {
  if (field.empty() && !quoted) return Value::Null();
  switch (type) {
    case ValueType::kInt64:
      try {
        return Value(static_cast<int64_t>(std::stoll(field)));
      } catch (const std::exception&) {
        return Status::InvalidArgument("bad integer: " + field);
      }
    case ValueType::kDouble:
      try {
        return Value(std::stod(field));
      } catch (const std::exception&) {
        return Status::InvalidArgument("bad number: " + field);
      }
    case ValueType::kBool:
      if (EqualsIgnoreCase(field, "true")) return Value(true);
      if (EqualsIgnoreCase(field, "false")) return Value(false);
      return Status::InvalidArgument("bad boolean: " + field);
    case ValueType::kString:
      return Value(field);
    case ValueType::kNull:
      return Status::InvalidArgument("NULL column type in snapshot");
  }
  return Status::Internal("unreachable");
}

Result<std::string> NextLine(std::istream& in, const char* what) {
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument(std::string("snapshot truncated: expected ") +
                                   what);
  }
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return line;
}

}  // namespace

void SaveSnapshot(const SharedDatabase& sdb, std::ostream& out) {
  out << kMagic << '\n';
  for (const std::string& name : sdb.database().RelationNames()) {
    const Relation& rel = sdb.database().RelationOrDie(name);
    out << "relation " << name << '\n';
    out << "columns " << rel.schema().num_columns() << '\n';
    for (const Column& c : rel.schema().columns()) {
      out << CsvField(c.name) << ',' << ValueTypeToString(c.type) << '\n';
    }
    out << "rows " << rel.size() << '\n';
    for (const Tuple& t : rel.tuples()) out << FormatRow(t) << '\n';
    out << "annotations\n";
    for (size_t i = 0; i < rel.size(); ++i) {
      Result<provenance::VarId> var = sdb.AnnotationOf(name, i);
      CONSENTDB_CHECK(var.ok(), var.status().ToString());
      out << *var << ',' << CsvField(sdb.pool().owner(*var)) << ','
          << sdb.pool().probability(*var) << '\n';
    }
    out << "end\n";
  }
}

std::string SaveSnapshot(const SharedDatabase& sdb) {
  std::ostringstream out;
  SaveSnapshot(sdb, out);
  return out.str();
}

namespace {

// One parsed-but-not-yet-inserted snapshot row: tuple plus annotation.
struct PendingRow {
  uint64_t stored_id;
  Tuple tuple;
  std::string owner;
  double prior;
};

struct PendingRelation {
  std::string name;
  std::vector<PendingRow> rows;  // file order == required row order
};

}  // namespace

Result<SharedDatabase> LoadSnapshot(
    std::istream& in, std::map<uint64_t, provenance::VarId>* var_map_out) {
  CONSENTDB_ASSIGN_OR_RETURN(std::string magic, NextLine(in, "header"));
  if (magic != kMagic) {
    return Status::InvalidArgument("not a consentdb snapshot: " + magic);
  }
  SharedDatabase sdb;
  // Snapshot var id -> rebuilt variable (for block annotations).
  std::map<uint64_t, provenance::VarId> var_map;
  std::vector<PendingRelation> pending;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (StripWhitespace(line).empty()) continue;
    if (line.rfind("relation ", 0) != 0) {
      return Status::InvalidArgument("expected 'relation <name>', got: " + line);
    }
    std::string name = line.substr(9);

    CONSENTDB_ASSIGN_OR_RETURN(std::string columns_line,
                               NextLine(in, "columns"));
    if (columns_line.rfind("columns ", 0) != 0) {
      return Status::InvalidArgument("expected 'columns <n>', got: " +
                                     columns_line);
    }
    size_t num_columns = std::strtoull(columns_line.c_str() + 8, nullptr, 10);
    std::vector<Column> columns;
    for (size_t i = 0; i < num_columns; ++i) {
      CONSENTDB_ASSIGN_OR_RETURN(std::string col_line, NextLine(in, "column"));
      std::vector<bool> quoted;
      CONSENTDB_ASSIGN_OR_RETURN(
          std::vector<std::string> fields,
          relational::SplitCsvRecord(col_line, &quoted));
      if (fields.size() != 2) {
        return Status::InvalidArgument("bad column line: " + col_line);
      }
      CONSENTDB_ASSIGN_OR_RETURN(ValueType type, ParseType(fields[1]));
      columns.push_back(Column{fields[0], type});
    }
    CONSENTDB_ASSIGN_OR_RETURN(Schema schema, Schema::Create(columns));
    CONSENTDB_RETURN_IF_ERROR(sdb.CreateRelation(name, schema));

    CONSENTDB_ASSIGN_OR_RETURN(std::string rows_line, NextLine(in, "rows"));
    if (rows_line.rfind("rows ", 0) != 0) {
      return Status::InvalidArgument("expected 'rows <n>', got: " + rows_line);
    }
    size_t num_rows = std::strtoull(rows_line.c_str() + 5, nullptr, 10);
    std::vector<Tuple> tuples;
    for (size_t r = 0; r < num_rows; ++r) {
      CONSENTDB_ASSIGN_OR_RETURN(std::string row_line, NextLine(in, "row"));
      std::vector<bool> quoted;
      CONSENTDB_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                                 relational::SplitCsvRecord(row_line, &quoted));
      if (fields.size() != num_columns) {
        return Status::InvalidArgument("row arity mismatch: " + row_line);
      }
      std::vector<Value> values;
      for (size_t i = 0; i < fields.size(); ++i) {
        CONSENTDB_ASSIGN_OR_RETURN(
            Value v, ParseValue(fields[i], quoted[i], columns[i].type));
        values.push_back(std::move(v));
      }
      tuples.emplace_back(std::move(values));
    }

    CONSENTDB_ASSIGN_OR_RETURN(std::string annot_header,
                               NextLine(in, "annotations"));
    if (annot_header != "annotations") {
      return Status::InvalidArgument("expected 'annotations', got: " +
                                     annot_header);
    }
    PendingRelation rel;
    rel.name = name;
    for (size_t r = 0; r < num_rows; ++r) {
      CONSENTDB_ASSIGN_OR_RETURN(std::string annot_line,
                                 NextLine(in, "annotation"));
      std::vector<bool> quoted;
      CONSENTDB_ASSIGN_OR_RETURN(
          std::vector<std::string> fields,
          relational::SplitCsvRecord(annot_line, &quoted));
      if (fields.size() != 3) {
        return Status::InvalidArgument("bad annotation line: " + annot_line);
      }
      uint64_t snapshot_var = std::strtoull(fields[0].c_str(), nullptr, 10);
      double prior = std::strtod(fields[2].c_str(), nullptr);
      if (prior < 0.0 || prior > 1.0) {
        return Status::InvalidArgument("prior out of range: " + annot_line);
      }
      rel.rows.push_back(
          PendingRow{snapshot_var, std::move(tuples[r]), fields[1], prior});
    }
    pending.push_back(std::move(rel));

    CONSENTDB_ASSIGN_OR_RETURN(std::string end_line, NextLine(in, "end"));
    if (end_line != "end") {
      return Status::InvalidArgument("expected 'end', got: " + end_line);
    }
  }

  // Insertion phase. Variables must be recreated in increasing stored-id
  // order so that rebuilt ids equal the ids SaveSnapshot wrote (strategies
  // break ties by VarId, so id stability is what makes a session resumed
  // from a checkpoint probe in exactly the pre-crash order). The constraint
  // pulling the other way is that rows of one relation must be appended in
  // file order. Both hold simultaneously for every SaveSnapshot-produced
  // file: repeatedly flush head rows whose variable already exists (block
  // members), then create the smallest variable sitting at some relation's
  // head. Always makes progress, so foreign files with odd id orderings
  // still load — they merely get renumbered (reported via var_map).
  size_t remaining = 0;
  std::vector<size_t> head(pending.size(), 0);
  for (const PendingRelation& rel : pending) remaining += rel.rows.size();
  while (remaining > 0) {
    for (size_t ri = 0; ri < pending.size(); ++ri) {
      PendingRelation& rel = pending[ri];
      while (head[ri] < rel.rows.size()) {
        auto it = var_map.find(rel.rows[head[ri]].stored_id);
        if (it == var_map.end()) break;
        CONSENTDB_RETURN_IF_ERROR(sdb.InsertTupleInBlock(
            rel.name, std::move(rel.rows[head[ri]].tuple), it->second));
        ++head[ri];
        --remaining;
      }
    }
    if (remaining == 0) break;
    size_t best = pending.size();
    for (size_t ri = 0; ri < pending.size(); ++ri) {
      if (head[ri] >= pending[ri].rows.size()) continue;
      if (best == pending.size() ||
          pending[ri].rows[head[ri]].stored_id <
              pending[best].rows[head[best]].stored_id) {
        best = ri;
      }
    }
    PendingRow& row = pending[best].rows[head[best]];
    CONSENTDB_ASSIGN_OR_RETURN(
        provenance::VarId rebuilt,
        sdb.InsertTuple(pending[best].name, std::move(row.tuple), row.owner,
                        row.prior));
    var_map.emplace(row.stored_id, rebuilt);
    ++head[best];
    --remaining;
  }
  if (var_map_out != nullptr) *var_map_out = std::move(var_map);
  return sdb;
}

Result<SharedDatabase> LoadSnapshot(
    const std::string& text, std::map<uint64_t, provenance::VarId>* var_map) {
  std::istringstream in(text);
  return LoadSnapshot(in, var_map);
}

std::string FormatSnapshotRow(const Tuple& t) { return FormatRow(t); }

Result<Tuple> ParseSnapshotRow(const std::string& line, const Schema& schema) {
  std::vector<bool> quoted;
  CONSENTDB_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                             relational::SplitCsvRecord(line, &quoted));
  if (fields.size() != schema.num_columns()) {
    return Status::InvalidArgument("row arity mismatch: " + line);
  }
  std::vector<Value> values;
  for (size_t i = 0; i < fields.size(); ++i) {
    CONSENTDB_ASSIGN_OR_RETURN(
        Value v, ParseValue(fields[i], quoted[i], schema.columns()[i].type));
    values.push_back(std::move(v));
  }
  return Tuple(std::move(values));
}

void SaveLedgerSnapshot(
    const std::vector<std::pair<provenance::VarId, bool>>& answers,
    std::ostream& out) {
  out << kLedgerMagic << '\n';
  out << "answers " << answers.size() << '\n';
  for (const auto& [x, answer] : answers) {
    out << x << ',' << (answer ? 1 : 0) << '\n';
  }
  out << "end\n";
}

std::string SaveLedgerSnapshot(
    const std::vector<std::pair<provenance::VarId, bool>>& answers) {
  std::ostringstream out;
  SaveLedgerSnapshot(answers, out);
  return out.str();
}

Result<std::vector<std::pair<provenance::VarId, bool>>> LoadLedgerSnapshot(
    std::istream& in) {
  CONSENTDB_ASSIGN_OR_RETURN(std::string magic, NextLine(in, "header"));
  if (magic != kLedgerMagic) {
    return Status::InvalidArgument("not a consentdb ledger snapshot: " + magic);
  }
  CONSENTDB_ASSIGN_OR_RETURN(std::string count_line, NextLine(in, "answers"));
  if (count_line.rfind("answers ", 0) != 0) {
    return Status::InvalidArgument("expected 'answers <n>', got: " +
                                   count_line);
  }
  const size_t n = std::strtoull(count_line.c_str() + 8, nullptr, 10);
  std::vector<std::pair<provenance::VarId, bool>> answers;
  answers.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    CONSENTDB_ASSIGN_OR_RETURN(std::string line, NextLine(in, "answer"));
    char* after_var = nullptr;
    const uint64_t var = std::strtoull(line.c_str(), &after_var, 10);
    if (after_var == line.c_str() || *after_var != ',' ||
        (after_var[1] != '0' && after_var[1] != '1') || after_var[2] != '\0') {
      return Status::InvalidArgument("bad ledger answer line: " + line);
    }
    answers.emplace_back(static_cast<provenance::VarId>(var),
                         after_var[1] == '1');
  }
  CONSENTDB_ASSIGN_OR_RETURN(std::string end_line, NextLine(in, "end"));
  if (end_line != "end") {
    return Status::InvalidArgument("expected 'end', got: " + end_line);
  }
  return answers;
}

Result<std::vector<std::pair<provenance::VarId, bool>>> LoadLedgerSnapshot(
    const std::string& text) {
  std::istringstream in(text);
  return LoadLedgerSnapshot(in);
}

}  // namespace consentdb::consent
