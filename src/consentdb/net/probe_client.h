// ProbeClient: the peer-side driver of a networked consent session.
//
// Decide() opens a session on a ProbeServer, answers the server's
// ProbeRequests from a local ProbeOracle (the client is where the data
// owner lives), and returns the finished SessionReport as its canonical
// JSON — byte-identical to what an in-process RunPrepared of the same
// query against the same answers would report.
//
// The client is built for lossy transports: a dropped connection triggers
// a RetryPolicy-scheduled reconnect that re-sends the *same* OpenSession
// (session ids are client-chosen, so re-opening resumes the server-side
// session instead of starting over), and a per-session answer cache replays
// answers the server re-requests after a resume without touching the oracle
// again — zero duplicate peer probes, no matter how often the conversation
// is torn down and replayed.
//
// Decide() blocks its caller. Cooperative single-threaded tests (the chaos
// harness) supply `idle`, invoked whenever nothing is readable, to pump the
// server and advance the virtual clock; real-socket callers leave it unset
// and the client naps on the clock between polls.

#ifndef CONSENTDB_NET_PROBE_CLIENT_H_
#define CONSENTDB_NET_PROBE_CLIENT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "consentdb/consent/oracle.h"
#include "consentdb/core/consent_manager.h"
#include "consentdb/net/frame.h"
#include "consentdb/net/protocol.h"
#include "consentdb/util/clock.h"
#include "consentdb/util/transport.h"

namespace consentdb::net {

struct ProbeClientOptions {
  std::string tenant = "default";
  // High half of every session id this client mints; give each client of a
  // shared server a distinct id or their sessions collide.
  uint32_t client_id = 1;
  // Propagated to the server in OpenSession (0 = server default).
  int64_t session_deadline_nanos = 0;
  // Reconnect schedule after connection loss. max_attempts bounds
  // *consecutive* failures — any successfully received frame resets the
  // count.
  core::RetryPolicy reconnect;
  // Time source for reconnect backoff and idle naps; null = the real clock.
  Clock* clock = nullptr;
  // A connection that stays readable but yields no decodable frame for this
  // long is torn down and re-established (counts as one reconnect attempt).
  // This is the only defence against silent stream stalls — e.g. a length
  // prefix corrupted into a frame larger than the peer will ever send, which
  // the CRC can never reject because the frame never completes. 0 disables.
  int64_t stall_timeout_nanos = 5'000'000'000;  // 5s
  // Called whenever nothing is readable (cooperative test drivers pump the
  // server here). Unset, the client sleeps ~1ms on the clock instead.
  std::function<void()> idle;
  // Observer invoked for each fresh ProbeRequest just before the oracle is
  // asked (not for cached replays) — the shell uses it to show the peer's
  // name and owner when prompting a human.
  std::function<void(const ProbeRequest&)> on_probe;
};

class ProbeClient {
 public:
  struct ClientStats {
    uint64_t sessions = 0;
    uint64_t reconnects = 0;          // connections re-established
    uint64_t stalls = 0;              // connections torn down as stalled
    uint64_t oracle_probes = 0;       // ProbeRequests answered by the oracle
    uint64_t cached_replays = 0;      // ProbeRequests answered from the cache
    uint64_t probe_faults = 0;        // faulted oracle attempts reported
    int64_t last_retry_after_nanos = 0;  // from the last shed ErrorMsg
  };

  // `transport` and `oracle` must outlive the client. The oracle is the
  // local stand-in for the data owners this peer can reach.
  ProbeClient(Transport& transport, std::string server_address,
              consent::ProbeOracle* oracle, ProbeClientOptions options = {});

  // Runs one full consent session for `sql` and returns the SessionReport
  // JSON. `single_csv`, when set, scopes the session to that one snapshot
  // row (OPT-PEER-PROBE-SINGLE). Server-reported failures come back as the
  // wire-decoded Status (kUnavailable = shed, with stats().last_retry_after
  // carrying the hint); kUnavailable also results when reconnects are
  // exhausted.
  [[nodiscard]] Result<std::string> Decide(
      const std::string& sql,
      const std::optional<std::string>& single_csv = std::nullopt);

  const ClientStats& stats() const { return stats_; }

 private:
  Result<std::string> RunSession(const OpenSession& open);
  // Establishes a connection and queues `open` on it; kUnavailable once the
  // retry schedule is exhausted.
  [[nodiscard]] Status Reconnect(const OpenSession& open, size_t* attempt);
  [[nodiscard]] Status FlushOut();
  void DropConn();

  Transport& transport_;
  const std::string address_;
  consent::ProbeOracle* const oracle_;
  const ProbeClientOptions options_;
  Clock* clock_;

  std::unique_ptr<Connection> conn_;
  FrameParser parser_;
  std::string out_;

  uint32_t next_seq_ = 1;
  ClientStats stats_;
};

}  // namespace consentdb::net

#endif  // CONSENTDB_NET_PROBE_CLIENT_H_
