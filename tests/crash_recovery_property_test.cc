// Crash-recovery property harness: 240 seeded random crash schedules over
// full consent sessions on the recruitment database. Each schedule kills the
// process (via CrashingEnv) at a random WAL append or fsync — sometimes
// tearing the fatal write, sometimes cutting power — then restarts, recovers
// the ledger from snapshot + WAL tail, and re-runs the session.
//
// The invariants, for every schedule:
//
//   1. The resumed session's report is byte-identical (ToJson) to the
//      uninterrupted run — recovery is semantics-preserving.
//   2. No journaled variable ever reaches a peer again: the resumed
//      session's oracle traffic is exactly (distinct variables probed) −
//      (answers recovered from the journal).
//   3. Recovery itself never fails, whatever prefix of the WAL survived.
//
// Everything runs on the in-memory CrashingEnv; no real disk, no real time.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "consentdb/consent/oracle.h"
#include "consentdb/consent/wal.h"
#include "consentdb/core/consent_manager.h"
#include "consentdb/util/clock.h"
#include "consentdb/util/io.h"
#include "consentdb/util/rng.h"
#include "test_fixtures.h"

namespace consentdb {
namespace {

using consent::ConsentLedger;
using consent::RecoveryStats;
using consent::ValuationOracle;
using consent::WalOptions;
using consent::WalWriter;
using provenance::PartialValuation;
using provenance::VarId;

TEST(CrashRecoveryProperty, ResumedSessionsAreByteIdenticalAndProbeOnceEver) {
  consent::SharedDatabase sdb = testing::RecruitmentDatabase();
  core::ConsentManager manager(sdb);

  size_t crashed_schedules = 0;
  size_t torn_schedules = 0;
  size_t power_loss_schedules = 0;
  size_t completed_schedules = 0;

  for (uint64_t seed = 0; seed < 240; ++seed) {
    SCOPED_TRACE("crash schedule seed " + std::to_string(seed));
    Rng rng(52'000 + seed);
    PartialValuation hidden = sdb.pool().SampleValuation(rng);

    // Ground truth: the uninterrupted session (through a ledger, exactly
    // like the recovered run, so the comparison is apples to apples).
    ValuationOracle baseline_backing(hidden);
    ConsentLedger baseline_ledger;
    core::SessionOptions options;
    options.ledger = &baseline_ledger;
    Result<core::SessionReport> baseline = manager.DecideAll(
        testing::RecruitmentQuerySql(), baseline_backing, options);
    ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
    const size_t distinct_vars = baseline_backing.probe_count();

    // The crash schedule: kill at a random append or fsync, torn bytes and
    // power loss at random; some schedules place the crash past the end of
    // the session and thus never fire.
    CrashingEnv env;
    CrashPlan plan;
    if (rng.Bernoulli(0.25)) {
      plan.crash_at_sync = 1 + rng.UniformIndex(distinct_vars + 2);
    } else {
      plan.crash_at_append = 1 + rng.UniformIndex(distinct_vars + 2);
    }
    plan.power_loss = rng.Bernoulli(0.4);
    if (rng.Bernoulli(0.5)) {
      plan.torn_bytes = 1 + rng.UniformIndex(16);
      ++torn_schedules;
    }
    if (plan.power_loss) ++power_loss_schedules;
    env.set_plan(plan);

    // Some schedules batch fsyncs (group commit on a virtual clock), which
    // under power loss exercises losing a whole unsynced batch.
    VirtualClock wal_clock;
    WalOptions wal_options;
    if (rng.Bernoulli(0.3)) {
      wal_options.group_commit_window_nanos = 1'000'000;
      wal_options.clock = &wal_clock;
    }

    // First attempt: probe with the WAL journaling every answer, and maybe
    // crash somewhere along the way.
    bool crashed = false;
    // Open itself appends and syncs the header, so the fatal op can fire
    // anywhere from WAL creation to the final session fsync. The WalWriter
    // destructor then runs against a dead env; its best-effort sync/close
    // must tolerate that (not throwing IS part of the property).
    try {
      Result<std::unique_ptr<WalWriter>> wal =
          WalWriter::Open(&env, "ledger.wal", wal_options);
      ASSERT_TRUE(wal.ok()) << wal.status().ToString();
      ConsentLedger ledger;
      const uint64_t compact_every =
          rng.Bernoulli(0.25) ? 1 + rng.UniformIndex(4) : 0;
      ledger.AttachJournal(wal.value().get(), compact_every);
      ValuationOracle backing(hidden);
      core::SessionOptions first_options;
      first_options.ledger = &ledger;
      Result<core::SessionReport> first = manager.DecideAll(
          testing::RecruitmentQuerySql(), backing, first_options);
      ASSERT_TRUE(first.ok()) << first.status().ToString();
      Status synced = wal.value()->Sync();
      ASSERT_TRUE(synced.ok()) << synced.ToString();
      // The schedule never fired: the journaled run must already match.
      EXPECT_EQ(first.value().ToJson(), baseline.value().ToJson());
    } catch (const CrashInjected&) {
      crashed = true;
    }
    if (crashed) {
      ++crashed_schedules;
    } else {
      ++completed_schedules;
    }

    // Reboot and recover whatever prefix of the journal survived.
    env.Restart();
    ConsentLedger recovered;
    Result<RecoveryStats> stats =
        consent::RecoverLedger(&env, "ledger.wal", &recovered);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    const uint64_t replayed = recovered.restored_answers();
    ASSERT_LE(replayed, distinct_vars);

    // Invariant 1 + 2: the resumed session reports byte-identically, and
    // peers are asked only the not-yet-journaled variables.
    ValuationOracle resumed_backing(hidden);
    core::SessionOptions resume_options;
    resume_options.ledger = &recovered;
    Result<core::SessionReport> resumed = manager.DecideAll(
        testing::RecruitmentQuerySql(), resumed_backing, resume_options);
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
    EXPECT_EQ(resumed.value().ToJson(), baseline.value().ToJson());
    EXPECT_EQ(resumed_backing.probe_count(), distinct_vars - replayed);
  }

  // The generator must exercise every regime, including actual crashes,
  // torn writes, power cuts and crash-free completions.
  EXPECT_GT(crashed_schedules, 100u);
  EXPECT_GT(completed_schedules, 10u);
  EXPECT_GT(torn_schedules, 60u);
  EXPECT_GT(power_loss_schedules, 60u);
}

// The same property with repeated crashes in ONE schedule: crash, recover,
// crash again mid-resume, recover again — consent already journaled must
// survive arbitrarily many restarts, and the final report is still exact.
TEST(CrashRecoveryProperty, RepeatedCrashesNeverLoseJournaledConsent) {
  consent::SharedDatabase sdb = testing::RecruitmentDatabase();
  core::ConsentManager manager(sdb);

  for (uint64_t seed = 0; seed < 30; ++seed) {
    SCOPED_TRACE("repeated-crash seed " + std::to_string(seed));
    Rng rng(81'000 + seed);
    PartialValuation hidden = sdb.pool().SampleValuation(rng);

    ValuationOracle baseline_backing(hidden);
    ConsentLedger baseline_ledger;
    core::SessionOptions baseline_options;
    baseline_options.ledger = &baseline_ledger;
    Result<core::SessionReport> baseline = manager.DecideAll(
        testing::RecruitmentQuerySql(), baseline_backing, baseline_options);
    ASSERT_TRUE(baseline.ok());

    CrashingEnv env;
    size_t total_peer_probes = 0;
    Result<core::SessionReport> final_report = Status::Internal("never ran");
    // Keep crashing one append into each attempt until a run completes;
    // every attempt journals at least its first fresh answer, so the loop
    // is bounded by the number of variables.
    for (int attempt = 0; attempt < 64; ++attempt) {
      CrashPlan plan;
      plan.crash_at_append = 2;  // the second fresh answer of this attempt
      plan.torn_bytes = rng.Bernoulli(0.5) ? 1 + rng.UniformIndex(8) : 0;
      env.set_plan(plan);

      Result<std::unique_ptr<WalWriter>> wal =
          WalWriter::Open(&env, "ledger.wal");
      ASSERT_TRUE(wal.ok()) << wal.status().ToString();
      ConsentLedger ledger;
      Result<RecoveryStats> stats =
          consent::RecoverLedger(&env, "ledger.wal", &ledger);
      ASSERT_TRUE(stats.ok()) << stats.status().ToString();
      ledger.AttachJournal(wal.value().get());

      ValuationOracle backing(hidden);
      core::SessionOptions options;
      options.ledger = &ledger;
      try {
        final_report = manager.DecideAll(testing::RecruitmentQuerySql(),
                                         backing, options);
        total_peer_probes += backing.probe_count();
        break;
      } catch (const CrashInjected&) {
        total_peer_probes += backing.probe_count();
        env.Restart();
      }
    }
    ASSERT_TRUE(final_report.ok()) << final_report.status().ToString();
    EXPECT_EQ(final_report.value().ToJson(), baseline.value().ToJson());
    // Across ALL attempts combined, no variable was asked twice — a torn
    // final record may lose one answer per crash, so the total is bounded
    // by distinct variables plus one re-ask per restart, and with no torn
    // bytes it is exactly the distinct-variable count.
    EXPECT_LE(total_peer_probes,
              baseline_backing.probe_count() + size_t{64});
  }
}

}  // namespace
}  // namespace consentdb
