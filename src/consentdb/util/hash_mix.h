// Stateless deterministic hashing for schedule-style randomness.
//
// A seeded Rng stream is deterministic only if every consumer draws in a
// fixed order — useless when concurrent sessions interleave their draws.
// The fault-injection and retry-jitter schedules instead hash the triple
// (seed, stream, index): the k-th decision for a given stream (a consent
// variable, say) is a pure function of the triple, identical under any
// thread interleaving.

#ifndef CONSENTDB_UTIL_HASH_MIX_H_
#define CONSENTDB_UTIL_HASH_MIX_H_

#include <cstdint>

namespace consentdb {

// SplitMix64 finalizer: a fast, well-mixed 64-bit permutation.
inline uint64_t SplitMix64(uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// Uniform draw in [0, 1) fully determined by (seed, stream, index).
inline double UnitUniformHash(uint64_t seed, uint64_t stream, uint64_t index) {
  uint64_t h = SplitMix64(seed ^ SplitMix64(stream ^ SplitMix64(index)));
  // 53 high bits -> the unit interval, like std::generate_canonical.
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace consentdb

#endif  // CONSENTDB_UTIL_HASH_MIX_H_
