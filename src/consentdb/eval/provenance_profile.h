// ProvenanceProfile: data-dependent structure of an annotated query result —
// the runtime checks of Sec. IV-D ("Beyond syntactically-defined fragments")
// that drive automatic algorithm selection, plus the realised projection
// limit p of Sec. IV-C.

#ifndef CONSENTDB_EVAL_PROVENANCE_PROFILE_H_
#define CONSENTDB_EVAL_PROVENANCE_PROFILE_H_

#include <string>
#include <vector>

#include "consentdb/eval/annotated_relation.h"
#include "consentdb/obs/metrics.h"
#include "consentdb/provenance/normal_form.h"
#include "consentdb/util/result.h"

namespace consentdb::eval {

struct ProvenanceProfile {
  // Per-output-tuple monotone DNF provenance, indexed like the relation.
  std::vector<provenance::Dnf> dnfs;

  // Realised projection limit: max number of DNF terms of any tuple.
  size_t max_terms_per_tuple = 0;
  // The k of the k-DNF: max term size across tuples.
  size_t max_term_size = 0;
  // Sum of term sizes across all tuples (paper's "total DNF provenance size").
  size_t total_dnf_literals = 0;

  // Every tuple's provenance is read-once in isolation.
  bool per_tuple_read_once = true;
  // Additionally no variable occurs in two different tuples' provenance.
  bool overall_read_once = true;

  std::string ToString() const;
};

// Flattens every annotation to minimal monotone DNF and computes the
// profile. Fails with ResourceExhausted if a DNF exceeds `limits`. With
// `metrics` attached, records the flattening time (eval.profile_ns) and the
// per-tuple DNF size distribution (eval.dnf_terms / eval.dnf_literals).
[[nodiscard]] Result<ProvenanceProfile> ProfileProvenance(
    const AnnotatedRelation& relation,
    provenance::NormalFormLimits limits = {},
    obs::MetricsRegistry* metrics = nullptr);

}  // namespace consentdb::eval

#endif  // CONSENTDB_EVAL_PROVENANCE_PROFILE_H_
