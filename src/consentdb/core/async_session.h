// AsyncConsentSession: one consent session as a resumable server-side
// object, advanced by events instead of blocking oracle calls.
//
// FinishSession (consent_manager.cc) drives a probing session by *calling*
// an oracle and sleeping through retry backoffs — fine in-process, fatal in
// a server that must keep hundreds of sessions moving on one thread. This
// class is the same pipeline with the control flow inverted: Pump() says
// what the session needs next (probe a variable, wait until a time, done),
// OnAnswer/OnFault feed in what the network delivered, and retry backoffs
// become parked wait states on the injected clock instead of sleeps.
//
// Equivalence contract (held by differential tests): driven with the same
// prepared session, options, and answers, the final SessionReport is
// byte-identical to ConsentManager::RunPrepared's — including ledger
// accounting. Ledger integration mirrors LedgerOracle exactly: a variable
// already in the ledger resolves instantly (a ledger *hit*, still counted
// as a session probe per the paper's cost model), a fresh network answer is
// recorded through ProbeVia/TryProbeVia so it is journaled and tallied as
// an oracle probe, and faulted attempts leave no trace. That shared ledger
// is what makes resume safe: re-opening a session after a connection loss
// replays its journaled answers without ever re-probing a peer.

#ifndef CONSENTDB_CORE_ASYNC_SESSION_H_
#define CONSENTDB_CORE_ASYNC_SESSION_H_

#include <cstdint>
#include <memory>
#include <optional>

#include "consentdb/core/consent_manager.h"

namespace consentdb::core {

class AsyncConsentSession {
 public:
  // What the session needs next.
  struct Step {
    enum class Kind : uint8_t {
      kProbe,  // ask the client to probe `variable`
      kWait,   // nothing to do until the clock reaches `wake_at_nanos`
      kDone,   // finished; report() is available
    };
    Kind kind = Kind::kDone;
    provenance::VarId variable = 0;  // kProbe only
    int64_t wake_at_nanos = 0;       // kWait only
  };

  // Builds the session over an already-prepared query (strategy selection
  // happens here, exactly as in FinishSession). `options.spans` must be
  // null — spans are RAII scopes and cannot park. `prepared`, the database,
  // and every pointer in `options` must outlive the session.
  static Result<std::unique_ptr<AsyncConsentSession>> Create(
      const consent::SharedDatabase& sdb,
      std::shared_ptr<const PreparedSession> prepared,
      const SessionOptions& options);

  // Advances as far as possible without external input and reports the next
  // need. Idempotent: while a probe is outstanding it returns the same
  // kProbe again (safe to call after a resume to re-issue the request).
  Step Pump();

  // The client's answer for variable `x`. Answers for variables that are
  // not the outstanding probe are ignored — duplicate deliveries and
  // answers racing a reconnect are harmless.
  void OnAnswer(provenance::VarId x, bool answer);

  // The client's probe attempt for `x` failed. In a resilient session this
  // feeds the RetryPolicy (backoff becomes a kWait park); in a
  // non-resilient session any fault fails the whole session.
  void OnFault(provenance::VarId x, consent::ProbeFault fault);

  // The session deadline fired (resilient sessions only): undecided tuples
  // degrade to kUnresolved and the next Pump() completes the report.
  void Expire();

  bool done() const { return done_; }
  bool resilient() const { return resilient_; }

  // The finished report (or the error that ended the session). Only valid
  // once Pump() returned kDone.
  const Result<SessionReport>& report() const;

 private:
  AsyncConsentSession(const consent::SharedDatabase& sdb,
                      std::shared_ptr<const PreparedSession> prepared,
                      const SessionOptions& options);

  void Finish();
  void ResolveFromLedger(provenance::VarId x);

  const consent::SharedDatabase& sdb_;
  const std::shared_ptr<const PreparedSession> prepared_;
  SessionOptions options_;
  const bool resilient_;
  RetryPolicy policy_;  // meaningful only when resilient_
  Clock* clock_;
  int64_t session_start_ = 0;

  std::vector<double> pi_;
  std::unique_ptr<strategy::EvaluationState> state_;
  internal::StrategySelection sel_;
  std::unique_ptr<strategy::SessionStepper> stepper_;

  // Outstanding probe, if any, with its retry bookkeeping.
  std::optional<provenance::VarId> awaiting_;
  size_t attempts_ = 0;
  int64_t probe_start_ = 0;
  std::optional<int64_t> wake_at_;  // parked backoff (awaiting_ stays set)

  size_t num_retries_ = 0;
  FailureBreakdown failures_;

  // Retry metrics, hoisted once like RetryingProber does.
  obs::Counter* retries_ = nullptr;
  obs::Counter* transient_ = nullptr;
  obs::Counter* unavailable_ = nullptr;
  obs::Counter* exhausted_ = nullptr;
  obs::Counter* deadline_ = nullptr;
  obs::Histogram* backoff_ns_ = nullptr;

  bool expired_ = false;  // deadline fired; the stepper was told once
  bool done_ = false;
  std::optional<Result<SessionReport>> report_;
};

}  // namespace consentdb::core

#endif  // CONSENTDB_CORE_ASYNC_SESSION_H_
