// core/checkpoint + SessionEngine save/resume: a checkpoint roundtrips the
// database, the ledger (with variable ids remapped through the snapshot),
// and the in-flight session specs; an engine resumed from it re-runs those
// sessions to byte-identical reports without re-probing journaled
// variables.

#include "consentdb/core/checkpoint.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "consentdb/consent/oracle.h"
#include "consentdb/consent/snapshot.h"
#include "consentdb/core/session_engine.h"
#include "consentdb/util/io.h"
#include "gtest/gtest.h"
#include "test_fixtures.h"

namespace consentdb::core {
namespace {

using consent::ConsentLedger;
using consent::SharedDatabase;
using consent::ValuationOracle;
using provenance::VarId;
using relational::Tuple;
using relational::Value;

using AnswerVec = std::vector<std::pair<VarId, bool>>;

TEST(CheckpointTest, RoundtripsDatabaseLedgerAndSessions) {
  CrashingEnv env;
  SharedDatabase sdb = testing::RecruitmentDatabase();
  AnswerVec answers = {{0, true}, {3, false}, {5, true}};
  std::vector<CheckpointedSession> sessions;
  sessions.push_back({testing::RecruitmentQuerySql(), std::nullopt});
  sessions.push_back({"SELECT name FROM Companies",
                      std::optional<std::string>("'PennSolarExperts Ltd.'")});

  ASSERT_TRUE(
      WriteCheckpoint(&env, "state.ckpt", sdb, answers, sessions).ok());
  Result<RestoredCheckpoint> restored = ReadCheckpoint(&env, "state.ckpt");
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  // The database roundtrips exactly (snapshot text is canonical).
  EXPECT_EQ(consent::SaveSnapshot(restored.value().sdb),
            consent::SaveSnapshot(sdb));
  // Ledger answers land on the rebuilt pool's ids with answers intact.
  // LoadSnapshot recreates variables in stored-id order, so for a
  // SaveSnapshot-produced section the mapping is the identity — which is
  // what keeps a resumed session probing in the pre-crash order.
  EXPECT_EQ(restored.value().ledger_answers, answers);
  ASSERT_EQ(restored.value().sessions.size(), 2u);
  EXPECT_EQ(restored.value().sessions[0].sql, testing::RecruitmentQuerySql());
  EXPECT_FALSE(restored.value().sessions[0].single_csv.has_value());
  EXPECT_EQ(restored.value().sessions[1].single_csv,
            std::optional<std::string>("'PennSolarExperts Ltd.'"));
}

TEST(CheckpointTest, RejectsMultilineSql) {
  CrashingEnv env;
  SharedDatabase sdb = testing::RecruitmentDatabase();
  std::vector<CheckpointedSession> sessions = {{"SELECT *\nFROM T", {}}};
  EXPECT_EQ(WriteCheckpoint(&env, "x.ckpt", sdb, {}, sessions).code(),
            StatusCode::kInvalidArgument);
}

TEST(CheckpointTest, RejectsLedgerAnswerForUnknownVariable) {
  CrashingEnv env;
  SharedDatabase sdb = testing::RecruitmentDatabase();
  const VarId bogus = static_cast<VarId>(sdb.pool().size() + 100);
  ASSERT_TRUE(
      WriteCheckpoint(&env, "x.ckpt", sdb, {{bogus, true}}, {}).ok());
  EXPECT_EQ(ReadCheckpoint(&env, "x.ckpt").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CheckpointTest, RejectsTruncatedAndForeignFiles) {
  CrashingEnv env;
  SharedDatabase sdb = testing::RecruitmentDatabase();
  ASSERT_TRUE(WriteCheckpoint(&env, "x.ckpt", sdb, {{1, true}}, {}).ok());
  Result<std::string> full = env.ReadFileToString("x.ckpt");
  ASSERT_TRUE(full.ok());
  // Any strict prefix must be rejected, never half-restored.
  for (size_t cut : {size_t{0}, size_t{10}, full.value().size() / 2,
                     full.value().size() - 1}) {
    ASSERT_TRUE(
        env.WriteStringToFile("cut.ckpt", full.value().substr(0, cut), false)
            .ok());
    EXPECT_FALSE(ReadCheckpoint(&env, "cut.ckpt").ok()) << "cut at " << cut;
  }
  ASSERT_TRUE(env.WriteStringToFile("junk.ckpt", "not a checkpoint", false)
                  .ok());
  EXPECT_FALSE(ReadCheckpoint(&env, "junk.ckpt").ok());
}

TEST(CheckpointTest, WriteIsAtomicUnderCrashes) {
  SharedDatabase sdb = testing::RecruitmentDatabase();
  // Crash at every early append and sync of the re-write: afterwards the
  // checkpoint under the final name is either the old one intact or the
  // new one complete — never torn, never half-restored. (Plans placed past
  // the ops the write performs simply never fire and yield the new one.)
  bool saw_old = false;
  bool saw_new = false;
  for (bool at_sync : {false, true}) {
    for (uint64_t crash_at = 1; crash_at <= 3; ++crash_at) {
      CrashingEnv env;
      ASSERT_TRUE(
          WriteCheckpoint(&env, "state.ckpt", sdb, {{0, true}}, {}).ok());
      CrashPlan plan;
      if (at_sync) {
        plan.crash_at_sync = crash_at;
      } else {
        plan.crash_at_append = crash_at;
      }
      plan.power_loss = true;
      env.set_plan(plan);
      bool crashed = false;
      try {
        Status status =
            WriteCheckpoint(&env, "state.ckpt", sdb, {{0, false}}, {});
        (void)status;
      } catch (const CrashInjected&) {
        crashed = true;
      }
      env.Restart();
      Result<RestoredCheckpoint> restored =
          ReadCheckpoint(&env, "state.ckpt");
      ASSERT_TRUE(restored.ok())
          << "crash_at=" << crash_at << " at_sync=" << at_sync << ": "
          << restored.status().ToString();
      const AnswerVec old_answers = {{0, true}};
      const AnswerVec new_answers = {{0, false}};
      if (restored.value().ledger_answers == old_answers) {
        saw_old = true;
        EXPECT_TRUE(crashed) << "old state without a crash?";
      } else {
        EXPECT_EQ(restored.value().ledger_answers, new_answers)
            << "crash_at=" << crash_at << " at_sync=" << at_sync;
        saw_new = true;
      }
    }
  }
  // The schedule grid must hit both outcomes, or it proves nothing.
  EXPECT_TRUE(saw_old);
  EXPECT_TRUE(saw_new);
}

// The end-to-end resume story: an engine checkpoints mid-workload; a second
// engine restores the checkpoint and re-runs the pending sessions. Reports
// are byte-identical and journaled variables never reach the peers again.
TEST(CheckpointTest, EngineSaveResumeIsExactAndProbeFree) {
  CrashingEnv env;
  SharedDatabase sdb = testing::RecruitmentDatabase();
  provenance::PartialValuation hidden;
  for (VarId x = 0; x < sdb.pool().size(); ++x) {
    hidden.Set(x, x % 3 != 1);
  }

  // Uninterrupted run: the ground-truth report.
  std::string baseline_json;
  {
    core::EngineOptions options;
    options.num_threads = 1;
    SessionEngine engine(sdb, options);
    ValuationOracle oracle(hidden);
    SessionRequest request;
    request.sql = testing::RecruitmentQuerySql();
    request.oracle = &oracle;
    Result<SessionReport> report = engine.Submit(std::move(request)).get();
    ASSERT_TRUE(report.ok());
    baseline_json = report.value().ToJson();
  }

  // First engine: run the same session to completion (populating the
  // ledger), then checkpoint with the session re-registered as pending —
  // the state a crash right before deregistration would leave.
  {
    core::EngineOptions options;
    options.num_threads = 1;
    SessionEngine engine(sdb, options);
    ValuationOracle oracle(hidden);
    SessionRequest request;
    request.sql = testing::RecruitmentQuerySql();
    request.oracle = &oracle;
    ASSERT_TRUE(engine.Submit(std::move(request)).get().ok());
    ASSERT_TRUE(WriteCheckpoint(&env, "engine.ckpt", sdb,
                                engine.ledger().Answers(),
                                {{testing::RecruitmentQuerySql(), {}}})
                    .ok());
  }

  // Second engine: restore and resume.
  Result<RestoredCheckpoint> restored = ReadCheckpoint(&env, "engine.ckpt");
  ASSERT_TRUE(restored.ok());
  ASSERT_EQ(restored.value().sessions.size(), 1u);
  {
    core::EngineOptions options;
    options.num_threads = 1;
    SessionEngine engine(restored.value().sdb, options);
    ASSERT_TRUE(engine.RestoreLedger(restored.value().ledger_answers).ok());

    ValuationOracle oracle(hidden);
    SessionRequest request;
    request.sql = restored.value().sessions[0].sql;
    request.oracle = &oracle;
    Result<SessionReport> report = engine.Submit(std::move(request)).get();
    ASSERT_TRUE(report.ok());
    // Byte-identical to the uninterrupted run...
    EXPECT_EQ(report.value().ToJson(), baseline_json);
    // ...and no probe reached the peers: every variable was journaled.
    EXPECT_EQ(oracle.probe_count(), 0u);
  }
}

TEST(CheckpointTest, EnginePendingSessionsTrackInFlightWork) {
  SharedDatabase sdb = testing::RecruitmentDatabase();
  core::EngineOptions options;
  options.num_threads = 1;
  SessionEngine engine(sdb, options);
  EXPECT_TRUE(engine.pending_sessions().empty());

  provenance::PartialValuation hidden;
  for (VarId x = 0; x < sdb.pool().size(); ++x) hidden.Set(x, true);
  ValuationOracle oracle(hidden);
  SessionRequest request;
  request.sql = testing::RecruitmentQuerySql();
  request.oracle = &oracle;
  ASSERT_TRUE(engine.Submit(std::move(request)).get().ok());
  // Completed sessions are deregistered.
  EXPECT_TRUE(engine.pending_sessions().empty());
}

TEST(CheckpointTest, EngineSaveCheckpointRoundtrips) {
  CrashingEnv env;
  SharedDatabase sdb = testing::RecruitmentDatabase();
  core::EngineOptions options;
  options.num_threads = 1;
  SessionEngine engine(sdb, options);
  ASSERT_TRUE(engine.RestoreLedger({{0, true}, {2, false}}).ok());
  ASSERT_TRUE(engine.SaveCheckpoint(&env, "engine.ckpt").ok());

  Result<RestoredCheckpoint> restored = ReadCheckpoint(&env, "engine.ckpt");
  ASSERT_TRUE(restored.ok());
  AnswerVec expected = {{0, true}, {2, false}};
  EXPECT_EQ(restored.value().ledger_answers, expected);
  EXPECT_EQ(consent::SaveSnapshot(restored.value().sdb),
            consent::SaveSnapshot(sdb));
}

}  // namespace
}  // namespace consentdb::core
