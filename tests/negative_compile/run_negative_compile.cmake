# Drives one negative-compilation check as a CTest:
#   1. GOOD_SRC must compile — proves the snippet pair is well-formed and a
#      failure of BAD_SRC is the intended diagnostic, not bit-rot;
#   2. BAD_SRC must NOT compile under the same flags — proves the static
#      check actually rejects the violation.
#
# Invoked in script mode:
#   cmake -DCOMPILER=<c++> -DFLAGS="<flags>" -DINCDIR=<repo>/src
#         -DGOOD_SRC=<good.cc> -DBAD_SRC=<bad.cc>
#         -P run_negative_compile.cmake

foreach(v COMPILER FLAGS INCDIR GOOD_SRC BAD_SRC)
  if(NOT DEFINED ${v})
    message(FATAL_ERROR "run_negative_compile.cmake: missing -D${v}")
  endif()
endforeach()

separate_arguments(flag_list UNIX_COMMAND "${FLAGS}")

execute_process(
  COMMAND ${COMPILER} ${flag_list} -I${INCDIR} -fsyntax-only ${GOOD_SRC}
  RESULT_VARIABLE good_rc
  OUTPUT_VARIABLE good_out
  ERROR_VARIABLE good_err)
if(NOT good_rc EQUAL 0)
  message(FATAL_ERROR
    "control snippet ${GOOD_SRC} failed to compile — the test pair is "
    "broken, not the checked property:\n${good_out}\n${good_err}")
endif()

execute_process(
  COMMAND ${COMPILER} ${flag_list} -I${INCDIR} -fsyntax-only ${BAD_SRC}
  RESULT_VARIABLE bad_rc
  OUTPUT_VARIABLE bad_out
  ERROR_VARIABLE bad_err)
if(bad_rc EQUAL 0)
  message(FATAL_ERROR
    "violation snippet ${BAD_SRC} compiled clean; the static check it "
    "exercises is no longer enforced")
endif()

message(STATUS "ok: ${GOOD_SRC} compiles, ${BAD_SRC} is rejected")
