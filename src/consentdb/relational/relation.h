// Relation: a set-semantics collection of tuples under a Schema.
//
// SPJU under the paper's possible-worlds consent semantics is a set algebra
// (DISTINCT everywhere), so Relation deduplicates on insertion while keeping
// a deterministic (insertion) order for reproducible iteration.

#ifndef CONSENTDB_RELATIONAL_RELATION_H_
#define CONSENTDB_RELATIONAL_RELATION_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "consentdb/relational/schema.h"
#include "consentdb/relational/tuple.h"
#include "consentdb/util/result.h"

namespace consentdb::relational {

class Relation {
 public:
  Relation() = default;
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }
  const std::vector<Tuple>& tuples() const { return tuples_; }
  const Tuple& tuple(size_t i) const;

  // Inserts under set semantics; returns false when the tuple was already
  // present. Arity and types must match the schema (NULL matches any type).
  [[nodiscard]] Result<bool> Insert(Tuple t);

  // Insert that treats schema mismatch as a programmer error. Convenient for
  // statically-known rows in tests/examples.
  bool InsertOrDie(Tuple t);

  bool Contains(const Tuple& t) const;

  // Index of `t` in insertion order, or nullopt.
  std::optional<size_t> IndexOf(const Tuple& t) const;

  // Validates that `t` could be a row of this relation.
  [[nodiscard]] Status ValidateTuple(const Tuple& t) const;

  // Multi-line textual rendering (schema header + rows).
  std::string ToString() const;

  // Equality is set equality over the same schema (order-insensitive).
  friend bool operator==(const Relation& a, const Relation& b);

 private:
  Schema schema_;
  std::vector<Tuple> tuples_;
  std::unordered_map<Tuple, size_t> index_;  // tuple -> position in tuples_
};

}  // namespace consentdb::relational

#endif  // CONSENTDB_RELATIONAL_RELATION_H_
