#!/usr/bin/env python3
"""consentdb-lint: project-specific C++ hygiene checks.

Walks src/, tests/ and bench/ and rejects patterns the compilers cannot (or
do not) catch but that this codebase bans:

  naked-new               `new`/`delete` outside a smart-pointer factory
                          (a `new` is fine when the same statement wraps it
                          in unique_ptr/shared_ptr/make_*/an XxxPtr alias)
  mutex-guard             a std::mutex / consentdb::Mutex member in a class
                          with no field annotated GUARDED_BY — either the
                          mutex is dead or the guarded data is unannotated
  include-cc              #include of a .cc file
  using-namespace-header  `using namespace` at any scope in a header
  raw-cout                std::cout/std::cerr in src/consentdb (library code
                          reports through Status/obs; only the shell/bench/
                          example layers own a terminal)
  sleep-outside-clock     sleep_for/sleep_until anywhere but the Clock
                          implementation (util/clock.cc) — all waiting goes
                          through the injected Clock so tests and benches run
                          on virtual time; a real sleep in a resilience path
                          would block the suite for wall-clock backoff
  obs-name-literal        a metric/span name literal at an obs call site
                          (GetCounter/Increment/Span/RecordEvent/...) that
                          does not match [a-z0-9_.]+ — names feed exports,
                          dashboards and the lint-exempt registry in
                          obs/names.h, so they stay lowercase dotted words;
                          obs/names.h itself is the one place to mint them
  raw-socket              socket()/connect()/bind()/send()/recv() and
                          friends outside src/consentdb/net/ — every byte
                          that crosses a process boundary goes through the
                          Transport seam (util/transport.h) so the chaos
                          harness can interpose; only the net/ module owns
                          real sockets
  nested-vector-strategy  a std::vector<std::vector<...>> in
                          src/consentdb/strategy/ — the probing hot path is
                          columnar (flat arrays + CSR offsets) precisely to
                          avoid per-row allocations and pointer-chasing;
                          store a flat array with an offsets table instead

A finding on a line carrying `// lint:allow <rule>` (or whose previous line
is only that comment) is suppressed; the allowlist is per-rule, so an
allowed `naked-new` does not silence a `raw-cout` on the same line. The
schema and suppression machinery live in consentdb_findings.py, shared with
consentdb_analyze.py so CI renders both tools' findings through one path.

Exit status: 0 clean, 1 findings, 2 usage/IO error.

Usage: consentdb_lint.py [REPO_ROOT] [--list-rules] [--format=text|json]
Run from anywhere; REPO_ROOT defaults to the script's parent repo.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from consentdb_findings import (  # noqa: E402
    ALLOW_RE, Finding, allowed_rules, emit)

LINT_DIRS = ("src", "tests", "bench")
CXX_SUFFIXES = {".h", ".cc", ".cpp", ".hpp"}
HEADER_SUFFIXES = {".h", ".hpp"}

# `new` is legal only when the same statement hands it straight to a smart
# pointer, in either construction style:
#   return PlanPtr(new Plan(...));                 temporary wrap
#   std::unique_ptr<Plan> p(new Plan(...));        declaration wrap
#   ptr.reset(new T(...));                         explicit handoff
# The window spans two lines so a wrap opened on the previous line counts.
SMART_WRAP_RE = re.compile(
    r"(?:\w*Ptr|unique_ptr\s*(?:<[^;]*>)?|shared_ptr\s*(?:<[^;]*>)?|"
    r"\breset)\s*(?:\w+\s*)?\(\s*new\b"
)
NEW_RE = re.compile(r"\bnew\b(?!\s*\()")  # `new (place)` placement is flagged too
DELETE_RE = re.compile(r"\bdelete\b(?!\s*;)")
DELETED_FN_RE = re.compile(r"=\s*delete\b")
MUTEX_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:std::mutex|Mutex)\s+(\w+)\s*(?:=[^;]*)?;"
)
GUARDED_BY_RE = re.compile(r"\bGUARDED_BY\s*\(\s*(\w+)\s*\)")
INCLUDE_CC_RE = re.compile(r'#\s*include\s*[<"][^">]+\.cc[">]')
USING_NAMESPACE_RE = re.compile(r"\busing\s+namespace\b")
RAW_COUT_RE = re.compile(r"\bstd::(cout|cerr)\b")
SLEEP_RE = re.compile(r"\bsleep_(?:for|until)\s*\(")
# The one legitimate real-sleep site: the SystemClock behind RealClock().
SLEEP_EXEMPT_FILES = {Path("src/consentdb/util/clock.cc")}
RAW_FILE_IO_RE = re.compile(
    r"\bstd::(?:o|i|w[oi]?)?fstream\b|\bf(?:re)?open\s*\("
)
# The one legitimate raw-file-io site: the POSIX Env behind Env::Default().
RAW_FILE_IO_EXEMPT_FILES = {Path("src/consentdb/util/io.cc")}

# obs call sites whose string-literal arguments are metric/span/event names.
# `Span foo(` (a declaration) and `Span(` (a temporary) both count; SpanRecord
# etc. do not (the next char after `Span` must open the argument list or a
# variable name).
OBS_NAME_CALL_RE = re.compile(
    r"\b(?:GetCounter|GetGauge|GetHistogram|Increment|SetGauge|Observe|"
    r"MaybeHistogram|RecordEvent|RecordSpan|SetArg|ScopedTimer(?:\s+\w+)?|"
    r"Span(?:\s+\w+)?)\s*\(([^;{]*)"
)
OBS_NAME_LITERAL_RE = re.compile(r'"([^"]*)"')
VALID_OBS_NAME_RE = re.compile(r"^[a-z0-9_.]+$")
# The registry of canonical names declares its own convention.
OBS_NAME_EXEMPT_FILES = {Path("src/consentdb/obs/names.h")}

# Raw BSD socket API calls. Free-function call sites only: a leading `.`,
# `->` or identifier character means a method or a longer name (Reconnect,
# transport.Connect), which is fine — it is the global/POSIX functions that
# bypass the Transport seam. `::connect(...)` (explicitly global-qualified)
# is still caught.
RAW_SOCKET_RE = re.compile(
    r"(?<![\w.>])(?:socket|connect|bind|listen|accept|accept4|send|recv|"
    r"sendto|recvfrom|sendmsg|recvmsg|setsockopt|getsockopt|getsockname|"
    r"getpeername|getaddrinfo|inet_pton|inet_ntop)\s*\("
)
# The one module allowed to touch sockets: the transport implementations.
RAW_SOCKET_EXEMPT_DIR = ("src", "consentdb", "net")

# Vector-of-vectors in the strategy layer: the evaluation hot path went
# columnar (flat term/clause tables + CSR adjacency) and must not regress to
# per-row heap allocations. Whitespace is tolerated between the tokens.
NESTED_VECTOR_RE = re.compile(r"\bstd::vector\s*<\s*std::vector\s*<")
NESTED_VECTOR_DIR = ("src", "consentdb", "strategy")

RULES = (
    "naked-new",
    "mutex-guard",
    "include-cc",
    "using-namespace-header",
    "raw-cout",
    "sleep-outside-clock",
    "raw-file-io",
    "raw-socket",
    "obs-name-literal",
    "nested-vector-strategy",
)


def strip_comments_and_strings(line: str) -> str:
    """Removes // comments and the contents of string/char literals so the
    pattern rules never fire inside prose or quoted SQL."""
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c in "\"'":
            quote = c
            out.append(quote)
            i += 1
            while i < n and line[i] != quote:
                i += 2 if line[i] == "\\" else 1
            out.append(quote)
            i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


def strip_comments(line: str) -> str:
    """Removes // comments but keeps string-literal contents — for rules
    that inspect the literals themselves (obs-name-literal)."""
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            return line[:i]
        if c in "\"'":
            quote = c
            i += 1
            while i < n and line[i] != quote:
                i += 2 if line[i] == "\\" else 1
        i += 1
    return line


def lint_file(path: Path, rel: Path, findings: list[Finding]) -> None:
    try:
        text = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as e:
        findings.append(Finding(rel, 0, "io", f"unreadable: {e}"))
        return

    lines = text.splitlines()
    is_header = path.suffix in HEADER_SUFFIXES
    in_library = rel.parts[:2] == ("src", "consentdb")

    # mutex-guard bookkeeping: mutex members and GUARDED_BY targets seen in
    # this file. Field-to-class attribution uses a simple heuristic (one
    # class per mutex name is the codebase convention: `mu_`).
    mutex_members: list[tuple[int, str, set[str]]] = []  # line, name, allowed
    guarded_targets: set[str] = set()

    for idx, raw in enumerate(lines):
        lineno = idx + 1
        allowed = allowed_rules(lines, idx)
        code = strip_comments_and_strings(raw)
        if not code.strip():
            continue

        # Checked against the raw line: the include path lives inside the
        # quotes the string-stripper removes.
        if INCLUDE_CC_RE.search(raw) and "include-cc" not in allowed:
            findings.append(
                Finding(rel, lineno, "include-cc",
                        "#include of a .cc file; include the header and "
                        "link the object instead"))

        if (is_header and USING_NAMESPACE_RE.search(code)
                and "using-namespace-header" not in allowed):
            findings.append(
                Finding(rel, lineno, "using-namespace-header",
                        "`using namespace` in a header leaks into every "
                        "includer; qualify or alias instead"))

        if in_library and RAW_COUT_RE.search(code) and "raw-cout" not in allowed:
            findings.append(
                Finding(rel, lineno, "raw-cout",
                        "library code must not write to std::cout/cerr; "
                        "return a Status or report through obs/"))

        if (SLEEP_RE.search(code) and rel not in SLEEP_EXEMPT_FILES
                and "sleep-outside-clock" not in allowed):
            findings.append(
                Finding(rel, lineno, "sleep-outside-clock",
                        "real sleep outside the Clock implementation; take "
                        "a consentdb::Clock and call SleepFor so tests and "
                        "benches run on virtual time (util/clock.h)"))

        if (rel.parts[:3] == NESTED_VECTOR_DIR
                and NESTED_VECTOR_RE.search(code)
                and "nested-vector-strategy" not in allowed):
            findings.append(
                Finding(rel, lineno, "nested-vector-strategy",
                        "vector-of-vectors in the strategy layer; the "
                        "evaluation hot path is columnar — store a flat "
                        "array with a CSR offsets table instead"))

        if (RAW_FILE_IO_RE.search(code) and rel not in RAW_FILE_IO_EXEMPT_FILES
                and "raw-file-io" not in allowed):
            findings.append(
                Finding(rel, lineno, "raw-file-io",
                        "raw file I/O outside util/io; go through Env "
                        "(util/io.h) so durability tests can inject a "
                        "CrashingEnv and crash-recovery stays testable"))

        if (rel.parts[:3] != RAW_SOCKET_EXEMPT_DIR
                and RAW_SOCKET_RE.search(code)
                and "raw-socket" not in allowed):
            findings.append(
                Finding(rel, lineno, "raw-socket",
                        "raw socket call outside src/consentdb/net/; open "
                        "connections through the Transport seam "
                        "(util/transport.h) so the chaos harness can "
                        "interpose on every byte"))

        if (rel not in OBS_NAME_EXEMPT_FILES
                and "obs-name-literal" not in allowed):
            with_literals = strip_comments(raw)
            for call in OBS_NAME_CALL_RE.finditer(with_literals):
                for name in OBS_NAME_LITERAL_RE.findall(call.group(1)):
                    if not VALID_OBS_NAME_RE.match(name):
                        findings.append(
                            Finding(rel, lineno, "obs-name-literal",
                                    f'metric/span name "{name}" does not '
                                    "match [a-z0-9_.]+; mint a constant in "
                                    "obs/names.h instead"))

        for m in GUARDED_BY_RE.finditer(code):
            guarded_targets.add(m.group(1))

        mm = MUTEX_MEMBER_RE.match(code)
        if mm:
            mutex_members.append((lineno, mm.group(1), allowed))

        if "naked-new" not in allowed:
            stripped_deleted = DELETED_FN_RE.sub("", code)
            has_new = NEW_RE.search(stripped_deleted)
            has_delete = DELETE_RE.search(stripped_deleted)
            if has_new:
                prev = strip_comments_and_strings(lines[idx - 1]) if idx else ""
                window = prev.rstrip() + " " + code
                if not SMART_WRAP_RE.search(window):
                    findings.append(
                        Finding(rel, lineno, "naked-new",
                                "`new` outside a smart-pointer factory; wrap "
                                "it in unique_ptr/shared_ptr/XxxPtr in the "
                                "same statement"))
            if has_delete:
                findings.append(
                    Finding(rel, lineno, "naked-new",
                            "manual `delete`; ownership belongs to a smart "
                            "pointer"))

    for lineno, name, allowed in mutex_members:
        if "mutex-guard" in allowed:
            continue
        if name not in guarded_targets:
            findings.append(
                Finding(rel, lineno, "mutex-guard",
                        f"mutex member `{name}` has no GUARDED_BY({name}) "
                        "field in this file; annotate the data it protects "
                        "(see util/thread_annotations.h)"))


def run(root: Path) -> list[Finding]:
    findings: list[Finding] = []
    for d in LINT_DIRS:
        base = root / d
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in CXX_SUFFIXES and path.is_file():
                lint_file(path, path.relative_to(root), findings)
    return findings


def main(argv: list[str]) -> int:
    fmt = "text"
    args = []
    for a in argv[1:]:
        if a == "--list-rules":
            print("\n".join(RULES))
            return 0
        if a.startswith("--format="):
            fmt = a.split("=", 1)[1]
            if fmt not in ("text", "json"):
                print(f"consentdb-lint: unknown format: {fmt}", file=sys.stderr)
                return 2
        else:
            args.append(a)
    if len(args) > 1:
        print(__doc__, file=sys.stderr)
        return 2
    root = Path(args[0]).resolve() if args else Path(__file__).resolve().parent.parent
    if not root.is_dir():
        print(f"consentdb-lint: no such directory: {root}", file=sys.stderr)
        return 2
    findings = run(root)
    emit(findings, fmt)
    if findings:
        print(f"consentdb-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
