#include "consentdb/query/classify.h"

#include <set>

#include "consentdb/util/string_util.h"

namespace consentdb::query {

const char* QueryClassToString(QueryClass c) {
  switch (c) {
    case QueryClass::kS:
      return "S";
    case QueryClass::kSP:
      return "SP";
    case QueryClass::kSU:
      return "SU";
    case QueryClass::kSPU:
      return "SPU";
    case QueryClass::kSJ:
      return "SJ";
    case QueryClass::kSJU:
      return "SJU";
    case QueryClass::kSPJ:
      return "SPJ";
    case QueryClass::kSPJU:
      return "SPJU";
  }
  return "?";
}

namespace {

// Recursive walk. `branch_joins` accumulates Product nodes under the current
// SPJ branch (reset at each Union child).
void Walk(const Plan& plan, QueryProfile* profile, size_t* branch_joins) {
  switch (plan.kind()) {
    case PlanKind::kScan:
      return;
    case PlanKind::kSelect:
      Walk(*plan.child(0), profile, branch_joins);
      return;
    case PlanKind::kProject:
      profile->has_projection = true;
      Walk(*plan.child(0), profile, branch_joins);
      return;
    case PlanKind::kProduct: {
      profile->has_join = true;
      profile->num_joins += 1;
      *branch_joins += 1;
      Walk(*plan.child(0), profile, branch_joins);
      Walk(*plan.child(1), profile, branch_joins);
      return;
    }
    case PlanKind::kUnion: {
      profile->has_union = true;
      profile->num_unions += plan.children().size() - 1;
      for (const PlanPtr& c : plan.children()) {
        size_t child_joins = 0;
        Walk(*c, profile, &child_joins);
        profile->max_joins_per_branch =
            std::max(profile->max_joins_per_branch, child_joins);
      }
      return;
    }
  }
}

bool IsPartitioned(const Plan& plan) {
  // A plan whose unions are all at the top (possibly none) is partitioned
  // iff the branch relation sets are pairwise disjoint. Unions nested under
  // products/selections are treated conservatively: we flatten only the
  // top-level union spine; nested unions make the branches share relations
  // only if they actually scan common names.
  struct Shim {
    static void Collect(const Plan& p, std::vector<const Plan*>* out) {
      if (p.kind() == PlanKind::kUnion) {
        for (const PlanPtr& c : p.children()) Collect(*c, out);
      } else {
        out->push_back(&p);
      }
    }
  };
  std::vector<const Plan*> branch_ptrs;
  Shim::Collect(plan, &branch_ptrs);
  std::set<std::string> seen;
  for (const Plan* branch : branch_ptrs) {
    std::set<std::string> mine;
    for (const std::string& rel : branch->ScannedRelations()) {
      mine.insert(rel);
    }
    for (const std::string& rel : mine) {
      if (!seen.insert(rel).second) return false;  // shared across branches
    }
  }
  return true;
}

}  // namespace

QueryProfile Classify(const Plan& plan, obs::MetricsRegistry* metrics) {
  obs::ScopedTimer timer(obs::MaybeHistogram(metrics, "query.classify_ns"));
  QueryProfile profile;
  size_t top_branch_joins = 0;
  Walk(plan, &profile, &top_branch_joins);
  profile.max_joins_per_branch =
      std::max(profile.max_joins_per_branch, top_branch_joins);
  profile.partitioned = IsPartitioned(plan);

  if (profile.has_join && profile.has_projection && profile.has_union) {
    profile.query_class = QueryClass::kSPJU;
  } else if (profile.has_join && profile.has_projection) {
    profile.query_class = QueryClass::kSPJ;
  } else if (profile.has_join && profile.has_union) {
    profile.query_class = QueryClass::kSJU;
  } else if (profile.has_join) {
    profile.query_class = QueryClass::kSJ;
  } else if (profile.has_projection && profile.has_union) {
    profile.query_class = QueryClass::kSPU;
  } else if (profile.has_projection) {
    profile.query_class = QueryClass::kSP;
  } else if (profile.has_union) {
    profile.query_class = QueryClass::kSU;
  } else {
    profile.query_class = QueryClass::kS;
  }
  if (metrics != nullptr) {
    obs::Increment(metrics,
                   (std::string("query.class.") +
                    QueryClassToString(profile.query_class))
                       .c_str());
  }
  return profile;
}

std::string QueryProfile::ToString() const {
  std::string out = QueryClassToString(query_class);
  out += " (joins=" + std::to_string(num_joins);
  out += ", unions=" + std::to_string(num_unions);
  out += ", max_joins_per_branch=" + std::to_string(max_joins_per_branch);
  out += partitioned ? ", partitioned)" : ", non-partitioned)";
  return out;
}

Guarantees GuaranteesFor(const QueryProfile& p) {
  Guarantees g;
  switch (p.query_class) {
    case QueryClass::kS:
    case QueryClass::kSP:
    case QueryClass::kSU:
      // Prop. IV.4: overall read-once; RO exact for both problems.
      g.overall_read_once = true;
      g.per_tuple_read_once = true;
      g.exact_all_tuples = true;
      g.exact_single_tuple = true;
      break;
    case QueryClass::kSPU:
      // Prop. IV.5 + Thm. IV.10.
      g.per_tuple_read_once = true;
      g.exact_single_tuple = true;
      g.np_hard_all_tuples = true;
      break;
    case QueryClass::kSJ:
      // Prop. IV.5 + Thm. IV.9.
      g.per_tuple_read_once = true;
      g.exact_single_tuple = true;
      g.np_hard_all_tuples = true;
      break;
    case QueryClass::kSJU:
      // Prop. IV.8 (partitioned) / Sec. IV-C approximation otherwise.
      g.per_tuple_read_once = p.partitioned;
      g.exact_single_tuple = p.partitioned;
      g.np_hard_all_tuples = true;
      break;
    case QueryClass::kSPJ:
    case QueryClass::kSPJU:
      // Thm. IV.15.
      g.np_hard_all_tuples = true;
      g.np_hard_single_tuple = true;
      break;
  }
  return g;
}

}  // namespace consentdb::query
