file(REMOVE_RECURSE
  "CMakeFiles/fig2b_psi_probability.dir/fig2b_psi_probability.cc.o"
  "CMakeFiles/fig2b_psi_probability.dir/fig2b_psi_probability.cc.o.d"
  "fig2b_psi_probability"
  "fig2b_psi_probability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2b_psi_probability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
