// Perf-trajectory glue for the Google-Benchmark binaries: a console
// reporter that additionally captures every per-iteration run into a
// BenchReport, and a drop-in replacement for BENCHMARK_MAIN() that emits
// the BENCH_<name>.json sidecar (see bench_common.h, CONSENTDB_BENCH_JSON).

#ifndef CONSENTDB_BENCH_BENCH_GBENCH_JSON_H_
#define CONSENTDB_BENCH_BENCH_GBENCH_JSON_H_

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_common.h"

namespace consentdb::bench {

// Forwards to ConsoleReporter for stdout; records each non-aggregate,
// non-errored run as two results — "<name>/real" and "<name>/cpu", both in
// per-iteration nanoseconds — so sidecars stay comparable across
// --benchmark_min_time settings.
class SidecarReporter : public benchmark::ConsoleReporter {
 public:
  explicit SidecarReporter(BenchReport* report) : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      report_->AddResult(run.benchmark_name() + "/real",
                         run.real_accumulated_time / iters * 1e9, "ns");
      report_->AddResult(run.benchmark_name() + "/cpu",
                         run.cpu_accumulated_time / iters * 1e9, "ns");
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  BenchReport* report_;
};

// BENCHMARK_MAIN() body plus sidecar emission. Usage (instead of the macro):
//   int main(int argc, char** argv) {
//     return consentdb::bench::GbenchMainWithSidecar("time_next_probe",
//                                                    argc, argv);
//   }
inline int GbenchMainWithSidecar(const std::string& bench_name, int argc,
                                 char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  BenchReport report(bench_name);
  SidecarReporter reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  report.Emit();
  return 0;
}

}  // namespace consentdb::bench

#endif  // CONSENTDB_BENCH_BENCH_GBENCH_JSON_H_
