// Extension experiment: probing under peer faults (the resilience layer).
//
// Part 1 probes the psi-dataset through a FaultyOracle with increasing
// transient-failure probability. With enough retry attempts every transient
// fault is eventually survived, so the *information* of the session — the
// answered-probe sequence, probe count and verdicts — is identical to the
// fault-free run; what grows is the attempt overhead (retries) and the
// virtual time spent in backoff. The fault schedule and the backoff jitter
// are deterministic hashes of (seed, variable, attempt), and all waiting
// goes through a VirtualClock, so the bench performs zero real sleeps.
//
// Part 2 runs full consent sessions (ConsentManager::DecideAll with a
// RetryPolicy) over a join workload: a 20% transient fault plan must leave
// every verdict identical to the fault-free session with zero unresolved
// tuples, while a permanently-dead peer degrades the affected tuples to
// UNRESOLVED without aborting the session.

#include <cstdint>

#include "bench_common.h"
#include "consentdb/consent/faulty_oracle.h"
#include "consentdb/consent/oracle.h"
#include "consentdb/core/consent_manager.h"
#include "consentdb/datasets/psi.h"
#include "consentdb/strategy/runner.h"
#include "consentdb/util/clock.h"
#include "consentdb/util/rng.h"

using namespace consentdb;

namespace {

// Bench-local retry loop mirroring the session-level RetryPolicy semantics
// for the formula-level psi runs: transient faults retry with backoff on the
// virtual clock, exhaustion and dead peers lose the variable.
strategy::FallibleProbeFn RetryProbe(consent::FaultyOracle& oracle,
                                     const core::RetryPolicy& policy,
                                     Clock& clock, size_t& retries) {
  return [&oracle, &policy, &clock, &retries](provenance::VarId x) {
    size_t attempts = 0;
    while (true) {
      consent::ProbeAttempt a = oracle.TryProbe(x);
      ++attempts;
      if (a.ok()) {
        return strategy::FallibleProbe{strategy::ProbeOutcome::kAnswered,
                                       a.answer};
      }
      if (a.fault == consent::ProbeFault::kUnavailable ||
          (policy.max_attempts > 0 && attempts >= policy.max_attempts)) {
        return strategy::FallibleProbe{strategy::ProbeOutcome::kVariableLost,
                                       false};
      }
      ++retries;
      clock.SleepFor(policy.BackoffNanos(attempts, x));
    }
  };
}

// The join workload of the concurrent-sessions bench, shrunk: multi-term
// DNFs per output tuple, seven peers.
consent::SharedDatabase BuildJoinDatabase(size_t rows) {
  using relational::Column;
  using relational::Schema;
  using relational::Tuple;
  using relational::Value;
  using relational::ValueType;

  consent::SharedDatabase sdb;
  auto check = [](const Status& s) { CONSENTDB_CHECK(s.ok(), s.ToString()); };
  check(sdb.CreateRelation("R", Schema({Column{"a", ValueType::kInt64},
                                        Column{"b", ValueType::kInt64}})));
  check(sdb.CreateRelation("S", Schema({Column{"b", ValueType::kInt64},
                                        Column{"c", ValueType::kInt64}})));
  for (size_t i = 0; i < rows; ++i) {
    auto r = sdb.InsertTuple(
        "R", Tuple{Value(static_cast<int64_t>(i) % 20),
                   Value(static_cast<int64_t>(i) % 8)},
        "owner" + std::to_string(i % 7), 0.5);
    CONSENTDB_CHECK(r.ok(), r.status().ToString());
    auto s = sdb.InsertTuple(
        "S", Tuple{Value(static_cast<int64_t>(i * 5 + 3) % 8),
                   Value(static_cast<int64_t>(i) % 3)},
        "owner" + std::to_string(i % 7), 0.5);
    CONSENTDB_CHECK(s.ok(), s.status().ToString());
  }
  return sdb;
}

}  // namespace

int main() {
  const size_t reps = bench::RepsFromEnv(5);

  // --- Part 1: psi-dataset under transient faults -------------------------
  const int level = 6;  // the paper's default: 382 distinct variables
  std::cout << "=== Extension: faulty peers — psi_" << level
            << ", Freq strategy, retries vs fault rate (reps = " << reps
            << ") ===\n\n";

  bench::Table table({"fault prob", "probes", "attempts", "retries",
                      "overhead", "virt ms", "unresolved"});
  table.PrintHeader();

  for (double p_fault : {0.0, 0.05, 0.1, 0.2, 0.4}) {
    size_t total_probes = 0;
    size_t total_attempts = 0;
    size_t total_retries = 0;
    size_t total_unresolved = 0;
    int64_t virtual_nanos = 0;
    for (size_t rep = 0; rep < reps; ++rep) {
      consent::VariablePool pool;
      datasets::PsiFormula psi = datasets::BuildPsi(level, pool, 0.5);
      // Spread the variables over ten peers so per-peer fault plans apply.
      for (provenance::VarId x = 0; x < pool.size(); ++x) {
        pool.SetOwner(x, "peer" + std::to_string(x % 10));
      }
      std::vector<provenance::Dnf> dnfs = {datasets::PsiDnf(psi)};
      std::vector<double> pi = pool.Probabilities();
      Rng rng(7000 + 31 * rep);
      provenance::PartialValuation hidden = pool.SampleValuation(rng);

      // Fault-free baseline.
      strategy::EvaluationState baseline_state(dnfs, pi);
      strategy::FreqStrategy baseline_strategy;
      strategy::ProbeRun baseline = strategy::RunToCompletion(
          baseline_state, baseline_strategy, hidden);

      // Same hidden world behind a faulty oracle with retries. 16 attempts
      // make a lost variable virtually impossible even at 40% faults
      // (0.4^16 ~ 4e-9), so the runs must match the baseline exactly.
      consent::FaultPlan plan;
      plan.seed = 9100 + rep;
      plan.defaults.transient_failure_prob = p_fault;
      plan.defaults.latency_nanos = 2'000'000;  // 2ms per attempt
      VirtualClock clock;
      consent::ValuationOracle backing(hidden);
      consent::FaultyOracle faulty(backing, pool, plan, &clock);
      core::RetryPolicy policy;
      policy.max_attempts = 16;
      policy.jitter = 0.2;
      size_t retries = 0;
      strategy::EvaluationState state(dnfs, pi);
      strategy::FreqStrategy strategy;
      strategy::ResilientProbeRun run = strategy::RunToCompletionResilient(
          state, strategy, RetryProbe(faulty, policy, clock, retries));

      CONSENTDB_CHECK(run.trace == baseline.trace,
                      "faulty run diverged from the fault-free baseline");
      for (provenance::Truth t : run.outcomes) {
        total_unresolved += t == provenance::Truth::kUnknown ? 1 : 0;
      }
      total_probes += run.num_probes;
      total_attempts += faulty.stats().attempts;
      total_retries += retries;
      virtual_nanos += clock.NowNanos();
    }
    std::ostringstream label;
    label << std::fixed << std::setprecision(2) << p_fault;
    table.PrintRow(
        label.str(),
        {std::to_string(total_probes), std::to_string(total_attempts),
         std::to_string(total_retries),
         bench::FormatMean(static_cast<double>(total_attempts) /
                           static_cast<double>(total_probes)),
         std::to_string(virtual_nanos / 1'000'000),
         std::to_string(total_unresolved)});
  }

  // --- Part 2: full sessions under a 20% fault plan -----------------------
  const size_t rows = bench::Scaled(60);
  const size_t sessions = bench::Scaled(30);
  std::cout << "\n=== Full sessions (join workload, rows=" << rows
            << ", sessions=" << sessions << ") ===\n\n";

  consent::SharedDatabase sdb = BuildJoinDatabase(rows);
  core::ConsentManager manager(sdb);
  const std::string sql =
      "SELECT DISTINCT r.a FROM R r, S s WHERE r.b = s.b AND s.c = 1";

  size_t ff_probes = 0;
  size_t rs_probes = 0;
  size_t rs_retries = 0;
  size_t rs_unresolved = 0;
  size_t verdict_mismatches = 0;
  for (size_t i = 0; i < sessions; ++i) {
    Rng rng(5100 + 17 * i);
    provenance::PartialValuation hidden = sdb.pool().SampleValuation(rng);

    consent::ValuationOracle ff_oracle(hidden);
    Result<core::SessionReport> ff = manager.DecideAll(sql, ff_oracle);
    CONSENTDB_CHECK(ff.ok(), ff.status().ToString());
    ff_probes += ff.value().num_probes;

    consent::FaultPlan plan;
    plan.seed = 400 + i;
    plan.defaults.transient_failure_prob = 0.2;
    VirtualClock clock;
    consent::ValuationOracle backing(hidden);
    consent::FaultyOracle faulty(backing, sdb.pool(), plan, &clock);
    core::SessionOptions options;
    options.retry = core::RetryPolicy{};
    options.retry->max_attempts = 8;
    options.clock = &clock;
    Result<core::SessionReport> rs = manager.DecideAll(sql, faulty, options);
    CONSENTDB_CHECK(rs.ok(), rs.status().ToString());
    rs_probes += rs.value().num_probes;
    rs_retries += rs.value().num_retries;
    rs_unresolved += rs.value().num_unresolved;
    CONSENTDB_CHECK(
        ff.value().tuples.size() == rs.value().tuples.size(),
        "resilient session changed the output relation");
    for (size_t j = 0; j < ff.value().tuples.size(); ++j) {
      verdict_mismatches +=
          ff.value().tuples[j].shareable != rs.value().tuples[j].shareable ? 1
                                                                           : 0;
    }
  }
  std::cout << "20% transient faults: " << sessions
            << " sessions terminated; probes " << ff_probes
            << " (fault-free) vs " << rs_probes << " (resilient), "
            << rs_retries << " retries, " << rs_unresolved
            << " unresolved tuples, " << verdict_mismatches
            << " verdict mismatches\n";
  CONSENTDB_CHECK(ff_probes == rs_probes && rs_unresolved == 0 &&
                      verdict_mismatches == 0,
                  "transient-only faults must not change session outcomes");

  // A permanently-dead peer: sessions still terminate, affected tuples
  // degrade to UNRESOLVED.
  size_t dead_unresolved = 0;
  for (size_t i = 0; i < sessions; ++i) {
    Rng rng(5100 + 17 * i);
    provenance::PartialValuation hidden = sdb.pool().SampleValuation(rng);
    consent::FaultPlan plan;
    plan.seed = 800 + i;
    plan.per_peer["owner3"].permanently_unavailable = true;
    VirtualClock clock;
    consent::ValuationOracle backing(hidden);
    consent::FaultyOracle faulty(backing, sdb.pool(), plan, &clock);
    core::SessionOptions options;
    options.retry = core::RetryPolicy{};
    options.clock = &clock;
    Result<core::SessionReport> r = manager.DecideAll(sql, faulty, options);
    CONSENTDB_CHECK(r.ok(), r.status().ToString());
    dead_unresolved += r.value().num_unresolved;
  }
  std::cout << "dead peer (owner3): all " << sessions
            << " sessions terminated, " << dead_unresolved
            << " tuple verdicts degraded to UNRESOLVED\n";

  std::cout << "\nexpected shape: attempt overhead tracks 1/(1-p) while the "
               "probe count,\ntrace and verdicts stay identical to the "
               "fault-free run (zero unresolved);\nonly a permanently-dead "
               "peer produces UNRESOLVED verdicts.\n";
  return 0;
}
