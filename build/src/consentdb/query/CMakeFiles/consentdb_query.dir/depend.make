# Empty dependencies file for consentdb_query.
# This may be replaced when dependencies are built.
