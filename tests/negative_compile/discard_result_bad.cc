// MUST NOT COMPILE: a Result<T>-returning call whose result is dropped.
// Paired with discard_status_good.cc; see run_negative_compile.cmake.

#include "consentdb/util/result.h"

using consentdb::Result;
using consentdb::Status;

Result<int> MightFail() { return Status::Internal("boom"); }

int main() {
  MightFail();  // dropped error and value at once
  return 0;
}
