#include "consentdb/strategy/optimal.h"

#include "consentdb/strategy/runner.h"

#include <algorithm>
#include <set>

#include "consentdb/util/check.h"

namespace consentdb::strategy {

namespace {

// Canonical key: decided formulas dropped, formula order normalised.
std::string StateKey(const std::vector<Dnf>& residual) {
  std::vector<std::string> parts;
  parts.reserve(residual.size());
  for (const Dnf& dnf : residual) {
    if (dnf.IsConstantFalse() || dnf.IsConstantTrue()) continue;
    std::string s;
    for (const VarSet& term : dnf.terms()) {
      for (VarId v : term) {
        s += std::to_string(v);
        s += ',';
      }
      s += ';';
    }
    parts.push_back(std::move(s));
  }
  std::sort(parts.begin(), parts.end());
  std::string key;
  for (std::string& p : parts) {
    key += p;
    key += '|';
  }
  return key;
}

std::vector<VarId> UsefulVarsOf(const std::vector<Dnf>& residual) {
  std::set<VarId> vars;
  for (const Dnf& dnf : residual) {
    if (dnf.IsConstantFalse() || dnf.IsConstantTrue()) continue;
    for (const VarSet& term : dnf.terms()) {
      vars.insert(term.begin(), term.end());
    }
  }
  return {vars.begin(), vars.end()};
}

std::vector<Dnf> SimplifyAll(const std::vector<Dnf>& residual, VarId x,
                             bool value) {
  PartialValuation val;
  val.Set(x, value);
  std::vector<Dnf> out;
  out.reserve(residual.size());
  for (const Dnf& dnf : residual) {
    out.push_back(dnf.Simplify(val));
  }
  return out;
}

}  // namespace

OptimalDp::OptimalDp(std::vector<double> pi, Objective objective)
    : pi_(std::move(pi)), objective_(objective) {}

OptimalDp::Decision OptimalDp::Solve(const std::vector<Dnf>& residual) {
  std::vector<VarId> vars = UsefulVarsOf(residual);
  CONSENTDB_CHECK(vars.size() <= max_vars_,
                  "OptimalDp is exponential: " + std::to_string(vars.size()) +
                      " variables exceed the limit of " +
                      std::to_string(max_vars_));
  return SolveImpl(residual);
}

OptimalDp::Decision OptimalDp::SolveImpl(const std::vector<Dnf>& residual) {
  std::vector<VarId> vars = UsefulVarsOf(residual);
  if (vars.empty()) return Decision{};  // everything decided
  std::string key = StateKey(residual);
  auto it = memo_.find(key);
  if (it != memo_.end()) return it->second;

  Decision best;
  best.cost = -1.0;
  for (VarId x : vars) {
    CONSENTDB_CHECK(x < pi_.size(), "variable without probability");
    double p = pi_[x];
    Decision when_true = SolveImpl(SimplifyAll(residual, x, true));
    Decision when_false = SolveImpl(SimplifyAll(residual, x, false));
    double cost =
        objective_ == Objective::kExpectedCost
            ? 1.0 + p * when_true.cost + (1.0 - p) * when_false.cost
            : 1.0 + std::max(when_true.cost, when_false.cost);
    if (best.cost < 0.0 || cost < best.cost) {
      best.cost = cost;
      best.best = x;
    }
  }
  memo_.emplace(std::move(key), best);
  return best;
}

double OptimalExpectedCost(const std::vector<Dnf>& dnfs,
                           const std::vector<double>& pi, size_t max_vars) {
  OptimalDp dp(pi);
  dp.set_max_vars(max_vars);
  return dp.Solve(dnfs).cost;
}

double OptimalWorstCaseProbes(const std::vector<Dnf>& dnfs, size_t max_vars) {
  // Probabilities are irrelevant to the worst case; supply a dummy map
  // covering every variable.
  VarId max_var = 0;
  for (const Dnf& dnf : dnfs) {
    for (const VarSet& term : dnf.terms()) {
      for (VarId v : term) max_var = std::max(max_var, v);
    }
  }
  OptimalDp dp(std::vector<double>(max_var + 1, 0.5), Objective::kWorstCase);
  dp.set_max_vars(max_vars);
  return dp.Solve(dnfs).cost;
}

size_t WorstCaseProbes(const std::vector<Dnf>& dnfs,
                       const std::vector<double>& pi,
                       const StrategyFactory& factory, bool attach_cnfs) {
  std::vector<VarId> vars = UsefulVarsOf(dnfs);
  CONSENTDB_CHECK(vars.size() <= 20, "WorstCaseProbes limited to 20 vars");
  size_t worst = 0;
  size_t combos = static_cast<size_t>(1) << vars.size();
  for (size_t mask = 0; mask < combos; ++mask) {
    PartialValuation hidden(pi.size());
    for (size_t i = 0; i < vars.size(); ++i) {
      hidden.Set(vars[i], ((mask >> i) & 1) != 0);
    }
    EvaluationState state(dnfs, pi);
    if (attach_cnfs) {
      Status st = state.AttachCnfs();
      CONSENTDB_CHECK(st.ok(), st.ToString());
    }
    std::unique_ptr<ProbeStrategy> strategy = factory();
    ProbeRun run = RunToCompletion(state, *strategy, hidden);
    worst = std::max(worst, run.num_probes);
  }
  return worst;
}

OptimalStrategy::OptimalStrategy(std::vector<Dnf> dnfs,
                                 std::vector<double> pi, size_t max_vars)
    : residual_(std::move(dnfs)), dp_(std::move(pi)) {
  dp_.set_max_vars(max_vars);
}

VarId OptimalStrategy::ChooseNext(EvaluationState& state) {
  (void)state;  // the DP runs on our own residual copy
  OptimalDp::Decision d = dp_.Solve(residual_);
  CONSENTDB_CHECK(d.best != provenance::kInvalidVar,
                  "OptimalStrategy asked to choose with nothing undecided");
  return d.best;
}

void OptimalStrategy::OnAnswer(const EvaluationState& state, VarId x, bool value) {
  (void)state;
  val_.Set(x, value);
  PartialValuation just_x;
  just_x.Set(x, value);
  for (Dnf& dnf : residual_) dnf = dnf.Simplify(just_x);
}

}  // namespace consentdb::strategy
