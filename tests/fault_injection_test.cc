// Fault-injection + resilience layer: FaultPlan/FaultyOracle determinism,
// RetryPolicy backoff arithmetic, ledger fault semantics, the resilient
// runner's three-valued outcomes, and session-level graceful degradation.
// Everything runs on virtual time — no test sleeps for real.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "consentdb/consent/faulty_oracle.h"
#include "consentdb/consent/oracle.h"
#include "consentdb/core/consent_manager.h"
#include "consentdb/strategy/runner.h"
#include "consentdb/strategy/strategies.h"
#include "consentdb/obs/metrics.h"
#include "consentdb/util/clock.h"
#include "consentdb/util/hash_mix.h"
#include "consentdb/util/rng.h"
#include "test_fixtures.h"

namespace consentdb {
namespace {

using consent::FaultPlan;
using consent::FaultyOracle;
using consent::PeerFaults;
using consent::ProbeAttempt;
using consent::ProbeFault;
using consent::ValuationOracle;
using consent::VariablePool;
using core::RetryPolicy;
using core::SessionOptions;
using core::SessionReport;
using core::TupleConsent;
using provenance::Dnf;
using provenance::PartialValuation;
using provenance::Truth;
using provenance::VarId;
using provenance::VarSet;
using strategy::EvaluationState;
using strategy::FallibleProbe;
using strategy::ProbeOutcome;

// A pool of n variables spread over peers "p0".."p{peers-1}".
VariablePool MakePool(size_t n, size_t peers = 3) {
  VariablePool pool;
  for (size_t i = 0; i < n; ++i) {
    pool.Allocate("x" + std::to_string(i), "p" + std::to_string(i % peers),
                  0.5);
  }
  return pool;
}

PartialValuation AllTrue(size_t n) {
  PartialValuation val(n);
  for (size_t i = 0; i < n; ++i) val.Set(static_cast<VarId>(i), true);
  return val;
}

// --- FaultPlan ----------------------------------------------------------------

TEST(FaultPlanTest, DefaultPlanIsEmpty) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_TRUE(plan.defaults.faultless());
}

TEST(FaultPlanTest, FaultlessPerPeerEntriesKeepPlanEmpty) {
  FaultPlan plan;
  plan.per_peer["alice"] = PeerFaults{};
  EXPECT_TRUE(plan.empty());
}

TEST(FaultPlanTest, AnyFaultMakesPlanNonEmpty) {
  FaultPlan transient;
  transient.defaults.transient_failure_prob = 0.1;
  EXPECT_FALSE(transient.empty());

  FaultPlan dead;
  dead.per_peer["bob"].permanently_unavailable = true;
  EXPECT_FALSE(dead.empty());

  FaultPlan slow;
  slow.defaults.latency_nanos = 1;
  EXPECT_FALSE(slow.empty());
}

TEST(FaultPlanTest, ForPrefersPerPeerOverride) {
  FaultPlan plan;
  plan.defaults.transient_failure_prob = 0.5;
  plan.per_peer["alice"].transient_failure_prob = 0.9;
  EXPECT_DOUBLE_EQ(plan.For("alice").transient_failure_prob, 0.9);
  EXPECT_DOUBLE_EQ(plan.For("bob").transient_failure_prob, 0.5);
}

TEST(FaultPlanTest, ProbeFaultToString) {
  EXPECT_STREQ(consent::ProbeFaultToString(ProbeFault::kNone), "none");
  EXPECT_STREQ(consent::ProbeFaultToString(ProbeFault::kTransient),
               "transient");
  EXPECT_STREQ(consent::ProbeFaultToString(ProbeFault::kUnavailable),
               "unavailable");
}

// --- FaultyOracle -------------------------------------------------------------

TEST(FaultyOracleTest, EmptyPlanNeverFaults) {
  VariablePool pool = MakePool(8);
  ValuationOracle backing(AllTrue(8));
  FaultyOracle faulty(backing, pool, FaultPlan{});
  for (VarId x = 0; x < 8; ++x) {
    ProbeAttempt a = faulty.TryProbe(x);
    EXPECT_TRUE(a.ok());
    EXPECT_TRUE(a.answer);
  }
  EXPECT_EQ(faulty.stats().attempts, 8u);
  EXPECT_EQ(faulty.stats().successes, 8u);
  EXPECT_EQ(faulty.stats().transient_faults, 0u);
  EXPECT_EQ(faulty.probe_count(), 8u);
}

TEST(FaultyOracleTest, FaultScheduleIsDeterministicPerSeed) {
  VariablePool pool = MakePool(6);
  FaultPlan plan;
  plan.seed = 1234;
  plan.defaults.transient_failure_prob = 0.5;

  auto schedule = [&]() {
    ValuationOracle backing(AllTrue(6));
    FaultyOracle faulty(backing, pool, plan);
    std::vector<ProbeFault> faults;
    for (VarId x = 0; x < 6; ++x) {
      for (int attempt = 0; attempt < 10; ++attempt) {
        faults.push_back(faulty.TryProbe(x).fault);
      }
    }
    return faults;
  };
  EXPECT_EQ(schedule(), schedule());
}

TEST(FaultyOracleTest, DifferentSeedsGiveDifferentSchedules) {
  VariablePool pool = MakePool(6);
  auto schedule = [&pool](uint64_t seed) {
    FaultPlan plan;
    plan.seed = seed;
    plan.defaults.transient_failure_prob = 0.5;
    ValuationOracle backing(AllTrue(6));
    FaultyOracle faulty(backing, pool, plan);
    std::vector<ProbeFault> faults;
    for (VarId x = 0; x < 6; ++x) {
      for (int attempt = 0; attempt < 10; ++attempt) {
        faults.push_back(faulty.TryProbe(x).fault);
      }
    }
    return faults;
  };
  EXPECT_NE(schedule(1), schedule(2));
}

TEST(FaultyOracleTest, ScheduleIndependentOfProbeInterleaving) {
  // The fault decision hashes (seed, variable, per-variable attempt index),
  // so probing variables in a different global order must not change which
  // attempts fault.
  VariablePool pool = MakePool(4);
  FaultPlan plan;
  plan.seed = 77;
  plan.defaults.transient_failure_prob = 0.5;

  // Order A: x0 x0 x1 x1 x2 x2 x3 x3. Order B: x3 x2 x1 x0 x0 x1 x2 x3.
  std::vector<VarId> order_a = {0, 0, 1, 1, 2, 2, 3, 3};
  std::vector<VarId> order_b = {3, 2, 1, 0, 0, 1, 2, 3};
  auto run = [&](const std::vector<VarId>& order) {
    ValuationOracle backing(AllTrue(4));
    FaultyOracle faulty(backing, pool, plan);
    // Map (variable, attempt index) -> fault for comparison.
    std::map<std::pair<VarId, size_t>, ProbeFault> outcome;
    std::map<VarId, size_t> next_attempt;
    for (VarId x : order) {
      size_t k = next_attempt[x]++;
      outcome[{x, k}] = faulty.TryProbe(x).fault;
    }
    return outcome;
  };
  auto a = run(order_a);
  auto b = run(order_b);
  for (const auto& [key, fault] : a) {
    auto it = b.find(key);
    if (it != b.end()) EXPECT_EQ(fault, it->second);
  }
}

TEST(FaultyOracleTest, TransientFaultAnswersOnRetry) {
  VariablePool pool = MakePool(1);
  FaultPlan plan;
  plan.seed = 5;
  plan.defaults.transient_failure_prob = 0.9;
  ValuationOracle backing(AllTrue(1));
  FaultyOracle faulty(backing, pool, plan);
  // With p=0.9 an answer still arrives with probability 1 over retries.
  for (int i = 0; i < 1000; ++i) {
    ProbeAttempt a = faulty.TryProbe(0);
    if (a.ok()) {
      EXPECT_TRUE(a.answer);
      EXPECT_GT(faulty.stats().transient_faults, 0u);
      return;
    }
    EXPECT_EQ(a.fault, ProbeFault::kTransient);
  }
  FAIL() << "1000 attempts at p=0.9 never answered (broken schedule hash)";
}

TEST(FaultyOracleTest, PermanentlyUnavailablePeer) {
  VariablePool pool = MakePool(6, /*peers=*/3);  // x0,x3 belong to p0
  FaultPlan plan;
  plan.per_peer["p0"].permanently_unavailable = true;
  ValuationOracle backing(AllTrue(6));
  FaultyOracle faulty(backing, pool, plan);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(faulty.TryProbe(0).fault, ProbeFault::kUnavailable);
    EXPECT_EQ(faulty.TryProbe(3).fault, ProbeFault::kUnavailable);
  }
  EXPECT_TRUE(faulty.TryProbe(1).ok());  // p1 unaffected
  EXPECT_EQ(faulty.stats().unavailable_faults, 6u);
  EXPECT_EQ(faulty.stats().successes, 1u);
}

TEST(FaultyOracleTest, PeerCrashesAfterAnswerBudget) {
  VariablePool pool = MakePool(6, /*peers=*/2);  // p0 owns x0,x2,x4
  FaultPlan plan;
  plan.per_peer["p0"].crash_after_answers = 2;
  ValuationOracle backing(AllTrue(6));
  FaultyOracle faulty(backing, pool, plan);
  EXPECT_TRUE(faulty.TryProbe(0).ok());
  EXPECT_TRUE(faulty.TryProbe(2).ok());
  // Third ask of the crashed peer fails permanently — crash-after-answer.
  EXPECT_EQ(faulty.TryProbe(4).fault, ProbeFault::kUnavailable);
  EXPECT_EQ(faulty.TryProbe(0).fault, ProbeFault::kUnavailable);
  EXPECT_TRUE(faulty.TryProbe(1).ok());  // p1 still alive
  EXPECT_EQ(faulty.stats().crashed_peers, 1u);
}

TEST(FaultyOracleTest, InjectedLatencyAdvancesTheVirtualClock) {
  VariablePool pool = MakePool(2);
  FaultPlan plan;
  plan.defaults.latency_nanos = 5'000'000;  // 5ms per attempt
  VirtualClock clock;
  ValuationOracle backing(AllTrue(2));
  FaultyOracle faulty(backing, pool, plan, &clock);
  EXPECT_TRUE(faulty.TryProbe(0).ok());
  EXPECT_TRUE(faulty.TryProbe(1).ok());
  EXPECT_EQ(clock.NowNanos(), 10'000'000);
}

TEST(FaultyOracleTest, AttemptsForCountsPerVariable) {
  VariablePool pool = MakePool(2);
  FaultPlan plan;
  plan.defaults.transient_failure_prob = 0.5;
  plan.seed = 3;
  ValuationOracle backing(AllTrue(2));
  FaultyOracle faulty(backing, pool, plan);
  for (int i = 0; i < 4; ++i) faulty.TryProbe(0);
  faulty.TryProbe(1);
  EXPECT_EQ(faulty.attempts_for(0), 4u);
  EXPECT_EQ(faulty.attempts_for(1), 1u);
  EXPECT_EQ(faulty.attempts_for(99), 0u);
}

TEST(FaultyOracleDeathTest, InfalliblePathRejectsInjectedFaults) {
  VariablePool pool = MakePool(1);
  FaultPlan plan;
  plan.per_peer["p0"].permanently_unavailable = true;
  ValuationOracle backing(AllTrue(1));
  FaultyOracle faulty(backing, pool, plan);
  EXPECT_DEATH(faulty.Probe(0), "infallible probe path");
}

// --- RetryPolicy backoff -------------------------------------------------------

TEST(RetryPolicyTest, ExponentialBackoffSequence) {
  RetryPolicy policy;  // 1ms initial, x2, 1s cap, no jitter
  EXPECT_EQ(policy.BackoffNanos(1, 0), 1'000'000);
  EXPECT_EQ(policy.BackoffNanos(2, 0), 2'000'000);
  EXPECT_EQ(policy.BackoffNanos(3, 0), 4'000'000);
  EXPECT_EQ(policy.BackoffNanos(4, 0), 8'000'000);
  EXPECT_EQ(policy.BackoffNanos(10, 0), 512'000'000);
}

TEST(RetryPolicyTest, BackoffIsCappedAtMax) {
  RetryPolicy policy;
  policy.max_backoff_nanos = 10'000'000;
  EXPECT_EQ(policy.BackoffNanos(1, 0), 1'000'000);
  EXPECT_EQ(policy.BackoffNanos(30, 0), 10'000'000);
}

TEST(RetryPolicyTest, JitterStaysWithinConfiguredBand) {
  RetryPolicy policy;
  policy.jitter = 0.25;
  policy.jitter_seed = 99;
  for (size_t attempt = 1; attempt <= 8; ++attempt) {
    for (VarId x = 0; x < 16; ++x) {
      RetryPolicy plain = policy;
      plain.jitter = 0.0;
      const double base = static_cast<double>(plain.BackoffNanos(attempt, x));
      const double jittered =
          static_cast<double>(policy.BackoffNanos(attempt, x));
      EXPECT_GE(jittered, base * 0.75 - 1);
      EXPECT_LE(jittered, base * 1.25 + 1);
    }
  }
}

TEST(RetryPolicyTest, JitterIsDeterministic) {
  RetryPolicy policy;
  policy.jitter = 0.5;
  policy.jitter_seed = 7;
  EXPECT_EQ(policy.BackoffNanos(3, 11), policy.BackoffNanos(3, 11));
  // Different variables draw different jitter (with overwhelming
  // probability for this seed — pinned here as a regression value).
  EXPECT_NE(policy.BackoffNanos(3, 11), policy.BackoffNanos(3, 12));
}

TEST(RetryPolicyTest, UnitUniformHashIsAPureFunction) {
  const double a = UnitUniformHash(1, 2, 3);
  EXPECT_EQ(a, UnitUniformHash(1, 2, 3));
  EXPECT_GE(a, 0.0);
  EXPECT_LT(a, 1.0);
  EXPECT_NE(a, UnitUniformHash(1, 2, 4));
}

// --- ConsentLedger fault semantics --------------------------------------------

TEST(LedgerFaultTest, FaultedAttemptLeavesNoTrace) {
  VariablePool pool = MakePool(2);
  FaultPlan plan;
  plan.per_peer["p0"].permanently_unavailable = true;
  ValuationOracle backing(AllTrue(2));
  FaultyOracle faulty(backing, pool, plan);
  consent::ConsentLedger ledger;

  ProbeAttempt a = ledger.TryProbeVia(faulty, 0);
  EXPECT_FALSE(a.ok());
  EXPECT_EQ(ledger.size(), 0u);
  EXPECT_EQ(ledger.faulted_probes(), 1u);
  EXPECT_FALSE(ledger.Lookup(0).has_value());
}

TEST(LedgerFaultTest, SuccessIsRecordedAndServedFromLedger) {
  VariablePool pool = MakePool(2);
  ValuationOracle backing(AllTrue(2));
  FaultyOracle faulty(backing, pool, FaultPlan{});
  consent::ConsentLedger ledger;

  bool from_ledger = true;
  ProbeAttempt first = ledger.TryProbeVia(faulty, 1, &from_ledger);
  EXPECT_TRUE(first.ok());
  EXPECT_FALSE(from_ledger);

  ProbeAttempt second = ledger.TryProbeVia(faulty, 1, &from_ledger);
  EXPECT_TRUE(second.ok());
  EXPECT_TRUE(from_ledger);
  EXPECT_EQ(second.answer, first.answer);
  EXPECT_EQ(faulty.stats().attempts, 1u);  // the peer was asked once
  EXPECT_EQ(ledger.hits(), 1u);
}

TEST(LedgerFaultTest, RetryAfterTransientFaultReachesThePeerAgain) {
  VariablePool pool = MakePool(1);
  FaultPlan plan;
  plan.seed = 5;  // same seed as TransientFaultAnswersOnRetry: x0 faults
  plan.defaults.transient_failure_prob = 0.9;
  ValuationOracle backing(AllTrue(1));
  FaultyOracle faulty(backing, pool, plan);
  consent::ConsentLedger ledger;

  size_t peer_attempts = 0;
  for (int i = 0; i < 1000; ++i) {
    ++peer_attempts;
    if (ledger.TryProbeVia(faulty, 0).ok()) break;
  }
  EXPECT_EQ(faulty.attempts_for(0), peer_attempts);
  EXPECT_EQ(ledger.size(), 1u);
  EXPECT_EQ(ledger.oracle_probes(), 1u);
  EXPECT_EQ(ledger.faulted_probes(), peer_attempts - 1);
}

// --- Resilient runner ----------------------------------------------------------

TEST(ResilientRunnerTest, FaultFreeRunMatchesRunToCompletionExactly) {
  std::vector<double> pi = {0.3, 0.6, 0.8, 0.4};
  PartialValuation hidden(4);
  hidden.Set(0, true);
  hidden.Set(1, false);
  hidden.Set(2, true);
  hidden.Set(3, true);
  std::vector<Dnf> dnfs = {Dnf({VarSet{0, 1}, VarSet{2, 3}}),
                           Dnf({VarSet{1, 3}})};

  EvaluationState baseline_state(dnfs, pi);
  strategy::FreqStrategy baseline_strategy;
  strategy::ProbeRun baseline =
      strategy::RunToCompletion(baseline_state, baseline_strategy, hidden);

  EvaluationState state(dnfs, pi);
  strategy::FreqStrategy freq;
  strategy::ResilientProbeRun run = strategy::RunToCompletionResilient(
      state, freq, [&hidden](VarId x) {
        return FallibleProbe{ProbeOutcome::kAnswered,
                             hidden.Get(x) == Truth::kTrue};
      });

  EXPECT_EQ(run.trace, baseline.trace);
  EXPECT_EQ(run.num_probes, baseline.num_probes);
  EXPECT_EQ(run.outcomes, baseline.outcomes);
  EXPECT_EQ(run.num_lost, 0u);
  EXPECT_FALSE(run.session_expired);
}

TEST(ResilientRunnerTest, LosingTheOnlyVariableResolvesToUnknown) {
  std::vector<double> pi = {0.5};
  EvaluationState state({Dnf({VarSet{0}})}, pi);
  strategy::FreqStrategy freq;
  strategy::ResilientProbeRun run = strategy::RunToCompletionResilient(
      state, freq,
      [](VarId) { return FallibleProbe{ProbeOutcome::kVariableLost, false}; });
  EXPECT_EQ(run.outcomes, std::vector<Truth>{Truth::kUnknown});
  EXPECT_EQ(run.num_lost, 1u);
  EXPECT_EQ(run.num_probes, 0u);
  EXPECT_TRUE(run.trace.empty());
}

TEST(ResilientRunnerTest, LostVariableTermCanStillBeFalsified) {
  // Formula (x0 AND x1): x0 is lost, but x1 = False falsifies the term.
  std::vector<double> pi = {0.5, 0.5};
  EvaluationState state({Dnf({VarSet{0, 1}})}, pi);
  strategy::FreqStrategy freq;
  strategy::ResilientProbeRun run = strategy::RunToCompletionResilient(
      state, freq, [](VarId x) {
        if (x == 0) return FallibleProbe{ProbeOutcome::kVariableLost, false};
        return FallibleProbe{ProbeOutcome::kAnswered, false};
      });
  EXPECT_EQ(run.outcomes, std::vector<Truth>{Truth::kFalse});
  EXPECT_EQ(run.num_lost, 1u);
  EXPECT_EQ(run.num_probes, 1u);
}

TEST(ResilientRunnerTest, LostVariableFormulaDecidedThroughOtherTerm) {
  // Formula (x0 OR x1): x0 lost, x1 = True still proves the disjunction.
  std::vector<double> pi = {0.5, 0.5};
  EvaluationState state({Dnf({VarSet{0}, VarSet{1}})}, pi);
  strategy::FreqStrategy freq;
  strategy::ResilientProbeRun run = strategy::RunToCompletionResilient(
      state, freq, [](VarId x) {
        if (x == 0) return FallibleProbe{ProbeOutcome::kVariableLost, false};
        return FallibleProbe{ProbeOutcome::kAnswered, true};
      });
  EXPECT_EQ(run.outcomes, std::vector<Truth>{Truth::kTrue});
  EXPECT_EQ(run.num_lost, 1u);
}

TEST(ResilientRunnerTest, SessionExpiryStopsTheLoopImmediately) {
  std::vector<double> pi = {0.5, 0.5};
  EvaluationState state({Dnf({VarSet{0}}), Dnf({VarSet{1}})}, pi);
  strategy::FreqStrategy freq;
  size_t calls = 0;
  strategy::ResilientProbeRun run = strategy::RunToCompletionResilient(
      state, freq, [&calls](VarId) {
        ++calls;
        return FallibleProbe{ProbeOutcome::kSessionExpired, false};
      });
  EXPECT_TRUE(run.session_expired);
  EXPECT_EQ(calls, 1u);
  EXPECT_EQ(run.outcomes[0], Truth::kUnknown);
  EXPECT_EQ(run.outcomes[1], Truth::kUnknown);
}

TEST(ResilientRunnerTest, EveryStrategySurvivesLostVariables) {
  // Two overlapping formulas; x1 is lost, everything else answers True.
  // Whatever the strategy, the run must terminate with consistent
  // three-valued outcomes and never probe x1 twice.
  std::vector<double> pi = {0.4, 0.5, 0.6, 0.7};
  std::vector<Dnf> dnfs = {Dnf({VarSet{0, 1}, VarSet{2}}),
                           Dnf({VarSet{1, 3}})};
  struct Named {
    std::string name;
    strategy::StrategyFactory factory;
  };
  std::vector<Named> factories = {
      {"Random", strategy::MakeRandomFactory(17)},
      {"Freq", strategy::MakeFreqFactory()},
      {"RO", strategy::MakeRoFactory()},
      {"General", strategy::MakeGeneralFactory()},
      {"Hybrid", strategy::MakeHybridFactory()},
  };
  for (const Named& entry : factories) {
    EvaluationState state(dnfs, pi);
    std::unique_ptr<strategy::ProbeStrategy> strat = entry.factory();
    strategy::ResilientProbeRun run = strategy::RunToCompletionResilient(
        state, *strat, [](VarId x) {
          if (x == 1) return FallibleProbe{ProbeOutcome::kVariableLost, false};
          return FallibleProbe{ProbeOutcome::kAnswered, true};
        });
    SCOPED_TRACE(entry.name);
    EXPECT_LE(run.num_lost, 1u);
    // Formula 0 is provable through {2} regardless of x1.
    EXPECT_EQ(run.outcomes[0], Truth::kTrue);
    // Formula 1 needs x1: if x1 was lost it stays kUnknown.
    if (run.num_lost == 1) {
      EXPECT_EQ(run.outcomes[1], Truth::kUnknown);
    } else {
      EXPECT_EQ(run.outcomes[1], Truth::kTrue);
    }
  }
}

// --- EvaluationState unreachable bookkeeping -----------------------------------

TEST(UnreachableStateTest, MarkUnreachableRemovesUsefulness) {
  std::vector<double> pi = {0.5, 0.5};
  EvaluationState state({Dnf({VarSet{0}, VarSet{1}})}, pi);
  EXPECT_TRUE(state.IsUseful(0));
  EXPECT_TRUE(state.HasUsefulVar());
  state.MarkUnreachable(0);
  EXPECT_FALSE(state.IsUseful(0));
  EXPECT_TRUE(state.IsUnreachable(0));
  EXPECT_EQ(state.num_unreachable(), 1u);
  EXPECT_TRUE(state.HasUsefulVar());  // x1 remains
  state.MarkUnreachable(1);
  EXPECT_FALSE(state.HasUsefulVar());
  EXPECT_EQ(state.var_value(0), Truth::kUnknown);  // still unknown, not False
}

TEST(UnreachableStateTest, RoSkipsTermsWithAllVariablesDead) {
  // Term {0} is the best ratio but x0 is dead; RO must move to {1,2}.
  std::vector<double> pi = {0.9, 0.5, 0.5};
  EvaluationState state({Dnf({VarSet{0}, VarSet{1, 2}})}, pi);
  state.MarkUnreachable(0);
  strategy::RoStrategy ro;
  VarId x = ro.ChooseNext(state);
  EXPECT_TRUE(x == 1 || x == 2);
}

TEST(UnreachableStateTest, RoSkipsDeadVariableInsideCurrentTerm) {
  // Within term {0,1,2}, x1 has the lowest probability but is dead: RO must
  // pick the best reachable variable instead.
  std::vector<double> pi = {0.9, 0.2, 0.5};
  EvaluationState state({Dnf({VarSet{0, 1, 2}})}, pi);
  state.MarkUnreachable(1);
  strategy::RoStrategy ro;
  EXPECT_EQ(ro.ChooseNext(state), 2u);
}

// --- Session-level resilience --------------------------------------------------

TEST(ResilientSessionTest, TransientFaultsPreserveTheFaultFreeSession) {
  consent::SharedDatabase sdb = testing::RecruitmentDatabase();
  core::ConsentManager manager(sdb);
  Rng rng(41);
  PartialValuation hidden = sdb.pool().SampleValuation(rng);

  ValuationOracle plain(hidden);
  Result<SessionReport> fault_free =
      manager.DecideAll(testing::RecruitmentQuerySql(), plain);
  ASSERT_TRUE(fault_free.ok());

  FaultPlan plan;
  plan.seed = 2024;
  plan.defaults.transient_failure_prob = 0.3;
  VirtualClock clock;
  ValuationOracle backing(hidden);
  FaultyOracle faulty(backing, sdb.pool(), plan, &clock);
  SessionOptions options;
  options.retry = RetryPolicy{};
  options.retry->max_attempts = 12;
  options.clock = &clock;
  Result<SessionReport> resilient =
      manager.DecideAll(testing::RecruitmentQuerySql(), faulty, options);
  ASSERT_TRUE(resilient.ok());

  EXPECT_EQ(resilient.value().num_probes, fault_free.value().num_probes);
  EXPECT_EQ(resilient.value().num_unresolved, 0u);
  ASSERT_EQ(resilient.value().tuples.size(), fault_free.value().tuples.size());
  for (size_t i = 0; i < resilient.value().tuples.size(); ++i) {
    EXPECT_EQ(resilient.value().tuples[i].shareable,
              fault_free.value().tuples[i].shareable);
    EXPECT_NE(resilient.value().tuples[i].verdict,
              TupleConsent::Verdict::kUnresolved);
  }
  // The probe sequences are identical record for record.
  ASSERT_EQ(resilient.value().trace.size(), fault_free.value().trace.size());
  for (size_t i = 0; i < resilient.value().trace.size(); ++i) {
    EXPECT_EQ(resilient.value().trace[i].variable,
              fault_free.value().trace[i].variable);
    EXPECT_EQ(resilient.value().trace[i].answer,
              fault_free.value().trace[i].answer);
  }
  if (faulty.stats().transient_faults > 0) {
    EXPECT_GT(resilient.value().num_retries, 0u);
  }
}

TEST(ResilientSessionTest, ExhaustedRetriesDegradeToUnresolved) {
  consent::SharedDatabase sdb = testing::RecruitmentDatabase();
  core::ConsentManager manager(sdb);
  Rng rng(42);
  PartialValuation hidden = sdb.pool().SampleValuation(rng);

  // Every peer faults on every attempt: nothing can ever be answered.
  FaultPlan plan;
  plan.defaults.transient_failure_prob = 1.0;
  VirtualClock clock;
  ValuationOracle backing(hidden);
  FaultyOracle faulty(backing, sdb.pool(), plan, &clock);
  SessionOptions options;
  options.retry = RetryPolicy{};
  options.retry->max_attempts = 3;
  options.clock = &clock;
  Result<SessionReport> report =
      manager.DecideAll(testing::RecruitmentQuerySql(), faulty, options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().resilient);
  EXPECT_EQ(report.value().num_probes, 0u);
  EXPECT_EQ(report.value().num_unresolved, report.value().tuples.size());
  EXPECT_GT(report.value().num_unresolved, 0u);
  EXPECT_GT(report.value().failures.retries_exhausted, 0u);
  EXPECT_GT(report.value().failures.transient, 0u);
  for (const TupleConsent& tc : report.value().tuples) {
    EXPECT_EQ(tc.verdict, TupleConsent::Verdict::kUnresolved);
    EXPECT_FALSE(tc.shareable);  // consent defaults to deny
  }
}

TEST(ResilientSessionTest, DeadPeerDegradesDependentTuplesToUnresolved) {
  // Every 'hired' term of Q_ex runs through one of Bob's tuples, so with
  // Bob permanently unreachable the output tuple can neither be proved
  // (every term needs a Bob variable) nor refuted (Bob's variables stay
  // Unknown while everyone else answers True): the session must terminate
  // with the tuple UNRESOLVED after losing Bob's probes without retries.
  consent::SharedDatabase sdb = testing::RecruitmentDatabase();
  core::ConsentManager manager(sdb);
  PartialValuation hidden(sdb.pool().size());
  for (VarId x = 0; x < sdb.pool().size(); ++x) hidden.Set(x, true);

  FaultPlan plan;
  plan.per_peer["Bob"].permanently_unavailable = true;
  VirtualClock clock;
  ValuationOracle backing(hidden);
  FaultyOracle faulty(backing, sdb.pool(), plan, &clock);
  SessionOptions options;
  options.retry = RetryPolicy{};
  options.clock = &clock;
  Result<SessionReport> report =
      manager.DecideAll(testing::RecruitmentQuerySql(), faulty, options);
  ASSERT_TRUE(report.ok());
  // The session terminated; Bob's probes were lost without retries.
  EXPECT_GT(report.value().failures.unavailable, 0u);
  EXPECT_EQ(report.value().failures.retries_exhausted, 0u);
  EXPECT_GT(report.value().num_unresolved, 0u);
  size_t unresolved = 0;
  for (const TupleConsent& tc : report.value().tuples) {
    unresolved += tc.verdict == TupleConsent::Verdict::kUnresolved ? 1 : 0;
  }
  EXPECT_EQ(unresolved, report.value().num_unresolved);
}

TEST(ResilientSessionTest, SessionDeadlineExpiresViaVirtualTime) {
  consent::SharedDatabase sdb = testing::RecruitmentDatabase();
  core::ConsentManager manager(sdb);
  Rng rng(43);
  PartialValuation hidden = sdb.pool().SampleValuation(rng);

  FaultPlan plan;
  plan.defaults.latency_nanos = 10'000'000;  // 10ms per attempt
  VirtualClock clock;
  ValuationOracle backing(hidden);
  FaultyOracle faulty(backing, sdb.pool(), plan, &clock);
  SessionOptions options;
  options.retry = RetryPolicy{};
  options.retry->session_deadline_nanos = 25'000'000;  // fits ~2 probes
  options.clock = &clock;
  Result<SessionReport> report =
      manager.DecideAll(testing::RecruitmentQuerySql(), faulty, options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().failures.session_deadline, 1u);
  EXPECT_LE(report.value().num_probes, 3u);
  EXPECT_GT(report.value().num_unresolved, 0u);
}

TEST(ResilientSessionTest, BackoffSleepIsClampedToSessionDeadline) {
  // Regression: a scheduled backoff used to be slept in full even when it
  // overshot the session deadline, so a session with a 10s backoff and a
  // 50ms deadline burned 10s of (virtual) wall clock before noticing it had
  // expired. The prober must clamp every backoff sleep to the remaining
  // session budget.
  consent::SharedDatabase sdb = testing::RecruitmentDatabase();
  core::ConsentManager manager(sdb);
  Rng rng(45);
  PartialValuation hidden = sdb.pool().SampleValuation(rng);

  FaultPlan plan;
  plan.defaults.transient_failure_prob = 1.0;  // every attempt backs off
  VirtualClock clock;
  ValuationOracle backing(hidden);
  FaultyOracle faulty(backing, sdb.pool(), plan, &clock);
  SessionOptions options;
  options.retry = RetryPolicy{};
  options.retry->initial_backoff_nanos = 10'000'000'000;  // 10s
  options.retry->max_backoff_nanos = 10'000'000'000;
  options.retry->session_deadline_nanos = 50'000'000;  // 50ms
  options.clock = &clock;

  const int64_t start = clock.NowNanos();
  Result<SessionReport> report =
      manager.DecideAll(testing::RecruitmentQuerySql(), faulty, options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().failures.session_deadline, 1u);
  const int64_t elapsed = clock.NowNanos() - start;
  // The first backoff alone would be 200x the deadline; clamped, the whole
  // session ends within a small multiple of the deadline.
  EXPECT_LT(elapsed, 2 * options.retry->session_deadline_nanos) << elapsed;
}

TEST(ResilientSessionTest, ProbeDeadlineLosesSlowVariables) {
  consent::SharedDatabase sdb = testing::RecruitmentDatabase();
  core::ConsentManager manager(sdb);
  Rng rng(44);
  PartialValuation hidden = sdb.pool().SampleValuation(rng);

  FaultPlan plan;
  plan.defaults.transient_failure_prob = 1.0;  // never answers
  VirtualClock clock;
  ValuationOracle backing(hidden);
  FaultyOracle faulty(backing, sdb.pool(), plan, &clock);
  SessionOptions options;
  options.retry = RetryPolicy{};
  options.retry->max_attempts = 0;  // unlimited: only the deadline stops it
  options.retry->probe_deadline_nanos = 20'000'000;  // 20ms per probe
  options.clock = &clock;
  Result<SessionReport> report =
      manager.DecideAll(testing::RecruitmentQuerySql(), faulty, options);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report.value().failures.probe_deadline, 0u);
  EXPECT_EQ(report.value().num_unresolved, report.value().tuples.size());
}

TEST(ResilientSessionTest, LegacyReportsOmitResilienceFields) {
  consent::SharedDatabase sdb = testing::RecruitmentDatabase();
  core::ConsentManager manager(sdb);
  Rng rng(45);
  ValuationOracle oracle(sdb.pool().SampleValuation(rng));
  Result<SessionReport> report =
      manager.DecideAll(testing::RecruitmentQuerySql(), oracle);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.value().resilient);
  const std::string json = report.value().ToJson();
  EXPECT_EQ(json.find("num_retries"), std::string::npos);
  EXPECT_EQ(json.find("verdict"), std::string::npos);
  EXPECT_EQ(json.find("failures"), std::string::npos);
  const std::string text = report.value().ToString();
  EXPECT_EQ(text.find("unresolved"), std::string::npos);
  EXPECT_EQ(text.find("retries"), std::string::npos);
}

TEST(ResilientSessionTest, ResilientReportsCarryResilienceFields) {
  consent::SharedDatabase sdb = testing::RecruitmentDatabase();
  core::ConsentManager manager(sdb);
  Rng rng(46);
  PartialValuation hidden = sdb.pool().SampleValuation(rng);
  VirtualClock clock;
  ValuationOracle backing(hidden);
  FaultyOracle faulty(backing, sdb.pool(), FaultPlan{}, &clock);
  SessionOptions options;
  options.retry = RetryPolicy{};
  options.clock = &clock;
  Result<SessionReport> report =
      manager.DecideAll(testing::RecruitmentQuerySql(), faulty, options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().resilient);
  const std::string json = report.value().ToJson();
  EXPECT_NE(json.find("\"num_retries\""), std::string::npos);
  EXPECT_NE(json.find("\"num_unresolved\""), std::string::npos);
  EXPECT_NE(json.find("\"failures\""), std::string::npos);
  EXPECT_NE(json.find("\"verdict\""), std::string::npos);
  const std::string text = report.value().ToString();
  EXPECT_NE(text.find("unresolved=0"), std::string::npos);
}

TEST(ResilientSessionTest, EmptyFaultPlanIsByteIdenticalToLegacyProbes) {
  // A resilient session over a faultless oracle must issue the exact probe
  // sequence of the legacy session — the resilience layer is free when
  // nothing fails.
  consent::SharedDatabase sdb = testing::RecruitmentDatabase();
  core::ConsentManager manager(sdb);
  Rng rng(47);
  PartialValuation hidden = sdb.pool().SampleValuation(rng);

  ValuationOracle plain(hidden);
  Result<SessionReport> legacy =
      manager.DecideAll(testing::RecruitmentQuerySql(), plain);
  ASSERT_TRUE(legacy.ok());

  VirtualClock clock;
  ValuationOracle backing(hidden);
  FaultyOracle faulty(backing, sdb.pool(), FaultPlan{}, &clock);
  SessionOptions options;
  options.retry = RetryPolicy{};
  options.clock = &clock;
  Result<SessionReport> resilient =
      manager.DecideAll(testing::RecruitmentQuerySql(), faulty, options);
  ASSERT_TRUE(resilient.ok());

  EXPECT_EQ(resilient.value().num_probes, legacy.value().num_probes);
  EXPECT_EQ(resilient.value().num_retries, 0u);
  EXPECT_EQ(clock.NowNanos(), 0);  // no backoff, no latency
  ASSERT_EQ(resilient.value().trace.size(), legacy.value().trace.size());
  for (size_t i = 0; i < legacy.value().trace.size(); ++i) {
    EXPECT_EQ(resilient.value().trace[i].variable,
              legacy.value().trace[i].variable);
    EXPECT_EQ(resilient.value().trace[i].answer,
              legacy.value().trace[i].answer);
  }
}

TEST(ResilientSessionTest, RetryMetricsLandInTheRegistry) {
  consent::SharedDatabase sdb = testing::RecruitmentDatabase();
  core::ConsentManager manager(sdb);
  Rng rng(48);
  PartialValuation hidden = sdb.pool().SampleValuation(rng);

  obs::MetricsRegistry metrics;
  FaultPlan plan;
  plan.seed = 9;
  plan.defaults.transient_failure_prob = 0.5;
  VirtualClock clock;
  ValuationOracle backing(hidden);
  FaultyOracle faulty(backing, sdb.pool(), plan, &clock);
  SessionOptions options;
  options.retry = RetryPolicy{};
  options.retry->max_attempts = 20;
  options.clock = &clock;
  options.metrics = &metrics;
  Result<SessionReport> report =
      manager.DecideAll(testing::RecruitmentQuerySql(), faulty, options);
  ASSERT_TRUE(report.ok());
  ASSERT_GT(faulty.stats().transient_faults, 0u);  // p=0.5: some faults
  EXPECT_EQ(metrics.GetCounter("retry.transient")->value(),
            faulty.stats().transient_faults);
  EXPECT_EQ(metrics.GetCounter("retry.count")->value(),
            report.value().num_retries);
  EXPECT_EQ(metrics.GetHistogram("retry.backoff_ns")->count(),
            report.value().num_retries);
  // Virtual time advanced by the backoffs; real time did not block.
  EXPECT_GT(clock.NowNanos(), 0);
}

}  // namespace
}  // namespace consentdb
