// Robustness ("fuzz-lite") tests: malformed and randomly generated inputs
// must produce Status errors, never crashes or CHECK failures.

#include <gtest/gtest.h>

#include "consentdb/eval/evaluate.h"
#include "consentdb/provenance/normal_form.h"
#include "consentdb/query/optimize.h"
#include "consentdb/query/parser.h"
#include "consentdb/relational/csv.h"
#include "consentdb/util/rng.h"

namespace consentdb {
namespace {

using query::ParseQuery;
using query::PlanPtr;
using relational::Column;
using relational::Schema;
using relational::ValueType;

// --- Parser ----------------------------------------------------------------------

class ParserFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(ParserFuzzTest, RandomBytesNeverCrash) {
  Rng rng(41000 + GetParam());
  const std::string alphabet =
      "abcXYZ019 \t\n.,*()'\"=<>!_-;#%&";
  for (int trial = 0; trial < 200; ++trial) {
    size_t length = rng.UniformIndex(64);
    std::string input;
    for (size_t i = 0; i < length; ++i) {
      input += alphabet[rng.UniformIndex(alphabet.size())];
    }
    // Must return (either way) without crashing.
    Result<PlanPtr> r = ParseQuery(input);
    if (r.ok()) {
      EXPECT_NE(*r, nullptr);
    } else {
      EXPECT_FALSE(r.status().message().empty());
    }
  }
}

TEST_P(ParserFuzzTest, MutatedValidQueriesNeverCrash) {
  Rng rng(42000 + GetParam());
  const std::string base =
      "SELECT a.x FROM T a, U b WHERE a.x = b.y AND a.z = 'lit' "
      "UNION SELECT c FROM V WHERE c > 1.5";
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = base;
    size_t edits = 1 + rng.UniformIndex(5);
    for (size_t e = 0; e < edits; ++e) {
      size_t pos = rng.UniformIndex(mutated.size());
      switch (rng.UniformIndex(3)) {
        case 0:
          mutated.erase(pos, 1);
          break;
        case 1:
          mutated.insert(pos, 1, "(),'*="[rng.UniformIndex(6)]);
          break;
        default:
          mutated[pos] = static_cast<char>('!' + rng.UniformIndex(90));
      }
      if (mutated.empty()) break;
    }
    (void)ParseQuery(mutated);  // must not crash
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest, ::testing::Range(0, 4));

// Queries that parse but reference garbage must fail cleanly at planning /
// evaluation time.
TEST(PlanFuzzTest, ParsedGarbageFailsWithStatusNotCrash) {
  relational::Database db;
  ASSERT_TRUE(
      db.CreateRelation("T", Schema({Column{"x", ValueType::kInt64}})).ok());
  const char* queries[] = {
      "SELECT * FROM Nope",
      "SELECT missing FROM T",
      "SELECT x FROM T WHERE ghost = 1",
      "SELECT * FROM T a, T a2, Nope",
      "SELECT x FROM T UNION SELECT * FROM T t2, T t3",  // arity mismatch
  };
  for (const char* sql : queries) {
    Result<PlanPtr> plan = ParseQuery(sql);
    if (!plan.ok()) continue;
    Result<relational::Relation> result = eval::Evaluate(*plan, db);
    EXPECT_FALSE(result.ok()) << sql;
    Result<PlanPtr> optimized = query::Optimize(*plan, db);
    EXPECT_FALSE(optimized.ok()) << sql;
  }
}

// --- CSV -------------------------------------------------------------------------

class CsvFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(CsvFuzzTest, RandomDocumentsNeverCrash) {
  Rng rng(43000 + GetParam());
  Schema schema({Column{"a", ValueType::kInt64},
                 Column{"b", ValueType::kString}});
  const std::string alphabet = "ab,\"\n\r123 x";
  for (int trial = 0; trial < 200; ++trial) {
    std::string doc = "a,b\n";
    size_t length = rng.UniformIndex(80);
    for (size_t i = 0; i < length; ++i) {
      doc += alphabet[rng.UniformIndex(alphabet.size())];
    }
    (void)relational::ReadRelationCsv(doc, schema);  // must not crash
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvFuzzTest, ::testing::Range(0, 3));

// --- Probability sanity (Monte Carlo) -----------------------------------------------

TEST(ProbabilitySanityTest, TrueProbabilityMatchesSampling) {
  using provenance::Dnf;
  using provenance::PartialValuation;
  using provenance::VarSet;
  Rng rng(44000);
  for (int trial = 0; trial < 10; ++trial) {
    size_t num_vars = 4 + rng.UniformIndex(3);
    std::vector<VarSet> terms;
    size_t num_terms = 1 + rng.UniformIndex(4);
    for (size_t t = 0; t < num_terms; ++t) {
      std::vector<provenance::VarId> term;
      size_t size = 1 + rng.UniformIndex(3);
      for (size_t s = 0; s < size; ++s) {
        term.push_back(static_cast<provenance::VarId>(
            rng.UniformIndex(num_vars)));
      }
      terms.emplace_back(std::move(term));
    }
    Dnf dnf(std::move(terms));
    std::vector<double> pi;
    for (size_t i = 0; i < num_vars; ++i) {
      pi.push_back(0.2 + 0.6 * rng.UniformReal());
    }
    double exact = dnf.TrueProbability(pi);
    int hits = 0;
    const int samples = 20000;
    for (int s = 0; s < samples; ++s) {
      PartialValuation val(num_vars);
      for (size_t i = 0; i < num_vars; ++i) {
        val.Set(static_cast<provenance::VarId>(i), rng.Bernoulli(pi[i]));
      }
      hits += dnf.Evaluate(val) == provenance::Truth::kTrue ? 1 : 0;
    }
    EXPECT_NEAR(static_cast<double>(hits) / samples, exact, 0.02)
        << dnf.ToString();
  }
}

}  // namespace
}  // namespace consentdb
