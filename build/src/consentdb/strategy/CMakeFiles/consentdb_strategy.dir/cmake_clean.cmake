file(REMOVE_RECURSE
  "CMakeFiles/consentdb_strategy.dir/batch_runner.cc.o"
  "CMakeFiles/consentdb_strategy.dir/batch_runner.cc.o.d"
  "CMakeFiles/consentdb_strategy.dir/bdd.cc.o"
  "CMakeFiles/consentdb_strategy.dir/bdd.cc.o.d"
  "CMakeFiles/consentdb_strategy.dir/evaluation_state.cc.o"
  "CMakeFiles/consentdb_strategy.dir/evaluation_state.cc.o.d"
  "CMakeFiles/consentdb_strategy.dir/expected_cost.cc.o"
  "CMakeFiles/consentdb_strategy.dir/expected_cost.cc.o.d"
  "CMakeFiles/consentdb_strategy.dir/optimal.cc.o"
  "CMakeFiles/consentdb_strategy.dir/optimal.cc.o.d"
  "CMakeFiles/consentdb_strategy.dir/runner.cc.o"
  "CMakeFiles/consentdb_strategy.dir/runner.cc.o.d"
  "CMakeFiles/consentdb_strategy.dir/strategies.cc.o"
  "CMakeFiles/consentdb_strategy.dir/strategies.cc.o.d"
  "libconsentdb_strategy.a"
  "libconsentdb_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consentdb_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
