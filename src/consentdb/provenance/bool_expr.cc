#include "consentdb/provenance/bool_expr.h"

#include <algorithm>

#include "consentdb/util/check.h"
#include "consentdb/util/string_util.h"

namespace consentdb::provenance {

namespace {

// Appends `child` to `out`, flattening children of the same kind.
void FlattenInto(ExprKind kind, const BoolExprPtr& child,
                 std::vector<BoolExprPtr>* out) {
  if (child->kind() == kind) {
    for (const BoolExprPtr& grandchild : child->children()) {
      out->push_back(grandchild);
    }
  } else {
    out->push_back(child);
  }
}

}  // namespace

BoolExprPtr BoolExpr::False() {
  static const BoolExprPtr instance(
      new BoolExpr(ExprKind::kFalse, kInvalidVar, {}));
  return instance;
}

BoolExprPtr BoolExpr::True() {
  static const BoolExprPtr instance(
      new BoolExpr(ExprKind::kTrue, kInvalidVar, {}));
  return instance;
}

BoolExprPtr BoolExpr::Var(VarId x) {
  CONSENTDB_CHECK(x != kInvalidVar, "invalid variable id");
  return BoolExprPtr(new BoolExpr(ExprKind::kVar, x, {}));
}

BoolExprPtr BoolExpr::And(BoolExprPtr a, BoolExprPtr b) {
  return AndN({std::move(a), std::move(b)});
}

BoolExprPtr BoolExpr::Or(BoolExprPtr a, BoolExprPtr b) {
  return OrN({std::move(a), std::move(b)});
}

BoolExprPtr BoolExpr::AndN(std::vector<BoolExprPtr> children) {
  std::vector<BoolExprPtr> kept;
  for (const BoolExprPtr& c : children) {
    CONSENTDB_CHECK(c != nullptr, "null child expression");
    if (c->kind() == ExprKind::kFalse) return False();
    if (c->kind() == ExprKind::kTrue) continue;  // neutral element
    FlattenInto(ExprKind::kAnd, c, &kept);
  }
  if (kept.empty()) return True();
  if (kept.size() == 1) return kept[0];
  return BoolExprPtr(new BoolExpr(ExprKind::kAnd, kInvalidVar, std::move(kept)));
}

BoolExprPtr BoolExpr::OrN(std::vector<BoolExprPtr> children) {
  std::vector<BoolExprPtr> kept;
  for (const BoolExprPtr& c : children) {
    CONSENTDB_CHECK(c != nullptr, "null child expression");
    if (c->kind() == ExprKind::kTrue) return True();
    if (c->kind() == ExprKind::kFalse) continue;  // neutral element
    FlattenInto(ExprKind::kOr, c, &kept);
  }
  if (kept.empty()) return False();
  if (kept.size() == 1) return kept[0];
  return BoolExprPtr(new BoolExpr(ExprKind::kOr, kInvalidVar, std::move(kept)));
}

VarId BoolExpr::var() const {
  CONSENTDB_CHECK(kind_ == ExprKind::kVar, "not a variable node");
  return var_;
}

Truth BoolExpr::Evaluate(const PartialValuation& val) const {
  switch (kind_) {
    case ExprKind::kFalse:
      return Truth::kFalse;
    case ExprKind::kTrue:
      return Truth::kTrue;
    case ExprKind::kVar:
      return val.Get(var_);
    case ExprKind::kAnd: {
      Truth acc = Truth::kTrue;
      for (const BoolExprPtr& c : children_) {
        acc = KleeneAnd(acc, c->Evaluate(val));
        if (acc == Truth::kFalse) break;  // short-circuit: False dominates
      }
      return acc;
    }
    case ExprKind::kOr: {
      Truth acc = Truth::kFalse;
      for (const BoolExprPtr& c : children_) {
        acc = KleeneOr(acc, c->Evaluate(val));
        if (acc == Truth::kTrue) break;  // short-circuit: True dominates
      }
      return acc;
    }
  }
  return Truth::kUnknown;
}

void BoolExpr::CollectVars(std::set<VarId>* out) const {
  if (kind_ == ExprKind::kVar) {
    out->insert(var_);
    return;
  }
  for (const BoolExprPtr& c : children_) c->CollectVars(out);
}

std::vector<VarId> BoolExpr::Vars() const {
  std::set<VarId> vars;
  CollectVars(&vars);
  return {vars.begin(), vars.end()};
}

size_t BoolExpr::TreeSize() const {
  size_t n = 1;
  for (const BoolExprPtr& c : children_) n += c->TreeSize();
  return n;
}

std::string BoolExpr::ToString(const VarNamer& namer) const {
  switch (kind_) {
    case ExprKind::kFalse:
      return "false";
    case ExprKind::kTrue:
      return "true";
    case ExprKind::kVar:
      return namer ? namer(var_) : "x" + std::to_string(var_);
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      const char* op = kind_ == ExprKind::kAnd ? " ∧ " : " ∨ ";
      std::vector<std::string> parts;
      parts.reserve(children_.size());
      for (const BoolExprPtr& c : children_) parts.push_back(c->ToString(namer));
      return "(" + Join(parts, op) + ")";
    }
  }
  return "?";
}

bool StructurallyEqual(const BoolExprPtr& a, const BoolExprPtr& b) {
  if (a.get() == b.get()) return true;
  if (a->kind() != b->kind()) return false;
  switch (a->kind()) {
    case ExprKind::kFalse:
    case ExprKind::kTrue:
      return true;
    case ExprKind::kVar:
      return a->var() == b->var();
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      if (a->children().size() != b->children().size()) return false;
      for (size_t i = 0; i < a->children().size(); ++i) {
        if (!StructurallyEqual(a->children()[i], b->children()[i])) {
          return false;
        }
      }
      return true;
    }
  }
  return false;
}

bool EquivalentByEnumeration(const BoolExprPtr& a, const BoolExprPtr& b) {
  std::set<VarId> var_set;
  a->CollectVars(&var_set);
  b->CollectVars(&var_set);
  std::vector<VarId> vars(var_set.begin(), var_set.end());
  CONSENTDB_CHECK(vars.size() <= 24,
                  "EquivalentByEnumeration is exponential; too many variables");
  size_t combos = static_cast<size_t>(1) << vars.size();
  for (size_t mask = 0; mask < combos; ++mask) {
    PartialValuation val;
    for (size_t i = 0; i < vars.size(); ++i) {
      val.Set(vars[i], (mask >> i) & 1 ? Truth::kTrue : Truth::kFalse);
    }
    if (a->Evaluate(val) != b->Evaluate(val)) return false;
  }
  return true;
}

}  // namespace consentdb::provenance
