#!/usr/bin/env python3
"""bench_trajectory: run the tracked benches and compare BENCH_*.json
sidecars against the committed baselines in bench/baselines/.

Each tracked bench binary emits a schema-versioned BENCH_<name>.json sidecar
when CONSENTDB_BENCH_JSON is set (see bench/bench_common.h). This runner
executes the tracked benches in quick mode, collects the sidecars into a
scratch directory, and compares every duration-valued result (units "ns",
"ms" or "seconds") against the baseline of the same bench+result name:

    ratio = current_value / baseline_value
    FAIL  when ratio > threshold (default 1.5x -- generous because the
          quick-mode runs are short and CI machines are noisy)

Non-duration results (probe counts, hit rates, speedups) are reported but
never fail the run: they are workload descriptors, not timings.

Results present only on one side are reported as NEW / GONE and do not fail
the run either -- renaming a benchmark should not masquerade as a perf
regression; refresh the baselines instead.

Exit status: 0 clean, 1 regression(s), 2 usage/IO error.

Usage:
  bench_trajectory.py --build-dir BUILD [--baseline-dir DIR] [--threshold X]
  bench_trajectory.py --build-dir BUILD --update     # refresh baselines
  bench_trajectory.py --self-test                    # no build needed
"""

import argparse
import copy
import json
import os
import shutil
import subprocess
import sys
import tempfile

TRACKED_BENCHES = [
    # (binary name, extra argv) -- quick-mode settings keep CI under a
    # couple of minutes while still exercising the full pipeline.
    ("time_next_probe", ["--benchmark_min_time=0.02"]),
    ("time_plan_optimizer", ["--benchmark_min_time=0.02"]),
    ("ext_concurrent_sessions", []),
    ("ext_crash_recovery", []),
    ("ext_sharded_ledger", []),
    ("ext_probe_server", []),
]

# Environment for quick mode: small datasets, few repetitions.
QUICK_ENV = {
    "CONSENTDB_BENCH_REPS": "2",
    "CONSENTDB_BENCH_SCALE": "0.25",
    "CONSENTDB_EMIT_METRICS": "1",
}

DURATION_UNITS = {"ns", "ms", "seconds"}

SCHEMA_VERSION = 1


def fail(msg):
    print(f"bench_trajectory: {msg}", file=sys.stderr)
    sys.exit(2)


def git_rev(repo_root):
    try:
        out = subprocess.run(
            ["git", "-C", repo_root, "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=30)
        if out.returncode == 0:
            return out.stdout.strip()
    except OSError:
        pass
    return "unknown"


def run_benches(build_dir, out_dir, repo_root):
    """Runs every tracked bench, returns {bench_name: sidecar dict}."""
    sidecars = {}
    env = dict(os.environ)
    env.update(QUICK_ENV)
    env["CONSENTDB_BENCH_JSON"] = out_dir
    env["CONSENTDB_GIT_REV"] = git_rev(repo_root)
    for name, extra_args in TRACKED_BENCHES:
        binary = os.path.join(build_dir, "bench", name)
        if not os.path.exists(binary):
            fail(f"bench binary not found: {binary} (build the tree first)")
        print(f"[bench_trajectory] running {name} ...", flush=True)
        proc = subprocess.run([binary] + extra_args, env=env, cwd=out_dir,
                              stdout=subprocess.DEVNULL,
                              stderr=subprocess.DEVNULL)
        if proc.returncode != 0:
            fail(f"{name} exited with status {proc.returncode}")
        sidecar_path = os.path.join(out_dir, f"BENCH_{name}.json")
        if not os.path.exists(sidecar_path):
            fail(f"{name} did not write {sidecar_path} "
                 "(CONSENTDB_BENCH_JSON plumbing broken?)")
        sidecars[name] = load_sidecar(sidecar_path)
    return sidecars


def load_sidecar(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot read sidecar {path}: {e}")
    if doc.get("schema_version") != SCHEMA_VERSION:
        fail(f"{path}: schema_version {doc.get('schema_version')!r}, "
             f"expected {SCHEMA_VERSION}")
    for key in ("bench", "results", "wall_time_ns", "cpu_time_ns"):
        if key not in doc:
            fail(f"{path}: missing required key {key!r}")
    return doc


def results_by_name(doc):
    out = {}
    for entry in doc["results"]:
        out[entry["name"]] = (float(entry["value"]), entry["unit"])
    return out


def compare(baseline_doc, current_doc, threshold):
    """Returns (regressions, report_lines) for one bench."""
    base = results_by_name(baseline_doc)
    cur = results_by_name(current_doc)
    regressions = []
    lines = []
    for name in sorted(set(base) | set(cur)):
        if name not in cur:
            lines.append(f"    GONE  {name} (in baseline only)")
            continue
        if name not in base:
            value, unit = cur[name]
            lines.append(f"    NEW   {name} = {value:.3g} {unit}")
            continue
        base_value, base_unit = base[name]
        value, unit = cur[name]
        if unit != base_unit:
            lines.append(f"    UNIT  {name}: {base_unit} -> {unit} "
                         "(refresh baselines)")
            continue
        if unit not in DURATION_UNITS or base_value <= 0:
            lines.append(f"    info  {name} = {value:.3g} {unit} "
                         f"(baseline {base_value:.3g})")
            continue
        ratio = value / base_value
        verdict = "ok  "
        if ratio > threshold:
            verdict = "FAIL"
            regressions.append((name, ratio))
        lines.append(f"    {verdict}  {name}: {value:.3g} {unit} vs "
                     f"{base_value:.3g} ({ratio:.2f}x, limit "
                     f"{threshold:.2f}x)")
    return regressions, lines


def self_test(threshold):
    """Validates the comparator itself: an injected 2x slowdown must FAIL,
    an identical run must pass, and non-duration drift must not fail."""
    baseline = {
        "schema_version": SCHEMA_VERSION,
        "bench": "self_test",
        "git_rev": "base",
        "wall_time_ns": 1000,
        "cpu_time_ns": 900,
        "results": [
            {"name": "probe/real", "value": 100.0, "unit": "ns"},
            {"name": "replay/wall_ms", "value": 5.0, "unit": "ms"},
            {"name": "probes/total", "value": 42.0, "unit": "probes"},
        ],
    }

    same = copy.deepcopy(baseline)
    regressions, _ = compare(baseline, same, threshold)
    assert not regressions, f"identical run flagged: {regressions}"

    slow = copy.deepcopy(baseline)
    slow["results"][0]["value"] = 200.0  # 2x slowdown on a duration
    regressions, _ = compare(baseline, slow, threshold)
    assert any(name == "probe/real" for name, _ in regressions), \
        "2x slowdown on probe/real not detected"

    drifted = copy.deepcopy(baseline)
    drifted["results"][2]["value"] = 84.0  # 2x more probes: not a timing
    regressions, _ = compare(baseline, drifted, threshold)
    assert not regressions, \
        f"non-duration drift flagged as regression: {regressions}"

    renamed = copy.deepcopy(baseline)
    renamed["results"][1]["name"] = "replay/renamed_ms"
    regressions, _ = compare(baseline, renamed, threshold)
    assert not regressions, f"rename flagged as regression: {regressions}"

    print("bench_trajectory self-test: OK "
          f"(threshold {threshold:.2f}x, 2x slowdown detected)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", help="CMake build directory")
    parser.add_argument("--baseline-dir", default=None,
                        help="baseline directory (default: "
                             "<repo>/bench/baselines)")
    parser.add_argument("--threshold", type=float, default=1.5,
                        help="regression ratio limit (default 1.5)")
    parser.add_argument("--update", action="store_true",
                        help="write fresh baselines instead of comparing")
    parser.add_argument("--self-test", action="store_true",
                        help="validate the comparator on synthetic sidecars")
    args = parser.parse_args()

    if args.threshold <= 1.0:
        fail("--threshold must be > 1.0")

    if args.self_test:
        return self_test(args.threshold)

    if not args.build_dir:
        fail("--build-dir is required (or use --self-test)")
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    baseline_dir = args.baseline_dir or os.path.join(repo_root, "bench",
                                                     "baselines")

    scratch = tempfile.mkdtemp(prefix="bench_trajectory_")
    try:
        sidecars = run_benches(os.path.abspath(args.build_dir), scratch,
                               repo_root)

        if args.update:
            os.makedirs(baseline_dir, exist_ok=True)
            for name in sidecars:
                src = os.path.join(scratch, f"BENCH_{name}.json")
                dst = os.path.join(baseline_dir, f"BENCH_{name}.json")
                shutil.copyfile(src, dst)
                print(f"[bench_trajectory] baseline updated: {dst}")
            return 0

        any_regression = False
        for name, current in sidecars.items():
            baseline_path = os.path.join(baseline_dir, f"BENCH_{name}.json")
            print(f"\n{name}:")
            if not os.path.exists(baseline_path):
                print(f"    no baseline at {baseline_path} -- run with "
                      "--update to create one (not a failure)")
                continue
            baseline = load_sidecar(baseline_path)
            regressions, lines = compare(baseline, current, args.threshold)
            for line in lines:
                print(line)
            if regressions:
                any_regression = True

        if any_regression:
            print("\nbench_trajectory: REGRESSION -- durations above the "
                  f"{args.threshold:.2f}x limit (rerun locally; if the "
                  "slowdown is intended, refresh with --update)")
            return 1
        print("\nbench_trajectory: all tracked durations within "
              f"{args.threshold:.2f}x of baseline")
        return 0
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
