file(REMOVE_RECURSE
  "CMakeFiles/consentdb_relational.dir/csv.cc.o"
  "CMakeFiles/consentdb_relational.dir/csv.cc.o.d"
  "CMakeFiles/consentdb_relational.dir/database.cc.o"
  "CMakeFiles/consentdb_relational.dir/database.cc.o.d"
  "CMakeFiles/consentdb_relational.dir/relation.cc.o"
  "CMakeFiles/consentdb_relational.dir/relation.cc.o.d"
  "CMakeFiles/consentdb_relational.dir/schema.cc.o"
  "CMakeFiles/consentdb_relational.dir/schema.cc.o.d"
  "CMakeFiles/consentdb_relational.dir/tuple.cc.o"
  "CMakeFiles/consentdb_relational.dir/tuple.cc.o.d"
  "CMakeFiles/consentdb_relational.dir/value.cc.o"
  "CMakeFiles/consentdb_relational.dir/value.cc.o.d"
  "libconsentdb_relational.a"
  "libconsentdb_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consentdb_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
