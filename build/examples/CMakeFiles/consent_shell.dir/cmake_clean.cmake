file(REMOVE_RECURSE
  "CMakeFiles/consent_shell.dir/consent_shell.cpp.o"
  "CMakeFiles/consent_shell.dir/consent_shell.cpp.o.d"
  "consent_shell"
  "consent_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consent_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
