// Probe oracles: the abstraction of "asking a peer for consent" (Sec. II).
//
// A probe reveals val(x) for one consent variable x. In production the
// oracle would reach a human or an automated agent; for experiments it is
// backed by a hidden valuation drawn from the prior (Sec. V-A).

#ifndef CONSENTDB_CONSENT_ORACLE_H_
#define CONSENTDB_CONSENT_ORACLE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "consentdb/consent/variable_pool.h"
#include "consentdb/provenance/truth.h"
#include "consentdb/util/status.h"
#include "consentdb/util/thread_annotations.h"

namespace consentdb::consent {

class WalWriter;

// How a single probe attempt can fail (the resilience extension): a
// transient fault may succeed on retry; an unavailable peer never answers
// again. A fault carries no answer — consent stays unknown, matching the
// paper's possible-worlds semantics.
enum class ProbeFault : uint8_t {
  kNone,         // answered
  kTransient,    // timeout/drop; retrying the same variable may succeed
  kUnavailable,  // the owning peer is permanently gone
};

const char* ProbeFaultToString(ProbeFault fault);

// The outcome of one probe attempt. `answer` is meaningful only when
// `fault == kNone`.
struct ProbeAttempt {
  bool answer = false;
  ProbeFault fault = ProbeFault::kNone;

  bool ok() const { return fault == ProbeFault::kNone; }

  static ProbeAttempt Answered(bool answer) {
    return ProbeAttempt{answer, ProbeFault::kNone};
  }
  static ProbeAttempt Faulted(ProbeFault fault) {
    return ProbeAttempt{false, fault};
  }
};

// Interface. Implementations must answer consistently: repeated probes of
// the same variable return the same value.
class ProbeOracle {
 public:
  virtual ~ProbeOracle() = default;

  // Asks the owner of `x` for consent; returns the (hidden) val(x).
  virtual bool Probe(VarId x) = 0;

  // Fallible entry point used by the resilient probing path: one attempt at
  // asking the peer, which may fail instead of answering. The default
  // implementation wraps the infallible Probe(), so plain oracles never
  // fault; decorators (FaultyOracle) override it to inject failures.
  virtual ProbeAttempt TryProbe(VarId x) {
    return ProbeAttempt::Answered(Probe(x));
  }

  // Number of probes answered so far.
  virtual size_t probe_count() const = 0;
};

// Answers from a fixed hidden valuation; every variable queried must be set
// in the valuation. Counts probes; repeated probes of the same variable are
// counted once (the answer is simply remembered, matching the cost model
// where each peer is asked at most once per variable).
class ValuationOracle : public ProbeOracle {
 public:
  explicit ValuationOracle(provenance::PartialValuation hidden);

  bool Probe(VarId x) override;
  size_t probe_count() const override { return probed_.size(); }

  // The sequence of (variable, answer) pairs, in probe order.
  const std::vector<std::pair<VarId, bool>>& trace() const { return trace_; }

 private:
  provenance::PartialValuation hidden_;
  std::vector<bool> seen_;  // indexed by VarId
  std::vector<std::pair<VarId, bool>> trace_;
  std::vector<VarId> probed_;
};

// Replays the probe trace of an earlier session (audit/debugging): answers
// exactly what was answered before and fails loudly on any probe that the
// recorded session never asked. Deterministic strategies re-driven against
// a ReplayOracle reproduce the original session bit for bit.
class ReplayOracle : public ProbeOracle {
 public:
  explicit ReplayOracle(std::vector<std::pair<VarId, bool>> trace);

  bool Probe(VarId x) override;
  size_t probe_count() const override { return asked_; }

 private:
  std::vector<std::pair<VarId, bool>> trace_;
  size_t asked_ = 0;
};

// Answers by invoking a user callback (e.g. a UI prompt or a network call),
// memoising answers so each variable is asked once.
class CallbackOracle : public ProbeOracle {
 public:
  using Callback = std::function<bool(VarId)>;
  explicit CallbackOracle(Callback callback)
      : callback_(std::move(callback)) {}

  bool Probe(VarId x) override;
  size_t probe_count() const override { return answers_.size(); }

 private:
  Callback callback_;
  std::vector<std::pair<VarId, bool>> answers_;
};

// A thread-safe answer ledger shared by concurrent probing sessions: the
// first session to probe a variable forwards the probe to the backing
// oracle; every later probe of the same variable — from any session — is
// answered from the ledger without bothering the peer again. Oracle calls
// are serialized under the ledger mutex, so ProbeOracle implementations
// need not be thread-safe.
//
// The ledger only deduplicates *oracle traffic*; each session still counts
// its own probes by the paper's cost model, so session reports are
// identical with and without a shared ledger (answers are consistent).
//
// The public surface is virtual: ShardedConsentLedger (sharded_ledger.h)
// partitions the answer map across N of these behind the same interface,
// so callers that hold a ConsentLedger& (LedgerOracle, SessionEngine,
// recovery) are oblivious to the sharding.
class ConsentLedger {
 public:
  ConsentLedger() = default;
  virtual ~ConsentLedger() = default;
  ConsentLedger(const ConsentLedger&) = delete;
  ConsentLedger& operator=(const ConsentLedger&) = delete;

  // Answers `x`, forwarding to `oracle` on first touch. When
  // `answered_from_ledger` is non-null it is set to whether the answer came
  // from the ledger (per-caller accounting; the global tallies below are
  // engine-wide).
  virtual bool ProbeVia(ProbeOracle& oracle, VarId x,
                        bool* answered_from_ledger = nullptr) EXCLUDES(mu_);

  // Fallible variant for the resilient path: answers from the ledger when
  // possible, otherwise forwards one TryProbe attempt. Only a successful
  // answer is recorded — a faulted attempt leaves no trace in the answer
  // map, so a later retry (from any session) reaches the peer again and the
  // ledger can never hold two answers for one variable.
  virtual ProbeAttempt TryProbeVia(ProbeOracle& oracle, VarId x,
                                   bool* answered_from_ledger = nullptr)
      EXCLUDES(mu_);

  // The recorded answer, if any session probed `x` already.
  virtual std::optional<bool> Lookup(VarId x) const EXCLUDES(mu_);

  // Durability: journals every answer recorded from here on to `wal`. The
  // append happens under mu_, immediately after the answer enters the map,
  // so the journal order is exactly the recording order. When
  // `compact_every_records` > 0, every that-many journaled answers the WAL
  // is compacted into its snapshot sidecar. A journal-write failure never
  // fails the probe — the answer is correct regardless — it is latched in
  // journal_error() for the owner to surface. (On a CrashingEnv a journal
  // append can instead throw CrashInjected, unwinding the whole probe loop
  // like a real crash would.)
  virtual void AttachJournal(WalWriter* wal, uint64_t compact_every_records = 0)
      EXCLUDES(mu_);

  // The first journal-append failure, if any (OK otherwise).
  [[nodiscard]] virtual Status journal_error() const EXCLUDES(mu_);

  // Recovery-only: re-records an answer replayed from a snapshot or WAL.
  // Observationally silent — no oracle is called, no hit/probe tally moves,
  // nothing is journaled; only restored_answers() counts it. Restoring an
  // already-present equal answer is a no-op; a conflicting answer reports
  // kInternal (corrupt journal).
  [[nodiscard]] virtual Status RestoreAnswer(VarId x, bool answer)
      EXCLUDES(mu_);

  // Answers recorded via RestoreAnswer (duplicates excluded).
  virtual uint64_t restored_answers() const {
    return restored_answers_.load(std::memory_order_relaxed);
  }

  // A sorted copy of all recorded answers (checkpointing, compaction).
  virtual std::vector<std::pair<VarId, bool>> Answers() const EXCLUDES(mu_);

  // Distinct variables answered so far.
  virtual size_t size() const EXCLUDES(mu_);
  // Probes answered from the ledger without reaching an oracle.
  virtual uint64_t hits() const {
    return hits_.load(std::memory_order_relaxed);
  }
  // Probes forwarded to an oracle.
  virtual uint64_t oracle_probes() const {
    return oracle_probes_.load(std::memory_order_relaxed);
  }
  // TryProbeVia attempts that faulted (nothing recorded).
  virtual uint64_t faulted_probes() const {
    return faulted_probes_.load(std::memory_order_relaxed);
  }

  virtual void Clear() EXCLUDES(mu_);

 private:
  // mu_ guards the answer map and, deliberately, the backing oracle call:
  // ProbeVia holds it across Probe() so non-thread-safe oracles are
  // serialized and no variable ever reaches a peer twice. The tallies are
  // atomics rather than guarded fields precisely because of that — a
  // stats read (hits()/oracle_probes()) must not block behind a slow
  // in-flight peer probe.
  // Journals the freshly recorded answer; called right after the map insert
  // so no recorded answer can be skipped.
  void JournalLocked(VarId x, bool answer) REQUIRES(mu_);

  mutable Mutex mu_;
  std::unordered_map<VarId, bool> answers_ GUARDED_BY(mu_);
  WalWriter* wal_ GUARDED_BY(mu_) = nullptr;
  uint64_t compact_every_ GUARDED_BY(mu_) = 0;
  uint64_t journaled_since_compact_ GUARDED_BY(mu_) = 0;
  Status journal_error_ GUARDED_BY(mu_);
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> oracle_probes_{0};
  std::atomic<uint64_t> faulted_probes_{0};
  std::atomic<uint64_t> restored_answers_{0};
};

// Per-session view of a shared ledger: satisfies the ProbeOracle interface
// the probing loop expects while deduplicating oracle traffic ledger-wide.
// probe_count() is this session's call count, mirroring how each session
// pays for its own probes in the paper's cost model — which is also what
// makes resume-after-crash report byte-identically: a recovered ledger
// answers journaled variables without peer traffic, but the session still
// counts them as probes.
class LedgerOracle : public ProbeOracle {
 public:
  LedgerOracle(ConsentLedger& ledger, ProbeOracle& backing)
      : ledger_(ledger), backing_(backing) {}

  bool Probe(VarId x) override {
    ++asked_;
    bool from_ledger = false;
    bool answer = ledger_.ProbeVia(backing_, x, &from_ledger);
    if (from_ledger) ++ledger_hits_;
    return answer;
  }
  ProbeAttempt TryProbe(VarId x) override {
    bool from_ledger = false;
    ProbeAttempt attempt = ledger_.TryProbeVia(backing_, x, &from_ledger);
    // Faulted attempts leave no trace in the ledger and are not charged to
    // this session: only an answer counts as a probe, so retries reach the
    // peer again instead of replaying the failure.
    if (attempt.ok()) {
      ++asked_;
      if (from_ledger) ++ledger_hits_;
    }
    return attempt;
  }
  size_t probe_count() const override { return asked_; }
  uint64_t ledger_hits() const { return ledger_hits_; }

 private:
  ConsentLedger& ledger_;
  ProbeOracle& backing_;
  size_t asked_ = 0;
  uint64_t ledger_hits_ = 0;
};

}  // namespace consentdb::consent

#endif  // CONSENTDB_CONSENT_ORACLE_H_
