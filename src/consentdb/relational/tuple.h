// Tuple: an ordered list of values, interpreted against a Schema.

#ifndef CONSENTDB_RELATIONAL_TUPLE_H_
#define CONSENTDB_RELATIONAL_TUPLE_H_

#include <initializer_list>
#include <ostream>
#include <vector>

#include "consentdb/relational/value.h"

namespace consentdb::relational {

// A flat row of values. Tuples are schema-agnostic; the owning Relation pairs
// them with a Schema and validates arity/types at insertion.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}
  Tuple(std::initializer_list<Value> values) : values_(values) {}

  size_t size() const { return values_.size(); }
  const Value& at(size_t i) const;
  const std::vector<Value>& values() const { return values_; }

  // Tuple restricted to the given column indexes (in that order).
  Tuple Project(const std::vector<size_t>& indexes) const;

  // Concatenation `this ++ other` (the row form of a cartesian product).
  Tuple Concat(const Tuple& other) const;

  std::string ToString() const;
  size_t Hash() const;

  friend bool operator==(const Tuple& a, const Tuple& b) {
    return a.values_ == b.values_;
  }
  friend bool operator!=(const Tuple& a, const Tuple& b) { return !(a == b); }
  friend bool operator<(const Tuple& a, const Tuple& b) {
    return a.values_ < b.values_;
  }

 private:
  std::vector<Value> values_;
};

std::ostream& operator<<(std::ostream& os, const Tuple& t);

}  // namespace consentdb::relational

template <>
struct std::hash<consentdb::relational::Tuple> {
  size_t operator()(const consentdb::relational::Tuple& t) const {
    return t.Hash();
  }
};

#endif  // CONSENTDB_RELATIONAL_TUPLE_H_
