file(REMOVE_RECURSE
  "CMakeFiles/calendar_sharing.dir/calendar_sharing.cpp.o"
  "CMakeFiles/calendar_sharing.dir/calendar_sharing.cpp.o.d"
  "calendar_sharing"
  "calendar_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calendar_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
