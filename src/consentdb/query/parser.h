// A parser for the SQL fragment matching SPJU plans:
//
//   query  := select (UNION select)*
//   select := SELECT [DISTINCT] ('*' | column (',' column)*)
//             FROM table [[AS] alias] (',' table [[AS] alias])*
//             [WHERE condition]
//   condition := conj (OR conj)* ; conj := atom (AND atom)*
//   atom   := operand (= | != | <> | < | <= | > | >=) operand
//           | '(' condition ')'
//   operand:= column | 'string' | 123 | 4.5 | TRUE | FALSE | NULL
//
// DISTINCT is accepted but implied: the library's consent semantics is a set
// algebra. Keywords are case-insensitive. Column references may be qualified
// (alias.column) or bare when unambiguous.

#ifndef CONSENTDB_QUERY_PARSER_H_
#define CONSENTDB_QUERY_PARSER_H_

#include <string>
#include <string_view>

#include "consentdb/query/plan.h"
#include "consentdb/util/result.h"

namespace consentdb::query {

// Parses `sql` into an SPJU plan. Errors carry a position-annotated message.
[[nodiscard]] Result<PlanPtr> ParseQuery(std::string_view sql);

}  // namespace consentdb::query

#endif  // CONSENTDB_QUERY_PARSER_H_
