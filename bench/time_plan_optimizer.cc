// Evaluation-side microbenchmark: what selection pushdown buys on the
// paper's running-example query. Probe counts are plan-invariant; this is
// purely about keeping the provenance-tracked evaluation step (Prop. III.3)
// fast as the database grows — the parser's naive Product-then-Select plan
// enumerates the full 4-way cross product.

#include <benchmark/benchmark.h>

#include "bench_gbench_json.h"
#include "consentdb/eval/evaluate.h"
#include "consentdb/query/optimize.h"
#include "consentdb/query/parser.h"
#include "consentdb/util/rng.h"

using namespace consentdb;
using relational::Column;
using relational::Schema;
using relational::Tuple;
using relational::Value;
using relational::ValueType;

namespace {

consent::SharedDatabase BuildRecruitment(size_t scale, Rng& rng) {
  consent::SharedDatabase sdb;
  auto check = [](const Status& s) { CONSENTDB_CHECK(s.ok(), s.ToString()); };
  check(sdb.CreateRelation("Companies",
                           Schema({Column{"cid", ValueType::kInt64},
                                   Column{"name", ValueType::kString}})));
  check(sdb.CreateRelation("Vacancies",
                           Schema({Column{"vid", ValueType::kInt64},
                                   Column{"cid", ValueType::kInt64}})));
  check(sdb.CreateRelation("JobSeekers",
                           Schema({Column{"sid", ValueType::kInt64},
                                   Column{"education", ValueType::kString}})));
  check(sdb.CreateRelation("Assignment",
                           Schema({Column{"sid", ValueType::kInt64},
                                   Column{"vid", ValueType::kInt64},
                                   Column{"status", ValueType::kString}})));
  for (size_t c = 0; c < scale; ++c) {
    (void)*sdb.InsertTuple("Companies",
                           Tuple{Value(static_cast<int64_t>(c)),
                                 Value("corp" + std::to_string(c))});
  }
  for (size_t v = 0; v < scale * 2; ++v) {
    (void)*sdb.InsertTuple(
        "Vacancies",
        Tuple{Value(static_cast<int64_t>(v)),
              Value(static_cast<int64_t>(rng.UniformIndex(scale)))});
  }
  for (size_t s = 0; s < scale * 2; ++s) {
    (void)*sdb.InsertTuple(
        "JobSeekers",
        Tuple{Value(static_cast<int64_t>(s)),
              Value(rng.Bernoulli(0.5) ? "Env. studies" : "History")});
  }
  for (size_t a = 0; a < scale * 3; ++a) {
    (void)*sdb.InsertTuple(
        "Assignment",
        Tuple{Value(static_cast<int64_t>(rng.UniformIndex(scale * 2))),
              Value(static_cast<int64_t>(rng.UniformIndex(scale * 2))),
              Value(rng.Bernoulli(0.4) ? "hired" : "rejected")});
  }
  return sdb;
}

const char* kQuery =
    "SELECT DISTINCT c.name "
    "FROM Companies c, JobSeekers s, Vacancies v, Assignment a "
    "WHERE c.cid = v.cid AND v.vid = a.vid AND a.status = 'hired' "
    "AND a.sid = s.sid AND s.education = 'Env. studies'";

void BM_AnnotatedEval_Naive(benchmark::State& state) {
  Rng rng(7);
  consent::SharedDatabase sdb =
      BuildRecruitment(static_cast<size_t>(state.range(0)), rng);
  query::PlanPtr plan = *query::ParseQuery(kQuery);
  for (auto _ : state) {
    Result<eval::AnnotatedRelation> out = eval::EvaluateAnnotated(plan, sdb);
    CONSENTDB_CHECK(out.ok(), out.status().ToString());
    benchmark::DoNotOptimize(out->size());
  }
}

void BM_AnnotatedEval_Pushdown(benchmark::State& state) {
  Rng rng(7);
  consent::SharedDatabase sdb =
      BuildRecruitment(static_cast<size_t>(state.range(0)), rng);
  query::PlanPtr plan =
      *query::Optimize(*query::ParseQuery(kQuery), sdb.database());
  for (auto _ : state) {
    Result<eval::AnnotatedRelation> out = eval::EvaluateAnnotated(plan, sdb);
    CONSENTDB_CHECK(out.ok(), out.status().ToString());
    benchmark::DoNotOptimize(out->size());
  }
}

BENCHMARK(BM_AnnotatedEval_Naive)->Arg(4)->Arg(8)->Arg(12);
BENCHMARK(BM_AnnotatedEval_Pushdown)->Arg(4)->Arg(8)->Arg(12);

}  // namespace

int main(int argc, char** argv) {
  return consentdb::bench::GbenchMainWithSidecar("time_plan_optimizer", argc,
                                                 argv);
}
