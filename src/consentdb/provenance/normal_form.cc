#include "consentdb/provenance/normal_form.h"

#include <algorithm>
#include <cstdint>
#include <set>

#include "consentdb/util/check.h"
#include "consentdb/util/string_util.h"

namespace consentdb::provenance {

namespace {

// Keeps only the minimal sets (absorption: a monotone formula is unchanged
// by dropping any term/clause that is a superset of another), then sorts for
// canonical order.
void Minimize(std::vector<VarSet>* sets) {
  std::sort(sets->begin(), sets->end(), [](const VarSet& a, const VarSet& b) {
    if (a.size() != b.size()) return a.size() < b.size();
    return a < b;
  });
  std::vector<VarSet> kept;
  for (VarSet& candidate : *sets) {
    bool absorbed = false;
    for (const VarSet& k : kept) {
      if (k.SubsetOf(candidate)) {
        absorbed = true;
        break;
      }
    }
    if (!absorbed) kept.push_back(std::move(candidate));
  }
  // Remove exact duplicates introduced by the move above (SubsetOf covers
  // equality, so duplicates are already absorbed; nothing further needed).
  std::sort(kept.begin(), kept.end());
  *sets = std::move(kept);
}

Status BudgetExceeded(size_t budget) {
  return Status::ResourceExhausted(
      "normal form exceeds the term/clause budget of " +
      std::to_string(budget));
}

// Shared recursion for expression -> normal form. `disjunctive_kind` is the
// operator that maps to set-union of the result lists (kOr for DNF, kAnd for
// CNF); the other operator maps to the pairwise-union cross product.
Result<std::vector<VarSet>> ExprToSets(const BoolExprPtr& expr,
                                       ExprKind disjunctive_kind,
                                       const NormalFormLimits& limits) {
  // Constants: for DNF (disjunctive_kind == kOr), False -> no terms and
  // True -> the empty term; for CNF it is exactly dual.
  bool constant_is_empty_list = disjunctive_kind == ExprKind::kOr
                                    ? expr->kind() == ExprKind::kFalse
                                    : expr->kind() == ExprKind::kTrue;
  if (expr->is_constant()) {
    if (constant_is_empty_list) return std::vector<VarSet>{};
    return std::vector<VarSet>{VarSet{}};
  }
  if (expr->kind() == ExprKind::kVar) {
    return std::vector<VarSet>{VarSet{expr->var()}};
  }
  // Recurse on children.
  std::vector<std::vector<VarSet>> child_sets;
  child_sets.reserve(expr->children().size());
  for (const BoolExprPtr& c : expr->children()) {
    CONSENTDB_ASSIGN_OR_RETURN(std::vector<VarSet> sets,
                               ExprToSets(c, disjunctive_kind, limits));
    child_sets.push_back(std::move(sets));
  }
  if (expr->kind() == disjunctive_kind) {
    // Union of lists.
    std::vector<VarSet> out;
    for (std::vector<VarSet>& sets : child_sets) {
      out.insert(out.end(), std::make_move_iterator(sets.begin()),
                 std::make_move_iterator(sets.end()));
      if (out.size() > limits.max_sets) return BudgetExceeded(limits.max_sets);
    }
    Minimize(&out);
    return out;
  }
  // Cross product of lists (distribution).
  std::vector<VarSet> acc{VarSet{}};
  for (const std::vector<VarSet>& sets : child_sets) {
    std::vector<VarSet> next;
    next.reserve(acc.size() * std::max<size_t>(sets.size(), 1));
    for (const VarSet& a : acc) {
      for (const VarSet& b : sets) {
        next.push_back(a.Union(b));
        if (next.size() > limits.max_sets) {
          return BudgetExceeded(limits.max_sets);
        }
      }
    }
    Minimize(&next);
    acc = std::move(next);
    if (acc.empty()) break;  // child list empty => whole product empty
  }
  return acc;
}

VarSet UnionOfAll(const std::vector<VarSet>& sets) {
  std::set<VarId> vars;
  for (const VarSet& s : sets) vars.insert(s.begin(), s.end());
  return VarSet(std::vector<VarId>(vars.begin(), vars.end()));
}

size_t SumOfSizes(const std::vector<VarSet>& sets) {
  size_t n = 0;
  for (const VarSet& s : sets) n += s.size();
  return n;
}

bool NoSharedVars(const std::vector<VarSet>& sets) {
  std::set<VarId> seen;
  for (const VarSet& s : sets) {
    for (VarId x : s) {
      if (!seen.insert(x).second) return false;
    }
  }
  return true;
}

// --- Bit-matrix transposition ----------------------------------------------
//
// Transposition works over a dense local universe: the distinct variables of
// the input family, sorted ascending, each mapped to one bit. A family of
// sets is then a flat row-major bit matrix (`words` uint64_t per row), and
// the inner-loop operations — subset checks during absorption, pairwise
// unions during merging, pivot frequency counts — become word-parallel
// AND/OR/POPCNT instead of per-element walks over std::vector<VarId>.

struct MaskFamily {
  size_t words = 1;            // words per row (fixed for a whole transpose)
  size_t count = 0;            // number of rows
  std::vector<uint64_t> bits;  // count * words, row-major

  const uint64_t* row(size_t i) const { return bits.data() + i * words; }
  uint64_t* row(size_t i) { return bits.data() + i * words; }

  void PushRow(const uint64_t* r) {
    bits.insert(bits.end(), r, r + words);
    ++count;
  }
  void PushEmptyRow() {
    bits.insert(bits.end(), words, 0);
    ++count;
  }
  void PushSingleton(size_t bit) {
    PushEmptyRow();
    row(count - 1)[bit / 64] = uint64_t{1} << (bit % 64);
  }
};

bool RowIsZero(const uint64_t* r, size_t words) {
  for (size_t w = 0; w < words; ++w) {
    if (r[w] != 0) return false;
  }
  return true;
}

// True iff a ⊆ b.
bool RowSubsetOf(const uint64_t* a, const uint64_t* b, size_t words) {
  for (size_t w = 0; w < words; ++w) {
    if ((a[w] & ~b[w]) != 0) return false;
  }
  return true;
}

size_t RowPopcount(const uint64_t* r, size_t words) {
  size_t n = 0;
  for (size_t w = 0; w < words; ++w) n += __builtin_popcountll(r[w]);
  return n;
}

// Absorption on the bit matrix: keeps only the minimal rows. The surviving
// antichain is unique as a set, so row order within the family is free.
void MinimizeMasks(MaskFamily* fam) {
  const size_t words = fam->words;
  std::vector<uint32_t> order(fam->count);
  for (uint32_t i = 0; i < fam->count; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return RowPopcount(fam->row(a), words) < RowPopcount(fam->row(b), words);
  });
  MaskFamily kept;
  kept.words = words;
  kept.bits.reserve(fam->bits.size());
  for (uint32_t i : order) {
    const uint64_t* cand = fam->row(i);
    bool absorbed = false;
    for (size_t k = 0; k < kept.count; ++k) {
      // Every kept row has popcount <= cand's, so ⊆ covers equality too.
      if (RowSubsetOf(kept.row(k), cand, words)) {
        absorbed = true;
        break;
      }
    }
    if (!absorbed) kept.PushRow(cand);
  }
  *fam = std::move(kept);
}

// Merges two families of the dual form: dual(A ∨ B) = minimal pairwise
// unions (bitwise ORs) of dual(A) and dual(B). Minimises periodically so the
// working set stays near the size of the true (minimal) result; only the
// minimised size counts against the budget.
Result<MaskFamily> MergeDualsMasked(const MaskFamily& left,
                                    const MaskFamily& right,
                                    const NormalFormLimits& limits) {
  const size_t words = left.words;
  // Disjoint variable supports (e.g. read-once formulas): pairwise unions
  // of two antichains over disjoint variables are again an antichain, so
  // minimisation is a no-op — emit directly under the budget.
  std::vector<uint64_t> support_left(words, 0), support_right(words, 0);
  for (size_t i = 0; i < left.count; ++i) {
    for (size_t w = 0; w < words; ++w) support_left[w] |= left.row(i)[w];
  }
  for (size_t i = 0; i < right.count; ++i) {
    for (size_t w = 0; w < words; ++w) support_right[w] |= right.row(i)[w];
  }
  bool disjoint = true;
  for (size_t w = 0; w < words; ++w) {
    if ((support_left[w] & support_right[w]) != 0) {
      disjoint = false;
      break;
    }
  }
  MaskFamily out;
  out.words = words;
  if (disjoint) {
    if (left.count * right.count > limits.max_sets) {
      return BudgetExceeded(limits.max_sets);
    }
    out.bits.reserve(left.count * right.count * words);
    for (size_t i = 0; i < left.count; ++i) {
      for (size_t j = 0; j < right.count; ++j) {
        out.PushEmptyRow();
        uint64_t* r = out.row(out.count - 1);
        for (size_t w = 0; w < words; ++w) {
          r[w] = left.row(i)[w] | right.row(j)[w];
        }
      }
    }
    return out;
  }
  size_t threshold = std::max<size_t>(4096, 4 * (left.count + right.count));
  for (size_t i = 0; i < left.count; ++i) {
    for (size_t j = 0; j < right.count; ++j) {
      out.PushEmptyRow();
      uint64_t* r = out.row(out.count - 1);
      for (size_t w = 0; w < words; ++w) {
        r[w] = left.row(i)[w] | right.row(j)[w];
      }
    }
    if (out.count > threshold) {
      MinimizeMasks(&out);
      if (out.count > limits.max_sets) return BudgetExceeded(limits.max_sets);
      // Avoid thrashing: keep the threshold well above the minimal size.
      threshold = std::max(threshold, out.count * 2);
    }
  }
  MinimizeMasks(&out);
  if (out.count > limits.max_sets) return BudgetExceeded(limits.max_sets);
  return out;
}

// Dual transposition on the bit matrix: given a monotone formula as a
// minimal family of rows, computes the family of the dual normal form
// (hitting sets). This is both DNF->CNF and CNF->DNF for monotone formulas.
//
// Recursion pivots on the most frequent variable x, factoring
//   ∨ rows  =  (x ∧ A) ∨ R,   A = {t \ {x} : x ∈ t},  R = {t : x ∉ t},
// so that  dual(rows) = merge({{x}} ∪ dual(A), dual(R)).
// On structured inputs (e.g. the psi family, whose DNF has 2^k terms but a
// linear-size CNF) the factorisation follows the formula structure and the
// intermediate families stay near the size of the final result; a midpoint
// divide-and-conquer or one-term-at-a-time expansion blows up instead. The
// inherent worst case (read-once inputs) stays exponential and is caught by
// the budget.
Result<MaskFamily> TransposeMasked(const MaskFamily& fam, size_t num_bits,
                                   const NormalFormLimits& limits) {
  const size_t words = fam.words;
  MaskFamily out;
  out.words = words;
  // No rows: the constant False as a DNF; dual is {{}} (the neutral element
  // of the merge). An all-zero row among the inputs: the constant True;
  // dual is {} (the absorbing element of the merge).
  if (fam.count == 0) {
    out.PushEmptyRow();
    return out;
  }
  for (size_t i = 0; i < fam.count; ++i) {
    if (RowIsZero(fam.row(i), words)) return out;
  }
  if (fam.count == 1) {
    // Dual of a single conjunction x1∧...∧xk is (x1)∧...∧(xk) — singletons.
    const uint64_t* r = fam.row(0);
    for (size_t w = 0; w < words; ++w) {
      uint64_t word = r[w];
      while (word != 0) {
        size_t bit = w * 64 + static_cast<size_t>(__builtin_ctzll(word));
        out.PushSingleton(bit);
        word &= word - 1;
      }
    }
    return out;
  }
  // Pick the most frequent variable (ties: smallest id, for determinism —
  // bit order is ascending VarId order because the universe is sorted).
  std::vector<uint32_t> counts(num_bits, 0);
  for (size_t i = 0; i < fam.count; ++i) {
    const uint64_t* r = fam.row(i);
    for (size_t w = 0; w < words; ++w) {
      uint64_t word = r[w];
      while (word != 0) {
        ++counts[w * 64 + static_cast<size_t>(__builtin_ctzll(word))];
        word &= word - 1;
      }
    }
  }
  size_t pivot = 0;
  uint32_t best = 0;
  for (size_t bit = 0; bit < num_bits; ++bit) {
    if (counts[bit] > best) {
      pivot = bit;
      best = counts[bit];
    }
  }
  const size_t pivot_word = pivot / 64;
  const uint64_t pivot_mask = uint64_t{1} << (pivot % 64);
  MaskFamily with_pivot;  // A: pivot stripped
  with_pivot.words = words;
  MaskFamily without_pivot;  // R
  without_pivot.words = words;
  for (size_t i = 0; i < fam.count; ++i) {
    const uint64_t* r = fam.row(i);
    if ((r[pivot_word] & pivot_mask) != 0) {
      with_pivot.PushRow(r);
      with_pivot.row(with_pivot.count - 1)[pivot_word] &= ~pivot_mask;
    } else {
      without_pivot.PushRow(r);
    }
  }
  CONSENTDB_ASSIGN_OR_RETURN(MaskFamily dual_a,
                             TransposeMasked(with_pivot, num_bits, limits));
  // dual(x ∧ A) = {{x}} ∪ dual(A); minimal since A never mentions x.
  MaskFamily dual_xa;
  dual_xa.words = words;
  dual_xa.bits.reserve((dual_a.count + 1) * words);
  dual_xa.PushSingleton(pivot);
  for (size_t i = 0; i < dual_a.count; ++i) dual_xa.PushRow(dual_a.row(i));
  if (without_pivot.count == 0) return dual_xa;
  CONSENTDB_ASSIGN_OR_RETURN(MaskFamily dual_r,
                             TransposeMasked(without_pivot, num_bits, limits));
  return MergeDualsMasked(dual_xa, dual_r, limits);
}

// Converts between the VarSet and bit-matrix representations and runs the
// masked transpose. The result is a minimal antichain but in recursion
// order, not canonical order — callers re-sort (Dnf/Cnf constructors do).
Result<std::vector<VarSet>> Transpose(const std::vector<VarSet>& sets,
                                      const NormalFormLimits& limits) {
  // Dense local universe: distinct input variables, ascending.
  std::vector<VarId> universe;
  universe.reserve(SumOfSizes(sets));
  for (const VarSet& s : sets) {
    universe.insert(universe.end(), s.begin(), s.end());
  }
  std::sort(universe.begin(), universe.end());
  universe.erase(std::unique(universe.begin(), universe.end()),
                 universe.end());
  MaskFamily fam;
  fam.words = std::max<size_t>(1, (universe.size() + 63) / 64);
  fam.bits.reserve(sets.size() * fam.words);
  for (const VarSet& s : sets) {
    fam.PushEmptyRow();
    uint64_t* r = fam.row(fam.count - 1);
    for (VarId x : s) {
      size_t bit = static_cast<size_t>(
          std::lower_bound(universe.begin(), universe.end(), x) -
          universe.begin());
      r[bit / 64] |= uint64_t{1} << (bit % 64);
    }
  }
  CONSENTDB_ASSIGN_OR_RETURN(
      MaskFamily dual, TransposeMasked(fam, universe.size(), limits));
  std::vector<VarSet> out;
  out.reserve(dual.count);
  for (size_t i = 0; i < dual.count; ++i) {
    const uint64_t* r = dual.row(i);
    std::vector<VarId> ids;
    for (size_t w = 0; w < dual.words; ++w) {
      uint64_t word = r[w];
      while (word != 0) {
        size_t bit = w * 64 + static_cast<size_t>(__builtin_ctzll(word));
        ids.push_back(universe[bit]);
        word &= word - 1;
      }
    }
    out.push_back(VarSet::FromSorted(std::move(ids)));
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Dnf

Dnf::Dnf(std::vector<VarSet> terms, bool absorb) : terms_(std::move(terms)) {
  if (absorb) {
    Minimize(&terms_);
  } else {
    std::sort(terms_.begin(), terms_.end());
    terms_.erase(std::unique(terms_.begin(), terms_.end()), terms_.end());
  }
}

Result<Dnf> Dnf::FromExpr(const BoolExprPtr& expr, NormalFormLimits limits) {
  CONSENTDB_ASSIGN_OR_RETURN(std::vector<VarSet> terms,
                             ExprToSets(expr, ExprKind::kOr, limits));
  Minimize(&terms);
  Dnf out;
  out.terms_ = std::move(terms);
  return out;
}

size_t Dnf::TotalLiterals() const { return SumOfSizes(terms_); }

size_t Dnf::MaxTermSize() const {
  size_t k = 0;
  for (const VarSet& t : terms_) k = std::max(k, t.size());
  return k;
}

VarSet Dnf::Vars() const { return UnionOfAll(terms_); }

Truth Dnf::Evaluate(const PartialValuation& val) const {
  bool any_unknown = false;
  for (const VarSet& term : terms_) {
    bool term_false = false;
    bool term_unknown = false;
    for (VarId x : term) {
      Truth t = val.Get(x);
      if (t == Truth::kFalse) {
        term_false = true;
        break;
      }
      if (t == Truth::kUnknown) term_unknown = true;
    }
    if (term_false) continue;
    if (!term_unknown) return Truth::kTrue;  // all-True term
    any_unknown = true;
  }
  return any_unknown ? Truth::kUnknown : Truth::kFalse;
}

Dnf Dnf::Simplify(const PartialValuation& val) const {
  std::vector<VarSet> kept;
  for (const VarSet& term : terms_) {
    std::vector<VarId> residual;
    bool term_false = false;
    for (VarId x : term) {
      Truth t = val.Get(x);
      if (t == Truth::kFalse) {
        term_false = true;
        break;
      }
      if (t == Truth::kUnknown) residual.push_back(x);
    }
    if (term_false) continue;
    if (residual.empty()) return ConstantTrue();
    kept.emplace_back(std::move(residual));
  }
  return Dnf(std::move(kept));
}

bool Dnf::IsReadOnce() const { return NoSharedVars(terms_); }

double Dnf::TrueProbability(const std::vector<double>& pi) const {
  if (IsConstantFalse()) return 0.0;
  if (IsConstantTrue()) return 1.0;
  auto var_prob = [&pi](VarId x) {
    CONSENTDB_CHECK(x < pi.size(), "probability missing for variable");
    return pi[x];
  };
  if (IsReadOnce()) {
    double prob_all_terms_false = 1.0;
    for (const VarSet& term : terms_) {
      double term_true = 1.0;
      for (VarId x : term) term_true *= var_prob(x);
      prob_all_terms_false *= 1.0 - term_true;
    }
    return 1.0 - prob_all_terms_false;
  }
  CONSENTDB_CHECK(terms_.size() <= 20,
                  "inclusion-exclusion limited to 20 terms");
  double p = 0.0;
  size_t combos = static_cast<size_t>(1) << terms_.size();
  for (size_t mask = 1; mask < combos; ++mask) {
    VarSet covered;
    int bits = 0;
    for (size_t i = 0; i < terms_.size(); ++i) {
      if ((mask >> i) & 1) {
        covered = covered.Union(terms_[i]);
        ++bits;
      }
    }
    double term_prob = 1.0;
    for (VarId x : covered) term_prob *= var_prob(x);
    p += (bits % 2 == 1 ? 1.0 : -1.0) * term_prob;
  }
  return p;
}

BoolExprPtr Dnf::ToExpr() const {
  std::vector<BoolExprPtr> term_exprs;
  term_exprs.reserve(terms_.size());
  for (const VarSet& term : terms_) {
    std::vector<BoolExprPtr> lits;
    lits.reserve(term.size());
    for (VarId x : term) lits.push_back(BoolExpr::Var(x));
    term_exprs.push_back(BoolExpr::AndN(std::move(lits)));
  }
  return BoolExpr::OrN(std::move(term_exprs));
}

std::string Dnf::ToString() const {
  if (IsConstantFalse()) return "false";
  if (IsConstantTrue()) return "true";
  std::vector<std::string> parts;
  parts.reserve(terms_.size());
  for (const VarSet& t : terms_) parts.push_back(t.ToString("∧"));
  return Join(parts, " ∨ ");
}

// ---------------------------------------------------------------------------
// Cnf

Cnf::Cnf(std::vector<VarSet> clauses, bool absorb)
    : clauses_(std::move(clauses)) {
  if (absorb) {
    Minimize(&clauses_);
  } else {
    std::sort(clauses_.begin(), clauses_.end());
    clauses_.erase(std::unique(clauses_.begin(), clauses_.end()),
                   clauses_.end());
  }
}

Result<Cnf> Cnf::FromExpr(const BoolExprPtr& expr, NormalFormLimits limits) {
  CONSENTDB_ASSIGN_OR_RETURN(std::vector<VarSet> clauses,
                             ExprToSets(expr, ExprKind::kAnd, limits));
  Minimize(&clauses);
  Cnf out;
  out.clauses_ = std::move(clauses);
  return out;
}

size_t Cnf::TotalLiterals() const { return SumOfSizes(clauses_); }

VarSet Cnf::Vars() const { return UnionOfAll(clauses_); }

Truth Cnf::Evaluate(const PartialValuation& val) const {
  bool any_unknown = false;
  for (const VarSet& clause : clauses_) {
    bool clause_true = false;
    bool clause_unknown = false;
    for (VarId x : clause) {
      Truth t = val.Get(x);
      if (t == Truth::kTrue) {
        clause_true = true;
        break;
      }
      if (t == Truth::kUnknown) clause_unknown = true;
    }
    if (clause_true) continue;
    if (!clause_unknown) return Truth::kFalse;  // all-False clause
    any_unknown = true;
  }
  return any_unknown ? Truth::kUnknown : Truth::kTrue;
}

BoolExprPtr Cnf::ToExpr() const {
  std::vector<BoolExprPtr> clause_exprs;
  clause_exprs.reserve(clauses_.size());
  for (const VarSet& clause : clauses_) {
    std::vector<BoolExprPtr> lits;
    lits.reserve(clause.size());
    for (VarId x : clause) lits.push_back(BoolExpr::Var(x));
    clause_exprs.push_back(BoolExpr::OrN(std::move(lits)));
  }
  return BoolExpr::AndN(std::move(clause_exprs));
}

std::string Cnf::ToString() const {
  if (IsConstantTrue()) return "true";
  if (IsConstantFalse()) return "false";
  std::vector<std::string> parts;
  parts.reserve(clauses_.size());
  for (const VarSet& c : clauses_) parts.push_back(c.ToString("∨"));
  return Join(parts, " ∧ ");
}

// ---------------------------------------------------------------------------
// Conversions

Result<Cnf> DnfToCnf(const Dnf& dnf, NormalFormLimits limits) {
  CONSENTDB_ASSIGN_OR_RETURN(
      std::vector<VarSet> clauses,
      Transpose(dnf.terms(), limits));
  // Transpose output is already a minimal antichain; only canonical
  // (sort + dedup) ordering is needed, not another absorption pass.
  return Cnf(std::move(clauses), /*absorb=*/false);
}

Result<Dnf> CnfToDnf(const Cnf& cnf, NormalFormLimits limits) {
  CONSENTDB_ASSIGN_OR_RETURN(
      std::vector<VarSet> terms,
      Transpose(cnf.clauses(), limits));
  return Dnf(std::move(terms), /*absorb=*/false);
}

}  // namespace consentdb::provenance
