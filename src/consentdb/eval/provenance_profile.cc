#include "consentdb/eval/provenance_profile.h"

#include <set>

namespace consentdb::eval {

using provenance::Dnf;
using provenance::VarId;

Result<ProvenanceProfile> ProfileProvenance(
    const AnnotatedRelation& relation, provenance::NormalFormLimits limits,
    obs::MetricsRegistry* metrics) {
  obs::ScopedTimer timer(obs::MaybeHistogram(metrics, "eval.profile_ns"));
  // Size-scaled buckets (term/literal counts, not latencies).
  const std::vector<uint64_t> size_bounds = {1,  2,   4,   8,    16,  32,
                                             64, 128, 256, 1024, 4096};
  obs::Histogram* dnf_terms =
      metrics != nullptr ? metrics->GetHistogram("eval.dnf_terms", size_bounds)
                         : nullptr;
  obs::Histogram* dnf_literals =
      metrics != nullptr
          ? metrics->GetHistogram("eval.dnf_literals", size_bounds)
          : nullptr;
  ProvenanceProfile profile;
  profile.dnfs.reserve(relation.size());
  std::set<VarId> seen_anywhere;
  for (size_t i = 0; i < relation.size(); ++i) {
    CONSENTDB_ASSIGN_OR_RETURN(
        Dnf dnf, Dnf::FromExpr(relation.annotation(i), limits));
    if (dnf_terms != nullptr) {
      dnf_terms->Observe(dnf.num_terms());
      dnf_literals->Observe(dnf.TotalLiterals());
    }
    profile.max_terms_per_tuple =
        std::max(profile.max_terms_per_tuple, dnf.num_terms());
    profile.max_term_size = std::max(profile.max_term_size, dnf.MaxTermSize());
    profile.total_dnf_literals += dnf.TotalLiterals();
    if (!dnf.IsReadOnce()) {
      profile.per_tuple_read_once = false;
      profile.overall_read_once = false;
    } else if (profile.overall_read_once) {
      for (VarId x : dnf.Vars()) {
        if (!seen_anywhere.insert(x).second) {
          profile.overall_read_once = false;
          break;
        }
      }
    }
    profile.dnfs.push_back(std::move(dnf));
  }
  return profile;
}

std::string ProvenanceProfile::ToString() const {
  std::string out = "ProvenanceProfile{tuples=" + std::to_string(dnfs.size());
  out += ", max_terms=" + std::to_string(max_terms_per_tuple);
  out += ", k=" + std::to_string(max_term_size);
  out += ", literals=" + std::to_string(total_dnf_literals);
  out += per_tuple_read_once ? ", per-tuple-RO" : "";
  out += overall_read_once ? ", overall-RO" : "";
  return out + "}";
}

}  // namespace consentdb::eval
