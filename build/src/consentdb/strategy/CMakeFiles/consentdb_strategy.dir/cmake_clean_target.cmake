file(REMOVE_RECURSE
  "libconsentdb_strategy.a"
)
