#include "consentdb/obs/tracer.h"

#include "consentdb/obs/metrics.h"
#include "consentdb/util/json_writer.h"

namespace consentdb::obs {

void SessionTracer::Clear() {
  events_.clear();
  algorithm_.clear();
  session_nanos_ = 0;
}

void SessionTracer::WriteJson(JsonWriter& w) const {
  w.BeginObject();
  w.Key("algorithm");
  w.String(algorithm_);
  w.Key("session_nanos");
  w.Int(session_nanos_);
  w.Key("num_probes");
  w.Uint(events_.size());
  w.Key("events");
  w.BeginArray();
  for (const ProbeEvent& ev : events_) {
    w.BeginObject();
    w.Key("probe_index");
    w.Uint(ev.probe_index);
    w.Key("variable");
    w.Uint(ev.variable);
    if (!ev.variable_name.empty()) {
      w.Key("variable_name");
      w.String(ev.variable_name);
    }
    if (!ev.owner.empty()) {
      w.Key("owner");
      w.String(ev.owner);
    }
    w.Key("answer");
    w.Bool(ev.answer);
    w.Key("decision_nanos");
    w.Int(ev.decision_nanos);
    w.Key("formulas_decided");
    w.Uint(ev.formulas_decided);
    w.Key("formulas_remaining");
    w.Uint(ev.formulas_remaining);
    w.Key("residual_terms");
    w.Uint(ev.residual_terms);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
}

std::string SessionTracer::ToJson() const {
  JsonWriter w;
  WriteJson(w);
  return w.TakeString();
}

std::string ExportObservabilityJson(const MetricsRegistry* metrics,
                                    const SessionTracer* tracer) {
  JsonWriter w;
  w.BeginObject();
  w.Key("metrics");
  if (metrics != nullptr) {
    metrics->WriteJson(w);
  } else {
    w.Null();
  }
  w.Key("session");
  if (tracer != nullptr) {
    tracer->WriteJson(w);
  } else {
    w.Null();
  }
  w.EndObject();
  return w.TakeString();
}

}  // namespace consentdb::obs
