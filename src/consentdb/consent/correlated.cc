#include "consentdb/consent/correlated.h"

#include <map>
#include <optional>

#include "consentdb/util/check.h"

namespace consentdb::consent {

provenance::PartialValuation SampleCorrelatedValuation(
    const VariablePool& pool, double peer_coherence, Rng& rng) {
  CONSENTDB_CHECK(peer_coherence >= 0.0 && peer_coherence <= 1.0,
                  "coherence out of [0,1]");
  // Average prior per owner (the peer-level coin's bias).
  std::map<std::string, std::pair<double, size_t>> owner_prior;
  for (VarId x = 0; x < pool.size(); ++x) {
    const std::string& owner = pool.owner(x);
    if (owner.empty()) continue;
    auto& [sum, count] = owner_prior[owner];
    sum += pool.probability(x);
    ++count;
  }
  // Decide per peer: coherent (one coin) or independent this time.
  std::map<std::string, std::optional<bool>> peer_coin;
  for (const auto& [owner, acc] : owner_prior) {
    if (rng.Bernoulli(peer_coherence)) {
      double bias = acc.first / static_cast<double>(acc.second);
      peer_coin[owner] = rng.Bernoulli(bias);
    } else {
      peer_coin[owner] = std::nullopt;
    }
  }
  provenance::PartialValuation val(pool.size());
  for (VarId x = 0; x < pool.size(); ++x) {
    const std::string& owner = pool.owner(x);
    std::optional<bool> coin =
        owner.empty() ? std::nullopt : peer_coin[owner];
    val.Set(x, coin.has_value() ? *coin
                                : rng.Bernoulli(pool.probability(x)));
  }
  return val;
}

}  // namespace consentdb::consent
