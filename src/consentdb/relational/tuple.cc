#include "consentdb/relational/tuple.h"

#include "consentdb/util/check.h"
#include "consentdb/util/string_util.h"

namespace consentdb::relational {

const Value& Tuple::at(size_t i) const {
  CONSENTDB_CHECK(i < values_.size(), "tuple index out of range");
  return values_[i];
}

Tuple Tuple::Project(const std::vector<size_t>& indexes) const {
  std::vector<Value> out;
  out.reserve(indexes.size());
  for (size_t i : indexes) out.push_back(at(i));
  return Tuple(std::move(out));
}

Tuple Tuple::Concat(const Tuple& other) const {
  std::vector<Value> out = values_;
  out.insert(out.end(), other.values_.begin(), other.values_.end());
  return Tuple(std::move(out));
}

std::string Tuple::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(values_.size());
  for (const Value& v : values_) parts.push_back(v.ToString());
  return "(" + Join(parts, ", ") + ")";
}

size_t Tuple::Hash() const {
  size_t h = 0x345678;
  for (const Value& v : values_) {
    h = h * 1000003 ^ v.Hash();
  }
  return h;
}

std::ostream& operator<<(std::ostream& os, const Tuple& t) {
  return os << t.ToString();
}

}  // namespace consentdb::relational
