#include "consentdb/consent/replica.h"

#include <algorithm>
#include <string_view>

#include "consentdb/consent/sharded_ledger.h"
#include "consentdb/consent/snapshot.h"

namespace consentdb::consent {

WalFollower::WalFollower(Env* env, std::string wal_path)
    : env_(env), path_(std::move(wal_path)) {}

Status WalFollower::Poll() {
  MutexLock lock(mu_);
  ++polls_;
  if (!env_->FileExists(path_)) {
    // The leader has not created (or synced) this shard's log yet.
    return Status::OK();
  }
  CONSENTDB_ASSIGN_OR_RETURN(std::string content,
                             env_->ReadFileToString(path_));
  // The snapshot sidecar is part of the replicated state: compaction moves
  // the log's prefix into it and resets the log to header-only bytes — a
  // rewrite the tail offset alone cannot see (the reset log is exactly as
  // long as the header the follower already consumed). Any sidecar change
  // therefore forces a full resync.
  std::string snapshot;
  const std::string snap_path = WalSnapshotPath(path_);
  if (env_->FileExists(snap_path)) {
    CONSENTDB_ASSIGN_OR_RETURN(snapshot, env_->ReadFileToString(snap_path));
  }
  if (synced_once_ && offset_ <= content.size() &&
      snapshot == snapshot_applied_) {
    // Incremental tail: parse only the bytes appended since the last poll.
    WalReplay tail = ParseWalRecords(
        std::string_view(content).substr(offset_));
    const bool rewritten =
        tail.corrupt_record ||
        (tail.shard.has_value() && shard_.has_value() &&
         *tail.shard != *shard_);
    if (!rewritten) {
      for (const auto& [x, answer] : tail.answers) {
        CONSENTDB_RETURN_IF_ERROR(ApplyLocked(x, answer));
      }
      if (tail.shard.has_value()) shard_ = tail.shard;
      // A torn tail is not damage from where a follower stands: the bytes
      // may simply not all be visible yet. Stay at the last record
      // boundary and retry them next poll.
      offset_ = content.size() - static_cast<size_t>(tail.bytes_dropped);
      return Status::OK();
    }
    // A parse failure mid-stream means the file was rewritten under us
    // (compaction or tail healing): fall through to a full resync.
  }
  return ResyncLocked(content, snapshot);
}

Status WalFollower::ResyncLocked(const std::string& content,
                                 const std::string& snapshot) {
  if (synced_once_) ++resyncs_;
  synced_once_ = true;
  // Snapshot first: compaction moves the log's prefix into the sidecar, so
  // the full view is snapshot + log (replay is idempotent, order is safe).
  using AnswerVec = std::vector<std::pair<VarId, bool>>;
  if (!snapshot.empty()) {
    CONSENTDB_ASSIGN_OR_RETURN(AnswerVec answers,
                               LoadLedgerSnapshot(snapshot));
    for (const auto& [x, answer] : answers) {
      CONSENTDB_RETURN_IF_ERROR(ApplyLocked(x, answer));
    }
  }
  snapshot_applied_ = snapshot;
  CONSENTDB_ASSIGN_OR_RETURN(WalReplay replay,
                             ParseWalContent(content, path_));
  for (const auto& [x, answer] : replay.answers) {
    CONSENTDB_RETURN_IF_ERROR(ApplyLocked(x, answer));
  }
  if (replay.shard.has_value()) shard_ = replay.shard;
  offset_ = content.size() - static_cast<size_t>(replay.bytes_dropped);
  return Status::OK();
}

Status WalFollower::ApplyLocked(VarId x, bool answer) {
  auto [it, inserted] = answers_.emplace(x, answer);
  if (!inserted) {
    if (it->second != answer) {
      return Status::Internal(
          "replica stream conflicts with replicated answer for x" +
          std::to_string(x) + " (" + path_ + ")");
    }
    return Status::OK();  // idempotent replay (snapshot + wal overlap)
  }
  ++applied_;
  return Status::OK();
}

std::optional<bool> WalFollower::Lookup(VarId x) const {
  MutexLock lock(mu_);
  auto it = answers_.find(x);
  if (it == answers_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::pair<VarId, bool>> WalFollower::Answers() const {
  MutexLock lock(mu_);
  // det:order-insensitive sorted by VarId before any caller serializes it
  std::vector<std::pair<VarId, bool>> answers(answers_.begin(),
                                              answers_.end());
  std::sort(answers.begin(), answers.end());
  return answers;
}

size_t WalFollower::size() const {
  MutexLock lock(mu_);
  return answers_.size();
}

std::optional<WalShardInfo> WalFollower::shard() const {
  MutexLock lock(mu_);
  return shard_;
}

uint64_t WalFollower::polls() const {
  MutexLock lock(mu_);
  return polls_;
}

uint64_t WalFollower::applied_answers() const {
  MutexLock lock(mu_);
  return applied_;
}

uint64_t WalFollower::resyncs() const {
  MutexLock lock(mu_);
  return resyncs_;
}

LedgerReplica::LedgerReplica(Env* env, const std::string& base_path,
                             size_t num_shards) {
  followers_.reserve(num_shards);
  for (size_t k = 0; k < num_shards; ++k) {
    followers_.push_back(
        std::make_unique<WalFollower>(env, ShardWalPath(base_path, k)));
  }
}

Status LedgerReplica::Poll() {
  Status first;
  for (const auto& follower : followers_) {
    Status s = follower->Poll();
    if (!s.ok() && first.ok()) first = std::move(s);
  }
  return first;
}

std::optional<bool> LedgerReplica::Lookup(VarId x) const {
  return followers_[ShardedConsentLedger::ShardOf(x, followers_.size())]
      ->Lookup(x);
}

size_t LedgerReplica::size() const {
  size_t total = 0;
  for (const auto& follower : followers_) total += follower->size();
  return total;
}

Result<std::vector<std::pair<VarId, bool>>> LedgerReplica::Answers() const {
  std::vector<std::pair<VarId, bool>> merged;
  // Shard-id order, then one global sort: the same deterministic merge
  // cross-shard recovery uses, so replica state serializes byte-identically
  // to the recovered leader's.
  for (const auto& follower : followers_) {
    std::vector<std::pair<VarId, bool>> part = follower->Answers();
    merged.insert(merged.end(), part.begin(), part.end());
  }
  std::sort(merged.begin(), merged.end());
  for (size_t i = 1; i < merged.size(); ++i) {
    if (merged[i].first == merged[i - 1].first &&
        merged[i].second != merged[i - 1].second) {
      return Status::Internal(
          "replica shards disagree on x" + std::to_string(merged[i].first));
    }
  }
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  return merged;
}

Result<LedgerReplica::Cutover> LedgerReplica::CutOver() {
  CONSENTDB_RETURN_IF_ERROR(Poll());
  // The followers must describe one coherent shard set: same generation,
  // a num_shards matching this replica, and each log at its own slot.
  // (Followers that never saw a header tail still-empty logs and constrain
  // nothing.) Shard-id order keeps the first-mismatch error deterministic.
  std::optional<WalShardInfo> reference;
  for (size_t k = 0; k < followers_.size(); ++k) {
    std::optional<WalShardInfo> shard = followers_[k]->shard();
    if (!shard.has_value()) continue;
    if (shard->shard_id != k ||
        shard->num_shards != followers_.size()) {
      return Status::FailedPrecondition(
          "replica follows a log stamped for a different shard set: " +
          followers_[k]->wal_path());
    }
    if (reference.has_value() &&
        reference->generation != shard->generation) {
      return Status::FailedPrecondition(
          "replica followed a mixed-generation shard set; refusing cutover");
    }
    reference = shard;
  }
  Cutover cut;
  cut.next_generation =
      reference.has_value() ? reference->generation + 1 : 1;
  CONSENTDB_ASSIGN_OR_RETURN(cut.answers, Answers());
  return cut;
}

}  // namespace consentdb::consent
