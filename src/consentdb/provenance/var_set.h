// VarSet: a small sorted set of variable ids — the representation of both
// DNF terms (conjunctions) and CNF clauses (disjunctions).

#ifndef CONSENTDB_PROVENANCE_VAR_SET_H_
#define CONSENTDB_PROVENANCE_VAR_SET_H_

#include <algorithm>
#include <initializer_list>
#include <string>
#include <vector>

#include "consentdb/provenance/truth.h"

namespace consentdb::provenance {

// Sorted, duplicate-free vector of VarIds. An empty VarSet denotes the empty
// conjunction (True) when used as a term, and the empty disjunction (False)
// when used as a clause.
class VarSet {
 public:
  VarSet() = default;
  VarSet(std::initializer_list<VarId> vars)
      : VarSet(std::vector<VarId>(vars)) {}
  explicit VarSet(std::vector<VarId> vars) : vars_(std::move(vars)) {
    std::sort(vars_.begin(), vars_.end());
    vars_.erase(std::unique(vars_.begin(), vars_.end()), vars_.end());
  }

  // Constructs from a vector that is already sorted and duplicate-free —
  // e.g. ids produced by an ascending bit scan — skipping the re-sort.
  static VarSet FromSorted(std::vector<VarId> vars) {
    VarSet out;
    out.vars_ = std::move(vars);
    return out;
  }

  size_t size() const { return vars_.size(); }
  bool empty() const { return vars_.empty(); }
  const std::vector<VarId>& vars() const { return vars_; }
  VarId operator[](size_t i) const { return vars_[i]; }

  auto begin() const { return vars_.begin(); }
  auto end() const { return vars_.end(); }

  bool Contains(VarId x) const {
    return std::binary_search(vars_.begin(), vars_.end(), x);
  }

  // True iff every element of this set is in `other`.
  bool SubsetOf(const VarSet& other) const {
    return std::includes(other.vars_.begin(), other.vars_.end(),
                         vars_.begin(), vars_.end());
  }

  // Set union.
  VarSet Union(const VarSet& other) const {
    std::vector<VarId> out;
    out.reserve(vars_.size() + other.vars_.size());
    std::set_union(vars_.begin(), vars_.end(), other.vars_.begin(),
                   other.vars_.end(), std::back_inserter(out));
    VarSet result;
    result.vars_ = std::move(out);  // already sorted & unique
    return result;
  }

  // This set minus the elements of `other`.
  VarSet Difference(const VarSet& other) const {
    std::vector<VarId> out;
    std::set_difference(vars_.begin(), vars_.end(), other.vars_.begin(),
                        other.vars_.end(), std::back_inserter(out));
    VarSet result;
    result.vars_ = std::move(out);
    return result;
  }

  bool Intersects(const VarSet& other) const {
    auto a = vars_.begin();
    auto b = other.vars_.begin();
    while (a != vars_.end() && b != other.vars_.end()) {
      if (*a == *b) return true;
      if (*a < *b) {
        ++a;
      } else {
        ++b;
      }
    }
    return false;
  }

  std::string ToString(const char* sep) const {
    std::string out = "{";
    for (size_t i = 0; i < vars_.size(); ++i) {
      if (i > 0) out += sep;
      out += "x" + std::to_string(vars_[i]);
    }
    return out + "}";
  }

  friend bool operator==(const VarSet& a, const VarSet& b) {
    return a.vars_ == b.vars_;
  }
  friend bool operator<(const VarSet& a, const VarSet& b) {
    return a.vars_ < b.vars_;
  }

 private:
  std::vector<VarId> vars_;
};

}  // namespace consentdb::provenance

#endif  // CONSENTDB_PROVENANCE_VAR_SET_H_
