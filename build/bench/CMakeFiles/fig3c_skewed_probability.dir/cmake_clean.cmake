file(REMOVE_RECURSE
  "CMakeFiles/fig3c_skewed_probability.dir/fig3c_skewed_probability.cc.o"
  "CMakeFiles/fig3c_skewed_probability.dir/fig3c_skewed_probability.cc.o.d"
  "fig3c_skewed_probability"
  "fig3c_skewed_probability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3c_skewed_probability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
