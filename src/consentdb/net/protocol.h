// Probe-service message protocol, layered on net/frame.h.
//
// The frame type byte is the MsgType; the frame body is the message fields
// serialized with the little-endian primitives from frame.h. Session
// lifecycle (see DESIGN.md §4k):
//
//   client                         server
//     | -- OpenSession(id) -------->|   admit / shed / resume
//     |<-- ProbeRequest(id, x) -----|   one per ledger miss, as evaluation
//     | -- ProbeAnswer(id, x, b) -->|   progresses (or ProbeFault)
//     |        ...                  |
//     |<-- SessionReport(id, json) -|   verdicts ready
//     | -- Ack(id) ---------------->|   server may forget the session
//
// Session ids are chosen by the client as (client_id << 32 | seq), which
// makes OpenSession idempotent: re-sending it after a reconnect resumes the
// same server-side session, and the ConsentLedger guarantees no variable is
// probed twice no matter how often the conversation is replayed.

#ifndef CONSENTDB_NET_PROTOCOL_H_
#define CONSENTDB_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <variant>

#include "consentdb/net/frame.h"
#include "consentdb/util/result.h"

namespace consentdb::net {

enum class MsgType : uint8_t {
  kOpenSession = 1,
  kProbeRequest = 2,
  kProbeAnswer = 3,
  kProbeFault = 4,
  kSessionReport = 5,
  kError = 6,
  kAck = 7,
  kPing = 8,
  kPong = 9,
};

// Client -> server: start (or resume) session `session_id`. Idempotent for a
// fixed id; the server rejects a re-open whose tenant or query differs from
// the original with kFailedPrecondition.
struct OpenSession {
  uint64_t session_id = 0;
  std::string tenant;
  std::string sql;
  // When has_single is nonzero, decide consent for the one snapshot row in
  // single_csv instead of the whole result set.
  uint8_t has_single = 0;
  std::string single_csv;
  // Client-propagated session deadline, relative nanos from admission;
  // 0 = server default. The server clamps it to its configured maximum.
  int64_t deadline_nanos = 0;
};

// Server -> client: ask the data owner of `variable` for consent.
struct ProbeRequest {
  uint64_t session_id = 0;
  uint64_t variable = 0;
  std::string variable_name;
  std::string owner;
};

// Client -> server: the owner's answer for a previously requested variable.
struct ProbeAnswer {
  uint64_t session_id = 0;
  uint64_t variable = 0;
  uint8_t answer = 0;  // 0 = deny, 1 = grant
};

// Client -> server: the probe could not be answered. `fault` carries the
// consent::ProbeFault enumerator value.
struct ProbeFaultMsg {
  uint64_t session_id = 0;
  uint64_t variable = 0;
  uint8_t fault = 0;
};

// Server -> client: the finished SessionReport, as its canonical JSON.
struct SessionReportMsg {
  uint64_t session_id = 0;
  std::string report_json;
};

// Server -> client: the session failed. `code` is the StatusCode enumerator
// value; retry_after_nanos > 0 is the shedding hint (kUnavailable only).
struct ErrorMsg {
  uint64_t session_id = 0;
  uint8_t code = 0;
  std::string message;
  int64_t retry_after_nanos = 0;
};

// Client -> server: report received; the server may release the session.
struct AckMsg {
  uint64_t session_id = 0;
};

struct PingMsg {
  uint64_t nonce = 0;
};

struct PongMsg {
  uint64_t nonce = 0;
};

using Message = std::variant<OpenSession, ProbeRequest, ProbeAnswer,
                             ProbeFaultMsg, SessionReportMsg, ErrorMsg, AckMsg,
                             PingMsg, PongMsg>;

// Serializes `msg` as one complete wire frame (ready to Write).
std::string EncodeMessage(const Message& msg);

// Decodes a frame (type byte + body) back into a Message. kInvalidArgument
// on an unknown type or a truncated/overlong body — the caller should treat
// that like a corrupt frame and drop the connection.
Result<Message> DecodeMessage(uint8_t type, std::string_view body);

// StatusCode <-> wire byte for ErrorMsg::code. An out-of-range wire byte
// decodes as kInternal (a peer speaking a newer protocol, not a framing
// error).
uint8_t WireStatusCode(StatusCode code);
Status StatusFromWire(uint8_t code, std::string message);

}  // namespace consentdb::net

#endif  // CONSENTDB_NET_PROTOCOL_H_
