#include <gtest/gtest.h>

#include "consentdb/query/classify.h"
#include "consentdb/query/parser.h"
#include "consentdb/util/check.h"

namespace consentdb::query {
namespace {

PlanPtr MustParse(std::string_view sql) {
  Result<PlanPtr> r = ParseQuery(sql);
  EXPECT_TRUE(r.ok()) << r.status().ToString() << "\nsql: " << sql;
  return r.ok() ? *r : nullptr;
}

Status ParseError(std::string_view sql) {
  Result<PlanPtr> r = ParseQuery(sql);
  EXPECT_FALSE(r.ok()) << "expected parse error for: " << sql;
  return r.ok() ? Status::OK() : r.status();
}

// --- Structure ----------------------------------------------------------------

TEST(ParserTest, SelectStarSingleTable) {
  PlanPtr p = MustParse("SELECT * FROM People");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->kind(), PlanKind::kScan);
  EXPECT_EQ(p->relation(), "People");
}

TEST(ParserTest, SelectColumnsAddsProject) {
  PlanPtr p = MustParse("SELECT name FROM People");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->kind(), PlanKind::kProject);
  EXPECT_EQ(p->columns(), (std::vector<std::string>{"name"}));
  EXPECT_EQ(p->child(0)->kind(), PlanKind::kScan);
}

TEST(ParserTest, DistinctIsAcceptedAndImplied) {
  PlanPtr a = MustParse("SELECT DISTINCT name FROM People");
  PlanPtr b = MustParse("SELECT name FROM People");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->kind(), b->kind());
}

TEST(ParserTest, WhereAddsSelect) {
  PlanPtr p = MustParse("SELECT * FROM People WHERE age > 18");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->kind(), PlanKind::kSelect);
  EXPECT_EQ(p->predicate()->ToString(), "age > 18");
}

TEST(ParserTest, MultipleTablesFoldIntoProducts) {
  PlanPtr p = MustParse("SELECT * FROM A, B, C");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->kind(), PlanKind::kProduct);
  EXPECT_EQ(p->child(0)->kind(), PlanKind::kProduct);
  EXPECT_EQ(p->child(1)->kind(), PlanKind::kScan);
  EXPECT_EQ(Classify(*p).num_joins, 2u);
}

TEST(ParserTest, AliasesWithAndWithoutAs) {
  PlanPtr p = MustParse("SELECT * FROM People AS p, Pets q");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->child(0)->alias(), "p");
  EXPECT_EQ(p->child(1)->alias(), "q");
}

TEST(ParserTest, UnionProducesUnionNode) {
  PlanPtr p = MustParse("SELECT name FROM A UNION SELECT name FROM B");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->kind(), PlanKind::kUnion);
  EXPECT_EQ(p->children().size(), 2u);
}

TEST(ParserTest, ThreeWayUnion) {
  PlanPtr p = MustParse(
      "SELECT x FROM A UNION SELECT x FROM B UNION SELECT x FROM C");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->children().size(), 3u);
  EXPECT_EQ(Classify(*p).num_unions, 2u);
}

TEST(ParserTest, PaperRunningExampleParses) {
  // The query Q_ex of Fig. 1.
  PlanPtr p = MustParse(
      "SELECT DISTINCT c.name "
      "FROM Companies c, JobSeekers s, Vacancies v, Assignment a "
      "WHERE c.cid = v.cid AND v.vid = a.vid AND a.status = 'hired' "
      "AND a.sid = s.sid AND s.education = 'Env. studies'");
  ASSERT_NE(p, nullptr);
  QueryProfile profile = Classify(*p);
  EXPECT_EQ(profile.query_class, QueryClass::kSPJ);
  EXPECT_EQ(profile.num_joins, 3u);
  EXPECT_TRUE(profile.partitioned);
}

// --- Predicates ------------------------------------------------------------------

TEST(ParserTest, AndOrPrecedence) {
  PlanPtr p = MustParse("SELECT * FROM A WHERE x = 1 AND y = 2 OR z = 3");
  ASSERT_NE(p, nullptr);
  // OR binds loosest: (x=1 AND y=2) OR z=3.
  EXPECT_EQ(p->predicate()->kind(), Predicate::Kind::kOr);
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  PlanPtr p = MustParse("SELECT * FROM A WHERE x = 1 AND (y = 2 OR z = 3)");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->predicate()->kind(), Predicate::Kind::kAnd);
}

TEST(ParserTest, AllComparisonOperators) {
  PlanPtr p = MustParse(
      "SELECT * FROM A WHERE a = 1 AND b != 2 AND c <> 3 AND d < 4 AND "
      "e <= 5 AND f > 6 AND g >= 7");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->predicate()->children().size(), 7u);
}

TEST(ParserTest, LiteralTypes) {
  PlanPtr p = MustParse(
      "SELECT * FROM A WHERE a = 'str' AND b = 42 AND c = 3.5 AND d = TRUE "
      "AND e = FALSE AND f = NULL");
  ASSERT_NE(p, nullptr);
}

TEST(ParserTest, StringEscape) {
  PlanPtr p = MustParse("SELECT * FROM A WHERE a = 'it''s'");
  ASSERT_NE(p, nullptr);
  EXPECT_NE(p->predicate()->ToString().find("it's"), std::string::npos);
}

TEST(ParserTest, QualifiedColumnReferences) {
  PlanPtr p = MustParse("SELECT a.x FROM T a WHERE a.x = a.y");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->columns()[0], "a.x");
}

TEST(ParserTest, KeywordsAreCaseInsensitive) {
  PlanPtr p = MustParse("select * from A where x = 1 union select * from B");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->kind(), PlanKind::kUnion);
}

TEST(ParserTest, LiteralOnBothSides) {
  // Degenerate but legal: constant comparison.
  PlanPtr p = MustParse("SELECT * FROM A WHERE 1 = 1");
  ASSERT_NE(p, nullptr);
}

// --- Errors ------------------------------------------------------------------------

TEST(ParserErrorTest, MissingFrom) {
  Status s = ParseError("SELECT name");
  EXPECT_NE(s.message().find("FROM"), std::string::npos);
}

TEST(ParserErrorTest, MissingSelect) { CONSENTDB_IGNORE_STATUS(ParseError("FROM A")); }

TEST(ParserErrorTest, EmptyInput) { CONSENTDB_IGNORE_STATUS(ParseError("")); }

TEST(ParserErrorTest, TrailingGarbage) {
  CONSENTDB_IGNORE_STATUS(ParseError("SELECT * FROM A extra tokens here ,"));
}

TEST(ParserErrorTest, DuplicateAlias) {
  Status s = ParseError("SELECT * FROM A x, B x");
  EXPECT_NE(s.message().find("alias"), std::string::npos);
}

TEST(ParserErrorTest, UnterminatedString) {
  CONSENTDB_IGNORE_STATUS(ParseError("SELECT * FROM A WHERE x = 'oops"));
}

TEST(ParserErrorTest, MissingComparisonRhs) {
  CONSENTDB_IGNORE_STATUS(ParseError("SELECT * FROM A WHERE x ="));
}

TEST(ParserErrorTest, MissingCloseParen) {
  CONSENTDB_IGNORE_STATUS(ParseError("SELECT * FROM A WHERE (x = 1"));
}

TEST(ParserErrorTest, KeywordAsTableName) {
  CONSENTDB_IGNORE_STATUS(ParseError("SELECT * FROM WHERE"));
}

TEST(ParserErrorTest, UnexpectedCharacter) {
  CONSENTDB_IGNORE_STATUS(ParseError("SELECT * FROM A WHERE x # 1"));
}

TEST(ParserErrorTest, UnionMissingSecondSelect) {
  CONSENTDB_IGNORE_STATUS(ParseError("SELECT * FROM A UNION"));
}

TEST(ParserErrorTest, ErrorsCarryOffset) {
  Status s = ParseError("SELECT * FROM A WHERE x =");
  EXPECT_NE(s.message().find("offset"), std::string::npos);
}

}  // namespace
}  // namespace consentdb::query
