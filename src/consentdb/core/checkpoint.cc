#include "consentdb/core/checkpoint.h"

#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "consentdb/consent/oracle.h"
#include "consentdb/consent/snapshot.h"

namespace consentdb::core {

namespace {

constexpr char kMagic[] = "consentdb-checkpoint 1";

// Parses a non-negative integer occupying the whole of `text`.
bool ParseCount(const std::string& text, uint64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *out = static_cast<uint64_t>(v);
  return true;
}

// A cursor over the checkpoint text: line reads for the framing, raw byte
// reads for the byte-counted sections.
class Cursor {
 public:
  explicit Cursor(const std::string& text) : text_(text) {}

  // Reads up to (and consuming) the next '\n'; fails at end of input.
  [[nodiscard]] Result<std::string> Line() {
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("checkpoint truncated: expected a line");
    }
    size_t nl = text_.find('\n', pos_);
    if (nl == std::string::npos) {
      return Status::InvalidArgument("checkpoint truncated: unterminated line");
    }
    std::string line = text_.substr(pos_, nl - pos_);
    pos_ = nl + 1;
    return line;
  }

  // Reads exactly `n` raw bytes.
  [[nodiscard]] Result<std::string> Bytes(uint64_t n) {
    if (n > text_.size() - pos_) {
      return Status::InvalidArgument("checkpoint truncated: section shorter "
                                     "than its byte count");
    }
    std::string bytes = text_.substr(pos_, n);
    pos_ += n;
    return bytes;
  }

  // A framing line "<keyword> <rest>"; returns rest.
  [[nodiscard]] Result<std::string> Keyword(const std::string& keyword) {
    CONSENTDB_ASSIGN_OR_RETURN(std::string line, Line());
    const std::string prefix = keyword + " ";
    if (line.compare(0, prefix.size(), prefix) != 0) {
      return Status::InvalidArgument("checkpoint: expected '" + keyword +
                                     " ...', got '" + line + "'");
    }
    return line.substr(prefix.size());
  }

  [[nodiscard]] Result<uint64_t> CountAfter(const std::string& keyword) {
    CONSENTDB_ASSIGN_OR_RETURN(std::string rest, Keyword(keyword));
    uint64_t n = 0;
    if (!ParseCount(rest, &n)) {
      return Status::InvalidArgument("checkpoint: bad count in '" + keyword +
                                     " " + rest + "'");
    }
    return n;
  }

  size_t pos() const { return pos_; }
  void Rewind(size_t pos) { pos_ = pos; }

 private:
  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Status WriteCheckpoint(
    Env* env, const std::string& path, const consent::SharedDatabase& sdb,
    const std::vector<std::pair<provenance::VarId, bool>>& ledger_answers,
    const std::vector<CheckpointedSession>& sessions) {
  for (const CheckpointedSession& s : sessions) {
    if (s.sql.find('\n') != std::string::npos) {
      return Status::InvalidArgument(
          "checkpoint: session sql must be a single line");
    }
    if (s.single_csv.has_value() &&
        s.single_csv->find('\n') != std::string::npos) {
      return Status::InvalidArgument(
          "checkpoint: session tuple must be a single line");
    }
  }
  const std::string db = consent::SaveSnapshot(sdb);
  const std::string ledger = consent::SaveLedgerSnapshot(ledger_answers);
  std::ostringstream out;
  out << kMagic << "\n";
  out << "database " << db.size() << "\n" << db;
  out << "ledger " << ledger.size() << "\n" << ledger;
  out << "sessions " << sessions.size() << "\n";
  for (const CheckpointedSession& s : sessions) {
    out << "session " << s.sql << "\n";
    if (s.single_csv.has_value()) out << "single " << *s.single_csv << "\n";
  }
  out << "end\n";
  // Atomic publish: a crash mid-write leaves the previous checkpoint (or
  // nothing) in place, never a torn file under `path`.
  const std::string tmp = path + ".tmp";
  CONSENTDB_RETURN_IF_ERROR(env->WriteStringToFile(tmp, out.str(),
                                                   /*sync=*/true));
  return env->RenameFile(tmp, path);
}

Result<RestoredCheckpoint> ReadCheckpoint(Env* env, const std::string& path) {
  CONSENTDB_ASSIGN_OR_RETURN(std::string text, env->ReadFileToString(path));
  Cursor cursor(text);
  CONSENTDB_ASSIGN_OR_RETURN(std::string magic, cursor.Line());
  if (magic != kMagic) {
    return Status::InvalidArgument("not a consentdb checkpoint: " + path);
  }

  CONSENTDB_ASSIGN_OR_RETURN(uint64_t db_bytes, cursor.CountAfter("database"));
  CONSENTDB_ASSIGN_OR_RETURN(std::string db_text, cursor.Bytes(db_bytes));
  std::map<uint64_t, provenance::VarId> var_map;
  RestoredCheckpoint restored;
  CONSENTDB_ASSIGN_OR_RETURN(restored.sdb,
                             consent::LoadSnapshot(db_text, &var_map));

  CONSENTDB_ASSIGN_OR_RETURN(uint64_t lg_bytes, cursor.CountAfter("ledger"));
  CONSENTDB_ASSIGN_OR_RETURN(std::string lg_text, cursor.Bytes(lg_bytes));
  using AnswerVec = std::vector<std::pair<provenance::VarId, bool>>;
  CONSENTDB_ASSIGN_OR_RETURN(AnswerVec raw_answers,
                             consent::LoadLedgerSnapshot(lg_text));
  restored.ledger_answers.reserve(raw_answers.size());
  for (const auto& [snapshot_id, answer] : raw_answers) {
    auto it = var_map.find(snapshot_id);
    if (it == var_map.end()) {
      return Status::InvalidArgument(
          "checkpoint: ledger references variable " +
          std::to_string(snapshot_id) + " absent from the database snapshot");
    }
    restored.ledger_answers.emplace_back(it->second, answer);
  }

  CONSENTDB_ASSIGN_OR_RETURN(uint64_t n_sessions,
                             cursor.CountAfter("sessions"));
  restored.sessions.reserve(n_sessions);
  for (uint64_t i = 0; i < n_sessions; ++i) {
    CheckpointedSession s;
    CONSENTDB_ASSIGN_OR_RETURN(s.sql, cursor.Keyword("session"));
    // Peek: an optional "single " line belongs to this session.
    const size_t mark = cursor.pos();
    CONSENTDB_ASSIGN_OR_RETURN(std::string next, cursor.Line());
    if (next.compare(0, 7, "single ") == 0) {
      s.single_csv = next.substr(7);
    } else {
      cursor.Rewind(mark);  // not ours; it is the next framing line
    }
    restored.sessions.push_back(std::move(s));
  }
  CONSENTDB_ASSIGN_OR_RETURN(std::string tail, cursor.Line());
  if (tail != "end") {
    return Status::InvalidArgument("checkpoint: expected 'end', got '" + tail +
                                   "'");
  }
  return restored;
}

Result<ShardRecoveryStats> RecoverShardedLedger(Env* env,
                                                const std::string& base_path,
                                                size_t num_shards,
                                                consent::ConsentLedger* ledger,
                                                obs::MetricsRegistry* metrics,
                                                Clock* clock) {
  if (num_shards == 0) {
    return Status::InvalidArgument("sharded recovery needs at least one shard");
  }
  ShardRecoveryStats stats;
  stats.shards.reserve(num_shards);
  std::optional<uint64_t> generation;
  // Shard-id order, always: the merge must not depend on directory listing
  // or map order, so two recoveries of one set are byte-identical.
  for (size_t k = 0; k < num_shards; ++k) {
    const std::string wal_path = consent::ShardWalPath(base_path, k);
    CONSENTDB_ASSIGN_OR_RETURN(
        consent::RecoveryStats shard_stats,
        consent::RecoverLedger(env, wal_path, ledger, metrics, clock));
    if (shard_stats.shard.has_value()) {
      if (shard_stats.shard->num_shards != num_shards ||
          shard_stats.shard->shard_id != k) {
        return Status::FailedPrecondition(
            "shard wal stamped for a different set (want shard " +
            std::to_string(k) + "/" + std::to_string(num_shards) +
            "): " + wal_path);
      }
      if (generation.has_value() &&
          *generation != shard_stats.shard->generation) {
        return Status::FailedPrecondition(
            "mixed-generation shard set at " + base_path + ": shard " +
            std::to_string(k) + " is generation " +
            std::to_string(shard_stats.shard->generation) + ", expected " +
            std::to_string(*generation));
      }
      generation = shard_stats.shard->generation;
    } else if (shard_stats.wal_records + shard_stats.snapshot_answers > 0) {
      return Status::FailedPrecondition(
          "shard wal carries answers but no shard header: " + wal_path);
    }
    stats.shards.push_back(shard_stats);
  }
  stats.generation = generation.value_or(0);
  stats.recovered_answers = ledger->size();
  return stats;
}

}  // namespace consentdb::core
