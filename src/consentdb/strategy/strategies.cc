#include "consentdb/strategy/strategies.h"

#include <algorithm>

#include "consentdb/util/check.h"

namespace consentdb::strategy {

namespace {

constexpr size_t kNoTerm = static_cast<size_t>(-1);

}  // namespace

// --- Random -------------------------------------------------------------------

VarId RandomStrategy::ChooseNext(EvaluationState& state) {
  if (!shuffled_) {
    order_ = state.AllVars();
    rng_.Shuffle(order_);
    next_ = 0;
    shuffled_ = true;
  }
  // Usefulness is monotone (a useless variable never becomes useful again),
  // so a single forward pointer over the random order suffices.
  while (next_ < order_.size()) {
    if (state.IsUseful(order_[next_])) return order_[next_];
    ++next_;
  }
  CONSENTDB_CHECK(false, "no useful variable but formulas undecided");
  return provenance::kInvalidVar;
}

// --- LazyArgMax -----------------------------------------------------------------

VarId LazyArgMax::Choose(const EvaluationState& state,
                         const std::function<double(VarId)>& score) {
  if (!built_) {
    for (VarId x : state.AllVars()) {
      if (state.IsUseful(x)) heap_.push(Entry{score(x), x});
    }
    built_ = true;
  }
  while (!heap_.empty()) {
    Entry top = heap_.top();
    if (!state.IsUseful(top.var)) {
      heap_.pop();
      continue;
    }
    double current = score(top.var);
    if (current == top.score) return top.var;
    heap_.pop();
    heap_.push(Entry{current, top.var});
  }
  CONSENTDB_CHECK(false, "no useful variable but formulas undecided");
  return provenance::kInvalidVar;
}

// --- Freq ---------------------------------------------------------------------

VarId FreqStrategy::ChooseNext(EvaluationState& state) {
  return argmax_.Choose(state, [&state](VarId x) {
    return static_cast<double>(state.LiveTermCount(x)) / state.cost(x);
  });
}

// --- RO (Algorithm 1) -----------------------------------------------------------

namespace {

// Expected cost of fully verifying a term when its unknown variables are
// probed in the cost-aware order (ascending cost/(1-p)): each variable is
// reached only if all previous ones answered True.
double ExpectedTermCost(const EvaluationState& state,
                        const std::vector<VarId>& residual) {
  std::vector<VarId> order = residual;
  std::sort(order.begin(), order.end(), [&state](VarId a, VarId b) {
    double ra = state.cost(a) / std::max(1e-12, 1.0 - state.probability(a));
    double rb = state.cost(b) / std::max(1e-12, 1.0 - state.probability(b));
    if (ra != rb) return ra < rb;
    return a < b;
  });
  double expected = 0.0;
  double reach = 1.0;
  for (VarId v : order) {
    expected += reach * state.cost(v);
    reach *= state.probability(v);
  }
  return expected;
}

}  // namespace

RoStrategy::TermEntry RoStrategy::ScoreTerm(const EvaluationState& state,
                                            size_t tid) const {
  // The term with the highest probability-to-size ratio (Alg. 1); with
  // non-uniform probe costs the denominator becomes the expected cost of
  // verifying the term (Sec. VII extension).
  double prob = state.TermResidualProbability(tid);
  double denom = state.has_costs()
                     ? ExpectedTermCost(state, state.TermResidualVars(tid))
                     : static_cast<double>(state.TermResidualSize(tid));
  return TermEntry{prob / denom, prob, tid};
}

namespace {

bool TermHasUsefulVar(const EvaluationState& state, size_t tid) {
  for (VarId v : state.TermResidualVars(tid)) {
    if (state.IsUseful(v)) return true;
  }
  return false;
}

}  // namespace

VarId RoStrategy::ChooseNext(EvaluationState& state) {
  while (true) {
    if (current_term_ == kNoTerm || !state.TermLive(current_term_)) {
      if (!heap_initialized_) {
        state.ForEachLiveTerm(
            [&](size_t tid) { heap_.push(ScoreTerm(state, tid)); });
        heap_initialized_ = true;
      }
      current_term_ = kNoTerm;
      while (!heap_.empty()) {
        TermEntry top = heap_.top();
        heap_.pop();
        if (!state.TermLive(top.tid)) continue;  // stale: term died
        TermEntry fresh = ScoreTerm(state, top.tid);
        if (fresh.frac != top.frac || fresh.prob != top.prob) {
          heap_.push(fresh);  // stale: term shrank since this entry
          continue;
        }
        // A term whose residual variables are all unreachable can never be
        // probed again; residuals only shrink and the unreachable set only
        // grows, so dropping it from the heap for good is safe.
        if (!TermHasUsefulVar(state, top.tid)) continue;
        current_term_ = top.tid;
        break;
      }
      CONSENTDB_CHECK(current_term_ != kNoTerm,
                      "no live term with a probeable variable but formulas "
                      "undecided");
    }
    // Probe the term's unknown variables in ascending cost/(1-p) — with
    // unit costs this is exactly "increasing order of probability" (Alg. 1).
    // Unreachable variables are skipped: they stay in the residual (the
    // term may still be falsified through its other variables) but cannot
    // be asked.
    VarId best_var = provenance::kInvalidVar;
    double best_ratio = 0.0;
    for (VarId v : state.TermResidualVars(current_term_)) {
      if (!state.IsUseful(v)) continue;
      double ratio =
          state.cost(v) / std::max(1e-12, 1.0 - state.probability(v));
      if (best_var == provenance::kInvalidVar || ratio < best_ratio) {
        best_var = v;
        best_ratio = ratio;
      }
    }
    if (best_var != provenance::kInvalidVar) return best_var;
    // Every residual variable of the current term became unreachable since
    // it was selected; abandon it and re-rank from the heap.
    current_term_ = kNoTerm;
  }
}

void RoStrategy::OnAnswer(const EvaluationState& state, VarId x, bool value) {
  if (!value || !heap_initialized_) return;
  // A True answer shrinks every live term containing x, raising its score;
  // push fresh entries so the heap's maximum stays current.
  for (size_t tid : state.TermsContaining(x)) {
    if (state.TermLive(tid)) heap_.push(ScoreTerm(state, tid));
  }
}

// --- Q-value (Algorithms 2-3) -----------------------------------------------------

VarId QValueStrategy::ChooseNext(EvaluationState& state) {
  CONSENTDB_CHECK(state.cnfs_attached(),
                  "Q-value requires CNFs: call AttachCnfs first");
  VarId best = state.QValueArgMax();
  CONSENTDB_CHECK(best != provenance::kInvalidVar,
                  "no useful variable but formulas undecided");
  return best;
}

// --- General (Algorithm 4) --------------------------------------------------------

VarId GeneralStrategy::Alg0Choose(const EvaluationState& state) {
  // Greedy 0-certificate cover on the disjunction of all live DNFs: pick the
  // variable with the largest expected number of falsified terms per unit
  // of cost.
  VarId best = provenance::kInvalidVar;
  double best_score = -1.0;
  for (VarId x : state.AllVars()) {
    if (!state.IsUseful(x)) continue;
    double score = (1.0 - state.probability(x)) *
                   static_cast<double>(state.LiveTermCount(x)) /
                   state.cost(x);
    if (best == provenance::kInvalidVar || score > best_score) {
      best = x;
      best_score = score;
    }
  }
  CONSENTDB_CHECK(best != provenance::kInvalidVar,
                  "no useful variable but formulas undecided");
  return best;
}

VarId GeneralStrategy::ChooseNext(EvaluationState& state) {
  if (cost1_ >= cost0_) {
    last_was_alg0_ = true;
    return alg0_argmax_.Choose(state, [&state](VarId x) {
      return (1.0 - state.probability(x)) *
             static_cast<double>(state.LiveTermCount(x)) / state.cost(x);
    });
  }
  last_was_alg0_ = false;
  return ro_.ChooseNext(state);
}

void GeneralStrategy::OnAnswer(const EvaluationState& state, VarId x,
                               bool value) {
  (last_was_alg0_ ? cost0_ : cost1_) += state.cost(x);
  ro_.OnAnswer(state, x, value);
}

// --- Hybrid (Sec. V-B) --------------------------------------------------------------

VarId HybridStrategy::ChooseNext(EvaluationState& state) {
  if (state.ResidualOverallReadOnce()) {
    last_mode_ = Mode::kRo;
    return ro_.ChooseNext(state);
  }
  if (!state.cnfs_attached() &&
      state.MaxLiveTermsPerFormula() <= attach_max_terms_) {
    if (!state.TryAttachResidualCnfs(cnf_limits_)) {
      // Retry only once the formulas have shrunk substantially.
      attach_max_terms_ = state.MaxLiveTermsPerFormula() / 2;
      attach_failed_ = true;
    }
  }
  if (state.cnfs_attached()) {
    last_mode_ = Mode::kQValue;
    return qvalue_.ChooseNext(state);
  }
  last_mode_ = Mode::kGeneral;
  return general_.ChooseNext(state);
}

void HybridStrategy::OnAnswer(const EvaluationState& state, VarId x,
                              bool value) {
  switch (last_mode_) {
    case Mode::kGeneral:
      general_.OnAnswer(state, x, value);
      break;
    case Mode::kQValue:
      qvalue_.OnAnswer(state, x, value);
      break;
    case Mode::kRo:
      ro_.OnAnswer(state, x, value);
      break;
  }
}

// --- Factories ---------------------------------------------------------------------

StrategyFactory MakeRandomFactory(uint64_t seed) {
  // Each created strategy gets an independent stream derived from `seed`.
  auto master = std::make_shared<Rng>(seed);
  return [master]() {
    return std::make_unique<RandomStrategy>(master->Fork());
  };
}

StrategyFactory MakeFreqFactory() {
  return []() { return std::make_unique<FreqStrategy>(); };
}

StrategyFactory MakeRoFactory() {
  return []() { return std::make_unique<RoStrategy>(); };
}

StrategyFactory MakeQValueFactory() {
  return []() { return std::make_unique<QValueStrategy>(); };
}

StrategyFactory MakeGeneralFactory() {
  return []() { return std::make_unique<GeneralStrategy>(); };
}

StrategyFactory MakeHybridFactory(provenance::NormalFormLimits limits,
                                  size_t attach_max_terms) {
  return [limits, attach_max_terms]() {
    return std::make_unique<HybridStrategy>(limits, attach_max_terms);
  };
}

}  // namespace consentdb::strategy
