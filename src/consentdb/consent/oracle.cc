#include "consentdb/consent/oracle.h"

#include <algorithm>

#include "consentdb/consent/wal.h"
#include "consentdb/util/check.h"

namespace consentdb::consent {

using provenance::Truth;

const char* ProbeFaultToString(ProbeFault fault) {
  switch (fault) {
    case ProbeFault::kNone:
      return "none";
    case ProbeFault::kTransient:
      return "transient";
    case ProbeFault::kUnavailable:
      return "unavailable";
  }
  return "?";
}

ValuationOracle::ValuationOracle(provenance::PartialValuation hidden)
    : hidden_(std::move(hidden)) {}

bool ValuationOracle::Probe(VarId x) {
  Truth t = hidden_.Get(x);
  CONSENTDB_CHECK(t != Truth::kUnknown,
                  "probed variable has no hidden value: x" + std::to_string(x));
  if (x >= seen_.size()) seen_.resize(x + 1, false);
  bool answer = t == Truth::kTrue;
  if (!seen_[x]) {
    seen_[x] = true;
    probed_.push_back(x);
    trace_.emplace_back(x, answer);
  }
  return answer;
}

ReplayOracle::ReplayOracle(std::vector<std::pair<VarId, bool>> trace)
    : trace_(std::move(trace)) {}

bool ReplayOracle::Probe(VarId x) {
  for (const auto& [var, answer] : trace_) {
    if (var == x) {
      ++asked_;
      return answer;
    }
  }
  CONSENTDB_CHECK(false, "replayed session never probed x" + std::to_string(x));
  return false;
}

bool CallbackOracle::Probe(VarId x) {
  for (const auto& [var, answer] : answers_) {
    if (var == x) return answer;
  }
  bool answer = callback_(x);
  answers_.emplace_back(x, answer);
  return answer;
}

bool ConsentLedger::ProbeVia(ProbeOracle& oracle, VarId x,
                             bool* answered_from_ledger) {
  MutexLock lock(mu_);
  auto it = answers_.find(x);
  if (it != answers_.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (answered_from_ledger != nullptr) *answered_from_ledger = true;
    return it->second;
  }
  if (answered_from_ledger != nullptr) *answered_from_ledger = false;
  // First touch: ask the peer while still holding the lock — this both
  // serializes access to the (not necessarily thread-safe) oracle and
  // guarantees no variable is ever sent to a peer twice.
  bool answer = oracle.Probe(x);
  oracle_probes_.fetch_add(1, std::memory_order_relaxed);
  answers_.emplace(x, answer);
  JournalLocked(x, answer);
  return answer;
}

ProbeAttempt ConsentLedger::TryProbeVia(ProbeOracle& oracle, VarId x,
                                        bool* answered_from_ledger) {
  MutexLock lock(mu_);
  auto it = answers_.find(x);
  if (it != answers_.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (answered_from_ledger != nullptr) *answered_from_ledger = true;
    return ProbeAttempt::Answered(it->second);
  }
  if (answered_from_ledger != nullptr) *answered_from_ledger = false;
  // One attempt under the lock (same serialization argument as ProbeVia).
  // Success is recorded before the lock drops, so concurrent retries of the
  // same variable either hit the recorded answer or are the recording
  // attempt — two recorded answers for one variable are impossible.
  ProbeAttempt attempt = oracle.TryProbe(x);
  if (attempt.ok()) {
    oracle_probes_.fetch_add(1, std::memory_order_relaxed);
    answers_.emplace(x, attempt.answer);
    JournalLocked(x, attempt.answer);
  } else {
    faulted_probes_.fetch_add(1, std::memory_order_relaxed);
  }
  return attempt;
}

std::optional<bool> ConsentLedger::Lookup(VarId x) const {
  MutexLock lock(mu_);
  auto it = answers_.find(x);
  if (it == answers_.end()) return std::nullopt;
  return it->second;
}

size_t ConsentLedger::size() const {
  MutexLock lock(mu_);
  return answers_.size();
}

void ConsentLedger::AttachJournal(WalWriter* wal,
                                  uint64_t compact_every_records) {
  MutexLock lock(mu_);
  wal_ = wal;
  compact_every_ = compact_every_records;
  journaled_since_compact_ = 0;
}

Status ConsentLedger::journal_error() const {
  MutexLock lock(mu_);
  return journal_error_;
}

void ConsentLedger::JournalLocked(VarId x, bool answer) {
  if (wal_ == nullptr) return;
  Status s = wal_->AppendAnswer(x, answer);
  if (!s.ok()) {
    // The probe itself stays valid; latch the first failure for the owner.
    if (journal_error_.ok()) journal_error_ = std::move(s);
    return;
  }
  if (compact_every_ > 0 && ++journaled_since_compact_ >= compact_every_) {
    journaled_since_compact_ = 0;
    // det:order-insensitive sorted by VarId before CompactTo serializes it
    std::vector<std::pair<VarId, bool>> answers(answers_.begin(),
                                                answers_.end());
    std::sort(answers.begin(), answers.end());
    Status c = wal_->CompactTo(answers);
    if (!c.ok() && journal_error_.ok()) journal_error_ = std::move(c);
  }
}

Status ConsentLedger::RestoreAnswer(VarId x, bool answer) {
  MutexLock lock(mu_);
  auto [it, inserted] = answers_.emplace(x, answer);
  if (!inserted) {
    if (it->second != answer) {
      return Status::Internal("conflicting journaled answers for x" +
                              std::to_string(x));
    }
    return Status::OK();  // idempotent replay (snapshot + wal overlap)
  }
  restored_answers_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

std::vector<std::pair<VarId, bool>> ConsentLedger::Answers() const {
  MutexLock lock(mu_);
  // det:order-insensitive sorted by VarId before any caller serializes it
  std::vector<std::pair<VarId, bool>> answers(answers_.begin(),
                                              answers_.end());
  std::sort(answers.begin(), answers.end());
  return answers;
}

void ConsentLedger::Clear() {
  // Deliberately leaves any attached journal and its file untouched: Clear
  // is a cache reset for tests/benches, not a consent revocation. Durable
  // deployments should recover or compact rather than Clear.
  MutexLock lock(mu_);
  answers_.clear();
  hits_.store(0, std::memory_order_relaxed);
  oracle_probes_.store(0, std::memory_order_relaxed);
  faulted_probes_.store(0, std::memory_order_relaxed);
  restored_answers_.store(0, std::memory_order_relaxed);
}

}  // namespace consentdb::consent
