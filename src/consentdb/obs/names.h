// Canonical metric and span names.
//
// Every instrument name in ConsentDB follows the dotted lower-case
// convention `[a-z0-9_.]+` (subsystem first: "session.probes",
// "wal.fsync", "cache.plan.hit"). The consentdb-lint `metric-name` rule
// rejects any name literal at an obs call site that breaks the convention —
// this header is the single file exempt from that rule, so any future name
// that genuinely needs to bend the convention must be declared here, next
// to the documentation explaining why.
//
// Span names additionally must be **static-duration** strings: SpanRecord
// and the flight-recorder ring store the `const char*` itself (never a
// copy), so a dynamically built name would dangle. Using these constants
// satisfies that contract by construction.

#ifndef CONSENTDB_OBS_NAMES_H_
#define CONSENTDB_OBS_NAMES_H_

namespace consentdb::obs::names {

// --- Span names (causal timeline nodes, outermost first) --------------------

// One full consent session: Decide()/RunPrepared() entry to SessionReport.
inline constexpr char kSpanSessionRun[] = "session.run";
// Strategy construction + selection inside FinishSession.
inline constexpr char kSpanSessionSelect[] = "session.select";
// One probe decision: simplify -> rescore -> pick variable -> ask owner.
inline constexpr char kSpanSessionProbe[] = "session.probe";
// A RetryPolicy backoff wait between probe attempts.
inline constexpr char kSpanRetryWait[] = "retry.wait";
// SessionEngine units: plan resolution, provenance preparation, one
// engine-run session.
inline constexpr char kSpanEnginePlan[] = "engine.plan";
inline constexpr char kSpanEnginePrepare[] = "engine.prepare";
inline constexpr char kSpanEngineSession[] = "engine.session";
// WAL I/O: one record append, one fsync (group commit), one compaction.
inline constexpr char kSpanWalAppend[] = "wal.append";
inline constexpr char kSpanWalFsync[] = "wal.fsync";
inline constexpr char kSpanWalCompact[] = "wal.compact";
// One ProbeServer poll iteration that did work (accepts, frames, timers).
inline constexpr char kSpanServerPoll[] = "server.poll";

// --- Flight-recorder instant events -----------------------------------------

inline constexpr char kEventCrashInjected[] = "engine.crash_injected";
inline constexpr char kEventCheckpoint[] = "engine.checkpoint";

// --- Span argument keys ------------------------------------------------------

inline constexpr char kArgProbes[] = "probes";
inline constexpr char kArgBytes[] = "bytes";
inline constexpr char kArgRecords[] = "records";
inline constexpr char kArgAttempt[] = "attempt";
inline constexpr char kArgVariable[] = "variable";

}  // namespace consentdb::obs::names

#endif  // CONSENTDB_OBS_NAMES_H_
