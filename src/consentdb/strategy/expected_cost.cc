#include "consentdb/strategy/expected_cost.h"

#include <cmath>
#include <set>

#include "consentdb/util/check.h"

namespace consentdb::strategy {

CostEstimate EstimateExpectedCost(const std::vector<Dnf>& dnfs,
                                  const std::vector<double>& pi,
                                  const StrategyFactory& factory,
                                  const EstimateOptions& options) {
  CONSENTDB_CHECK(options.reps > 0, "need at least one repetition");
  Rng rng(options.seed);
  double sum = 0.0;
  double sum_sq = 0.0;
  double min = -1.0;
  double max = -1.0;
  for (size_t rep = 0; rep < options.reps; ++rep) {
    // Draw the hidden valuation.
    PartialValuation hidden(pi.size());
    for (size_t i = 0; i < pi.size(); ++i) {
      hidden.Set(static_cast<VarId>(i), rng.Bernoulli(pi[i]));
    }
    EvaluationState state(dnfs, pi);
    if (options.precomputed_cnfs != nullptr) {
      state.AttachPrecomputedCnfs(*options.precomputed_cnfs);
    } else if (options.attach_cnfs) {
      Status st = state.AttachCnfs(options.cnf_limits);
      CONSENTDB_CHECK(st.ok(), st.ToString());
    }
    std::unique_ptr<ProbeStrategy> strategy = factory();
    RunInstrumentation instr;
    instr.metrics = options.metrics;
    ProbeRun run = RunToCompletion(state, *strategy, hidden, instr);
    double probes = static_cast<double>(run.num_probes);
    sum += probes;
    sum_sq += probes * probes;
    min = (min < 0.0 || probes < min) ? probes : min;
    max = (max < 0.0 || probes > max) ? probes : max;
  }
  CostEstimate est;
  est.reps = options.reps;
  est.mean = sum / static_cast<double>(options.reps);
  double variance =
      sum_sq / static_cast<double>(options.reps) - est.mean * est.mean;
  est.stddev = variance > 0.0 ? std::sqrt(variance) : 0.0;
  est.min = min;
  est.max = max;
  return est;
}

double ExactExpectedCost(const std::vector<Dnf>& dnfs,
                         const std::vector<double>& pi,
                         const StrategyFactory& factory, bool attach_cnfs) {
  std::set<VarId> var_set;
  for (const Dnf& dnf : dnfs) {
    VarSet vars = dnf.Vars();
    var_set.insert(vars.begin(), vars.end());
  }
  std::vector<VarId> vars(var_set.begin(), var_set.end());
  CONSENTDB_CHECK(vars.size() <= 20, "ExactExpectedCost limited to 20 vars");
  double expected = 0.0;
  size_t combos = static_cast<size_t>(1) << vars.size();
  for (size_t mask = 0; mask < combos; ++mask) {
    PartialValuation hidden(pi.size());
    double prob = 1.0;
    for (size_t i = 0; i < vars.size(); ++i) {
      bool value = (mask >> i) & 1;
      hidden.Set(vars[i], value);
      prob *= value ? pi[vars[i]] : 1.0 - pi[vars[i]];
    }
    if (prob == 0.0) continue;
    EvaluationState state(dnfs, pi);
    if (attach_cnfs) {
      Status st = state.AttachCnfs();
      CONSENTDB_CHECK(st.ok(), st.ToString());
    }
    std::unique_ptr<ProbeStrategy> strategy = factory();
    ProbeRun run = RunToCompletion(state, *strategy, hidden);
    expected += prob * static_cast<double>(run.num_probes);
  }
  return expected;
}

}  // namespace consentdb::strategy
