// Three-valued (Kleene) truth values and partial valuations over consent
// variables (Def. IV.3 of the paper).

#ifndef CONSENTDB_PROVENANCE_TRUTH_H_
#define CONSENTDB_PROVENANCE_TRUTH_H_

#include <cstdint>
#include <vector>

#include "consentdb/util/check.h"

namespace consentdb::provenance {

// Dense identifier of a consent variable. Ids are allocated consecutively by
// consent::VariablePool starting from 0.
using VarId = uint32_t;
inline constexpr VarId kInvalidVar = static_cast<VarId>(-1);

// Kleene three-valued logic: Unknown models a consent value not yet probed.
enum class Truth : uint8_t {
  kFalse = 0,
  kTrue = 1,
  kUnknown = 2,
};

inline const char* TruthToString(Truth t) {
  switch (t) {
    case Truth::kFalse:
      return "False";
    case Truth::kTrue:
      return "True";
    case Truth::kUnknown:
      return "Unknown";
  }
  return "?";
}

inline Truth TruthOf(bool b) { return b ? Truth::kTrue : Truth::kFalse; }

// Kleene conjunction: False dominates, then Unknown.
inline Truth KleeneAnd(Truth a, Truth b) {
  if (a == Truth::kFalse || b == Truth::kFalse) return Truth::kFalse;
  if (a == Truth::kUnknown || b == Truth::kUnknown) return Truth::kUnknown;
  return Truth::kTrue;
}

// Kleene disjunction: True dominates, then Unknown.
inline Truth KleeneOr(Truth a, Truth b) {
  if (a == Truth::kTrue || b == Truth::kTrue) return Truth::kTrue;
  if (a == Truth::kUnknown || b == Truth::kUnknown) return Truth::kUnknown;
  return Truth::kFalse;
}

// A (partial) assignment of truth values to variable ids [0, size).
// Variables outside the constructed range read as Unknown.
class PartialValuation {
 public:
  PartialValuation() = default;
  explicit PartialValuation(size_t num_vars)
      : values_(num_vars, Truth::kUnknown) {}

  // A total valuation from booleans.
  static PartialValuation FromBools(const std::vector<bool>& bits) {
    PartialValuation v(bits.size());
    for (size_t i = 0; i < bits.size(); ++i) {
      v.values_[i] = TruthOf(bits[i]);
    }
    return v;
  }

  size_t size() const { return values_.size(); }

  Truth Get(VarId x) const {
    return x < values_.size() ? values_[x] : Truth::kUnknown;
  }

  void Set(VarId x, Truth t) {
    if (x >= values_.size()) values_.resize(x + 1, Truth::kUnknown);
    values_[x] = t;
  }
  void Set(VarId x, bool b) { Set(x, TruthOf(b)); }

  bool IsKnown(VarId x) const { return Get(x) != Truth::kUnknown; }

  size_t CountKnown() const {
    size_t n = 0;
    for (Truth t : values_) {
      if (t != Truth::kUnknown) ++n;
    }
    return n;
  }

  friend bool operator==(const PartialValuation& a, const PartialValuation& b) {
    // Compare with implicit Unknown padding so sizes need not match.
    size_t n = std::max(a.values_.size(), b.values_.size());
    for (size_t i = 0; i < n; ++i) {
      if (a.Get(static_cast<VarId>(i)) != b.Get(static_cast<VarId>(i))) {
        return false;
      }
    }
    return true;
  }

 private:
  std::vector<Truth> values_;
};

}  // namespace consentdb::provenance

#endif  // CONSENTDB_PROVENANCE_TRUTH_H_
