file(REMOVE_RECURSE
  "CMakeFiles/targeted_test.dir/targeted_test.cc.o"
  "CMakeFiles/targeted_test.dir/targeted_test.cc.o.d"
  "targeted_test"
  "targeted_test.pdb"
  "targeted_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/targeted_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
