#include <gtest/gtest.h>

#include "consentdb/relational/csv.h"
#include "consentdb/util/rng.h"

namespace consentdb::relational {
namespace {

Schema TestSchema() {
  return Schema({Column{"id", ValueType::kInt64},
                 Column{"name", ValueType::kString},
                 Column{"score", ValueType::kDouble},
                 Column{"active", ValueType::kBool}});
}

// --- Record splitting -----------------------------------------------------------

TEST(CsvRecordTest, PlainFields) {
  EXPECT_EQ(*SplitCsvRecord("a,b,c", nullptr),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(CsvRecordTest, EmptyFields) {
  EXPECT_EQ(*SplitCsvRecord(",,", nullptr),
            (std::vector<std::string>{"", "", ""}));
}

TEST(CsvRecordTest, QuotedFieldsWithCommasAndQuotes) {
  EXPECT_EQ(*SplitCsvRecord(R"("a,b","say ""hi""",plain)", nullptr),
            (std::vector<std::string>{"a,b", "say \"hi\"", "plain"}));
}

TEST(CsvRecordTest, QuotedFlagDistinguishesEmpty) {
  std::vector<bool> quoted;
  ASSERT_TRUE(SplitCsvRecord(R"(,"",x)", &quoted).ok());
  std::vector<std::string> fields = *SplitCsvRecord(R"(,"",x)", &quoted);
  EXPECT_EQ(fields, (std::vector<std::string>{"", "", "x"}));
  EXPECT_EQ(quoted, (std::vector<bool>{false, true, false}));
}

TEST(CsvRecordTest, ErrorsOnMalformedQuotes) {
  EXPECT_FALSE(SplitCsvRecord(R"(ab"cd)", nullptr).ok());
  EXPECT_FALSE(SplitCsvRecord(R"("unterminated)", nullptr).ok());
}

// --- Reading --------------------------------------------------------------------

TEST(CsvReadTest, ParsesTypedRows) {
  Relation r = *ReadRelationCsv(
      "id,name,score,active\n"
      "1,ada,9.5,true\n"
      "2,grace,8.25,false\n",
      TestSchema());
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r.tuple(0), (Tuple{Value(1), Value("ada"), Value(9.5), Value(true)}));
  EXPECT_EQ(r.tuple(1).at(3), Value(false));
}

TEST(CsvReadTest, BoolAcceptsNumericAndCase) {
  Relation r = *ReadRelationCsv(
      "id,name,score,active\n"
      "1,a,0.0,1\n"
      "2,b,0.0,TRUE\n"
      "3,c,0.0,0\n",
      TestSchema());
  EXPECT_EQ(r.tuple(0).at(3), Value(true));
  EXPECT_EQ(r.tuple(1).at(3), Value(true));
  EXPECT_EQ(r.tuple(2).at(3), Value(false));
}

TEST(CsvReadTest, EmptyUnquotedIsNullQuotedIsEmptyString) {
  Relation r = *ReadRelationCsv(
      "id,name,score,active\n"
      "1,,1.0,true\n"
      "2,\"\",1.0,true\n",
      TestSchema());
  EXPECT_TRUE(r.tuple(0).at(1).is_null());
  EXPECT_EQ(r.tuple(1).at(1), Value(""));
}

TEST(CsvReadTest, DeduplicatesRows) {
  Relation r = *ReadRelationCsv(
      "id,name,score,active\n"
      "1,a,1.0,true\n"
      "1,a,1.0,true\n",
      TestSchema());
  EXPECT_EQ(r.size(), 1u);
}

TEST(CsvReadTest, HandlesCrLf) {
  Relation r = *ReadRelationCsv(
      "id,name,score,active\r\n1,a,1.0,true\r\n", TestSchema());
  EXPECT_EQ(r.size(), 1u);
}

TEST(CsvReadTest, RejectsBadHeader) {
  EXPECT_FALSE(ReadRelationCsv("id,nome,score,active\n", TestSchema()).ok());
  EXPECT_FALSE(ReadRelationCsv("id,name\n", TestSchema()).ok());
  EXPECT_FALSE(ReadRelationCsv("", TestSchema()).ok());
}

TEST(CsvReadTest, RejectsBadValues) {
  Status s = ReadRelationCsv(
                 "id,name,score,active\nxyz,a,1.0,true\n", TestSchema())
                 .status();
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("line 2"), std::string::npos);
  EXPECT_FALSE(ReadRelationCsv(
                   "id,name,score,active\n1,a,notanumber,true\n", TestSchema())
                   .ok());
  EXPECT_FALSE(ReadRelationCsv(
                   "id,name,score,active\n1,a,1.0,maybe\n", TestSchema())
                   .ok());
  EXPECT_FALSE(ReadRelationCsv("id,name,score,active\n1,a,1.0\n",
                               TestSchema())
                   .ok());
}

TEST(CsvReadTest, IntegerRejectsTrailingGarbage) {
  EXPECT_FALSE(ReadRelationCsv(
                   "id,name,score,active\n12abc,a,1.0,true\n", TestSchema())
                   .ok());
}

// --- Round trip -----------------------------------------------------------------

TEST(CsvRoundTripTest, WriteThenReadIsIdentity) {
  Relation original(TestSchema());
  original.InsertOrDie(Tuple{Value(1), Value("plain"), Value(1.5), Value(true)});
  original.InsertOrDie(
      Tuple{Value(2), Value("with,comma"), Value(-2.25), Value(false)});
  original.InsertOrDie(
      Tuple{Value(3), Value("say \"hi\""), Value(0.0), Value(true)});
  original.InsertOrDie(Tuple{Value(4), Value::Null(), Value(3.0), Value(false)});
  original.InsertOrDie(Tuple{Value(5), Value(""), Value(4.0), Value(true)});

  std::string csv = WriteRelationCsv(original);
  Relation reread = *ReadRelationCsv(csv, TestSchema());
  EXPECT_EQ(original, reread);
}

TEST(CsvRoundTripTest, RandomizedRoundTrip) {
  Rng rng(31);
  const char* samples[] = {"", "x", "a,b", "\"q\"", "line", "sp ace", "?!"};
  for (int trial = 0; trial < 20; ++trial) {
    Relation original(TestSchema());
    for (int row = 0; row < 10; ++row) {
      original.InsertOrDie(Tuple{
          Value(rng.UniformInt(-100, 100)),
          rng.Bernoulli(0.15) ? Value::Null() : Value(std::string(rng.Choice(
              std::vector<std::string>(samples, samples + 7)))),
          Value(static_cast<double>(rng.UniformInt(-8, 8)) / 2.0),
          Value(rng.Bernoulli(0.5))});
    }
    Relation reread = *ReadRelationCsv(WriteRelationCsv(original), TestSchema());
    EXPECT_EQ(original, reread) << "trial " << trial;
  }
}

}  // namespace
}  // namespace consentdb::relational
