// CONSENTDB_CHECK: precondition / invariant assertions that stay on in all
// build types. A failed check is a programmer error, not a recoverable
// condition; it aborts with a diagnostic.

#ifndef CONSENTDB_UTIL_CHECK_H_
#define CONSENTDB_UTIL_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <string>

namespace consentdb::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr,
                                     const std::string& message) {
  // The process is about to abort; stderr is the only channel left.
  std::cerr << "CONSENTDB_CHECK failed at "   // lint:allow raw-cout
            << file << ":" << line << ": " << expr;
  if (!message.empty()) std::cerr << " — " << message;  // lint:allow raw-cout
  std::cerr << std::endl;                      // lint:allow raw-cout
  std::abort();
}

}  // namespace consentdb::internal

#define CONSENTDB_CHECK(cond, ...)                                     \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::consentdb::internal::CheckFailed(__FILE__, __LINE__, #cond,    \
                                         ::std::string{__VA_ARGS__}); \
    }                                                                  \
  } while (false)

// The sanctioned way to discard a [[nodiscard]] Status/Result. Use it only
// where failure is genuinely uninteresting AND the call is wanted for its
// side effect — e.g. best-effort cleanup, or a bench warming a cache where
// the subsequent measured run re-checks the same Status. Every use should
// read as a deliberate decision; "the compiler complained" is not one.
#define CONSENTDB_IGNORE_STATUS(expr) static_cast<void>(expr)

#endif  // CONSENTDB_UTIL_CHECK_H_
