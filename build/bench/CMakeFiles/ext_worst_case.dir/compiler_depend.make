# Empty compiler generated dependencies file for ext_worst_case.
# This may be replaced when dependencies are built.
