// Wire-layer tests: little-endian field primitives, frame round trips under
// arbitrary chunking, corruption detection, and the protocol message codec
// (every MsgType round-trips; truncated and overlong bodies are rejected).

#include <string>
#include <variant>
#include <vector>

#include "consentdb/net/frame.h"
#include "consentdb/net/protocol.h"
#include "consentdb/util/rng.h"
#include "gtest/gtest.h"

namespace consentdb::net {
namespace {

TEST(FramePrimitives, LittleEndianRoundTrip) {
  std::string buf;
  PutU8(&buf, 0xAB);
  PutU32(&buf, 0x01020304u);
  PutU64(&buf, 0x1122334455667788ull);
  PutString(&buf, "hello");
  PutString(&buf, "");

  // Fixed byte layout, independent of host endianness.
  ASSERT_EQ(buf.size(), 1 + 4 + 8 + (4 + 5) + 4);
  EXPECT_EQ(static_cast<uint8_t>(buf[1]), 0x04);  // u32 low byte first
  EXPECT_EQ(static_cast<uint8_t>(buf[4]), 0x01);

  size_t pos = 0;
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  std::string s1, s2;
  ASSERT_TRUE(GetU8(buf, &pos, &u8));
  ASSERT_TRUE(GetU32(buf, &pos, &u32));
  ASSERT_TRUE(GetU64(buf, &pos, &u64));
  ASSERT_TRUE(GetString(buf, &pos, &s1));
  ASSERT_TRUE(GetString(buf, &pos, &s2));
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u32, 0x01020304u);
  EXPECT_EQ(u64, 0x1122334455667788ull);
  EXPECT_EQ(s1, "hello");
  EXPECT_EQ(s2, "");
  EXPECT_EQ(pos, buf.size());

  // Underrun: reading past the end fails without advancing into garbage.
  uint64_t extra = 0;
  EXPECT_FALSE(GetU64(buf, &pos, &extra));
}

TEST(FrameParser, RoundTripsUnderArbitraryChunking) {
  std::string stream;
  std::vector<std::pair<uint8_t, std::string>> frames = {
      {1, "alpha"}, {2, ""}, {9, std::string(1000, 'x')}, {3, "tail"}};
  for (const auto& [type, body] : frames) stream += EncodeFrame(type, body);

  // Deliver the same stream in every chunk size from 1 byte to whole-stream;
  // the parser must produce identical frames regardless of fragmentation.
  for (size_t chunk : {size_t{1}, size_t{3}, size_t{7}, stream.size()}) {
    FrameParser parser;
    std::vector<std::pair<uint8_t, std::string>> got;
    for (size_t off = 0; off < stream.size(); off += chunk) {
      parser.Feed(std::string_view(stream).substr(off, chunk));
      Frame f;
      while (parser.Next(&f) == FrameParser::Event::kFrame) {
        got.emplace_back(f.type, f.body);
      }
    }
    EXPECT_EQ(got, frames) << "chunk size " << chunk;
    EXPECT_EQ(parser.buffered_bytes(), 0u);
    EXPECT_FALSE(parser.corrupt());
  }
}

TEST(FrameParser, IncompleteTailIsNotAFrame) {
  std::string stream = EncodeFrame(5, "partial");
  FrameParser parser;
  parser.Feed(std::string_view(stream).substr(0, stream.size() - 1));
  Frame f;
  EXPECT_EQ(parser.Next(&f), FrameParser::Event::kNone);
  parser.Feed(std::string_view(stream).substr(stream.size() - 1));
  EXPECT_EQ(parser.Next(&f), FrameParser::Event::kFrame);
  EXPECT_EQ(f.body, "partial");
}

TEST(FrameParser, BitFlipIsCorruptAndSticky) {
  std::string stream = EncodeFrame(1, "payload") + EncodeFrame(2, "after");
  stream[10] = static_cast<char>(stream[10] ^ 0x40);  // flip inside payload 1
  FrameParser parser;
  parser.Feed(stream);
  Frame f;
  EXPECT_EQ(parser.Next(&f), FrameParser::Event::kCorrupt);
  // Sticky: the intact second frame is unreachable — one bad frame means
  // the stream has lost sync for good.
  EXPECT_EQ(parser.Next(&f), FrameParser::Event::kCorrupt);
  EXPECT_TRUE(parser.corrupt());
}

TEST(FrameParser, OversizeLengthPrefixIsCorrupt) {
  std::string stream;
  PutU32(&stream, kMaxFramePayload + 1);
  PutU32(&stream, 0);
  FrameParser parser;
  parser.Feed(stream);
  Frame f;
  EXPECT_EQ(parser.Next(&f), FrameParser::Event::kCorrupt);
}

TEST(FrameParser, ZeroLengthPayloadIsCorrupt) {
  // A payload always carries at least the type byte.
  std::string stream;
  PutU32(&stream, 0);
  PutU32(&stream, 0);
  FrameParser parser;
  parser.Feed(stream);
  Frame f;
  EXPECT_EQ(parser.Next(&f), FrameParser::Event::kCorrupt);
}

TEST(Protocol, EveryMessageTypeRoundTrips) {
  std::vector<Message> messages = {
      OpenSession{42, "tenant-a", "SELECT x FROM T", 1, "1,'ana'", 5'000'000},
      ProbeRequest{42, 7, "x7", "ana"},
      ProbeAnswer{42, 7, 1},
      ProbeFaultMsg{42, 7, 2},
      SessionReportMsg{42, "{\"probes\":3}"},
      ErrorMsg{42, 9, "server is at capacity", 1'000'000'000},
      AckMsg{42},
      PingMsg{0xDEAD},
      PongMsg{0xDEAD},
  };
  for (const Message& msg : messages) {
    std::string wire = EncodeMessage(msg);
    FrameParser parser;
    parser.Feed(wire);
    Frame f;
    ASSERT_EQ(parser.Next(&f), FrameParser::Event::kFrame);
    Result<Message> decoded = DecodeMessage(f.type, f.body);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    ASSERT_EQ(decoded->index(), msg.index());
  }

  // Spot-check field fidelity on the richest message.
  std::string wire = EncodeMessage(messages[0]);
  FrameParser parser;
  parser.Feed(wire);
  Frame f;
  ASSERT_EQ(parser.Next(&f), FrameParser::Event::kFrame);
  Result<Message> decoded = DecodeMessage(f.type, f.body);
  ASSERT_TRUE(decoded.ok());
  const auto& open = std::get<OpenSession>(*decoded);
  EXPECT_EQ(open.session_id, 42u);
  EXPECT_EQ(open.tenant, "tenant-a");
  EXPECT_EQ(open.sql, "SELECT x FROM T");
  EXPECT_EQ(open.has_single, 1);
  EXPECT_EQ(open.single_csv, "1,'ana'");
  EXPECT_EQ(open.deadline_nanos, 5'000'000);
}

TEST(Protocol, EncodingIsDeterministic) {
  Message msg = OpenSession{7, "t", "SELECT a FROM B", 0, "", 0};
  EXPECT_EQ(EncodeMessage(msg), EncodeMessage(msg));
}

TEST(Protocol, TruncatedBodyRejected) {
  std::string wire = EncodeMessage(ProbeRequest{42, 7, "x7", "ana"});
  FrameParser parser;
  parser.Feed(wire);
  Frame f;
  ASSERT_EQ(parser.Next(&f), FrameParser::Event::kFrame);
  for (size_t cut = 0; cut < f.body.size(); ++cut) {
    Result<Message> decoded =
        DecodeMessage(f.type, std::string_view(f.body).substr(0, cut));
    EXPECT_FALSE(decoded.ok()) << "cut at " << cut;
  }
}

TEST(Protocol, TrailingBytesRejected) {
  std::string wire = EncodeMessage(AckMsg{42});
  FrameParser parser;
  parser.Feed(wire);
  Frame f;
  ASSERT_EQ(parser.Next(&f), FrameParser::Event::kFrame);
  Result<Message> decoded = DecodeMessage(f.type, f.body + "junk");
  EXPECT_FALSE(decoded.ok());
}

TEST(Protocol, UnknownTypeRejected) {
  Result<Message> decoded = DecodeMessage(250, "");
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsInvalidArgument());
}

TEST(Protocol, StatusCodeWireMappingRoundTrips) {
  const StatusCode codes[] = {
      StatusCode::kInvalidArgument,  StatusCode::kNotFound,
      StatusCode::kAlreadyExists,    StatusCode::kOutOfRange,
      StatusCode::kFailedPrecondition, StatusCode::kResourceExhausted,
      StatusCode::kUnimplemented,    StatusCode::kInternal,
      StatusCode::kUnavailable,      StatusCode::kDeadlineExceeded,
  };
  for (StatusCode code : codes) {
    Status s = StatusFromWire(WireStatusCode(code), "msg");
    EXPECT_EQ(s.code(), code);
    EXPECT_EQ(s.message(), "msg");
  }
  // Out-of-range wire byte (a newer peer) degrades to kInternal, never OK.
  EXPECT_EQ(StatusFromWire(200, "m").code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace consentdb::net
