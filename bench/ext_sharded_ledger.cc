// Extension experiment: recorded-answer throughput of the sharded consent
// ledger (consent/sharded_ledger.h).
//
// Part 1 hammers the record path — probe, map insert, WAL append + fsync —
// from several threads at shard counts 1/2/4/8, every answer journaled to
// a shard WAL set on the in-memory CrashingEnv (deterministic I/O, no real
// disk). The single-shard row runs the classic plain ConsentLedger, i.e.
// exactly the engine's ledger_shards=1 path, so the speedup column reads
// "what did sharding buy over the status quo". In full runs
// (CONSENTDB_BENCH_SCALE >= 1) the bench asserts sharding never *loses*
// throughput — the guard against a serialization bug such as the oracle
// mutex accidentally wrapping the per-shard fsync; quick CI runs report
// the ratio informationally (a 0.25-scale run on a loaded 1-core runner
// measures scheduler noise, not the ledger).
//
// Part 2 measures the replica side (consent/replica.h): cold catch-up
// records/sec of a LedgerReplica over a populated 4-shard set, then steady
// incremental tailing, asserting the incremental path never falls back to
// a full resync.

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "consentdb/consent/oracle.h"
#include "consentdb/consent/replica.h"
#include "consentdb/consent/sharded_ledger.h"
#include "consentdb/consent/wal.h"
#include "consentdb/util/io.h"

using namespace consentdb;

namespace {

// Answers are a pure function of the id: every thread, shard count and
// restart sees one consistent world.
class PureOracle : public consent::ProbeOracle {
 public:
  bool Probe(provenance::VarId x) override { return x % 3 == 0; }
  size_t probe_count() const override { return 0; }
};

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

double Rps(size_t records, double ms) {
  return ms > 0 ? static_cast<double>(records) / (ms / 1000.0) : 0.0;
}

}  // namespace

int main() {
  bench::BenchReport report("ext_sharded_ledger");
  const size_t records = bench::Scaled(40'000);
  const size_t num_threads = 4;
  std::cout << "=== Extension: sharded ledger — recorded-answer throughput "
               "(records="
            << records << ", threads=" << num_threads << ") ===\n\n";

  bench::Table table(
      {"shards", "threads", "records", "ms", "records/s", "speedup"});
  table.PrintHeader();

  double single_shard_rps = 0.0;
  double last_speedup = 1.0;
  for (size_t shards : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    CrashingEnv env;
    Result<consent::ShardWalSet> set =
        consent::OpenShardWalSet(&env, "ledger", shards, /*generation=*/1);
    CONSENTDB_CHECK(set.ok(), set.status().ToString());

    // shards == 1 is the pre-sharding engine: one plain ledger, one WAL.
    consent::ConsentLedger plain;
    consent::ShardedConsentLedger sharded(shards);
    consent::ConsentLedger& ledger =
        shards == 1 ? plain : static_cast<consent::ConsentLedger&>(sharded);
    if (shards == 1) {
      plain.AttachJournal(set.value().pointers()[0]);
    } else {
      sharded.AttachShardJournals(set.value().pointers());
    }

    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> workers;
    workers.reserve(num_threads);
    for (size_t t = 0; t < num_threads; ++t) {
      workers.emplace_back([&ledger, t, records]() {
        PureOracle oracle;
        const size_t lo = t * records / num_threads;
        const size_t hi = (t + 1) * records / num_threads;
        for (size_t i = lo; i < hi; ++i) {
          ledger.ProbeVia(oracle, static_cast<provenance::VarId>(i));
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
    const double ms = MsSince(start);

    CONSENTDB_CHECK(ledger.size() == records, "lost a recorded answer");
    CONSENTDB_CHECK(ledger.journal_error().ok(),
                    ledger.journal_error().ToString());
    const double rps = Rps(records, ms);
    if (shards == 1) single_shard_rps = rps;
    last_speedup = single_shard_rps > 0 ? rps / single_shard_rps : 1.0;
    std::ostringstream speedup;
    speedup << std::fixed << std::setprecision(2) << last_speedup << "x";
    table.PrintRow(std::to_string(shards),
                   {std::to_string(num_threads), std::to_string(records),
                    bench::FormatMean(ms), bench::FormatMean(rps),
                    speedup.str()});
    report.AddResult("record/shards" + std::to_string(shards) + "/wall_ms",
                     ms, "ms");
    report.AddResult(
        "record/shards" + std::to_string(shards) + "/throughput_rps", rps,
        "records/s");
  }
  if (bench::ScaleFromEnv() >= 1.0) {
    // The floor is deliberately forgiving: on a single hardware thread the
    // extra shard/oracle hand-off costs a few percent with nothing to win
    // back, and that is fine. What must never happen is sharding
    // *serializing* the record path (e.g. the oracle mutex wrapping the
    // per-shard fsync), which craters this ratio far below the floor.
    CONSENTDB_CHECK(last_speedup >= 0.6,
                    "sharding lost recorded-answer throughput: 8 shards ran "
                    "at under 0.6x of the single ledger");
  } else {
    std::cout << "\n(quick run: speedup " << last_speedup
              << "x at 8 shards reported informationally; the >=0.6x "
                 "scaling assert only arms at CONSENTDB_BENCH_SCALE >= 1)\n";
  }

  // --- Part 2: replica catch-up and incremental tailing ---------------------
  const size_t replicated = bench::Scaled(100'000);
  const size_t tail_batches = 20;
  const size_t tail_batch_records = bench::Scaled(100);
  std::cout << "\n=== Replica catch-up (4-shard set, " << replicated
            << " records) ===\n\n";

  bench::Table replica_table({"phase", "records", "ms", "records/s"});
  replica_table.PrintHeader();

  CrashingEnv env;
  Result<consent::ShardWalSet> set =
      consent::OpenShardWalSet(&env, "ledger", 4, /*generation=*/1);
  CONSENTDB_CHECK(set.ok(), set.status().ToString());
  for (size_t i = 0; i < replicated; ++i) {
    const auto x = static_cast<provenance::VarId>(i);
    const size_t shard = consent::ShardedConsentLedger::ShardOf(x, 4);
    CONSENTDB_CHECK(set.value().wals[shard]->AppendAnswer(x, i % 3 == 0).ok(),
                    "append failed");
  }
  for (consent::WalWriter* wal : set.value().pointers()) {
    CONSENTDB_CHECK(wal->Sync().ok(), "sync failed");
  }

  consent::LedgerReplica replica(&env, "ledger", 4);
  const auto catchup_start = std::chrono::steady_clock::now();
  Status caught_up = replica.Poll();
  const double catchup_ms = MsSince(catchup_start);
  CONSENTDB_CHECK(caught_up.ok(), caught_up.ToString());
  CONSENTDB_CHECK(replica.size() == replicated, "replica missed records");
  replica_table.PrintRow("cold catch-up",
                         {std::to_string(replicated),
                          bench::FormatMean(catchup_ms),
                          bench::FormatMean(Rps(replicated, catchup_ms))});
  report.AddResult("replica/catchup/wall_ms", catchup_ms, "ms");
  report.AddResult("replica/catchup/throughput_rps",
                   Rps(replicated, catchup_ms), "records/s");

  const auto tail_start = std::chrono::steady_clock::now();
  for (size_t batch = 0; batch < tail_batches; ++batch) {
    for (size_t i = 0; i < tail_batch_records; ++i) {
      const auto x = static_cast<provenance::VarId>(
          replicated + batch * tail_batch_records + i);
      const size_t shard = consent::ShardedConsentLedger::ShardOf(x, 4);
      CONSENTDB_CHECK(set.value().wals[shard]->AppendAnswer(x, true).ok(),
                      "append failed");
    }
    CONSENTDB_CHECK(replica.Poll().ok(), "incremental poll failed");
  }
  const double tail_ms = MsSince(tail_start);
  const size_t tail_records = tail_batches * tail_batch_records;
  CONSENTDB_CHECK(replica.size() == replicated + tail_records,
                  "replica missed tail records");
  // Steady tailing must ride the byte-offset incremental path, never the
  // full-resync fallback.
  for (size_t k = 0; k < 4; ++k) {
    CONSENTDB_CHECK(replica.follower(k).resyncs() == 0,
                    "incremental tailing fell back to a full resync");
  }
  replica_table.PrintRow("incremental tail",
                         {std::to_string(tail_records),
                          bench::FormatMean(tail_ms),
                          bench::FormatMean(Rps(tail_records, tail_ms))});
  report.AddResult("replica/tail/wall_ms", tail_ms, "ms");
  report.AddResult("replica/tail/throughput_rps", Rps(tail_records, tail_ms),
                   "records/s");

  bench::EmitMetricsSidecar("ext_sharded_ledger");
  report.Emit();
  return 0;
}
