file(REMOVE_RECURSE
  "CMakeFiles/skewed_test.dir/skewed_test.cc.o"
  "CMakeFiles/skewed_test.dir/skewed_test.cc.o.d"
  "skewed_test"
  "skewed_test.pdb"
  "skewed_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skewed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
