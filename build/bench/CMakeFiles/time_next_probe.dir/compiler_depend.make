# Empty compiler generated dependencies file for time_next_probe.
# This may be replaced when dependencies are built.
