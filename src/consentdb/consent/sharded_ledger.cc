#include "consentdb/consent/sharded_ledger.h"

#include <algorithm>

#include "consentdb/util/check.h"

namespace consentdb::consent {

// Wraps the caller's oracle so every shard funnels peer traffic through one
// global mutex. Stack-allocated per probe: holds probe_mu_ only for the
// duration of the backing call, strictly inside the shard's own mutex, so
// the only lock-order edge it adds is shard mu_ -> probe_mu_.
class ShardedConsentLedger::SerializedOracle : public ProbeOracle {
 public:
  SerializedOracle(Mutex& mu, ProbeOracle& backing)
      : mu_(mu), backing_(backing) {}

  bool Probe(VarId x) override {
    MutexLock lock(mu_);
    return backing_.Probe(x);
  }
  ProbeAttempt TryProbe(VarId x) override {
    MutexLock lock(mu_);
    return backing_.TryProbe(x);
  }
  size_t probe_count() const override {
    MutexLock lock(mu_);
    return backing_.probe_count();
  }

 private:
  Mutex& mu_;
  ProbeOracle& backing_;
};

ShardedConsentLedger::ShardedConsentLedger(size_t num_shards) {
  CONSENTDB_CHECK(num_shards > 0,
                  "ShardedConsentLedger needs at least one shard");
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<ConsentLedger>());
  }
}

size_t ShardedConsentLedger::ShardOf(VarId x, size_t num_shards) {
  // SplitMix64 finalizer: a fixed, platform-independent mix so that ids
  // allocated sequentially by the variable pool spread evenly instead of
  // striping, and so persisted shard WALs replay to the same partitions on
  // any build.
  uint64_t z = static_cast<uint64_t>(x) + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return static_cast<size_t>(z % num_shards);
}

void ShardedConsentLedger::AttachShardJournals(
    const std::vector<WalWriter*>& wals, uint64_t compact_every_records) {
  CONSENTDB_CHECK(wals.size() == shards_.size(),
                  "AttachShardJournals needs exactly one wal per shard");
  for (size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->AttachJournal(wals[i], compact_every_records);
  }
}

bool ShardedConsentLedger::ProbeVia(ProbeOracle& oracle, VarId x,
                                    bool* answered_from_ledger) {
  SerializedOracle serialized(probe_mu_, oracle);
  return shards_[ShardOf(x, shards_.size())]->ProbeVia(serialized, x,
                                                       answered_from_ledger);
}

ProbeAttempt ShardedConsentLedger::TryProbeVia(ProbeOracle& oracle, VarId x,
                                               bool* answered_from_ledger) {
  SerializedOracle serialized(probe_mu_, oracle);
  return shards_[ShardOf(x, shards_.size())]->TryProbeVia(
      serialized, x, answered_from_ledger);
}

std::optional<bool> ShardedConsentLedger::Lookup(VarId x) const {
  return shards_[ShardOf(x, shards_.size())]->Lookup(x);
}

void ShardedConsentLedger::AttachJournal(WalWriter* /*wal*/,
                                         uint64_t /*compact_every_records*/) {
  CONSENTDB_CHECK(false,
                  "a sharded ledger journals per shard; use "
                  "AttachShardJournals with one wal per shard");
}

Status ShardedConsentLedger::journal_error() const {
  // First failure in shard-id order: deterministic when several shards
  // latched errors, and OK only if every shard is clean.
  for (const auto& shard : shards_) {
    Status s = shard->journal_error();
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status ShardedConsentLedger::RestoreAnswer(VarId x, bool answer) {
  return shards_[ShardOf(x, shards_.size())]->RestoreAnswer(x, answer);
}

std::vector<std::pair<VarId, bool>> ShardedConsentLedger::Answers() const {
  std::vector<std::pair<VarId, bool>> merged;
  for (const auto& shard : shards_) {
    std::vector<std::pair<VarId, bool>> part = shard->Answers();
    merged.insert(merged.end(), part.begin(), part.end());
  }
  // Partitions are disjoint, so one global sort restores exactly the order
  // a single ledger's Answers() would produce.
  std::sort(merged.begin(), merged.end());
  return merged;
}

void ShardedConsentLedger::Clear() {
  for (const auto& shard : shards_) shard->Clear();
}

size_t ShardedConsentLedger::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->size();
  return total;
}

uint64_t ShardedConsentLedger::hits() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->hits();
  return total;
}

uint64_t ShardedConsentLedger::oracle_probes() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->oracle_probes();
  return total;
}

uint64_t ShardedConsentLedger::faulted_probes() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->faulted_probes();
  return total;
}

uint64_t ShardedConsentLedger::restored_answers() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->restored_answers();
  return total;
}

}  // namespace consentdb::consent
