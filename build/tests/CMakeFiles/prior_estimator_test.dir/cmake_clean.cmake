file(REMOVE_RECURSE
  "CMakeFiles/prior_estimator_test.dir/prior_estimator_test.cc.o"
  "CMakeFiles/prior_estimator_test.dir/prior_estimator_test.cc.o.d"
  "prior_estimator_test"
  "prior_estimator_test.pdb"
  "prior_estimator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prior_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
