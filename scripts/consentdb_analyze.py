#!/usr/bin/env python3
"""consentdb-analyze: AST-level determinism, lock-order and layering checks.

Three passes over the consentdb library (src/consentdb + the examples/
shell), complementing the regex hygiene rules in consentdb_lint.py with
checks that need type, scope and call-graph information:

1. Determinism audit — the byte-identical guarantees (resumed sessions,
   concurrent-vs-sequential runs, the strategy differential suite) only hold
   if no hash-table iteration order or wall-clock value can reach serialized
   output. Conservative by design: every order/time dependence is flagged
   and must either be fixed or carry a written justification.

     det-unordered-iter   range-for or begin()/cbegin() iteration over a
                          std::unordered_{map,set,multimap,multiset} in
                          src/consentdb. Suppress with
                          `// det:order-insensitive <why>` (why required) —
                          e.g. the values are sorted at the boundary or
                          folded through an order-independent reduction.
     det-pointer-key      std::{map,set,multimap,multiset} keyed by a
                          pointer: iteration order is allocation order,
                          which varies run to run. Key by a stable id.
                          Suppress with `// lint:allow det-pointer-key --
                          <reason>`.
     det-wallclock        system_clock::now / random_device / rand / srand /
                          time(...) outside util/clock (the injectable Clock
                          seam) and util/rng.h (the seeded SplitMix64
                          helpers). Suppress with `// lint:allow
                          det-wallclock -- <reason>`.

2. Lock-order cycle detection (rule `lock-cycle`) — per-function mutex
   acquisitions are extracted from MutexLock/std::*lock* scopes and from
   EXCLUDES(...) annotations on declarations, then folded through the call
   graph into one global lock-order graph: an edge A -> B means some path
   acquires B while holding A. GUARDED_BY(...) names contribute (leaf)
   nodes. Calls are resolved against the receiver's *static* type only —
   virtual dispatch is not expanded to derived classes, so the graph never
   contains an edge no concrete composition can produce. A cycle is a
   potential deadlock and always fails — there is no suppression.
   `--dot FILE` emits the graph as a Graphviz artifact.

3. Module layering (rule `layer-violation`) — the include graph must follow
   the module DAG

     util -> provenance/relational -> obs -> query -> consent -> eval
          -> strategy -> core/datasets -> net -> shell (examples/)

   A module may include strictly lower layers (and itself); same-layer
   cross-includes (provenance <-> relational, core <-> datasets) are
   violations too. obs sits below query because the query classifier
   publishes metrics. Suppress with `// lint:allow layer-violation --
   <reason>`.

Two interchangeable frontends feed passes 1 and 2 (pass 3 is include-graph
only):

  clang   libclang (clang.cindex) over the TUs in compile_commands.json —
          full type/scope fidelity; used by CI.
  text    a built-in scanner (brace-matched scopes, per-class member and
          parameter types) that needs no toolchain; used where libclang is
          unavailable and by `ctest -L static_analysis` locally.

`--frontend=auto` (default) picks clang when importable, else text; a clang
failure discovered mid-analysis (stale compile_commands.json entry, fatal
diagnostic, deleted TU) also degrades to the text frontend rather than
erroring out.

Usage:
  consentdb_analyze.py [--root DIR] [--build-dir DIR | --compdb FILE]
                       [--frontend auto|clang|text] [--format text|json]
                       [--dot FILE] [--passes det,lock,layer] [--list-rules]

Exit status: 0 clean, 1 findings, 2 usage/environment error.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from collections import defaultdict
from pathlib import Path
from typing import Optional

sys.path.insert(0, str(Path(__file__).resolve().parent))
from consentdb_findings import (  # noqa: E402
    Finding, allowed_rules, det_justification, emit)

RULES = (
    "det-unordered-iter",
    "det-pointer-key",
    "det-wallclock",
    "lock-cycle",
    "layer-violation",
)

CXX_SUFFIXES = {".h", ".hpp", ".cc", ".cpp"}

# ---------------------------------------------------------------------------
# Module layering.

# A module may include strictly lower layers and itself. Peers the design
# keeps mutually independent (provenance/relational, core/datasets) share an
# index so neither may include the other.
MODULE_LAYERS = {
    "util": 0,
    "provenance": 1,
    "relational": 1,
    "obs": 2,
    "query": 3,
    "consent": 4,
    "eval": 5,
    "strategy": 6,
    "core": 7,
    "datasets": 7,
    "net": 8,
    "shell": 9,
}

LAYER_DAG = ("util -> provenance/relational -> obs -> query -> consent "
             "-> eval -> strategy -> core/datasets -> net -> shell")

INCLUDE_RE = re.compile(r'#\s*include\s*"consentdb/(\w+)/')

# Wall-clock / ambient-entropy tokens. steady_clock durations are fine (they
# never identify a run); it is calendar time and unseeded randomness that
# break replay.
WALLCLOCK_RE = re.compile(
    r"\bsystem_clock\s*::\s*now\b|\brandom_device\b|"
    r"(?<![\w:.])s?rand\s*\(|\bstd\s*::\s*time\s*\(|"
    r"(?<![\w:_.])time\s*\(\s*(?:nullptr|NULL|0)\s*\)")
WALLCLOCK_EXEMPT = {
    Path("src/consentdb/util/clock.h"),
    Path("src/consentdb/util/clock.cc"),
    Path("src/consentdb/util/rng.h"),
}

# Finding messages shared by both frontends, so the clang and text paths
# report byte-identical diagnostics for the same site.
MSG_UNORDERED_RANGE = (
    "range-for over an unordered container — iteration order is hash-seed "
    "and insertion-order dependent; materialize sorted at the boundary or "
    "justify with `// det:order-insensitive <why>`")
MSG_UNORDERED_ITER = (
    "iterator over an unordered container — iteration order is hash-seed "
    "and insertion-order dependent; materialize sorted at the boundary or "
    "justify with `// det:order-insensitive <why>`")
MSG_POINTER_KEY = (
    "ordered container keyed by pointer value — iteration order is "
    "allocation order, which varies run to run; key by a stable id instead")
MSG_WALLCLOCK = (
    "wall-clock or ambient randomness outside util/clock and util/rng.h — "
    "route time through the injected Clock and randomness through seeded "
    "SplitMix64 so runs replay byte-identically")

# The lock primitives' own definition (Mutex, MutexLock, the annotation
# macros): scanning it would register the RAII wrappers' internals and the
# macro parameter names as locks.
LOCK_EXEMPT = {Path("src/consentdb/util/thread_annotations.h")}

UNORDERED_RE = re.compile(r"\bunordered_(?:flat_)?(?:multi)?(?:map|set)\b")
ORDERED_ASSOC_RE = re.compile(r"\bstd\s*::\s*(?:multi)?(?:map|set)\s*<")

LOCK_DECL_RE = re.compile(
    r"\b(?:MutexLock|std\s*::\s*(?:lock_guard|scoped_lock|unique_lock)\s*"
    r"(?:<[^<>]*>)?)\s+\w+\s*[({]([^;{}]*?)[)}]")
EXCLUDES_RE = re.compile(r"\bEXCLUDES\s*\(([^()]*)\)")
# The argument group tolerates interior spaces because the clang frontend
# matches against token streams ("this -> mu_").
GUARDED_BY_RE = re.compile(r"\bGUARDED_BY\s*\(\s*([^()]+?)\s*\)")
TEMPLATE_RE = re.compile(r"\btemplate\s*<[^<>]*(?:<[^<>]*>[^<>]*)*>")
CLASS_RE = re.compile(r"\b(?:class|struct)\s+([A-Za-z_]\w*)\s*"
                      r"(?:final\s*)?(?::\s*([^{;]*))?$")

CONTROL_KEYWORDS = {
    "if", "else", "for", "while", "switch", "do", "try", "catch", "return",
    "case", "default", "sizeof", "new", "delete", "throw", "co_return",
    "co_await", "co_yield", "static_assert", "alignas", "alignof", "not",
    "and", "or", "using", "typedef", "goto", "break", "continue", "friend",
}

LAMBDA_TAIL_RE = re.compile(
    r"\]\s*(?:\([^()]*\))?\s*(?:mutable\b\s*)?(?:noexcept\b\s*)?"
    r"(?:->\s*[\w:<>,&*\s]+)?$")

CALL_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\(")

# A non-`::` colon: the range-for separator (never part of a scope
# qualifier).
RANGE_COLON_RE = re.compile(r"(?<!:):(?!:)")


def first_template_arg(text: str, open_idx: int) -> str:
    """The first template argument of the `<` at open_idx (depth-aware)."""
    depth, i, start = 0, open_idx, open_idx + 1
    while i < len(text):
        c = text[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                return text[start:i].strip()
        elif c == "," and depth == 1:
            return text[start:i].strip()
        i += 1
    return text[start:].strip()


def pointer_keyed(decl_text: str) -> bool:
    """True when an ordered std::{map,set,...} in decl_text has a pointer
    key (first template argument ends in `*`)."""
    for m in ORDERED_ASSOC_RE.finditer(decl_text):
        open_idx = decl_text.index("<", m.end() - 1)
        if first_template_arg(decl_text, open_idx).endswith("*"):
            return True
    return False


def strip_block_comments(text: str) -> str:
    """Replaces /* ... */ with spaces (newlines kept, offsets preserved)."""
    out, i, n = [], 0, len(text)
    while i < n:
        if text.startswith("/*", i):
            end = text.find("*/", i + 2)
            end = n if end == -1 else end + 2
            out.append("".join(c if c == "\n" else " " for c in text[i:end]))
            i = end
        elif text.startswith("//", i):
            end = text.find("\n", i)
            end = n if end == -1 else end
            out.append(text[i:end])  # line comments handled per line later
            i = end
        else:
            out.append(text[i])
            i += 1
    return "".join(out)


def strip_line(line: str) -> str:
    """Removes // comments and string/char literal contents from one line."""
    out, i, n = [], 0, len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c in "\"'":
            quote = c
            out.append(quote)
            i += 1
            while i < n and line[i] != quote:
                i += 2 if line[i] == "\\" else 1
            out.append(quote)
            i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


def parse_class_header(header: str) -> Optional[tuple[str, tuple[str, ...]]]:
    """(class name, base classes) when `header` opens a class/struct body."""
    h = TEMPLATE_RE.sub(" ", header).strip()
    if "(" in h or "=" in h or re.search(r"\benum\b", h):
        return None
    m = CLASS_RE.search(h)
    if m is None:
        return None
    bases = []
    for part in (m.group(2) or "").split(","):
        part = re.sub(r"<[^<>]*>", " ", part)
        ids = [i for i in re.findall(r"\w+", part)
               if i not in ("public", "protected", "private", "virtual",
                            "final")]
        if ids:
            bases.append(ids[-1])
    return m.group(1), tuple(bases)


# ---------------------------------------------------------------------------
# Intermediate representation shared by both frontends.


class FunctionIR:
    """One function (or method): its direct lock acquisitions, annotated
    exclusions, outgoing calls and the locks held at each call site."""

    def __init__(self, cls: str, name: str, path: Path, line: int):
        self.cls = cls
        self.name = name
        self.path = path
        self.line = line
        self.acquisitions: list[tuple[str, int]] = []  # (lock, line)
        self.excludes: set[str] = set()
        # (callee, receiver class | None free/own-class | "?" unresolvable,
        #  line, tuple(held locks))
        self.calls: list[tuple[str, Optional[str], int, tuple[str, ...]]] = []
        # direct nested-scope edges: (outer lock, inner lock, line)
        self.nested: list[tuple[str, str, int]] = []
        self.var_types: dict[str, str] = {}  # param/local name -> class

    @property
    def qual(self) -> str:
        return f"{self.cls}::{self.name}" if self.cls else self.name


class TUResult:
    def __init__(self):
        self.det_sites: list[Finding] = []  # pre-suppression
        self.functions: list[FunctionIR] = []
        self.lock_nodes: set[str] = set()  # GUARDED_BY-discovered locks
        self.bases: dict[str, tuple[str, ...]] = {}


# ---------------------------------------------------------------------------
# Text frontend: brace-matched scope scanner with per-class symbol tables.


class Scope:
    def __init__(self, kind: str, name: str = "",
                 fn: Optional[FunctionIR] = None):
        self.kind = kind  # namespace | class | function | block
        self.name = name
        self.fn = fn
        self.locks: list[str] = []  # locks whose scope closes with this brace


class TextFrontend:
    """Heuristic single-pass C++ scanner. A collection sweep first builds,
    per class, the base-class list, the members with unordered types and a
    member -> class-of-member-type table; the analysis sweep then re-walks
    every file with that symbol table to emit determinism sites and the
    lock/call IR. Calls whose receiver type cannot be established are
    dropped from the lock graph rather than guessed."""

    name = "text"

    def __init__(self, root: Path, files: list[Path]):
        self.root = root
        self.files = files
        self.class_bases: dict[str, tuple[str, ...]] = {}
        self.unordered_members: set[tuple[str, str]] = set()
        self.member_types: dict[tuple[str, str], str] = {}
        raw_members: list[tuple[str, str, str]] = []  # (cls, member, decl)
        for path in files:
            self._collect(path, raw_members)
        for cls, member, decl in raw_members:
            ids = [i for i in re.findall(r"\w+", decl)
                   if i in self.class_bases]
            if ids:
                self.member_types[(cls, member)] = ids[-1]

    # -- collection sweep ---------------------------------------------------
    def _collect(self, path: Path, raw_members: list) -> None:
        aliases: set[str] = set()  # unordered type aliases (file-local)
        for cls, stmt, _line, is_header in self._statements(path):
            if is_header:
                parsed = parse_class_header(stmt)
                if parsed is not None:
                    self.class_bases.setdefault(parsed[0], parsed[1])
                continue
            am = re.match(r"\s*using\s+(\w+)\s*=\s*(.*)", stmt)
            if am and (UNORDERED_RE.search(am.group(2))
                       or any(re.search(rf"\b{a}\b", am.group(2))
                              for a in aliases)):
                aliases.add(am.group(1))
                continue
            stripped = GUARDED_BY_RE.sub(" ", stmt).strip()
            if UNORDERED_RE.search(stmt) or any(
                    re.search(rf"\b{a}\b", stmt) for a in aliases):
                dm = re.search(r"[>\s](\w+)\s*(?:=[^;]*|\{[^}]*\})?\s*$",
                               stripped)
                if dm and dm.group(1) not in ("const", "mutable", "override"):
                    self.unordered_members.add((cls, dm.group(1)))
            # Member declarations (no parens once annotations are gone).
            if cls and "(" not in stripped and ")" not in stripped:
                first = re.match(r"(\w+)", stripped)
                if first and first.group(1) not in (
                        "using", "typedef", "friend", "public", "private",
                        "protected", "static_assert", "enum", "return"):
                    # Strip the initializer so `T* x = nullptr;` types x.
                    no_init = re.sub(r"(=|\{).*$", "", stripped).rstrip()
                    dm = re.match(r"(.*[>&*\s])(\w+)\s*$", no_init)
                    if dm:
                        raw_members.append((cls, dm.group(2), dm.group(1)))

    def _statements(self, path: Path):
        """Yields (enclosing_class, text, line, is_header) for every
        `;`-terminated statement and `{`-opening header, comments and
        literal contents stripped. Collection sweep only — the analysis
        sweep runs the full scope machine."""
        text = strip_block_comments(path.read_text(encoding="utf-8"))
        lines = [strip_line(l) for l in text.splitlines()]
        class_stack: list[str] = []
        brace_kinds: list[str] = []
        stmt, stmt_line = [], 1
        for lineno, line in enumerate(lines, start=1):
            for c in line:
                if c == "{":
                    header = "".join(stmt).strip()
                    parsed = parse_class_header(header)
                    yield (class_stack[-1] if class_stack else "",
                           header, stmt_line, True)
                    if parsed is not None:
                        class_stack.append(parsed[0])
                        brace_kinds.append("class")
                    else:
                        brace_kinds.append("block")
                    stmt, stmt_line = [], lineno
                elif c == "}":
                    if brace_kinds and brace_kinds.pop() == "class":
                        class_stack.pop()
                    stmt, stmt_line = [], lineno
                elif c == ";":
                    yield (class_stack[-1] if class_stack else "",
                           "".join(stmt).strip(), stmt_line, False)
                    stmt, stmt_line = [], lineno
                else:
                    if not stmt:
                        stmt_line = lineno
                    stmt.append(c)
            stmt.append(" ")

    # -- analysis sweep -----------------------------------------------------
    def analyze(self) -> TUResult:
        result = TUResult()
        result.bases = dict(self.class_bases)
        for path in self.files:
            self._analyze_file(path, result)
        return result

    def _analyze_file(self, path: Path, result: TUResult) -> None:
        rel = path.relative_to(self.root)
        text = strip_block_comments(path.read_text(encoding="utf-8"))
        lines = [strip_line(l) for l in text.splitlines()]
        scopes: list[Scope] = []
        stmt, stmt_line = [], 1

        def current_fn() -> Optional[FunctionIR]:
            for s in reversed(scopes):
                if s.kind == "function":
                    return s.fn
            return None

        def current_cls() -> str:
            for s in reversed(scopes):
                if s.kind == "class":
                    return s.name
            return ""

        def held_locks() -> list[str]:
            held = []
            for s in scopes:
                held.extend(s.locks)
            return held

        def resolve_lock(expr: str, cls: str) -> str:
            expr = expr.strip().lstrip("&").strip()
            expr = re.sub(r"^this\s*->\s*", "", expr)
            member = re.split(r"->|\.", expr)[-1].strip()
            if not re.fullmatch(r"\w+", member):
                return f"{rel.stem}::{expr}"
            owner = cls if cls else rel.stem
            return f"{owner}::{member}"

        def fn_class(header_name: str) -> tuple[str, str]:
            parts = [p.strip() for p in header_name.split("::")]
            if len(parts) >= 2:
                return parts[-2], parts[-1]
            return current_cls(), parts[-1]

        def base_chain(cls: str) -> list[str]:
            out, queue, seen = [], [cls], set()
            while queue:
                c = queue.pop(0)
                if not c or c in seen:
                    continue
                seen.add(c)
                out.append(c)
                queue.extend(self.class_bases.get(c, ()))
            return out

        def receiver_class(token: str, fn: Optional[FunctionIR],
                           cls: str) -> str:
            if token == "this":
                return cls or "?"
            if token in self.class_bases:
                return token  # Class::StaticCall(...)
            if fn is not None and token in fn.var_types:
                return fn.var_types[token]
            for c in base_chain(cls):
                t = self.member_types.get((c, token))
                if t is not None:
                    return t
            return "?"

        def record_params(fn: FunctionIR, header: str) -> None:
            """Maps parameter names to their classes for call resolution."""
            depth = start = 0
            params = ""
            for i, c in enumerate(header):
                if c == "(":
                    depth += 1
                    if depth == 1:
                        start = i + 1
                elif c == ")":
                    depth -= 1
                    if depth == 0:
                        params = header[start:i]
                        break
            for part in params.split(","):
                part = part.split("=")[0]
                part = re.sub(r"<[^<>]*>", " ", part)
                ids = re.findall(r"\w+", part)
                if len(ids) >= 2 and ids[-2] in self.class_bases:
                    fn.var_types[ids[-1]] = ids[-2]

        def process_statement(s: str, line: int, is_header: bool) -> None:
            if rel in LOCK_EXEMPT:
                return
            fn = current_fn()
            cls = fn.cls if fn else current_cls()
            for m in GUARDED_BY_RE.finditer(s):
                result.lock_nodes.add(resolve_lock(m.group(1), current_cls()))
            # Prototypes carrying EXCLUDES (class bodies / headers).
            if fn is None and not is_header:
                em = EXCLUDES_RE.search(s)
                if em:
                    nm = self._header_fn_name(s)
                    if nm:
                        dcls, dname = fn_class(nm)
                        decl = FunctionIR(dcls, dname, rel, line)
                        decl.excludes = {
                            resolve_lock(x, decl.cls)
                            for x in em.group(1).split(",") if x.strip()}
                        result.functions.append(decl)
            if fn is None:
                return
            # Typed local declarations (for receiver resolution).
            lm = re.match(r"\s*(?:const\s+)?([A-Za-z_]\w*)\s*[&*]?\s+"
                          r"(\w+)\s*[=({]", s)
            if lm and lm.group(1) in self.class_bases:
                fn.var_types[lm.group(2)] = lm.group(1)
            # Lock acquisitions (brace scope = innermost open scope).
            for m in LOCK_DECL_RE.finditer(s):
                for arg in self._lock_args(m.group(1)):
                    lock = resolve_lock(arg, cls)
                    for outer in held_locks():
                        if outer != lock:
                            fn.nested.append((outer, lock, line))
                    fn.acquisitions.append((lock, line))
                    if scopes:
                        scopes[-1].locks.append(lock)
            # Calls, with best-effort receiver typing.
            without_locks = LOCK_DECL_RE.sub(" ", s)
            for m in CALL_RE.finditer(without_locks):
                name = m.group(1)
                if name in CONTROL_KEYWORDS or name.isupper():
                    continue
                prefix = without_locks[:m.start()].rstrip()
                recv: Optional[str] = None
                if prefix.endswith((".", "->")):
                    rm = re.search(r"([A-Za-z_]\w*)\s*(?:\.|->)\s*$", prefix)
                    if rm is None:
                        recv = "?"  # )->m(...) and other chains
                    else:
                        before = prefix[:rm.start()].rstrip()
                        if before.endswith((".", "->", ")", "]")):
                            recv = "?"  # multi-hop chain
                        else:
                            recv = receiver_class(rm.group(1), fn, cls)
                elif prefix.endswith("::"):
                    qm = re.search(r"([A-Za-z_]\w*)\s*::\s*$", prefix)
                    recv = (qm.group(1) if qm and
                            qm.group(1) in self.class_bases else "?")
                elif prefix and (prefix[-1].isalnum()
                                 or prefix[-1] in "_>"):
                    word = re.search(r"([\w>]+)\s*$", prefix)
                    if word and word.group(1) not in CONTROL_KEYWORDS:
                        continue  # `Type name(...)` declaration
                fn.calls.append((name, recv, line, tuple(held_locks())))

        def classify_header(header: str, line: int) -> Scope:
            h = TEMPLATE_RE.sub(" ", header).strip()
            if not h:
                return Scope("block")
            if re.search(r"\bnamespace\b", h) and "(" not in h:
                return Scope("namespace", h.split()[-1])
            parsed = parse_class_header(header)
            if parsed is not None:
                return Scope("class", parsed[0])
            if h.rstrip().endswith(("=", ",", "(", "[")):
                return Scope("block")
            if LAMBDA_TAIL_RE.search(h):
                return Scope("block")  # lambda body joins enclosing function
            first = re.match(r"[A-Za-z_]\w*", h)
            if first and first.group(0) in CONTROL_KEYWORDS:
                return Scope("block")
            if current_fn() is not None:
                return Scope("block")  # no nested named functions
            nm = self._header_fn_name(h)
            if nm:
                cls, name = fn_class(nm)
                fn = FunctionIR(cls, name, rel, line)
                em = EXCLUDES_RE.search(h)
                if em:
                    fn.excludes = {
                        resolve_lock(x, cls)
                        for x in em.group(1).split(",") if x.strip()}
                record_params(fn, h)
                if rel not in LOCK_EXEMPT:
                    result.functions.append(fn)
                return Scope("function", nm, fn)
            return Scope("block")

        for lineno, line in enumerate(lines, start=1):
            for c in line:
                if c == "{":
                    header = "".join(stmt)
                    hline = stmt_line
                    process_statement(header, hline, is_header=True)
                    self._det_scan(rel, header, hline, current_fn(),
                                   current_cls(), True, result)
                    scopes.append(classify_header(header, hline))
                    stmt, stmt_line = [], lineno
                elif c == "}":
                    if scopes:
                        scopes.pop()
                    stmt, stmt_line = [], lineno
                elif c == ";":
                    s = "".join(stmt)
                    process_statement(s, stmt_line, is_header=False)
                    self._det_scan(rel, s, stmt_line, current_fn(),
                                   current_cls(), False, result)
                    stmt, stmt_line = [], lineno
                else:
                    if not stmt or not "".join(stmt).strip():
                        stmt_line = lineno
                    stmt.append(c)
            stmt.append(" ")

    def _lock_args(self, argtext: str):
        # std::scoped_lock may take several mutexes.
        for part in argtext.split(","):
            part = part.strip()
            if part and "=" not in part:
                yield part

    def _header_fn_name(self, h: str) -> Optional[str]:
        """The qualified name before the first top-level `(` of a function
        header/declaration, or None."""
        h = TEMPLATE_RE.sub(" ", h)
        depth = 0
        for i, c in enumerate(h):
            if c == "<":
                depth += 1
            elif c == ">":
                depth = max(0, depth - 1)
            elif c == "(" and depth == 0:
                m = re.search(r"([\w~]+(?:\s*::\s*[\w~]+)*)\s*$", h[:i])
                if m and m.group(1) not in CONTROL_KEYWORDS:
                    return re.sub(r"\s", "", m.group(1))
                return None
        return None

    def _det_scan(self, rel: Path, stmt: str, line: int,
                  fn: Optional[FunctionIR], cls: str, is_header: bool,
                  result: TUResult) -> None:
        if rel.parts[:2] != ("src", "consentdb"):
            return
        enclosing_cls = fn.cls if fn else cls

        def is_unordered_expr(expr: str) -> bool:
            expr = expr.strip()
            if UNORDERED_RE.search(expr):
                return True
            base = re.sub(r"^this\s*->\s*", "", expr)
            terminal = re.split(r"->|\.", base)[-1].strip()
            terminal = re.sub(r"\(.*\)$", "", terminal).strip()
            if not re.fullmatch(r"\w+", terminal):
                return False
            return ((enclosing_cls, terminal) in self.unordered_members
                    or ("", terminal) in self.unordered_members)

        # Range-for over an unordered expression (header statements only —
        # `for (decl : expr)` has no semicolons, so the full head arrives).
        if is_header:
            m = re.search(r"\bfor\s*\((.*)\)\s*$", stmt)
            if m:
                colon = RANGE_COLON_RE.search(m.group(1))
                if colon and is_unordered_expr(m.group(1)[colon.end():]):
                    result.det_sites.append(Finding(
                        rel, line, "det-unordered-iter",
                        MSG_UNORDERED_RANGE))
        # begin()/cbegin() on an unordered expression (iterator loops and
        # iterator-pair constructions).
        for m in re.finditer(r"([\w.>-]+?)\s*\.\s*c?begin\s*\(", stmt):
            if is_unordered_expr(m.group(1)):
                result.det_sites.append(Finding(
                    rel, line, "det-unordered-iter", MSG_UNORDERED_ITER))
        # Pointer-keyed ordered containers.
        if pointer_keyed(stmt):
            result.det_sites.append(Finding(
                rel, line, "det-pointer-key", MSG_POINTER_KEY))
        # Wall-clock / ambient entropy.
        if rel not in WALLCLOCK_EXEMPT and WALLCLOCK_RE.search(stmt):
            result.det_sites.append(Finding(
                rel, line, "det-wallclock", MSG_WALLCLOCK))


# ---------------------------------------------------------------------------
# libclang frontend.


class ClangFrontendError(RuntimeError):
    pass


class ClangFrontend:
    """compile_commands.json-driven frontend on clang.cindex. Determinism
    sites use canonical types (aliases resolve); lock scopes follow compound
    statements child by child, so a lock's reach is its true brace scope;
    calls resolve through the referenced declaration (static type — virtual
    dispatch is not expanded)."""

    name = "clang"

    def __init__(self, root: Path, compdb_path: Path):
        try:
            import clang.cindex as ci
        except ImportError as e:
            raise ClangFrontendError(
                f"clang.cindex unavailable ({e}); install python3-clang or "
                "use --frontend=text") from e
        self.ci = ci
        self._configure_libclang(ci)
        try:
            self.index = ci.Index.create()
        except Exception as e:  # libclang .so missing
            raise ClangFrontendError(f"libclang unusable: {e}") from e
        self.root = root
        self.compdb_path = compdb_path
        self.entries = self._load_compdb(compdb_path)

    @staticmethod
    def _configure_libclang(ci) -> None:
        if ci.Config.loaded:
            return
        import glob
        candidates = (glob.glob("/usr/lib/llvm-*/lib/libclang.so*") +
                      glob.glob("/usr/lib/*/libclang-*.so*") +
                      glob.glob("/usr/lib/*/libclang.so*"))
        for c in sorted(candidates, reverse=True):
            try:
                ci.Config.set_library_file(c)
                ci.Index.create()
                return
            except Exception:
                ci.Config.loaded = False
                ci.conf.lib_file = None  # retry with the next candidate
        # Fall through: let cindex try its default lookup.

    def _load_compdb(self, path: Path) -> list[tuple[Path, list[str]]]:
        try:
            db = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as e:
            raise ClangFrontendError(f"cannot read {path}: {e}") from e
        entries = []
        lib = (self.root / "src" / "consentdb").resolve()
        for e in db:
            f = Path(e["file"])
            if not f.is_absolute():
                f = Path(e["directory"]) / f
            f = f.resolve()
            if lib not in f.parents:
                continue
            if "arguments" in e:
                args = list(e["arguments"])[1:]
            else:
                import shlex
                args = shlex.split(e["command"])[1:]
            # Drop the source file, output and -c; keep the include/flag set.
            cleaned, skip = [], False
            for a in args:
                if skip:
                    skip = False
                    continue
                if a in ("-c", str(f), e["file"]):
                    continue
                if a in ("-o", "--output"):
                    skip = True
                    continue
                cleaned.append(a)
            entries.append((f, cleaned))
        if not entries:
            raise ClangFrontendError(
                f"no src/consentdb TUs in {path}; configure the build first")
        return entries

    def analyze(self) -> TUResult:
        result = TUResult()
        seen_sites: set[tuple[str, int, str]] = set()
        seen_fns: set[tuple[str, str, str, int]] = set()
        for path, args in self.entries:
            self._analyze_tu(path, args, result, seen_sites, seen_fns)
        return result

    def _rel(self, location) -> Optional[Path]:
        if location.file is None:
            return None
        p = Path(location.file.name).resolve()
        try:
            rel = p.relative_to(self.root)
        except ValueError:
            return None
        if rel.parts[:2] != ("src", "consentdb"):
            return None
        return rel

    def _analyze_tu(self, path: Path, args: list[str], result: TUResult,
                    seen_sites, seen_fns) -> None:
        ci = self.ci
        tu = self.index.parse(str(path), args=args)
        fatal = [d for d in tu.diagnostics
                 if d.severity >= ci.Diagnostic.Error]
        if fatal:
            raise ClangFrontendError(
                f"{path}: {fatal[0].spelling} (fix the build or the "
                "compile_commands.json export)")

        fn_kinds = {ci.CursorKind.FUNCTION_DECL, ci.CursorKind.CXX_METHOD,
                    ci.CursorKind.CONSTRUCTOR, ci.CursorKind.DESTRUCTOR,
                    ci.CursorKind.FUNCTION_TEMPLATE}
        class_kinds = {ci.CursorKind.CLASS_DECL, ci.CursorKind.STRUCT_DECL,
                       ci.CursorKind.CLASS_TEMPLATE}

        def canonical(t) -> str:
            try:
                return t.get_canonical().spelling
            except Exception:
                return t.spelling

        def add_site(rel, line, rule, message):
            key = (str(rel), line, rule)
            if key not in seen_sites:
                seen_sites.add(key)
                result.det_sites.append(Finding(rel, line, rule, message))

        def decl_tokens(cursor) -> str:
            try:
                return " ".join(t.spelling for t in cursor.get_tokens())
            except Exception:
                return ""

        def lock_name_of(var_cursor, cls: str, rel: Path) -> str:
            """The lock a MutexLock-style RAII var acquires: the referenced
            field/var of its constructor argument."""
            best = None
            for node in var_cursor.walk_preorder():
                if node.kind == ci.CursorKind.MEMBER_REF_EXPR and \
                        node.referenced is not None:
                    owner = node.referenced.semantic_parent
                    oname = owner.spelling if owner is not None else cls
                    best = f"{oname}::{node.referenced.spelling}"
                elif node.kind == ci.CursorKind.DECL_REF_EXPR and \
                        best is None and node.referenced is not None and \
                        "utex" in canonical(node.referenced.type):
                    best = f"{rel.stem}::{node.referenced.spelling}"
            if best is not None:
                return best
            m = re.search(r"\(\s*&?\s*([\w.>-]+)", decl_tokens(var_cursor))
            member = re.split(r"->|\.", m.group(1))[-1] if m else "unknown"
            owner = cls if cls else rel.stem
            return f"{owner}::{member}"

        def excludes_of(cursor, cls: str, rel: Path) -> set[str]:
            out = set()
            toks = decl_tokens(cursor)
            body_at = toks.find("{")
            header = toks if body_at == -1 else toks[:body_at]
            for m in EXCLUDES_RE.finditer(header.replace(" ", "")):
                for x in m.group(1).split(","):
                    if x.strip():
                        member = re.split(r"->|\.", x.strip().lstrip("&"))[-1]
                        owner = cls if cls else rel.stem
                        out.add(f"{owner}::{member}")
            return out

        def visit_fn_body(body, fn: FunctionIR, held: list[str],
                          cls: str, rel: Path) -> None:
            """Walks a statement; compound statements thread the running
            lock set child to child so later statements see earlier locks."""
            if body is None:
                return
            if body.kind == ci.CursorKind.COMPOUND_STMT:
                block_locks: list[str] = []
                for child in body.get_children():
                    if child.kind == ci.CursorKind.DECL_STMT:
                        for d in child.get_children():
                            if d.kind != ci.CursorKind.VAR_DECL:
                                continue
                            ct = canonical(d.type)
                            if re.search(r"\bMutexLock\b|\block_guard\b|"
                                         r"\bscoped_lock\b|\bunique_lock\b",
                                         ct):
                                lock = lock_name_of(d, cls, rel)
                                line = d.location.line
                                for outer in held + block_locks:
                                    if outer != lock:
                                        fn.nested.append((outer, lock, line))
                                fn.acquisitions.append((lock, line))
                                block_locks.append(lock)
                            else:
                                visit_fn_body(d, fn, held + block_locks,
                                              cls, rel)
                        continue
                    visit_fn_body(child, fn, held + block_locks, cls, rel)
                return
            if body.kind == ci.CursorKind.CALL_EXPR and \
                    body.referenced is not None:
                callee = body.referenced
                ccls = None
                sp = callee.semantic_parent
                if sp is not None and sp.kind in class_kinds:
                    ccls = sp.spelling
                if callee.spelling:
                    fn.calls.append((callee.spelling, ccls,
                                     body.location.line, tuple(held)))
            for child in body.get_children():
                visit_fn_body(child, fn, held, cls, rel)

        def wallclock_callee(callee) -> bool:
            """True when `callee` is one of the ambient time/entropy entry
            points (the AST twin of WALLCLOCK_RE): system_clock::now, any
            random_device member (construction or operator()), or the free
            functions rand/srand/time. steady_clock durations stay allowed
            — they never identify a run."""
            name = callee.spelling
            sp = callee.semantic_parent
            parent = sp.spelling if sp is not None else ""
            if parent == "random_device":
                return True
            if name == "now":
                return parent == "system_clock"
            if name in ("rand", "srand", "time"):
                return sp is None or sp.kind in (
                    ci.CursorKind.TRANSLATION_UNIT,
                    ci.CursorKind.NAMESPACE,
                    ci.CursorKind.LINKAGE_SPEC,
                    ci.CursorKind.UNEXPOSED_DECL)
            return False

        def det_scan_cursor(cursor, rel: Path) -> None:
            k = cursor.kind
            if k == ci.CursorKind.CXX_FOR_RANGE_STMT:
                for child in cursor.get_children():
                    if not child.kind.is_expression():
                        continue
                    if UNORDERED_RE.search(canonical(child.type)):
                        add_site(rel, cursor.location.line,
                                 "det-unordered-iter", MSG_UNORDERED_RANGE)
                        break
            elif k == ci.CursorKind.MEMBER_REF_EXPR and \
                    cursor.spelling in ("begin", "cbegin"):
                children = list(cursor.get_children())
                base = children[0] if children else None
                if base is not None and \
                        UNORDERED_RE.search(canonical(base.type)):
                    add_site(rel, cursor.location.line, "det-unordered-iter",
                             MSG_UNORDERED_ITER)
            elif k == ci.CursorKind.CALL_EXPR:
                if rel not in WALLCLOCK_EXEMPT and \
                        cursor.referenced is not None and \
                        wallclock_callee(cursor.referenced):
                    add_site(rel, cursor.location.line, "det-wallclock",
                             MSG_WALLCLOCK)
            elif k in (ci.CursorKind.VAR_DECL, ci.CursorKind.FIELD_DECL):
                if pointer_keyed(canonical(cursor.type)):
                    add_site(rel, cursor.location.line, "det-pointer-key",
                             MSG_POINTER_KEY)
                if rel not in WALLCLOCK_EXEMPT and \
                        "random_device" in canonical(cursor.type):
                    add_site(rel, cursor.location.line, "det-wallclock",
                             MSG_WALLCLOCK)

        def det_walk(cursor) -> None:
            """Determinism-scans a whole subtree. walk() stops descending at
            function declarations (their lock/call IR comes from
            visit_fn_body), so bodies are routed through here — otherwise
            range-fors, begin() iterators and wall-clock calls inside
            function bodies would never be scanned."""
            rel = self._rel(cursor.location)
            if rel is not None:
                det_scan_cursor(cursor, rel)
            for child in cursor.get_children():
                det_walk(child)

        def walk(cursor, cls: str) -> None:
            rel = self._rel(cursor.location)
            k = cursor.kind
            if k in class_kinds:
                cls = cursor.spelling or cls
                if rel is not None and cls:
                    bases = tuple(
                        b.spelling.split("::")[-1].replace("class ", "")
                        .replace("struct ", "").strip()
                        for b in cursor.get_children()
                        if b.kind == ci.CursorKind.CXX_BASE_SPECIFIER)
                    result.bases.setdefault(cls, bases)
            if rel is not None:
                det_scan_cursor(cursor, rel)
                if rel in LOCK_EXEMPT:
                    for child in cursor.get_children():
                        walk(child, cls)
                    return
                if k == ci.CursorKind.FIELD_DECL:
                    # Token streams are space-joined ("generation_ GUARDED_BY
                    # ( mu_ )"); collapsing the spaces would glue the macro
                    # to the field name and defeat the \b anchor.
                    toks = decl_tokens(cursor)
                    for m in GUARDED_BY_RE.finditer(toks):
                        member = re.split(
                            r"->|\.", m.group(1).lstrip("&"))[-1].strip()
                        result.lock_nodes.add(f"{cls}::{member}")
                if k in fn_kinds:
                    sp = cursor.semantic_parent
                    fcls = cls
                    if sp is not None and sp.kind in class_kinds:
                        fcls = sp.spelling
                    key = (fcls, cursor.spelling, str(rel),
                           cursor.location.line)
                    if key not in seen_fns:
                        seen_fns.add(key)
                        fn = FunctionIR(fcls, cursor.spelling, rel,
                                        cursor.location.line)
                        fn.excludes = excludes_of(cursor, fcls, rel)
                        result.functions.append(fn)
                        if cursor.is_definition():
                            body = None
                            for child in cursor.get_children():
                                if child.kind == \
                                        ci.CursorKind.COMPOUND_STMT:
                                    body = child
                            visit_fn_body(body, fn, [], fcls, rel)
                        # walk() never descends past this return, so the
                        # body's determinism sites are collected here.
                        for child in cursor.get_children():
                            det_walk(child)
                    return  # bodies handled above; don't descend twice
            for child in cursor.get_children():
                walk(child, cls)

        walk(tu.cursor, "")


# ---------------------------------------------------------------------------
# Lock-order graph: fold per-function IR through the call graph.


class LockGraph:
    def __init__(self):
        self.nodes: set[str] = set()
        # (a, b) -> example sites ["file:line", ...]
        self.edges: dict[tuple[str, str], list[str]] = defaultdict(list)

    def add_edge(self, a: str, b: str, site: str) -> None:
        self.nodes.update((a, b))
        sites = self.edges[(a, b)]
        if site not in sites:
            sites.append(site)

    def cycles(self) -> list[list[str]]:
        """One witness cycle per distinct node set, as a closed node path
        [a, b, ..., a]."""
        adj = defaultdict(list)
        for (a, b) in self.edges:
            adj[a].append(b)
        for nbrs in adj.values():
            nbrs.sort()
        found = []
        seen_components: set[frozenset] = set()
        for start in sorted(self.nodes):
            stack = [(start, [start])]
            visited = set()
            while stack:
                node, path = stack.pop()
                for nxt in adj.get(node, ()):
                    if nxt == start:
                        comp = frozenset(path)
                        if comp not in seen_components:
                            seen_components.add(comp)
                            found.append(path + [start])
                        continue
                    if nxt not in visited and nxt not in path:
                        visited.add(nxt)
                        stack.append((nxt, path + [nxt]))
        return found

    def to_dot(self) -> str:
        lines = [
            "// consentdb lock-order graph — generated by "
            "consentdb_analyze.py",
            "// An edge A -> B means some code path acquires B while "
            "holding A.",
            "digraph lock_order {",
            "  rankdir=LR;",
            '  node [shape=box, fontname="monospace"];',
        ]
        for n in sorted(self.nodes):
            lines.append(f'  "{n}";')
        for (a, b), sites in sorted(self.edges.items()):
            label = sites[0] + ("" if len(sites) == 1
                                else f" (+{len(sites) - 1})")
            lines.append(f'  "{a}" -> "{b}" [label="{label}"];')
        lines.append("}")
        return "\n".join(lines) + "\n"


def build_lock_graph(result: TUResult) -> LockGraph:
    graph = LockGraph()
    graph.nodes.update(result.lock_nodes)

    # Merge FunctionIR fragments (decl + def, or per-file pieces) by
    # qualified name, then compute each function's transitive acquisition
    # set over the call graph.
    merged: dict[str, FunctionIR] = {}
    for fn in result.functions:
        m = merged.setdefault(fn.qual, FunctionIR(fn.cls, fn.name,
                                                  fn.path, fn.line))
        m.acquisitions.extend(fn.acquisitions)
        m.excludes.update(fn.excludes)
        m.calls.extend(fn.calls)
        m.nested.extend(fn.nested)

    def base_chain(cls: str) -> list[str]:
        out, queue, seen = [], [cls], set()
        while queue:
            c = queue.pop(0)
            if not c or c in seen:
                continue
            seen.add(c)
            out.append(c)
            queue.extend(result.bases.get(c, ()))
        return out

    def resolve(callee: str, recv: Optional[str],
                caller_cls: str) -> list[str]:
        """Call targets by static type: the receiver's class (or its bases,
        for inherited methods); an unqualified call tries the caller's own
        class chain, then a free function. An unresolvable receiver ("?")
        contributes nothing — no guessing across same-named methods."""
        if recv == "?":
            return []
        if recv:
            for c in base_chain(recv):
                qual = f"{c}::{callee}"
                if qual in merged:
                    return [qual]
            return []
        for c in base_chain(caller_cls):
            qual = f"{c}::{callee}"
            if qual in merged:
                return [qual]
        if callee in merged:
            return [callee]
        return []

    direct = {q: {a for a, _ in fn.acquisitions} | fn.excludes
              for q, fn in merged.items()}
    reach = {q: set(s) for q, s in direct.items()}
    changed = True
    while changed:
        changed = False
        for q, fn in merged.items():
            for callee, recv, _line, _held in fn.calls:
                for target in resolve(callee, recv, fn.cls):
                    extra = reach[target] - reach[q]
                    if extra:
                        reach[q].update(extra)
                        changed = True

    for q, fn in merged.items():
        graph.nodes.update(direct[q])
        for a, b, line in fn.nested:
            graph.add_edge(a, b, f"{fn.path}:{line}")
        for callee, recv, line, held in fn.calls:
            if not held:
                continue
            acquired: set[str] = set()
            for target in resolve(callee, recv, fn.cls):
                acquired |= reach[target]
            for outer in held:
                for inner in sorted(acquired):
                    if inner != outer:
                        graph.add_edge(outer, inner, f"{fn.path}:{line}")
    return graph


# ---------------------------------------------------------------------------
# Passes.


def collect_files(root: Path) -> tuple[list[Path], list[Path]]:
    """(library files under src/consentdb, layering scope incl. examples)."""
    lib, layered = [], []
    for base, is_lib in (("src/consentdb", True), ("examples", False)):
        d = root / base
        if not d.is_dir():
            continue
        for p in sorted(d.rglob("*")):
            if p.suffix in CXX_SUFFIXES and p.is_file():
                layered.append(p)
                if is_lib:
                    lib.append(p)
    return lib, layered


def module_of(rel: Path) -> Optional[str]:
    if rel.parts[:2] == ("src", "consentdb") and len(rel.parts) > 3:
        return rel.parts[2]
    if rel.parts[:1] == ("examples",):
        return "shell"
    return None


def layering_pass(root: Path, files: list[Path]) -> list[Finding]:
    findings = []
    for path in files:
        rel = path.relative_to(root)
        mod = module_of(rel)
        if mod is None or mod not in MODULE_LAYERS:
            continue
        raw_text = path.read_text(encoding="utf-8")
        lines = raw_text.splitlines()
        # Match includes against comment-stripped text — a commented-out
        # include is not a dependency. strip_block_comments keeps newlines,
        # so indices stay aligned with the raw lines, which are still used
        # below to read the lint:allow suppression comments.
        code_lines = strip_block_comments(raw_text).splitlines()
        for idx, code in enumerate(code_lines):
            m = INCLUDE_RE.search(code.split("//", 1)[0])
            if m is None:
                continue
            dep = m.group(1)
            if dep == mod or dep not in MODULE_LAYERS:
                continue
            if MODULE_LAYERS[dep] < MODULE_LAYERS[mod]:
                continue
            if "layer-violation" in allowed_rules(lines, idx,
                                                  require_reason=True):
                continue
            relation = ("its own layer" if
                        MODULE_LAYERS[dep] == MODULE_LAYERS[mod]
                        else "a higher layer")
            findings.append(Finding(
                rel, idx + 1, "layer-violation",
                f"module '{mod}' (layer {MODULE_LAYERS[mod]}) includes "
                f"'{dep}' from {relation} (layer {MODULE_LAYERS[dep]}); "
                f"the module DAG is {LAYER_DAG}"))
    return findings


def apply_det_suppressions(root: Path, sites: list[Finding]) -> list[Finding]:
    out = []
    file_lines: dict[Path, list[str]] = {}
    seen: set[tuple[str, int, str]] = set()
    for f in sorted(sites, key=lambda f: (str(f.path), f.line, f.rule)):
        key = (str(f.path), f.line, f.rule)
        if key in seen:
            continue
        seen.add(key)
        lines = file_lines.setdefault(
            f.path, (root / f.path).read_text(encoding="utf-8").splitlines())
        idx = min(f.line, len(lines)) - 1
        if f.rule == "det-unordered-iter":
            why = det_justification(lines, idx)
            if why:
                continue
            if why == "":
                out.append(Finding(
                    f.path, f.line, f.rule,
                    "det:order-insensitive suppression carries no "
                    "justification — write why the iteration order cannot "
                    "reach any serialized output"))
                continue
        elif f.rule in allowed_rules(lines, idx, require_reason=True):
            continue
        out.append(f)
    return out


def run(root: Path, frontend_kind: str, compdb: Optional[Path],
        passes: set[str], dot_path: Optional[Path]) -> tuple[list[Finding],
                                                             str]:
    lib_files, layered_files = collect_files(root)
    findings: list[Finding] = []
    frontend_used = "none"

    if passes & {"det", "lock"}:
        frontend = None
        if frontend_kind in ("clang", "auto") and compdb is not None and \
                compdb.is_file():
            try:
                frontend = ClangFrontend(root, compdb)
            except ClangFrontendError:
                if frontend_kind == "clang":
                    raise
        elif frontend_kind == "clang":
            raise ClangFrontendError(
                "--frontend=clang needs a compile_commands.json "
                "(--build-dir/--compdb); configure the build first")
        if frontend is None:
            frontend = TextFrontend(root, lib_files)
        try:
            result = frontend.analyze()
        except ClangFrontendError:
            # analyze() can fail long after construction (fatal diagnostic,
            # stale compile_commands.json entry, deleted TU); auto degrades
            # to the text frontend exactly like a construction failure.
            if frontend_kind != "auto" or frontend.name != "clang":
                raise
            frontend = TextFrontend(root, lib_files)
            result = frontend.analyze()
        frontend_used = frontend.name
        if "det" in passes:
            findings.extend(apply_det_suppressions(root, result.det_sites))
        if "lock" in passes:
            graph = build_lock_graph(result)
            if dot_path is not None:
                dot_path.write_text(graph.to_dot())
            for cycle in graph.cycles():
                sites = []
                for a, b in zip(cycle, cycle[1:]):
                    sites.append(f"{a} -> {b} at {graph.edges[(a, b)][0]}")
                first_site = graph.edges[(cycle[0], cycle[1])][0]
                path_str, line_str = first_site.rsplit(":", 1)
                findings.append(Finding(
                    Path(path_str), int(line_str), "lock-cycle",
                    "lock-order cycle (potential deadlock): "
                    + "; ".join(sites)
                    + " — pick one global order and take the locks in it"))

    if "layer" in passes:
        findings.extend(layering_pass(root, layered_files))

    findings.sort(key=lambda f: (str(f.path), f.line, f.rule))
    return findings, frontend_used


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(
        prog="consentdb_analyze.py", add_help=True,
        description="determinism / lock-order / layering analyzer")
    ap.add_argument("--root", type=Path,
                    default=Path(__file__).resolve().parent.parent)
    ap.add_argument("--build-dir", type=Path, default=None,
                    help="build tree containing compile_commands.json")
    ap.add_argument("--compdb", type=Path, default=None,
                    help="explicit compile_commands.json path")
    ap.add_argument("--frontend", choices=("auto", "clang", "text"),
                    default="auto")
    ap.add_argument("--format", choices=("text", "json"), default="text")
    ap.add_argument("--dot", type=Path, default=None,
                    help="write the lock-order graph as Graphviz DOT")
    ap.add_argument("--passes", default="det,lock,layer",
                    help="comma-separated subset of det,lock,layer")
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args(argv[1:])

    if args.list_rules:
        print("\n".join(RULES))
        return 0
    root = args.root.resolve()
    if not (root / "src" / "consentdb").is_dir():
        print(f"consentdb-analyze: not a consentdb tree: {root}",
              file=sys.stderr)
        return 2
    passes = {p.strip() for p in args.passes.split(",") if p.strip()}
    unknown = passes - {"det", "lock", "layer"}
    if unknown:
        print(f"consentdb-analyze: unknown pass(es): {sorted(unknown)}",
              file=sys.stderr)
        return 2
    compdb = args.compdb
    if compdb is None and args.build_dir is not None:
        compdb = args.build_dir / "compile_commands.json"
    if compdb is None:
        default = root / "build" / "compile_commands.json"
        compdb = default if default.is_file() else None

    try:
        findings, frontend_used = run(root, args.frontend, compdb, passes,
                                      args.dot)
    except ClangFrontendError as e:
        print(f"consentdb-analyze: {e}", file=sys.stderr)
        return 2
    emit(findings, args.format)
    if findings:
        print(f"consentdb-analyze: {len(findings)} finding(s) "
              f"[frontend={frontend_used}]", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
