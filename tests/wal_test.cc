// consent/wal: WAL roundtrip and healing, group commit on virtual time,
// exhaustive damaged-tail recovery (truncation at every byte, a flip of
// every bit), compaction crash-safety, and the silence contract of ledger
// recovery. The concurrent suite (ConsentLedgerWalTest) runs under TSAN in
// CI: 8 sessions share one WAL-backed ledger through the SessionEngine.
//
// Everything runs on CrashingEnv (no real disk), so damage is exact and
// reproducible.

#include "consentdb/consent/wal.h"

#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "consentdb/consent/oracle.h"
#include "consentdb/consent/snapshot.h"
#include "consentdb/core/session_engine.h"
#include "consentdb/obs/metrics.h"
#include "consentdb/util/clock.h"
#include "consentdb/util/io.h"
#include "gtest/gtest.h"
#include "test_fixtures.h"

namespace consentdb::consent {
namespace {

using provenance::VarId;

using AnswerVec = std::vector<std::pair<VarId, bool>>;

std::unique_ptr<WalWriter> OpenOrDie(Env* env, const std::string& path,
                                     WalOptions options = {}) {
  Result<std::unique_ptr<WalWriter>> wal = WalWriter::Open(env, path, options);
  EXPECT_TRUE(wal.ok()) << wal.status().ToString();
  return std::move(wal.value());
}

TEST(WalTest, RoundtripInOrder) {
  CrashingEnv env;
  std::unique_ptr<WalWriter> wal = OpenOrDie(&env, "ledger.wal");
  ASSERT_TRUE(wal->AppendAnswer(3, true).ok());
  ASSERT_TRUE(wal->AppendAnswer(0, false).ok());
  ASSERT_TRUE(wal->AppendAnswer(7, true).ok());
  ASSERT_TRUE(wal->Close().ok());

  Result<WalReplay> replay = ReadWal(&env, "ledger.wal");
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay.value().records, 3u);
  EXPECT_FALSE(replay.value().torn_tail);
  EXPECT_FALSE(replay.value().corrupt_record);
  EXPECT_EQ(replay.value().bytes_dropped, 0u);
  AnswerVec expected = {{3, true}, {0, false}, {7, true}};
  EXPECT_EQ(replay.value().answers, expected);
}

TEST(WalTest, ReopenAppends) {
  CrashingEnv env;
  {
    std::unique_ptr<WalWriter> wal = OpenOrDie(&env, "ledger.wal");
    ASSERT_TRUE(wal->AppendAnswer(1, true).ok());
    ASSERT_TRUE(wal->Close().ok());
  }
  {
    std::unique_ptr<WalWriter> wal = OpenOrDie(&env, "ledger.wal");
    ASSERT_TRUE(wal->AppendAnswer(2, false).ok());
    ASSERT_TRUE(wal->Close().ok());
  }
  Result<WalReplay> replay = ReadWal(&env, "ledger.wal");
  ASSERT_TRUE(replay.ok());
  AnswerVec expected = {{1, true}, {2, false}};
  EXPECT_EQ(replay.value().answers, expected);
}

TEST(WalTest, MissingFileIsNotFound) {
  CrashingEnv env;
  EXPECT_EQ(ReadWal(&env, "nope.wal").status().code(), StatusCode::kNotFound);
}

TEST(WalTest, EmptyAndHeaderOnlyFiles) {
  CrashingEnv env;
  // Zero bytes: a crash before the magic made it out. Torn, zero records.
  ASSERT_TRUE(env.WriteStringToFile("empty.wal", "", false).ok());
  Result<WalReplay> replay = ReadWal(&env, "empty.wal");
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay.value().records, 0u);
  EXPECT_TRUE(replay.value().torn_tail);

  // Just the magic: a valid empty log.
  std::unique_ptr<WalWriter> wal = OpenOrDie(&env, "header.wal");
  ASSERT_TRUE(wal->Close().ok());
  replay = ReadWal(&env, "header.wal");
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay.value().records, 0u);
  EXPECT_FALSE(replay.value().torn_tail);
  EXPECT_FALSE(replay.value().corrupt_record);
}

TEST(WalTest, NonWalFileIsInvalidArgument) {
  CrashingEnv env;
  ASSERT_TRUE(
      env.WriteStringToFile("not.wal", "totally different format v2\n...",
                            false).ok());
  EXPECT_EQ(ReadWal(&env, "not.wal").status().code(),
            StatusCode::kInvalidArgument);
}

// Cutting the file at EVERY byte offset must yield the longest clean prefix
// of records — never an error, never a wrong answer, never a spurious extra
// record.
TEST(WalTest, TruncationAtEveryByteRecoversCleanPrefix) {
  CrashingEnv env;
  const AnswerVec written = {{5, true}, {2, false}, {9, true}, {4, false}};
  std::unique_ptr<WalWriter> wal = OpenOrDie(&env, "ledger.wal");
  // Record the file size after the header and after each append: those are
  // the clean boundaries a cut can land on.
  std::vector<size_t> boundaries;
  Result<std::string> full = env.ReadFileToString("ledger.wal");
  ASSERT_TRUE(full.ok());
  boundaries.push_back(full.value().size());
  for (const auto& [x, a] : written) {
    ASSERT_TRUE(wal->AppendAnswer(x, a).ok());
    full = env.ReadFileToString("ledger.wal");
    ASSERT_TRUE(full.ok());
    boundaries.push_back(full.value().size());
  }
  ASSERT_TRUE(wal->Close().ok());
  full = env.ReadFileToString("ledger.wal");
  ASSERT_TRUE(full.ok());
  const std::string bytes = full.value();

  for (size_t cut = 0; cut <= bytes.size(); ++cut) {
    ASSERT_TRUE(
        env.WriteStringToFile("cut.wal", bytes.substr(0, cut), false).ok());
    Result<WalReplay> replay = ReadWal(&env, "cut.wal");
    ASSERT_TRUE(replay.ok()) << "cut at " << cut << ": "
                             << replay.status().ToString();
    // How many records fit entirely below the cut?
    size_t complete = 0;
    while (complete + 1 < boundaries.size() &&
           boundaries[complete + 1] <= cut) {
      ++complete;
    }
    EXPECT_EQ(replay.value().records, complete) << "cut at " << cut;
    AnswerVec expected(written.begin(), written.begin() + complete);
    EXPECT_EQ(replay.value().answers, expected) << "cut at " << cut;
    const bool clean_boundary =
        cut == bytes.size() ||
        (cut >= boundaries.front() && boundaries[complete] == cut);
    EXPECT_EQ(replay.value().torn_tail, !clean_boundary) << "cut at " << cut;
    EXPECT_FALSE(replay.value().corrupt_record) << "cut at " << cut;
  }
}

// Flipping ANY single bit of the file must never fabricate a wrong answer:
// the replay either stops at the damaged record (prefix intact) or the
// whole file is rejected (magic damage).
TEST(WalTest, BitFlipAtEveryPositionNeverFabricatesAnswers) {
  CrashingEnv env;
  const AnswerVec written = {{1, true}, {6, false}, {3, true}};
  std::unique_ptr<WalWriter> wal = OpenOrDie(&env, "ledger.wal");
  for (const auto& [x, a] : written) {
    ASSERT_TRUE(wal->AppendAnswer(x, a).ok());
  }
  ASSERT_TRUE(wal->Close().ok());
  Result<std::string> full = env.ReadFileToString("ledger.wal");
  ASSERT_TRUE(full.ok());
  const std::string bytes = full.value();

  for (size_t bit = 0; bit < bytes.size() * 8; ++bit) {
    std::string mutated = bytes;
    mutated[bit / 8] = static_cast<char>(mutated[bit / 8] ^ (1 << (bit % 8)));
    ASSERT_TRUE(env.WriteStringToFile("flip.wal", mutated, false).ok());
    Result<WalReplay> replay = ReadWal(&env, "flip.wal");
    if (!replay.ok()) {
      // Only magic damage may reject the file outright.
      EXPECT_LT(bit / 8, size_t{16}) << "bit " << bit;
      continue;
    }
    // Every replayed answer must be a prefix of what was written.
    ASSERT_LE(replay.value().answers.size(), written.size()) << "bit " << bit;
    for (size_t i = 0; i < replay.value().answers.size(); ++i) {
      EXPECT_EQ(replay.value().answers[i], written[i]) << "bit " << bit;
    }
    // Damage past the magic loses at most the records from the damaged one
    // on, and is reported.
    if (replay.value().answers.size() < written.size()) {
      EXPECT_TRUE(replay.value().corrupt_record || replay.value().torn_tail)
          << "bit " << bit;
    }
  }
}

TEST(WalTest, OpenHealsATornTail) {
  CrashingEnv env;
  {
    std::unique_ptr<WalWriter> wal = OpenOrDie(&env, "ledger.wal");
    ASSERT_TRUE(wal->AppendAnswer(1, true).ok());
    ASSERT_TRUE(wal->AppendAnswer(2, false).ok());
    ASSERT_TRUE(wal->Close().ok());
  }
  // Tear the final record by hand.
  Result<std::string> full = env.ReadFileToString("ledger.wal");
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(env.WriteStringToFile(
      "ledger.wal", full.value().substr(0, full.value().size() - 3),
      false).ok());
  // Re-open: the torn record is excised, the clean prefix stays, and new
  // appends land after it.
  {
    std::unique_ptr<WalWriter> wal = OpenOrDie(&env, "ledger.wal");
    ASSERT_TRUE(wal->AppendAnswer(3, true).ok());
    ASSERT_TRUE(wal->Close().ok());
  }
  Result<WalReplay> replay = ReadWal(&env, "ledger.wal");
  ASSERT_TRUE(replay.ok());
  AnswerVec expected = {{1, true}, {3, true}};
  EXPECT_EQ(replay.value().answers, expected);
  EXPECT_FALSE(replay.value().torn_tail);
}

TEST(WalTest, GroupCommitBatchesSyncsOnTheClock) {
  CrashingEnv env;
  VirtualClock clock;
  WalOptions options;
  options.group_commit_window_nanos = 1'000'000;  // 1ms
  options.clock = &clock;
  std::unique_ptr<WalWriter> wal = OpenOrDie(&env, "ledger.wal", options);
  const uint64_t syncs_after_open = wal->syncs();

  // Within the window: appends buffer, no fsync.
  ASSERT_TRUE(wal->AppendAnswer(1, true).ok());
  ASSERT_TRUE(wal->AppendAnswer(2, true).ok());
  EXPECT_EQ(wal->syncs(), syncs_after_open);
  EXPECT_EQ(wal->pending_records(), 2u);

  // Window elapses: the next append carries the batch to disk.
  clock.Advance(2'000'000);
  ASSERT_TRUE(wal->AppendAnswer(3, true).ok());
  EXPECT_EQ(wal->syncs(), syncs_after_open + 1);
  EXPECT_EQ(wal->pending_records(), 0u);

  // A power cut now loses nothing: all three records were fsynced.
  CrashPlan plan;
  plan.crash_at_append = 1;
  plan.power_loss = true;
  env.set_plan(plan);
  EXPECT_THROW((void)wal->AppendAnswer(4, true), CrashInjected);
  env.Restart();
  Result<WalReplay> replay = ReadWal(&env, "ledger.wal");
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay.value().records, 3u);
}

TEST(WalTest, WindowZeroSyncsEveryAppend) {
  CrashingEnv env;
  std::unique_ptr<WalWriter> wal = OpenOrDie(&env, "ledger.wal");
  const uint64_t base = wal->syncs();
  ASSERT_TRUE(wal->AppendAnswer(1, true).ok());
  ASSERT_TRUE(wal->AppendAnswer(2, true).ok());
  EXPECT_EQ(wal->syncs(), base + 2);
  EXPECT_EQ(wal->pending_records(), 0u);
}

TEST(WalTest, CompactionMovesAnswersToSnapshotAndResetsLog) {
  CrashingEnv env;
  std::unique_ptr<WalWriter> wal = OpenOrDie(&env, "ledger.wal");
  ASSERT_TRUE(wal->AppendAnswer(1, true).ok());
  ASSERT_TRUE(wal->AppendAnswer(2, false).ok());
  ASSERT_TRUE(wal->CompactTo({{1, true}, {2, false}}).ok());
  ASSERT_TRUE(wal->AppendAnswer(3, true).ok());
  ASSERT_TRUE(wal->Close().ok());

  // The log holds only post-compaction records...
  Result<WalReplay> replay = ReadWal(&env, "ledger.wal");
  ASSERT_TRUE(replay.ok());
  AnswerVec tail = {{3, true}};
  EXPECT_EQ(replay.value().answers, tail);
  // ...and the sidecar holds the compacted set.
  Result<std::string> snap =
      env.ReadFileToString(WalSnapshotPath("ledger.wal"));
  ASSERT_TRUE(snap.ok());
  Result<AnswerVec> restored = LoadLedgerSnapshot(snap.value());
  ASSERT_TRUE(restored.ok());
  AnswerVec compacted = {{1, true}, {2, false}};
  EXPECT_EQ(restored.value(), compacted);
}

// A crash at any append/sync during compaction leaves a recoverable pair of
// files: recovery always reproduces the full answer set.
TEST(WalTest, CrashDuringCompactionIsRecoverable) {
  const AnswerVec all = {{1, true}, {2, false}, {3, true}};
  for (uint64_t crash_at = 1; crash_at <= 6; ++crash_at) {
    for (bool power_loss : {false, true}) {
      CrashingEnv env;
      std::unique_ptr<WalWriter> wal = OpenOrDie(&env, "ledger.wal");
      for (const auto& [x, a] : all) {
        ASSERT_TRUE(wal->AppendAnswer(x, a).ok());
      }
      CrashPlan plan;
      plan.crash_at_append = crash_at;
      plan.power_loss = power_loss;
      env.set_plan(plan);
      bool crashed = false;
      try {
        Status status = wal->CompactTo(all);
        // Compaction may also surface the crash as a Status (when the
        // injected point hits a non-append op inside); both are fine as
        // long as recovery below works.
        crashed = !status.ok();
      } catch (const CrashInjected&) {
        crashed = true;
      }
      env.Restart();
      ConsentLedger ledger;
      Result<RecoveryStats> stats =
          RecoverLedger(&env, "ledger.wal", &ledger);
      ASSERT_TRUE(stats.ok())
          << "crash_at=" << crash_at << " power_loss=" << power_loss << ": "
          << stats.status().ToString();
      for (const auto& [x, a] : all) {
        std::optional<bool> got = ledger.Lookup(x);
        if (!crashed && !got.has_value()) continue;  // plan never fired
        ASSERT_TRUE(got.has_value())
            << "crash_at=" << crash_at << " power_loss=" << power_loss
            << " var=" << x;
        EXPECT_EQ(*got, a) << "crash_at=" << crash_at << " var=" << x;
      }
    }
  }
}

// --- RecoverLedger ----------------------------------------------------------

TEST(ConsentLedgerWalTest, JournalsEveryRecordedAnswer) {
  CrashingEnv env;
  std::unique_ptr<WalWriter> wal = OpenOrDie(&env, "ledger.wal");
  ConsentLedger ledger;
  ledger.AttachJournal(wal.get());
  ReplayOracle oracle({{0, true}, {4, false}});
  EXPECT_TRUE(ledger.ProbeVia(oracle, 0));
  EXPECT_FALSE(ledger.ProbeVia(oracle, 4));
  EXPECT_TRUE(ledger.ProbeVia(oracle, 0));  // ledger hit: not re-journaled
  ASSERT_TRUE(ledger.journal_error().ok());
  ASSERT_TRUE(wal->Sync().ok());

  Result<WalReplay> replay = ReadWal(&env, "ledger.wal");
  ASSERT_TRUE(replay.ok());
  AnswerVec expected = {{0, true}, {4, false}};
  EXPECT_EQ(replay.value().answers, expected);
}

TEST(ConsentLedgerWalTest, RecoveryIsObservationallySilent) {
  CrashingEnv env;
  {
    std::unique_ptr<WalWriter> wal = OpenOrDie(&env, "ledger.wal");
    ASSERT_TRUE(wal->AppendAnswer(0, true).ok());
    ASSERT_TRUE(wal->AppendAnswer(1, false).ok());
    ASSERT_TRUE(wal->Close().ok());
  }
  obs::MetricsRegistry metrics;
  ConsentLedger ledger;
  Result<RecoveryStats> stats =
      RecoverLedger(&env, "ledger.wal", &ledger, &metrics);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().recovered_answers, 2u);
  EXPECT_EQ(stats.value().wal_records, 2u);

  // The ledger answers recovered variables without any oracle, and the
  // replay moved none of the probe-path tallies.
  EXPECT_EQ(ledger.restored_answers(), 2u);
  EXPECT_EQ(ledger.hits(), 0u);
  EXPECT_EQ(ledger.oracle_probes(), 0u);
  EXPECT_EQ(ledger.Lookup(0), std::optional<bool>(true));
  EXPECT_EQ(ledger.Lookup(1), std::optional<bool>(false));

  // Only recovery.* (and possibly wal.*) metrics exist — no session.*,
  // probe.*, retry.* or strategy.* signal may fire during replay.
  const std::string exported = metrics.ExportText();
  std::istringstream lines(exported);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    EXPECT_TRUE(line.rfind("recovery.", 0) == 0 || line.rfind("wal.", 0) == 0)
        << "unexpected metric during recovery: " << line;
  }
}

TEST(ConsentLedgerWalTest, RecoveryOfMissingFilesIsEmpty) {
  CrashingEnv env;
  ConsentLedger ledger;
  Result<RecoveryStats> stats = RecoverLedger(&env, "fresh.wal", &ledger);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().recovered_answers, 0u);
  EXPECT_EQ(ledger.size(), 0u);
}

TEST(ConsentLedgerWalTest, ConflictingJournaledAnswersAreInternal) {
  CrashingEnv env;
  ConsentLedger ledger;
  ASSERT_TRUE(ledger.RestoreAnswer(3, true).ok());
  ASSERT_TRUE(ledger.RestoreAnswer(3, true).ok());  // idempotent
  Status conflict = ledger.RestoreAnswer(3, false);
  EXPECT_EQ(conflict.code(), StatusCode::kInternal);
  EXPECT_EQ(ledger.restored_answers(), 1u);
}

TEST(ConsentLedgerWalTest, SnapshotPlusTailReplay) {
  CrashingEnv env;
  {
    std::unique_ptr<WalWriter> wal = OpenOrDie(&env, "ledger.wal");
    ASSERT_TRUE(wal->AppendAnswer(0, true).ok());
    ASSERT_TRUE(wal->AppendAnswer(1, true).ok());
    ASSERT_TRUE(wal->CompactTo({{0, true}, {1, true}}).ok());
    ASSERT_TRUE(wal->AppendAnswer(2, false).ok());
    ASSERT_TRUE(wal->Close().ok());
  }
  ConsentLedger ledger;
  Result<RecoveryStats> stats = RecoverLedger(&env, "ledger.wal", &ledger);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().snapshot_answers, 2u);
  EXPECT_EQ(stats.value().wal_records, 1u);
  EXPECT_EQ(stats.value().recovered_answers, 3u);
  EXPECT_EQ(ledger.Lookup(2), std::optional<bool>(false));
}

// 8 concurrent sessions share one WAL-backed ledger through the engine;
// afterwards a recovered ledger holds exactly the journaled answers. Runs
// under TSAN in CI (suite name matches the TSAN ctest filter).
TEST(ConsentLedgerWalTest, ConcurrentSessionsShareOneJournaledLedger) {
  CrashingEnv env;
  std::unique_ptr<WalWriter> wal = OpenOrDie(&env, "ledger.wal");

  consent::SharedDatabase sdb = testing::RecruitmentDatabase();
  provenance::PartialValuation hidden;
  for (VarId x = 0; x < sdb.pool().size(); ++x) {
    hidden.Set(x, (x * 7 + 1) % 3 != 0);
  }

  {
    core::EngineOptions options;
    options.num_threads = 8;
    options.wal = wal.get();
    core::SessionEngine engine(sdb, options);
    std::vector<std::unique_ptr<ValuationOracle>> oracles;
    std::vector<core::SessionRequest> requests;
    for (int i = 0; i < 8; ++i) {
      oracles.push_back(std::make_unique<ValuationOracle>(hidden));
      core::SessionRequest request;
      request.sql = testing::RecruitmentQuerySql();
      request.oracle = oracles.back().get();
      requests.push_back(std::move(request));
    }
    std::vector<Result<core::SessionReport>> results =
        engine.RunAll(std::move(requests));
    for (const Result<core::SessionReport>& r : results) {
      ASSERT_TRUE(r.ok()) << r.status().ToString();
    }
    ASSERT_TRUE(engine.ledger().journal_error().ok());

    // Recover from the journal into a fresh ledger: it must hold exactly
    // the engine ledger's answers.
    ASSERT_TRUE(wal->Sync().ok());
    ConsentLedger recovered;
    Result<RecoveryStats> stats =
        RecoverLedger(&env, "ledger.wal", &recovered);
    ASSERT_TRUE(stats.ok());
    AnswerVec original = engine.ledger().Answers();
    EXPECT_EQ(recovered.Answers(), original);
    EXPECT_GT(original.size(), 0u);
  }
  ASSERT_TRUE(wal->Close().ok());
}

}  // namespace
}  // namespace consentdb::consent
