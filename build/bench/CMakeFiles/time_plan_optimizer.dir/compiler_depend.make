# Empty compiler generated dependencies file for time_plan_optimizer.
# This may be replaced when dependencies are built.
