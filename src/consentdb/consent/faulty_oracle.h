// FaultyOracle: deterministic unreliable-peer simulation.
//
// The paper assumes every probed peer answers instantly and truthfully; a
// production consent broker must keep deciding when peers are slow, flaky,
// or gone. FaultyOracle decorates any ProbeOracle with faults drawn from a
// declarative FaultPlan, keyed by the owning peer of each variable:
//
//   * latency            — every attempt advances the injected Clock by a
//                          fixed per-peer delay (virtual time: no sleeping);
//   * transient failures — an attempt fails with probability p; a retry of
//                          the same variable may succeed;
//   * permanent unavailability — every attempt fails, forever;
//   * crash-after-answer — the peer answers its first k probes and then
//                          becomes permanently unavailable.
//
// Determinism: whether the n-th attempt at variable x faults is a pure
// function of (plan.seed, x, n) — a hash, not a shared RNG stream — so the
// schedule is identical under any thread interleaving and any probing
// order. Same seed, same per-variable attempt sequence, same faults.
//
// Thread-safe: attempts are serialized under an internal mutex (the backing
// oracle therefore need not be thread-safe). Inject a VirtualClock when
// simulating latency from concurrent sessions — the lock is held across the
// clock call.

#ifndef CONSENTDB_CONSENT_FAULTY_ORACLE_H_
#define CONSENTDB_CONSENT_FAULTY_ORACLE_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "consentdb/consent/oracle.h"
#include "consentdb/consent/variable_pool.h"
#include "consentdb/util/clock.h"
#include "consentdb/util/thread_annotations.h"

namespace consentdb::consent {

// The fault profile of one peer. The zero value is a perfectly reliable
// peer.
struct PeerFaults {
  // Probability that a single attempt fails transiently.
  double transient_failure_prob = 0.0;
  // Injected round-trip delay per attempt (requires a Clock).
  int64_t latency_nanos = 0;
  // The peer never answers (every attempt faults kUnavailable).
  bool permanently_unavailable = false;
  // After this many successful answers the peer crashes and becomes
  // permanently unavailable; 0 = never.
  size_t crash_after_answers = 0;

  bool faultless() const {
    return transient_failure_prob <= 0.0 && latency_nanos <= 0 &&
           !permanently_unavailable && crash_after_answers == 0;
  }
};

// Declarative fault configuration: a default profile plus per-peer
// overrides (keyed by VariablePool owner). `seed` drives the deterministic
// transient-fault schedule.
struct FaultPlan {
  uint64_t seed = 0;
  PeerFaults defaults;
  std::map<std::string, PeerFaults> per_peer;

  // True when no configured profile can ever fault or delay — the plan
  // under which FaultyOracle is a transparent pass-through.
  bool empty() const;
  const PeerFaults& For(const std::string& owner) const;
};

class FaultyOracle : public ProbeOracle {
 public:
  // `backing` answers the probes that get through; `pool` maps variables to
  // their owning peers; `clock` receives the latency (null = latency is not
  // simulated). All three must outlive the oracle.
  FaultyOracle(ProbeOracle& backing, const VariablePool& pool, FaultPlan plan,
               Clock* clock = nullptr);

  // One attempt: latency, then the fault schedule, then the backing oracle.
  ProbeAttempt TryProbe(VarId x) override EXCLUDES(mu_);

  // Infallible interface for legacy (non-resilient) probing paths: fails
  // loudly if the attempt faults. With an empty plan this never fires and
  // the oracle is byte-identical to its backing.
  bool Probe(VarId x) override;

  // Successful answers delivered (the paper's cost model counts only these).
  size_t probe_count() const override EXCLUDES(mu_);

  struct Stats {
    uint64_t attempts = 0;
    uint64_t successes = 0;
    uint64_t transient_faults = 0;
    uint64_t unavailable_faults = 0;
    size_t crashed_peers = 0;
  };
  Stats stats() const EXCLUDES(mu_);

  // Attempts made at variable x so far (the fault-schedule index).
  size_t attempts_for(VarId x) const EXCLUDES(mu_);

  const FaultPlan& plan() const { return plan_; }

 private:
  ProbeOracle& backing_;
  const VariablePool& pool_;
  const FaultPlan plan_;
  Clock* const clock_;

  // mu_ serializes attempts end to end (schedule bookkeeping + the backing
  // oracle call), mirroring ConsentLedger's discipline.
  mutable Mutex mu_;
  std::unordered_map<VarId, size_t> attempts_ GUARDED_BY(mu_);
  std::unordered_map<std::string, size_t> peer_answers_ GUARDED_BY(mu_);
  std::unordered_set<std::string> crashed_ GUARDED_BY(mu_);
  Stats stats_ GUARDED_BY(mu_);
};

}  // namespace consentdb::consent

#endif  // CONSENTDB_CONSENT_FAULTY_ORACLE_H_
