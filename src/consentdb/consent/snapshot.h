// Snapshots: serialise a SharedDatabase — relations, tuples, owners, consent
// priors and block structure — to a single text stream and load it back.
//
// Format (line-oriented; rows and annotation records are CSV):
//
//   consentdb-snapshot 1
//   relation <name>
//   columns <n>
//   <col-name>,<TYPE>            (n lines)
//   rows <m>
//   <csv row>                    (m lines)
//   annotations
//   <var-id>,<owner>,<prior>     (m lines, aligned with the rows)
//   end
//   ...                          (further relations)
//
// Variable ids are renumbered densely on load; the ids in the file only
// encode which tuples share one consent variable (block annotations).

#ifndef CONSENTDB_CONSENT_SNAPSHOT_H_
#define CONSENTDB_CONSENT_SNAPSHOT_H_

#include <istream>
#include <ostream>
#include <string>

#include "consentdb/consent/shared_database.h"
#include "consentdb/util/result.h"

namespace consentdb::consent {

void SaveSnapshot(const SharedDatabase& sdb, std::ostream& out);
std::string SaveSnapshot(const SharedDatabase& sdb);

[[nodiscard]] Result<SharedDatabase> LoadSnapshot(std::istream& in);
[[nodiscard]] Result<SharedDatabase> LoadSnapshot(const std::string& text);

}  // namespace consentdb::consent

#endif  // CONSENTDB_CONSENT_SNAPSHOT_H_
