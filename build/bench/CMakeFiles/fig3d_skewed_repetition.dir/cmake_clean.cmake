file(REMOVE_RECURSE
  "CMakeFiles/fig3d_skewed_repetition.dir/fig3d_skewed_repetition.cc.o"
  "CMakeFiles/fig3d_skewed_repetition.dir/fig3d_skewed_repetition.cc.o.d"
  "fig3d_skewed_repetition"
  "fig3d_skewed_repetition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3d_skewed_repetition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
