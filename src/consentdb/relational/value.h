// Typed scalar values for the relational substrate.
//
// ConsentDB relations hold values of four primitive types (int64, double,
// string, bool) plus NULL. Values order and hash across the whole domain so
// they can key hash joins and set-semantics deduplication.

#ifndef CONSENTDB_RELATIONAL_VALUE_H_
#define CONSENTDB_RELATIONAL_VALUE_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <variant>

namespace consentdb::relational {

// The type of a column or value. kNull is the type of the NULL literal only;
// columns are declared with one of the other types.
enum class ValueType {
  kNull = 0,
  kInt64,
  kDouble,
  kString,
  kBool,
};

const char* ValueTypeToString(ValueType type);

// An immutable scalar. Comparison between different types orders by type tag
// (so heterogeneous containers are well-ordered); equality across types is
// always false except NULL==NULL, which is true — consent bookkeeping needs
// set semantics, not SQL's three-valued NULL comparisons (see DESIGN.md).
class Value {
 public:
  Value() : data_(std::monostate{}) {}  // NULL
  Value(int64_t v) : data_(v) {}        // NOLINT: implicit by design
  Value(int v) : data_(static_cast<int64_t>(v)) {}  // NOLINT
  Value(double v) : data_(v) {}                     // NOLINT
  Value(std::string v) : data_(std::move(v)) {}     // NOLINT
  Value(const char* v) : data_(std::string(v)) {}   // NOLINT
  Value(bool v) : data_(v) {}                       // NOLINT

  static Value Null() { return Value(); }

  ValueType type() const;
  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }

  // Typed accessors; calling the wrong one is a checked programmer error.
  int64_t AsInt64() const;
  double AsDouble() const;
  const std::string& AsString() const;
  bool AsBool() const;

  // Numeric view: int64 and double both convert; anything else is an error.
  double AsNumeric() const;

  // Renders e.g. 42, 3.5, 'text', true, NULL.
  std::string ToString() const;

  size_t Hash() const;

  friend bool operator==(const Value& a, const Value& b);
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }
  friend bool operator<(const Value& a, const Value& b);
  friend bool operator<=(const Value& a, const Value& b) { return !(b < a); }
  friend bool operator>(const Value& a, const Value& b) { return b < a; }
  friend bool operator>=(const Value& a, const Value& b) { return !(a < b); }

 private:
  std::variant<std::monostate, int64_t, double, std::string, bool> data_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

}  // namespace consentdb::relational

template <>
struct std::hash<consentdb::relational::Value> {
  size_t operator()(const consentdb::relational::Value& v) const {
    return v.Hash();
  }
};

#endif  // CONSENTDB_RELATIONAL_VALUE_H_
