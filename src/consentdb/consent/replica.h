// Read replicas for the (sharded) consent ledger: followers tail the
// leader's WAL files through the injectable Env — the same byte stream the
// leader fsyncs is the replication stream, no separate protocol — into an
// eventually-consistent, read-only answer view.
//
// WalFollower tails one shard's log: each Poll() re-reads the file and
// parses only the bytes appended since the last poll (a byte-offset
// incremental tail). Whenever the incremental parse cannot proceed — the
// file shrank or was rewritten (compaction, tail healing), the tail bytes
// are damaged, or this is the first poll — the follower falls back to a
// full resync: snapshot sidecar plus the whole log, applied idempotently.
// Because consent answers are per-variable facts, a follower never unlearns
// an answer: records the leader loses to a power cut stay valid here (the
// peer really did answer), and a genuine conflict between what the follower
// knows and what the stream says is surfaced as Internal — that is
// split-brain or corruption, never normal operation.
//
// LedgerReplica bundles one follower per shard with the deterministic
// merge order recovery uses (shard-id order) and the failover path:
// CutOver() does a final catch-up, verifies the followers agree on one
// (num_shards, generation) shard set — rejecting mixed-generation sets the
// same way cross-shard recovery does — and emits the merged answers plus
// the next generation number for stamping the new leader's WAL set.
//
// Followers are crash-free state: they hold no durable files, so "follower
// crash" is simply destruction; a fresh follower over the same paths
// resyncs to an identical view (property-tested in the crash grid).

#ifndef CONSENTDB_CONSENT_REPLICA_H_
#define CONSENTDB_CONSENT_REPLICA_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "consentdb/consent/variable_pool.h"
#include "consentdb/consent/wal.h"
#include "consentdb/util/io.h"
#include "consentdb/util/result.h"
#include "consentdb/util/thread_annotations.h"

namespace consentdb::consent {

// Tails one WAL file into an in-memory answer map. Thread-safe: polls and
// reads may interleave freely.
class WalFollower {
 public:
  // `env` must outlive the follower. A missing file is not an error — the
  // leader may not have created this shard's log yet.
  WalFollower(Env* env, std::string wal_path);

  // Catches up on everything the leader has made visible in the file so
  // far. Returns the first apply conflict or I/O error; safe to call again
  // after either.
  [[nodiscard]] Status Poll() EXCLUDES(mu_);

  // The replicated answer, if this follower has seen one for `x`.
  std::optional<bool> Lookup(VarId x) const EXCLUDES(mu_);

  // Sorted copy of every replicated answer.
  std::vector<std::pair<VarId, bool>> Answers() const EXCLUDES(mu_);

  size_t size() const EXCLUDES(mu_);

  // The shard header of the tailed log, once one has been seen.
  std::optional<WalShardInfo> shard() const EXCLUDES(mu_);

  const std::string& wal_path() const { return path_; }

  // Telemetry: polls made, answers newly learned, full resyncs taken
  // (first catch-up excluded — only genuine fallbacks count).
  uint64_t polls() const EXCLUDES(mu_);
  uint64_t applied_answers() const EXCLUDES(mu_);
  uint64_t resyncs() const EXCLUDES(mu_);

 private:
  [[nodiscard]] Status ResyncLocked(const std::string& content,
                                    const std::string& snapshot)
      REQUIRES(mu_);
  [[nodiscard]] Status ApplyLocked(VarId x, bool answer) REQUIRES(mu_);

  Env* const env_;
  const std::string path_;

  mutable Mutex mu_;
  std::unordered_map<VarId, bool> answers_ GUARDED_BY(mu_);
  // Bytes of the log consumed so far (always a record boundary); the next
  // incremental poll parses from here.
  size_t offset_ GUARDED_BY(mu_) = 0;
  bool synced_once_ GUARDED_BY(mu_) = false;
  // Sidecar bytes the current view already includes: compaction changes the
  // sidecar without growing the log (it *resets* it to header-only bytes,
  // exactly as long as what was already consumed), so sidecar drift — not
  // just log shrinkage — must trigger a resync.
  std::string snapshot_applied_ GUARDED_BY(mu_);
  std::optional<WalShardInfo> shard_ GUARDED_BY(mu_);
  uint64_t polls_ GUARDED_BY(mu_) = 0;
  uint64_t applied_ GUARDED_BY(mu_) = 0;
  uint64_t resyncs_ GUARDED_BY(mu_) = 0;
};

// One follower per shard of a sharded log set (ShardWalPath(base, k)),
// polled and merged in shard-id order.
class LedgerReplica {
 public:
  LedgerReplica(Env* env, const std::string& base_path, size_t num_shards);

  size_t num_shards() const { return followers_.size(); }
  WalFollower& follower(size_t i) { return *followers_[i]; }
  const WalFollower& follower(size_t i) const { return *followers_[i]; }

  // Polls every follower in shard-id order; first error wins (the
  // remaining shards are still polled so one bad shard cannot starve the
  // others' freshness).
  [[nodiscard]] Status Poll();

  // Read path: routed by the same stable hash the leader shards by.
  std::optional<bool> Lookup(VarId x) const;
  size_t size() const;

  // All shards' answers merged and sorted; a variable claimed by two
  // shards with different answers is Internal (only possible with a
  // mis-assembled set — partitions are disjoint by construction).
  [[nodiscard]] Result<std::vector<std::pair<VarId, bool>>> Answers() const;

  // Failover: the merged state a new leader starts from.
  struct Cutover {
    // Generation to stamp the new leader's WAL set with: one past the
    // generation this replica was following.
    uint64_t next_generation = 1;
    std::vector<std::pair<VarId, bool>> answers;
  };

  // Final catch-up poll, then verifies every follower that has seen a
  // header agrees on one (num_shards, generation) set — a mixed set means
  // the source logs are not one coherent leader and is rejected — and
  // returns the merged answers. The replica remains usable afterwards.
  [[nodiscard]] Result<Cutover> CutOver();

 private:
  std::vector<std::unique_ptr<WalFollower>> followers_;
};

}  // namespace consentdb::consent

#endif  // CONSENTDB_CONSENT_REPLICA_H_
