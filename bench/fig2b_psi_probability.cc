// Figure 2b: number of probes on the psi-dataset (psi_6, 382 variables) for
// varying consent probabilities.
//
// Expected shape (Fig. 2b): Q-value/General track the optimal closely at
// all probabilities; RO degrades as the probability decreases (it ignores
// variable frequencies, so it is weak at proving False); Freq degrades as
// the probability increases (weak at proving True); Random is far off
// everywhere.

#include "bench_common.h"
#include "consentdb/datasets/psi.h"

using namespace consentdb;
using bench::NamedStrategy;
using datasets::BuildPsi;
using datasets::PsiDnf;
using datasets::PsiFormula;

int main() {
  const size_t base_reps = bench::RepsFromEnv(10);
  const int level = 6;  // the paper's default: 382 distinct variables
  std::cout << "=== Fig. 2b: psi-dataset (psi_" << level
            << "), probes vs probability (reps = " << base_reps << ") ===\n\n";

  std::vector<NamedStrategy> strategies = bench::PaperStrategies(/*seed=*/102);
  std::vector<std::string> columns = {"probability", "Optimal"};
  for (const NamedStrategy& s : strategies) columns.push_back(s.name);
  bench::Table table(columns);
  table.PrintHeader();

  for (double p : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}) {
    consent::VariablePool pool;
    PsiFormula psi = BuildPsi(level, pool, p);
    std::vector<provenance::Dnf> dnfs = {PsiDnf(psi)};
    std::vector<double> pi = pool.Probabilities();
    std::vector<provenance::Cnf> cnfs = {*provenance::DnfToCnf(dnfs[0])};

    std::vector<std::string> cells;
    uint64_t seed = 600 + static_cast<uint64_t>(p * 10);
    {
      strategy::EstimateOptions options;
      options.reps = base_reps;
      options.seed = seed;
      cells.push_back(bench::FormatMean(
          strategy::EstimateExpectedCost(
              dnfs, pi, datasets::MakePsiOptimalFactory(psi), options)
              .mean));
    }
    for (const NamedStrategy& s : strategies) {
      strategy::EstimateOptions options;
      options.reps = base_reps * s.reps_multiplier;
      options.seed = seed;
      if (s.needs_cnfs) options.precomputed_cnfs = &cnfs;
      cells.push_back(bench::FormatMean(
          strategy::EstimateExpectedCost(dnfs, pi, s.factory, options).mean));
    }
    table.PrintRow(bench::FormatMean(p), cells);
  }
  std::cout << "\nexpected shape: RO degrades at low probabilities, Freq at "
               "high ones;\nQ-value and General stay close to Optimal "
               "throughout.\n";
  return 0;
}
