#include "consentdb/eval/annotated_relation.h"

#include "consentdb/util/check.h"

namespace consentdb::eval {

using provenance::BoolExpr;
using provenance::BoolExprPtr;
using relational::Relation;
using relational::Tuple;

const Tuple& AnnotatedRelation::tuple(size_t i) const {
  CONSENTDB_CHECK(i < tuples_.size(), "tuple index out of range");
  return tuples_[i];
}

const BoolExprPtr& AnnotatedRelation::annotation(size_t i) const {
  CONSENTDB_CHECK(i < annotations_.size(), "tuple index out of range");
  return annotations_[i];
}

void AnnotatedRelation::Insert(Tuple t, BoolExprPtr annotation) {
  CONSENTDB_CHECK(annotation != nullptr, "null annotation");
  auto [it, inserted] = index_.try_emplace(t, tuples_.size());
  if (inserted) {
    tuples_.push_back(std::move(t));
    annotations_.push_back(std::move(annotation));
  } else {
    annotations_[it->second] =
        BoolExpr::Or(annotations_[it->second], std::move(annotation));
  }
}

std::optional<size_t> AnnotatedRelation::IndexOf(const Tuple& t) const {
  auto it = index_.find(t);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

Relation AnnotatedRelation::ToRelation() const {
  Relation rel(schema_);
  for (const Tuple& t : tuples_) rel.InsertOrDie(t);
  return rel;
}

Relation AnnotatedRelation::ShareableFragment(
    const provenance::PartialValuation& val) const {
  Relation rel(schema_);
  for (size_t i = 0; i < tuples_.size(); ++i) {
    if (annotations_[i]->Evaluate(val) == provenance::Truth::kTrue) {
      rel.InsertOrDie(tuples_[i]);
    }
  }
  return rel;
}

std::string AnnotatedRelation::ToString(
    const provenance::VarNamer& namer) const {
  std::string out = schema_.ToString() + "\n";
  for (size_t i = 0; i < tuples_.size(); ++i) {
    out += "  " + tuples_[i].ToString() + "  @  " +
           annotations_[i]->ToString(namer) + "\n";
  }
  return out;
}

}  // namespace consentdb::eval
