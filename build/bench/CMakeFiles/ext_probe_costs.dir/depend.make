# Empty dependencies file for ext_probe_costs.
# This may be replaced when dependencies are built.
