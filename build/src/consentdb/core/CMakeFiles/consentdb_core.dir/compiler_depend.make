# Empty compiler generated dependencies file for consentdb_core.
# This may be replaced when dependencies are built.
