#include <gtest/gtest.h>

#include "consentdb/eval/evaluate.h"
#include "consentdb/query/optimize.h"
#include "consentdb/query/parser.h"
#include "consentdb/util/rng.h"
#include "test_fixtures.h"

namespace consentdb::query {
namespace {

using consent::SharedDatabase;
using eval::AnnotatedRelation;
using relational::Column;
using relational::Database;
using relational::Schema;
using relational::Tuple;
using relational::Value;
using relational::ValueType;

SharedDatabase SmallDb() {
  SharedDatabase sdb;
  EXPECT_TRUE(sdb.CreateRelation("R", Schema({Column{"a", ValueType::kInt64},
                                              Column{"b", ValueType::kInt64}}))
                  .ok());
  EXPECT_TRUE(sdb.CreateRelation("S", Schema({Column{"b", ValueType::kInt64},
                                              Column{"c", ValueType::kInt64}}))
                  .ok());
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 3; ++b) {
      EXPECT_TRUE(sdb.InsertTuple("R", Tuple{Value(a), Value(b)}).ok());
      EXPECT_TRUE(sdb.InsertTuple("S", Tuple{Value(b), Value(a)}).ok());
    }
  }
  return sdb;
}

// Counts Select nodes directly above Scan nodes (evidence of pushdown).
size_t CountSelectsOnScans(const Plan& plan) {
  size_t n = 0;
  if (plan.kind() == PlanKind::kSelect &&
      plan.child(0)->kind() == PlanKind::kScan) {
    ++n;
  }
  for (const PlanPtr& c : plan.children()) n += CountSelectsOnScans(*c);
  return n;
}

size_t CountNodes(const Plan& plan, PlanKind kind) {
  size_t n = plan.kind() == kind ? 1 : 0;
  for (const PlanPtr& c : plan.children()) n += CountNodes(*c, kind);
  return n;
}

// --- Helpers -------------------------------------------------------------------

TEST(SplitConjunctsTest, FlattensNestedAnds) {
  PredicatePtr p = Predicate::And(
      {Predicate::ColumnCompare("a", CompareOp::kEq, Value(1)),
       Predicate::And({Predicate::ColumnCompare("b", CompareOp::kGt, Value(2)),
                       Predicate::ColumnCompare("c", CompareOp::kLt, Value(3))})});
  EXPECT_EQ(SplitConjuncts(p).size(), 3u);
}

TEST(SplitConjunctsTest, OrIsAtomic) {
  PredicatePtr p = Predicate::Or(
      {Predicate::ColumnCompare("a", CompareOp::kEq, Value(1)),
       Predicate::ColumnCompare("b", CompareOp::kEq, Value(2))});
  EXPECT_EQ(SplitConjuncts(p).size(), 1u);
}

TEST(SplitConjunctsTest, TrueVanishes) {
  EXPECT_TRUE(SplitConjuncts(Predicate::True()).empty());
}

TEST(BindsAgainstTest, ChecksAllReferences) {
  Schema schema({Column{"r.a", ValueType::kInt64}});
  EXPECT_TRUE(BindsAgainst(
      Predicate::ColumnCompare("r.a", CompareOp::kEq, Value(1)), schema));
  EXPECT_FALSE(BindsAgainst(Predicate::ColumnsEqual("r.a", "s.b"), schema));
}

// --- Structural rewrites ----------------------------------------------------------

TEST(OptimizeTest, PushesFilterBelowProduct) {
  SharedDatabase sdb = SmallDb();
  PlanPtr plan = *ParseQuery(
      "SELECT * FROM R, S WHERE R.b = S.b AND R.a = 1 AND S.c = 2");
  PlanPtr optimized = *Optimize(plan, sdb.database());
  // R.a = 1 and S.c = 2 must sit on the scans; R.b = S.b stays above.
  EXPECT_EQ(CountSelectsOnScans(*optimized), 2u);
  EXPECT_EQ(CountNodes(*optimized, PlanKind::kSelect), 3u);
}

TEST(OptimizeTest, MergesStackedSelects) {
  PlanPtr plan = Plan::Select(
      Predicate::ColumnCompare("R.a", CompareOp::kEq, Value(1)),
      Plan::Select(Predicate::ColumnCompare("R.b", CompareOp::kEq, Value(2)),
                   Plan::Scan("R")));
  SharedDatabase sdb = SmallDb();
  PlanPtr optimized = *Optimize(plan, sdb.database());
  EXPECT_EQ(CountNodes(*optimized, PlanKind::kSelect), 1u);
}

TEST(OptimizeTest, DistributesSelectionOverUnion) {
  SharedDatabase sdb = SmallDb();
  PlanPtr plan = Plan::Select(
      Predicate::ColumnCompare("b", CompareOp::kGt, Value(0)),
      Plan::Union({Plan::Project({"R.b"}, Plan::Scan("R")),
                   Plan::Project({"S.b"}, Plan::Scan("S"))}));
  PlanPtr optimized = *Optimize(plan, sdb.database());
  // No selection above the union any more.
  EXPECT_NE(optimized->kind(), PlanKind::kSelect);
  EXPECT_EQ(CountNodes(*optimized, PlanKind::kSelect), 2u);
}

TEST(OptimizeTest, PushesThroughProjectWithRenaming) {
  SharedDatabase sdb = SmallDb();
  PlanPtr plan = Plan::Select(
      Predicate::ColumnCompare("bee", CompareOp::kEq, Value(1)),
      Plan::Project({"R.b"}, Plan::Scan("R"), {"bee"}));
  PlanPtr optimized = *Optimize(plan, sdb.database());
  ASSERT_EQ(optimized->kind(), PlanKind::kProject);
  ASSERT_EQ(optimized->child(0)->kind(), PlanKind::kSelect);
  // The pushed predicate references the input column.
  EXPECT_NE(optimized->child(0)->predicate()->ToString().find("R.b"),
            std::string::npos);
}

TEST(OptimizeTest, KeepsCrossSidePredicatesAboveProduct) {
  SharedDatabase sdb = SmallDb();
  PlanPtr plan = *ParseQuery("SELECT * FROM R, S WHERE R.b = S.b");
  PlanPtr optimized = *Optimize(plan, sdb.database());
  ASSERT_EQ(optimized->kind(), PlanKind::kSelect);
  EXPECT_EQ(optimized->child(0)->kind(), PlanKind::kProduct);
}

TEST(OptimizeTest, DropsTrueSelections) {
  SharedDatabase sdb = SmallDb();
  PlanPtr plan = Plan::Select(Predicate::True(), Plan::Scan("R"));
  PlanPtr optimized = *Optimize(plan, sdb.database());
  EXPECT_EQ(optimized->kind(), PlanKind::kScan);
}

TEST(OptimizeTest, RejectsInvalidPlans) {
  SharedDatabase sdb = SmallDb();
  PlanPtr plan = *ParseQuery("SELECT * FROM Missing");
  EXPECT_FALSE(Optimize(plan, sdb.database()).ok());
}

// --- Semantics preservation (property tests) -----------------------------------------

const char* kQueries[] = {
    "SELECT * FROM R WHERE a = 1 AND b = 2",
    "SELECT a FROM R WHERE b > 0 AND a < 3",
    "SELECT * FROM R, S WHERE R.b = S.b AND R.a >= 2 AND S.c != 1",
    "SELECT R.a FROM R, S WHERE R.b = S.b AND S.c = 2",
    "SELECT b FROM R WHERE a = 1 UNION SELECT b FROM S WHERE c = 2",
    "SELECT b FROM R UNION SELECT b FROM S",
    "SELECT x.a FROM R x, R y WHERE x.b = y.b AND x.a > 0 AND y.a < 3",
    "SELECT S.c FROM R, S WHERE R.b = S.b AND R.a = 1 OR R.a = 2 AND S.c > 0",
    "SELECT a FROM R WHERE a = 1 AND (b = 0 OR b = 2)",
};

class OptimizeEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(OptimizeEquivalenceTest, PreservesResultsAndProvenance) {
  SharedDatabase sdb = SmallDb();
  const char* sql = kQueries[GetParam()];
  PlanPtr plan = *ParseQuery(sql);
  PlanPtr optimized = *Optimize(plan, sdb.database());

  // Same schema.
  EXPECT_EQ(*plan->OutputSchema(sdb.database()),
            *optimized->OutputSchema(sdb.database()));

  // Same annotated result: tuples AND annotations (checked semantically).
  AnnotatedRelation original = *eval::EvaluateAnnotated(plan, sdb);
  AnnotatedRelation rewritten = *eval::EvaluateAnnotated(optimized, sdb);
  ASSERT_EQ(original.size(), rewritten.size()) << sql;
  for (size_t i = 0; i < original.size(); ++i) {
    std::optional<size_t> j = rewritten.IndexOf(original.tuple(i));
    ASSERT_TRUE(j.has_value()) << sql << " missing " << original.tuple(i);
    EXPECT_TRUE(provenance::EquivalentByEnumeration(original.annotation(i),
                                                    rewritten.annotation(*j)))
        << sql << " tuple " << original.tuple(i).ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(AllQueries, OptimizeEquivalenceTest,
                         ::testing::Range(0, 9));

TEST(OptimizeTest, RunningExamplePushesAllLocalFilters) {
  SharedDatabase sdb = consentdb::testing::RecruitmentDatabase();
  PlanPtr plan = *ParseQuery(consentdb::testing::RecruitmentQuerySql());
  PlanPtr optimized = *Optimize(plan, sdb.database());
  // status='hired' and education='Env. studies' land on their scans.
  EXPECT_EQ(CountSelectsOnScans(*optimized), 2u);
  AnnotatedRelation original = *eval::EvaluateAnnotated(plan, sdb);
  AnnotatedRelation rewritten = *eval::EvaluateAnnotated(optimized, sdb);
  ASSERT_EQ(original.size(), 1u);
  ASSERT_EQ(rewritten.size(), 1u);
  EXPECT_TRUE(provenance::EquivalentByEnumeration(original.annotation(0),
                                                  rewritten.annotation(0)));
}

}  // namespace
}  // namespace consentdb::query
