// Wire framing for the probe service: the WAL record idiom (consent/wal.h)
// generalized to a byte stream.
//
// Stream format (binary, little-endian):
//
//   [ u32 payload_len | u32 crc32(payload) | payload ]*
//
// with payload = { u8 frame_type | body }. Frames are length-prefixed and
// CRC-checksummed, so a torn tail (connection dropped mid-frame) is simply
// an incomplete buffer that dies with the connection, while a corrupted
// frame (bit flip in flight) is detected and reported — the receiver must
// treat it as fatal for the connection, never try to resynchronize.
//
// Every encoded byte is a pure function of the message fields: no map
// iteration order, no clocks, no addresses ever reach the wire, so two runs
// that exchange the same messages exchange identical bytes (the
// consentdb-analyze determinism gates hold this).

#ifndef CONSENTDB_NET_FRAME_H_
#define CONSENTDB_NET_FRAME_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "consentdb/util/result.h"

namespace consentdb::net {

// Upper bound on one frame's payload; a length prefix beyond this is a
// framing violation (garbage or an attack), not a big message.
inline constexpr uint32_t kMaxFramePayload = 1u << 20;

// --- Little-endian field primitives (shared by frame.cc and protocol.cc) ---

void PutU8(std::string* out, uint8_t v);
void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
// Length-prefixed string: u32 size then the raw bytes.
void PutString(std::string* out, std::string_view v);

// Cursor-based readers: advance `*pos` and return false on underrun.
bool GetU8(std::string_view in, size_t* pos, uint8_t* v);
bool GetU32(std::string_view in, size_t* pos, uint32_t* v);
bool GetU64(std::string_view in, size_t* pos, uint64_t* v);
bool GetString(std::string_view in, size_t* pos, std::string* v);

// --- Frames ----------------------------------------------------------------

// One complete frame: its type byte and the body after it.
struct Frame {
  uint8_t type = 0;
  std::string body;
};

// Encodes `type` + `body` as one wire frame.
std::string EncodeFrame(uint8_t type, std::string_view body);

// Incremental decoder over an arbitrary chunking of the stream. Feed bytes
// as they arrive; Next() yields complete frames in order.
class FrameParser {
 public:
  enum class Event : uint8_t {
    kNone,    // no complete frame buffered yet
    kFrame,   // *frame was filled
    kCorrupt  // CRC/length violation — drop the connection
  };

  void Feed(std::string_view bytes) { buffer_.append(bytes); }

  // Extracts the next complete frame, if any. After kCorrupt every further
  // call reports kCorrupt again: a stream with one bad frame has lost sync
  // for good.
  Event Next(Frame* frame);

  // Bytes buffered but not yet consumed (incomplete trailing frame).
  size_t buffered_bytes() const { return buffer_.size(); }
  bool corrupt() const { return corrupt_; }

 private:
  std::string buffer_;
  bool corrupt_ = false;
};

}  // namespace consentdb::net

#endif  // CONSENTDB_NET_FRAME_H_
