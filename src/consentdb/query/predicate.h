// Selection predicates for SPJU plans: comparisons over columns and
// literals, combined with AND/OR (positive Boolean combinations only, which
// keeps query monotonicity and hence monotone provenance).

#ifndef CONSENTDB_QUERY_PREDICATE_H_
#define CONSENTDB_QUERY_PREDICATE_H_

#include <memory>
#include <string>
#include <vector>

#include "consentdb/relational/schema.h"
#include "consentdb/relational/tuple.h"
#include "consentdb/util/result.h"

namespace consentdb::query {

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CompareOpToString(CompareOp op);

// One side of a comparison: a column reference (by name, resolved to an
// index at bind time) or a literal value.
class Operand {
 public:
  static Operand Column(std::string name) {
    Operand o;
    o.is_column_ = true;
    o.column_name_ = std::move(name);
    return o;
  }
  static Operand Literal(relational::Value v) {
    Operand o;
    o.literal_ = std::move(v);
    return o;
  }

  bool is_column() const { return is_column_; }
  const std::string& column_name() const { return column_name_; }
  const relational::Value& literal() const { return literal_; }
  size_t column_index() const { return column_index_; }

  // Resolves the column name against `schema`. A bare name matches a
  // qualified column "alias.name" when the match is unique.
  [[nodiscard]] Status Bind(const relational::Schema& schema);

  // Value of this operand in row `t` (bound operands only).
  const relational::Value& Resolve(const relational::Tuple& t) const;

  std::string ToString() const;

 private:
  bool is_column_ = false;
  std::string column_name_;
  size_t column_index_ = static_cast<size_t>(-1);
  relational::Value literal_;
};

class Predicate;
using PredicatePtr = std::shared_ptr<const Predicate>;

// Immutable predicate tree. Build with the factories; call Bind against the
// input schema before Evaluate.
class Predicate {
 public:
  enum class Kind { kTrue, kComparison, kAnd, kOr };

  static PredicatePtr True();
  static PredicatePtr Comparison(Operand lhs, CompareOp op, Operand rhs);
  // Convenience: column-to-column equality (the equi-join condition).
  static PredicatePtr ColumnsEqual(std::string lhs, std::string rhs);
  // Convenience: column compared to a literal.
  static PredicatePtr ColumnCompare(std::string column, CompareOp op,
                                    relational::Value v);
  static PredicatePtr And(std::vector<PredicatePtr> children);
  static PredicatePtr Or(std::vector<PredicatePtr> children);

  Kind kind() const { return kind_; }
  const std::vector<PredicatePtr>& children() const { return children_; }
  const Operand& lhs() const { return lhs_; }
  const Operand& rhs() const { return rhs_; }
  CompareOp op() const { return op_; }

  // Returns a copy of this predicate bound to `schema` (column names
  // resolved to indexes). Fails on unknown/ambiguous columns.
  [[nodiscard]] Result<PredicatePtr> Bind(const relational::Schema& schema) const;

  // Evaluates a bound predicate on a row. Comparisons involving NULL are
  // false (except NULL = NULL, see Value equality).
  bool Evaluate(const relational::Tuple& t) const;

  std::string ToString() const;

 private:
  explicit Predicate(Kind kind) : kind_(kind) {}

  Kind kind_;
  Operand lhs_;
  Operand rhs_;
  CompareOp op_ = CompareOp::kEq;
  std::vector<PredicatePtr> children_;
};

}  // namespace consentdb::query

#endif  // CONSENTDB_QUERY_PREDICATE_H_
