// Positive Boolean expression trees: PosBool(C) of Def. III.1.
//
// These are the annotations produced by provenance-tracked query evaluation
// (Section III-A). Nodes are immutable and shared, so the annotated result of
// a query is a DAG over the input consent variables. Strategies do not run on
// trees directly; they run on flattened monotone DNF systems (see dnf.h).

#ifndef CONSENTDB_PROVENANCE_BOOL_EXPR_H_
#define CONSENTDB_PROVENANCE_BOOL_EXPR_H_

#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "consentdb/provenance/truth.h"

namespace consentdb::provenance {

class BoolExpr;
using BoolExprPtr = std::shared_ptr<const BoolExpr>;

// Maps a variable id to a display name; defaults to "x<id>" when null.
using VarNamer = std::function<std::string(VarId)>;

enum class ExprKind : uint8_t {
  kFalse,
  kTrue,
  kVar,
  kAnd,
  kOr,
};

// An immutable node of a positive Boolean expression. Construct through the
// factory functions, which constant-fold (And(False, e) = False, etc.) and
// flatten nested nodes of the same kind.
class BoolExpr {
 public:
  static BoolExprPtr False();
  static BoolExprPtr True();
  static BoolExprPtr Var(VarId x);
  static BoolExprPtr And(BoolExprPtr a, BoolExprPtr b);
  static BoolExprPtr Or(BoolExprPtr a, BoolExprPtr b);
  // N-ary forms; empty AndN is True, empty OrN is False.
  static BoolExprPtr AndN(std::vector<BoolExprPtr> children);
  static BoolExprPtr OrN(std::vector<BoolExprPtr> children);

  ExprKind kind() const { return kind_; }
  bool is_constant() const {
    return kind_ == ExprKind::kFalse || kind_ == ExprKind::kTrue;
  }

  // Valid only for kVar nodes.
  VarId var() const;

  // Valid only for kAnd/kOr nodes; always has >= 2 children.
  const std::vector<BoolExprPtr>& children() const { return children_; }

  // Kleene evaluation under a partial valuation.
  Truth Evaluate(const PartialValuation& val) const;

  // Adds every distinct variable of the expression to `out`.
  void CollectVars(std::set<VarId>* out) const;
  std::vector<VarId> Vars() const;

  // Number of nodes (shared sub-DAGs counted once per occurrence in the
  // traversal, i.e. as a tree).
  size_t TreeSize() const;

  // E.g. "((x0 ∧ x1) ∨ x2)".
  std::string ToString(const VarNamer& namer = nullptr) const;

 private:
  BoolExpr(ExprKind kind, VarId var, std::vector<BoolExprPtr> children)
      : kind_(kind), var_(var), children_(std::move(children)) {}

  ExprKind kind_;
  VarId var_ = kInvalidVar;
  std::vector<BoolExprPtr> children_;
};

// Structural (not semantic) equality.
bool StructurallyEqual(const BoolExprPtr& a, const BoolExprPtr& b);

// Semantic equivalence by exhaustive enumeration over the union of variable
// sets. Intended for tests; cost is O(2^n) with n distinct variables.
bool EquivalentByEnumeration(const BoolExprPtr& a, const BoolExprPtr& b);

}  // namespace consentdb::provenance

#endif  // CONSENTDB_PROVENANCE_BOOL_EXPR_H_
