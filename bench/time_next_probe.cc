// Execution-time microbenchmarks (Sec. V-B, "Execution time"): how long each
// algorithm takes to choose the next probe, as a function of the provenance
// size. The paper reports a few milliseconds and up to 1.3 s; the criterion
// that matters is that probe selection stays far below the latency of a
// human/web probe answer.

#include <benchmark/benchmark.h>

#include "bench_gbench_json.h"
#include "consentdb/datasets/psi.h"
#include "consentdb/datasets/skewed.h"
#include "consentdb/strategy/runner.h"
#include "consentdb/strategy/strategies.h"

using namespace consentdb;
using datasets::SkewedDataset;
using datasets::SkewedParams;
using strategy::EvaluationState;

namespace {

SkewedDataset MakeDataset(size_t rows) {
  SkewedParams params;
  params.num_rows = rows;
  Rng rng(42);
  return datasets::GenerateSkewed(params, rng);
}

// Measures the first ChooseNext on a fresh state (the most expensive call:
// nothing is decided yet).
template <typename MakeStrategy>
void BenchFirstChoice(benchmark::State& state, size_t rows,
                      MakeStrategy make_strategy, bool attach_cnfs) {
  SkewedDataset ds = MakeDataset(rows);
  std::vector<double> pi = ds.pool.Probabilities();
  for (auto _ : state) {
    EvaluationState eval_state(ds.dnfs, pi);
    if (attach_cnfs) {
      provenance::NormalFormLimits limits;
      limits.max_sets = 50000;
      bool ok = eval_state.TryAttachResidualCnfs(limits);
      CONSENTDB_CHECK(ok, "CNF attachment failed in benchmark");
    }
    auto strategy = make_strategy();
    benchmark::DoNotOptimize(strategy->ChooseNext(eval_state));
  }
  state.SetLabel(std::to_string(ds.pool.size()) + " vars");
}

void BM_NextProbe_RO(benchmark::State& state) {
  BenchFirstChoice(
      state, static_cast<size_t>(state.range(0)),
      []() { return std::make_unique<strategy::RoStrategy>(); }, false);
}

void BM_NextProbe_Freq(benchmark::State& state) {
  BenchFirstChoice(
      state, static_cast<size_t>(state.range(0)),
      []() { return std::make_unique<strategy::FreqStrategy>(); }, false);
}

void BM_NextProbe_QValue(benchmark::State& state) {
  BenchFirstChoice(
      state, static_cast<size_t>(state.range(0)),
      []() { return std::make_unique<strategy::QValueStrategy>(); }, true);
}

void BM_NextProbe_General(benchmark::State& state) {
  BenchFirstChoice(
      state, static_cast<size_t>(state.range(0)),
      []() { return std::make_unique<strategy::GeneralStrategy>(); }, false);
}

BENCHMARK(BM_NextProbe_RO)->Arg(100)->Arg(400)->Arg(1000);
BENCHMARK(BM_NextProbe_Freq)->Arg(100)->Arg(400)->Arg(1000);
BENCHMARK(BM_NextProbe_QValue)->Arg(100)->Arg(400)->Arg(1000);
BENCHMARK(BM_NextProbe_General)->Arg(100)->Arg(400)->Arg(1000);

// Full-session throughput: complete OPT-PEER-PROBE sessions per second on
// the default skewed workload (100 rows to keep iterations snappy).
void BM_FullSession(benchmark::State& state) {
  SkewedDataset ds = MakeDataset(100);
  std::vector<double> pi = ds.pool.Probabilities();
  Rng rng(5);
  provenance::PartialValuation hidden = ds.pool.SampleValuation(rng);
  for (auto _ : state) {
    EvaluationState eval_state(ds.dnfs, pi);
    strategy::GeneralStrategy general;
    strategy::ProbeRun run =
        strategy::RunToCompletion(eval_state, general, hidden);
    benchmark::DoNotOptimize(run.num_probes);
  }
}
BENCHMARK(BM_FullSession);

// Provenance-side costs: DNF flattening and CNF conversion on the psi
// family (the dataset whose CNF is the stress case).
void BM_PsiCnfConversion(benchmark::State& state) {
  consent::VariablePool pool;
  datasets::PsiFormula psi =
      datasets::BuildPsi(static_cast<int>(state.range(0)), pool);
  provenance::Dnf dnf = datasets::PsiDnf(psi);
  for (auto _ : state) {
    Result<provenance::Cnf> cnf = provenance::DnfToCnf(dnf);
    CONSENTDB_CHECK(cnf.ok(), cnf.status().ToString());
    benchmark::DoNotOptimize(cnf->num_clauses());
  }
  state.SetLabel(std::to_string(dnf.num_terms()) + " terms");
}
BENCHMARK(BM_PsiCnfConversion)->Arg(3)->Arg(5)->Arg(6);

}  // namespace

int main(int argc, char** argv) {
  return consentdb::bench::GbenchMainWithSidecar("time_next_probe", argc,
                                                 argv);
}
