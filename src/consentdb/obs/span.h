// Span tracer: nestable RAII spans exported as Chrome trace-event JSON.
//
// A Span marks one timed unit of work (a session, a probe, a WAL fsync).
// Spans nest: each records the id of the span that was current on the same
// thread when it started, so a concurrent engine run renders as one causal
// timeline (session -> plan -> probe -> retry wait -> WAL append) when the
// export is loaded into Perfetto or chrome://tracing.
//
// Design constraints (same bill of rights as metrics.h):
//   * Opt-in with a zero-overhead null sink: a Span constructed on a null
//     SpanCollector* compiles down to a pointer test — no clock read, no
//     allocation, no thread-local write.
//   * Lock-free recording: each thread appends finished spans to its own
//     fixed-capacity buffer. The collector mutex is taken once per thread
//     (buffer registration), never per span. Publication is a single
//     release store of the buffer size, so a concurrent exporter reads a
//     consistent prefix — TSAN-clean by construction.
//   * Span names must be static-duration strings (see obs/names.h): the
//     record stores the pointer, not a copy.
//
// Export format: Chrome trace-event "complete" events ("ph":"X") with
// microsecond ts/dur relative to the collector's epoch, pid 1, and the
// collector-assigned per-thread index as tid. Span id / parent id / the
// optional numeric argument ride in "args".

#ifndef CONSENTDB_OBS_SPAN_H_
#define CONSENTDB_OBS_SPAN_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "consentdb/obs/metrics.h"
#include "consentdb/util/thread_annotations.h"

namespace consentdb {
class JsonWriter;
}  // namespace consentdb

namespace consentdb::obs {

class FlightRecorder;

// One finished span. `name`/`arg_name` point at static-duration strings.
struct SpanRecord {
  const char* name = nullptr;
  uint64_t id = 0;
  uint64_t parent_id = 0;  // 0 = root (no enclosing span on this thread)
  int64_t start_nanos = 0;
  int64_t end_nanos = 0;
  uint32_t tid = 0;            // collector-assigned thread index
  const char* arg_name = nullptr;  // optional single numeric attribute
  uint64_t arg_value = 0;
};

// Collects finished spans from many threads. Thread-safe; see the header
// comment for the locking discipline.
class SpanCollector {
 public:
  // `max_spans_per_thread` bounds memory: once a thread's buffer is full,
  // further spans on that thread are counted in dropped() and discarded.
  explicit SpanCollector(size_t max_spans_per_thread = 1 << 16);
  ~SpanCollector();
  SpanCollector(const SpanCollector&) = delete;
  SpanCollector& operator=(const SpanCollector&) = delete;

  // Mirrors every finished span into `recorder` (pass nullptr to detach).
  // Set during setup and detached before the recorder dies; the pointer
  // itself is read atomically. Last attach wins when several engines share
  // one collector — each detaches only if it is still the one attached.
  void set_flight_recorder(FlightRecorder* recorder) {
    flight_.store(recorder, std::memory_order_release);
  }
  FlightRecorder* flight_recorder() const {
    return flight_.load(std::memory_order_acquire);
  }

  // Finished spans across all threads (a consistent snapshot prefix).
  size_t num_spans() const EXCLUDES(mu_);
  // Spans discarded because a thread buffer was full.
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  // Nanosecond origin of the exported timeline (set at construction).
  int64_t epoch_nanos() const { return epoch_nanos_; }

  // Chrome trace-event JSON: {"displayTimeUnit":"ns","traceEvents":[...]}.
  // Safe to call while spans are still being recorded (exports the
  // published prefix of every thread buffer).
  void WriteJson(JsonWriter& w) const EXCLUDES(mu_);
  std::string ExportChromeTrace() const EXCLUDES(mu_);

  // Copies the published records out (export-order: by thread, then append
  // order). For tests and the flight recorder, not the hot path.
  std::vector<SpanRecord> Snapshot() const EXCLUDES(mu_);

  // Forgets all recorded spans. Not safe concurrently with active Spans.
  void Clear() EXCLUDES(mu_);

  // --- Span internals (public for the Span RAII type, not applications) ---
  uint64_t NextSpanId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }
  void Record(const SpanRecord& rec) EXCLUDES(mu_);
  uint64_t uid() const { return uid_; }

 private:
  // Single-producer fixed-capacity span buffer. The owning thread writes
  // records then release-stores `size`; readers acquire-load `size` and
  // read only that prefix.
  struct ThreadBuffer {
    ThreadBuffer(size_t capacity, uint32_t tid)
        : records(std::make_unique<SpanRecord[]>(capacity)),
          capacity(capacity),
          tid(tid),
          owner(std::this_thread::get_id()) {}
    std::unique_ptr<SpanRecord[]> records;
    const size_t capacity;
    const uint32_t tid;  // registration order; the exported trace tid
    // The producing thread: lets a thread whose thread-local cache was
    // evicted (it recorded on another collector meanwhile) find its buffer
    // again instead of registering a fresh one.
    const std::thread::id owner;
    std::atomic<size_t> size{0};
  };

  ThreadBuffer* BufferForThisThread() EXCLUDES(mu_);

  const uint64_t uid_;  // process-unique, guards thread-local caching
  const size_t max_spans_per_thread_;
  const int64_t epoch_nanos_;
  std::atomic<uint64_t> next_id_{1};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<FlightRecorder*> flight_{nullptr};

  // mu_ guards buffer registration only; appends are lock-free.
  mutable Mutex mu_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_ GUARDED_BY(mu_);
};

// RAII span. On a null collector every member is a pointer test; otherwise
// the constructor assigns an id, links to the thread's current span and
// becomes current itself until destruction.
class Span {
 public:
  Span(SpanCollector* collector, const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // Attaches one numeric attribute (last call wins). `arg_name` must be a
  // static-duration string. No-op on a null collector.
  void SetArg(const char* arg_name, uint64_t value) {
    if (collector_ != nullptr) {
      rec_.arg_name = arg_name;
      rec_.arg_value = value;
    }
  }

  // 0 on a null collector.
  uint64_t id() const { return rec_.id; }

 private:
  SpanCollector* collector_;
  SpanRecord rec_;
  // The (collector uid, span id) that was current on this thread before
  // this span started; restored on destruction.
  uint64_t prev_uid_ = 0;
  uint64_t prev_id_ = 0;
};

}  // namespace consentdb::obs

#endif  // CONSENTDB_OBS_SPAN_H_
