// ChaosTransport: an in-memory Transport whose fault behaviour is a pure
// function of a seed, in the spirit of FaultyOracle and CrashingEnv.
//
// Every faultable operation (Connect, Write) consumes one global operation
// index; the fault chosen for that operation is decided by
// UnitUniformHash(seed, stream, index) against the plan's cumulative
// probabilities. Under a single-threaded driver (the chaos harness pumps
// client and server cooperatively) the operation order — and therefore the
// entire fault schedule — is identical across runs of the same seed.
//
// Faults modelled:
//   * connect failure  — Connect returns kUnavailable (server unreachable)
//   * connection drop  — Write fails with kUnavailable and the peer sees
//                        kUnavailable after draining what was delivered
//   * torn write       — Write reports full success but only a prefix is
//                        delivered before the connection drops (the frame
//                        CRC layer turns the torn tail into silence)
//   * corruption       — one delivered byte is bit-flipped (the CRC layer
//                        detects it; the receiver drops the connection)
//   * duplicate        — the written chunk is delivered twice
//   * delay            — delivery is deferred by delay_nanos on the clock;
//                        later chunks queue behind it (no reordering, like
//                        TCP)
//
// Delivered bytes preserve stream order: a delayed chunk blocks everything
// written after it until the clock passes its ready time.

#ifndef CONSENTDB_NET_CHAOS_TRANSPORT_H_
#define CONSENTDB_NET_CHAOS_TRANSPORT_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "consentdb/util/clock.h"
#include "consentdb/util/transport.h"

namespace consentdb::net {

// Fault probabilities (independent per operation, chosen by a single draw
// against their cumulative sum, which must be <= 1).
struct ChaosPlan {
  uint64_t seed = 0;
  double connect_fail_prob = 0.0;
  double drop_prob = 0.0;
  double torn_write_prob = 0.0;
  double corrupt_prob = 0.0;
  double duplicate_prob = 0.0;
  double delay_prob = 0.0;
  int64_t delay_nanos = 0;  // deferral applied by a delay fault
};

// Tallies of injected faults, for asserting the harness exercised them.
struct ChaosStats {
  uint64_t connects = 0;
  uint64_t writes = 0;
  uint64_t connect_fails = 0;
  uint64_t drops = 0;
  uint64_t torn_writes = 0;
  uint64_t corruptions = 0;
  uint64_t duplicates = 0;
  uint64_t delays = 0;
};

class ChaosTransport : public Transport {
 public:
  // `clock` is used only to timestamp delayed deliveries; tests pass a
  // VirtualClock they advance from the driver loop. Must outlive the
  // transport and every endpoint it hands out.
  ChaosTransport(ChaosPlan plan, Clock* clock);
  ~ChaosTransport() override;

  Result<std::unique_ptr<Listener>> Listen(const std::string& address) override;
  Result<std::unique_ptr<Connection>> Connect(
      const std::string& address) override;

  ChaosStats stats() const;

  // Shared between the transport and every endpoint it hands out; public
  // only so the implementation classes (internal to chaos_transport.cc)
  // can name it.
  struct State;

 private:
  std::shared_ptr<State> state_;
};

}  // namespace consentdb::net

#endif  // CONSENTDB_NET_CHAOS_TRANSPORT_H_
