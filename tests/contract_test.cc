// Contract (death) tests: programmer errors are CHECK-aborted with a
// diagnostic, never silently mishandled. These pin the library's documented
// preconditions.

#include <gtest/gtest.h>

#include "consentdb/relational/value.h"
#include "consentdb/strategy/runner.h"
#include "consentdb/strategy/strategies.h"
#include "consentdb/util/check.h"
#include "consentdb/util/json_writer.h"

namespace consentdb {
namespace {

using provenance::Dnf;
using provenance::VarSet;
using relational::Value;

TEST(ContractTest, CheckMacroAborts) {
  EXPECT_DEATH(CONSENTDB_CHECK(false, "boom"), "boom");
  CONSENTDB_CHECK(true, "never printed");  // passing check is a no-op
}

TEST(ContractTest, ValueTypedAccessorsAbortOnWrongType) {
  EXPECT_DEATH(Value("text").AsInt64(), "not INT64");
  EXPECT_DEATH(Value(1).AsString(), "not STRING");
  EXPECT_DEATH(Value(true).AsDouble(), "not DOUBLE");
  EXPECT_DEATH(Value(1.5).AsBool(), "not BOOL");
  EXPECT_DEATH(Value("x").AsNumeric(), "not numeric");
}

TEST(ContractTest, StateRejectsDoubleProbe) {
  strategy::EvaluationState state({Dnf({VarSet{0, 1}})}, {0.5, 0.5});
  state.Assign(0, true);
  EXPECT_DEATH(state.Assign(0, false), "probed twice");
}

TEST(ContractTest, StateRejectsUnknownVariable) {
  strategy::EvaluationState state({Dnf({VarSet{0}})}, {0.5});
  EXPECT_DEATH(state.Assign(7, true), "unknown variable");
}

TEST(ContractTest, QValueRequiresCnfs) {
  strategy::EvaluationState state({Dnf({VarSet{0}})}, {0.5});
  strategy::QValueStrategy qv;
  EXPECT_DEATH(qv.ChooseNext(state), "requires CNFs");
}

TEST(ContractTest, CostsMustBeSetBeforeProbing) {
  strategy::EvaluationState state({Dnf({VarSet{0, 1}})}, {0.5, 0.5});
  state.Assign(0, true);
  EXPECT_DEATH(state.SetCosts({1.0, 1.0}), "before any probe");
}

TEST(ContractTest, CostsMustBePositive) {
  strategy::EvaluationState state({Dnf({VarSet{0}})}, {0.5});
  EXPECT_DEATH(state.SetCosts({0.0}), "positive");
}

TEST(ContractTest, RunnerRejectsStrategiesChoosingUselessVariables) {
  // A deliberately broken strategy returning an unrelated variable.
  class Broken : public strategy::ProbeStrategy {
   public:
    std::string name() const override { return "Broken"; }
    provenance::VarId ChooseNext(strategy::EvaluationState&) override {
      return 1;  // not part of any formula
    }
  };
  strategy::EvaluationState state({Dnf({VarSet{0}})}, {0.5, 0.5});
  Broken broken;
  EXPECT_DEATH(strategy::RunToCompletion(
                   state, broken, [](provenance::VarId) { return true; }),
               "useless or known");
}

TEST(ContractTest, JsonWriterValidatesNesting) {
  EXPECT_DEATH(
      {
        JsonWriter w;
        w.BeginObject();
        w.Int(1);  // value without a key
      },
      "without a key");
  EXPECT_DEATH(
      {
        JsonWriter w;
        w.BeginArray();
        w.EndObject();  // mismatched close
      },
      "outside an object");
  EXPECT_DEATH(
      {
        JsonWriter w;
        w.BeginObject();
        (void)w.TakeString();  // unterminated
      },
      "unterminated");
}

TEST(ContractTest, HiddenValuationMustCoverProbedVariables) {
  strategy::EvaluationState state({Dnf({VarSet{0}})}, {0.5});
  strategy::RoStrategy ro;
  provenance::PartialValuation empty;
  EXPECT_DEATH(strategy::RunToCompletion(state, ro, empty),
               "does not cover");
}

}  // namespace
}  // namespace consentdb
