// BAD: Serialize() walks an unordered_map directly, so the emitted bytes
// depend on the hash seed and insertion order.

#include <string>
#include <unordered_map>

namespace consentdb::consent {

class AnswerTally {
 public:
  void Record(int x, bool answer) { answers_[x] = answer; }

  std::string Serialize() const {
    std::string out;
    for (const auto& [x, answer] : answers_) {
      out += std::to_string(x) + (answer ? ":1;" : ":0;");
    }
    return out;
  }

 private:
  std::unordered_map<int, bool> answers_;
};

}  // namespace consentdb::consent
