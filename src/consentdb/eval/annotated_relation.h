// AnnotatedRelation: a relation whose tuples carry PosBool(C) annotations —
// the annotated query result Q(D̄) of Sec. III-A.

#ifndef CONSENTDB_EVAL_ANNOTATED_RELATION_H_
#define CONSENTDB_EVAL_ANNOTATED_RELATION_H_

#include <unordered_map>
#include <vector>

#include "consentdb/provenance/bool_expr.h"
#include "consentdb/relational/relation.h"

namespace consentdb::eval {

class AnnotatedRelation {
 public:
  AnnotatedRelation() = default;
  explicit AnnotatedRelation(relational::Schema schema)
      : schema_(std::move(schema)) {}

  const relational::Schema& schema() const { return schema_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }
  const std::vector<relational::Tuple>& tuples() const { return tuples_; }
  const relational::Tuple& tuple(size_t i) const;
  const provenance::BoolExprPtr& annotation(size_t i) const;
  const std::vector<provenance::BoolExprPtr>& annotations() const {
    return annotations_;
  }

  // Set-semantics insert: a duplicate tuple's annotation is OR-ed into the
  // existing one (the union/projection rule of the provenance construction).
  void Insert(relational::Tuple t, provenance::BoolExprPtr annotation);

  std::optional<size_t> IndexOf(const relational::Tuple& t) const;

  // The plain relation (annotations dropped).
  relational::Relation ToRelation() const;

  // The tuples whose annotation evaluates to True under `val` — the
  // shareable fragment of Prop. III.2 (for a total valuation).
  relational::Relation ShareableFragment(
      const provenance::PartialValuation& val) const;

  std::string ToString(const provenance::VarNamer& namer = nullptr) const;

 private:
  relational::Schema schema_;
  std::vector<relational::Tuple> tuples_;
  std::vector<provenance::BoolExprPtr> annotations_;
  std::unordered_map<relational::Tuple, size_t> index_;
};

}  // namespace consentdb::eval

#endif  // CONSENTDB_EVAL_ANNOTATED_RELATION_H_
