#include "consentdb/obs/span.h"

#include "consentdb/obs/flight_recorder.h"
#include "consentdb/util/json_writer.h"

namespace consentdb::obs {

namespace {

// Process-wide collector uids: lets the thread-local caches below detect a
// destroyed-and-reallocated collector at the same address.
std::atomic<uint64_t> g_next_collector_uid{1};

// The current (innermost open) span on this thread, keyed by collector uid
// so spans on different collectors never parent each other.
thread_local uint64_t tls_current_uid = 0;
thread_local uint64_t tls_current_id = 0;

// This thread's registered buffer for the collector named by uid.
struct BufferCache {
  uint64_t uid = 0;
  void* buffer = nullptr;
};
thread_local BufferCache tls_buffer;

}  // namespace

SpanCollector::SpanCollector(size_t max_spans_per_thread)
    : uid_(g_next_collector_uid.fetch_add(1, std::memory_order_relaxed)),
      max_spans_per_thread_(max_spans_per_thread == 0 ? 1
                                                      : max_spans_per_thread),
      epoch_nanos_(MonotonicNanos()) {}

SpanCollector::~SpanCollector() = default;

SpanCollector::ThreadBuffer* SpanCollector::BufferForThisThread() {
  if (tls_buffer.uid == uid_) {
    return static_cast<ThreadBuffer*>(tls_buffer.buffer);
  }
  MutexLock lock(mu_);
  // The one-entry thread-local cache may have been evicted by a Record on
  // another collector; reuse this thread's existing buffer (buffers_ holds
  // one per thread, so the scan is short) instead of leaking a new one per
  // collector switch.
  ThreadBuffer* buf = nullptr;
  const std::thread::id self = std::this_thread::get_id();
  for (const auto& existing : buffers_) {
    if (existing->owner == self) {
      buf = existing.get();
      break;
    }
  }
  if (buf == nullptr) {
    buffers_.push_back(std::make_unique<ThreadBuffer>(
        max_spans_per_thread_, static_cast<uint32_t>(buffers_.size())));
    buf = buffers_.back().get();
  }
  tls_buffer = {uid_, buf};
  return buf;
}

void SpanCollector::Record(const SpanRecord& rec) {
  ThreadBuffer* buf = BufferForThisThread();
  SpanRecord stamped = rec;
  stamped.tid = buf->tid;
  size_t size = buf->size.load(std::memory_order_relaxed);
  if (size >= buf->capacity) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
  } else {
    buf->records[size] = stamped;
    // Publish: a concurrent exporter that acquires `size + 1` sees the
    // record fields written above.
    buf->size.store(size + 1, std::memory_order_release);
  }
  FlightRecorder* flight = flight_.load(std::memory_order_acquire);
  if (flight != nullptr) flight->RecordSpan(stamped);
}

size_t SpanCollector::num_spans() const {
  MutexLock lock(mu_);
  size_t total = 0;
  for (const auto& buf : buffers_) {
    total += buf->size.load(std::memory_order_acquire);
  }
  return total;
}

std::vector<SpanRecord> SpanCollector::Snapshot() const {
  MutexLock lock(mu_);
  std::vector<SpanRecord> out;
  for (const auto& buf : buffers_) {
    size_t size = buf->size.load(std::memory_order_acquire);
    for (size_t i = 0; i < size; ++i) out.push_back(buf->records[i]);
  }
  return out;
}

void SpanCollector::Clear() {
  MutexLock lock(mu_);
  for (auto& buf : buffers_) {
    buf->size.store(0, std::memory_order_relaxed);
  }
  dropped_.store(0, std::memory_order_relaxed);
}

void SpanCollector::WriteJson(JsonWriter& w) const {
  std::vector<SpanRecord> spans = Snapshot();
  w.BeginObject();
  w.Key("displayTimeUnit");
  w.String("ns");
  w.Key("traceEvents");
  w.BeginArray();
  for (const SpanRecord& s : spans) {
    w.BeginObject();
    w.Key("name");
    w.String(s.name != nullptr ? s.name : "unnamed");
    w.Key("cat");
    w.String("consentdb");
    w.Key("ph");
    w.String("X");
    // Chrome trace timestamps are microseconds; fractional digits keep
    // nanosecond resolution.
    w.Key("ts");
    w.Double(static_cast<double>(s.start_nanos - epoch_nanos_) / 1000.0);
    w.Key("dur");
    w.Double(static_cast<double>(s.end_nanos - s.start_nanos) / 1000.0);
    w.Key("pid");
    w.Int(1);
    w.Key("tid");
    w.Uint(s.tid);
    w.Key("args");
    w.BeginObject();
    w.Key("id");
    w.Uint(s.id);
    w.Key("parent");
    w.Uint(s.parent_id);
    if (s.arg_name != nullptr) {
      w.Key(s.arg_name);
      w.Uint(s.arg_value);
    }
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
}

std::string SpanCollector::ExportChromeTrace() const {
  JsonWriter w;
  WriteJson(w);
  return w.TakeString();
}

Span::Span(SpanCollector* collector, const char* name)
    : collector_(collector) {
  if (collector_ == nullptr) return;
  rec_.name = name;
  rec_.id = collector_->NextSpanId();
  const uint64_t uid = collector_->uid();
  rec_.parent_id = (tls_current_uid == uid) ? tls_current_id : 0;
  prev_uid_ = tls_current_uid;
  prev_id_ = tls_current_id;
  tls_current_uid = uid;
  tls_current_id = rec_.id;
  rec_.start_nanos = MonotonicNanos();
}

Span::~Span() {
  if (collector_ == nullptr) return;
  rec_.end_nanos = MonotonicNanos();
  tls_current_uid = prev_uid_;
  tls_current_id = prev_id_;
  collector_->Record(rec_);
}

}  // namespace consentdb::obs
