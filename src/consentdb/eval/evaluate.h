// SPJU plan evaluation: plain (standard set semantics) and annotated
// (Boolean provenance tracking, the construction of Sec. III-A).
//
// Both evaluators are the naive nested-loop implementations — the paper's
// complexity bound O(|D|^|Q|) of Prop. III.3 — which is the right trade-off
// here: probe counts, not query latency, are the optimisation target.

#ifndef CONSENTDB_EVAL_EVALUATE_H_
#define CONSENTDB_EVAL_EVALUATE_H_

#include "consentdb/consent/shared_database.h"
#include "consentdb/eval/annotated_relation.h"
#include "consentdb/obs/metrics.h"
#include "consentdb/query/plan.h"
#include "consentdb/util/result.h"

namespace consentdb::eval {

// Standard evaluation of `plan` over a plain database.
[[nodiscard]] Result<relational::Relation> Evaluate(const query::PlanPtr& plan,
                                      const relational::Database& db);

// Provenance-tracked evaluation of `plan` over a shared database: every
// output tuple is annotated with a positive Boolean expression over the
// consent variables of the input tuples it derives from. With `metrics`
// attached, records the provenance build time (eval.annotate_ns) and the
// output size (eval.output_tuples).
[[nodiscard]] Result<AnnotatedRelation> EvaluateAnnotated(
    const query::PlanPtr& plan, const consent::SharedDatabase& sdb,
    obs::MetricsRegistry* metrics = nullptr);

// Def. II.6 implemented literally: evaluates `plan` over the sub-database of
// consented tuples. Used to cross-check EvaluateAnnotated (Prop. III.2).
[[nodiscard]] Result<relational::Relation> EvaluateOverConsentedFragment(
    const query::PlanPtr& plan, const consent::SharedDatabase& sdb,
    const provenance::PartialValuation& val);

}  // namespace consentdb::eval

#endif  // CONSENTDB_EVAL_EVALUATE_H_
