file(REMOVE_RECURSE
  "CMakeFiles/fig3a_skewed_joins.dir/fig3a_skewed_joins.cc.o"
  "CMakeFiles/fig3a_skewed_joins.dir/fig3a_skewed_joins.cc.o.d"
  "fig3a_skewed_joins"
  "fig3a_skewed_joins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3a_skewed_joins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
