// Extension experiment (Sec. VII, "Different models for probes and
// answers"): batched probing. Probes are sent in rounds of k without
// waiting for answers; larger batches cut latency rounds but waste probes
// that answers from the same round would have made unnecessary.
//
// The table reports, per batch size, the expected number of probes and of
// latency rounds on the default skewed workload (General strategy).

#include "skewed_runner.h"
#include "consentdb/strategy/batch_runner.h"

using namespace consentdb;

int main() {
  const size_t reps = bench::RepsFromEnv(5);
  const size_t rows = bench::Scaled(200);
  std::cout << "=== Extension: batched probing (skewed rows=" << rows
            << ", joins=4, limit=8, rep=2.6, pi=0.7, reps=" << reps
            << ", strategy=General) ===\n\n";

  bench::Table table({"batch size", "probes", "rounds", "probes/seq",
                      "rounds/seq"});
  table.PrintHeader();

  datasets::SkewedParams params;
  params.num_rows = rows;
  double seq_probes = 0;
  double seq_rounds = 0;
  for (size_t batch_size : {1u, 2u, 4u, 8u, 16u, 32u}) {
    double probes = 0;
    double rounds = 0;
    for (size_t rep = 0; rep < reps; ++rep) {
      Rng rng(4200 + rep * 7919);
      datasets::SkewedDataset ds = datasets::GenerateSkewed(params, rng);
      std::vector<double> pi = ds.pool.Probabilities();
      provenance::PartialValuation hidden = ds.pool.SampleValuation(rng);
      strategy::EvaluationState state(ds.dnfs, pi);
      strategy::BatchProbeRun run = strategy::RunToCompletionBatched(
          state, strategy::MakeGeneralFactory(),
          [&hidden](provenance::VarId x) {
            return hidden.Get(x) == provenance::Truth::kTrue;
          },
          batch_size);
      probes += static_cast<double>(run.num_probes);
      rounds += static_cast<double>(run.num_rounds);
    }
    probes /= static_cast<double>(reps);
    rounds /= static_cast<double>(reps);
    if (batch_size == 1) {
      seq_probes = probes;
      seq_rounds = rounds;
    }
    table.PrintRow(std::to_string(batch_size),
                   {bench::FormatMean(probes), bench::FormatMean(rounds),
                    bench::FormatMean(probes / seq_probes),
                    bench::FormatMean(rounds / seq_rounds)});
  }
  std::cout << "\nexpected shape: rounds drop near-linearly with the batch "
               "size while the\nprobe overhead grows slowly — the latency/"
               "effort trade-off of Sec. VII.\n";
  return 0;
}
