#include "consentdb/core/session_engine.h"

#include <thread>

#include "consentdb/query/optimize.h"
#include "consentdb/util/check.h"

namespace consentdb::core {

using consent::ProbeOracle;
using provenance::VarId;
using query::PlanPtr;

namespace {

size_t ResolveThreads(size_t requested) {
  if (requested > 0) return requested;
  size_t hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

// Per-session view of the shared ledger: satisfies the ProbeOracle
// interface the probing loop expects while deduplicating oracle traffic
// engine-wide. probe_count() is this session's call count, mirroring how
// each session pays for its own probes in the paper's cost model.
class LedgerOracle : public ProbeOracle {
 public:
  LedgerOracle(consent::ConsentLedger& ledger, ProbeOracle& backing)
      : ledger_(ledger), backing_(backing) {}

  bool Probe(VarId x) override {
    ++asked_;
    bool from_ledger = false;
    bool answer = ledger_.ProbeVia(backing_, x, &from_ledger);
    if (from_ledger) ++ledger_hits_;
    return answer;
  }
  consent::ProbeAttempt TryProbe(VarId x) override {
    bool from_ledger = false;
    consent::ProbeAttempt attempt =
        ledger_.TryProbeVia(backing_, x, &from_ledger);
    // Faulted attempts leave no trace in the ledger and are not charged to
    // this session: only an answer counts as a probe, so retries reach the
    // peer again instead of replaying the failure.
    if (attempt.ok()) {
      ++asked_;
      if (from_ledger) ++ledger_hits_;
    }
    return attempt;
  }
  size_t probe_count() const override { return asked_; }
  uint64_t ledger_hits() const { return ledger_hits_; }

 private:
  consent::ConsentLedger& ledger_;
  ProbeOracle& backing_;
  size_t asked_ = 0;
  uint64_t ledger_hits_ = 0;
};

}  // namespace

SessionEngine::SessionEngine(const consent::SharedDatabase& sdb,
                             EngineOptions options)
    : sdb_(sdb),
      manager_(sdb),
      options_(std::move(options)),
      plan_cache_(options_.plan_cache_capacity),
      prov_cache_(options_.provenance_cache_capacity),
      pool_(ResolveThreads(options_.num_threads)) {
  CONSENTDB_CHECK(options_.session.tracer == nullptr,
                  "EngineOptions::session.tracer must be null; use "
                  "SessionRequest::tracer for per-session tracing");
}

Result<SessionEngine::PlanEntry> SessionEngine::ResolvePlan(
    const SessionRequest& request, const SessionOptions& options,
    uint64_t version) {
  obs::MetricsRegistry* metrics = options.metrics;
  PlanEntry entry;
  entry.version = version;
  const bool cacheable = request.plan == nullptr;
  if (request.plan != nullptr) {
    entry.plan = request.plan;
  } else {
    if (request.sql.empty()) {
      return Status::InvalidArgument("SessionRequest carries neither sql "
                                     "nor a plan");
    }
    std::optional<std::shared_ptr<const PlanEntry>> cached =
        plan_cache_.Get(request.sql);
    if (cached.has_value() && (*cached)->version == version) {
      plan_hits_.fetch_add(1, std::memory_order_relaxed);
      obs::Increment(metrics, "engine.plan_cache.hit");
      return **cached;
    }
    plan_misses_.fetch_add(1, std::memory_order_relaxed);
    obs::Increment(metrics, "engine.plan_cache.miss");
    CONSENTDB_ASSIGN_OR_RETURN(entry.plan, query::ParseQuery(request.sql));
  }
  if (options.optimize_plan) {
    obs::ScopedTimer timer(obs::MaybeHistogram(metrics, "query.optimize_ns"));
    CONSENTDB_ASSIGN_OR_RETURN(entry.effective,
                               query::Optimize(entry.plan, sdb_.database()));
  } else {
    entry.effective = entry.plan;
  }
  if (cacheable) {
    plan_cache_.Put(request.sql, std::make_shared<const PlanEntry>(entry));
  }
  return entry;
}

Result<std::shared_ptr<const PreparedSession>> SessionEngine::ResolvePrepared(
    const SessionRequest& request, const PlanEntry& entry,
    const SessionOptions& options, uint64_t version) {
  obs::MetricsRegistry* metrics = options.metrics;
  if (request.single.has_value()) {
    // Targeted provenance depends on the requested tuple; not cached.
    CONSENTDB_ASSIGN_OR_RETURN(
        PreparedSession prepared,
        manager_.PrepareResolved(entry.plan, entry.effective, request.single,
                                 options));
    return std::make_shared<const PreparedSession>(std::move(prepared));
  }
  const ProvKey key{entry.plan->Fingerprint(), version};
  std::optional<std::shared_ptr<const PreparedSession>> cached =
      prov_cache_.Get(key);
  if (cached.has_value()) {
    prov_hits_.fetch_add(1, std::memory_order_relaxed);
    obs::Increment(metrics, "engine.prov_cache.hit");
    return *cached;
  }
  prov_misses_.fetch_add(1, std::memory_order_relaxed);
  obs::Increment(metrics, "engine.prov_cache.miss");
  CONSENTDB_ASSIGN_OR_RETURN(
      PreparedSession prepared,
      manager_.PrepareResolved(entry.plan, entry.effective, std::nullopt,
                               options));
  auto shared = std::make_shared<const PreparedSession>(std::move(prepared));
  prov_cache_.Put(key, shared);
  return shared;
}

Result<SessionReport> SessionEngine::RunOne(const SessionRequest& request) {
  if (request.oracle == nullptr) {
    return Status::InvalidArgument("SessionRequest carries no oracle");
  }
  SessionOptions options = options_.session;
  options.tracer = request.tracer;
  obs::MetricsRegistry* metrics = options.metrics;
  obs::Increment(metrics, "engine.sessions");

  // One consistent database version per session; a mutation between the
  // reads would be a contract violation (see the header), not a race the
  // engine needs to survive.
  const uint64_t version = sdb_.version();
  CONSENTDB_ASSIGN_OR_RETURN(PlanEntry entry,
                             ResolvePlan(request, options, version));
  CONSENTDB_ASSIGN_OR_RETURN(
      std::shared_ptr<const PreparedSession> prepared,
      ResolvePrepared(request, entry, options, version));

  if (options_.share_consent_ledger) {
    LedgerOracle oracle(ledger_, *request.oracle);
    Result<SessionReport> report =
        manager_.RunPrepared(*prepared, oracle, options);
    obs::Increment(metrics, "engine.ledger.hit", oracle.ledger_hits());
    return report;
  }
  return manager_.RunPrepared(*prepared, *request.oracle, options);
}

std::future<Result<SessionReport>> SessionEngine::Submit(
    SessionRequest request) {
  obs::MetricsRegistry* metrics = options_.session.metrics;
  auto promise = std::make_shared<std::promise<Result<SessionReport>>>();
  std::future<Result<SessionReport>> future = promise->get_future();
  // Audited for -Wthread-safety: the queue-depth and in-flight gauges are
  // sampled outside any engine lock on purpose. in_flight_ is an atomic,
  // pool_.queue_depth() locks internally, and Gauge::Set is last-write-wins
  // — concurrent writers can interleave stale samples, which is benign for
  // an instantaneous telemetry gauge (never read back by the engine).
  pool_.Submit([this, promise, request = std::move(request), metrics] {
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    obs::SetGauge(metrics, "engine.sessions_in_flight",
                  static_cast<double>(sessions_in_flight()));
    obs::SetGauge(metrics, "engine.queue_depth",
                  static_cast<double>(pool_.queue_depth()));
    Result<SessionReport> result = RunOne(request);
    // The in-flight count drops before the future is fulfilled, so a
    // caller returning from get() never sees its own session in flight.
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    obs::SetGauge(metrics, "engine.sessions_in_flight",
                  static_cast<double>(sessions_in_flight()));
    promise->set_value(std::move(result));
  });
  obs::SetGauge(metrics, "engine.queue_depth",
                static_cast<double>(pool_.queue_depth()));
  return future;
}

std::vector<Result<SessionReport>> SessionEngine::RunAll(
    std::vector<SessionRequest> requests) {
  std::vector<std::future<Result<SessionReport>>> futures;
  futures.reserve(requests.size());
  for (SessionRequest& request : requests) {
    futures.push_back(Submit(std::move(request)));
  }
  std::vector<Result<SessionReport>> results;
  results.reserve(futures.size());
  for (std::future<Result<SessionReport>>& f : futures) {
    results.push_back(f.get());
  }
  return results;
}

SessionEngine::CacheStats SessionEngine::cache_stats() const {
  CacheStats stats;
  stats.plan_hits = plan_hits_.load(std::memory_order_relaxed);
  stats.plan_misses = plan_misses_.load(std::memory_order_relaxed);
  stats.provenance_hits = prov_hits_.load(std::memory_order_relaxed);
  stats.provenance_misses = prov_misses_.load(std::memory_order_relaxed);
  stats.plan_entries = plan_cache_.size();
  stats.provenance_entries = prov_cache_.size();
  return stats;
}

void SessionEngine::InvalidateCaches() {
  plan_cache_.Clear();
  prov_cache_.Clear();
}

}  // namespace consentdb::core
