file(REMOVE_RECURSE
  "libconsentdb_consent.a"
)
