#include <gtest/gtest.h>

#include "consentdb/relational/database.h"
#include "consentdb/relational/relation.h"
#include "consentdb/relational/schema.h"
#include "consentdb/relational/tuple.h"
#include "consentdb/relational/value.h"

namespace consentdb::relational {
namespace {

// --- Value ---------------------------------------------------------------------

TEST(ValueTest, TypesAreTagged) {
  EXPECT_EQ(Value(int64_t{3}).type(), ValueType::kInt64);
  EXPECT_EQ(Value(3.5).type(), ValueType::kDouble);
  EXPECT_EQ(Value("hi").type(), ValueType::kString);
  EXPECT_EQ(Value(true).type(), ValueType::kBool);
  EXPECT_EQ(Value::Null().type(), ValueType::kNull);
  EXPECT_TRUE(Value::Null().is_null());
}

TEST(ValueTest, Accessors) {
  EXPECT_EQ(Value(7).AsInt64(), 7);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value("abc").AsString(), "abc");
  EXPECT_TRUE(Value(true).AsBool());
}

TEST(ValueTest, AsNumericCoversIntAndDouble) {
  EXPECT_DOUBLE_EQ(Value(4).AsNumeric(), 4.0);
  EXPECT_DOUBLE_EQ(Value(4.5).AsNumeric(), 4.5);
}

TEST(ValueTest, EqualityWithinType) {
  EXPECT_EQ(Value(1), Value(1));
  EXPECT_NE(Value(1), Value(2));
  EXPECT_EQ(Value("a"), Value("a"));
  EXPECT_NE(Value("a"), Value("b"));
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(ValueTest, EqualityAcrossTypesIsFalse) {
  EXPECT_NE(Value(1), Value(1.0));
  EXPECT_NE(Value(0), Value(false));
  EXPECT_NE(Value("1"), Value(1));
  EXPECT_NE(Value::Null(), Value(0));
}

TEST(ValueTest, OrderingWithinType) {
  EXPECT_LT(Value(1), Value(2));
  EXPECT_LT(Value("a"), Value("b"));
  EXPECT_LE(Value(1), Value(1));
  EXPECT_GT(Value(3), Value(2));
  EXPECT_GE(Value("b"), Value("b"));
}

TEST(ValueTest, OrderingAcrossTypesIsByTypeTag) {
  // NULL < int < double < string < bool (variant index order); the point is
  // that the order is total and consistent, not the specific arrangement.
  EXPECT_LT(Value::Null(), Value(0));
  EXPECT_LT(Value(int64_t{1} << 60), Value(0.5));
  EXPECT_LT(Value(1e300), Value(""));
}

TEST(ValueTest, ToStringFormats) {
  EXPECT_EQ(Value(42).ToString(), "42");
  EXPECT_EQ(Value("x").ToString(), "'x'");
  EXPECT_EQ(Value(true).ToString(), "true");
  EXPECT_EQ(Value(false).ToString(), "false");
  EXPECT_EQ(Value::Null().ToString(), "NULL");
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value(5).Hash(), Value(5).Hash());
  EXPECT_EQ(Value("s").Hash(), Value("s").Hash());
  // Different types with "same" payload should (practically) differ.
  EXPECT_NE(Value(0).Hash(), Value(false).Hash());
}

// --- Schema --------------------------------------------------------------------

Schema TestSchema() {
  return Schema({Column{"id", ValueType::kInt64},
                 Column{"name", ValueType::kString},
                 Column{"score", ValueType::kDouble}});
}

TEST(SchemaTest, BasicAccessors) {
  Schema s = TestSchema();
  EXPECT_EQ(s.num_columns(), 3u);
  EXPECT_EQ(s.column(1).name, "name");
  EXPECT_EQ(s.column(2).type, ValueType::kDouble);
}

TEST(SchemaTest, IndexOf) {
  Schema s = TestSchema();
  EXPECT_EQ(s.IndexOf("id"), 0u);
  EXPECT_EQ(s.IndexOf("score"), 2u);
  EXPECT_FALSE(s.IndexOf("missing").has_value());
}

TEST(SchemaTest, CreateRejectsDuplicates) {
  Result<Schema> r = Schema::Create(
      {Column{"a", ValueType::kInt64}, Column{"a", ValueType::kString}});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, ProjectReordersColumns) {
  Schema s = TestSchema().Project({2, 0});
  EXPECT_EQ(s.num_columns(), 2u);
  EXPECT_EQ(s.column(0).name, "score");
  EXPECT_EQ(s.column(1).name, "id");
}

TEST(SchemaTest, ConcatKeepsBothSides) {
  Schema left({Column{"a", ValueType::kInt64}});
  Schema right({Column{"b", ValueType::kString}});
  Schema both = left.Concat(right);
  EXPECT_EQ(both.num_columns(), 2u);
  EXPECT_EQ(both.column(0).name, "a");
  EXPECT_EQ(both.column(1).name, "b");
}

TEST(SchemaTest, ConcatRenamesClashes) {
  Schema left({Column{"a", ValueType::kInt64}});
  Schema right({Column{"a", ValueType::kString}});
  Schema both = left.Concat(right);
  EXPECT_EQ(both.num_columns(), 2u);
  EXPECT_NE(both.column(0).name, both.column(1).name);
}

TEST(SchemaTest, TypesMatchIgnoresNames) {
  Schema a({Column{"x", ValueType::kInt64}, Column{"y", ValueType::kString}});
  Schema b({Column{"p", ValueType::kInt64}, Column{"q", ValueType::kString}});
  Schema c({Column{"p", ValueType::kString}, Column{"q", ValueType::kInt64}});
  EXPECT_TRUE(a.TypesMatch(b));
  EXPECT_FALSE(a.TypesMatch(c));
  EXPECT_FALSE(a.TypesMatch(Schema({Column{"x", ValueType::kInt64}})));
}

// --- Tuple ---------------------------------------------------------------------

TEST(TupleTest, BasicAccessors) {
  Tuple t{Value(1), Value("a")};
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.at(0), Value(1));
  EXPECT_EQ(t.at(1), Value("a"));
}

TEST(TupleTest, ProjectAndConcat) {
  Tuple t{Value(1), Value("a"), Value(2.5)};
  EXPECT_EQ(t.Project({2, 0}), (Tuple{Value(2.5), Value(1)}));
  EXPECT_EQ((Tuple{Value(1)}).Concat(Tuple{Value(2)}),
            (Tuple{Value(1), Value(2)}));
}

TEST(TupleTest, EqualityAndHash) {
  Tuple a{Value(1), Value("x")};
  Tuple b{Value(1), Value("x")};
  Tuple c{Value(1), Value("y")};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.Hash(), b.Hash());
}

TEST(TupleTest, ToStringRendersValues) {
  EXPECT_EQ((Tuple{Value(1), Value("a")}).ToString(), "(1, 'a')");
  EXPECT_EQ(Tuple().ToString(), "()");
}

// --- Relation -------------------------------------------------------------------

TEST(RelationTest, InsertDeduplicates) {
  Relation rel(Schema({Column{"id", ValueType::kInt64}}));
  EXPECT_TRUE(*rel.Insert(Tuple{Value(1)}));
  EXPECT_TRUE(*rel.Insert(Tuple{Value(2)}));
  EXPECT_FALSE(*rel.Insert(Tuple{Value(1)}));  // duplicate
  EXPECT_EQ(rel.size(), 2u);
}

TEST(RelationTest, InsertValidatesArity) {
  Relation rel(TestSchema());
  Result<bool> r = rel.Insert(Tuple{Value(1)});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(RelationTest, InsertValidatesTypes) {
  Relation rel(TestSchema());
  Result<bool> r = rel.Insert(Tuple{Value("not-an-int"), Value("n"), Value(1.0)});
  EXPECT_FALSE(r.ok());
}

TEST(RelationTest, NullMatchesAnyColumnType) {
  Relation rel(TestSchema());
  EXPECT_TRUE(rel.Insert(Tuple{Value::Null(), Value("n"), Value::Null()}).ok());
}

TEST(RelationTest, ContainsAndIndexOf) {
  Relation rel(Schema({Column{"id", ValueType::kInt64}}));
  rel.InsertOrDie(Tuple{Value(10)});
  rel.InsertOrDie(Tuple{Value(20)});
  EXPECT_TRUE(rel.Contains(Tuple{Value(10)}));
  EXPECT_FALSE(rel.Contains(Tuple{Value(30)}));
  EXPECT_EQ(rel.IndexOf(Tuple{Value(20)}), 1u);
  EXPECT_FALSE(rel.IndexOf(Tuple{Value(30)}).has_value());
}

TEST(RelationTest, EqualityIsSetEquality) {
  Schema s({Column{"id", ValueType::kInt64}});
  Relation a(s);
  Relation b(s);
  a.InsertOrDie(Tuple{Value(1)});
  a.InsertOrDie(Tuple{Value(2)});
  b.InsertOrDie(Tuple{Value(2)});
  b.InsertOrDie(Tuple{Value(1)});
  EXPECT_EQ(a, b);
  b.InsertOrDie(Tuple{Value(3)});
  EXPECT_FALSE(a == b);
}

TEST(RelationTest, PreservesInsertionOrder) {
  Relation rel(Schema({Column{"id", ValueType::kInt64}}));
  rel.InsertOrDie(Tuple{Value(5)});
  rel.InsertOrDie(Tuple{Value(3)});
  rel.InsertOrDie(Tuple{Value(9)});
  EXPECT_EQ(rel.tuple(0), Tuple{Value(5)});
  EXPECT_EQ(rel.tuple(1), Tuple{Value(3)});
  EXPECT_EQ(rel.tuple(2), Tuple{Value(9)});
}

// --- Database -------------------------------------------------------------------

TEST(DatabaseTest, CreateAndLookup) {
  Database db;
  ASSERT_TRUE(db.CreateRelation("t", TestSchema()).ok());
  EXPECT_TRUE(db.HasRelation("t"));
  EXPECT_FALSE(db.HasRelation("u"));
  EXPECT_TRUE(db.GetRelation("t").ok());
  EXPECT_EQ(db.GetRelation("u").status().code(), StatusCode::kNotFound);
}

TEST(DatabaseTest, CreateRejectsDuplicateNames) {
  Database db;
  ASSERT_TRUE(db.CreateRelation("t", TestSchema()).ok());
  EXPECT_EQ(db.CreateRelation("t", TestSchema()).code(),
            StatusCode::kAlreadyExists);
}

TEST(DatabaseTest, InsertRoutesToRelation) {
  Database db;
  ASSERT_TRUE(
      db.CreateRelation("t", Schema({Column{"id", ValueType::kInt64}})).ok());
  EXPECT_TRUE(*db.Insert("t", Tuple{Value(1)}));
  EXPECT_FALSE(*db.Insert("t", Tuple{Value(1)}));
  EXPECT_FALSE(db.Insert("missing", Tuple{Value(1)}).ok());
  EXPECT_EQ(db.TotalTuples(), 1u);
}

TEST(DatabaseTest, RelationNamesSorted) {
  Database db;
  ASSERT_TRUE(db.CreateRelation("zeta", TestSchema()).ok());
  ASSERT_TRUE(db.CreateRelation("alpha", TestSchema()).ok());
  EXPECT_EQ(db.RelationNames(), (std::vector<std::string>{"alpha", "zeta"}));
}

}  // namespace
}  // namespace consentdb::relational
