#include "consentdb/consent/wal.h"

#include <algorithm>

#include "consentdb/consent/oracle.h"
#include "consentdb/consent/snapshot.h"
#include "consentdb/obs/names.h"
#include "consentdb/util/crc32.h"

namespace consentdb::consent {

namespace {

constexpr char kWalMagic[] = "consentdb-wal 1\n";
constexpr size_t kWalMagicLen = sizeof(kWalMagic) - 1;  // 16
constexpr uint8_t kRecordAnswer = 1;
constexpr uint8_t kRecordShardHeader = 2;
constexpr size_t kAnswerPayloadLen = 1 + 1 + 8;  // type, answer, var id
// type, reserved, shard id, num shards, generation
constexpr size_t kShardPayloadLen = 1 + 1 + 4 + 4 + 8;
// Framing sanity bound: no legal payload comes close, so a length field
// beyond it means the length bytes themselves are damaged.
constexpr uint32_t kMaxPayloadLen = 1u << 20;

void PutFixed32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutFixed64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

uint32_t GetFixed32(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | static_cast<uint8_t>(p[i]);
  return v;
}

uint64_t GetFixed64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | static_cast<uint8_t>(p[i]);
  return v;
}

std::string FrameRecord(const std::string& payload) {
  std::string record;
  record.reserve(8 + payload.size());
  PutFixed32(&record, static_cast<uint32_t>(payload.size()));
  PutFixed32(&record, Crc32(payload));
  record += payload;
  return record;
}

std::string EncodeAnswerRecord(VarId x, bool answer) {
  std::string payload;
  payload.reserve(kAnswerPayloadLen);
  payload.push_back(static_cast<char>(kRecordAnswer));
  payload.push_back(static_cast<char>(answer ? 1 : 0));
  PutFixed64(&payload, static_cast<uint64_t>(x));
  return FrameRecord(payload);
}

std::string EncodeShardRecord(const WalShardInfo& shard) {
  std::string payload;
  payload.reserve(kShardPayloadLen);
  payload.push_back(static_cast<char>(kRecordShardHeader));
  payload.push_back(0);  // reserved
  PutFixed32(&payload, shard.shard_id);
  PutFixed32(&payload, shard.num_shards);
  PutFixed64(&payload, shard.generation);
  return FrameRecord(payload);
}

// Magic plus, for a shard-set member, the stamped shard header.
std::string WalHeaderBytes(const std::optional<WalShardInfo>& shard) {
  std::string out(kWalMagic, kWalMagicLen);
  if (shard.has_value()) out += EncodeShardRecord(*shard);
  return out;
}

void ParseRecords(std::string_view content, size_t pos, WalReplay* replay);

// Parses raw WAL bytes (magic included). Factored out of ReadWal so
// WalWriter::Open can validate and heal an existing file from the same code.
Result<WalReplay> ParseWal(std::string_view content, const std::string& path) {
  WalReplay replay;
  if (content.size() < kWalMagicLen) {
    // A crash during the very first write can leave a prefix of the magic —
    // including the zero-byte file of a crash between create and the header
    // append; anything else is not a WAL. Either way the header is torn.
    if (std::string_view(kWalMagic, content.size()) == content) {
      replay.torn_tail = true;
      replay.bytes_dropped = content.size();
      return replay;
    }
    return Status::InvalidArgument("not a consentdb wal: " + path);
  }
  if (content.compare(0, kWalMagicLen, kWalMagic) != 0) {
    return Status::InvalidArgument("not a consentdb wal: " + path);
  }
  ParseRecords(content, kWalMagicLen, &replay);
  return replay;
}

// The record-stream loop of ParseWal, shared with the public
// ParseWalRecords (incremental follower tails start mid-file, after the
// magic they already consumed).
void ParseRecords(std::string_view content, size_t pos, WalReplay* out) {
  WalReplay& replay = *out;
  while (pos < content.size()) {
    const size_t remaining = content.size() - pos;
    if (remaining < 8) {  // header cut mid-bytes
      replay.torn_tail = true;
      replay.bytes_dropped = remaining;
      break;
    }
    const uint32_t payload_len = GetFixed32(content.data() + pos);
    const uint32_t crc = GetFixed32(content.data() + pos + 4);
    if (payload_len > kMaxPayloadLen) {
      replay.corrupt_record = true;
      replay.bytes_dropped = remaining;
      break;
    }
    if (remaining - 8 < payload_len) {  // payload cut mid-bytes
      replay.torn_tail = true;
      replay.bytes_dropped = remaining;
      break;
    }
    const std::string_view payload(content.data() + pos + 8, payload_len);
    if (Crc32(payload) != crc) {
      replay.corrupt_record = true;
      replay.bytes_dropped = remaining;
      break;
    }
    if (payload_len == kAnswerPayloadLen &&
        static_cast<uint8_t>(payload[0]) == kRecordAnswer &&
        static_cast<uint8_t>(payload[1]) <= 1) {
      const bool answer = payload[1] != 0;
      const VarId x = static_cast<VarId>(GetFixed64(payload.data() + 2));
      replay.answers.emplace_back(x, answer);
      ++replay.records;
    } else if (payload_len == kShardPayloadLen &&
               static_cast<uint8_t>(payload[0]) == kRecordShardHeader &&
               static_cast<uint8_t>(payload[1]) == 0) {
      WalShardInfo shard;
      shard.shard_id = GetFixed32(payload.data() + 2);
      shard.num_shards = GetFixed32(payload.data() + 6);
      shard.generation = GetFixed64(payload.data() + 10);
      replay.shard = shard;
    } else {
      // Checksum fine but contents unintelligible: treat as corruption, keep
      // the prefix.
      replay.corrupt_record = true;
      replay.bytes_dropped = remaining;
      break;
    }
    pos += 8 + payload_len;
  }
}

std::string EncodeWal(const std::optional<WalShardInfo>& shard,
                      const std::vector<std::pair<VarId, bool>>& answers) {
  std::string out = WalHeaderBytes(shard);
  for (const auto& [x, answer] : answers) out += EncodeAnswerRecord(x, answer);
  return out;
}

// tmp + fsync + atomic rename: the canonical crash-safe full-file replace.
Status WriteFileAtomically(Env* env, const std::string& path,
                           std::string_view data) {
  const std::string tmp = path + ".tmp";
  CONSENTDB_RETURN_IF_ERROR(env->WriteStringToFile(tmp, data, /*sync=*/true));
  return env->RenameFile(tmp, path);
}

}  // namespace

std::string WalSnapshotPath(const std::string& wal_path) {
  return wal_path + ".snap";
}

std::string ShardWalPath(const std::string& base_path, size_t shard_id) {
  return base_path + ".shard" + std::to_string(shard_id);
}

WalWriter::WalWriter(Env* env, std::string path, WalOptions options)
    : env_(env),
      path_(std::move(path)),
      options_(options),
      clock_(options.clock != nullptr ? options.clock : RealClock()) {}

WalWriter::~WalWriter() {
  MutexLock lock(mu_);
  if (file_ != nullptr) {
    // Best effort only — and never throw: the destructor commonly runs
    // while unwinding a CrashInjected, where the env rejects all further
    // I/O by throwing again. Letting that escape would terminate().
    try {
      CONSENTDB_IGNORE_STATUS(SyncLocked());
      CONSENTDB_IGNORE_STATUS(file_->Close());
    } catch (const CrashInjected&) {
      // Process is "dead"; whatever was unsynced is lost, by design.
    }
  }
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(Env* env, std::string path,
                                                   WalOptions options) {
  std::unique_ptr<WalWriter> writer(new WalWriter(env, std::move(path), options));
  MutexLock lock(writer->mu_);
  if (env->FileExists(writer->path_)) {
    // Heal a damaged tail before appending after it.
    CONSENTDB_ASSIGN_OR_RETURN(std::string content,
                               env->ReadFileToString(writer->path_));
    CONSENTDB_ASSIGN_OR_RETURN(WalReplay replay,
                               ParseWal(content, writer->path_));
    // Shard-set safety: a member file must carry exactly the declared
    // header, and a plain open must never adopt a shard member. The one
    // tolerated gap is a headerless *empty* member — the residue of a crash
    // between file creation and the header fsync — which holds no answers
    // and is re-stamped by the heal below.
    if (options.shard.has_value()) {
      if (replay.shard.has_value()) {
        if (*replay.shard != *options.shard) {
          return Status::FailedPrecondition(
              "wal shard header mismatch (foreign shard set member?): " +
              writer->path_);
        }
      } else if (!replay.answers.empty()) {
        return Status::FailedPrecondition(
            "wal carries records but no shard header: " + writer->path_);
      }
    } else if (replay.shard.has_value()) {
      return Status::FailedPrecondition(
          "wal belongs to a sharded log set; open it with matching "
          "WalOptions::shard: " + writer->path_);
    }
    if (replay.torn_tail || replay.corrupt_record ||
        content.size() < kWalMagicLen ||
        (options.shard.has_value() && !replay.shard.has_value())) {
      CONSENTDB_RETURN_IF_ERROR(WriteFileAtomically(
          env, writer->path_, EncodeWal(options.shard, replay.answers)));
    }
    CONSENTDB_ASSIGN_OR_RETURN(writer->file_,
                               env->NewWritableFile(writer->path_, true));
  } else {
    CONSENTDB_ASSIGN_OR_RETURN(writer->file_,
                               env->NewWritableFile(writer->path_, false));
    CONSENTDB_RETURN_IF_ERROR(
        writer->file_->Append(WalHeaderBytes(options.shard)));
    CONSENTDB_RETURN_IF_ERROR(writer->file_->Sync());
  }
  writer->last_sync_nanos_ = writer->clock_->NowNanos();
  return writer;
}

Status WalWriter::AppendAnswer(VarId x, bool answer) {
  MutexLock lock(mu_);
  if (file_ == nullptr) {
    return Status::FailedPrecondition("wal is closed: " + path_);
  }
  const std::string record = EncodeAnswerRecord(x, answer);
  {
    obs::Span span(options_.spans, obs::names::kSpanWalAppend);
    span.SetArg(obs::names::kArgBytes, record.size());
    CONSENTDB_RETURN_IF_ERROR(file_->Append(record));
  }
  ++records_;
  ++pending_;
  obs::Increment(options_.metrics, "wal.appends");
  obs::Increment(options_.metrics, "wal.bytes", record.size());
  if (options_.group_commit_window_nanos <= 0 ||
      clock_->NowNanos() - last_sync_nanos_ >=
          options_.group_commit_window_nanos) {
    CONSENTDB_RETURN_IF_ERROR(SyncLocked());
  }
  return Status::OK();
}

Status WalWriter::Sync() {
  MutexLock lock(mu_);
  if (file_ == nullptr) {
    return Status::FailedPrecondition("wal is closed: " + path_);
  }
  return SyncLocked();
}

Status WalWriter::SyncLocked() {
  if (pending_ == 0) {
    last_sync_nanos_ = clock_->NowNanos();
    return Status::OK();
  }
  {
    obs::Span span(options_.spans, obs::names::kSpanWalFsync);
    span.SetArg(obs::names::kArgRecords, pending_);
    CONSENTDB_RETURN_IF_ERROR(file_->Sync());
  }
  obs::Increment(options_.metrics, "wal.syncs");
  if (options_.metrics != nullptr) {
    options_.metrics->GetHistogram("wal.batch_records", obs::WalBatchBuckets())
        ->Observe(pending_);
  }
  pending_ = 0;
  ++syncs_;
  last_sync_nanos_ = clock_->NowNanos();
  return Status::OK();
}

Status WalWriter::CompactTo(
    const std::vector<std::pair<VarId, bool>>& answers) {
  MutexLock lock(mu_);
  if (file_ == nullptr) {
    return Status::FailedPrecondition("wal is closed: " + path_);
  }
  obs::Span span(options_.spans, obs::names::kSpanWalCompact);
  span.SetArg(obs::names::kArgRecords, answers.size());
  // Step 1: the snapshot sidecar gets the full answer set. After its rename
  // lands, the old WAL records are redundant (replay over the snapshot is
  // idempotent), so a crash anywhere past this point loses nothing.
  CONSENTDB_RETURN_IF_ERROR(SyncLocked());
  CONSENTDB_RETURN_IF_ERROR(WriteFileAtomically(
      env_, WalSnapshotPath(path_), SaveLedgerSnapshot(answers)));
  // Step 2: reset the WAL to empty and reopen the append handle.
  CONSENTDB_RETURN_IF_ERROR(file_->Close());
  file_ = nullptr;
  CONSENTDB_RETURN_IF_ERROR(
      WriteFileAtomically(env_, path_, WalHeaderBytes(options_.shard)));
  CONSENTDB_ASSIGN_OR_RETURN(file_, env_->NewWritableFile(path_, true));
  ++compactions_;
  obs::Increment(options_.metrics, "wal.compactions");
  return Status::OK();
}

Status WalWriter::Close() {
  MutexLock lock(mu_);
  if (file_ == nullptr) return Status::OK();
  CONSENTDB_RETURN_IF_ERROR(SyncLocked());
  Status s = file_->Close();
  file_ = nullptr;
  return s;
}

uint64_t WalWriter::records_appended() const {
  MutexLock lock(mu_);
  return records_;
}

uint64_t WalWriter::pending_records() const {
  MutexLock lock(mu_);
  return pending_;
}

uint64_t WalWriter::syncs() const {
  MutexLock lock(mu_);
  return syncs_;
}

uint64_t WalWriter::compactions() const {
  MutexLock lock(mu_);
  return compactions_;
}

Result<WalReplay> ReadWal(Env* env, const std::string& path) {
  CONSENTDB_ASSIGN_OR_RETURN(std::string content, env->ReadFileToString(path));
  return ParseWal(content, path);
}

Result<WalReplay> ParseWalContent(std::string_view content,
                                  const std::string& path) {
  return ParseWal(content, path);
}

WalReplay ParseWalRecords(std::string_view bytes) {
  WalReplay replay;
  ParseRecords(bytes, 0, &replay);
  return replay;
}

Result<RecoveryStats> RecoverLedger(Env* env, const std::string& wal_path,
                                    ConsentLedger* ledger,
                                    obs::MetricsRegistry* metrics,
                                    Clock* clock) {
  if (clock == nullptr) clock = RealClock();
  const int64_t start_nanos = clock->NowNanos();
  RecoveryStats stats;

  using AnswerVec = std::vector<std::pair<VarId, bool>>;
  const std::string snap_path = WalSnapshotPath(wal_path);
  if (env->FileExists(snap_path)) {
    CONSENTDB_ASSIGN_OR_RETURN(std::string text,
                               env->ReadFileToString(snap_path));
    CONSENTDB_ASSIGN_OR_RETURN(AnswerVec answers, LoadLedgerSnapshot(text));
    for (const auto& [x, answer] : answers) {
      CONSENTDB_RETURN_IF_ERROR(ledger->RestoreAnswer(x, answer));
    }
    stats.snapshot_answers = answers.size();
  }

  if (env->FileExists(wal_path)) {
    CONSENTDB_ASSIGN_OR_RETURN(WalReplay replay, ReadWal(env, wal_path));
    for (const auto& [x, answer] : replay.answers) {
      CONSENTDB_RETURN_IF_ERROR(ledger->RestoreAnswer(x, answer));
    }
    stats.wal_records = replay.records;
    stats.torn_tail = replay.torn_tail;
    stats.corrupt_record = replay.corrupt_record;
    stats.bytes_dropped = replay.bytes_dropped;
    stats.shard = replay.shard;
  }

  stats.recovered_answers = ledger->size();
  stats.replay_nanos = clock->NowNanos() - start_nanos;

  obs::Increment(metrics, "recovery.replays");
  obs::Increment(metrics, "recovery.replayed_records", stats.wal_records);
  obs::Increment(metrics, "recovery.snapshot_answers", stats.snapshot_answers);
  obs::Increment(metrics, "recovery.recovered_answers",
                 stats.recovered_answers);
  if (stats.torn_tail) obs::Increment(metrics, "recovery.torn_tails");
  if (stats.corrupt_record) obs::Increment(metrics, "recovery.corrupt_records");
  obs::Observe(metrics, "recovery.replay_ns",
               static_cast<uint64_t>(
                   std::max<int64_t>(0, stats.replay_nanos)));
  return stats;
}

std::vector<WalWriter*> ShardWalSet::pointers() const {
  std::vector<WalWriter*> out;
  out.reserve(wals.size());
  for (const auto& wal : wals) out.push_back(wal.get());
  return out;
}

Result<ShardWalSet> OpenShardWalSet(Env* env, const std::string& base_path,
                                    size_t num_shards, uint64_t generation,
                                    WalOptions options) {
  if (num_shards == 0) {
    return Status::InvalidArgument("shard wal set needs at least one shard");
  }
  // Peek at the existing members first: an already-stamped generation wins
  // over the argument, disagreements fail before any file is touched, and a
  // member stamped for a different set size or slot is rejected outright.
  std::optional<uint64_t> existing;
  for (size_t k = 0; k < num_shards; ++k) {
    const std::string path = ShardWalPath(base_path, k);
    if (!env->FileExists(path)) continue;
    CONSENTDB_ASSIGN_OR_RETURN(WalReplay replay, ReadWal(env, path));
    // Headerless members are creation-crash residue; Open heals and
    // re-stamps them (or rejects them if they somehow carry records).
    if (!replay.shard.has_value()) continue;
    if (replay.shard->num_shards != num_shards ||
        replay.shard->shard_id != k) {
      return Status::FailedPrecondition(
          "wal stamped for a different shard set (want shard " +
          std::to_string(k) + "/" + std::to_string(num_shards) + "): " + path);
    }
    if (existing.has_value() && *existing != replay.shard->generation) {
      return Status::FailedPrecondition(
          "mixed-generation shard wal set at " + base_path);
    }
    existing = replay.shard->generation;
  }
  ShardWalSet set;
  set.generation = existing.value_or(generation);
  set.wals.reserve(num_shards);
  for (size_t k = 0; k < num_shards; ++k) {
    WalOptions shard_options = options;
    shard_options.shard = WalShardInfo{static_cast<uint32_t>(k),
                                       static_cast<uint32_t>(num_shards),
                                       set.generation};
    CONSENTDB_ASSIGN_OR_RETURN(
        std::unique_ptr<WalWriter> wal,
        WalWriter::Open(env, ShardWalPath(base_path, k), shard_options));
    set.wals.push_back(std::move(wal));
  }
  return set;
}

}  // namespace consentdb::consent
