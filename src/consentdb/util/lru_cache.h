// A thread-safe fixed-capacity LRU map, used by the session engine for the
// shared plan and provenance caches. Values are returned by copy, so cached
// types should be cheap handles (shared_ptr, PlanPtr) to immutable payloads
// — a value stays alive in the caller even if evicted concurrently.
//
// One mutex guards the recency list, the index map and the hit/miss/eviction
// tallies (annotated for -Wthread-safety); capacity_ is const and lock-free.

#ifndef CONSENTDB_UTIL_LRU_CACHE_H_
#define CONSENTDB_UTIL_LRU_CACHE_H_

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>

#include "consentdb/util/check.h"
#include "consentdb/util/thread_annotations.h"

namespace consentdb {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class LruCache {
 public:
  explicit LruCache(size_t capacity) : capacity_(capacity) {
    CONSENTDB_CHECK(capacity >= 1, "LRU cache capacity must be positive");
  }

  LruCache(const LruCache&) = delete;
  LruCache& operator=(const LruCache&) = delete;

  // Returns the cached value and marks it most-recently-used.
  std::optional<Value> Get(const Key& key) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    auto it = map_.find(key);
    if (it == map_.end()) {
      ++misses_;
      return std::nullopt;
    }
    ++hits_;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->second;
  }

  // Inserts or overwrites; evicts the least-recently-used entry at capacity.
  void Put(const Key& key, Value value) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    if (map_.size() >= capacity_) {
      map_.erase(order_.back().first);
      order_.pop_back();
      ++evictions_;
    }
    order_.emplace_front(key, std::move(value));
    map_[key] = order_.begin();
  }

  void Clear() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    map_.clear();
    order_.clear();
  }

  size_t size() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return map_.size();
  }
  size_t capacity() const { return capacity_; }

  uint64_t hits() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return hits_;
  }
  uint64_t misses() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return misses_;
  }
  uint64_t evictions() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return evictions_;
  }

 private:
  using Entry = std::pair<Key, Value>;

  const size_t capacity_;
  mutable Mutex mu_;
  // front = most recently used
  std::list<Entry> order_ GUARDED_BY(mu_);
  std::unordered_map<Key, typename std::list<Entry>::iterator, Hash> map_
      GUARDED_BY(mu_);
  uint64_t hits_ GUARDED_BY(mu_) = 0;
  uint64_t misses_ GUARDED_BY(mu_) = 0;
  uint64_t evictions_ GUARDED_BY(mu_) = 0;
};

}  // namespace consentdb

#endif  // CONSENTDB_UTIL_LRU_CACHE_H_
