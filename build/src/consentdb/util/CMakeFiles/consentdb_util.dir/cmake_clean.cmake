file(REMOVE_RECURSE
  "CMakeFiles/consentdb_util.dir/json_writer.cc.o"
  "CMakeFiles/consentdb_util.dir/json_writer.cc.o.d"
  "CMakeFiles/consentdb_util.dir/status.cc.o"
  "CMakeFiles/consentdb_util.dir/status.cc.o.d"
  "CMakeFiles/consentdb_util.dir/string_util.cc.o"
  "CMakeFiles/consentdb_util.dir/string_util.cc.o.d"
  "libconsentdb_util.a"
  "libconsentdb_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consentdb_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
