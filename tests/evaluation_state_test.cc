#include <gtest/gtest.h>

#include "consentdb/strategy/evaluation_state.h"
#include "consentdb/util/rng.h"

namespace consentdb::strategy {
namespace {

using provenance::VarSet;

std::vector<double> UniformPi(size_t n, double p = 0.5) {
  return std::vector<double>(n, p);
}

// --- Construction ----------------------------------------------------------------

TEST(EvaluationStateTest, ConstantsAreDecidedImmediately) {
  EvaluationState state({Dnf::ConstantTrue(), Dnf::ConstantFalse(),
                         Dnf({VarSet{0}})},
                        UniformPi(1));
  EXPECT_EQ(state.formula_value(0), Truth::kTrue);
  EXPECT_EQ(state.formula_value(1), Truth::kFalse);
  EXPECT_EQ(state.formula_value(2), Truth::kUnknown);
  EXPECT_EQ(state.num_undecided(), 1u);
}

TEST(EvaluationStateTest, AllVarsSortedAndUseful) {
  EvaluationState state({Dnf({VarSet{3, 1}, VarSet{5}})}, UniformPi(6));
  EXPECT_EQ(state.AllVars(), (std::vector<VarId>{1, 3, 5}));
  for (VarId x : {1u, 3u, 5u}) EXPECT_TRUE(state.IsUseful(x));
  EXPECT_FALSE(state.IsUseful(0));  // not in any formula
}

// --- Assignment mechanics -----------------------------------------------------------

TEST(EvaluationStateTest, TrueConjunctionDecidesFormula) {
  EvaluationState state({Dnf({VarSet{0, 1}})}, UniformPi(2));
  state.Assign(0, true);
  EXPECT_EQ(state.formula_value(0), Truth::kUnknown);
  state.Assign(1, true);
  EXPECT_EQ(state.formula_value(0), Truth::kTrue);
  EXPECT_TRUE(state.AllDecided());
}

TEST(EvaluationStateTest, FalseVariableFalsifiesConjunction) {
  EvaluationState state({Dnf({VarSet{0, 1}})}, UniformPi(2));
  state.Assign(0, false);
  EXPECT_EQ(state.formula_value(0), Truth::kFalse);
  EXPECT_TRUE(state.AllDecided());
  EXPECT_FALSE(state.IsUseful(1));  // formula decided: nothing useful left
}

TEST(EvaluationStateTest, DisjunctionNeedsAllFalse) {
  EvaluationState state({Dnf({VarSet{0}, VarSet{1}, VarSet{2}})},
                        UniformPi(3));
  state.Assign(0, false);
  state.Assign(1, false);
  EXPECT_EQ(state.formula_value(0), Truth::kUnknown);
  state.Assign(2, false);
  EXPECT_EQ(state.formula_value(0), Truth::kFalse);
}

TEST(EvaluationStateTest, SharedVariableAffectsAllFormulas) {
  EvaluationState state({Dnf({VarSet{0, 1}}), Dnf({VarSet{0, 2}})},
                        UniformPi(3));
  state.Assign(0, false);
  EXPECT_EQ(state.formula_value(0), Truth::kFalse);
  EXPECT_EQ(state.formula_value(1), Truth::kFalse);
}

TEST(EvaluationStateTest, UsefulnessShrinksWithFalsifiedTerms) {
  // x1 only occurs in the term {0,1}; falsifying via x0 makes x1 useless.
  EvaluationState state({Dnf({VarSet{0, 1}, VarSet{2}})}, UniformPi(3));
  state.Assign(0, false);
  EXPECT_EQ(state.formula_value(0), Truth::kUnknown);
  EXPECT_FALSE(state.IsUseful(1));
  EXPECT_TRUE(state.IsUseful(2));
}

TEST(EvaluationStateTest, AbsorptionRetiresSubsumedResiduals) {
  // Terms {0} and {0,1} never coexist (construction absorbs), but {0,2} and
  // {1,2}: after x2 = true, residuals {0} and {1} stay; after a *shrink*
  // making {1} ⊆ {0,1}: use terms {1,2} and {0,1}: x2=true shrinks {1,2} to
  // {1}, which absorbs {0,1}. x0 becomes useless.
  EvaluationState state({Dnf({VarSet{1, 2}, VarSet{0, 1}})}, UniformPi(3));
  state.Assign(2, true);
  EXPECT_EQ(state.formula_value(0), Truth::kUnknown);
  EXPECT_FALSE(state.IsUseful(0)) << "x0's term is subsumed by residual {x1}";
  EXPECT_TRUE(state.IsUseful(1));
  state.Assign(1, true);
  EXPECT_EQ(state.formula_value(0), Truth::kTrue);
}

TEST(EvaluationStateTest, LiveTermCountTracksFreq) {
  EvaluationState state(
      {Dnf({VarSet{0, 1}, VarSet{0, 2}}), Dnf({VarSet{0, 3}})},
      UniformPi(4));
  EXPECT_EQ(state.LiveTermCount(0), 3u);
  EXPECT_EQ(state.LiveTermCount(1), 1u);
  state.Assign(1, false);  // falsifies {0,1}
  EXPECT_EQ(state.LiveTermCount(0), 2u);
}

// --- Residual structure ---------------------------------------------------------------

TEST(EvaluationStateTest, ResidualOverallReadOnce) {
  EvaluationState shared({Dnf({VarSet{0, 1}}), Dnf({VarSet{0, 2}})},
                         UniformPi(3));
  EXPECT_FALSE(shared.ResidualOverallReadOnce());
  // Deciding formula 1 removes the sharing.
  shared.Assign(2, false);
  EXPECT_EQ(shared.formula_value(1), Truth::kFalse);
  EXPECT_TRUE(shared.ResidualOverallReadOnce());
}

TEST(EvaluationStateTest, MaxLiveTermsPerFormula) {
  EvaluationState state(
      {Dnf({VarSet{0}, VarSet{1}, VarSet{2}}), Dnf({VarSet{3}})},
      UniformPi(4));
  EXPECT_EQ(state.MaxLiveTermsPerFormula(), 3u);
  state.Assign(0, false);
  EXPECT_EQ(state.MaxLiveTermsPerFormula(), 2u);
}

// --- CNF attachment & Q-value ----------------------------------------------------------

TEST(EvaluationStateTest, AttachCnfsComputesClauseCounts) {
  // (x0∧x1) ∨ x2: CNF (x0∨x2)(x1∨x2) -> 2 clauses.
  EvaluationState state({Dnf({VarSet{0, 1}, VarSet{2}})}, UniformPi(3));
  ASSERT_TRUE(state.AttachCnfs().ok());
  EXPECT_TRUE(state.cnfs_attached());
  EXPECT_EQ(state.live_clauses(0), 2u);
}

TEST(EvaluationStateTest, AttachCnfsHonoursBudget) {
  std::vector<VarSet> terms;
  for (VarId i = 0; i < 14; ++i) terms.push_back(VarSet{2 * i, 2 * i + 1});
  EvaluationState state({Dnf(std::move(terms))}, UniformPi(28));
  provenance::NormalFormLimits limits;
  limits.max_sets = 100;
  Status st = state.AttachCnfs(limits);
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(state.cnfs_attached());
}

TEST(EvaluationStateTest, ClausePathDecidesFalseEarly) {
  // (x0∧x1) ∨ (x0∧x2): CNF (x0)(x1∨x2). Setting x0=false falsifies the
  // singleton clause -> formula decided False in one probe.
  EvaluationState state({Dnf({VarSet{0, 1}, VarSet{0, 2}})}, UniformPi(3));
  ASSERT_TRUE(state.AttachCnfs().ok());
  state.Assign(0, false);
  EXPECT_EQ(state.formula_value(0), Truth::kFalse);
  EXPECT_TRUE(state.AllDecided());
}

TEST(EvaluationStateTest, QValuePrefersDecisiveVariable) {
  // (x0∧x1) ∨ (x0∧x2): x0 decides False alone and shrinks both terms when
  // True; it must out-score x1/x2.
  EvaluationState state({Dnf({VarSet{0, 1}, VarSet{0, 2}})}, UniformPi(3));
  ASSERT_TRUE(state.AttachCnfs().ok());
  EXPECT_GT(state.QValueScore(0), state.QValueScore(1));
  EXPECT_EQ(state.QValueArgMax(), 0u);
}

TEST(EvaluationStateTest, QValueScoreMatchesNaiveDefinition) {
  // Cross-check the incremental Q-value against a direct computation from
  // the DHK definition on a nontrivial system.
  std::vector<Dnf> dnfs = {Dnf({VarSet{0, 1}, VarSet{2, 3}}),
                           Dnf({VarSet{1, 2}, VarSet{3, 4}, VarSet{0, 4}})};
  std::vector<double> pi = {0.3, 0.5, 0.6, 0.7, 0.4};
  EvaluationState state(dnfs, pi);
  ASSERT_TRUE(state.AttachCnfs().ok());

  std::vector<provenance::Cnf> cnfs;
  for (const Dnf& d : dnfs) cnfs.push_back(*DnfToCnf(d));

  auto naive_q = [&](const provenance::PartialValuation& val) {
    double q = 0;
    for (size_t j = 0; j < dnfs.size(); ++j) {
      double total_terms = static_cast<double>(dnfs[j].num_terms());
      double total_clauses = static_cast<double>(cnfs[j].num_clauses());
      double t = 0;
      double c = 0;
      for (const VarSet& term : dnfs[j].terms()) {
        Dnf single({term});
        if (single.Evaluate(val) == Truth::kUnknown) t += 1;
      }
      for (const VarSet& clause : cnfs[j].clauses()) {
        provenance::Cnf single({clause});
        if (single.Evaluate(val) == Truth::kUnknown) c += 1;
      }
      if (dnfs[j].Evaluate(val) == Truth::kTrue) c = 0;
      if (dnfs[j].Evaluate(val) == Truth::kFalse) t = 0;
      q += total_terms * total_clauses - t * c;
    }
    return q;
  };

  provenance::PartialValuation empty;
  double q_now = naive_q(empty);
  for (VarId x = 0; x < 5; ++x) {
    provenance::PartialValuation vt;
    vt.Set(x, true);
    provenance::PartialValuation vf;
    vf.Set(x, false);
    double expected = pi[x] * (naive_q(vt) - q_now) +
                      (1 - pi[x]) * (naive_q(vf) - q_now);
    EXPECT_NEAR(state.QValueScore(x), expected, 1e-9) << "x" << x;
  }
}

// --- Property test: incremental state vs naive recomputation ----------------------------

class StateConsistencyTest : public ::testing::TestWithParam<int> {};

TEST_P(StateConsistencyTest, MatchesNaiveSimplification) {
  Rng rng(9000 + GetParam());
  // Random formula system.
  size_t num_vars = 8 + rng.UniformIndex(5);
  size_t num_formulas = 2 + rng.UniformIndex(4);
  std::vector<Dnf> dnfs;
  for (size_t j = 0; j < num_formulas; ++j) {
    std::vector<VarSet> terms;
    size_t num_terms = 1 + rng.UniformIndex(4);
    for (size_t t = 0; t < num_terms; ++t) {
      std::vector<VarId> term;
      size_t size = 1 + rng.UniformIndex(3);
      for (size_t s = 0; s < size; ++s) {
        term.push_back(static_cast<VarId>(rng.UniformIndex(num_vars)));
      }
      terms.emplace_back(std::move(term));
    }
    dnfs.emplace_back(std::move(terms));
  }
  EvaluationState state(dnfs, UniformPi(num_vars, 0.6));
  ASSERT_TRUE(state.AttachCnfs().ok());

  provenance::PartialValuation val(num_vars);
  std::vector<VarId> order(num_vars);
  for (size_t i = 0; i < num_vars; ++i) order[i] = static_cast<VarId>(i);
  rng.Shuffle(order);

  for (VarId x : order) {
    bool value = rng.Bernoulli(0.6);
    state.Assign(x, value);
    val.Set(x, value);
    // 1. Formula values match Kleene evaluation of the original DNFs.
    for (size_t j = 0; j < dnfs.size(); ++j) {
      EXPECT_EQ(state.formula_value(j), dnfs[j].Evaluate(val))
          << "formula " << j << " after x" << x << "=" << value;
    }
    // 2. Useful variables match the simplified residual system exactly:
    //    a var is useful iff it occurs in the (absorbed) simplification of
    //    some undecided formula.
    std::vector<bool> expected_useful(num_vars, false);
    for (size_t j = 0; j < dnfs.size(); ++j) {
      if (dnfs[j].Evaluate(val) != Truth::kUnknown) continue;
      Dnf residual = dnfs[j].Simplify(val);
      for (VarId v : residual.Vars()) expected_useful[v] = true;
    }
    for (VarId v = 0; v < num_vars; ++v) {
      bool expected = expected_useful[v] && val.Get(v) == Truth::kUnknown;
      EXPECT_EQ(state.IsUseful(v), expected)
          << "usefulness of x" << v << " after assigning x" << x;
    }
    // 3. Live term counts match the residual DNFs.
    std::vector<size_t> expected_counts(num_vars, 0);
    for (size_t j = 0; j < dnfs.size(); ++j) {
      if (dnfs[j].Evaluate(val) != Truth::kUnknown) continue;
      Dnf residual = dnfs[j].Simplify(val);
      for (const VarSet& term : residual.terms()) {
        for (VarId v : term) ++expected_counts[v];
      }
    }
    for (VarId v = 0; v < num_vars; ++v) {
      if (val.Get(v) != Truth::kUnknown) continue;
      EXPECT_EQ(state.LiveTermCount(v), expected_counts[v])
          << "live-term count of x" << v;
    }
  }
  EXPECT_TRUE(state.AllDecided());
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, StateConsistencyTest,
                         ::testing::Range(0, 30));

}  // namespace
}  // namespace consentdb::strategy
