// The hardness-proof constructions of the paper, as runnable instance
// builders: they witness the two-way correspondence between queries and
// monotone k-DNFs (Prop. IV.2) and the VERTEX-COVER reductions behind
// Thms. IV.9/IV.10/IV.15. Used by tests (to validate the constructions) and
// by the Table I benchmark.

#ifndef CONSENTDB_DATASETS_REDUCTIONS_H_
#define CONSENTDB_DATASETS_REDUCTIONS_H_

#include <utility>
#include <vector>

#include "consentdb/consent/shared_database.h"
#include "consentdb/provenance/normal_form.h"
#include "consentdb/query/plan.h"
#include "consentdb/util/result.h"

namespace consentdb::datasets {

// An undirected graph on vertices 0..num_vertices-1.
struct Graph {
  size_t num_vertices = 0;
  std::vector<std::pair<size_t, size_t>> edges;
};

// Generates a random cubic-ish graph (every vertex degree <= 3; cubic where
// the paper's Thm. IV.10 reduction needs exactly 3, vertices of lower degree
// repeat an incident edge).
Graph RandomGraph(size_t num_vertices, size_t num_edges, Rng& rng);

// --- Prop. IV.2 (2): k-DNF -> SPJ instance -----------------------------------
//
// Builds relations Var(x) and Clause(x_1..x_k) encoding `dnf`, plus the
// fixed SPJ query ans() :- Clause(z_1..z_k), Var(z_1), ..., Var(z_k) with
// everything projected out. The single output tuple's provenance equals
// `dnf` up to the fresh clause-tuple variables (which get probability 1).
struct SpjInstance {
  consent::SharedDatabase sdb;
  query::PlanPtr plan;
  // Maps each variable of the input DNF to the consent variable annotating
  // its Var-tuple, indexed by the input VarId.
  std::vector<provenance::VarId> var_map;
  // The consent variables of the Clause tuples (probability 1).
  std::vector<provenance::VarId> clause_vars;
};
[[nodiscard]] Result<SpjInstance> BuildSpjFromDnf(const provenance::Dnf& dnf,
                                    double variable_probability);

// --- Thm. IV.9: SJ query whose OPT-PEER-PROBE encodes VERTEX COVER -----------
//
// Schema Vars(v), Clauses(v1, v2); query
//   SELECT * FROM Vars a, Vars b, Clauses c WHERE a.v = c.v1 AND b.v = c.v2
// One output tuple per edge; provenance x_u ∧ x_v ∧ t_uv (3-conjunctions,
// per-tuple read-once).
struct SjInstance {
  consent::SharedDatabase sdb;
  query::PlanPtr plan;
  std::vector<provenance::VarId> vertex_vars;  // by vertex id
};
[[nodiscard]] Result<SjInstance> BuildSjFromGraph(const Graph& graph, double probability);

// --- Thm. IV.10: SPU query whose OPT-PEER-PROBE encodes VERTEX COVER ---------
//
// Schema R(v, e1, e2, e3) with one row per vertex listing its (up to) three
// incident edges; query pi_2(R) UNION pi_3(R) UNION pi_4(R). One output
// tuple per edge; provenance x_u ∨ x_v (disjunctions, per-tuple read-once).
struct SpuInstance {
  consent::SharedDatabase sdb;
  query::PlanPtr plan;
  std::vector<provenance::VarId> vertex_vars;  // by vertex id
};
[[nodiscard]] Result<SpuInstance> BuildSpuFromGraph(const Graph& graph, double probability);

}  // namespace consentdb::datasets

#endif  // CONSENTDB_DATASETS_REDUCTIONS_H_
