#include "consentdb/net/chaos_transport.h"

#include <utility>

#include "consentdb/util/check.h"
#include "consentdb/util/hash_mix.h"
#include "consentdb/util/thread_annotations.h"

namespace consentdb::net {
namespace {

// One queued delivery. Chunks become readable once the clock reaches
// ready_at; an unready chunk blocks everything queued after it, so stream
// order is preserved exactly as TCP would.
struct Chunk {
  std::string data;
  int64_t ready_at = 0;
};

// Hash streams for the per-operation draws (seed, stream, op_index).
constexpr uint64_t kFaultStream = 0;  // which fault, if any
constexpr uint64_t kParamStream = 1;  // fault parameter (tear point, byte)

}  // namespace

// A connected pair. pipe[d] carries bytes written by end d, read by end
// 1 - d. All fields are guarded by the owning transport's single mutex —
// one lock for the whole transport keeps the lock graph trivially acyclic.
struct ChaosDuplex {
  std::deque<Chunk> pipe[2];
  bool closed[2] = {false, false};  // end d called Close()
  bool dropped = false;             // a chaos fault severed the pair
};

struct ChaosListenerState {
  std::string address;
  bool closed = false;
  std::deque<std::unique_ptr<Connection>> pending;
};

struct ChaosTransport::State {
  explicit State(ChaosPlan p, Clock* c) : plan(p), clock(c) {}

  const ChaosPlan plan;
  Clock* const clock;

  mutable Mutex mu;
  uint64_t op_index GUARDED_BY(mu) = 0;
  ChaosStats stats GUARDED_BY(mu);
  std::map<std::string, std::shared_ptr<ChaosListenerState>> listeners
      GUARDED_BY(mu);
};

namespace {

// Kinds of per-operation fault, drawn by cumulative probability.
enum class Fault { kNone, kDrop, kTorn, kCorrupt, kDuplicate, kDelay };

Fault DrawWriteFault(const ChaosPlan& plan, double u) {
  double c = plan.drop_prob;
  if (u < c) return Fault::kDrop;
  c += plan.torn_write_prob;
  if (u < c) return Fault::kTorn;
  c += plan.corrupt_prob;
  if (u < c) return Fault::kCorrupt;
  c += plan.duplicate_prob;
  if (u < c) return Fault::kDuplicate;
  c += plan.delay_prob;
  if (u < c) return Fault::kDelay;
  return Fault::kNone;
}

class ChaosConnection : public Connection {
 public:
  ChaosConnection(std::shared_ptr<ChaosTransport::State> state,
                  std::shared_ptr<ChaosDuplex> duplex, int end)
      : state_(std::move(state)), duplex_(std::move(duplex)), end_(end) {}

  ~ChaosConnection() override { Close(); }

  Result<size_t> Write(std::string_view data) override;
  Result<std::string> Read() override;
  void Close() override;

 private:
  const std::shared_ptr<ChaosTransport::State> state_;
  const std::shared_ptr<ChaosDuplex> duplex_;
  const int end_;  // 0 = connector side, 1 = accepted side
};

Result<size_t> ChaosConnection::Write(std::string_view data) {
  ChaosTransport::State& s = *state_;
  MutexLock lock(s.mu);
  ChaosDuplex& d = *duplex_;
  if (d.closed[end_] || d.closed[1 - end_] || d.dropped) {
    return Status::Unavailable("connection closed");
  }
  ++s.stats.writes;
  const uint64_t op = s.op_index++;
  const double u = UnitUniformHash(s.plan.seed, kFaultStream, op);
  const double param = UnitUniformHash(s.plan.seed, kParamStream, op);
  const int64_t now = s.clock->NowNanos();
  std::deque<Chunk>& pipe = d.pipe[end_];
  switch (data.empty() ? Fault::kNone : DrawWriteFault(s.plan, u)) {
    case Fault::kDrop:
      ++s.stats.drops;
      d.dropped = true;
      return Status::Unavailable("connection dropped");
    case Fault::kTorn: {
      // The caller believes the whole chunk went out; the peer sees only a
      // prefix, then the connection dies. The frame CRC layer makes the
      // partial tail indistinguishable from silence.
      ++s.stats.torn_writes;
      const size_t prefix = static_cast<size_t>(param * data.size());
      if (prefix > 0) pipe.push_back({std::string(data.substr(0, prefix)), now});
      d.dropped = true;
      return data.size();
    }
    case Fault::kCorrupt: {
      ++s.stats.corruptions;
      std::string copy(data);
      copy[static_cast<size_t>(param * copy.size())] ^= 0x40;
      pipe.push_back({std::move(copy), now});
      return data.size();
    }
    case Fault::kDuplicate:
      ++s.stats.duplicates;
      pipe.push_back({std::string(data), now});
      pipe.push_back({std::string(data), now});
      return data.size();
    case Fault::kDelay:
      ++s.stats.delays;
      pipe.push_back({std::string(data), now + s.plan.delay_nanos});
      return data.size();
    case Fault::kNone:
      pipe.push_back({std::string(data), now});
      return data.size();
  }
  CONSENTDB_CHECK(false, "unreachable fault kind");
  return data.size();
}

Result<std::string> ChaosConnection::Read() {
  ChaosTransport::State& s = *state_;
  MutexLock lock(s.mu);
  ChaosDuplex& d = *duplex_;
  if (d.closed[end_]) return Status::Unavailable("connection closed");
  const int64_t now = s.clock->NowNanos();
  std::deque<Chunk>& pipe = d.pipe[1 - end_];
  std::string out;
  while (!pipe.empty() && pipe.front().ready_at <= now) {
    out.append(pipe.front().data);
    pipe.pop_front();
  }
  if (out.empty() && pipe.empty() && (d.dropped || d.closed[1 - end_])) {
    return Status::Unavailable("connection closed by peer");
  }
  return out;
}

void ChaosConnection::Close() {
  MutexLock lock(state_->mu);
  duplex_->closed[end_] = true;
}

class ChaosListener : public Listener {
 public:
  ChaosListener(std::shared_ptr<ChaosTransport::State> state,
                std::shared_ptr<ChaosListenerState> ls)
      : state_(std::move(state)), ls_(std::move(ls)) {}

  ~ChaosListener() override { Close(); }

  Result<std::unique_ptr<Connection>> Accept() override {
    MutexLock lock(state_->mu);
    if (ls_->closed) return Status::Unavailable("listener closed");
    if (ls_->pending.empty()) return std::unique_ptr<Connection>();
    std::unique_ptr<Connection> conn = std::move(ls_->pending.front());
    ls_->pending.pop_front();
    return conn;
  }

  std::string address() const override { return ls_->address; }

  void Close() override {
    MutexLock lock(state_->mu);
    ls_->closed = true;
    ls_->pending.clear();
    state_->listeners.erase(ls_->address);
  }

 private:
  const std::shared_ptr<ChaosTransport::State> state_;
  const std::shared_ptr<ChaosListenerState> ls_;
};

}  // namespace

ChaosTransport::ChaosTransport(ChaosPlan plan, Clock* clock)
    : state_(std::make_shared<State>(plan, clock)) {
  CONSENTDB_CHECK(clock != nullptr, "ChaosTransport needs a clock");
  CONSENTDB_CHECK(plan.connect_fail_prob + plan.drop_prob +
                          plan.torn_write_prob + plan.corrupt_prob +
                          plan.duplicate_prob + plan.delay_prob <=
                      1.0,
                  "chaos fault probabilities must sum to at most 1");
}

ChaosTransport::~ChaosTransport() = default;

Result<std::unique_ptr<Listener>> ChaosTransport::Listen(
    const std::string& address) {
  MutexLock lock(state_->mu);
  if (state_->listeners.count(address) > 0) {
    return Status::AlreadyExists("address already bound: " + address);
  }
  auto ls = std::make_shared<ChaosListenerState>();
  ls->address = address;
  state_->listeners[address] = ls;
  return std::unique_ptr<Listener>(
      std::make_unique<ChaosListener>(state_, std::move(ls)));
}

Result<std::unique_ptr<Connection>> ChaosTransport::Connect(
    const std::string& address) {
  MutexLock lock(state_->mu);
  ++state_->stats.connects;
  const uint64_t op = state_->op_index++;
  const double u = UnitUniformHash(state_->plan.seed, kFaultStream, op);
  if (u < state_->plan.connect_fail_prob) {
    ++state_->stats.connect_fails;
    return Status::Unavailable("connect failed (injected)");
  }
  auto it = state_->listeners.find(address);
  if (it == state_->listeners.end() || it->second->closed) {
    return Status::Unavailable("connection refused: " + address);
  }
  auto duplex = std::make_shared<ChaosDuplex>();
  it->second->pending.push_back(
      std::make_unique<ChaosConnection>(state_, duplex, 1));
  return std::unique_ptr<Connection>(
      std::make_unique<ChaosConnection>(state_, std::move(duplex), 0));
}

ChaosStats ChaosTransport::stats() const {
  MutexLock lock(state_->mu);
  return state_->stats;
}

}  // namespace consentdb::net
