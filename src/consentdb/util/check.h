// CONSENTDB_CHECK: precondition / invariant assertions that stay on in all
// build types. A failed check is a programmer error, not a recoverable
// condition; it aborts with a diagnostic.

#ifndef CONSENTDB_UTIL_CHECK_H_
#define CONSENTDB_UTIL_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <string>

namespace consentdb::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr,
                                     const std::string& message) {
  std::cerr << "CONSENTDB_CHECK failed at " << file << ":" << line << ": "
            << expr;
  if (!message.empty()) std::cerr << " — " << message;
  std::cerr << std::endl;
  std::abort();
}

}  // namespace consentdb::internal

#define CONSENTDB_CHECK(cond, ...)                                     \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::consentdb::internal::CheckFailed(__FILE__, __LINE__, #cond,    \
                                         ::std::string{__VA_ARGS__}); \
    }                                                                  \
  } while (false)

#endif  // CONSENTDB_UTIL_CHECK_H_
