// Expected-cost measurement harnesses: Monte-Carlo estimation (the paper's
// experimental methodology, Sec. V-A) and exact enumeration (for tests on
// small formulas).

#ifndef CONSENTDB_STRATEGY_EXPECTED_COST_H_
#define CONSENTDB_STRATEGY_EXPECTED_COST_H_

#include <vector>

#include "consentdb/strategy/runner.h"
#include "consentdb/util/rng.h"

namespace consentdb::strategy {

struct CostEstimate {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  size_t reps = 0;
};

struct EstimateOptions {
  size_t reps = 10;
  uint64_t seed = 1;
  // Attach CNFs to each run's state (required by Q-value / useful for
  // Hybrid's diagnostics).
  bool attach_cnfs = false;
  provenance::NormalFormLimits cnf_limits = {};
  // Precomputed CNFs (one per formula); when set, reused by every
  // repetition instead of converting per run. Implies attach_cnfs.
  const std::vector<Cnf>* precomputed_cnfs = nullptr;
  // Opt-in telemetry: every repetition's probes and decision timings are
  // recorded here (see RunInstrumentation). Null = no instrumentation.
  obs::MetricsRegistry* metrics = nullptr;
};

// Runs the strategy `options.reps` times; each repetition draws a hidden
// valuation at random from `pi` (every variable independently) and counts
// the probes until all formulas are decided.
CostEstimate EstimateExpectedCost(const std::vector<Dnf>& dnfs,
                                  const std::vector<double>& pi,
                                  const StrategyFactory& factory,
                                  const EstimateOptions& options);

// Exact expected cost of a deterministic strategy by enumerating all 2^n
// valuations of the variables appearing in the formulas (n <= 20 checked).
// The strategy factory must produce deterministic strategies.
double ExactExpectedCost(const std::vector<Dnf>& dnfs,
                         const std::vector<double>& pi,
                         const StrategyFactory& factory,
                         bool attach_cnfs = false);

}  // namespace consentdb::strategy

#endif  // CONSENTDB_STRATEGY_EXPECTED_COST_H_
