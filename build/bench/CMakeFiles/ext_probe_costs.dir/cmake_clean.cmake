file(REMOVE_RECURSE
  "CMakeFiles/ext_probe_costs.dir/ext_probe_costs.cc.o"
  "CMakeFiles/ext_probe_costs.dir/ext_probe_costs.cc.o.d"
  "ext_probe_costs"
  "ext_probe_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_probe_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
