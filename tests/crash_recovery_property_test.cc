// Crash-recovery property harness: 240 seeded random crash schedules over
// full consent sessions on the recruitment database. Each schedule kills the
// process (via CrashingEnv) at a random WAL append or fsync — sometimes
// tearing the fatal write, sometimes cutting power — then restarts, recovers
// the ledger from snapshot + WAL tail, and re-runs the session.
//
// The invariants, for every schedule:
//
//   1. The resumed session's report is byte-identical (ToJson) to the
//      uninterrupted run — recovery is semantics-preserving.
//   2. No journaled variable ever reaches a peer again: the resumed
//      session's oracle traffic is exactly (distinct variables probed) −
//      (answers recovered from the journal).
//   3. Recovery itself never fails, whatever prefix of the WAL survived.
//
// Everything runs on the in-memory CrashingEnv; no real disk, no real time.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "consentdb/consent/oracle.h"
#include "consentdb/consent/replica.h"
#include "consentdb/consent/sharded_ledger.h"
#include "consentdb/consent/wal.h"
#include "consentdb/core/checkpoint.h"
#include "consentdb/core/consent_manager.h"
#include "consentdb/util/clock.h"
#include "consentdb/util/io.h"
#include "consentdb/util/rng.h"
#include "test_fixtures.h"

namespace consentdb {
namespace {

using consent::ConsentLedger;
using consent::LedgerReplica;
using consent::OpenShardWalSet;
using consent::RecoveryStats;
using consent::ShardedConsentLedger;
using consent::ShardWalSet;
using consent::ValuationOracle;
using consent::WalOptions;
using consent::WalWriter;
using provenance::PartialValuation;
using provenance::VarId;

using AnswerVec = std::vector<std::pair<VarId, bool>>;

TEST(CrashRecoveryProperty, ResumedSessionsAreByteIdenticalAndProbeOnceEver) {
  consent::SharedDatabase sdb = testing::RecruitmentDatabase();
  core::ConsentManager manager(sdb);

  size_t crashed_schedules = 0;
  size_t torn_schedules = 0;
  size_t power_loss_schedules = 0;
  size_t completed_schedules = 0;

  for (uint64_t seed = 0; seed < 240; ++seed) {
    SCOPED_TRACE("crash schedule seed " + std::to_string(seed));
    Rng rng(52'000 + seed);
    PartialValuation hidden = sdb.pool().SampleValuation(rng);

    // Ground truth: the uninterrupted session (through a ledger, exactly
    // like the recovered run, so the comparison is apples to apples).
    ValuationOracle baseline_backing(hidden);
    ConsentLedger baseline_ledger;
    core::SessionOptions options;
    options.ledger = &baseline_ledger;
    Result<core::SessionReport> baseline = manager.DecideAll(
        testing::RecruitmentQuerySql(), baseline_backing, options);
    ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
    const size_t distinct_vars = baseline_backing.probe_count();

    // The crash schedule: kill at a random append or fsync, torn bytes and
    // power loss at random; some schedules place the crash past the end of
    // the session and thus never fire.
    CrashingEnv env;
    CrashPlan plan;
    if (rng.Bernoulli(0.25)) {
      plan.crash_at_sync = 1 + rng.UniformIndex(distinct_vars + 2);
    } else {
      plan.crash_at_append = 1 + rng.UniformIndex(distinct_vars + 2);
    }
    plan.power_loss = rng.Bernoulli(0.4);
    if (rng.Bernoulli(0.5)) {
      plan.torn_bytes = 1 + rng.UniformIndex(16);
      ++torn_schedules;
    }
    if (plan.power_loss) ++power_loss_schedules;
    env.set_plan(plan);

    // Some schedules batch fsyncs (group commit on a virtual clock), which
    // under power loss exercises losing a whole unsynced batch.
    VirtualClock wal_clock;
    WalOptions wal_options;
    if (rng.Bernoulli(0.3)) {
      wal_options.group_commit_window_nanos = 1'000'000;
      wal_options.clock = &wal_clock;
    }

    // First attempt: probe with the WAL journaling every answer, and maybe
    // crash somewhere along the way.
    bool crashed = false;
    // Open itself appends and syncs the header, so the fatal op can fire
    // anywhere from WAL creation to the final session fsync. The WalWriter
    // destructor then runs against a dead env; its best-effort sync/close
    // must tolerate that (not throwing IS part of the property).
    try {
      Result<std::unique_ptr<WalWriter>> wal =
          WalWriter::Open(&env, "ledger.wal", wal_options);
      ASSERT_TRUE(wal.ok()) << wal.status().ToString();
      ConsentLedger ledger;
      const uint64_t compact_every =
          rng.Bernoulli(0.25) ? 1 + rng.UniformIndex(4) : 0;
      ledger.AttachJournal(wal.value().get(), compact_every);
      ValuationOracle backing(hidden);
      core::SessionOptions first_options;
      first_options.ledger = &ledger;
      Result<core::SessionReport> first = manager.DecideAll(
          testing::RecruitmentQuerySql(), backing, first_options);
      ASSERT_TRUE(first.ok()) << first.status().ToString();
      Status synced = wal.value()->Sync();
      ASSERT_TRUE(synced.ok()) << synced.ToString();
      // The schedule never fired: the journaled run must already match.
      EXPECT_EQ(first.value().ToJson(), baseline.value().ToJson());
    } catch (const CrashInjected&) {
      crashed = true;
    }
    if (crashed) {
      ++crashed_schedules;
    } else {
      ++completed_schedules;
    }

    // Reboot and recover whatever prefix of the journal survived.
    env.Restart();
    ConsentLedger recovered;
    Result<RecoveryStats> stats =
        consent::RecoverLedger(&env, "ledger.wal", &recovered);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    const uint64_t replayed = recovered.restored_answers();
    ASSERT_LE(replayed, distinct_vars);

    // Invariant 1 + 2: the resumed session reports byte-identically, and
    // peers are asked only the not-yet-journaled variables.
    ValuationOracle resumed_backing(hidden);
    core::SessionOptions resume_options;
    resume_options.ledger = &recovered;
    Result<core::SessionReport> resumed = manager.DecideAll(
        testing::RecruitmentQuerySql(), resumed_backing, resume_options);
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
    EXPECT_EQ(resumed.value().ToJson(), baseline.value().ToJson());
    EXPECT_EQ(resumed_backing.probe_count(), distinct_vars - replayed);
  }

  // The generator must exercise every regime, including actual crashes,
  // torn writes, power cuts and crash-free completions.
  EXPECT_GT(crashed_schedules, 100u);
  EXPECT_GT(completed_schedules, 10u);
  EXPECT_GT(torn_schedules, 60u);
  EXPECT_GT(power_loss_schedules, 60u);
}

// The same property with repeated crashes in ONE schedule: crash, recover,
// crash again mid-resume, recover again — consent already journaled must
// survive arbitrarily many restarts, and the final report is still exact.
TEST(CrashRecoveryProperty, RepeatedCrashesNeverLoseJournaledConsent) {
  consent::SharedDatabase sdb = testing::RecruitmentDatabase();
  core::ConsentManager manager(sdb);

  for (uint64_t seed = 0; seed < 30; ++seed) {
    SCOPED_TRACE("repeated-crash seed " + std::to_string(seed));
    Rng rng(81'000 + seed);
    PartialValuation hidden = sdb.pool().SampleValuation(rng);

    ValuationOracle baseline_backing(hidden);
    ConsentLedger baseline_ledger;
    core::SessionOptions baseline_options;
    baseline_options.ledger = &baseline_ledger;
    Result<core::SessionReport> baseline = manager.DecideAll(
        testing::RecruitmentQuerySql(), baseline_backing, baseline_options);
    ASSERT_TRUE(baseline.ok());

    CrashingEnv env;
    size_t total_peer_probes = 0;
    Result<core::SessionReport> final_report = Status::Internal("never ran");
    // Keep crashing one append into each attempt until a run completes;
    // every attempt journals at least its first fresh answer, so the loop
    // is bounded by the number of variables.
    for (int attempt = 0; attempt < 64; ++attempt) {
      CrashPlan plan;
      plan.crash_at_append = 2;  // the second fresh answer of this attempt
      plan.torn_bytes = rng.Bernoulli(0.5) ? 1 + rng.UniformIndex(8) : 0;
      env.set_plan(plan);

      Result<std::unique_ptr<WalWriter>> wal =
          WalWriter::Open(&env, "ledger.wal");
      ASSERT_TRUE(wal.ok()) << wal.status().ToString();
      ConsentLedger ledger;
      Result<RecoveryStats> stats =
          consent::RecoverLedger(&env, "ledger.wal", &ledger);
      ASSERT_TRUE(stats.ok()) << stats.status().ToString();
      ledger.AttachJournal(wal.value().get());

      ValuationOracle backing(hidden);
      core::SessionOptions options;
      options.ledger = &ledger;
      try {
        final_report = manager.DecideAll(testing::RecruitmentQuerySql(),
                                         backing, options);
        total_peer_probes += backing.probe_count();
        break;
      } catch (const CrashInjected&) {
        total_peer_probes += backing.probe_count();
        env.Restart();
      }
    }
    ASSERT_TRUE(final_report.ok()) << final_report.status().ToString();
    EXPECT_EQ(final_report.value().ToJson(), baseline.value().ToJson());
    // Across ALL attempts combined, no variable was asked twice — a torn
    // final record may lose one answer per crash, so the total is bounded
    // by distinct variables plus one re-ask per restart, and with no torn
    // bytes it is exactly the distinct-variable count.
    EXPECT_LE(total_peer_probes,
              baseline_backing.probe_count() + size_t{64});
  }
}

// A deterministic backing oracle for the replica-focused schedules: the
// answer function is a pure function of the variable id, so every restart
// and every follower sees one consistent world.
class StableOracle : public consent::ProbeOracle {
 public:
  bool Probe(VarId x) override {
    ++probes_;
    return x % 3 == 0;
  }
  size_t probe_count() const override { return probes_; }

 private:
  size_t probes_ = 0;
};

// The shard×replica crash grid: 240 seeded random schedules over shard
// counts {1, 2, 4, 7}, each journaling a full consent session through a
// shard WAL set on CrashingEnv and killing the process (kill or power
// loss, torn writes at random) anywhere from set creation to the final
// fsync. After reboot:
//
//   1. Cross-shard recovery (into a plain ledger on even seeds, into a
//      *differently* sharded ledger on odd ones) never fails, and the
//      resumed session reports byte-identically to the uninterrupted run.
//   2. Zero duplicate probes: the resumed session's oracle traffic is
//      exactly (distinct variables) − (answers recovered across shards).
//   3. A replica assembled over the surviving files agrees byte-for-byte
//      with what recovery restored, and a "crashed" follower (destroyed
//      and rebuilt — followers hold no durable state) resyncs to the same
//      view.
TEST(ShardedCrashGrid, CrashedShardSetsRecoverExactlyAtEveryShardCount) {
  consent::SharedDatabase sdb = testing::RecruitmentDatabase();
  core::ConsentManager manager(sdb);
  const size_t kShardChoices[] = {1, 2, 4, 7};

  size_t crashed_schedules = 0;
  size_t torn_schedules = 0;
  size_t power_loss_schedules = 0;
  size_t completed_schedules = 0;

  for (uint64_t seed = 0; seed < 240; ++seed) {
    SCOPED_TRACE("shard crash schedule seed " + std::to_string(seed));
    Rng rng(97'000 + seed);
    const size_t num_shards = kShardChoices[rng.UniformIndex(4)];
    const uint64_t generation = 1 + rng.UniformIndex(3);
    PartialValuation hidden = sdb.pool().SampleValuation(rng);

    ValuationOracle baseline_backing(hidden);
    ConsentLedger baseline_ledger;
    core::SessionOptions options;
    options.ledger = &baseline_ledger;
    Result<core::SessionReport> baseline = manager.DecideAll(
        testing::RecruitmentQuerySql(), baseline_backing, options);
    ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
    const size_t distinct_vars = baseline_backing.probe_count();

    // The fatal operation can fire anywhere in the env-wide append/sync
    // sequence: creating the set costs one header append + sync per shard
    // before the session's own journaling starts.
    CrashingEnv env;
    CrashPlan plan;
    const size_t op_range = distinct_vars + 2 * num_shards + 2;
    if (rng.Bernoulli(0.25)) {
      plan.crash_at_sync = 1 + rng.UniformIndex(op_range);
    } else {
      plan.crash_at_append = 1 + rng.UniformIndex(op_range);
    }
    plan.power_loss = rng.Bernoulli(0.4);
    if (rng.Bernoulli(0.5)) {
      plan.torn_bytes = 1 + rng.UniformIndex(16);
      ++torn_schedules;
    }
    if (plan.power_loss) ++power_loss_schedules;
    env.set_plan(plan);

    VirtualClock wal_clock;
    WalOptions wal_options;
    if (rng.Bernoulli(0.3)) {
      wal_options.group_commit_window_nanos = 1'000'000;
      wal_options.clock = &wal_clock;
    }
    const uint64_t compact_every =
        rng.Bernoulli(0.25) ? 1 + rng.UniformIndex(4) : 0;

    bool crashed = false;
    try {
      Result<ShardWalSet> set = OpenShardWalSet(&env, "ledger", num_shards,
                                                generation, wal_options);
      ASSERT_TRUE(set.ok()) << set.status().ToString();
      ShardedConsentLedger ledger(num_shards);
      ledger.AttachShardJournals(set.value().pointers(), compact_every);
      ValuationOracle backing(hidden);
      core::SessionOptions first_options;
      first_options.ledger = &ledger;
      Result<core::SessionReport> first = manager.DecideAll(
          testing::RecruitmentQuerySql(), backing, first_options);
      ASSERT_TRUE(first.ok()) << first.status().ToString();
      for (WalWriter* wal : set.value().pointers()) {
        Status synced = wal->Sync();
        ASSERT_TRUE(synced.ok()) << synced.ToString();
      }
      EXPECT_EQ(first.value().ToJson(), baseline.value().ToJson());
    } catch (const CrashInjected&) {
      crashed = true;
    }
    if (crashed) {
      ++crashed_schedules;
    } else {
      ++completed_schedules;
    }

    env.Restart();

    // Recovery target alternates between merging down to a plain ledger
    // and re-partitioning onto a different shard count.
    std::unique_ptr<ConsentLedger> recovered;
    if (seed % 2 == 0) {
      recovered = std::make_unique<ConsentLedger>();
    } else {
      recovered = std::make_unique<ShardedConsentLedger>(
          kShardChoices[rng.UniformIndex(4)]);
    }
    Result<core::ShardRecoveryStats> stats = core::RecoverShardedLedger(
        &env, "ledger", num_shards, recovered.get());
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    const uint64_t replayed = stats.value().recovered_answers;
    ASSERT_LE(replayed, distinct_vars);
    ASSERT_EQ(stats.value().shards.size(), num_shards);
    if (replayed > 0) {
      // Any surviving answer proves at least one stamped member survived,
      // and every member must have carried the requested generation.
      EXPECT_EQ(stats.value().generation, generation);
    }

    // A replica tailing the same surviving files converges to exactly the
    // recovered view, and a rebuilt follower (a follower crash is just
    // destruction — it owns no durable state) resyncs to it again.
    LedgerReplica replica(&env, "ledger", num_shards);
    Status polled = replica.Poll();
    ASSERT_TRUE(polled.ok()) << polled.ToString();
    Result<AnswerVec> replica_view = replica.Answers();
    ASSERT_TRUE(replica_view.ok()) << replica_view.status().ToString();
    EXPECT_EQ(replica_view.value(), recovered->Answers());
    LedgerReplica rebuilt(&env, "ledger", num_shards);
    ASSERT_TRUE(rebuilt.Poll().ok());
    Result<AnswerVec> rebuilt_view = rebuilt.Answers();
    ASSERT_TRUE(rebuilt_view.ok()) << rebuilt_view.status().ToString();
    EXPECT_EQ(rebuilt_view.value(), replica_view.value());

    // Byte-identical resume, with zero duplicate probes across the crash.
    ValuationOracle resumed_backing(hidden);
    core::SessionOptions resume_options;
    resume_options.ledger = recovered.get();
    Result<core::SessionReport> resumed = manager.DecideAll(
        testing::RecruitmentQuerySql(), resumed_backing, resume_options);
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
    EXPECT_EQ(resumed.value().ToJson(), baseline.value().ToJson());
    EXPECT_EQ(resumed_backing.probe_count(), distinct_vars - replayed);
  }

  EXPECT_GT(crashed_schedules, 100u);
  EXPECT_GT(completed_schedules, 10u);
  EXPECT_GT(torn_schedules, 60u);
  EXPECT_GT(power_loss_schedules, 60u);
}

// Follower crash mid-catch-up: a follower that saw only a prefix of the
// leader's writes dies (destruction — followers are crash-free state) and
// a fresh one over the same paths converges to the full view. The cutover
// it then feeds a promoted leader produces zero duplicate probes.
TEST(ShardedCrashGrid, FollowerCrashMidCatchupResyncsAndCutsOverExactly) {
  CrashingEnv env;
  Result<ShardWalSet> set =
      OpenShardWalSet(&env, "ledger", 4, /*generation=*/2);
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  ShardedConsentLedger leader(4);
  leader.AttachShardJournals(set.value().pointers());
  StableOracle oracle;

  // Wave 1, with a replica catching up mid-stream.
  for (VarId x = 0; x < 20; ++x) leader.ProbeVia(oracle, x);
  for (WalWriter* wal : set.value().pointers()) ASSERT_TRUE(wal->Sync().ok());
  auto mid_catchup = std::make_unique<LedgerReplica>(&env, "ledger", 4);
  ASSERT_TRUE(mid_catchup->Poll().ok());
  EXPECT_EQ(mid_catchup->size(), 20u);

  // The follower dies mid-catch-up; the leader keeps writing.
  mid_catchup.reset();
  for (VarId x = 20; x < 48; ++x) leader.ProbeVia(oracle, x);
  for (WalWriter* wal : set.value().pointers()) ASSERT_TRUE(wal->Sync().ok());

  // A rebuilt follower over the same paths converges to the full view.
  LedgerReplica rebuilt(&env, "ledger", 4);
  ASSERT_TRUE(rebuilt.Poll().ok());
  Result<AnswerVec> view = rebuilt.Answers();
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_EQ(view.value(), leader.Answers());

  // Cutover → a new leader generation seeded with the merged answers; a
  // session over the seeded ledger never re-probes a replicated variable.
  Result<LedgerReplica::Cutover> cutover = rebuilt.CutOver();
  ASSERT_TRUE(cutover.ok()) << cutover.status().ToString();
  EXPECT_EQ(cutover.value().next_generation, 3u);
  Result<ShardWalSet> promoted = OpenShardWalSet(
      &env, "promoted", 2, cutover.value().next_generation);
  ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();
  ShardedConsentLedger new_leader(2);
  new_leader.AttachShardJournals(promoted.value().pointers());
  for (const auto& [x, answer] : cutover.value().answers) {
    ASSERT_TRUE(new_leader.RestoreAnswer(x, answer).ok());
  }
  StableOracle resumed_oracle;
  for (VarId x = 0; x < 48; ++x) new_leader.ProbeVia(resumed_oracle, x);
  EXPECT_EQ(resumed_oracle.probe_count(), 0u);  // zero duplicate probes
  EXPECT_EQ(new_leader.Answers(), leader.Answers());
}

// Power loss on the leader must never invalidate a follower: answers the
// leader loses from its unsynced tail were still really given by peers, so
// a follower that replicated them keeps them — and the recovered leader,
// re-probing the lost variables, rejoins the follower's view without a
// conflict.
TEST(ShardedCrashGrid, LeaderPowerLossNeverUnlearnsReplicatedAnswers) {
  CrashingEnv env;
  // A huge group-commit window on a frozen virtual clock: nothing past the
  // creation fsync is durable until the crash.
  VirtualClock clock;
  WalOptions wal_options;
  wal_options.group_commit_window_nanos = 1'000'000'000;
  wal_options.clock = &clock;

  size_t follower_size_before_crash = 0;
  AnswerVec follower_view_before_crash;
  LedgerReplica replica(&env, "ledger", 2);
  {
    Result<ShardWalSet> set =
        OpenShardWalSet(&env, "ledger", 2, /*generation=*/1, wal_options);
    ASSERT_TRUE(set.ok()) << set.status().ToString();
    ShardedConsentLedger leader(2);
    leader.AttachShardJournals(set.value().pointers());
    StableOracle oracle;
    for (VarId x = 0; x < 24; ++x) leader.ProbeVia(oracle, x);

    // The follower replicates the unsynced tail (it tails the page cache
    // the leader wrote), then the cord is cut.
    ASSERT_TRUE(replica.Poll().ok());
    follower_size_before_crash = replica.size();
    EXPECT_EQ(follower_size_before_crash, 24u);
    Result<AnswerVec> view = replica.Answers();
    ASSERT_TRUE(view.ok());
    follower_view_before_crash = view.value();

    CrashPlan plan;
    plan.crash_at_append = 1;  // the very next append dies
    plan.power_loss = true;    // ... and the platter only has synced bytes
    env.set_plan(plan);
    EXPECT_THROW(leader.ProbeVia(oracle, 24), CrashInjected);
  }
  env.Restart();

  // The recovered leader lost the unsynced answers ...
  ConsentLedger recovered;
  Result<core::ShardRecoveryStats> stats =
      core::RecoverShardedLedger(&env, "ledger", 2, &recovered);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_LT(stats.value().recovered_answers, 24u);

  // ... but the follower keeps every one of them: polls over the shrunken
  // files resync without unlearning.
  ASSERT_TRUE(replica.Poll().ok());
  EXPECT_GE(replica.size(), follower_size_before_crash);
  for (const auto& [x, answer] : follower_view_before_crash) {
    EXPECT_EQ(replica.Lookup(x), std::optional<bool>(answer)) << "x=" << x;
  }

  // The leader re-probes what it lost; peers answer consistently, so the
  // follower converges back to the same view with zero conflicts.
  Result<ShardWalSet> reopened =
      OpenShardWalSet(&env, "ledger", 2, /*generation=*/1);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ShardedConsentLedger resumed(2);
  for (const auto& [x, answer] : recovered.Answers()) {
    ASSERT_TRUE(resumed.RestoreAnswer(x, answer).ok());
  }
  resumed.AttachShardJournals(reopened.value().pointers());
  StableOracle resumed_oracle;
  for (VarId x = 0; x < 24; ++x) resumed.ProbeVia(resumed_oracle, x);
  EXPECT_EQ(resumed_oracle.probe_count(), 24u - stats.value().recovered_answers);
  for (WalWriter* wal : reopened.value().pointers()) {
    ASSERT_TRUE(wal->Sync().ok());
  }
  ASSERT_TRUE(replica.Poll().ok());
  Result<AnswerVec> final_view = replica.Answers();
  ASSERT_TRUE(final_view.ok()) << final_view.status().ToString();
  EXPECT_EQ(final_view.value(), resumed.Answers());
}

}  // namespace
}  // namespace consentdb
