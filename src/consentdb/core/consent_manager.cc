#include "consentdb/core/consent_manager.h"

#include <cmath>

#include "consentdb/eval/targeted.h"
#include "consentdb/obs/names.h"
#include "consentdb/query/optimize.h"
#include "consentdb/strategy/expected_cost.h"
#include "consentdb/strategy/optimal.h"
#include "consentdb/util/check.h"
#include "consentdb/util/hash_mix.h"
#include "consentdb/util/json_writer.h"

namespace consentdb::core {

using consent::ProbeOracle;
using eval::AnnotatedRelation;
using eval::ProvenanceProfile;
using provenance::Dnf;
using provenance::Truth;
using provenance::VarId;
using query::PlanPtr;
using relational::Tuple;
using strategy::EvaluationState;
using strategy::ProbeStrategy;

const char* AlgorithmToString(Algorithm a) {
  switch (a) {
    case Algorithm::kAuto:
      return "Auto";
    case Algorithm::kRandom:
      return "Random";
    case Algorithm::kFreq:
      return "Freq";
    case Algorithm::kRo:
      return "RO";
    case Algorithm::kQValue:
      return "Q-value";
    case Algorithm::kGeneral:
      return "General";
    case Algorithm::kHybrid:
      return "Hybrid";
    case Algorithm::kOptimal:
      return "Optimal";
  }
  return "?";
}

const char* VerdictToString(TupleConsent::Verdict v) {
  switch (v) {
    case TupleConsent::Verdict::kNotShareable:
      return "not_shareable";
    case TupleConsent::Verdict::kShareable:
      return "shareable";
    case TupleConsent::Verdict::kUnresolved:
      return "unresolved";
  }
  return "?";
}

int64_t RetryPolicy::BackoffNanos(size_t attempt, VarId x) const {
  CONSENTDB_CHECK(attempt >= 1, "backoff is computed for retries only");
  double base = static_cast<double>(initial_backoff_nanos) *
                std::pow(backoff_multiplier, static_cast<double>(attempt - 1));
  base = std::min(base, static_cast<double>(max_backoff_nanos));
  if (jitter > 0.0) {
    // Deterministic jitter: a pure function of (seed, variable, attempt),
    // independent of thread interleaving and of other probes.
    double u = UnitUniformHash(jitter_seed, x, attempt);
    base *= 1.0 + jitter * (2.0 * u - 1.0);
  }
  return base <= 0.0 ? 0 : static_cast<int64_t>(base);
}

namespace {

using internal::StrategySelection;

// Auto selection: the runtime checks of Sec. IV-D layered over the
// syntactic guarantees of Table I.
StrategySelection SelectAuto(const ProvenanceProfile& profile,
                             bool single_tuple, const SessionOptions& options,
                             EvaluationState* state) {
  StrategySelection sel;
  if (profile.overall_read_once ||
      (single_tuple && profile.per_tuple_read_once)) {
    sel.strategy = std::make_unique<strategy::RoStrategy>();
    sel.rationale = profile.overall_read_once
                        ? "provenance is overall read-once: RO is exact "
                          "(Prop. IV.4/IV.8)"
                        : "single-tuple provenance is read-once: RO is exact "
                          "(Prop. IV.5)";
    return sel;
  }
  if (profile.max_terms_per_tuple <= options.qvalue_max_terms &&
      state->TryAttachResidualCnfs(options.cnf_limits)) {
    sel.strategy = std::make_unique<strategy::QValueStrategy>();
    sel.rationale =
        "projection-limited provenance (max " +
        std::to_string(profile.max_terms_per_tuple) +
        " terms/tuple): Q-value approximation (Props. IV.11/IV.13)";
    return sel;
  }
  sel.strategy = std::make_unique<strategy::GeneralStrategy>();
  sel.rationale =
      "general provenance: Algorithm General (Thm. IV.16 approximation)";
  return sel;
}

}  // namespace

Result<StrategySelection> internal::SelectSessionStrategy(
    Algorithm algorithm, const ProvenanceProfile& profile, bool single_tuple,
    const SessionOptions& options, const std::vector<double>& pi,
    EvaluationState* state) {
  StrategySelection sel;
  switch (algorithm) {
    case Algorithm::kAuto:
      return SelectAuto(profile, single_tuple, options, state);
    case Algorithm::kRandom:
      sel.strategy =
          std::make_unique<strategy::RandomStrategy>(options.random_seed);
      break;
    case Algorithm::kFreq:
      sel.strategy = std::make_unique<strategy::FreqStrategy>();
      break;
    case Algorithm::kRo:
      sel.strategy = std::make_unique<strategy::RoStrategy>();
      break;
    case Algorithm::kQValue: {
      CONSENTDB_RETURN_IF_ERROR(state->AttachCnfs(options.cnf_limits));
      sel.strategy = std::make_unique<strategy::QValueStrategy>();
      break;
    }
    case Algorithm::kGeneral:
      sel.strategy = std::make_unique<strategy::GeneralStrategy>();
      break;
    case Algorithm::kHybrid:
      sel.strategy =
          std::make_unique<strategy::HybridStrategy>(options.cnf_limits);
      break;
    case Algorithm::kOptimal: {
      std::vector<Dnf> dnfs = profile.dnfs;
      sel.strategy = std::make_unique<strategy::OptimalStrategy>(
          std::move(dnfs), pi, options.optimal_max_vars);
      break;
    }
  }
  sel.rationale = "requested explicitly";
  return sel;
}

namespace {

// Wraps a fallible oracle in the session's RetryPolicy: transient faults are
// retried with (deterministically jittered) exponential backoff, permanent
// unavailability and exhausted budgets surface as kVariableLost, an expired
// session deadline as kSessionExpired. All waiting goes through the injected
// clock, so tests advance virtual time instead of sleeping.
class RetryingProber {
 public:
  RetryingProber(ProbeOracle& oracle, const RetryPolicy& policy, Clock* clock,
                 obs::MetricsRegistry* metrics, obs::SpanCollector* spans)
      : oracle_(oracle),
        policy_(policy),
        clock_(clock),
        metrics_(metrics),
        spans_(spans),
        session_start_(clock->NowNanos()) {
    if (metrics_ != nullptr) {
      retries_ = metrics_->GetCounter("retry.count");
      transient_ = metrics_->GetCounter("retry.transient");
      unavailable_ = metrics_->GetCounter("retry.unavailable");
      exhausted_ = metrics_->GetCounter("retry.exhausted");
      deadline_ = metrics_->GetCounter("retry.deadline");
      backoff_ns_ = metrics_->GetHistogram("retry.backoff_ns",
                                           obs::RetryBackoffBuckets());
    }
  }

  strategy::FallibleProbe operator()(VarId x) {
    const int64_t probe_start = clock_->NowNanos();
    size_t attempts = 0;
    while (true) {
      if (policy_.session_deadline_nanos > 0 &&
          clock_->NowNanos() - session_start_ >=
              policy_.session_deadline_nanos) {
        failures_.session_deadline = 1;
        return {strategy::ProbeOutcome::kSessionExpired, false};
      }
      consent::ProbeAttempt attempt = oracle_.TryProbe(x);
      ++attempts;
      if (attempt.ok()) {
        return {strategy::ProbeOutcome::kAnswered, attempt.answer};
      }
      if (attempt.fault == consent::ProbeFault::kUnavailable) {
        ++failures_.unavailable;
        if (unavailable_ != nullptr) unavailable_->Add();
        return {strategy::ProbeOutcome::kVariableLost, false};
      }
      ++failures_.transient;
      if (transient_ != nullptr) transient_->Add();
      if (policy_.max_attempts > 0 && attempts >= policy_.max_attempts) {
        ++failures_.retries_exhausted;
        if (exhausted_ != nullptr) exhausted_->Add();
        return {strategy::ProbeOutcome::kVariableLost, false};
      }
      const int64_t backoff = policy_.BackoffNanos(attempts, x);
      if (policy_.probe_deadline_nanos > 0 &&
          clock_->NowNanos() + backoff - probe_start >
              policy_.probe_deadline_nanos) {
        ++failures_.probe_deadline;
        if (deadline_ != nullptr) deadline_->Add();
        return {strategy::ProbeOutcome::kVariableLost, false};
      }
      ++num_retries_;
      if (retries_ != nullptr) retries_->Add();
      if (backoff_ns_ != nullptr) {
        backoff_ns_->Observe(static_cast<uint64_t>(backoff));
      }
      // Never sleep past the session deadline: a full backoff that
      // overshoots it would stall the kSessionExpired verdict (and, served
      // over the network, the client's error) until the sleep ran out.
      int64_t wait_nanos = backoff;
      if (policy_.session_deadline_nanos > 0) {
        const int64_t remaining = session_start_ +
                                  policy_.session_deadline_nanos -
                                  clock_->NowNanos();
        wait_nanos = std::min(wait_nanos, remaining > 0 ? remaining : 0);
      }
      {
        // Backoff waits show up as retry.wait spans in the timeline (real
        // duration under RealClock, near-zero under a VirtualClock).
        obs::Span wait(spans_, obs::names::kSpanRetryWait);
        wait.SetArg(obs::names::kArgAttempt, attempts);
        clock_->SleepFor(wait_nanos);
      }
    }
  }

  size_t num_retries() const { return num_retries_; }
  const FailureBreakdown& failures() const { return failures_; }

 private:
  ProbeOracle& oracle_;
  const RetryPolicy& policy_;
  Clock* clock_;
  obs::MetricsRegistry* metrics_;
  obs::SpanCollector* spans_;
  const int64_t session_start_;
  size_t num_retries_ = 0;
  FailureBreakdown failures_;
  obs::Counter* retries_ = nullptr;
  obs::Counter* transient_ = nullptr;
  obs::Counter* unavailable_ = nullptr;
  obs::Counter* exhausted_ = nullptr;
  obs::Counter* deadline_ = nullptr;
  obs::Histogram* backoff_ns_ = nullptr;
};

}  // namespace

Result<PreparedSession> ConsentManager::Prepare(
    const PlanPtr& plan, std::optional<Tuple> single,
    const SessionOptions& options) const {
  PlanPtr effective = plan;
  if (options.optimize_plan) {
    obs::ScopedTimer timer(
        obs::MaybeHistogram(options.metrics, "query.optimize_ns"));
    CONSENTDB_ASSIGN_OR_RETURN(effective,
                               query::Optimize(plan, sdb_.database()));
  }
  return PrepareResolved(plan, effective, std::move(single), options);
}

Result<PreparedSession> ConsentManager::PrepareResolved(
    const PlanPtr& plan, const PlanPtr& effective, std::optional<Tuple> single,
    const SessionOptions& options) const {
  obs::MetricsRegistry* metrics = options.metrics;
  PreparedSession prepared;
  prepared.plan = plan;
  prepared.effective = effective;
  prepared.single = single.has_value();
  std::vector<provenance::BoolExprPtr> annotations;
  CONSENTDB_ASSIGN_OR_RETURN(relational::Schema schema,
                             effective->OutputSchema(sdb_.database()));
  if (single.has_value()) {
    // Targeted evaluation: the tuple's provenance is computed by pushing
    // its values down the plan, without materialising the whole result.
    obs::ScopedTimer timer(obs::MaybeHistogram(metrics, "eval.targeted_ns"));
    CONSENTDB_ASSIGN_OR_RETURN(
        provenance::BoolExprPtr annotation,
        eval::AnnotationForTuple(effective, sdb_, *single));
    prepared.tuples.push_back(*std::move(single));
    annotations.push_back(std::move(annotation));
  } else {
    CONSENTDB_ASSIGN_OR_RETURN(
        AnnotatedRelation annotated,
        eval::EvaluateAnnotated(effective, sdb_, metrics));
    prepared.tuples = annotated.tuples();
    annotations = annotated.annotations();
  }

  // Flatten to DNF and profile the provenance structure.
  {
    AnnotatedRelation subset(schema);
    for (size_t i = 0; i < prepared.tuples.size(); ++i) {
      subset.Insert(prepared.tuples[i], annotations[i]);
    }
    CONSENTDB_ASSIGN_OR_RETURN(
        prepared.provenance,
        eval::ProfileProvenance(subset, options.dnf_limits, metrics));
  }

  // Classify the plan the session actually relies on (the effective one);
  // the submitted plan's class is kept alongside for reporting, without
  // double-counting the query.class.* metrics.
  prepared.profile = query::Classify(*effective, metrics);
  prepared.submitted_profile =
      effective == plan ? prepared.profile : query::Classify(*plan);
  return prepared;
}

Result<SessionReport> ConsentManager::FinishSession(
    const PreparedSession& prepared, ProbeOracle& oracle,
    const SessionOptions& options, int64_t session_start) const {
  if (options.ledger != nullptr) {
    // Durability/resume: interpose the ledger between the probe loop and
    // the oracle. Journaled answers replay without peer traffic; the rest
    // of the session is oblivious (a ledger hit is a probe like any other).
    consent::LedgerOracle ledger_oracle(*options.ledger, oracle);
    SessionOptions inner = options;
    inner.ledger = nullptr;
    return FinishSession(prepared, ledger_oracle, inner, session_start);
  }
  obs::MetricsRegistry* metrics = options.metrics;
  const ProvenanceProfile& profile = prepared.provenance;
  std::vector<double> pi = sdb_.pool().Probabilities();
  EvaluationState state(profile.dnfs, pi);
  internal::StrategySelection sel;
  {
    obs::ScopedTimer timer(obs::MaybeHistogram(metrics, "session.select_ns"));
    obs::Span span(options.spans, obs::names::kSpanSessionSelect);
    CONSENTDB_ASSIGN_OR_RETURN(
        sel, internal::SelectSessionStrategy(options.algorithm, profile,
                                             prepared.single, options, pi,
                                             &state));
  }
  if (metrics != nullptr) {
    obs::Increment(
        metrics,
        ("session.algorithm." + sel.strategy->name()).c_str());
  }
  if (options.tracer != nullptr) {
    options.tracer->set_algorithm(sel.strategy->name());
  }

  strategy::RunInstrumentation instr;
  instr.metrics = metrics;
  instr.tracer = options.tracer;
  instr.spans = options.spans;

  internal::ProbePhase phase;
  if (options.retry.has_value()) {
    // Resilient path: probe through TryProbe under the retry policy; faults
    // degrade to kUnresolved verdicts instead of aborting.
    Clock* clock = options.clock != nullptr ? options.clock : RealClock();
    RetryingProber prober(oracle, *options.retry, clock, metrics,
                          options.spans);
    strategy::ResilientProbeRun run = strategy::RunToCompletionResilient(
        state, *sel.strategy, [&prober](VarId x) { return prober(x); }, instr);
    phase.num_probes = run.num_probes;
    phase.outcomes = std::move(run.outcomes);
    phase.trace = std::move(run.trace);
    phase.resilient = true;
    phase.num_retries = prober.num_retries();
    phase.failures = prober.failures();
  } else {
    // Legacy path: infallible oracle, byte-identical reports.
    strategy::ProbeRun run = strategy::RunToCompletion(
        state, *sel.strategy, [&oracle](VarId x) { return oracle.Probe(x); },
        instr);
    phase.num_probes = run.num_probes;
    phase.outcomes = std::move(run.outcomes);
    phase.trace = std::move(run.trace);
  }

  SessionReport report =
      internal::AssembleReport(sdb_, prepared, sel, std::move(phase), options);
  if (options.tracer != nullptr) {
    // Enrich the runner's events with peer-facing identities; the runner
    // only sees VarIds.
    for (obs::ProbeEvent& ev : options.tracer->mutable_events()) {
      ev.variable_name = sdb_.pool().name(ev.variable);
      ev.owner = sdb_.pool().owner(ev.variable);
    }
    options.tracer->set_session_nanos(obs::MonotonicNanos() - session_start);
  }
  return report;
}

SessionReport internal::AssembleReport(const consent::SharedDatabase& sdb,
                                       const PreparedSession& prepared,
                                       const StrategySelection& sel,
                                       ProbePhase phase,
                                       const SessionOptions& options) {
  obs::MetricsRegistry* metrics = options.metrics;
  const ProvenanceProfile& profile = prepared.provenance;
  SessionReport report;
  report.resilient = phase.resilient;
  report.num_retries = phase.num_retries;
  report.failures = phase.failures;
  report.num_probes = phase.num_probes;
  report.algorithm_used = sel.strategy->name();
  report.selection_rationale = sel.rationale;
  report.cnf_attach_failed = sel.strategy->cnf_attach_failed();
  report.query_profile = prepared.profile;
  report.query_profile_submitted = prepared.submitted_profile;
  report.provenance_tuples = profile.dnfs.size();
  report.provenance_max_terms = profile.max_terms_per_tuple;
  report.provenance_max_term_size = profile.max_term_size;
  report.provenance_overall_read_once = profile.overall_read_once;
  report.provenance_per_tuple_read_once = profile.per_tuple_read_once;
  report.tuples.reserve(prepared.tuples.size());
  for (size_t i = 0; i < prepared.tuples.size(); ++i) {
    if (phase.outcomes[i] == Truth::kUnknown) {
      // Only the resilient path may leave a tuple undecided (lost peers cut
      // every remaining path to it); possible-world semantics make this a
      // genuine third value, reported as kUnresolved / not shareable.
      CONSENTDB_CHECK(report.resilient,
                      "session ended with an undecided tuple");
      ++report.num_unresolved;
      report.tuples.push_back(TupleConsent{prepared.tuples[i], false,
                                           TupleConsent::Verdict::kUnresolved});
      continue;
    }
    const bool shareable = phase.outcomes[i] == Truth::kTrue;
    report.tuples.push_back(
        TupleConsent{prepared.tuples[i], shareable,
                     shareable ? TupleConsent::Verdict::kShareable
                               : TupleConsent::Verdict::kNotShareable});
  }
  report.trace.reserve(phase.trace.size());
  for (const auto& [x, answer] : phase.trace) {
    report.trace.push_back(SessionReport::ProbeRecord{
        x, sdb.pool().name(x), sdb.pool().owner(x), answer});
  }
  if (metrics != nullptr) {
    metrics->GetHistogram("session.probes", obs::SessionProbeBuckets())
        ->Observe(phase.num_probes);
    obs::SetGauge(metrics, "session.last_probes",
                  static_cast<double>(phase.num_probes));
    if (report.num_unresolved > 0) {
      obs::Increment(metrics, "session.unresolved_tuples",
                     report.num_unresolved);
    }
    if (report.cnf_attach_failed) {
      obs::Increment(metrics, "session.cnf_attach_failed");
    }
  }
  return report;
}

Result<SessionReport> ConsentManager::RunPrepared(
    const PreparedSession& prepared, ProbeOracle& oracle,
    const SessionOptions& options) const {
  const bool instrumented =
      options.metrics != nullptr || options.tracer != nullptr;
  const int64_t session_start = instrumented ? obs::MonotonicNanos() : 0;
  obs::ScopedTimer session_timer(
      obs::MaybeHistogram(options.metrics, "session.total_ns"));
  obs::Increment(options.metrics, "session.count");
  obs::Span span(options.spans, obs::names::kSpanSessionRun);
  if (options.tracer != nullptr) options.tracer->Clear();
  Result<SessionReport> report =
      FinishSession(prepared, oracle, options, session_start);
  if (report.ok()) span.SetArg(obs::names::kArgProbes, report->num_probes);
  return report;
}

Result<SessionReport> ConsentManager::RunSession(
    const PlanPtr& plan, std::optional<Tuple> single, ProbeOracle& oracle,
    const SessionOptions& options) const {
  const bool instrumented =
      options.metrics != nullptr || options.tracer != nullptr;
  const int64_t session_start = instrumented ? obs::MonotonicNanos() : 0;
  obs::ScopedTimer session_timer(
      obs::MaybeHistogram(options.metrics, "session.total_ns"));
  obs::Increment(options.metrics, "session.count");
  obs::Span span(options.spans, obs::names::kSpanSessionRun);
  if (options.tracer != nullptr) options.tracer->Clear();

  CONSENTDB_ASSIGN_OR_RETURN(PreparedSession prepared,
                             Prepare(plan, std::move(single), options));
  Result<SessionReport> report =
      FinishSession(prepared, oracle, options, session_start);
  if (report.ok()) span.SetArg(obs::names::kArgProbes, report->num_probes);
  return report;
}

Result<SessionReport> ConsentManager::DecideAll(
    const PlanPtr& plan, ProbeOracle& oracle,
    const SessionOptions& options) const {
  return RunSession(plan, std::nullopt, oracle, options);
}

Result<SessionReport> ConsentManager::DecideAll(
    std::string_view sql, ProbeOracle& oracle,
    const SessionOptions& options) const {
  CONSENTDB_ASSIGN_OR_RETURN(PlanPtr plan, query::ParseQuery(sql));
  return RunSession(plan, std::nullopt, oracle, options);
}

Result<SessionReport> ConsentManager::DecideSingle(
    const PlanPtr& plan, const Tuple& tuple, ProbeOracle& oracle,
    const SessionOptions& options) const {
  return RunSession(plan, tuple, oracle, options);
}

Result<SessionReport> ConsentManager::DecideSingle(
    std::string_view sql, const Tuple& tuple, ProbeOracle& oracle,
    const SessionOptions& options) const {
  CONSENTDB_ASSIGN_OR_RETURN(PlanPtr plan, query::ParseQuery(sql));
  return RunSession(plan, tuple, oracle, options);
}

Result<QueryAnalysis> ConsentManager::Analyze(
    const PlanPtr& plan, const SessionOptions& options) const {
  QueryAnalysis analysis;
  analysis.profile = query::Classify(*plan, options.metrics);
  analysis.guarantees = query::GuaranteesFor(analysis.profile);
  CONSENTDB_ASSIGN_OR_RETURN(
      AnnotatedRelation annotated,
      eval::EvaluateAnnotated(plan, sdb_, options.metrics));
  CONSENTDB_ASSIGN_OR_RETURN(
      analysis.provenance,
      eval::ProfileProvenance(annotated, options.dnf_limits, options.metrics));
  return analysis;
}

std::string SessionReport::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("algorithm");
  w.String(algorithm_used);
  w.Key("selection_rationale");
  w.String(selection_rationale);
  w.Key("query_class");
  w.String(query::QueryClassToString(query_profile.query_class));
  w.Key("query_class_submitted");
  w.String(query::QueryClassToString(query_profile_submitted.query_class));
  w.Key("num_probes");
  w.Uint(num_probes);
  if (cnf_attach_failed) {
    w.Key("cnf_attach_failed");
    w.Bool(true);
  }
  if (resilient) {
    w.Key("num_retries");
    w.Uint(num_retries);
    w.Key("num_unresolved");
    w.Uint(num_unresolved);
    w.Key("failures");
    w.BeginObject();
    w.Key("transient");
    w.Uint(failures.transient);
    w.Key("unavailable");
    w.Uint(failures.unavailable);
    w.Key("retries_exhausted");
    w.Uint(failures.retries_exhausted);
    w.Key("probe_deadline");
    w.Uint(failures.probe_deadline);
    w.Key("session_deadline");
    w.Uint(failures.session_deadline);
    w.EndObject();
  }
  w.Key("provenance");
  w.BeginObject();
  w.Key("tuples");
  w.Uint(provenance_tuples);
  w.Key("max_terms_per_tuple");
  w.Uint(provenance_max_terms);
  w.Key("max_term_size");
  w.Uint(provenance_max_term_size);
  w.Key("overall_read_once");
  w.Bool(provenance_overall_read_once);
  w.Key("per_tuple_read_once");
  w.Bool(provenance_per_tuple_read_once);
  w.EndObject();
  w.Key("tuples");
  w.BeginArray();
  for (const TupleConsent& tc : tuples) {
    w.BeginObject();
    w.Key("tuple");
    w.String(tc.tuple.ToString());
    w.Key("shareable");
    w.Bool(tc.shareable);
    if (resilient) {
      w.Key("verdict");
      w.String(VerdictToString(tc.verdict));
    }
    w.EndObject();
  }
  w.EndArray();
  w.Key("trace");
  w.BeginArray();
  for (const ProbeRecord& rec : trace) {
    w.BeginObject();
    w.Key("variable");
    w.String(rec.variable_name);
    w.Key("owner");
    w.String(rec.owner);
    w.Key("answer");
    w.Bool(rec.answer);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

std::string SessionReport::ToString() const {
  std::string out = "SessionReport{algorithm=" + algorithm_used;
  out += ", probes=" + std::to_string(num_probes);
  out += ", tuples=" + std::to_string(tuples.size());
  size_t shareable = 0;
  for (const TupleConsent& t : tuples) shareable += t.shareable ? 1 : 0;
  out += ", shareable=" + std::to_string(shareable);
  if (cnf_attach_failed) out += ", cnf_attach_failed";
  if (resilient) {
    out += ", unresolved=" + std::to_string(num_unresolved);
    out += ", retries=" + std::to_string(num_retries);
  }
  out += ", class=" + std::string(query::QueryClassToString(
                          query_profile.query_class));
  return out + "}";
}

}  // namespace consentdb::core
