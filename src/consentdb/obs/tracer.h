// SessionTracer: structured per-probe event log of one probing session.
//
// Where the MetricsRegistry aggregates (how much time, how many probes), the
// tracer keeps the sequence: one ProbeEvent per probe issued, recording which
// variable the strategy picked, how long the deliberation took, what the
// answer was and how much of the formula system remained afterwards. The
// session loop (strategy/runner) is the single producer; ProbeRun::trace is
// derived from these events, so the two views cannot diverge.
//
// The tracer is a passive sink with no locking: one session records into one
// tracer. ConsentManager enriches events with variable names and owners
// after the run (the runner only sees VarIds).

#ifndef CONSENTDB_OBS_TRACER_H_
#define CONSENTDB_OBS_TRACER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace consentdb {
class JsonWriter;
}  // namespace consentdb

namespace consentdb::obs {

class MetricsRegistry;

struct ProbeEvent {
  // 0-based index within the session.
  size_t probe_index = 0;
  // The consent variable the strategy chose.
  uint32_t variable = 0;
  // Human-readable enrichment (empty until ConsentManager fills them in).
  std::string variable_name;
  std::string owner;
  // The peer's answer.
  bool answer = false;
  // Wall time the strategy spent deciding which variable to probe. Zero when
  // the session ran uninstrumented.
  int64_t decision_nanos = 0;
  // Formula-system shape after applying the answer.
  size_t formulas_decided = 0;
  size_t formulas_remaining = 0;
  // Live DNF terms across all undecided formulas (residual size). Zero when
  // the session ran uninstrumented.
  size_t residual_terms = 0;
};

class SessionTracer {
 public:
  SessionTracer() = default;
  SessionTracer(const SessionTracer&) = delete;
  SessionTracer& operator=(const SessionTracer&) = delete;

  // Starts a fresh session: drops prior events and metadata.
  void Clear();

  void OnProbe(ProbeEvent event) { events_.push_back(std::move(event)); }

  const std::vector<ProbeEvent>& events() const { return events_; }
  // For post-run enrichment (names/owners) by the session owner.
  std::vector<ProbeEvent>& mutable_events() { return events_; }
  size_t num_probes() const { return events_.size(); }

  // Session metadata, set by the session owner.
  void set_algorithm(std::string algorithm) {
    algorithm_ = std::move(algorithm);
  }
  const std::string& algorithm() const { return algorithm_; }
  void set_session_nanos(int64_t nanos) { session_nanos_ = nanos; }
  int64_t session_nanos() const { return session_nanos_; }

  // {"algorithm":...,"session_nanos":...,"num_probes":...,"events":[...]}
  std::string ToJson() const;
  void WriteJson(JsonWriter& w) const;

 private:
  std::vector<ProbeEvent> events_;
  std::string algorithm_;
  int64_t session_nanos_ = 0;
};

// One combined observability document for sidecars and the shell:
// {"metrics":{...}|null,"session":{...}|null}.
std::string ExportObservabilityJson(const MetricsRegistry* metrics,
                                    const SessionTracer* tracer);

}  // namespace consentdb::obs

#endif  // CONSENTDB_OBS_TRACER_H_
