# Empty compiler generated dependencies file for fig3a_skewed_joins.
# This may be replaced when dependencies are built.
