// GOOD: the stamp is a logical tick handed in by the caller (ultimately the
// injected Clock), so replaying a session reproduces the same bytes.

#include <cstdint>

namespace consentdb::core {

uint64_t ReportStamp(uint64_t logical_ticks) { return logical_ticks; }

}  // namespace consentdb::core
