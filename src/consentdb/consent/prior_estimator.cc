#include "consentdb/consent/prior_estimator.h"

#include "consentdb/util/check.h"

namespace consentdb::consent {

PriorEstimator::PriorEstimator(double smoothing, double default_prior)
    : smoothing_(smoothing), default_prior_(default_prior) {
  CONSENTDB_CHECK(smoothing > 0.0, "smoothing must be positive");
  CONSENTDB_CHECK(default_prior >= 0.0 && default_prior <= 1.0,
                  "default prior out of [0,1]");
}

void PriorEstimator::RecordAnswer(const std::string& owner, bool consented) {
  Counts& c = per_owner_[owner];
  if (consented) {
    ++c.yes;
    ++total_yes_;
  } else {
    ++c.no;
    ++total_no_;
  }
}

void PriorEstimator::RecordSession(
    const VariablePool& pool,
    const std::vector<std::pair<VarId, bool>>& trace) {
  for (const auto& [var, answer] : trace) {
    RecordAnswer(pool.owner(var), answer);
  }
}

double PriorEstimator::GlobalRate() const {
  double total = static_cast<double>(total_yes_ + total_no_);
  if (total == 0.0) return default_prior_;
  // Smooth toward the default prior.
  return (static_cast<double>(total_yes_) + smoothing_ * default_prior_ * 2) /
         (total + smoothing_ * 2);
}

double PriorEstimator::EstimateFor(const std::string& owner) const {
  auto it = per_owner_.find(owner);
  double global = GlobalRate();
  if (it == per_owner_.end()) return global;
  const Counts& c = it->second;
  double n = static_cast<double>(c.yes + c.no);
  // Beta smoothing toward the global rate: with little per-peer history the
  // estimate stays near the global rate, converging to the empirical rate.
  return (static_cast<double>(c.yes) + smoothing_ * global * 2) /
         (n + smoothing_ * 2);
}

void PriorEstimator::ApplyTo(VariablePool& pool) const {
  for (VarId x = 0; x < pool.size(); ++x) {
    pool.SetProbability(x, EstimateFor(pool.owner(x)));
  }
}

}  // namespace consentdb::consent
