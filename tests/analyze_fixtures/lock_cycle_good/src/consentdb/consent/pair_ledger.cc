// GOOD: every path acquires mu_a_ before mu_b_ — one global lock order, so
// the lock graph is acyclic.

namespace consentdb::consent {

class PairLedger {
 public:
  void LockAB() {
    MutexLock a(mu_a_);
    MutexLock b(mu_b_);
    ++generation_;
    ++epoch_;
  }

  void LockBoth() {
    MutexLock a(mu_a_);
    MutexLock b(mu_b_);
    ++epoch_;
    ++generation_;
  }

 private:
  Mutex mu_a_;
  Mutex mu_b_;
  int generation_ GUARDED_BY(mu_a_) = 0;
  int epoch_ GUARDED_BY(mu_b_) = 0;
};

}  // namespace consentdb::consent
