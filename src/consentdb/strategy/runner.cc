#include "consentdb/strategy/runner.h"

#include "consentdb/util/check.h"

namespace consentdb::strategy {

ProbeRun RunToCompletion(EvaluationState& state, ProbeStrategy& strategy,
                         const ProbeFn& probe) {
  ProbeRun run;
  while (!state.AllDecided()) {
    VarId x = strategy.ChooseNext(state);
    CONSENTDB_CHECK(state.IsUseful(x),
                    "strategy '" + strategy.name() +
                        "' chose a useless or known variable: x" +
                        std::to_string(x));
    bool answer = probe(x);
    state.Assign(x, answer);
    strategy.OnAnswer(state, x, answer);
    ++run.num_probes;
    run.total_cost += state.cost(x);
    run.trace.emplace_back(x, answer);
  }
  run.outcomes = state.FormulaValues();
  return run;
}

ProbeRun RunToCompletion(EvaluationState& state, ProbeStrategy& strategy,
                         const PartialValuation& hidden) {
  return RunToCompletion(state, strategy, [&hidden](VarId x) {
    Truth t = hidden.Get(x);
    CONSENTDB_CHECK(t != Truth::kUnknown,
                    "hidden valuation does not cover x" + std::to_string(x));
    return t == Truth::kTrue;
  });
}

}  // namespace consentdb::strategy
