// MUST NOT COMPILE under clang -Wthread-safety -Werror: reads and writes a
// GUARDED_BY field without holding its mutex. Paired with
// guarded_by_good.cc; see run_negative_compile.cmake.

#include "consentdb/util/thread_annotations.h"

class Account {
 public:
  void Deposit(int amount) { balance_ += amount; }  // no lock held
  int balance() const { return balance_; }          // no lock held

 private:
  mutable consentdb::Mutex mu_;
  int balance_ GUARDED_BY(mu_) = 0;
};

int main() {
  Account a;
  a.Deposit(1);
  return a.balance();
}
